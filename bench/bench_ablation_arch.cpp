// Architecture ablations (DESIGN.md §5): the paper's §III.C design knobs.
//  * filter-count scaling (knob 1: "Number and Size of Filters")
//  * input-size scaling   (knob 2: "Input Image Size")
//  * batch-norm folding at inference (finer-level optimization, §V future work)
#include <cstdio>

#include "bench_util.hpp"
#include "eval/fps_meter.hpp"
#include "platform/platform_model.hpp"

int main() {
    using namespace dronet;
    using namespace dronet::bench;

    std::printf("== Ablation 1: filter-count scaling of DroNet (input 416) ==\n");
    std::printf("%8s %10s %10s %12s %12s\n", "scale", "params(K)", "flops(M)",
                "i5 FPS", "Odroid FPS");
    for (float scale : {0.25f, 0.5f, 0.75f, 1.0f, 1.5f, 2.0f}) {
        Network net = build_model(ModelId::kDroNet,
                                  {.input_size = 416, .filter_scale = scale});
        std::printf("%8.2f %10.1f %10.1f %12.2f %12.2f\n", scale,
                    net.total_params() / 1e3, net.total_flops() / 1e6,
                    estimate_fps(net, intel_i5_2520m()),
                    estimate_fps(net, odroid_xu4()));
    }

    std::printf("\n== Ablation 2: input-size scaling of DroNet (full filters) ==\n");
    std::printf("%8s %10s %12s %12s %14s\n", "size", "flops(M)", "i5 FPS",
                "Odroid FPS", "RPi3 FPS");
    for (int size : kPaperSizes) {
        Network net = build_model(ModelId::kDroNet, {.input_size = size});
        std::printf("%8d %10.1f %12.2f %12.2f %14.2f\n", size,
                    net.total_flops() / 1e6, estimate_fps(net, intel_i5_2520m()),
                    estimate_fps(net, odroid_xu4()),
                    estimate_fps(net, raspberry_pi3()));
    }

    std::printf("\n== Ablation 3: batch-norm folding (measured on this host) ==\n");
    for (ModelId id : {ModelId::kDroNet, ModelId::kSmallYoloV3}) {
        Network net = build_model(id, {.input_size = 416});
        Tensor input(net.input_shape());
        const double fps_bn = measure_fps([&] { net.forward(input); }, 1, 3);
        net.fold_batchnorm();
        const double fps_folded = measure_fps([&] { net.forward(input); }, 1, 3);
        std::printf("%-12s: %6.2f FPS with BN, %6.2f FPS folded (%.1f%% faster)\n",
                    to_string(id).c_str(), fps_bn, fps_folded,
                    100.0 * (fps_folded / fps_bn - 1.0));
    }

    std::printf("\n== Ablation 4: weight-memory vs cache (why TinyYoloVoc dies on "
                "the Odroid) ==\n");
    std::printf("%-12s %14s %20s\n", "model", "max layer (MB)", "Odroid cache scale");
    for (ModelId id : all_models()) {
        Network net = build_model(id, {.input_size = 416});
        double worst_bytes = 0;
        for (std::size_t i = 0; i < net.num_layers(); ++i) {
            const Layer& l = net.layer(static_cast<int>(i));
            if (l.kind() == LayerKind::kConvolutional) {
                worst_bytes = std::max(
                    worst_bytes, static_cast<double>(l.param_count()) * sizeof(float));
            }
        }
        std::printf("%-12s %14.2f %20.3f\n", to_string(id).c_str(), worst_bytes / 1e6,
                    cache_scale(odroid_xu4(), worst_bytes));
    }
    return 0;
}
