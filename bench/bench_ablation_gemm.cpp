// GEMM / convolution-lowering ablation (DESIGN.md §5, knobs 1-2): naive vs
// blocked vs threaded GEMM on DroNet-shaped problems, spawn-per-call vs
// persistent-pool sharding, and im2col+GEMM vs direct convolution — the
// execution strategy darknet (and hence the paper's deployment) relies on.
//
// BM_GemmSpawnLegacy / BM_GemmPooledPacked are the PR-3 acceptance pair:
// at 512-input DroNet shapes with 4 threads the pooled packed kernel must be
// >= 1.5x faster than the old spawn-per-call path, and pool_threads_delta
// must stay 0 across the timed iterations (zero per-call thread creation).
#include <benchmark/benchmark.h>

#include <cstdint>
#include <vector>

#include "models/model_zoo.hpp"
#include "nn/network.hpp"
#include "nn/quantize.hpp"
#include "simd/dispatch.hpp"
#include "simd/half.hpp"
#include "tensor/gemm.hpp"
#include "tensor/gemm_i8.hpp"
#include "tensor/rng.hpp"
#include "tensor/thread_pool.hpp"

namespace {

using namespace dronet;

// DroNet stage shapes at input 416: (filters, in_c*k*k, out_h*out_w).
struct GemmShape {
    int m, k, n;
};
const GemmShape kDroNetStages[] = {
    {8, 27, 208 * 208},   // stem 3x3 on RGB (per the 208 post-pool plane)
    {16, 72, 104 * 104},  // stage-2 3x3
    {32, 144, 52 * 52},   // stage-3 3x3
    {64, 288, 26 * 26},   // stage-4 3x3
};

// The same four stages at the paper's 512 input (docs/performance.md).
const GemmShape kDroNetStages512[] = {
    {8, 27, 256 * 256},
    {16, 72, 128 * 128},
    {32, 144, 64 * 64},
    {64, 288, 32 * 32},
};

void fill_random(std::vector<float>& v, std::uint64_t seed) {
    Rng rng(seed);
    rng.fill_uniform(v, -1.0f, 1.0f);
}

void BM_GemmNaive(benchmark::State& state) {
    const GemmShape s = kDroNetStages[state.range(0)];
    std::vector<float> a(static_cast<std::size_t>(s.m) * s.k);
    std::vector<float> b(static_cast<std::size_t>(s.k) * s.n);
    std::vector<float> c(static_cast<std::size_t>(s.m) * s.n);
    fill_random(a, 1);
    fill_random(b, 2);
    for (auto _ : state) {
        gemm_naive({false, false, s.m, s.n, s.k, 1.0f, a.data(), s.k, b.data(), s.n,
                    0.0f, c.data(), s.n});
        benchmark::DoNotOptimize(c.data());
    }
    state.counters["GFLOP/s"] = benchmark::Counter(
        static_cast<double>(gemm_flops(s.m, s.n, s.k)) * state.iterations() * 1e-9,
        benchmark::Counter::kIsRate);
}
BENCHMARK(BM_GemmNaive)->DenseRange(0, 3)->Unit(benchmark::kMillisecond);

void BM_GemmBlocked(benchmark::State& state) {
    const GemmShape s = kDroNetStages[state.range(0)];
    std::vector<float> a(static_cast<std::size_t>(s.m) * s.k);
    std::vector<float> b(static_cast<std::size_t>(s.k) * s.n);
    std::vector<float> c(static_cast<std::size_t>(s.m) * s.n);
    fill_random(a, 1);
    fill_random(b, 2);
    for (auto _ : state) {
        gemm_blocked({false, false, s.m, s.n, s.k, 1.0f, a.data(), s.k, b.data(), s.n,
                      0.0f, c.data(), s.n});
        benchmark::DoNotOptimize(c.data());
    }
    state.counters["GFLOP/s"] = benchmark::Counter(
        static_cast<double>(gemm_flops(s.m, s.n, s.k)) * state.iterations() * 1e-9,
        benchmark::Counter::kIsRate);
}
BENCHMARK(BM_GemmBlocked)->DenseRange(0, 3)->Unit(benchmark::kMillisecond);

void BM_GemmThreaded(benchmark::State& state) {
    const GemmShape s = kDroNetStages[3];
    const int threads = static_cast<int>(state.range(0));
    std::vector<float> a(static_cast<std::size_t>(s.m) * s.k);
    std::vector<float> b(static_cast<std::size_t>(s.k) * s.n);
    std::vector<float> c(static_cast<std::size_t>(s.m) * s.n);
    fill_random(a, 1);
    fill_random(b, 2);
    for (auto _ : state) {
        gemm_threaded({false, false, s.m, s.n, s.k, 1.0f, a.data(), s.k, b.data(), s.n,
                       0.0f, c.data(), s.n},
                      threads);
        benchmark::DoNotOptimize(c.data());
    }
}
BENCHMARK(BM_GemmThreaded)->Arg(1)->Arg(2)->Arg(4)->Unit(benchmark::kMillisecond);

// Old strategy: spawn and join fresh std::threads inside every gemm call
// (what gemm_threaded did before the persistent pool landed).
void BM_GemmSpawnLegacy(benchmark::State& state) {
    const GemmShape s = kDroNetStages512[state.range(0)];
    std::vector<float> a(static_cast<std::size_t>(s.m) * s.k);
    std::vector<float> b(static_cast<std::size_t>(s.k) * s.n);
    std::vector<float> c(static_cast<std::size_t>(s.m) * s.n);
    fill_random(a, 1);
    fill_random(b, 2);
    for (auto _ : state) {
        gemm_threaded_spawn({false, false, s.m, s.n, s.k, 1.0f, a.data(), s.k,
                             b.data(), s.n, 0.0f, c.data(), s.n},
                            4);
        benchmark::DoNotOptimize(c.data());
    }
    state.counters["GFLOP/s"] = benchmark::Counter(
        static_cast<double>(gemm_flops(s.m, s.n, s.k)) * state.iterations() * 1e-9,
        benchmark::Counter::kIsRate);
    // Every iteration spawned 4 threads; surface that cost for contrast with
    // the pooled variant's delta of 0.
    state.counters["threads_spawned"] =
        benchmark::Counter(4.0 * static_cast<double>(state.iterations()));
}
BENCHMARK(BM_GemmSpawnLegacy)->DenseRange(0, 3)->Unit(benchmark::kMillisecond);

// New strategy: packed 4x16 kernel sharded over the persistent worker pool.
// pool_threads_delta counts OS threads created during the timed loop — the
// acceptance criterion is that it is exactly 0 (the pool is warmed before
// timing and never grows again).
void BM_GemmPooledPacked(benchmark::State& state) {
    const GemmShape s = kDroNetStages512[state.range(0)];
    std::vector<float> a(static_cast<std::size_t>(s.m) * s.k);
    std::vector<float> b(static_cast<std::size_t>(s.k) * s.n);
    std::vector<float> c(static_cast<std::size_t>(s.m) * s.n);
    fill_random(a, 1);
    fill_random(b, 2);
    const GemmArgs g{false, false, s.m, s.n, s.k, 1.0f, a.data(), s.k,
                     b.data(), s.n, 0.0f, c.data(), s.n};
    gemm_threaded(g, 4);  // warm the pool outside the timed region
    const std::uint64_t threads_before = ThreadPool::instance().stats().threads_created;
    for (auto _ : state) {
        gemm_threaded(g, 4);
        benchmark::DoNotOptimize(c.data());
    }
    state.counters["GFLOP/s"] = benchmark::Counter(
        static_cast<double>(gemm_flops(s.m, s.n, s.k)) * state.iterations() * 1e-9,
        benchmark::Counter::kIsRate);
    state.counters["pool_threads_delta"] = benchmark::Counter(static_cast<double>(
        ThreadPool::instance().stats().threads_created - threads_before));
}
BENCHMARK(BM_GemmPooledPacked)->DenseRange(0, 3)->Unit(benchmark::kMillisecond);

// SIMD dispatch ablation (docs/vectorization.md): the same blocked GEMM at
// 512-input DroNet shapes with the kernel level pinned, so the scalar vs
// AVX2 delta is the micro-kernel alone (identical blocking, packing, and
// threading either way). Args: (stage, level) with level 0=scalar, 1=avx2.
void BM_GemmSimdLevel(benchmark::State& state) {
    const GemmShape s = kDroNetStages512[state.range(0)];
    const auto want = state.range(1) == 0 ? simd::SimdLevel::kScalar
                                          : simd::SimdLevel::kAvx2;
    if (want == simd::SimdLevel::kAvx2 && !simd::cpu_supports_avx2()) {
        state.SkipWithError("CPU/build lacks AVX2");
        return;
    }
    const simd::ScopedSimdLevel pin(want);
    std::vector<float> a(static_cast<std::size_t>(s.m) * s.k);
    std::vector<float> b(static_cast<std::size_t>(s.k) * s.n);
    std::vector<float> c(static_cast<std::size_t>(s.m) * s.n);
    fill_random(a, 1);
    fill_random(b, 2);
    for (auto _ : state) {
        gemm_blocked({false, false, s.m, s.n, s.k, 1.0f, a.data(), s.k, b.data(),
                      s.n, 0.0f, c.data(), s.n});
        benchmark::DoNotOptimize(c.data());
    }
    state.SetLabel(simd::to_string(simd::active_level()));
    state.counters["GFLOP/s"] = benchmark::Counter(
        static_cast<double>(gemm_flops(s.m, s.n, s.k)) * state.iterations() * 1e-9,
        benchmark::Counter::kIsRate);
}
BENCHMARK(BM_GemmSimdLevel)
    ->ArgsProduct({{0, 1, 2, 3}, {0, 1}})
    ->Unit(benchmark::kMillisecond);

// Int8 GEMM across dispatch levels at the same shapes (docs/quantization.md):
// the integer kernel is bit-exact between levels, so the delta here is pure
// throughput. Args mirror BM_GemmSimdLevel: (stage, level) with 0=scalar.
void BM_GemmI8SimdLevel(benchmark::State& state) {
    const GemmShape s = kDroNetStages512[state.range(0)];
    const auto want = state.range(1) == 0 ? simd::SimdLevel::kScalar
                                          : simd::SimdLevel::kAvx2;
    if (want == simd::SimdLevel::kAvx2 && !simd::cpu_supports_avx2()) {
        state.SkipWithError("CPU/build lacks AVX2");
        return;
    }
    const simd::ScopedSimdLevel pin(want);
    Rng rng(5);
    std::vector<std::int8_t> a(static_cast<std::size_t>(s.m) * s.k);
    std::vector<std::int8_t> b(static_cast<std::size_t>(s.k) * s.n);
    std::vector<std::int32_t> c(static_cast<std::size_t>(s.m) * s.n);
    for (auto& v : a) v = static_cast<std::int8_t>(rng.uniform_int(-127, 127));
    for (auto& v : b) v = static_cast<std::int8_t>(rng.uniform_int(-127, 127));
    for (auto _ : state) {
        gemm_i8(s.m, s.n, s.k, a.data(), s.k, b.data(), s.n, c.data(), s.n);
        benchmark::DoNotOptimize(c.data());
    }
    state.SetLabel(simd::to_string(simd::active_level()));
    state.counters["GOP/s"] = benchmark::Counter(
        static_cast<double>(gemm_flops(s.m, s.n, s.k)) * state.iterations() * 1e-9,
        benchmark::Counter::kIsRate);
}
BENCHMARK(BM_GemmI8SimdLevel)
    ->ArgsProduct({{0, 1, 2, 3}, {0, 1}})
    ->Unit(benchmark::kMillisecond);

// FP16 weight-storage GEMM (gemm_halfw: widen half A rows, then the ordinary
// packed kernel) vs the fp32 GEMM at the same shapes — the per-call widening
// overhead the --fp16 mode pays for halving weight memory.
void BM_GemmFp16Weights(benchmark::State& state) {
    const GemmShape s = kDroNetStages512[state.range(0)];
    std::vector<float> a32(static_cast<std::size_t>(s.m) * s.k);
    fill_random(a32, 1);
    std::vector<std::uint16_t> a16(a32.size());
    simd::floats_to_halfs(a32.data(), a16.data(), a32.size());
    std::vector<float> b(static_cast<std::size_t>(s.k) * s.n);
    std::vector<float> c(static_cast<std::size_t>(s.m) * s.n);
    fill_random(b, 2);
    for (auto _ : state) {
        gemm_halfw(s.m, s.n, s.k, a16.data(), s.k, b.data(), s.n, c.data(), s.n);
        benchmark::DoNotOptimize(c.data());
    }
    state.counters["GFLOP/s"] = benchmark::Counter(
        static_cast<double>(gemm_flops(s.m, s.n, s.k)) * state.iterations() * 1e-9,
        benchmark::Counter::kIsRate);
}
BENCHMARK(BM_GemmFp16Weights)->DenseRange(0, 3)->Unit(benchmark::kMillisecond);

// End-to-end: DroNet forward with fp16 weight+activation storage vs fp32
// (BM_DroNetForward below is the fp32 baseline at the same sizes).
void BM_DroNetForwardFp16(benchmark::State& state) {
    Network net = build_model(ModelId::kDroNet,
                              {.input_size = static_cast<int>(state.range(0))});
    net.set_fp16(true);
    Tensor in(net.input_shape());
    for (auto _ : state) {
        net.forward(in);
        benchmark::DoNotOptimize(net.region());
    }
}
BENCHMARK(BM_DroNetForwardFp16)->Arg(352)->Arg(512)->Unit(benchmark::kMillisecond);

// End-to-end: DroNet forward through the calibrated int8 conv path vs the
// fp32 baseline at the same sizes (docs/quantization.md records the numbers).
void BM_DroNetForwardInt8(benchmark::State& state) {
    Network net = build_model(ModelId::kDroNet,
                              {.input_size = static_cast<int>(state.range(0))});
    QuantizedNetwork quant(net);  // self-calibrates; folds BN
    Tensor in(net.input_shape());
    Rng rng(13);
    rng.fill_uniform(in.span(), 0.0f, 1.0f);
    for (auto _ : state) {
        benchmark::DoNotOptimize(quant.forward(in).data());
    }
}
BENCHMARK(BM_DroNetForwardInt8)->Arg(352)->Arg(512)->Unit(benchmark::kMillisecond);

// im2col+GEMM (production path) vs direct convolution (reference path) on a
// real DroNet stage-3 layer.
Network conv_stage_net(bool fold) {
    NetConfig nc;
    nc.channels = 32;
    nc.height = 52;
    nc.width = 52;
    Network net(nc);
    net.add_conv({.filters = 64, .ksize = 3, .stride = 1, .pad = 1,
                  .batch_normalize = true, .activation = Activation::kLeaky});
    if (fold) net.fold_batchnorm();
    return net;
}

void BM_ConvIm2colGemm(benchmark::State& state) {
    Network net = conv_stage_net(false);
    Tensor in(net.input_shape());
    Rng rng(7);
    rng.fill_uniform(in.span(), -1.0f, 1.0f);
    for (auto _ : state) {
        net.forward(in);
        benchmark::DoNotOptimize(net.layer(0).output().data());
    }
}
BENCHMARK(BM_ConvIm2colGemm)->Unit(benchmark::kMillisecond);

void BM_ConvDirect(benchmark::State& state) {
    Network net = conv_stage_net(true);  // folding required by forward_direct
    auto& conv = dynamic_cast<ConvolutionalLayer&>(net.layer(0));
    Tensor in(net.input_shape());
    Rng rng(7);
    rng.fill_uniform(in.span(), -1.0f, 1.0f);
    Tensor out;
    for (auto _ : state) {
        conv.forward_direct(in, out);
        benchmark::DoNotOptimize(out.data());
    }
}
BENCHMARK(BM_ConvDirect)->Unit(benchmark::kMillisecond);

// Full-network forward at paper input sizes (the quantity behind every FPS
// number in the reproduction).
void BM_DroNetForward(benchmark::State& state) {
    Network net = build_model(ModelId::kDroNet,
                              {.input_size = static_cast<int>(state.range(0))});
    Tensor in(net.input_shape());
    for (auto _ : state) {
        net.forward(in);
        benchmark::DoNotOptimize(net.region());
    }
}
BENCHMARK(BM_DroNetForward)->Arg(352)->Arg(512)->Unit(benchmark::kMillisecond);

}  // namespace

BENCHMARK_MAIN();
