// Post-processing ablation (DESIGN.md §5, knob 4): decode + NMS cost at the
// detector's real candidate counts, NMS threshold sensitivity, and the
// altitude-filter overhead (§III.D extension).
#include <benchmark/benchmark.h>

#include "detect/altitude_filter.hpp"
#include "detect/nms.hpp"
#include "models/model_zoo.hpp"
#include "tensor/rng.hpp"

namespace {

using namespace dronet;

Detections random_detections(int count, std::uint64_t seed) {
    Rng rng(seed);
    Detections dets;
    dets.reserve(static_cast<std::size_t>(count));
    for (int i = 0; i < count; ++i) {
        Detection d;
        d.box = {rng.uniform(0.1f, 0.9f), rng.uniform(0.1f, 0.9f),
                 rng.uniform(0.03f, 0.2f), rng.uniform(0.03f, 0.2f)};
        d.objectness = rng.uniform(0.0f, 1.0f);
        d.class_prob = 1.0f;
        dets.push_back(d);
    }
    return dets;
}

// Candidate counts: DroNet grids at the paper's input sizes produce
// 5 * (size/16)^2 raw candidates; after score filtering far fewer survive.
void BM_Nms(benchmark::State& state) {
    const Detections dets = random_detections(static_cast<int>(state.range(0)), 5);
    for (auto _ : state) {
        benchmark::DoNotOptimize(nms(dets, 0.45f));
    }
    state.SetComplexityN(state.range(0));
}
BENCHMARK(BM_Nms)->Arg(32)->Arg(128)->Arg(512)->Arg(2420)  // 2420 = DroNet-352 raw
    ->Unit(benchmark::kMicrosecond)->Complexity();

void BM_ScoreFilter(benchmark::State& state) {
    const Detections dets = random_detections(5120, 9);  // DroNet-512 raw grid
    for (auto _ : state) {
        benchmark::DoNotOptimize(filter_by_score(dets, 0.3f));
    }
}
BENCHMARK(BM_ScoreFilter)->Unit(benchmark::kMicrosecond);

void BM_FullPostprocess(benchmark::State& state) {
    const Detections dets = random_detections(5120, 11);
    for (auto _ : state) {
        benchmark::DoNotOptimize(postprocess(dets, 0.3f, 0.45f));
    }
}
BENCHMARK(BM_FullPostprocess)->Unit(benchmark::kMicrosecond);

// NMS threshold sweep: how many boxes survive (selectivity), reported as a
// counter so the threshold/recall trade-off is visible in the output.
void BM_NmsThreshold(benchmark::State& state) {
    const float thresh = static_cast<float>(state.range(0)) / 100.0f;
    const Detections dets = random_detections(512, 13);
    std::size_t survivors = 0;
    for (auto _ : state) {
        const Detections out = nms(dets, thresh);
        survivors = out.size();
        benchmark::DoNotOptimize(out);
    }
    state.counters["survivors"] = static_cast<double>(survivors);
}
BENCHMARK(BM_NmsThreshold)->Arg(10)->Arg(30)->Arg(45)->Arg(70)
    ->Unit(benchmark::kMicrosecond);

void BM_RegionDecode(benchmark::State& state) {
    Network net = build_model(ModelId::kDroNet,
                              {.input_size = static_cast<int>(state.range(0))});
    Tensor in(net.input_shape());
    Rng rng(15);
    rng.fill_uniform(in.span(), 0.0f, 1.0f);
    net.forward(in);
    for (auto _ : state) {
        benchmark::DoNotOptimize(net.region()->decode(0));
    }
}
BENCHMARK(BM_RegionDecode)->Arg(352)->Arg(512)->Unit(benchmark::kMicrosecond);

void BM_AltitudeFilter(benchmark::State& state) {
    const AltitudeFilter filter(CameraModel{}, VehicleSizePrior{});
    const Detections dets = random_detections(512, 17);
    for (auto _ : state) {
        benchmark::DoNotOptimize(filter.apply(dets, 50.0f));
    }
}
BENCHMARK(BM_AltitudeFilter)->Unit(benchmark::kMicrosecond);

}  // namespace

BENCHMARK_MAIN();
