// INT8 quantization ablation — the paper's §V future-work item
// ("performance improvements by applying finer-level optimizations to reduce
// bitwidth precisions"). Compares the float and int8 inference paths on the
// shipped DroNet checkpoint: model size, host latency, and detection
// accuracy on the synthetic benchmark.
#include <cstdio>

#include "bench_util.hpp"
#include "detect/nms.hpp"
#include "eval/fps_meter.hpp"
#include "image/resize.hpp"
#include "nn/quantize.hpp"

int main() {
    using namespace dronet;
    using namespace dronet::bench;
    const DetectionDataset train_set = benchmark_train_set();
    const DetectionDataset test_set = benchmark_test_set(eval_count());

    Network net = load_or_train(ModelId::kDroNet, train_set);
    net.set_batch(1);
    net.resize_input(224, 224);

    // Float baseline accuracy (BN still live).
    EvalConfig ec;
    ec.score_threshold = 0.30f;
    const DetectionMetrics float_m = evaluate_detector(net, test_set, ec);

    // Quantize (folds BN into the float net as a side effect).
    QuantizedNetwork quant(net);
    std::printf("== INT8 post-training quantization of DroNet ==\n");
    std::printf("weight storage: %.1f KB float -> %.1f KB int8 (%.2fx smaller)\n",
                quant.float_weight_bytes() / 1024.0, quant.weight_bytes() / 1024.0,
                static_cast<double>(quant.float_weight_bytes()) / quant.weight_bytes());

    // Accuracy of the int8 path.
    DetectionMetrics int8_m;
    for (std::size_t i = 0; i < test_set.size(); ++i) {
        Tensor input(net.input_shape());
        resize_bilinear(test_set.image(i), net.config().width, net.config().height)
            .copy_to_batch(input, 0);
        quant.forward(input);
        const Detections dets =
            postprocess(quant.decode(), ec.score_threshold, ec.nms_threshold);
        int8_m += match_detections(dets, test_set.truths(i), ec.match_iou);
    }
    std::printf("\n%-10s %12s %12s %8s\n", "path", "sensitivity", "precision", "IoU");
    std::printf("%-10s %11.1f%% %11.1f%% %8.3f\n", "float32",
                100.0f * float_m.sensitivity(), 100.0f * float_m.precision(),
                float_m.avg_iou());
    std::printf("%-10s %11.1f%% %11.1f%% %8.3f\n", "int8",
                100.0f * int8_m.sensitivity(), 100.0f * int8_m.precision(),
                int8_m.avg_iou());

    // Host latency comparison (int8 kernel here is scalar — the win on real
    // UAV silicon comes from SIMD int8; this measures overhead/parity).
    Tensor input(net.input_shape());
    const double fps_float = measure_fps([&] { net.forward(input); }, 1, 3);
    const double fps_int8 = measure_fps([&] { quant.forward(input); }, 1, 3);
    std::printf("\nhost forward: float %.2f FPS, int8 %.2f FPS (scalar int8 kernel; "
                "4x weight-memory reduction is the embedded win)\n",
                fps_float, fps_int8);
    return 0;
}
