// INT8 quantization ablation — the paper's §V future-work item
// ("performance improvements by applying finer-level optimizations to reduce
// bitwidth precisions"). Compares the fp32, fp16-storage, and calibrated
// int8 inference paths on the shipped DroNet checkpoint: model size, host
// latency, detection accuracy on the synthetic benchmark, and the paper's
// weighted composite Score (eq. 3) across the three precisions. The numbers
// land in docs/performance.md and docs/quantization.md.
#include <cstdio>

#include "bench_util.hpp"
#include "eval/fps_meter.hpp"
#include "eval/score.hpp"
#include "nn/clone.hpp"
#include "nn/quantize.hpp"
#include "simd/dispatch.hpp"

int main() {
    using namespace dronet;
    using namespace dronet::bench;
    const DetectionDataset train_set = benchmark_train_set();
    const DetectionDataset test_set = benchmark_test_set(eval_count());

    Network net = load_or_train(ModelId::kDroNet, train_set);
    net.set_batch(1);
    net.resize_input(224, 224);

    EvalConfig ec;
    ec.score_threshold = 0.30f;
    const DetectionMetrics fp32_m = evaluate_detector(net, test_set, ec);

    // FP16 storage on an independent clone (the int8 snapshot below folds BN
    // into `net` as a side effect; the clone keeps the comparison honest).
    Network fp16_net = clone_network(net);
    fp16_net.set_fp16(true);
    const DetectionMetrics fp16_m = evaluate_detector(fp16_net, test_set, ec);

    // Calibrated int8: calibrate on the benchmark's train split, evaluate
    // through the same evaluator as the float paths.
    std::vector<Image> calib;
    for (std::size_t i = 0; i < train_set.size() && i < 8; ++i) {
        calib.push_back(train_set.image(i));
    }
    QuantizedNetwork quant(net, calibrate_int8(net, calib, ec));
    const DetectionMetrics int8_m = evaluate_detector(net, test_set, ec, &quant);

    std::printf("== fp32 / fp16 / int8 ablation of DroNet (input 224, %s dispatch) ==\n",
                simd::to_string(simd::active_level()));
    std::printf("weight storage: %.1f KB float -> %.1f KB int8 (%.2fx smaller)\n",
                quant.float_weight_bytes() / 1024.0, quant.weight_bytes() / 1024.0,
                static_cast<double>(quant.float_weight_bytes()) / quant.weight_bytes());

    Tensor input(net.input_shape());
    const double fps_fp32 = measure_fps([&] { net.forward(input); }, 1, 3);
    const double fps_fp16 = measure_fps([&] { fp16_net.forward(input); }, 1, 3);
    const double fps_int8 = measure_fps([&] { quant.forward(input); }, 1, 3);

    // The paper's composite Score (eq. 3): metrics normalized by their max
    // across the compared configurations, FPS weighted 0.4.
    const ScoreInputs rows[] = {
        {static_cast<float>(fps_fp32), fp32_m.avg_iou(), fp32_m.sensitivity(),
         fp32_m.precision()},
        {static_cast<float>(fps_fp16), fp16_m.avg_iou(), fp16_m.sensitivity(),
         fp16_m.precision()},
        {static_cast<float>(fps_int8), int8_m.avg_iou(), int8_m.sensitivity(),
         int8_m.precision()},
    };
    const std::vector<float> scores = score_table(rows);

    std::printf("\n%-8s %8s %12s %12s %8s %8s\n", "path", "FPS", "sensitivity",
                "precision", "IoU", "Score");
    const char* names[] = {"fp32", "fp16", "int8"};
    for (int i = 0; i < 3; ++i) {
        std::printf("%-8s %8.2f %11.1f%% %11.1f%% %8.3f %8.3f\n", names[i],
                    rows[i].fps, 100.0f * rows[i].sensitivity,
                    100.0f * rows[i].precision, rows[i].iou,
                    scores[static_cast<std::size_t>(i)]);
    }
    return 0;
}
