// CNN vs classical baseline — the comparison implied by the paper's related
// work (§II.A): "traditional techniques utilize background subtraction [2]
// ... the latest state-of-the-art techniques rely on deep CNNs".
//
// Both detectors process the same synthetic UAV video. Scenario A (all
// vehicles moving) is the classical method's best case; scenario B (half the
// vehicles parked) exposes its structural blind spot, which the CNN does not
// share.
#include <cstdio>

#include "baseline/bg_subtraction.hpp"
#include "bench_util.hpp"
#include "video/frame_source.hpp"
#include "video/pipeline.hpp"

namespace {

using namespace dronet;

struct Outcome {
    DetectionMetrics metrics;
    double fps = 0;
};

}  // namespace

int main() {
    using namespace dronet::bench;
    const DetectionDataset train_set = benchmark_train_set();
    Network net = load_or_train(ModelId::kDroNet, train_set);
    net.set_batch(1);
    net.resize_input(224, 224);

    constexpr int kFrames = 30;
    for (const bool with_parked : {false, true}) {
        VideoConfig vc;
        vc.scene = benchmark_scene_config(192);
        vc.scene.noise_stddev = 0;
        vc.num_vehicles = 4;
        vc.seed = 31;
        std::printf("\n== Scenario %s ==\n",
                    with_parked ? "B: 4 moving + 3 parked vehicles"
                                : "A: 4 moving vehicles");

        // Parked vehicles are re-painted at fixed poses every frame, so the
        // background-subtraction model absorbs them while the moving ones
        // keep triggering it.
        UavFrameSource source(vc);
        AerialSceneGenerator parked_gen(vc.scene, 77);
        std::vector<VehiclePose> parked_poses;
        if (with_parked) {
            for (int i = 0; i < 3; ++i) parked_poses.push_back(parked_gen.random_pose());
        }

        DetectionPipeline cnn(net, {});
        BackgroundSubtractionDetector classical;
        DetectionMetrics cnn_m, classical_m;
        FpsMeter classical_meter;
        for (int f = 0; f < kFrames; ++f) {
            SceneSample frame = source.next_frame();
            for (std::size_t i = 0; i < parked_poses.size(); ++i) {
                draw_vehicle(frame.image, parked_poses[i]);
                frame.truths.push_back(vehicle_ground_truth(
                    parked_poses[i], frame.image.width(), frame.image.height()));
            }
            const FrameResult r = cnn.process(frame.image);
            cnn_m += match_detections(r.detections, frame.truths, 0.4f);

            classical_meter.frame_start();
            const Detections blobs = classical.process(frame.image);
            classical_meter.frame_end();
            if (f >= 8) {  // give the background model time to settle
                classical_m += match_detections(blobs, frame.truths, 0.3f);
            }
        }
        std::printf("%-22s %12s %12s %10s\n", "detector", "sensitivity", "precision",
                    "host FPS");
        std::printf("%-22s %11.1f%% %11.1f%% %10.1f\n", "DroNet (CNN)",
                    100.0f * cnn_m.sensitivity(), 100.0f * cnn_m.precision(),
                    cnn.meter().fps());
        std::printf("%-22s %11.1f%% %11.1f%% %10.1f\n", "background subtraction",
                    100.0f * classical_m.sensitivity(),
                    100.0f * classical_m.precision(), classical_meter.fps());
    }
    std::printf("\nExpected shape: comparable-or-better CNN accuracy on moving "
                "traffic; the classical method collapses on parked vehicles "
                "(scenario B) while the CNN does not.\n");
    return 0;
}
