// Fig. 1 + Fig. 2 reproduction: the layer tables of the four baseline
// network structures, with per-layer geometry and per-model totals
// (parameters, FLOPs, weight memory) plus the paper's §III.C structural
// constraints checked inline.
#include <cstdio>

#include "bench_util.hpp"
#include "platform/platform_model.hpp"

int main() {
    using namespace dronet;
    std::printf("== Fig. 1: Baseline network structures (input 416x416x3) ==\n");
    for (ModelId id : all_models()) {
        Network net = build_model(id, {.input_size = 416});
        std::printf("\n--- %s ---\n", to_string(id).c_str());
        std::printf("%s", net.describe().c_str());
        int convs = 0, pools = 0;
        for (std::size_t i = 0; i < net.num_layers(); ++i) {
            convs += net.layer(static_cast<int>(i)).kind() == LayerKind::kConvolutional;
            pools += net.layer(static_cast<int>(i)).kind() == LayerKind::kMaxPool;
        }
        std::printf("conv layers: %d (paper: 9), maxpool layers: %d (paper: 4-6)\n",
                    convs, pools);
        std::printf("params: %.3f M, flops/image: %.3f G, weight memory: %.2f MB, "
                    "grid stride: %d\n",
                    net.total_params() / 1e6, net.total_flops() / 1e9,
                    net.total_params() * 4.0 / 1e6, model_stride(id));
    }

    std::printf("\n== Fig. 2: DroNet architecture detail (3x3 + 1x1 convolutions, "
                "2x max-pool reductions) ==\n");
    Network dronet_512 = build_model(ModelId::kDroNet, {.input_size = 512});
    std::printf("%s", dronet_512.describe().c_str());

    std::printf("\n== Model comparison summary (416x416) ==\n");
    std::printf("%-12s %10s %10s %12s %14s\n", "model", "params(M)", "flops(G)",
                "weights(MB)", "flops vs DroNet");
    const double dronet_flops =
        static_cast<double>(build_model(ModelId::kDroNet, {.input_size = 416}).total_flops());
    for (ModelId id : all_models()) {
        Network net = build_model(id, {.input_size = 416});
        std::printf("%-12s %10.3f %10.3f %12.2f %13.1fx\n", to_string(id).c_str(),
                    net.total_params() / 1e6, net.total_flops() / 1e9,
                    net.total_params() * 4.0 / 1e6, net.total_flops() / dronet_flops);
    }
    return 0;
}
