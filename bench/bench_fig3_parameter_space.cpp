// Fig. 3 reproduction: normalized FPS / IoU / Sensitivity / Precision for
// every model across the input-size sweep on the CPU platform, plus the
// §IV.A ratio claims (TinyYoloNet ~10x TinyYoloVoc, DroNet ~30x TinyYoloVoc,
// SmallYoloV3 fastest).
//
// Accuracy columns come from the CPU-budget checkpoints evaluated at the
// proxy size ladder; FPS columns come from the calibrated i5-2520M roofline
// model applied to the full-scale architectures at the paper sizes
// (EXPERIMENTS.md documents this split).
#include <cstdio>
#include <map>

#include "bench_util.hpp"
#include "eval/score.hpp"
#include "platform/platform_model.hpp"

int main() {
    using namespace dronet;
    using namespace dronet::bench;
    const DetectionDataset train_set = benchmark_train_set();
    const DetectionDataset test_set = benchmark_test_set(eval_count());
    const PlatformSpec i5 = intel_i5_2520m();

    struct Row {
        ModelId model;
        int paper_size;
        double fps;
        float iou, sens, prec;
    };
    std::vector<Row> rows;

    for (ModelId id : all_models()) {
        Network net = load_or_train(id, train_set);
        for (std::size_t s = 0; s < kProxySizes.size(); ++s) {
            // Tiny-family models need sizes divisible by 32; the proxy ladder
            // satisfies both strides.
            const DetectionMetrics m = eval_at(net, test_set, kProxySizes[s]);
            Network paper_net = build_model(id, {.input_size = kPaperSizes[s]});
            rows.push_back(Row{id, kPaperSizes[s], estimate_fps(paper_net, i5),
                               m.avg_iou(), m.sensitivity(), m.precision()});
        }
    }

    // Per-metric normalization across all rows — exactly the paper's Fig. 3
    // presentation ("normalized by first dividing with the maximum value of
    // each metric across all CNNs").
    std::vector<float> fps, iou, sens, prec;
    for (const Row& r : rows) {
        fps.push_back(static_cast<float>(r.fps));
        iou.push_back(r.iou);
        sens.push_back(r.sens);
        prec.push_back(r.prec);
    }
    const auto nfps = normalize_by_max(fps);
    const auto niou = normalize_by_max(iou);
    const auto nsens = normalize_by_max(sens);
    const auto nprec = normalize_by_max(prec);

    std::printf("\n== Fig. 3: normalized metrics per model / input size (i5-2520M) ==\n");
    std::printf("%-12s %6s | %8s %8s %8s %8s | %8s %6s %6s %6s\n", "model", "size",
                "nFPS", "nIoU", "nSens", "nPrec", "FPS", "IoU", "Sens", "Prec");
    print_rule();
    for (std::size_t i = 0; i < rows.size(); ++i) {
        const Row& r = rows[i];
        std::printf("%-12s %6d | %8.3f %8.3f %8.3f %8.3f | %8.2f %6.3f %6.3f %6.3f\n",
                    to_string(r.model).c_str(), r.paper_size, nfps[i], niou[i],
                    nsens[i], nprec[i], r.fps, r.iou, r.sens, r.prec);
        if (i % kPaperSizes.size() == kPaperSizes.size() - 1) print_rule();
    }

    // §IV.A ratio claims at equal input size (416).
    std::map<ModelId, double> fps416;
    for (const Row& r : rows) {
        if (r.paper_size == 416) fps416[r.model] = r.fps;
    }
    std::printf("\n== §IV.A speed ratios at input 416 (paper claims in parens) ==\n");
    std::printf("TinyYoloNet / TinyYoloVoc : %5.1fx  (~10x)\n",
                fps416[ModelId::kTinyYoloNet] / fps416[ModelId::kTinyYoloVoc]);
    std::printf("DroNet      / TinyYoloVoc : %5.1fx  (~30x)\n",
                fps416[ModelId::kDroNet] / fps416[ModelId::kTinyYoloVoc]);
    std::printf("SmallYoloV3 fastest of all: %s\n",
                (fps416[ModelId::kSmallYoloV3] > fps416[ModelId::kDroNet] &&
                 fps416[ModelId::kSmallYoloV3] > fps416[ModelId::kTinyYoloNet])
                    ? "yes (matches paper)"
                    : "NO (mismatch)");

    // §IV.A.2 input-size trends averaged over models.
    double sens_gain = 0, fps_loss = 0;
    int pairs = 0;
    for (ModelId id : all_models()) {
        float sens_small = 0, sens_big = 0;
        double fps_small = 0, fps_big = 0;
        for (const Row& r : rows) {
            if (r.model != id) continue;
            if (r.paper_size == kPaperSizes.front()) {
                sens_small = r.sens;
                fps_small = r.fps;
            }
            if (r.paper_size == kPaperSizes.back()) {
                sens_big = r.sens;
                fps_big = r.fps;
            }
        }
        if (sens_small > 0 && fps_small > 0) {
            sens_gain += sens_big / sens_small;
            fps_loss += fps_big / fps_small;
            ++pairs;
        }
    }
    if (pairs > 0) {
        std::printf("\n== §IV.A.2 input-size trends (smallest -> largest size) ==\n");
        std::printf("mean sensitivity gain: %.2fx (paper: ~1.28x)\n", sens_gain / pairs);
        std::printf("mean FPS retention   : %.2fx (paper: ~0.81x per step; "
                    "end-to-end lower)\n",
                    fps_loss / pairs);
    }
    return 0;
}
