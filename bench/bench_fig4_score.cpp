// Fig. 4 reproduction: the weighted composite Score (eq. 3, w = 0.4 FPS /
// 0.2 IoU / 0.2 Sensitivity / 0.2 Precision) for every model x input size,
// and the winning configuration. The paper selects DroNet at 512x512.
#include <cstdio>

#include "bench_util.hpp"
#include "eval/score.hpp"
#include "platform/platform_model.hpp"

int main() {
    using namespace dronet;
    using namespace dronet::bench;
    const DetectionDataset train_set = benchmark_train_set();
    const DetectionDataset test_set = benchmark_test_set(eval_count());
    const PlatformSpec i5 = intel_i5_2520m();

    struct Entry {
        ModelId model;
        int paper_size;
        ScoreInputs inputs;
    };
    std::vector<Entry> entries;
    for (ModelId id : all_models()) {
        Network net = load_or_train(id, train_set);
        for (std::size_t s = 0; s < kProxySizes.size(); ++s) {
            const DetectionMetrics m = eval_at(net, test_set, kProxySizes[s]);
            Network paper_net = build_model(id, {.input_size = kPaperSizes[s]});
            entries.push_back(
                Entry{id, kPaperSizes[s],
                      ScoreInputs{static_cast<float>(estimate_fps(paper_net, i5)),
                                  m.avg_iou(), m.sensitivity(), m.precision()}});
        }
    }

    std::vector<ScoreInputs> rows;
    rows.reserve(entries.size());
    for (const Entry& e : entries) rows.push_back(e.inputs);
    const ScoreWeights weights;  // the paper's 0.4/0.2/0.2/0.2
    const std::vector<float> scores = score_table(rows, weights);

    std::printf("== Fig. 4: weighted Score(w), w = {FPS:%.1f IoU:%.1f Sens:%.1f "
                "Prec:%.1f} ==\n",
                weights.fps, weights.iou, weights.sensitivity, weights.precision);
    std::printf("%-12s %6s %8s   (raw: %6s %6s %6s %6s)\n", "model", "size", "Score",
                "FPS", "IoU", "Sens", "Prec");
    print_rule();
    std::size_t best = 0;
    // Best score per model for the Fig. 4 bar chart.
    for (std::size_t i = 0; i < entries.size(); ++i) {
        if (scores[i] > scores[best]) best = i;
        std::printf("%-12s %6d %8.3f   (%8.2f %6.3f %6.3f %6.3f)\n",
                    to_string(entries[i].model).c_str(), entries[i].paper_size,
                    scores[i], entries[i].inputs.fps, entries[i].inputs.iou,
                    entries[i].inputs.sensitivity, entries[i].inputs.precision);
    }
    print_rule();
    std::printf("\nBest per model:\n");
    for (ModelId id : all_models()) {
        std::size_t arg = entries.size();
        for (std::size_t i = 0; i < entries.size(); ++i) {
            if (entries[i].model == id && (arg == entries.size() || scores[i] > scores[arg])) {
                arg = i;
            }
        }
        std::printf("  %-12s best at %d with Score %.3f\n", to_string(id).c_str(),
                    entries[arg].paper_size, scores[arg]);
    }
    std::printf("\nOverall winner: %s at %d (Score %.3f) — paper selects DroNet@512\n",
                to_string(entries[best].model).c_str(), entries[best].paper_size,
                scores[best]);
    return 0;
}
