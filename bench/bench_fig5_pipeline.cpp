// Fig. 5 / §IV.B deployment loop: frame-by-frame detection on a synthetic
// UAV video feed, reporting streaming FPS/latency and accuracy, plus the
// §III.D altitude-filter extension ablation (the paper's proposed-but-
// unimplemented application-level optimization).
#include <cstdio>

#include "bench_util.hpp"
#include "core/visualize.hpp"
#include "image/ppm.hpp"
#include "video/frame_source.hpp"
#include "video/pipeline.hpp"

int main() {
    using namespace dronet;
    using namespace dronet::bench;
    const DetectionDataset train_set = benchmark_train_set();
    Network net = load_or_train(ModelId::kDroNet, train_set);
    net.set_batch(1);
    net.resize_input(224, 224);  // proxy for the paper's DroNet-512

    VideoConfig vc;
    vc.scene = benchmark_scene_config(256);
    vc.scene.noise_stddev = 0;
    vc.num_vehicles = 4;
    vc.seed = 2020;

    constexpr int kFrames = 30;
    std::printf("== §IV.B streaming pipeline: %d synthetic UAV frames ==\n", kFrames);
    for (const bool altitude_filter : {false, true}) {
        UavFrameSource source(vc);
        PipelineConfig pc;
        pc.altitude_filter_enabled = altitude_filter;
        // Camera/altitude chosen so a benchmark vehicle (0.10-0.22 of frame)
        // is plausible while oversized false detections are not.
        pc.camera = CameraModel{400.0f, 256, 256};
        pc.altitude_m = 25.0f;
        DetectionPipeline pipeline(net, pc);
        DetectionMetrics metrics;
        for (int f = 0; f < kFrames; ++f) {
            const SceneSample frame = source.next_frame();
            const FrameResult r = pipeline.process(frame.image);
            metrics += match_detections(r.detections, frame.truths, 0.5f);
            if (f == 0 && !altitude_filter) {
                // Fig. 5a-style visualization of the first frame.
                const Image vis = draw_detections(frame.image, r.detections);
                write_ppm(vis, "fig5_detections.ppm");
            }
        }
        std::printf("altitude filter %-3s: %6.2f FPS, %6.2f ms/frame, "
                    "sens %.3f, prec %.3f, %.2f vehicles/frame\n",
                    altitude_filter ? "on" : "off", pipeline.meter().fps(),
                    pipeline.meter().mean_latency_ms(), metrics.sensitivity(),
                    metrics.precision(), pipeline.mean_vehicles_per_frame());
    }
    std::printf("(first-frame visualization written to fig5_detections.ppm)\n");
    return 0;
}
