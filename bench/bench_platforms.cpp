// §IV.B reproduction: DroNet on the UAV platforms.
//
// Paper anchor points:
//   * Odroid-XU4:     DroNet ~8-10 FPS at ~95% accuracy; TinyYoloVoc 0.1 FPS
//                     => "40x faster" headline.
//   * Raspberry Pi 3: DroNet 5-6 FPS at ~95% accuracy.
//   * Abstract:       5-18 FPS across platforms.
//
// FPS on the paper platforms comes from the calibrated roofline model on the
// full-scale models; FPS on this host is *measured* (real forward passes);
// accuracy comes from the shipped checkpoint on the synthetic test set.
#include <cstdio>

#include "bench_util.hpp"
#include "eval/fps_meter.hpp"
#include "platform/platform_model.hpp"

int main() {
    using namespace dronet;
    using namespace dronet::bench;

    std::printf("== §IV.B: model FPS per platform (roofline model, full-scale nets) ==\n");
    std::printf("%-12s %6s | %14s %12s %16s\n", "model", "size", "i5-2520M",
                "Odroid-XU4", "Raspberry Pi 3");
    print_rule();
    for (ModelId id : all_models()) {
        for (int size : {416, 512}) {
            Network net = build_model(id, {.input_size = size});
            std::printf("%-12s %6d | %12.2f %12.2f %14.2f\n", to_string(id).c_str(),
                        size, estimate_fps(net, intel_i5_2520m()),
                        estimate_fps(net, odroid_xu4()),
                        estimate_fps(net, raspberry_pi3()));
        }
    }
    print_rule();

    {
        Network dronet512 = build_model(ModelId::kDroNet, {.input_size = 512});
        Network voc = build_model(ModelId::kTinyYoloVoc, {.input_size = 416});
        const double odroid_dronet = estimate_fps(dronet512, odroid_xu4());
        const double odroid_voc = estimate_fps(voc, odroid_xu4());
        std::printf("\nOdroid-XU4 headline: DroNet-512 %.1f FPS (paper 8-10), "
                    "TinyYoloVoc %.2f FPS (paper 0.1), speedup %.0fx (paper '40x', "
                    "published numbers imply 80-100x)\n",
                    odroid_dronet, odroid_voc, odroid_dronet / odroid_voc);
        Network dronet352 = build_model(ModelId::kDroNet, {.input_size = 352});
        double min_fps = 1e9, max_fps = 0;
        for (const PlatformSpec& p : paper_platforms()) {
            min_fps = std::min(min_fps, estimate_fps(dronet512, p));
            max_fps = std::max(max_fps, estimate_fps(dronet352, p));
        }
        std::printf("DroNet across platforms/sizes: %.1f - %.1f FPS (paper: 5-18)\n",
                    min_fps, max_fps);
    }

    // Host-measured FPS: real forward passes of the full-scale DroNet.
    std::printf("\n== Host (measured, real forward passes) ==\n");
    const PlatformSpec host = calibrate_host_platform();
    std::printf("host sustained GEMM: %.2f GFLOP/s\n", host.effective_gflops);
    for (int size : {352, 512}) {
        Network net = build_model(ModelId::kDroNet, {.input_size = size});
        Tensor input(net.input_shape());
        const double fps = measure_fps([&] { net.forward(input); }, 1, 3);
        std::printf("DroNet-%d: measured %.2f FPS, roofline-predicted %.2f FPS\n",
                    size, fps, estimate_fps(net, host));
    }

    // Accuracy on the synthetic benchmark ("accuracy maintained around 95%").
    std::printf("\n== Detection accuracy of the shipped DroNet checkpoint ==\n");
    const DetectionDataset train_set = benchmark_train_set();
    const DetectionDataset test_set = benchmark_test_set(eval_count());
    Network net = load_or_train(ModelId::kDroNet, train_set);
    const DetectionMetrics m = eval_at(net, test_set, 224);  // proxy for 512
    std::printf("DroNet @512-proxy: sensitivity %.1f%%, precision %.1f%%, IoU %.3f "
                "(paper: ~95%% on its aerial dataset)\n",
                100.0f * m.sensitivity(), 100.0f * m.precision(), m.avg_iou());
    return 0;
}
