// bench_serve_throughput — scaling curve of the multi-worker detection
// service: frames/s and tail latency as the worker count sweeps
// 1..hardware_concurrency at input size 512 (paper-scale input on the
// full DroNet architecture, random weights — timing only).
//
// Output: one JSON line per worker count, same style as the other bench_*
// harnesses, plus a human-readable summary table on stderr. After the sweep,
// a micro-batching ablation runs the same load at 4 workers with
// max_batch 1 vs 4 (ServiceConfig micro-batching, docs/serving.md) and
// reports the throughput ratio plus the realized batch-size histogram.
//
//   DRONET_BENCH_SERVE_FRAMES=N   frames per sweep point (default 48)
//   DRONET_BENCH_SERVE_SIZE=S     input size (default 512)
//   DRONET_BENCH_SERVE_MAX_WORKERS=N  sweep ceiling (default
//                                     hardware_concurrency; raise to probe
//                                     oversubscription on small hosts)
#include <cstdio>
#include <cstdlib>
#include <future>
#include <thread>
#include <vector>

#include "data/dataset.hpp"
#include "models/model_zoo.hpp"
#include "serve/detection_service.hpp"

namespace {

int env_int(const char* name, int fallback) {
    if (const char* v = std::getenv(name)) return std::max(1, std::atoi(v));
    return fallback;
}

// Runs `total_frames` through a fresh service (after a per-worker warm-up)
// and returns the warm throughput in frames/s; `snap_out` receives the final
// stats snapshot (for the batch-size histogram).
double run_point(const dronet::Network& net, const dronet::DetectionDataset& frames,
                 int workers, int max_batch, long long batch_timeout_us,
                 int total_frames, dronet::serve::ServeStatsSnapshot* snap_out) {
    using namespace dronet;
    serve::ServiceConfig sc;
    sc.workers = workers;
    sc.queue_capacity = 16;
    sc.policy = serve::BackpressurePolicy::kBlock;
    sc.max_batch = max_batch;
    sc.batch_timeout_us = batch_timeout_us;
    serve::DetectionService service(net, sc);
    {
        std::vector<std::future<serve::ServeResult>> warm;
        for (int i = 0; i < workers; ++i) {
            warm.push_back(
                service.submit(frames.image(static_cast<std::size_t>(i) % frames.size())));
        }
        for (auto& f : warm) (void)f.get();
    }
    const serve::ServeStatsSnapshot before = service.stats();
    std::vector<std::future<serve::ServeResult>> futures;
    futures.reserve(static_cast<std::size_t>(total_frames));
    for (int f = 0; f < total_frames; ++f) {
        futures.push_back(
            service.submit(frames.image(static_cast<std::size_t>(f) % frames.size())));
    }
    for (auto& fut : futures) (void)fut.get();
    service.drain();
    const serve::ServeStatsSnapshot snap = service.stats();
    service.stop();
    if (snap_out != nullptr) *snap_out = snap;
    const double wall = snap.wall_seconds - before.wall_seconds;
    return wall > 0 ? static_cast<double>(snap.completed - before.completed) / wall : 0.0;
}

}  // namespace

int main() {
    using namespace dronet;
    const int size = env_int("DRONET_BENCH_SERVE_SIZE", 512);
    const int frames_per_point = env_int("DRONET_BENCH_SERVE_FRAMES", 48);
    const int max_workers = env_int(
        "DRONET_BENCH_SERVE_MAX_WORKERS",
        static_cast<int>(std::max(1u, std::thread::hardware_concurrency())));

    Network net = build_model(ModelId::kDroNet, {.input_size = size});
    const DetectionDataset frames =
        generate_dataset(benchmark_scene_config(size), 16, /*seed=*/0xbeef);

    std::printf("# serve throughput sweep: DroNet@%d, %d frames/point, "
                "1..%d workers\n",
                size, frames_per_point, max_workers);
    double fps_at_1 = 0;
    for (int workers = 1; workers <= max_workers; ++workers) {
        serve::ServiceConfig sc;
        sc.workers = workers;
        sc.queue_capacity = static_cast<std::size_t>(2 * workers);
        sc.policy = serve::BackpressurePolicy::kBlock;
        serve::DetectionService service(net, sc);

        // Warm-up: one frame per worker (first-touch allocations, caches).
        {
            std::vector<std::future<serve::ServeResult>> warm;
            for (int i = 0; i < workers; ++i) {
                warm.push_back(service.submit(frames.image(
                    static_cast<std::size_t>(i) % frames.size())));
            }
            for (auto& f : warm) (void)f.get();
        }
        const serve::ServeStatsSnapshot before = service.stats();

        std::vector<std::future<serve::ServeResult>> futures;
        futures.reserve(static_cast<std::size_t>(frames_per_point));
        for (int f = 0; f < frames_per_point; ++f) {
            futures.push_back(
                service.submit(frames.image(static_cast<std::size_t>(f) % frames.size())));
        }
        for (auto& fut : futures) (void)fut.get();
        service.drain();

        serve::ServeStatsSnapshot snap = service.stats();
        // Remove the warm-up frames from the throughput view (latency
        // histograms still include them; tails are conservative).
        const double measured_wall = snap.wall_seconds - before.wall_seconds;
        const double measured =
            measured_wall > 0
                ? static_cast<double>(snap.completed - before.completed) /
                      measured_wall
                : 0.0;
        if (workers == 1) fps_at_1 = measured;
        std::printf("{\"bench\":\"serve_throughput\",\"model\":\"DroNet\","
                    "\"size\":%d,\"workers\":%d,\"frames\":%d,"
                    "\"frames_per_s\":%.2f,\"speedup_vs_1\":%.2f,"
                    "\"p50_ms\":%.2f,\"p99_ms\":%.2f,\"forward_p50_ms\":%.2f,"
                    "\"queue_wait_p50_ms\":%.2f}\n",
                    size, workers, frames_per_point, measured,
                    fps_at_1 > 0 ? measured / fps_at_1 : 0.0, snap.total.p50_ms,
                    snap.total.p99_ms, snap.forward.p50_ms, snap.queue_wait.p50_ms);
        std::fflush(stdout);
        service.stop();
    }

    // Micro-batching ablation: identical load at 4 workers, frame-at-a-time
    // vs dynamic batches of up to 4 with a 2 ms linger.
    const int ab_workers = 4;
    const int ab_frames = 2 * frames_per_point;
    std::printf("# micro-batch ablation: %d workers, max_batch 1 vs 4\n", ab_workers);
    serve::ServeStatsSnapshot snap1, snap4;
    const double fps_unbatched =
        run_point(net, frames, ab_workers, /*max_batch=*/1, 0, ab_frames, &snap1);
    const double fps_batched = run_point(net, frames, ab_workers, /*max_batch=*/4,
                                         /*batch_timeout_us=*/2000, ab_frames, &snap4);
    for (const serve::ServeStatsSnapshot* snap : {&snap1, &snap4}) {
        const bool batched = snap == &snap4;
        std::printf("{\"bench\":\"serve_microbatch\",\"model\":\"DroNet\","
                    "\"size\":%d,\"workers\":%d,\"max_batch\":%d,"
                    "\"frames\":%d,\"frames_per_s\":%.2f,\"p50_ms\":%.2f,"
                    "\"p99_ms\":%.2f,\"batches\":%llu,\"batch_sizes\":{",
                    size, ab_workers, batched ? 4 : 1, ab_frames,
                    batched ? fps_batched : fps_unbatched, snap->total.p50_ms,
                    snap->total.p99_ms, static_cast<unsigned long long>(snap->batches));
        for (std::size_t i = 0; i < snap->batch_sizes.size(); ++i) {
            std::printf("%s\"%d\":%llu", i > 0 ? "," : "", snap->batch_sizes[i].first,
                        static_cast<unsigned long long>(snap->batch_sizes[i].second));
        }
        std::printf("}}\n");
    }
    std::printf("{\"bench\":\"serve_microbatch_summary\",\"batch_speedup\":%.3f}\n",
                fps_unbatched > 0 ? fps_batched / fps_unbatched : 0.0);
    std::fprintf(stderr, "# micro-batch: %.1f -> %.1f frames/s (x%.2f)\n",
                 fps_unbatched, fps_batched,
                 fps_unbatched > 0 ? fps_batched / fps_unbatched : 0.0);
    return 0;
}
