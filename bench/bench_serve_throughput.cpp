// bench_serve_throughput — scaling curve of the multi-worker detection
// service: frames/s and tail latency as the worker count sweeps
// 1..hardware_concurrency at input size 512 (paper-scale input on the
// full DroNet architecture, random weights — timing only).
//
// Output: one JSON line per worker count, same style as the other bench_*
// harnesses, plus a human-readable summary table on stderr.
//
//   DRONET_BENCH_SERVE_FRAMES=N   frames per sweep point (default 48)
//   DRONET_BENCH_SERVE_SIZE=S     input size (default 512)
//   DRONET_BENCH_SERVE_MAX_WORKERS=N  sweep ceiling (default
//                                     hardware_concurrency; raise to probe
//                                     oversubscription on small hosts)
#include <cstdio>
#include <cstdlib>
#include <future>
#include <thread>
#include <vector>

#include "data/dataset.hpp"
#include "models/model_zoo.hpp"
#include "serve/detection_service.hpp"

namespace {

int env_int(const char* name, int fallback) {
    if (const char* v = std::getenv(name)) return std::max(1, std::atoi(v));
    return fallback;
}

}  // namespace

int main() {
    using namespace dronet;
    const int size = env_int("DRONET_BENCH_SERVE_SIZE", 512);
    const int frames_per_point = env_int("DRONET_BENCH_SERVE_FRAMES", 48);
    const int max_workers = env_int(
        "DRONET_BENCH_SERVE_MAX_WORKERS",
        static_cast<int>(std::max(1u, std::thread::hardware_concurrency())));

    Network net = build_model(ModelId::kDroNet, {.input_size = size});
    const DetectionDataset frames =
        generate_dataset(benchmark_scene_config(size), 16, /*seed=*/0xbeef);

    std::printf("# serve throughput sweep: DroNet@%d, %d frames/point, "
                "1..%d workers\n",
                size, frames_per_point, max_workers);
    double fps_at_1 = 0;
    for (int workers = 1; workers <= max_workers; ++workers) {
        serve::ServiceConfig sc;
        sc.workers = workers;
        sc.queue_capacity = static_cast<std::size_t>(2 * workers);
        sc.policy = serve::BackpressurePolicy::kBlock;
        serve::DetectionService service(net, sc);

        // Warm-up: one frame per worker (first-touch allocations, caches).
        {
            std::vector<std::future<serve::ServeResult>> warm;
            for (int i = 0; i < workers; ++i) {
                warm.push_back(service.submit(frames.image(
                    static_cast<std::size_t>(i) % frames.size())));
            }
            for (auto& f : warm) (void)f.get();
        }
        const serve::ServeStatsSnapshot before = service.stats();

        std::vector<std::future<serve::ServeResult>> futures;
        futures.reserve(static_cast<std::size_t>(frames_per_point));
        for (int f = 0; f < frames_per_point; ++f) {
            futures.push_back(
                service.submit(frames.image(static_cast<std::size_t>(f) % frames.size())));
        }
        for (auto& fut : futures) (void)fut.get();
        service.drain();

        serve::ServeStatsSnapshot snap = service.stats();
        // Remove the warm-up frames from the throughput view (latency
        // histograms still include them; tails are conservative).
        const double measured_wall = snap.wall_seconds - before.wall_seconds;
        const double measured =
            measured_wall > 0
                ? static_cast<double>(snap.completed - before.completed) /
                      measured_wall
                : 0.0;
        if (workers == 1) fps_at_1 = measured;
        std::printf("{\"bench\":\"serve_throughput\",\"model\":\"DroNet\","
                    "\"size\":%d,\"workers\":%d,\"frames\":%d,"
                    "\"frames_per_s\":%.2f,\"speedup_vs_1\":%.2f,"
                    "\"p50_ms\":%.2f,\"p99_ms\":%.2f,\"forward_p50_ms\":%.2f,"
                    "\"queue_wait_p50_ms\":%.2f}\n",
                    size, workers, frames_per_point, measured,
                    fps_at_1 > 0 ? measured / fps_at_1 : 0.0, snap.total.p50_ms,
                    snap.total.p99_ms, snap.forward.p50_ms, snap.queue_wait.p50_ms);
        std::fflush(stdout);
        service.stop();
    }
    return 0;
}
