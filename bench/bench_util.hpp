// Shared helpers for the figure-reproduction benches.
#pragma once

#include <cstdio>
#include <cstdlib>
#include <optional>
#include <string>
#include <vector>

#include "data/dataset.hpp"
#include "eval/evaluator.hpp"
#include "models/model_zoo.hpp"
#include "models/pretrained.hpp"
#include "train/trainer.hpp"

namespace dronet::bench {

/// Proxy input-size ladder used for accuracy evaluation. The paper sweeps
/// 352..608 at full scale; the CPU-budget checkpoints are trained
/// multi-scale on this ladder (~0.42x), which preserves the trends
/// (EXPERIMENTS.md documents the mapping).
inline const std::vector<int> kProxySizes = {128, 160, 192, 224, 256};
inline const std::vector<int> kPaperSizes = {352, 416, 480, 544, 608};

/// Loads the pretrained checkpoint for `id`, or — when none is shipped —
/// trains a quick fallback so the bench still produces a table (with a
/// warning; accuracy columns will be weaker).
inline Network load_or_train(ModelId id, const DetectionDataset& train_set) {
    if (auto net = load_pretrained(id)) {
        std::printf("# %s: loaded pretrained checkpoint\n", to_string(id).c_str());
        return std::move(*net);
    }
    std::printf("# %s: no checkpoint found (run tools/train_models); "
                "quick-training a fallback, accuracy will be reduced\n",
                to_string(id).c_str());
    ModelOptions mo;
    mo.input_size = 160;
    mo.batch = 4;
    mo.filter_scale = 0.35f;
    mo.learning_rate = 2e-3f;
    mo.burn_in = 30;
    Network net = build_model(id, mo);
    net.region()->set_seen(0);
    TrainConfig tc;
    tc.iterations = 400;
    tc.multiscale_sizes = kProxySizes;
    Trainer trainer(net, train_set, tc);
    trainer.run();
    return net;
}

/// Number of evaluation images; override with DRONET_BENCH_EVAL_COUNT.
inline int eval_count() {
    if (const char* env = std::getenv("DRONET_BENCH_EVAL_COUNT")) {
        return std::max(4, std::atoi(env));
    }
    return 32;
}

/// Accuracy of `net` on the canonical test set at a given proxy size.
inline DetectionMetrics eval_at(Network& net, const DetectionDataset& test_set,
                                int size) {
    net.set_batch(1);
    net.resize_input(size, size);
    EvalConfig ec;
    ec.score_threshold = 0.30f;
    return evaluate_detector(net, test_set, ec);
}

inline void print_rule() {
    std::printf("-------------------------------------------------------------"
                "-----------------\n");
}

}  // namespace dronet::bench
