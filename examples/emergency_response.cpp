// Emergency response (the paper's ER use case, §I): sweep a large disaster
// area for vehicles. A high-resolution aerial mosaic is scanned in
// overlapping tiles, per-tile detections are merged with global NMS, and the
// altitude-based plausibility filter (§III.D) suppresses building-sized
// false alarms before the rescue team is notified.
//
//   $ ./build/examples/emergency_response
#include <cstdio>

#include "core/visualize.hpp"
#include "data/dataset.hpp"
#include "detect/altitude_filter.hpp"
#include "detect/nms.hpp"
#include "eval/evaluator.hpp"
#include "image/ppm.hpp"
#include "models/pretrained.hpp"
#include "train/trainer.hpp"

namespace {

using namespace dronet;

Network response_net() {
    if (auto net = load_pretrained(ModelId::kDroNet)) {
        std::printf("Using pretrained DroNet checkpoint.\n");
        return std::move(*net);
    }
    std::printf("Quick-training a detector (~30 s)...\n");
    ModelOptions mo;
    mo.input_size = 160;
    mo.batch = 4;
    mo.filter_scale = 0.5f;
    mo.learning_rate = 2e-3f;
    mo.burn_in = 30;
    Network net = build_model(ModelId::kDroNet, mo);
    const DetectionDataset train_set = benchmark_train_set(60, 192);
    TrainConfig tc;
    tc.iterations = 500;
    Trainer(net, train_set, tc).run();
    return net;
}

// Cuts `mosaic` into `tiles x tiles` overlapping patches, detects per patch
// and remaps the boxes into mosaic coordinates.
Detections sweep_area(Network& net, const Image& mosaic, int tiles,
                      const EvalConfig& post) {
    Detections merged;
    const int tile_w = mosaic.width() / tiles;
    const int tile_h = mosaic.height() / tiles;
    const int overlap = tile_w / 8;
    for (int ty = 0; ty < tiles; ++ty) {
        for (int tx = 0; tx < tiles; ++tx) {
            const int x0 = std::max(0, tx * tile_w - overlap);
            const int y0 = std::max(0, ty * tile_h - overlap);
            const int x1 = std::min(mosaic.width(), (tx + 1) * tile_w + overlap);
            const int y1 = std::min(mosaic.height(), (ty + 1) * tile_h + overlap);
            Image tile(x1 - x0, y1 - y0, mosaic.channels());
            for (int y = y0; y < y1; ++y) {
                for (int x = x0; x < x1; ++x) {
                    for (int c = 0; c < mosaic.channels(); ++c) {
                        tile.px(x - x0, y - y0, c) = mosaic.px(x, y, c);
                    }
                }
            }
            for (Detection d : detect_image(net, tile, post)) {
                // Tile-normalized -> mosaic-normalized coordinates.
                d.box.x = (d.box.x * tile.width() + static_cast<float>(x0)) / mosaic.width();
                d.box.y = (d.box.y * tile.height() + static_cast<float>(y0)) / mosaic.height();
                d.box.w = d.box.w * tile.width() / mosaic.width();
                d.box.h = d.box.h * tile.height() / mosaic.height();
                merged.push_back(d);
            }
        }
    }
    // Cross-tile duplicates (overlap region) collapse under global NMS.
    return nms(merged, 0.45f);
}

}  // namespace

int main() {
    Network net = response_net();
    net.set_batch(1);
    net.resize_input(224, 224);

    // A 2x2-km disaster area as a 512x512 mosaic with scattered vehicles.
    SceneConfig area = benchmark_scene_config(512);
    area.min_vehicles = 6;
    area.max_vehicles = 10;
    area.min_vehicle_size = 0.05f;  // vehicles are small at mosaic scale
    area.max_vehicle_size = 0.11f;
    AerialSceneGenerator gen(area, 911);
    const SceneSample scene = gen.generate();
    std::printf("Search area holds %zu stranded vehicles (ground truth).\n",
                scene.truths.size());

    EvalConfig post;
    post.score_threshold = 0.3f;
    Detections found = sweep_area(net, scene.image, /*tiles=*/2, post);
    std::printf("Tile sweep reported %zu candidate vehicles.\n", found.size());

    // Altitude plausibility filter: the UAV logs 60 m AGL.
    const AltitudeFilter filter(CameraModel{700.0f, 512, 512}, VehicleSizePrior{});
    const Detections plausible = filter.apply(found, 60.0f);
    std::printf("After the 60 m-altitude size filter: %zu plausible vehicles.\n",
                plausible.size());

    const DetectionMetrics m = match_detections(plausible, scene.truths, 0.4f);
    std::printf("Rescue summary: %d located, %d missed, %d false alarms "
                "(sensitivity %.1f%%).\n",
                m.true_positives, m.false_negatives, m.false_positives,
                100.0f * m.sensitivity());

    Image vis = draw_ground_truth(scene.image, scene.truths);
    vis = draw_detections(vis, plausible);
    write_ppm(vis, "emergency_response_map.ppm");
    std::printf("Wrote emergency_response_map.ppm\n");
    return 0;
}
