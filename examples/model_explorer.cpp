// Model explorer: prints every zoo architecture as a darknet cfg, its layer
// table, and predicted FPS on the paper's three UAV platforms — the design-
// space exploration view of §III.C / §IV.A.
//
//   $ ./build/examples/model_explorer [ModelName]
#include <cstdio>

#include "models/model_zoo.hpp"
#include "platform/platform_model.hpp"

int main(int argc, char** argv) {
    using namespace dronet;
    std::vector<ModelId> models = all_models();
    if (argc > 1) {
        models = {model_from_string(argv[1])};
    }
    for (ModelId id : models) {
        std::printf("==================== %s ====================\n",
                    to_string(id).c_str());
        Network net = build_model(id, {.input_size = 416});
        std::printf("%s\n", net.describe().c_str());
        std::printf("Predicted FPS (input 416 / 512):\n");
        for (const PlatformSpec& p : paper_platforms()) {
            Network at512 = build_model(id, {.input_size = 512});
            std::printf("  %-16s %7.2f / %7.2f\n", p.name.c_str(),
                        estimate_fps(net, p), estimate_fps(at512, p));
        }
        std::printf("\nLayer cost breakdown on the Odroid-XU4 (ms/frame):\n");
        for (const LayerCost& c : cost_breakdown(net, odroid_xu4())) {
            std::printf("  %-48s %8.2f compute + %6.2f memory\n",
                        c.description.c_str(), c.compute_ms, c.memory_ms);
        }
        std::printf("\ndarknet cfg:\n%s\n", model_cfg(id, {.input_size = 416}).c_str());
    }
    return 0;
}
