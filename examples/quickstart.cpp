// Quickstart: build a DroNet detector, run it on an aerial image, print and
// visualize the detections.
//
//   $ ./build/examples/quickstart
//
// If a trained checkpoint is available (weights/DroNet.weights — produced by
// tools/train_models) it is used; otherwise a small detector is trained on
// the fly (~30 s) so the example is self-contained.
#include <cstdio>

#include "core/detector.hpp"
#include "core/visualize.hpp"
#include "data/dataset.hpp"
#include "image/ppm.hpp"
#include "models/pretrained.hpp"
#include "train/trainer.hpp"

int main() {
    using namespace dronet;

    // 1. A detector. Prefer the shipped checkpoint; fall back to a quick
    //    self-training run on synthetic aerial scenes.
    std::optional<Network> pretrained = load_pretrained(ModelId::kDroNet);
    Network net = [&] {
        if (pretrained) {
            std::printf("Loaded pretrained DroNet checkpoint.\n");
            return std::move(*pretrained);
        }
        std::printf("No checkpoint found; quick-training a small DroNet (~30 s)...\n");
        ModelOptions mo;
        mo.input_size = 160;
        mo.batch = 4;
        mo.filter_scale = 0.5f;
        mo.learning_rate = 2e-3f;
        mo.burn_in = 30;
        Network fresh = build_model(ModelId::kDroNet, mo);
        const DetectionDataset train_set = benchmark_train_set(60, 192);
        TrainConfig tc;
        tc.iterations = 500;
        Trainer(fresh, train_set, tc).run();
        return fresh;
    }();
    net.set_batch(1);
    std::printf("%s\n", net.describe().c_str());

    // 2. An aerial image (synthetic stand-in for a UAV camera frame).
    AerialSceneGenerator gen(benchmark_scene_config(256), /*seed=*/42);
    const SceneSample scene = gen.generate();
    std::printf("Scene contains %zu vehicles (ground truth).\n", scene.truths.size());

    // 3. Detect.
    EvalConfig post;
    post.score_threshold = 0.3f;
    const Detections cars = detect_image(net, scene.image, post);
    std::printf("Detector found %zu vehicles:\n", cars.size());
    for (const Detection& d : cars) {
        std::printf("  vehicle at (%.2f, %.2f), size %.2f x %.2f, confidence %.2f\n",
                    d.box.x, d.box.y, d.box.w, d.box.h, d.score());
    }

    // 4. Visualize (PPM viewable with any image tool; GT in white).
    Image vis = draw_ground_truth(scene.image, scene.truths);
    vis = draw_detections(vis, cars);
    write_ppm(vis, "quickstart_detections.ppm");
    std::printf("Wrote quickstart_detections.ppm\n");
    return 0;
}
