// Road-traffic monitoring (the paper's RTM use case, §I): a UAV hovers over
// a road and streams frames; the pipeline detects vehicles per frame and
// reports traffic density and throughput statistics in real time.
//
//   $ ./build/examples/traffic_monitoring [frames]
#include <cstdio>
#include <cstdlib>

#include "data/dataset.hpp"
#include "eval/metrics.hpp"
#include "models/pretrained.hpp"
#include "train/trainer.hpp"
#include "video/frame_source.hpp"
#include "video/pipeline.hpp"
#include "video/tracker.hpp"

namespace {

dronet::Network monitoring_net() {
    using namespace dronet;
    if (auto net = load_pretrained(ModelId::kDroNet)) {
        std::printf("Using pretrained DroNet checkpoint.\n");
        return std::move(*net);
    }
    std::printf("Quick-training a monitoring model (~30 s)...\n");
    ModelOptions mo;
    mo.input_size = 160;
    mo.batch = 4;
    mo.filter_scale = 0.5f;
    mo.learning_rate = 2e-3f;
    mo.burn_in = 30;
    Network net = build_model(ModelId::kDroNet, mo);
    const DetectionDataset train_set = benchmark_train_set(60, 192);
    TrainConfig tc;
    tc.iterations = 500;
    Trainer(net, train_set, tc).run();
    return net;
}

}  // namespace

int main(int argc, char** argv) {
    using namespace dronet;
    const int frames = argc > 1 ? std::atoi(argv[1]) : 40;

    Network net = monitoring_net();
    net.set_batch(1);
    net.resize_input(224, 224);

    VideoConfig vc;
    vc.scene = benchmark_scene_config(256);
    vc.scene.noise_stddev = 0;
    vc.num_vehicles = 5;
    vc.seed = 7;
    UavFrameSource camera(vc);

    PipelineConfig pc;
    pc.eval.score_threshold = 0.3f;
    DetectionPipeline pipeline(net, pc);
    IouTracker tracker;  // per-vehicle identity for the traffic count

    std::printf("Monitoring %d frames over a %dx%d aerial view with %zu vehicles...\n",
                frames, camera.width(), camera.height(), camera.vehicle_count());
    DetectionMetrics metrics;
    for (int f = 0; f < frames; ++f) {
        const SceneSample frame = camera.next_frame();
        const FrameResult r = pipeline.process(frame.image);
        tracker.update(r.detections);
        metrics += match_detections(r.detections, frame.truths, 0.5f);
        if (f % 10 == 0) {
            std::printf("  frame %3d: %zu vehicles detected, %zu live tracks, "
                        "%.1f ms latency\n",
                        r.frame_index, r.detections.size(),
                        tracker.confirmed_tracks().size(), r.latency_ms);
        }
    }

    std::printf("\n=== Traffic report ===\n");
    std::printf("frames processed : %d\n", pipeline.frames_processed());
    std::printf("throughput       : %.2f FPS (mean latency %.1f ms, worst %.1f ms)\n",
                pipeline.meter().fps(), pipeline.meter().mean_latency_ms(),
                pipeline.meter().max_latency_ms());
    std::printf("traffic density  : %.2f vehicles/frame\n",
                pipeline.mean_vehicles_per_frame());
    std::printf("distinct vehicles: %d tracked over the session\n",
                tracker.total_confirmed());
    std::printf("detection quality: sensitivity %.1f%%, precision %.1f%%\n",
                100.0f * metrics.sensitivity(), 100.0f * metrics.precision());
    return 0;
}
