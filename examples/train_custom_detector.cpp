// Training walkthrough: the paper's §III pipeline end to end — collect an
// annotated dataset, train a single-shot detector with the YOLO region loss,
// checkpoint it, and evaluate IoU / Sensitivity / Precision on held-out data.
//
//   $ ./build/examples/train_custom_detector [iterations]
#include <cstdio>
#include <cstdlib>

#include "data/annotations.hpp"
#include "data/dataset.hpp"
#include "eval/evaluator.hpp"
#include "models/model_zoo.hpp"
#include "nn/weights_io.hpp"
#include "train/trainer.hpp"

int main(int argc, char** argv) {
    using namespace dronet;
    const int iterations = argc > 1 ? std::atoi(argv[1]) : 400;

    // §III.A data collection: synthetic stand-in for the paper's 350 aerial
    // images (~5000 vehicles), with illumination/viewpoint/occlusion/colour
    // variation baked into the generator.
    const DetectionDataset all = benchmark_train_set(80, 192);
    const auto [train_set, test_set] = all.split(0.2f);
    std::printf("Dataset: %zu train / %zu test images, %zu vehicles total.\n",
                train_set.size(), test_set.size(), all.total_objects());
    save_dataset(test_set, "custom_detector_testset");  // darknet-format export
    std::printf("Exported the test split to custom_detector_testset/ "
                "(PPM + darknet labels).\n");

    // §III.B training: YOLO region loss, SGD + momentum, burn-in, multi-scale.
    ModelOptions mo;
    mo.input_size = 160;
    mo.batch = 4;
    mo.filter_scale = 0.5f;
    mo.learning_rate = 2e-3f;
    mo.burn_in = 30;
    Network net = build_model(ModelId::kDroNet, mo);
    std::printf("Training DroNet (%lld params) for %d iterations...\n",
                static_cast<long long>(net.total_params()), iterations);
    TrainConfig tc;
    tc.iterations = iterations;
    tc.multiscale_sizes = {128, 160, 192};
    tc.on_batch = [](const TrainLogEntry& e) {
        if (e.iteration % 100 == 0) {
            std::printf("  iter %4d: loss %7.3f (avg %7.3f), batch IoU %.3f, "
                        "recall %.2f, lr %.5f\n",
                        e.iteration, e.loss, e.avg_loss, e.avg_iou, e.recall50,
                        e.learning_rate);
        }
    };
    Trainer trainer(net, train_set, tc);
    trainer.run();

    // Checkpoint (darknet-format binary weights).
    net.set_batch(1);
    save_weights(net, "custom_detector.weights");
    std::printf("Saved custom_detector.weights\n");

    // §IV evaluation: the paper's metrics on held-out scenes.
    net.resize_input(192, 192);
    EvalConfig ec;
    ec.score_threshold = 0.3f;
    const DetectionMetrics m = evaluate_detector(net, test_set, ec);
    std::printf("\nHeld-out results @192: IoU %.3f, sensitivity %.1f%%, "
                "precision %.1f%% (tp=%d fp=%d fn=%d)\n",
                m.avg_iou(), 100.0f * m.sensitivity(), 100.0f * m.precision(),
                m.true_positives, m.false_positives, m.false_negatives);
    return 0;
}
