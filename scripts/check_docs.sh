#!/usr/bin/env bash
# Documentation link checker. Fails (exit 1) when:
#   * a relative markdown link in README.md or docs/*.md points at a path
#     that does not exist (resolved against the linking file's directory), or
#   * a docs/*.md file is not linked from the docs/README.md index.
# External links (http/https/mailto) and pure #anchors are not checked.
# Run from anywhere: scripts/check_docs.sh
set -euo pipefail
cd "$(dirname "$0")/.."

fail=0

check_file() {
  local file="$1"
  local dir
  dir="$(dirname "$file")"
  # Markdown inline links: capture the (...) target of every [...](...).
  # Fenced code blocks are skipped — C++ lambdas look like markdown links.
  local targets
  targets="$(awk '/^```/ { fence = !fence; next } !fence' "$file" \
    | grep -oE '\]\([^)]+\)' | sed -E 's/^\]\(//; s/\)$//')" || true
  local t
  while IFS= read -r t; do
    [[ -z "$t" ]] && continue
    case "$t" in
      http://*|https://*|mailto:*|\#*) continue ;;
    esac
    local path="${t%%#*}"          # strip any #anchor suffix
    [[ -z "$path" ]] && continue
    if [[ ! -e "$dir/$path" ]]; then
      echo "BROKEN LINK: $file -> $t (resolved $dir/$path)"
      fail=1
    fi
  done <<< "$targets"
}

for f in README.md docs/*.md; do
  check_file "$f"
done

# Every docs/ page must be reachable from the index.
for f in docs/*.md; do
  base="$(basename "$f")"
  [[ "$base" == "README.md" ]] && continue
  if ! grep -q "($base)" docs/README.md; then
    echo "UNINDEXED DOC: $f is not linked from docs/README.md"
    fail=1
  fi
done

# Every DRONET_* configuration surface must be documented in
# docs/build_flags.md: CMake options/cache variables declared in any
# CMakeLists.txt, and runtime environment toggles read via getenv in source.
flags="$( { grep -rhoE '(option|set)\(DRONET_[A-Z0-9_]+' \
              --include=CMakeLists.txt . | sed -E 's/^(option|set)\(//'; \
            grep -rhoE 'getenv\("DRONET_[A-Z0-9_]+"' src tools \
              | sed -E 's/^getenv\("//; s/"$//'; } | sort -u)" || true
while IFS= read -r flag; do
  [[ -z "$flag" ]] && continue
  if ! grep -q "$flag" docs/build_flags.md; then
    echo "UNDOCUMENTED FLAG: $flag missing from docs/build_flags.md"
    fail=1
  fi
done <<< "$flags"

if [[ "$fail" -ne 0 ]]; then
  echo "check_docs: FAILED"
  exit 1
fi
echo "check_docs: all links resolve, all docs indexed"
