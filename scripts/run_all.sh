#!/usr/bin/env bash
# Full reproduction sweep: build, test, retrain checkpoints (optional),
# regenerate every figure/table. From the repository root:
#   scripts/run_all.sh [--retrain]
set -euo pipefail
cd "$(dirname "$0")/.."

cmake -B build -G Ninja
cmake --build build

if [[ "${1:-}" == "--retrain" ]]; then
  ./build/tools/train_models --out weights
fi

ctest --test-dir build --output-on-failure 2>&1 | tee test_output.txt

# ThreadSanitizer pass over the threaded code paths (bounded queue,
# DetectionService workers, threaded GEMM): rebuild the `concurrency`-labeled
# tests in a dedicated sanitized tree and run just that label.
cmake -B build-tsan -G Ninja -DDRONET_SANITIZE=thread \
  -DDRONET_BUILD_BENCH=OFF -DDRONET_BUILD_EXAMPLES=OFF
cmake --build build-tsan
ctest --test-dir build-tsan -L concurrency --output-on-failure 2>&1 \
  | tee tsan_output.txt

for b in build/bench/*; do
  echo "===== $b ====="
  "$b"
done 2>&1 | tee bench_output.txt
