#!/usr/bin/env bash
# Full reproduction sweep: build, test, retrain checkpoints (optional),
# regenerate every figure/table. From the repository root:
#   scripts/run_all.sh [--retrain]
set -euo pipefail
cd "$(dirname "$0")/.."

cmake -B build -G Ninja -DDRONET_WERROR=ON
cmake --build build

if [[ "${1:-}" == "--retrain" ]]; then
  ./build/tools/train_models --out weights
fi

ctest --test-dir build --output-on-failure 2>&1 | tee test_output.txt

# SIMD dispatch stage (docs/vectorization.md): rerun the kernel-sensitive
# label with the dispatch level forced from startup, exercising the same
# from-process-start path a user hits with DRONET_SIMD=... The scalar run
# must pass everywhere; the avx2 run is gated on host support (the dispatcher
# would silently downgrade, which would test scalar twice and prove nothing).
DRONET_SIMD=scalar ctest --test-dir build -L simd-kernels \
  --output-on-failure 2>&1 | tee simd_scalar_output.txt
if grep -qw avx2 /proc/cpuinfo; then
  DRONET_SIMD=avx2 ctest --test-dir build -L simd-kernels \
    --output-on-failure 2>&1 | tee simd_avx2_output.txt
else
  echo "host CPU lacks AVX2; skipping DRONET_SIMD=avx2 test pass" \
    | tee simd_avx2_output.txt
fi

# Calibrated int8 serving stage (docs/quantization.md): the int8 label runs
# in the suite above (and again per SIMD level — test_quantize carries the
# simd-kernels label too, and its GEMM is memcmp-gated across levels); here
# the full service path serves a micro-batched int8 run end to end:
# --expect-complete exits non-zero if any frame resolved as anything but kOk.
ctest --test-dir build -L int8 --output-on-failure 2>&1 | tee int8_output.txt
./build/tools/serve_bench --workers 2 --streams 4 --frames-per-stream 8 \
  --size 96 --batch 4 --batch-timeout-us 1000 --int8 --expect-complete 2>&1 \
  | tee int8_serve_bench_output.txt

# Documentation hygiene: every relative link in README.md and docs/ must
# resolve, every docs/ page must be indexed in docs/README.md, and every
# DRONET_* build/runtime toggle must be documented in docs/build_flags.md.
scripts/check_docs.sh

# Static analysis over the library and tools (the curated check set lives in
# .clang-tidy; compile_commands.json comes from CMAKE_EXPORT_COMPILE_COMMANDS).
# Enforcing: WarningsAsErrors '*' makes clang-tidy exit non-zero on any
# finding, and pipefail propagates that — a hit fails the sweep. The tool is
# optional in minimal containers, so gate on its presence.
if command -v clang-tidy >/dev/null 2>&1; then
  git ls-files 'src/*.cpp' 'tools/*.cpp' \
    | xargs clang-tidy -p build --quiet 2>&1 | tee tidy_output.txt
else
  echo "clang-tidy not found; skipping static-analysis pass" | tee tidy_output.txt
fi

# Concurrency-correctness stage (docs/static_analysis.md): rebuild with the
# runtime lock-order deadlock detector compiled in (every sync::Mutex
# acquisition feeds the global lock-order graph; an ABBA inversion aborts
# with both acquisition stacks) and rerun the threaded + cluster labels.
# Under Clang this build also promotes -Wthread-safety to an error
# (DRONET_WERROR) and registers the tests/compile_fail negative cases.
cmake -B build-sync -G Ninja -DDRONET_WERROR=ON -DDRONET_DEADLOCK_DETECT=ON \
  -DDRONET_BUILD_BENCH=OFF -DDRONET_BUILD_EXAMPLES=OFF
cmake --build build-sync
ctest --test-dir build-sync -L "concurrency|cluster" --output-on-failure 2>&1 \
  | tee sync_output.txt

# ThreadSanitizer pass over the threaded code paths (bounded queue,
# DetectionService workers, threaded GEMM): rebuild the `concurrency`-labeled
# tests in a dedicated sanitized tree and run just that label.
cmake -B build-tsan -G Ninja -DDRONET_SANITIZE=thread \
  -DDRONET_BUILD_BENCH=OFF -DDRONET_BUILD_EXAMPLES=OFF
cmake --build build-tsan
ctest --test-dir build-tsan -L concurrency --output-on-failure 2>&1 \
  | tee tsan_output.txt

# Cluster tier under TSan: the in-process slice (router + FakeWorker sockets,
# receiver/health/dispatch threads all in one process — the part TSan can
# see). Spawned-worker tests stay in the ASan stage below: TSan cannot follow
# fork/exec.
ctest --test-dir build-tsan -L cluster-inproc --output-on-failure 2>&1 \
  | tee tsan_cluster_output.txt

# Micro-batching under TSan: drive the full service (batch collector, batched
# forward, per-future completion) through serve_bench with --expect-complete,
# which exits non-zero if any submitted frame was dropped, rejected, or left
# incomplete.
./build-tsan/tools/serve_bench --workers 2 --streams 4 --frames-per-stream 8 \
  --size 96 --batch 4 --batch-timeout-us 1000 --expect-complete 2>&1 \
  | tee tsan_serve_bench_output.txt

# Chaos stage under TSan: deterministic fault injection through the live
# service (watchdog respawn, retries, breaker, deadlines, degradation,
# crash-safe checkpointing — tests/test_chaos.cpp), then a fault-injected
# serve_bench run: a worker-killing forward fault plus per-frame deadlines
# must still resolve every future (no --expect-complete: the killed frame is
# counted `failed` by design, and the run exits non-zero if any future hangs).
ctest --test-dir build-tsan -L chaos --output-on-failure 2>&1 \
  | tee tsan_chaos_output.txt
./build-tsan/tools/serve_bench --workers 2 --streams 2 --frames-per-stream 8 \
  --size 96 --deadline-ms 30000 --retries 1 \
  --inject "network.forward:kill:nth=5:times=1" 2>&1 \
  | tee tsan_chaos_bench_output.txt

# Model lifecycle stage under TSan (docs/robustness.md, "Model lifecycle"):
# worker threads keep serving while reload_checkpoint canaries and swaps the
# model set — the exact shared-state handoff TSan exists to check. The label
# first, then a live reload-under-load through serve_bench: the pretrained
# checkpoint hot-swaps mid-run and --expect-complete exits non-zero if any
# future was dropped across the swap.
ctest --test-dir build-tsan -L reload --output-on-failure 2>&1 \
  | tee tsan_reload_output.txt
./build-tsan/tools/serve_bench --workers 2 --streams 4 --frames-per-stream 8 \
  --size 96 --reload weights/DroNet.weights --reload-after-ms 30 \
  --expect-complete 2>&1 | tee tsan_reload_bench_output.txt

# AddressSanitizer + UBSan pass over the FULL suite (memory errors and
# undefined behaviour are not confined to the threaded paths).
cmake -B build-asan -G Ninja -DDRONET_SANITIZE=address \
  -DDRONET_BUILD_BENCH=OFF -DDRONET_BUILD_EXAMPLES=OFF
cmake --build build-asan
ctest --test-dir build-asan --output-on-failure 2>&1 \
  | tee asan_output.txt

# Int8 stage under ASan: the quantized path moves through raw int8/int32
# scratch with hand-written bounds (im2col columns, per-filter rows) — the
# exact code ASan exists to check. The full-suite run above covers it too;
# rerun by label so a failure is attributable at a glance.
ctest --test-dir build-asan -L int8 --output-on-failure 2>&1 \
  | tee asan_int8_output.txt

# Chaos stage under ASan: the full suite above already includes the chaos
# label, but rerun it by name so a failure is attributable at a glance (and
# so the label is exercised even if someone filters the suite above).
ctest --test-dir build-asan -L chaos --output-on-failure 2>&1 \
  | tee asan_chaos_output.txt

# Cluster stage under ASan: the multi-process serving tier (wire protocol,
# router dispatch/admission/breaker, spawned serve_worker fleet) plus the
# worker-kill chaos test. fork/exec + socket framing is exactly where ASan
# earns its keep (fd lifetimes, buffer reassembly, stale-frame handling).
ctest --test-dir build-asan -L cluster --output-on-failure 2>&1 \
  | tee asan_cluster_output.txt

# Model lifecycle under ASan: candidate loading, canary scratch buffers, and
# the model-set swap are allocation-heavy paths; rerun the label, then the
# same reload-under-load drive as the TSan stage.
ctest --test-dir build-asan -L reload --output-on-failure 2>&1 \
  | tee asan_reload_output.txt
./build-asan/tools/serve_bench --workers 2 --streams 4 --frames-per-stream 8 \
  --size 96 --reload weights/DroNet.weights --reload-after-ms 30 \
  --expect-complete 2>&1 | tee asan_reload_bench_output.txt

# Router + worker fleet end to end through serve_bench's cluster mode: two
# spawned worker processes, --expect-complete exits non-zero if any frame
# resolved as anything but kOk. Then the loadgen smoke: a scaling sweep with
# admission knobs engaged that exits non-zero on any abandoned future,
# accounting violation, or incomplete run.
./build/tools/serve_bench --cluster 2 --workers 1 --streams 4 \
  --frames-per-stream 8 --size 96 --filter-scale 0.5 --expect-complete 2>&1 \
  | tee cluster_bench_output.txt
./build/tools/loadgen --workers-list 1,2 --clients 4 --requests 6 --size 96 \
  --filter-scale 0.5 --expect-complete 2>&1 | tee loadgen_output.txt
# Worker-kill chaos through loadgen: SIGKILL a worker mid-load; every future
# must still resolve (retried or shed, never hung) with the accounting
# identity intact — loadgen exits 2 otherwise.
./build/tools/loadgen --workers-list 2 --clients 4 --requests 8 --size 96 \
  --filter-scale 0.5 --kill-after-ms 100 2>&1 | tee loadgen_chaos_output.txt

# Model-lifecycle chaos smoke: a corrupt (truncated) candidate checkpoint
# must be rejected — canary gate, old model byte-identical, zero dropped
# futures (--expect-complete still enforced on the serving run; the verdict
# line exits non-zero if the reload was NOT rejected).
head -c 4096 weights/DroNet.weights > build/corrupt_candidate.weights
./build/tools/serve_bench --workers 2 --streams 2 --frames-per-stream 8 \
  --size 96 --reload build/corrupt_candidate.weights --reload-after-ms 30 \
  --reload-expect-reject --expect-complete 2>&1 \
  | tee reload_reject_output.txt
# Rolling fleet reload through loadgen: two spawned pretrained workers,
# hot-swapped one at a time mid-load — the rollout must commit fleet-wide
# with every future resolving (exit 2 otherwise)...
./build/tools/loadgen --workers-list 2 --clients 4 --requests 8 --size 96 \
  --reload weights/DroNet.weights --reload-after-ms 50 --expect-complete 2>&1 \
  | tee loadgen_reload_output.txt
# ...and with a worker SIGKILLed mid-rollout the rollout must abort, roll
# already-reloaded workers back to the old version, and still resolve every
# future (serve_bench exits non-zero if the aborted rollout reports success
# or any future hangs).
./build/tools/serve_bench --cluster 2 --workers 1 --streams 4 \
  --frames-per-stream 8 --size 96 --reload weights/DroNet.weights \
  --reload-after-ms 50 --reload-kill-slot 1 2>&1 \
  | tee cluster_reload_kill_output.txt

for b in build/bench/*; do
  echo "===== $b ====="
  "$b"
done 2>&1 | tee bench_output.txt
