#include "analysis/cfg_sections.hpp"

#include <sstream>
#include <stdexcept>

namespace dronet {
namespace {

std::string trim(const std::string& s) {
    const auto begin = s.find_first_not_of(" \t\r\n");
    if (begin == std::string::npos) return {};
    const auto end = s.find_last_not_of(" \t\r\n");
    return s.substr(begin, end - begin + 1);
}

std::vector<std::string> split(const std::string& s, char sep) {
    std::vector<std::string> out;
    std::string item;
    std::istringstream in(s);
    while (std::getline(in, item, sep)) out.push_back(trim(item));
    return out;
}

}  // namespace

bool CfgSection::has(const std::string& key) const { return options.count(key) > 0; }

int CfgSection::get_int(const std::string& key, int fallback) const {
    const auto it = options.find(key);
    if (it == options.end()) return fallback;
    try {
        return std::stoi(it->second);
    } catch (const std::exception&) {
        throw std::invalid_argument("cfg [" + name + "] " + key + ": bad int '" +
                                    it->second + "'");
    }
}

float CfgSection::get_float(const std::string& key, float fallback) const {
    const auto it = options.find(key);
    if (it == options.end()) return fallback;
    try {
        return std::stof(it->second);
    } catch (const std::exception&) {
        throw std::invalid_argument("cfg [" + name + "] " + key + ": bad float '" +
                                    it->second + "'");
    }
}

std::string CfgSection::get_string(const std::string& key,
                                   const std::string& fallback) const {
    const auto it = options.find(key);
    return it == options.end() ? fallback : it->second;
}

std::vector<float> CfgSection::get_float_list(const std::string& key) const {
    std::vector<float> out;
    const auto it = options.find(key);
    if (it == options.end()) return out;
    for (const std::string& tok : split(it->second, ',')) {
        if (tok.empty()) continue;
        try {
            out.push_back(std::stof(tok));
        } catch (const std::exception&) {
            throw std::invalid_argument("cfg [" + name + "] " + key + ": bad float '" +
                                        tok + "'");
        }
    }
    return out;
}

std::vector<int> CfgSection::get_int_list(const std::string& key) const {
    std::vector<int> out;
    const auto it = options.find(key);
    if (it == options.end()) return out;
    for (const std::string& tok : split(it->second, ',')) {
        if (tok.empty()) continue;
        try {
            out.push_back(std::stoi(tok));
        } catch (const std::exception&) {
            throw std::invalid_argument("cfg [" + name + "] " + key + ": bad int '" +
                                        tok + "'");
        }
    }
    return out;
}

std::vector<CfgSection> parse_cfg_sections(const std::string& text) {
    std::vector<CfgSection> sections;
    std::istringstream in(text);
    std::string raw;
    int line_no = 0;
    while (std::getline(in, raw)) {
        ++line_no;
        std::string line = raw;
        const auto comment = line.find_first_of("#;");
        if (comment != std::string::npos) line = line.substr(0, comment);
        line = trim(line);
        if (line.empty()) continue;
        if (line.front() == '[') {
            if (line.back() != ']') {
                throw std::invalid_argument("cfg line " + std::to_string(line_no) +
                                            ": unterminated section header");
            }
            sections.push_back(CfgSection{trim(line.substr(1, line.size() - 2)), {}});
            continue;
        }
        const auto eq = line.find('=');
        if (eq == std::string::npos) {
            throw std::invalid_argument("cfg line " + std::to_string(line_no) +
                                        ": expected key=value, got '" + line + "'");
        }
        if (sections.empty()) {
            throw std::invalid_argument("cfg line " + std::to_string(line_no) +
                                        ": option before any [section]");
        }
        sections.back().options[trim(line.substr(0, eq))] = trim(line.substr(eq + 1));
    }
    return sections;
}

}  // namespace dronet
