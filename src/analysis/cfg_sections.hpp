// Raw darknet .cfg sections: the INI-like surface syntax shared by the
// network builder (nn/cfg) and the static validator (analysis/validate).
//
// Lives at the bottom of the dependency stack so the validator can reason
// about a parsed cfg without pulling in the layer/network machinery.
#pragma once

#include <map>
#include <string>
#include <vector>

namespace dronet {

/// One parsed [section] with its options.
struct CfgSection {
    std::string name;                         ///< e.g. "convolutional"
    std::map<std::string, std::string> options;

    [[nodiscard]] bool has(const std::string& key) const;
    /// Typed getters with defaults; throw std::invalid_argument on parse
    /// failure of a present value.
    [[nodiscard]] int get_int(const std::string& key, int fallback) const;
    [[nodiscard]] float get_float(const std::string& key, float fallback) const;
    [[nodiscard]] std::string get_string(const std::string& key,
                                         const std::string& fallback) const;
    [[nodiscard]] std::vector<float> get_float_list(const std::string& key) const;
    [[nodiscard]] std::vector<int> get_int_list(const std::string& key) const;
};

/// Parses cfg text into raw sections. Throws on syntax errors (option before
/// any section, malformed key=value).
[[nodiscard]] std::vector<CfgSection> parse_cfg_sections(const std::string& text);

}  // namespace dronet
