#include "analysis/numerics.hpp"

#include <atomic>
#include <cctype>
#include <cmath>
#include <cstdlib>
#include <sstream>

namespace dronet {
namespace {

// -1 = not yet resolved from the environment, 0 = off, 1 = on.
std::atomic<int> g_checks_enabled{-1};

bool env_truthy(const char* value) {
    std::string v(value);
    for (char& c : v) c = static_cast<char>(std::tolower(static_cast<unsigned char>(c)));
    return v == "1" || v == "true" || v == "on" || v == "yes";
}

std::string describe(const std::string& where, std::int64_t index, float value) {
    std::ostringstream os;
    os << "non-finite value " << value << " at flat index " << index << " in " << where
       << " (enable a debugger or bisect the batch; this check is "
          "DRONET_CHECK_NUMERICS)";
    return os.str();
}

}  // namespace

NumericsError::NumericsError(const std::string& where, std::int64_t index, float value)
    : std::runtime_error(describe(where, index, value)), where_(where), index_(index) {}

bool numerics_checks_enabled() noexcept {
    int state = g_checks_enabled.load(std::memory_order_relaxed);
    if (state < 0) {
        // Read once under the static initializer; no setenv in-process.
        // NOLINTNEXTLINE(concurrency-mt-unsafe)
        const char* env = std::getenv("DRONET_CHECK_NUMERICS");
        state = (env != nullptr && env_truthy(env)) ? 1 : 0;
        g_checks_enabled.store(state, std::memory_order_relaxed);
    }
    return state == 1;
}

void set_numerics_checks(bool on) noexcept {
    g_checks_enabled.store(on ? 1 : 0, std::memory_order_relaxed);
}

std::int64_t find_nonfinite(std::span<const float> data) noexcept {
    for (std::size_t i = 0; i < data.size(); ++i) {
        if (!std::isfinite(data[i])) return static_cast<std::int64_t>(i);
    }
    return -1;
}

void check_finite(std::span<const float> data, const std::string& where) {
    const std::int64_t index = find_nonfinite(data);
    if (index >= 0) {
        throw NumericsError(where, index, data[static_cast<std::size_t>(index)]);
    }
}

}  // namespace dronet
