// Debug numerics guards: NaN/Inf detection in activations and gradients.
//
// Silent training divergence usually surfaces dozens of layers and hundreds
// of batches away from the first non-finite value. With checks enabled the
// Network scans every layer's output after forward and every delta/gradient
// after backward, and throws a NumericsError pinpointing the first offending
// layer and element. Off by default; enable with the DRONET_CHECK_NUMERICS
// environment variable (1/true/on) or set_numerics_checks(true) at runtime.
#pragma once

#include <cstdint>
#include <span>
#include <stdexcept>
#include <string>

namespace dronet {

/// Thrown when a guarded tensor contains NaN or +/-Inf.
class NumericsError : public std::runtime_error {
  public:
    NumericsError(const std::string& where, std::int64_t index, float value);

    /// Description of the guarded tensor, e.g. "forward layer 3 (conv ...) output".
    [[nodiscard]] const std::string& where() const noexcept { return where_; }
    /// Flat index of the first non-finite element.
    [[nodiscard]] std::int64_t index() const noexcept { return index_; }

  private:
    std::string where_;
    std::int64_t index_;
};

/// Whether numerics guards are active. First call reads DRONET_CHECK_NUMERICS
/// (1/true/on, case-insensitive); set_numerics_checks() overrides afterwards.
[[nodiscard]] bool numerics_checks_enabled() noexcept;
void set_numerics_checks(bool on) noexcept;

/// Index of the first NaN/Inf element, or -1 when all values are finite.
[[nodiscard]] std::int64_t find_nonfinite(std::span<const float> data) noexcept;

/// Throws NumericsError naming `where` if `data` holds a non-finite value.
void check_finite(std::span<const float> data, const std::string& where);

}  // namespace dronet
