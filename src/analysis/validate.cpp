#include "analysis/validate.hpp"

#include <algorithm>
#include <cstdio>
#include <optional>
#include <set>
#include <sstream>

namespace dronet {
namespace {

/// Symbolic single-image activation shape (batch is irrelevant to structure).
struct SymShape {
    std::int64_t c = 0;
    std::int64_t h = 0;
    std::int64_t w = 0;
};

/// Keys each section type actually reads (nn/cfg.cpp); anything else is
/// silently ignored by the engine, which is worth a warning — a typo like
/// "fliters=32" otherwise builds a structurally different network.
const std::map<std::string, std::set<std::string>>& known_keys() {
    static const std::map<std::string, std::set<std::string>> keys = {
        {"net",
         {"batch", "width", "height", "channels", "learning_rate", "momentum",
          "decay", "burn_in", "max_batches", "policy", "steps", "scales", "seed"}},
        {"network",
         {"batch", "width", "height", "channels", "learning_rate", "momentum",
          "decay", "burn_in", "max_batches", "policy", "steps", "scales", "seed"}},
        {"convolutional",
         {"batch_normalize", "filters", "size", "stride", "pad", "padding",
          "activation"}},
        {"conv",
         {"batch_normalize", "filters", "size", "stride", "pad", "padding",
          "activation"}},
        {"maxpool", {"size", "stride", "padding"}},
        {"region",
         {"classes", "coords", "num", "anchors", "object_scale", "noobject_scale",
          "class_scale", "coord_scale", "thresh", "rescore", "bias_match_batches"}},
        {"route", {"layers"}},
        {"upsample", {"stride"}},
        {"dropout", {"probability"}},
        {"avgpool", {}},
    };
    return keys;
}

class Validator {
  public:
    explicit Validator(const std::vector<CfgSection>& sections)
        : sections_(sections) {}

    ValidationReport run() {
        if (sections_.empty()) {
            add(Severity::kError, -1, "empty-cfg", "cfg has no sections");
            return finish();
        }
        if (sections_[0].name != "net" && sections_[0].name != "network") {
            add(Severity::kError, 0, "missing-net",
                "first section must be [net], got [" + sections_[0].name + "]");
            return finish();
        }
        check_net(sections_[0]);
        if (sections_.size() == 1) {
            add(Severity::kError, -1, "no-layers", "cfg defines no layers after [net]");
            return finish();
        }
        for (std::size_t i = 1; i < sections_.size(); ++i) {
            check_section(static_cast<int>(i));
        }
        if (!saw_region_) {
            add(Severity::kWarning, -1, "no-detection-head",
                "cfg has no [region] section; the network cannot produce detections");
        }
        if (net_w_ > 0 && downsample_ > 1 &&
            (net_w_ % downsample_ != 0 || net_h_ % downsample_ != 0)) {
            std::ostringstream os;
            os << "input " << net_w_ << "x" << net_h_
               << " is not divisible by the total downsample factor " << downsample_
               << "; spatial information is truncated through the chain";
            add(Severity::kWarning, 0, "downsample-divisibility", os.str());
        }
        return finish();
    }

  private:
    void add(Severity sev, int section, std::string rule, std::string message) {
        std::string section_name =
            section >= 0 ? sections_[static_cast<std::size_t>(section)].name : "";
        report_.diagnostics.push_back(Diagnostic{sev, section, std::move(section_name),
                                                 std::move(rule), std::move(message)});
    }

    void check_unknown_keys(int idx) {
        const CfgSection& s = sections_[static_cast<std::size_t>(idx)];
        const auto it = known_keys().find(s.name);
        if (it == known_keys().end()) return;
        for (const auto& [key, value] : s.options) {
            if (it->second.count(key) == 0) {
                add(Severity::kWarning, idx, "unknown-key",
                    "key '" + key + "' is not read by the engine and will be ignored");
            }
        }
    }

    void check_net(const CfgSection& net) {
        check_unknown_keys(0);
        try {
            net_w_ = net.get_int("width", 416);
            net_h_ = net.get_int("height", 416);
            const int channels = net.get_int("channels", 3);
            const int batch = net.get_int("batch", 1);
            if (net_w_ <= 0 || net_h_ <= 0 || channels <= 0 || batch <= 0) {
                add(Severity::kError, 0, "net-dimensions",
                    "width/height/channels/batch must all be positive");
                return;
            }
            shape_in_ = SymShape{channels, net_h_, net_w_};
            if (net.get_int_list("steps").size() != net.get_float_list("scales").size()) {
                add(Severity::kError, 0, "steps-scales-mismatch",
                    "steps= and scales= must have the same length");
            }
            if (net.get_float("learning_rate", 1e-3f) <= 0.0f) {
                add(Severity::kWarning, 0, "learning-rate-range",
                    "learning_rate is not positive; training cannot make progress");
            }
            const float momentum = net.get_float("momentum", 0.9f);
            if (momentum < 0.0f || momentum >= 1.0f) {
                add(Severity::kWarning, 0, "momentum-range",
                    "momentum outside [0, 1) diverges under SGD");
            }
            if (net.get_float("decay", 5e-4f) < 0.0f) {
                add(Severity::kWarning, 0, "decay-range",
                    "negative decay amplifies weights every step");
            }
        } catch (const std::invalid_argument& e) {
            add(Severity::kError, 0, "bad-value", e.what());
            shape_in_ = std::nullopt;
        }
    }

    void check_section(int idx) {
        const CfgSection& s = sections_[static_cast<std::size_t>(idx)];
        check_unknown_keys(idx);
        std::optional<SymShape> out;
        try {
            if (s.name == "net" || s.name == "network") {
                add(Severity::kError, idx, "misplaced-net",
                    "[net] may only appear as the first section");
            } else if (s.name == "convolutional" || s.name == "conv") {
                out = check_conv(idx, s);
            } else if (s.name == "maxpool") {
                out = check_maxpool(idx, s);
            } else if (s.name == "region") {
                out = check_region(idx, s);
            } else if (s.name == "route") {
                out = check_route(idx, s);
            } else if (s.name == "upsample") {
                out = check_upsample(idx, s);
            } else if (s.name == "avgpool") {
                if (shape_in_) out = SymShape{shape_in_->c, 1, 1};
            } else if (s.name == "dropout") {
                const float p = s.get_float("probability", 0.5f);
                if (p < 0.0f || p >= 1.0f) {
                    add(Severity::kError, idx, "dropout-probability",
                        "probability must be in [0, 1)");
                }
                out = shape_in_;
            } else {
                add(Severity::kError, idx, "unknown-section",
                    "unsupported section [" + s.name + "]");
            }
        } catch (const std::invalid_argument& e) {
            add(Severity::kError, idx, "bad-value", e.what());
            out = std::nullopt;
        }
        layer_shapes_.push_back(out);
        shape_in_ = out;
    }

    std::optional<SymShape> check_conv(int idx, const CfgSection& s) {
        const int filters = s.get_int("filters", 1);
        const int ksize = s.get_int("size", 3);
        const int stride = s.get_int("stride", 1);
        const int pad = s.has("padding") ? s.get_int("padding", 0)
                                         : (s.get_int("pad", 0) != 0 ? ksize / 2 : 0);
        if (filters <= 0 || ksize <= 0 || stride <= 0 || pad < 0) {
            add(Severity::kError, idx, "conv-geometry",
                "filters/size/stride must be positive and padding non-negative");
            return std::nullopt;
        }
        if (ksize % 2 == 0) {
            add(Severity::kWarning, idx, "even-kernel",
                "even kernel size " + std::to_string(ksize) +
                    " has no symmetric 'same' padding");
        }
        const std::string activation = s.get_string("activation", "logistic");
        const auto& names = cfg_known_activations();
        const bool bn = s.get_int("batch_normalize", 0) != 0;
        if (std::find(names.begin(), names.end(), activation) == names.end()) {
            add(Severity::kError, idx, "unknown-activation",
                "unknown activation '" + activation + "'");
        }
        const bool feeds_region =
            static_cast<std::size_t>(idx) + 1 < sections_.size() &&
            sections_[static_cast<std::size_t>(idx) + 1].name == "region";
        if (feeds_region && bn) {
            add(Severity::kWarning, idx, "head-batchnorm",
                "detection-head convolution is batch-normalized; darknet heads are "
                "plain conv + linear");
        }
        if (feeds_region && activation != "linear") {
            add(Severity::kWarning, idx, "head-activation",
                "detection-head convolution uses '" + activation +
                    "'; the region layer expects raw (linear) logits");
        }
        conv_params_ +=
            static_cast<std::int64_t>(filters) * (bn ? 2 : 1);  // biases [+ scales]
        conv_stats_ += bn ? 2L * filters : 0;  // rolling mean + variance
        if (!shape_in_) {
            weight_bytes_known_ = false;
            return std::nullopt;
        }
        conv_params_ += static_cast<std::int64_t>(filters) * shape_in_->c * ksize * ksize;
        const std::int64_t out_h = (shape_in_->h + 2 * pad - ksize) / stride + 1;
        const std::int64_t out_w = (shape_in_->w + 2 * pad - ksize) / stride + 1;
        if (out_h <= 0 || out_w <= 0) {
            add(Severity::kError, idx, "degenerate-output",
                "output collapses to " + std::to_string(out_w) + "x" +
                    std::to_string(out_h) + " for input " + std::to_string(shape_in_->w) +
                    "x" + std::to_string(shape_in_->h));
            return std::nullopt;
        }
        check_coverage(idx, *shape_in_, out_h, out_w, stride, ksize, pad);
        if (stride > 1) downsample_ *= stride;
        return SymShape{filters, out_h, out_w};
    }

    std::optional<SymShape> check_maxpool(int idx, const CfgSection& s) {
        const int size = s.get_int("size", 2);
        const int stride = s.get_int("stride", size);
        // Negative explicit padding selects the darknet default, like the engine.
        const int given = s.has("padding") ? s.get_int("padding", -1) : -1;
        const int pad = given >= 0 ? given : size - 1;
        if (size <= 0 || stride <= 0) {
            add(Severity::kError, idx, "pool-geometry",
                "size and stride must be positive");
            return std::nullopt;
        }
        if (stride > 1) downsample_ *= stride;
        if (!shape_in_) return std::nullopt;
        const std::int64_t out_h = (shape_in_->h + pad - size) / stride + 1;
        const std::int64_t out_w = (shape_in_->w + pad - size) / stride + 1;
        if (out_h <= 0 || out_w <= 0) {
            add(Severity::kError, idx, "degenerate-output",
                "output collapses to " + std::to_string(out_w) + "x" +
                    std::to_string(out_h) + " for input " + std::to_string(shape_in_->w) +
                    "x" + std::to_string(shape_in_->h));
            return std::nullopt;
        }
        // Darknet pools pad half-before / half-after (offset -pad/2).
        check_coverage(idx, *shape_in_, out_h, out_w, stride, size, pad / 2);
        return SymShape{shape_in_->c, out_h, out_w};
    }

    /// Warns when flooring in the output-size division leaves trailing input
    /// rows/columns unread by any kernel window (silently cropped data).
    void check_coverage(int idx, const SymShape& in, std::int64_t out_h,
                        std::int64_t out_w, int stride, int ksize, int pad_before) {
        const std::int64_t last_row = (out_h - 1) * stride - pad_before + ksize - 1;
        const std::int64_t last_col = (out_w - 1) * stride - pad_before + ksize - 1;
        if (last_row < in.h - 1 || last_col < in.w - 1) {
            std::ostringstream os;
            os << "stride " << stride << " never reads the last "
               << std::max(in.h - 1 - last_row, in.w - 1 - last_col)
               << " input row(s)/column(s); input " << in.w << "x" << in.h
               << " is silently cropped";
            add(Severity::kWarning, idx, "drops-pixels", os.str());
        }
    }

    std::optional<SymShape> check_region(int idx, const CfgSection& s) {
        saw_region_ = true;
        const int classes = s.get_int("classes", 1);
        const int coords = s.get_int("coords", 4);
        const int num = s.get_int("num", 5);
        if (coords != 4) {
            add(Severity::kError, idx, "region-coords",
                "coords must be 4 (x, y, w, h)");
        }
        if (num <= 0 || classes <= 0) {
            add(Severity::kError, idx, "region-count",
                "num and classes must be positive");
            return shape_in_;
        }
        if (!s.has("anchors")) {
            add(Severity::kWarning, idx, "region-anchors-missing",
                "no anchors given; engine defaults every prior to 1x1 grid cells");
        } else {
            const auto anchors = s.get_float_list("anchors");
            if (anchors.size() != static_cast<std::size_t>(2 * num)) {
                add(Severity::kError, idx, "region-anchors-length",
                    "anchors holds " + std::to_string(anchors.size()) +
                        " values, expected 2*num = " + std::to_string(2 * num));
            }
            if (std::any_of(anchors.begin(), anchors.end(),
                            [](float a) { return a <= 0.0f; })) {
                add(Severity::kWarning, idx, "region-anchor-values",
                    "anchor width/height values must be positive to decode boxes");
            }
        }
        const float thresh = s.get_float("thresh", 0.6f);
        if (thresh < 0.0f || thresh > 1.0f) {
            add(Severity::kWarning, idx, "region-thresh-range",
                "thresh is an IoU and should lie in [0, 1]");
        }
        const std::int64_t expected_c =
            static_cast<std::int64_t>(num) * (coords + 1 + classes);
        if (shape_in_ && shape_in_->c != expected_c) {
            std::ostringstream os;
            os << "input channels " << shape_in_->c << " != num*(coords+1+classes) = "
               << expected_c << "; the preceding convolution needs filters="
               << expected_c;
            add(Severity::kError, idx, "region-input-channels", os.str());
        }
        if (sections_[static_cast<std::size_t>(idx) - 1].name != "convolutional" &&
            sections_[static_cast<std::size_t>(idx) - 1].name != "conv") {
            add(Severity::kWarning, idx, "region-head-kind",
                "region layer is not fed by a convolution ([" +
                    sections_[static_cast<std::size_t>(idx) - 1].name + "] precedes it)");
        }
        if (static_cast<std::size_t>(idx) + 1 < sections_.size()) {
            add(Severity::kWarning, idx, "region-not-last",
                "layers after the [region] detection head are dead weight");
        }
        return shape_in_;
    }

    std::optional<SymShape> check_route(int idx, const CfgSection& s) {
        std::vector<int> sources = s.get_int_list("layers");
        if (sources.empty()) {
            add(Severity::kError, idx, "route-empty", "missing layers=");
            return std::nullopt;
        }
        const int self = static_cast<int>(layer_shapes_.size());
        std::set<int> seen;
        std::optional<SymShape> out;
        bool all_known = true;
        for (int src : sources) {
            const int resolved = src < 0 ? src + self : src;
            if (resolved < 0 || resolved >= self) {
                add(Severity::kError, idx, "route-source-range",
                    "source " + std::to_string(src) + " resolves to layer " +
                        std::to_string(resolved) + ", outside [0, " +
                        std::to_string(self) + ")");
                all_known = false;
                continue;
            }
            if (!seen.insert(resolved).second) {
                add(Severity::kWarning, idx, "route-duplicate-source",
                    "layer " + std::to_string(resolved) + " is concatenated twice");
            }
            const auto& src_shape = layer_shapes_[static_cast<std::size_t>(resolved)];
            if (!src_shape) {
                all_known = false;
                continue;
            }
            if (!out) {
                out = *src_shape;
            } else if (src_shape->h != out->h || src_shape->w != out->w) {
                std::ostringstream os;
                os << "source layer " << resolved << " is " << src_shape->w << "x"
                   << src_shape->h << " but earlier sources are " << out->w << "x"
                   << out->h << "; channel concatenation needs equal spatial dims";
                add(Severity::kError, idx, "route-shape-mismatch", os.str());
                all_known = false;
            } else {
                out->c += src_shape->c;
            }
        }
        return all_known ? out : std::nullopt;
    }

    std::optional<SymShape> check_upsample(int idx, const CfgSection& s) {
        const int stride = s.get_int("stride", 2);
        if (stride <= 0) {
            add(Severity::kError, idx, "upsample-stride", "stride must be positive");
            return std::nullopt;
        }
        if (stride == 1) {
            add(Severity::kWarning, idx, "upsample-noop",
                "stride=1 upsample is an identity copy");
        } else if (stride > 8) {
            add(Severity::kWarning, idx, "upsample-extreme",
                "stride " + std::to_string(stride) +
                    " blows activations up by " + std::to_string(stride * stride) + "x");
        }
        if (!shape_in_) return std::nullopt;
        return SymShape{shape_in_->c, shape_in_->h * stride, shape_in_->w * stride};
    }

    ValidationReport finish() {
        if (weight_bytes_known_ && conv_params_ >= 0) {
            report_.param_count = conv_params_;
            // 3 version ints + the 8-byte `seen` counter, then float32 blocks.
            report_.expected_weight_bytes =
                20 + 4 * (conv_params_ + conv_stats_);
        }
        return std::move(report_);
    }

    const std::vector<CfgSection>& sections_;
    ValidationReport report_;
    std::optional<SymShape> shape_in_;           ///< input to the next layer
    std::vector<std::optional<SymShape>> layer_shapes_;
    std::int64_t conv_params_ = 0;  ///< weights + biases + bn scales
    std::int64_t conv_stats_ = 0;   ///< bn rolling mean/variance floats
    bool weight_bytes_known_ = true;
    bool saw_region_ = false;
    std::int64_t downsample_ = 1;
    int net_w_ = 0;
    int net_h_ = 0;
};

std::string json_escape(const std::string& s) {
    std::string out;
    out.reserve(s.size());
    for (char c : s) {
        switch (c) {
            case '"': out += "\\\""; break;
            case '\\': out += "\\\\"; break;
            case '\n': out += "\\n"; break;
            case '\t': out += "\\t"; break;
            default:
                if (static_cast<unsigned char>(c) < 0x20) {
                    char buf[8];
                    std::snprintf(buf, sizeof(buf), "\\u%04x", c);
                    out += buf;
                } else {
                    out += c;
                }
        }
    }
    return out;
}

}  // namespace

std::string to_string(Severity s) {
    return s == Severity::kError ? "error" : "warning";
}

std::string Diagnostic::str() const {
    std::ostringstream os;
    os << to_string(severity) << " [";
    if (section >= 0) {
        os << section << ":" << section_name;
    } else {
        os << "cfg";
    }
    os << "] " << rule << ": " << message;
    return os.str();
}

bool ValidationReport::ok() const noexcept { return errors() == 0; }

int ValidationReport::errors() const noexcept {
    return static_cast<int>(std::count_if(
        diagnostics.begin(), diagnostics.end(),
        [](const Diagnostic& d) { return d.severity == Severity::kError; }));
}

int ValidationReport::warnings() const noexcept {
    return static_cast<int>(diagnostics.size()) - errors();
}

std::string ValidationReport::str() const {
    std::ostringstream os;
    for (const Diagnostic& d : diagnostics) os << d.str() << "\n";
    os << errors() << " error(s), " << warnings() << " warning(s)";
    if (expected_weight_bytes >= 0) {
        os << "; " << param_count << " params, expected weight file "
           << expected_weight_bytes << " bytes";
    }
    return os.str();
}

std::string ValidationReport::json() const {
    std::ostringstream os;
    os << "{\"errors\":" << errors() << ",\"warnings\":" << warnings()
       << ",\"param_count\":" << param_count
       << ",\"expected_weight_bytes\":" << expected_weight_bytes
       << ",\"diagnostics\":[";
    for (std::size_t i = 0; i < diagnostics.size(); ++i) {
        const Diagnostic& d = diagnostics[i];
        os << (i ? "," : "") << "{\"severity\":\"" << to_string(d.severity)
           << "\",\"section\":" << d.section << ",\"section_name\":\""
           << json_escape(d.section_name) << "\",\"rule\":\"" << json_escape(d.rule)
           << "\",\"message\":\"" << json_escape(d.message) << "\"}";
    }
    os << "]}";
    return os.str();
}

ValidationReport validate_network(const std::vector<CfgSection>& sections) {
    return Validator(sections).run();
}

ValidationReport validate_network(const std::string& cfg_text) {
    try {
        return validate_network(parse_cfg_sections(cfg_text));
    } catch (const std::invalid_argument& e) {
        ValidationReport report;
        report.diagnostics.push_back(
            Diagnostic{Severity::kError, -1, "", "cfg-syntax", e.what()});
        return report;
    }
}

bool check_weights_file(ValidationReport& report,
                        const std::filesystem::path& weights_path) {
    std::error_code ec;
    const auto actual = std::filesystem::file_size(weights_path, ec);
    if (ec) {
        report.diagnostics.push_back(Diagnostic{
            Severity::kError, -1, "", "weights-unreadable",
            weights_path.string() + ": " + ec.message()});
        return false;
    }
    if (report.expected_weight_bytes < 0) {
        report.diagnostics.push_back(Diagnostic{
            Severity::kError, -1, "", "weights-size-unknown",
            "cfg is too broken to compute the expected weight layout"});
        return false;
    }
    if (static_cast<std::int64_t>(actual) != report.expected_weight_bytes) {
        std::ostringstream os;
        os << weights_path.string() << " holds " << actual << " bytes but the cfg's "
           << "parameter layout needs exactly " << report.expected_weight_bytes
           << " (truncated checkpoint or cfg/weights mismatch)";
        report.diagnostics.push_back(
            Diagnostic{Severity::kError, -1, "", "weights-size-mismatch", os.str()});
        return false;
    }
    return true;
}

const std::vector<std::string>& cfg_known_activations() {
    static const std::vector<std::string> names = {"linear", "leaky", "relu",
                                                   "logistic"};
    return names;
}

}  // namespace dronet
