// Static validation of cfg-described networks.
//
// Runs shape inference symbolically over parsed cfg sections — no tensor is
// allocated, no layer is constructed — and reports structural errors and
// suspicious-but-legal constructs as diagnostics tagged with the offending
// cfg section index. parse_cfg() runs this before building a Network (errors
// throw, warnings are logged), tools/cfglint exposes it on the command line,
// and the expected-weight-byte computation lets callers reject a truncated
// or mismatched .weights file before any load is attempted.
//
// The rule catalogue is documented in docs/static_analysis.md.
#pragma once

#include <cstdint>
#include <filesystem>
#include <string>
#include <vector>

#include "analysis/cfg_sections.hpp"

namespace dronet {

enum class Severity { kWarning, kError };

[[nodiscard]] std::string to_string(Severity s);

/// One validator finding, anchored to a cfg section.
struct Diagnostic {
    Severity severity = Severity::kError;
    int section = -1;           ///< cfg section index (0 = [net]); -1 = file level
    std::string section_name;   ///< e.g. "convolutional"; empty at file level
    std::string rule;           ///< stable rule id, e.g. "route-source-range"
    std::string message;

    /// "error [4:route] route-source-range: source 9 out of range [0, 3)"
    [[nodiscard]] std::string str() const;
};

struct ValidationReport {
    std::vector<Diagnostic> diagnostics;

    /// Exact byte count a matching darknet-format .weights file must have
    /// (header + every conv parameter block), or -1 when shape inference
    /// could not determine the layout.
    std::int64_t expected_weight_bytes = -1;

    /// Trainable parameter count, or -1 when unknown.
    std::int64_t param_count = -1;

    [[nodiscard]] bool ok() const noexcept;  ///< true when no errors (warnings allowed)
    [[nodiscard]] int errors() const noexcept;
    [[nodiscard]] int warnings() const noexcept;

    /// Human-readable multi-line report (one line per diagnostic + summary).
    [[nodiscard]] std::string str() const;
    /// Machine-readable report for cfglint --json.
    [[nodiscard]] std::string json() const;
};

/// Validates parsed cfg sections. Never throws on bad structure — every
/// problem becomes a diagnostic.
[[nodiscard]] ValidationReport validate_network(const std::vector<CfgSection>& sections);

/// Parses and validates cfg text; syntax errors become file-level diagnostics
/// instead of exceptions.
[[nodiscard]] ValidationReport validate_network(const std::string& cfg_text);

/// Compares `weights_path`'s size against report.expected_weight_bytes and
/// appends an error diagnostic on mismatch (or when the file is unreadable).
/// Returns true when the file exists and matches the expected layout.
bool check_weights_file(ValidationReport& report,
                        const std::filesystem::path& weights_path);

/// Activation names the cfg dialect accepts; mirrored by nn/activation.cpp
/// (a unit test keeps the two in sync).
[[nodiscard]] const std::vector<std::string>& cfg_known_activations();

}  // namespace dronet
