#include "baseline/bg_subtraction.hpp"

#include <algorithm>
#include <cmath>
#include <stdexcept>

namespace dronet {

void BackgroundSubtractionDetector::reset() {
    background_ = Image();
    mask_ = Image();
    frames_ = 0;
}

Detections BackgroundSubtractionDetector::process(const Image& frame) {
    if (frame.empty()) throw std::invalid_argument("BackgroundSubtraction: empty frame");
    if (background_.empty()) {
        background_ = frame;
        mask_ = Image(frame.width(), frame.height(), 1);
        ++frames_;
        return {};
    }
    if (background_.width() != frame.width() || background_.height() != frame.height()) {
        throw std::invalid_argument("BackgroundSubtraction: frame size changed");
    }
    // Foreground mask: mean absolute channel difference above threshold.
    const int w = frame.width();
    const int h = frame.height();
    for (int y = 0; y < h; ++y) {
        for (int x = 0; x < w; ++x) {
            float diff = 0;
            for (int c = 0; c < frame.channels(); ++c) {
                diff += std::fabs(frame.px(x, y, c) - background_.px(x, y, c));
            }
            diff /= static_cast<float>(frame.channels());
            mask_.px(x, y, 0) = diff > config_.threshold ? 1.0f : 0.0f;
        }
    }
    // Morphological closing (dilate then erode) to fuse a vehicle's body,
    // windshield and shadow into one blob.
    if (config_.dilate_radius > 0) {
        const int r = config_.dilate_radius;
        Image dilated(w, h, 1);
        for (int y = 0; y < h; ++y) {
            for (int x = 0; x < w; ++x) {
                float v = 0;
                for (int dy = -r; dy <= r && v < 0.5f; ++dy) {
                    for (int dx = -r; dx <= r; ++dx) {
                        if (mask_.px_clamped(x + dx, y + dy, 0) > 0.5f) {
                            v = 1.0f;
                            break;
                        }
                    }
                }
                dilated.px(x, y, 0) = v;
            }
        }
        Image eroded(w, h, 1);
        for (int y = 0; y < h; ++y) {
            for (int x = 0; x < w; ++x) {
                float v = 1.0f;
                for (int dy = -r; dy <= r && v > 0.5f; ++dy) {
                    for (int dx = -r; dx <= r; ++dx) {
                        if (dilated.px_clamped(x + dx, y + dy, 0) <= 0.5f) {
                            v = 0.0f;
                            break;
                        }
                    }
                }
                eroded.px(x, y, 0) = v;
            }
        }
        mask_ = std::move(eroded);
    }
    // Update the running-average background with the new frame.
    const float a = config_.learning_rate;
    for (std::size_t i = 0; i < background_.size(); ++i) {
        background_.data()[i] = (1 - a) * background_.data()[i] + a * frame.data()[i];
    }
    ++frames_;
    if (frames_ <= config_.warmup_frames) return {};

    Detections out;
    for (const Blob& blob : connected_components(mask_, config_.min_blob_area)) {
        Detection d;
        d.box = blob.box(w, h);
        d.class_id = 0;
        d.objectness = 1.0f;
        // Confidence: how solidly the blob fills its bounding box.
        const float box_px = static_cast<float>((blob.max_x - blob.min_x + 1) *
                                                (blob.max_y - blob.min_y + 1));
        d.class_prob = std::clamp(static_cast<float>(blob.area) / box_px, 0.0f, 1.0f);
        out.push_back(d);
    }
    return out;
}

}  // namespace dronet
