// Background-subtraction vehicle detector — the classical baseline.
//
// The paper's related work (§II.A, ref [2]) notes that "traditional
// techniques utilize background subtraction to perform traffic estimation
// from static UAVs". This module implements that baseline so the CNN
// detector can be compared against it on the video pipeline: a running-
// average background model, per-pixel foreground thresholding, morphological
// cleanup and connected-component bounding boxes.
//
// Its structural weaknesses vs DroNet are intentional and real: it only sees
// *moving* vehicles (static/parked ones fade into the background), needs a
// hovering (static) camera, and reports class-agnostic blobs.
#pragma once

#include "baseline/connected_components.hpp"
#include "detect/box.hpp"
#include "image/image.hpp"

namespace dronet {

struct BgSubtractionConfig {
    float learning_rate = 0.05f;   ///< background running-average update
    float threshold = 0.12f;       ///< per-pixel |frame - background| trigger
    int min_blob_area = 12;        ///< pixels; rejects noise specks
    int dilate_radius = 1;         ///< morphological closing radius
    int warmup_frames = 3;         ///< frames before detections are emitted
};

class BackgroundSubtractionDetector {
  public:
    explicit BackgroundSubtractionDetector(BgSubtractionConfig config = {})
        : config_(config) {}

    /// Processes one frame; returns blob detections (class 0, objectness 1,
    /// confidence proportional to blob fill). Empty during warm-up.
    [[nodiscard]] Detections process(const Image& frame);

    /// The current background estimate (for inspection/visualization).
    [[nodiscard]] const Image& background() const noexcept { return background_; }
    /// The last foreground mask.
    [[nodiscard]] const Image& foreground_mask() const noexcept { return mask_; }
    [[nodiscard]] int frames_seen() const noexcept { return frames_; }

    void reset();

  private:
    BgSubtractionConfig config_;
    Image background_;
    Image mask_;
    int frames_ = 0;
};

}  // namespace dronet
