#include "baseline/connected_components.hpp"

#include <algorithm>
#include <vector>

namespace dronet {

Box Blob::box(int mask_w, int mask_h) const noexcept {
    return Box::from_corners(static_cast<float>(min_x) / static_cast<float>(mask_w),
                             static_cast<float>(min_y) / static_cast<float>(mask_h),
                             static_cast<float>(max_x + 1) / static_cast<float>(mask_w),
                             static_cast<float>(max_y + 1) / static_cast<float>(mask_h));
}

std::vector<Blob> connected_components(const Image& mask, int min_area) {
    const int w = mask.width();
    const int h = mask.height();
    std::vector<bool> visited(static_cast<std::size_t>(w) * h, false);
    std::vector<Blob> blobs;
    std::vector<int> stack;
    for (int start = 0; start < w * h; ++start) {
        if (visited[static_cast<std::size_t>(start)]) continue;
        if (mask.data()[start] <= 0.5f) continue;
        // Flood fill (iterative DFS, 4-connectivity).
        Blob blob;
        blob.min_x = blob.max_x = start % w;
        blob.min_y = blob.max_y = start / w;
        stack.assign(1, start);
        visited[static_cast<std::size_t>(start)] = true;
        while (!stack.empty()) {
            const int p = stack.back();
            stack.pop_back();
            const int x = p % w;
            const int y = p / w;
            ++blob.area;
            blob.min_x = std::min(blob.min_x, x);
            blob.max_x = std::max(blob.max_x, x);
            blob.min_y = std::min(blob.min_y, y);
            blob.max_y = std::max(blob.max_y, y);
            const int neighbors[4] = {p - 1, p + 1, p - w, p + w};
            const bool valid[4] = {x > 0, x < w - 1, y > 0, y < h - 1};
            for (int n = 0; n < 4; ++n) {
                if (!valid[n]) continue;
                const int q = neighbors[n];
                if (!visited[static_cast<std::size_t>(q)] && mask.data()[q] > 0.5f) {
                    visited[static_cast<std::size_t>(q)] = true;
                    stack.push_back(q);
                }
            }
        }
        if (blob.area >= min_area) blobs.push_back(blob);
    }
    return blobs;
}

}  // namespace dronet
