// Connected-component labelling on binary masks.
//
// Support routine for the background-subtraction baseline: groups foreground
// pixels into blobs and reports their bounding boxes.
#pragma once

#include <vector>

#include "detect/box.hpp"
#include "image/image.hpp"

namespace dronet {

struct Blob {
    int min_x = 0, min_y = 0, max_x = 0, max_y = 0;
    int area = 0;  ///< foreground pixels in the component

    /// Normalized bounding box relative to the mask dimensions.
    [[nodiscard]] Box box(int mask_w, int mask_h) const noexcept;
};

/// 4-connected component extraction over `mask` (any pixel > 0.5 in channel
/// 0 is foreground). Components smaller than `min_area` pixels are dropped.
[[nodiscard]] std::vector<Blob> connected_components(const Image& mask,
                                                     int min_area = 1);

}  // namespace dronet
