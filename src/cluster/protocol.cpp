#include "cluster/protocol.hpp"

#include <cstring>
#include <stdexcept>
#include <type_traits>

#include "io/fdio.hpp"

namespace dronet::cluster {

namespace {

// Append/consume helpers. Encoding is memcpy-based (host order, see header
// comment); decoding bounds-checks every consume so a corrupt or truncated
// payload becomes a clean runtime_error, never an out-of-bounds read.

template <typename T>
void put(std::vector<std::uint8_t>& buf, const T& v) {
    static_assert(std::is_trivially_copyable_v<T>);
    const auto* p = reinterpret_cast<const std::uint8_t*>(&v);
    buf.insert(buf.end(), p, p + sizeof(T));
}

void put_bytes(std::vector<std::uint8_t>& buf, const void* data, std::size_t n) {
    const auto* p = static_cast<const std::uint8_t*>(data);
    buf.insert(buf.end(), p, p + n);
}

class Cursor {
  public:
    explicit Cursor(const std::vector<std::uint8_t>& buf) : buf_(buf) {}

    template <typename T>
    [[nodiscard]] T take(const char* what) {
        static_assert(std::is_trivially_copyable_v<T>);
        T v;
        take_bytes(&v, sizeof(T), what);
        return v;
    }

    void take_bytes(void* out, std::size_t n, const char* what) {
        if (buf_.size() - pos_ < n) {
            throw std::runtime_error(std::string("protocol: payload truncated at ") +
                                     what);
        }
        std::memcpy(out, buf_.data() + pos_, n);
        pos_ += n;
    }

    [[nodiscard]] std::string take_string(const char* what) {
        const auto len = take<std::uint32_t>(what);
        if (buf_.size() - pos_ < len) {
            throw std::runtime_error(std::string("protocol: payload truncated at ") +
                                     what);
        }
        std::string s(reinterpret_cast<const char*>(buf_.data() + pos_), len);
        pos_ += len;
        return s;
    }

    void expect_consumed(const char* what) const {
        if (pos_ != buf_.size()) {
            throw std::runtime_error(std::string("protocol: trailing bytes after ") +
                                     what);
        }
    }

  private:
    const std::vector<std::uint8_t>& buf_;
    std::size_t pos_ = 0;
};

void put_string(std::vector<std::uint8_t>& buf, const std::string& s) {
    put(buf, static_cast<std::uint32_t>(s.size()));
    put_bytes(buf, s.data(), s.size());
}

void put_gauges(std::vector<std::uint8_t>& buf, const WorkerGauges& g) {
    put(buf, g.queue_depth);
    put(buf, g.in_flight);
    put(buf, g.uptime_ms);
}

WorkerGauges take_gauges(Cursor& c) {
    WorkerGauges g;
    g.queue_depth = c.take<std::uint64_t>("gauges");
    g.in_flight = c.take<std::uint64_t>("gauges");
    g.uptime_ms = c.take<std::uint64_t>("gauges");
    return g;
}

}  // namespace

const char* to_string(Opcode op) noexcept {
    switch (op) {
        case Opcode::kDetectRequest: return "detect-request";
        case Opcode::kDetectResponse: return "detect-response";
        case Opcode::kPing: return "ping";
        case Opcode::kPong: return "pong";
        case Opcode::kStatsRequest: return "stats-request";
        case Opcode::kStatsResponse: return "stats-response";
        case Opcode::kShutdown: return "shutdown";
        case Opcode::kShutdownAck: return "shutdown-ack";
        case Opcode::kError: return "error";
        case Opcode::kReloadRequest: return "reload-request";
        case Opcode::kReloadResponse: return "reload-response";
    }
    return "?";
}

bool read_frame(int fd, Frame& out) {
    FrameHeader h;
    const std::size_t got = io::read_full(fd, &h, sizeof(h));
    if (got == 0) return false;  // peer closed at a frame boundary
    if (got != sizeof(h)) {
        throw std::runtime_error("protocol: stream ended inside a frame header");
    }
    if (h.magic != kMagic) {
        throw std::runtime_error("protocol: bad magic (not a DroNet cluster stream)");
    }
    if (h.version != kProtocolVersion) {
        throw std::runtime_error("protocol: version mismatch (got " +
                                 std::to_string(h.version) + ", speak " +
                                 std::to_string(kProtocolVersion) + ")");
    }
    if (h.payload_bytes > kMaxPayloadBytes) {
        throw std::runtime_error("protocol: payload length " +
                                 std::to_string(h.payload_bytes) +
                                 " exceeds the " +
                                 std::to_string(kMaxPayloadBytes) + "-byte cap");
    }
    out.header = h;
    out.payload.resize(h.payload_bytes);
    if (h.payload_bytes > 0 &&
        io::read_full(fd, out.payload.data(), out.payload.size()) !=
            out.payload.size()) {
        throw std::runtime_error("protocol: stream ended inside a frame payload");
    }
    return true;
}

void write_frame(int fd, Opcode opcode, std::uint64_t request_id,
                 const void* payload, std::size_t payload_bytes) {
    if (payload_bytes > kMaxPayloadBytes) {
        throw std::runtime_error("protocol: refusing to send oversized payload");
    }
    FrameHeader h;
    h.opcode = static_cast<std::uint16_t>(opcode);
    h.request_id = request_id;
    h.payload_bytes = static_cast<std::uint32_t>(payload_bytes);
    // One buffered write per frame: header and payload leave as a unit, so a
    // concurrent writer on another fd never interleaves with us and small
    // frames cost one syscall.
    std::vector<std::uint8_t> wire;
    wire.reserve(sizeof(h) + payload_bytes);
    put_bytes(wire, &h, sizeof(h));
    if (payload_bytes > 0) put_bytes(wire, payload, payload_bytes);
    io::write_full(fd, wire.data(), wire.size());
}

void write_frame(int fd, Opcode opcode, std::uint64_t request_id,
                 const std::vector<std::uint8_t>& payload) {
    write_frame(fd, opcode, request_id, payload.data(), payload.size());
}

std::vector<std::uint8_t> encode_detect_request(const Image& frame) {
    std::vector<std::uint8_t> buf;
    buf.reserve(8 + frame.size() * sizeof(float));
    put(buf, static_cast<std::uint16_t>(frame.width()));
    put(buf, static_cast<std::uint16_t>(frame.height()));
    put(buf, static_cast<std::uint16_t>(frame.channels()));
    put(buf, static_cast<std::uint16_t>(0));
    put_bytes(buf, frame.data(), frame.size() * sizeof(float));
    return buf;
}

Image decode_detect_request(const std::vector<std::uint8_t>& payload) {
    Cursor c(payload);
    const int w = c.take<std::uint16_t>("detect-request");
    const int h = c.take<std::uint16_t>("detect-request");
    const int ch = c.take<std::uint16_t>("detect-request");
    (void)c.take<std::uint16_t>("detect-request");  // reserved
    if (w <= 0 || h <= 0 || ch <= 0) {
        throw std::runtime_error("protocol: detect-request with empty geometry");
    }
    Image img(w, h, ch);
    c.take_bytes(img.data(), img.size() * sizeof(float), "detect-request pixels");
    c.expect_consumed("detect-request");
    return img;
}

std::vector<std::uint8_t> encode_detect_response(const WireDetectResult& r) {
    std::vector<std::uint8_t> buf;
    buf.reserve(64 + r.detections.size() * 28 + r.error.size());
    put(buf, static_cast<std::uint8_t>(r.status));
    put(buf, std::uint8_t{0});
    put(buf, std::uint16_t{0});
    put(buf, r.frame_index);
    put(buf, r.timings.queue_wait_ms);
    put(buf, r.timings.preprocess_ms);
    put(buf, r.timings.forward_ms);
    put(buf, r.timings.postprocess_ms);
    put(buf, static_cast<std::uint32_t>(r.detections.size()));
    for (const Detection& d : r.detections) {
        put(buf, d.box.x);
        put(buf, d.box.y);
        put(buf, d.box.w);
        put(buf, d.box.h);
        put(buf, d.objectness);
        put(buf, d.class_prob);
        put(buf, static_cast<std::int32_t>(d.class_id));
    }
    put_string(buf, r.error);
    return buf;
}

WireDetectResult decode_detect_response(const std::vector<std::uint8_t>& payload) {
    Cursor c(payload);
    WireDetectResult r;
    const auto status = c.take<std::uint8_t>("detect-response");
    if (status > static_cast<std::uint8_t>(serve::ServeStatus::kShutdown)) {
        throw std::runtime_error("protocol: detect-response with unknown status");
    }
    r.status = static_cast<serve::ServeStatus>(status);
    (void)c.take<std::uint8_t>("detect-response");
    (void)c.take<std::uint16_t>("detect-response");
    r.frame_index = c.take<std::int32_t>("detect-response");
    r.timings.queue_wait_ms = c.take<double>("detect-response");
    r.timings.preprocess_ms = c.take<double>("detect-response");
    r.timings.forward_ms = c.take<double>("detect-response");
    r.timings.postprocess_ms = c.take<double>("detect-response");
    const auto n = c.take<std::uint32_t>("detect-response");
    r.detections.reserve(n);
    for (std::uint32_t i = 0; i < n; ++i) {
        Detection d;
        d.box.x = c.take<float>("detection");
        d.box.y = c.take<float>("detection");
        d.box.w = c.take<float>("detection");
        d.box.h = c.take<float>("detection");
        d.objectness = c.take<float>("detection");
        d.class_prob = c.take<float>("detection");
        d.class_id = c.take<std::int32_t>("detection");
        r.detections.push_back(d);
    }
    r.error = c.take_string("detect-response error");
    c.expect_consumed("detect-response");
    return r;
}

std::vector<std::uint8_t> encode_pong(const WorkerGauges& g) {
    std::vector<std::uint8_t> buf;
    buf.reserve(24);
    put_gauges(buf, g);
    return buf;
}

WorkerGauges decode_pong(const std::vector<std::uint8_t>& payload) {
    Cursor c(payload);
    WorkerGauges g = take_gauges(c);
    c.expect_consumed("pong");
    return g;
}

std::vector<std::uint8_t> encode_stats_response(
    const serve::ServeStatsSnapshot& snapshot) {
    std::vector<std::uint8_t> buf;
    put(buf, snapshot.submitted);
    put(buf, snapshot.completed);
    put(buf, snapshot.dropped);
    put(buf, snapshot.rejected);
    put(buf, snapshot.failed);
    put(buf, snapshot.retries);
    put(buf, snapshot.deadline_expired);
    put(buf, snapshot.worker_restarts);
    put(buf, snapshot.batches);
    put(buf, snapshot.model_version);
    put(buf, snapshot.reloads);
    put(buf, snapshot.reload_failures);
    put(buf, snapshot.rollbacks);
    put(buf, snapshot.wall_seconds);
    put(buf, snapshot.throughput_fps);
    put_gauges(buf, WorkerGauges{snapshot.queue_depth, snapshot.in_flight,
                                 snapshot.uptime_ms});
    put_string(buf, snapshot.to_json());
    return buf;
}

WireStats decode_stats_response(const std::vector<std::uint8_t>& payload) {
    Cursor c(payload);
    WireStats s;
    s.submitted = c.take<std::uint64_t>("stats");
    s.completed = c.take<std::uint64_t>("stats");
    s.dropped = c.take<std::uint64_t>("stats");
    s.rejected = c.take<std::uint64_t>("stats");
    s.failed = c.take<std::uint64_t>("stats");
    s.retries = c.take<std::uint64_t>("stats");
    s.deadline_expired = c.take<std::uint64_t>("stats");
    s.worker_restarts = c.take<std::uint64_t>("stats");
    s.batches = c.take<std::uint64_t>("stats");
    s.model_version = c.take<std::uint64_t>("stats");
    s.reloads = c.take<std::uint64_t>("stats");
    s.reload_failures = c.take<std::uint64_t>("stats");
    s.rollbacks = c.take<std::uint64_t>("stats");
    s.wall_seconds = c.take<double>("stats");
    s.throughput_fps = c.take<double>("stats");
    s.gauges = take_gauges(c);
    s.json = c.take_string("stats json");
    c.expect_consumed("stats-response");
    return s;
}

std::vector<std::uint8_t> encode_error(const std::string& message) {
    std::vector<std::uint8_t> buf;
    put_string(buf, message);
    return buf;
}

std::string decode_error(const std::vector<std::uint8_t>& payload) {
    Cursor c(payload);
    std::string s = c.take_string("error");
    c.expect_consumed("error");
    return s;
}

std::vector<std::uint8_t> encode_reload_request(const WireReloadRequest& r) {
    std::vector<std::uint8_t> buf;
    buf.reserve(5 + r.weights_path.size());
    put(buf, static_cast<std::uint8_t>(r.rollback ? 1 : 0));
    put_string(buf, r.weights_path);
    return buf;
}

WireReloadRequest decode_reload_request(const std::vector<std::uint8_t>& payload) {
    Cursor c(payload);
    WireReloadRequest r;
    const auto op = c.take<std::uint8_t>("reload-request");
    if (op > 1) {
        throw std::runtime_error("protocol: reload-request with unknown op");
    }
    r.rollback = op == 1;
    r.weights_path = c.take_string("reload-request path");
    if (r.rollback && !r.weights_path.empty()) {
        throw std::runtime_error("protocol: rollback request carries a path");
    }
    c.expect_consumed("reload-request");
    return r;
}

std::vector<std::uint8_t> encode_reload_response(const WireReloadResponse& r) {
    std::vector<std::uint8_t> buf;
    buf.reserve(13 + r.error.size());
    put(buf, static_cast<std::uint8_t>(r.ok ? 1 : 0));
    put(buf, r.model_version);
    put_string(buf, r.error);
    return buf;
}

WireReloadResponse decode_reload_response(const std::vector<std::uint8_t>& payload) {
    Cursor c(payload);
    WireReloadResponse r;
    const auto ok = c.take<std::uint8_t>("reload-response");
    if (ok > 1) {
        throw std::runtime_error("protocol: reload-response with unknown flag");
    }
    r.ok = ok == 1;
    r.model_version = c.take<std::uint64_t>("reload-response");
    r.error = c.take_string("reload-response error");
    c.expect_consumed("reload-response");
    return r;
}

}  // namespace dronet::cluster
