// Wire protocol of the sharded serving tier (docs/serving.md, fleet section).
//
// The router and its worker processes exchange length-prefixed binary frames
// over connected local sockets (socketpair for spawned workers, AF_UNIX for
// adopted ones). Every frame is a fixed 24-byte header followed by
// `payload_bytes` of opcode-specific payload:
//
//   offset  field          meaning
//   0       u32 magic      0x444E5254 ("DRNT") — rejects foreign streams
//   4       u16 version    kProtocolVersion; mismatches are a hard error
//   6       u16 opcode     Opcode below
//   8       u64 request_id router-chosen correlation id (echoed in replies)
//   16      u32 payload    payload byte count (bounded by kMaxPayloadBytes)
//   20      u32 reserved   zero; room for flags without a version bump
//
// Multi-byte fields are host byte order: both ends always share one machine
// (the tier shards across processes, not hosts), so no swapping is done —
// the version field is the guard against ever silently crossing that line.
// All socket transfers go through the shared EINTR-safe io::read_full /
// io::write_full helpers, the same single definition nn/weights_io uses for
// crash-safe checkpoints.
#pragma once

#include <cstdint>
#include <string>
#include <vector>

#include "image/image.hpp"
#include "serve/detection_service.hpp"
#include "serve/serve_stats.hpp"

namespace dronet::cluster {

inline constexpr std::uint32_t kMagic = 0x444E5254;  // "DRNT"
/// v2 added the model-lifecycle opcodes (kReloadRequest/kReloadResponse) and
/// the lifecycle counters in the stats block — the version field doing the
/// job it was reserved for.
inline constexpr std::uint16_t kProtocolVersion = 2;
/// Upper bound on one frame's payload; a 4096x4096 RGB float frame is ~192 MB,
/// anything past 256 MB is a corrupt length field, not a request.
inline constexpr std::uint32_t kMaxPayloadBytes = 256u << 20;

enum class Opcode : std::uint16_t {
    kDetectRequest = 1,   ///< router -> worker: one frame to detect
    kDetectResponse = 2,  ///< worker -> router: ServeResult for a request id
    kPing = 3,            ///< router -> worker: health probe
    kPong = 4,            ///< worker -> router: alive + live gauges
    kStatsRequest = 5,    ///< router -> worker: ask for a ServeStats snapshot
    kStatsResponse = 6,   ///< worker -> router: counters block + full JSON
    kShutdown = 7,        ///< router -> worker: drain in-flight work and exit
    kShutdownAck = 8,     ///< worker -> router: final frame before exit
    kError = 9,           ///< worker -> router: request-level protocol error
    kReloadRequest = 10,  ///< router -> worker: hot-swap (or roll back) the model
    kReloadResponse = 11, ///< worker -> router: reload outcome + live version
};

[[nodiscard]] const char* to_string(Opcode op) noexcept;

struct FrameHeader {
    std::uint32_t magic = kMagic;
    std::uint16_t version = kProtocolVersion;
    std::uint16_t opcode = 0;
    std::uint64_t request_id = 0;
    std::uint32_t payload_bytes = 0;
    std::uint32_t reserved = 0;
};
static_assert(sizeof(FrameHeader) == 24, "wire header layout must be packed");

struct Frame {
    FrameHeader header;
    std::vector<std::uint8_t> payload;
};

/// Reads one complete frame. Returns false on a clean end-of-stream exactly
/// at a frame boundary (peer closed). Throws std::runtime_error for a
/// malformed header (bad magic, version mismatch, oversized payload) or a
/// mid-frame EOF, std::system_error for socket errors.
[[nodiscard]] bool read_frame(int fd, Frame& out);

/// Writes one complete frame (header + payload). Throws std::system_error on
/// socket errors (EPIPE when the peer died). Callers serialize per-fd writes.
void write_frame(int fd, Opcode opcode, std::uint64_t request_id,
                 const void* payload, std::size_t payload_bytes);
void write_frame(int fd, Opcode opcode, std::uint64_t request_id,
                 const std::vector<std::uint8_t>& payload);

// ---- payload codecs ---------------------------------------------------------
// Decoders validate lengths and throw std::runtime_error on short/oversized
// payloads; they never read past the buffer.

/// Detect request: u16 width, u16 height, u16 channels, u16 reserved, then
/// width*height*channels f32 pixels (planar CHW, exactly Image's layout).
[[nodiscard]] std::vector<std::uint8_t> encode_detect_request(const Image& frame);
[[nodiscard]] Image decode_detect_request(const std::vector<std::uint8_t>& payload);

/// One ServeResult crossing the wire. frame_index is the worker's local
/// submission index; the router rewrites it with its own fleet-wide index.
struct WireDetectResult {
    serve::ServeStatus status = serve::ServeStatus::kOk;
    std::int32_t frame_index = 0;
    serve::FrameTimings timings;
    Detections detections;
    std::string error;
};
[[nodiscard]] std::vector<std::uint8_t> encode_detect_response(const WireDetectResult& r);
[[nodiscard]] WireDetectResult decode_detect_response(const std::vector<std::uint8_t>& payload);

/// Pong payload: the worker's live load signals, cheap enough for every
/// health-probe round trip. The router's least-loaded policy uses its own
/// in-flight accounting as the primary signal and queue_depth as a tiebreak.
struct WorkerGauges {
    std::uint64_t queue_depth = 0;
    std::uint64_t in_flight = 0;
    std::uint64_t uptime_ms = 0;
};
[[nodiscard]] std::vector<std::uint8_t> encode_pong(const WorkerGauges& g);
[[nodiscard]] WorkerGauges decode_pong(const std::vector<std::uint8_t>& payload);

/// Stats response: the counters the router folds into fleet aggregates as a
/// fixed binary block, plus the worker's full ServeStatsSnapshot::to_json()
/// string embedded verbatim in the fleet JSON (no router-side JSON parsing).
struct WireStats {
    std::uint64_t submitted = 0;
    std::uint64_t completed = 0;
    std::uint64_t dropped = 0;
    std::uint64_t rejected = 0;
    std::uint64_t failed = 0;
    std::uint64_t retries = 0;
    std::uint64_t deadline_expired = 0;
    std::uint64_t worker_restarts = 0;
    std::uint64_t batches = 0;
    std::uint64_t model_version = 0;
    std::uint64_t reloads = 0;
    std::uint64_t reload_failures = 0;
    std::uint64_t rollbacks = 0;
    double wall_seconds = 0;
    double throughput_fps = 0;
    WorkerGauges gauges;
    std::string json;
};
[[nodiscard]] std::vector<std::uint8_t> encode_stats_response(
    const serve::ServeStatsSnapshot& snapshot);
[[nodiscard]] WireStats decode_stats_response(const std::vector<std::uint8_t>& payload);

/// Error payload: a request-scoped diagnostic string (e.g. "bad channel
/// count"); the router resolves the matching future as kFailed.
[[nodiscard]] std::vector<std::uint8_t> encode_error(const std::string& message);
[[nodiscard]] std::string decode_error(const std::vector<std::uint8_t>& payload);

/// Reload request: u8 op (0 = load the checkpoint at `weights_path`,
/// 1 = roll back to the previous model set; the path must be empty), then
/// the path string. The worker answers with exactly one kReloadResponse
/// (or kError for a malformed payload).
struct WireReloadRequest {
    bool rollback = false;
    std::string weights_path;
};
[[nodiscard]] std::vector<std::uint8_t> encode_reload_request(const WireReloadRequest& r);
[[nodiscard]] WireReloadRequest decode_reload_request(const std::vector<std::uint8_t>& payload);

/// Reload response: u8 ok, u64 model_version now live in the worker, and the
/// rejection diagnostic (empty on success).
struct WireReloadResponse {
    bool ok = false;
    std::uint64_t model_version = 0;
    std::string error;
};
[[nodiscard]] std::vector<std::uint8_t> encode_reload_response(const WireReloadResponse& r);
[[nodiscard]] WireReloadResponse decode_reload_response(const std::vector<std::uint8_t>& payload);

}  // namespace dronet::cluster
