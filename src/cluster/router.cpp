#include "cluster/router.hpp"

#include <fcntl.h>
#include <signal.h>
#include <sys/socket.h>
#include <sys/wait.h>
#include <unistd.h>

#include <algorithm>
#include <cerrno>
#include <sstream>
#include <stdexcept>
#include <system_error>
#include <utility>

namespace dronet::cluster {

namespace {

using Clock = std::chrono::steady_clock;

double ms_since(Clock::time_point t) {
    return std::chrono::duration<double, std::milli>(Clock::now() - t).count();
}

/// Reaps a child, escalating to SIGKILL after `grace_ms` of WNOHANG polling.
void reap_child(pid_t pid, std::int64_t grace_ms) {
    if (pid <= 0) return;
    int status = 0;
    const auto deadline = Clock::now() + std::chrono::milliseconds(grace_ms);
    for (;;) {
        const pid_t r = ::waitpid(pid, &status, WNOHANG);
        if (r != 0) return;  // reaped (or ECHILD: someone else did)
        if (Clock::now() >= deadline) break;
        std::this_thread::sleep_for(std::chrono::milliseconds(5));
    }
    ::kill(pid, SIGKILL);
    ::waitpid(pid, &status, 0);
}

}  // namespace

std::string FleetStats::to_json() const {
    std::ostringstream os;
    os << "{\"router\":{"
       << "\"submitted\":" << submitted << ",\"ok\":" << ok
       << ",\"dropped\":" << dropped << ",\"rejected\":" << rejected
       << ",\"timeout\":" << timeout << ",\"failed\":" << failed
       << ",\"shutdown\":" << shutdown
       << ",\"rejected_admission\":" << rejected_admission
       << ",\"rejected_quota\":" << rejected_quota
       << ",\"rejected_no_worker\":" << rejected_no_worker
       << ",\"retried\":" << retried
       << ",\"worker_ejects\":" << worker_ejects
       << ",\"worker_readmits\":" << worker_readmits
       << ",\"worker_respawns\":" << worker_respawns
       << ",\"worker_deaths\":" << worker_deaths
       << ",\"wall_seconds\":" << wall_seconds
       << ",\"throughput_fps\":" << throughput_fps
       << ",\"accounting_ok\":" << (accounting_ok() ? "true" : "false") << "}";
    os << ",\"workers\":[";
    for (std::size_t i = 0; i < workers.size(); ++i) {
        if (i > 0) os << ",";
        // The worker's own ServeStats JSON, verbatim.
        os << workers[i].json;
    }
    os << "],\"aggregate\":{\"completed\":" << agg_completed
       << ",\"throughput_fps\":" << agg_throughput_fps << "}}";
    return os.str();
}

std::string RolloutReport::to_json() const {
    std::ostringstream os;
    os << "{\"ok\":" << (ok ? "true" : "false") << ",\"total\":" << total
       << ",\"reloaded\":" << reloaded << ",\"rolled_back\":" << rolled_back
       << ",\"model_version\":" << model_version << ",\"error\":\"" << error
       << "\"}";
    return os.str();
}

Router::Router(RouterConfig config) : config_(std::move(config)) {
    if (config_.workers < 0) {
        throw std::invalid_argument("Router: negative worker count");
    }
    if (config_.workers > 0 && config_.worker_argv.empty()) {
        throw std::invalid_argument("Router: workers > 0 requires worker_argv");
    }
    const std::size_t total =
        static_cast<std::size_t>(config_.workers) + config_.adopt_fds.size();
    if (total == 0) {
        throw std::invalid_argument("Router: no workers to spawn or adopt");
    }
    io::ignore_sigpipe();

    // Adopted fds are wrapped first so every handed-in descriptor is owned
    // (and closed on any failure path) before fork can throw.
    workers_.reserve(total);
    for (int i = 0; i < config_.workers; ++i) {
        auto w = std::make_unique<Worker>();
        w->slot = workers_.size();
        workers_.push_back(std::move(w));
    }
    for (int fd : config_.adopt_fds) {
        auto w = std::make_unique<Worker>();
        w->slot = workers_.size();
        w->fd.reset(fd);
        workers_.push_back(std::move(w));
    }
    try {
        for (int i = 0; i < config_.workers; ++i) {
            spawn_into_slot(static_cast<std::size_t>(i));
        }
    } catch (...) {
        for (auto& w : workers_) {
            if (w->pid > 0) reap_child(w->pid, 0);
        }
        throw;
    }
    for (auto& w : workers_) start_receiver(*w);
    health_ = std::thread(&Router::health_loop, this);
}

Router::~Router() { stop(); }

void Router::spawn_into_slot(std::size_t slot) {
    Worker& w = *workers_[slot];
    int sv[2];
    if (::socketpair(AF_UNIX, SOCK_STREAM, 0, sv) != 0) {
        throw std::system_error(errno, std::generic_category(),
                                "Router: socketpair");
    }
    // The router end must never leak into children spawned later.
    ::fcntl(sv[0], F_SETFD, FD_CLOEXEC);
    // argv is fully materialized before fork: only async-signal-safe calls
    // are legal between fork and exec in a threaded parent.
    std::vector<std::string> argv_s = config_.worker_argv;
    argv_s.push_back("--fd");
    argv_s.push_back(std::to_string(sv[1]));
    std::vector<char*> argv;
    argv.reserve(argv_s.size() + 1);
    for (auto& s : argv_s) argv.push_back(s.data());
    argv.push_back(nullptr);

    const pid_t pid = ::fork();
    if (pid < 0) {
        const int err = errno;
        ::close(sv[0]);
        ::close(sv[1]);
        throw std::system_error(err, std::generic_category(), "Router: fork");
    }
    if (pid == 0) {
        // Child: drop every inherited descriptor except stdio and our socket.
        // Sibling workers' child ends carry no CLOEXEC flag (they must survive
        // their own exec), and holding copies here would mask their EOFs.
        for (int fd = 3; fd < 1024; ++fd) {
            if (fd != sv[1]) ::close(fd);
        }
        ::execv(argv[0], argv.data());
        ::_exit(127);
    }
    ::close(sv[1]);
    sync::MutexLock lock(mu_);  // publish fd/pid to accessors
    w.fd.reset(sv[0]);
    w.pid = pid;
}

void Router::start_receiver(Worker& w) {
    w.receiver = std::thread(&Router::receiver_loop, this, std::ref(w), w.fd.get());
}

std::future<serve::ServeResult> Router::submit(std::uint64_t client_id,
                                               Image frame) {
    const auto now = Clock::now();
    PendingRequest p;
    p.client_id = client_id;
    p.retries_left = config_.max_retries;
    p.submit_time = now;
    std::future<serve::ServeResult> fut = p.promise.get_future();
    // Encoded before any lock: the payload dominates the work and sheds are
    // the rare path.
    const std::vector<std::uint8_t> payload = encode_detect_request(frame);
    p.frame = std::move(frame);

    serve::ServeStatus shed_status = serve::ServeStatus::kOk;
    std::string shed_error;
    Worker* target = nullptr;
    std::uint64_t id = 0;
    {
        sync::MutexLock lock(mu_);
        note_first_submit_locked();
        ++counters_.submitted;
        p.frame_index = next_frame_index_++;
        if (stopping_) {
            shed_status = serve::ServeStatus::kShutdown;
            shed_error = "router stopped";
            count_resolution_locked(shed_status);
        } else {
            // --- admission control ---
            ClientState& c = clients_[client_id];
            if (!c.initialized) {
                c.initialized = true;
                c.tokens = config_.client_burst;
                c.last_refill = now;
            }
            if (config_.client_max_inflight > 0 &&
                c.inflight >= config_.client_max_inflight) {
                shed_status = serve::ServeStatus::kRejected;
                shed_error = "admission: client in-flight cap reached";
                ++counters_.rejected_admission;
                count_resolution_locked(shed_status);
            } else if (config_.client_rate_per_s > 0) {
                const double elapsed_s =
                    std::chrono::duration<double>(now - c.last_refill).count();
                c.tokens = std::min(config_.client_burst,
                                    c.tokens + elapsed_s * config_.client_rate_per_s);
                c.last_refill = now;
                if (c.tokens < 1.0) {
                    shed_status = serve::ServeStatus::kRejected;
                    shed_error = "admission: client quota exhausted";
                    ++counters_.rejected_quota;
                    count_resolution_locked(shed_status);
                } else {
                    c.tokens -= 1.0;
                }
            }
            if (shed_status == serve::ServeStatus::kOk) {
                // Accepted: counts against the client until resolved.
                c.inflight++;
                ++total_pending_;
                // --- dispatch ---
                for (;;) {
                    target = pick_worker_locked(false);
                    if (target != nullptr) break;
                    // A reloading worker counts as coming back: submits wait
                    // out a rolling reload instead of shedding (matters for
                    // single-worker fleets, which would otherwise reject
                    // every frame for the duration of the swap).
                    const bool any_up = std::any_of(
                        workers_.begin(), workers_.end(), [](const auto& w) {
                            return w->state == WorkerState::kUp ||
                                   w->state == WorkerState::kReloading;
                        });
                    if (stopping_ || !any_up) {
                        shed_status = stopping_ ? serve::ServeStatus::kShutdown
                                                : serve::ServeStatus::kRejected;
                        shed_error = stopping_ ? "router stopped"
                                               : "no healthy worker available";
                        if (!stopping_) ++counters_.rejected_no_worker;
                        count_resolution_locked(shed_status);
                        clients_[client_id].inflight--;
                        --total_pending_;
                        break;
                    }
                    capacity_cv_.wait(mu_);
                }
            }
            if (target != nullptr) {
                id = register_locked(*target, std::move(p));
            }
        }
    }
    if (target == nullptr) {
        drained_cv_.notify_all();
        resolve_shed(std::move(p), shed_status, std::move(shed_error));
        return fut;
    }
    try {
        sync::MutexLock wl(target->write_mu);
        write_frame(target->fd.get(), Opcode::kDetectRequest, id, payload);
    } catch (const std::exception&) {
        // The pending frame is registered on `target`; taking the worker out
        // re-dispatches or sheds it (never abandons it).
        take_worker_out(*target, WorkerState::kDead, "request write failed");
    }
    return fut;
}

Router::Worker* Router::pick_worker_locked(bool ignore_inflight_limit) {
    const auto eligible = [&](const Worker& w) {
        if (w.state != WorkerState::kUp) return false;
        if (ignore_inflight_limit || config_.worker_inflight_limit == 0) return true;
        return w.inflight < config_.worker_inflight_limit;
    };
    if (config_.dispatch == DispatchPolicy::kRoundRobin) {
        for (std::size_t n = 0; n < workers_.size(); ++n) {
            const std::size_t i = (rr_next_ + n) % workers_.size();
            if (eligible(*workers_[i])) {
                rr_next_ = (i + 1) % workers_.size();
                return workers_[i].get();
            }
        }
        return nullptr;
    }
    Worker* best = nullptr;
    for (auto& w : workers_) {
        if (!eligible(*w)) continue;
        if (best == nullptr || w->inflight < best->inflight ||
            (w->inflight == best->inflight &&
             w->gauges.queue_depth < best->gauges.queue_depth)) {
            best = w.get();
        }
    }
    return best;
}

std::uint64_t Router::register_locked(Worker& w, PendingRequest p) {
    const std::uint64_t id = next_request_id_++;
    w.pending.emplace(id, std::move(p));
    w.inflight++;
    return id;
}

void Router::resolve_shed(PendingRequest p, serve::ServeStatus status,
                          std::string error) {
    serve::ServeResult r;
    r.status = status;
    r.frame.frame_index = p.frame_index;
    r.frame.latency_ms = ms_since(p.submit_time);
    r.error = std::move(error);
    p.promise.set_value(std::move(r));
}

void Router::count_resolution_locked(serve::ServeStatus status) {
    switch (status) {
        case serve::ServeStatus::kOk: ++counters_.ok; break;
        case serve::ServeStatus::kDropped: ++counters_.dropped; break;
        case serve::ServeStatus::kRejected: ++counters_.rejected; break;
        case serve::ServeStatus::kTimeout: ++counters_.timeout; break;
        case serve::ServeStatus::kFailed: ++counters_.failed; break;
        case serve::ServeStatus::kShutdown: ++counters_.shutdown; break;
    }
    last_resolution_ = Clock::now();
}

void Router::note_first_submit_locked() {
    if (!clock_started_) {
        clock_started_ = true;
        first_submit_ = Clock::now();
        last_resolution_ = first_submit_;
    }
}

void Router::receiver_loop(Worker& w, int fd) {
    try {
        Frame frame;
        while (read_frame(fd, frame)) {
            switch (static_cast<Opcode>(frame.header.opcode)) {
                case Opcode::kDetectResponse:
                case Opcode::kError:
                    handle_detect_response(w, frame);
                    break;
                case Opcode::kPong:
                    handle_pong(w, frame);
                    break;
                case Opcode::kStatsResponse:
                    handle_stats_response(w, frame);
                    break;
                case Opcode::kReloadResponse:
                    handle_reload_response(w, frame);
                    break;
                case Opcode::kShutdownAck:
                    break;  // the worker's final frame; EOF follows
                default:
                    break;  // tolerated: never wedge the fleet on one frame
            }
        }
    } catch (const std::exception&) {
        // Corrupt stream or socket error: same handling as a closed peer.
    }
    take_worker_out(w, WorkerState::kDead, "connection closed");
}

void Router::handle_detect_response(Worker& w, const Frame& frame) {
    WireDetectResult wire;
    if (static_cast<Opcode>(frame.header.opcode) == Opcode::kError) {
        wire.status = serve::ServeStatus::kFailed;
        wire.error = decode_error(frame.payload);
    } else {
        wire = decode_detect_response(frame.payload);
    }
    PendingRequest p;
    {
        sync::MutexLock lock(mu_);
        // Any answered frame proves liveness as well as a pong does.
        w.consecutive_failures = 0;
        auto it = w.pending.find(frame.header.request_id);
        if (it == w.pending.end()) return;  // stale: re-dispatched or shed
        p = std::move(it->second);
        w.pending.erase(it);
        if (w.inflight > 0) w.inflight--;
        --total_pending_;
        auto cit = clients_.find(p.client_id);
        if (cit != clients_.end() && cit->second.inflight > 0) {
            cit->second.inflight--;
        }
        count_resolution_locked(wire.status);
    }
    capacity_cv_.notify_all();
    drained_cv_.notify_all();
    serve::ServeResult r;
    r.status = wire.status;
    r.frame.frame_index = p.frame_index;  // fleet-wide index, not worker-local
    r.frame.detections = std::move(wire.detections);
    r.frame.latency_ms = ms_since(p.submit_time);
    r.timings = wire.timings;
    r.error = std::move(wire.error);
    p.promise.set_value(std::move(r));
}

void Router::handle_pong(Worker& w, const Frame& frame) {
    const WorkerGauges g = decode_pong(frame.payload);
    bool readmitted = false;
    {
        sync::MutexLock lock(mu_);
        w.gauges = g;
        w.ping_outstanding = false;
        if (w.state == WorkerState::kHalfOpen) {
            w.state = WorkerState::kUp;
            w.consecutive_failures = 0;
            ++counters_.worker_readmits;
            readmitted = true;
        } else if (w.state == WorkerState::kUp) {
            w.consecutive_failures = 0;
        }
    }
    if (readmitted) capacity_cv_.notify_all();
}

void Router::handle_stats_response(Worker& w, const Frame& frame) {
    std::promise<WireStats> promise;
    {
        sync::MutexLock lock(mu_);
        auto it = w.pending_stats.find(frame.header.request_id);
        if (it == w.pending_stats.end()) return;  // probe already timed out
        promise = std::move(it->second);
        w.pending_stats.erase(it);
    }
    try {
        promise.set_value(decode_stats_response(frame.payload));
    } catch (...) {
        promise.set_exception(std::current_exception());
    }
}

void Router::handle_reload_response(Worker& w, const Frame& frame) {
    std::promise<WireReloadResponse> promise;
    {
        sync::MutexLock lock(mu_);
        // A reload reply proves liveness as well as a pong does.
        w.consecutive_failures = 0;
        auto it = w.pending_reloads.find(frame.header.request_id);
        if (it == w.pending_reloads.end()) return;  // probe already timed out
        promise = std::move(it->second);
        w.pending_reloads.erase(it);
    }
    try {
        promise.set_value(decode_reload_response(frame.payload));
    } catch (...) {
        promise.set_exception(std::current_exception());
    }
}

void Router::take_worker_out(Worker& w, WorkerState to_state, const char* reason) {
    (void)reason;
    std::vector<PendingRequest> stranded;
    std::vector<std::promise<WireStats>> broken_stats;
    std::vector<std::promise<WireReloadResponse>> broken_reloads;
    {
        sync::MutexLock lock(mu_);
        if (w.state == WorkerState::kDead) return;
        if (to_state == WorkerState::kDead) {
            w.state = WorkerState::kDead;
            if (!stopping_) ++counters_.worker_deaths;
        } else {
            if (w.state == WorkerState::kEjected) return;
            w.state = WorkerState::kEjected;
            w.ejected_at = Clock::now();
            ++counters_.worker_ejects;
        }
        w.ping_outstanding = false;
        w.consecutive_failures = 0;
        stranded.reserve(w.pending.size());
        for (auto& [id, p] : w.pending) stranded.push_back(std::move(p));
        w.pending.clear();
        w.inflight = 0;
        for (auto& [id, sp] : w.pending_stats) broken_stats.push_back(std::move(sp));
        w.pending_stats.clear();
        for (auto& [id, rp] : w.pending_reloads) broken_reloads.push_back(std::move(rp));
        w.pending_reloads.clear();
    }
    capacity_cv_.notify_all();
    for (auto& sp : broken_stats) {
        sp.set_exception(std::make_exception_ptr(
            std::runtime_error("cluster: worker lost before stats reply")));
    }
    for (auto& rp : broken_reloads) {
        rp.set_exception(std::make_exception_ptr(
            std::runtime_error("cluster: worker lost before reload reply")));
    }
    redispatch_or_shed(std::move(stranded));
}

void Router::redispatch_or_shed(std::vector<PendingRequest> stranded) {
    for (auto& p : stranded) {
        const std::vector<std::uint8_t> payload = encode_detect_request(p.frame);
        Worker* target = nullptr;
        std::uint64_t id = 0;
        const int frame_index = p.frame_index;
        {
            sync::MutexLock lock(mu_);
            if (!stopping_ && p.retries_left > 0) {
                // Retries jump the in-flight cap: they already waited once.
                target = pick_worker_locked(true);
            }
            if (target != nullptr) {
                p.retries_left--;
                ++counters_.retried;
                id = register_locked(*target, std::move(p));
            } else {
                count_resolution_locked(serve::ServeStatus::kShutdown);
                auto cit = clients_.find(p.client_id);
                if (cit != clients_.end() && cit->second.inflight > 0) {
                    cit->second.inflight--;
                }
                --total_pending_;
            }
        }
        if (target == nullptr) {
            drained_cv_.notify_all();
            resolve_shed(std::move(p), serve::ServeStatus::kShutdown,
                         "worker lost; no re-dispatch budget or healthy worker");
            continue;
        }
        (void)frame_index;
        try {
            sync::MutexLock wl(target->write_mu);
            write_frame(target->fd.get(), Opcode::kDetectRequest, id, payload);
        } catch (const std::exception&) {
            // Recursion bounded by retries_left and the worker count; the
            // just-registered frame is in `target`'s pending map, so the
            // nested call owns it from here.
            take_worker_out(*target, WorkerState::kDead, "retry write failed");
        }
    }
}

void Router::send_ping(Worker& w) {
    std::uint64_t id = 0;
    {
        sync::MutexLock lock(mu_);
        if (w.state == WorkerState::kDead) return;
        id = next_request_id_++;
        w.ping_sent_at = Clock::now();
        w.ping_outstanding = true;
    }
    try {
        sync::MutexLock wl(w.write_mu);
        write_frame(w.fd.get(), Opcode::kPing, id, nullptr, 0);
    } catch (const std::exception&) {
        take_worker_out(w, WorkerState::kDead, "ping write failed");
    }
}

void Router::health_loop() {
    for (;;) {
        {
            sync::MutexLock hl(health_mu_);
            const auto tick_deadline =
                Clock::now() +
                std::chrono::milliseconds(config_.health_interval_ms);
            while (!health_stop_ &&
                   health_cv_.wait_until(health_mu_, tick_deadline) !=
                       std::cv_status::timeout) {
            }
            if (health_stop_) return;
        }
        for (auto& wp : workers_) {
            Worker& w = *wp;
            enum class Action { kNone, kPing, kEject, kRespawn };
            Action action = Action::kNone;
            {
                sync::MutexLock lock(mu_);
                const auto now = Clock::now();
                const bool overdue =
                    w.ping_outstanding &&
                    now - w.ping_sent_at >
                        std::chrono::milliseconds(config_.health_timeout_ms);
                switch (w.state) {
                    case WorkerState::kUp:
                        if (overdue) {
                            w.ping_outstanding = false;
                            if (++w.consecutive_failures >= config_.eject_threshold) {
                                action = Action::kEject;
                            }
                        } else if (!w.ping_outstanding) {
                            action = Action::kPing;
                        }
                        break;
                    case WorkerState::kEjected:
                        if (now - w.ejected_at >=
                            std::chrono::milliseconds(config_.readmit_ms)) {
                            w.state = WorkerState::kHalfOpen;
                            w.ping_outstanding = false;
                            action = Action::kPing;  // the trial probe
                        }
                        break;
                    case WorkerState::kHalfOpen:
                        if (overdue) {
                            // Failed probe: breaker snaps back open.
                            w.state = WorkerState::kEjected;
                            w.ejected_at = now;
                            w.ping_outstanding = false;
                        } else if (!w.ping_outstanding) {
                            action = Action::kPing;
                        }
                        break;
                    case WorkerState::kReloading:
                        // Out of dispatch for a rolling reload; the reload RPC
                        // itself is the liveness probe, so no pings (a slow
                        // checkpoint load must not look like a dead worker).
                        break;
                    case WorkerState::kDead:
                        if (config_.respawn && w.pid > 0 && !stopping_) {
                            action = Action::kRespawn;
                        }
                        break;
                }
            }
            switch (action) {
                case Action::kNone:
                    break;
                case Action::kPing:
                    send_ping(w);
                    break;
                case Action::kEject:
                    take_worker_out(w, WorkerState::kEjected,
                                    "health checks failed");
                    break;
                case Action::kRespawn:
                    try {
                        if (w.receiver.joinable()) w.receiver.join();
                        reap_child(w.pid, 100);
                        w.fd.reset();
                        spawn_into_slot(w.slot);
                        {
                            sync::MutexLock lock(mu_);
                            w.state = WorkerState::kUp;
                            w.consecutive_failures = 0;
                            w.ping_outstanding = false;
                            w.gauges = WorkerGauges{};
                            ++counters_.worker_respawns;
                        }
                        start_receiver(w);
                        capacity_cv_.notify_all();
                    } catch (const std::exception&) {
                        // Spawn failed (fd exhaustion, fork error): the slot
                        // stays dead and the next tick retries.
                    }
                    break;
            }
        }
    }
}

void Router::drain() {
    sync::MutexLock lock(mu_);
    while (total_pending_ != 0) drained_cv_.wait(mu_);
}

void Router::stop() {
    sync::MutexLock sg(stop_mu_);
    if (stopped_.exchange(true)) return;
    {
        sync::MutexLock lock(mu_);
        stopping_ = true;
    }
    capacity_cv_.notify_all();
    // Health thread first: no more pings or respawns while tearing down.
    {
        sync::MutexLock hl(health_mu_);
        health_stop_ = true;
    }
    health_cv_.notify_all();
    if (health_.joinable()) health_.join();
    // Ask every connected worker to drain and exit.
    for (auto& wp : workers_) {
        Worker& w = *wp;
        bool connected = false;
        {
            sync::MutexLock lock(mu_);
            connected = w.state != WorkerState::kDead;
        }
        if (!connected) continue;
        try {
            sync::MutexLock wl(w.write_mu);
            write_frame(w.fd.get(), Opcode::kShutdown, 0, nullptr, 0);
        } catch (const std::exception&) {
            take_worker_out(w, WorkerState::kDead, "shutdown write failed");
        }
    }
    // Give in-flight frames a bounded window to come back answered.
    {
        sync::MutexLock lock(mu_);
        const auto deadline =
            Clock::now() +
            std::chrono::milliseconds(config_.shutdown_timeout_ms);
        while (total_pending_ != 0 &&
               drained_cv_.wait_until(mu_, deadline) !=
                   std::cv_status::timeout) {
        }
    }
    // Sever connections: blocked receivers wake with EOF and their
    // take_worker_out resolves any straggler as kShutdown (stopping_ is set,
    // so nothing is re-dispatched and nothing is abandoned).
    for (auto& wp : workers_) {
        if (wp->fd) ::shutdown(wp->fd.get(), SHUT_RDWR);
    }
    for (auto& wp : workers_) {
        if (wp->receiver.joinable()) wp->receiver.join();
    }
    for (auto& wp : workers_) wp->fd.reset();
    for (auto& wp : workers_) {
        reap_child(wp->pid, config_.shutdown_timeout_ms);
        wp->pid = -1;
    }
}

FleetStats Router::fleet_stats(std::int64_t timeout_ms) {
    struct Probe {
        Worker* worker;
        std::uint64_t id;
        std::future<WireStats> fut;
    };
    std::vector<Probe> probes;
    for (auto& wp : workers_) {
        Worker& w = *wp;
        std::uint64_t id = 0;
        std::future<WireStats> fut;
        {
            sync::MutexLock lock(mu_);
            if (w.state == WorkerState::kDead) continue;
            id = next_request_id_++;
            std::promise<WireStats> promise;
            fut = promise.get_future();
            w.pending_stats.emplace(id, std::move(promise));
        }
        try {
            sync::MutexLock wl(w.write_mu);
            write_frame(w.fd.get(), Opcode::kStatsRequest, id, nullptr, 0);
        } catch (const std::exception&) {
            take_worker_out(w, WorkerState::kDead, "stats write failed");
            continue;  // the probe's promise was broken by take_worker_out
        }
        probes.push_back(Probe{&w, id, std::move(fut)});
    }
    FleetStats out;
    {
        sync::MutexLock lock(mu_);
        out = counters_;
        if (clock_started_) {
            out.wall_seconds =
                std::chrono::duration<double>(last_resolution_ - first_submit_)
                    .count();
        }
    }
    out.throughput_fps =
        out.wall_seconds > 0 ? static_cast<double>(out.ok) / out.wall_seconds : 0;
    for (Probe& probe : probes) {
        if (probe.fut.wait_for(std::chrono::milliseconds(timeout_ms)) !=
            std::future_status::ready) {
            sync::MutexLock lock(mu_);
            probe.worker->pending_stats.erase(probe.id);
            continue;
        }
        try {
            WireStats ws = probe.fut.get();
            out.agg_completed += ws.completed;
            out.agg_throughput_fps += ws.throughput_fps;
            out.workers.push_back(std::move(ws));
        } catch (const std::exception&) {
            // Worker died between write and reply; router counters cover it.
        }
    }
    return out;
}

std::optional<WireReloadResponse> Router::request_reload(
    Worker& w, const WireReloadRequest& req, std::int64_t timeout_ms) {
    std::uint64_t id = 0;
    std::future<WireReloadResponse> fut;
    {
        sync::MutexLock lock(mu_);
        if (w.state == WorkerState::kDead) return std::nullopt;
        id = next_request_id_++;
        std::promise<WireReloadResponse> promise;
        fut = promise.get_future();
        w.pending_reloads.emplace(id, std::move(promise));
    }
    const std::vector<std::uint8_t> payload = encode_reload_request(req);
    try {
        sync::MutexLock wl(w.write_mu);
        write_frame(w.fd.get(), Opcode::kReloadRequest, id, payload);
    } catch (const std::exception&) {
        // The probe's promise was broken by take_worker_out.
        take_worker_out(w, WorkerState::kDead, "reload write failed");
        return std::nullopt;
    }
    if (fut.wait_for(std::chrono::milliseconds(timeout_ms)) !=
        std::future_status::ready) {
        sync::MutexLock lock(mu_);
        w.pending_reloads.erase(id);
        return std::nullopt;
    }
    try {
        return fut.get();
    } catch (const std::exception&) {
        return std::nullopt;  // worker lost before the reply landed
    }
}

RolloutReport Router::rolling_reload(const std::string& weights_path,
                                     std::int64_t timeout_ms) {
    sync::MutexLock rollout_lock(rollout_mu_);
    RolloutReport report;
    report.total = workers_.size();
    std::vector<Worker*> committed;
    for (auto& wp : workers_) {
        Worker& w = *wp;
        // Take the slot out of dispatch: pick_worker_locked only selects kUp,
        // so no new frame lands here while the swap is in flight. Submits
        // wait on capacity_cv_ rather than shed (see submit()'s any_up).
        {
            sync::MutexLock lock(mu_);
            if (stopping_) {
                report.error = "router stopped";
                break;
            }
            if (w.state != WorkerState::kUp) {
                report.error = "worker slot " + std::to_string(w.slot) +
                               " not up (" + to_string(w.state) + ")";
                break;
            }
            w.state = WorkerState::kReloading;
            w.ping_outstanding = false;
        }
        // Drain: wait for this worker's in-flight frames to come back so the
        // swap never races a request against the model it was dispatched to.
        bool drained = false;
        bool still_ours = false;
        {
            sync::MutexLock lock(mu_);
            const auto deadline =
                Clock::now() + std::chrono::milliseconds(timeout_ms);
            while (!w.pending.empty() &&
                   w.state == WorkerState::kReloading) {
                if (capacity_cv_.wait_until(mu_, deadline) ==
                    std::cv_status::timeout) {
                    break;
                }
            }
            drained = w.pending.empty();
            still_ours = w.state == WorkerState::kReloading;
        }
        if (!drained || !still_ours) {
            {
                sync::MutexLock lock(mu_);
                if (w.state == WorkerState::kReloading) {
                    w.state = WorkerState::kUp;  // old model, back in dispatch
                }
            }
            capacity_cv_.notify_all();
            report.error = !still_ours
                               ? "worker slot " + std::to_string(w.slot) +
                                     " lost during drain"
                               : "drain timeout on worker slot " +
                                     std::to_string(w.slot);
            break;
        }
        WireReloadRequest req;
        req.weights_path = weights_path;
        const std::optional<WireReloadResponse> resp =
            request_reload(w, req, timeout_ms);
        // Back into dispatch either way: on success it serves the new model,
        // on failure the worker-side canary left the old model byte-intact.
        {
            sync::MutexLock lock(mu_);
            if (w.state == WorkerState::kReloading) w.state = WorkerState::kUp;
        }
        capacity_cv_.notify_all();
        if (!resp || !resp->ok) {
            report.error = resp ? ("worker slot " + std::to_string(w.slot) +
                                   " rejected reload: " + resp->error)
                                : ("worker slot " + std::to_string(w.slot) +
                                   " lost or timed out during reload");
            break;
        }
        committed.push_back(&w);
        ++report.reloaded;
        report.model_version = resp->model_version;
    }
    if (report.reloaded == report.total && report.error.empty()) {
        report.ok = true;
        return report;
    }
    // Abort: restore the previous version on every already-swapped worker so
    // the fleet never serves two model versions past the rollout's end.
    WireReloadRequest rb;
    rb.rollback = true;
    for (Worker* w : committed) {
        const std::optional<WireReloadResponse> resp =
            request_reload(*w, rb, timeout_ms);
        if (resp && resp->ok) ++report.rolled_back;
    }
    if (report.error.empty()) report.error = "rollout aborted";
    return report;
}

std::size_t Router::slots() const noexcept { return workers_.size(); }

WorkerState Router::worker_state(std::size_t slot) const {
    sync::MutexLock lock(mu_);
    return workers_.at(slot)->state;
}

pid_t Router::worker_pid(std::size_t slot) const {
    sync::MutexLock lock(mu_);
    return workers_.at(slot)->pid;
}

int Router::alive_workers() const {
    sync::MutexLock lock(mu_);
    int n = 0;
    for (const auto& w : workers_) {
        if (w->state == WorkerState::kUp) ++n;
    }
    return n;
}

void Router::kill_worker(std::size_t slot) {
    pid_t pid = -1;
    {
        sync::MutexLock lock(mu_);
        pid = workers_.at(slot)->pid;
    }
    if (pid > 0) ::kill(pid, SIGKILL);
}

}  // namespace dronet::cluster
