// Front-end router of the sharded serving tier (docs/serving.md).
//
// One Router process owns a fleet of worker processes, each wrapping a
// DetectionService behind the wire protocol in protocol.hpp. The router:
//
//  * spawns workers (fork/exec of tools/serve_worker over a socketpair) and
//    adopts pre-connected ones (already-running workers handed in as fds);
//  * dispatches detect requests least-loaded (router-side in-flight count,
//    worker queue-depth gauge as tiebreak) or round-robin, pipelining up to
//    `worker_inflight_limit` frames per worker;
//  * enforces per-client admission control: an in-flight cap and a
//    token-bucket quota, shedding violators immediately as kRejected;
//  * health-checks workers with ping frames and folds the results into the
//    same circuit-breaker shape the in-process service uses for threads
//    (PR 5): `eject_threshold` consecutive failures eject a worker, after
//    `readmit_ms` it half-opens and a successful probe re-admits it, and
//    dead spawned workers are reaped and respawned like the in-process
//    watchdog respawns threads;
//  * guarantees the PR-5 accounting invariant fleet-wide: every accepted
//    future resolves. Frames in flight on a worker that dies or is ejected
//    are re-dispatched to a healthy worker (up to `max_retries`) or resolved
//    kShutdown — never silently abandoned.
//
// All submit() futures resolve with the same ServeResult type the in-process
// DetectionService returns, so callers can swap one for a fleet untouched.
#pragma once

#include <sys/types.h>

#include <atomic>
#include <chrono>
#include <cstdint>
#include <future>
#include <map>
#include <memory>
#include <optional>
#include <string>
#include <thread>
#include <vector>

#include "cluster/protocol.hpp"
#include "image/image.hpp"
#include "io/fdio.hpp"
#include "serve/detection_service.hpp"
#include "sync/mutex.hpp"

namespace dronet::cluster {

enum class DispatchPolicy {
    kLeastLoaded,  ///< fewest router-tracked in-flight frames; gauge tiebreak
    kRoundRobin,   ///< strict rotation over healthy workers
};

[[nodiscard]] constexpr const char* to_string(DispatchPolicy p) noexcept {
    switch (p) {
        case DispatchPolicy::kLeastLoaded: return "least-loaded";
        case DispatchPolicy::kRoundRobin: return "round-robin";
    }
    return "?";
}

enum class WorkerState {
    kUp,        ///< healthy, eligible for dispatch
    kEjected,   ///< breaker open: too many consecutive health failures
    kHalfOpen,  ///< trial probe outstanding after readmit_ms
    kDead,      ///< connection lost / process exited; awaiting respawn
    kReloading, ///< drained out of dispatch while a rolling reload swaps it
};

[[nodiscard]] constexpr const char* to_string(WorkerState s) noexcept {
    switch (s) {
        case WorkerState::kUp: return "up";
        case WorkerState::kEjected: return "ejected";
        case WorkerState::kHalfOpen: return "half-open";
        case WorkerState::kDead: return "dead";
        case WorkerState::kReloading: return "reloading";
    }
    return "?";
}

struct RouterConfig {
    /// Command line used to exec each spawned worker; the router appends
    /// "--fd N" with its end of the socketpair. Required when workers > 0.
    std::vector<std::string> worker_argv;
    /// Number of worker processes to spawn.
    int workers = 0;
    /// Already-connected worker sockets to adopt (ownership transfers to the
    /// router). Adopted workers are health-checked and ejectable like spawned
    /// ones but are never respawned — the router did not start them.
    std::vector<int> adopt_fds;

    DispatchPolicy dispatch = DispatchPolicy::kLeastLoaded;
    /// Max frames the router keeps in flight per worker; further submits
    /// block until a slot frees (admission control sheds before this point
    /// for well-configured clients). 0 = unlimited.
    std::size_t worker_inflight_limit = 4;

    // --- per-client admission control (0 disables each knob) ---
    std::size_t client_max_inflight = 0;  ///< cap on unresolved frames per client
    double client_rate_per_s = 0;         ///< token-bucket refill rate
    double client_burst = 8;              ///< token-bucket depth

    // --- health / breaker / respawn ---
    std::int64_t health_interval_ms = 50;  ///< ping cadence per worker
    std::int64_t health_timeout_ms = 2000; ///< unanswered ping = one failure
    int eject_threshold = 3;               ///< consecutive failures to eject
    std::int64_t readmit_ms = 500;         ///< ejected -> half-open delay
    bool respawn = true;                   ///< restart dead spawned workers
    /// Re-dispatch budget for frames stranded on a dead/ejected worker;
    /// exhausted frames resolve kShutdown.
    int max_retries = 1;
    /// stop(): how long to wait for workers to answer in-flight frames after
    /// kShutdown before severing connections and resolving leftovers.
    std::int64_t shutdown_timeout_ms = 5000;
};

/// Router-side counters plus one WireStats per reachable worker. The
/// accounting invariant (chaos tests assert it fleet-wide): submitted ==
/// ok + dropped + rejected + timeout + failed + shutdown.
struct FleetStats {
    // Resolution counts by ServeStatus.
    std::uint64_t submitted = 0;
    std::uint64_t ok = 0;
    std::uint64_t dropped = 0;
    std::uint64_t rejected = 0;  ///< admission + quota + no-worker + worker-shed
    std::uint64_t timeout = 0;
    std::uint64_t failed = 0;
    std::uint64_t shutdown = 0;
    // Rejection breakdown (all included in `rejected` above).
    std::uint64_t rejected_admission = 0;  ///< client in-flight cap
    std::uint64_t rejected_quota = 0;      ///< token bucket empty
    std::uint64_t rejected_no_worker = 0;  ///< no healthy worker available
    // Fleet lifecycle.
    std::uint64_t retried = 0;         ///< frames re-dispatched off a lost worker
    std::uint64_t worker_ejects = 0;   ///< breaker-open transitions
    std::uint64_t worker_readmits = 0; ///< half-open probes that re-admitted
    std::uint64_t worker_respawns = 0; ///< dead processes replaced
    std::uint64_t worker_deaths = 0;   ///< connections lost outside stop()
    double wall_seconds = 0;           ///< first submit -> last resolution
    double throughput_fps = 0;         ///< ok / wall_seconds

    /// Per-worker snapshots (workers that answered the stats probe), in slot
    /// order, plus aggregate sums over them.
    std::vector<WireStats> workers;
    std::uint64_t agg_completed = 0;
    double agg_throughput_fps = 0;

    [[nodiscard]] bool accounting_ok() const noexcept {
        return submitted == ok + dropped + rejected + timeout + failed + shutdown;
    }
    /// One-line JSON: router counters under "router", the workers' own
    /// ServeStats JSON embedded verbatim under "workers".
    [[nodiscard]] std::string to_json() const;
};

/// Outcome of one rolling fleet reload (Router::rolling_reload).
struct RolloutReport {
    bool ok = false;
    std::size_t total = 0;        ///< worker slots in the fleet
    std::size_t reloaded = 0;     ///< workers serving the new version (success only)
    std::size_t rolled_back = 0;  ///< workers restored after an abort
    std::uint64_t model_version = 0;  ///< fleet-wide version after a success
    std::string error;                ///< why the rollout aborted; empty on success
    [[nodiscard]] std::string to_json() const;
};

class Router {
  public:
    /// Spawns/adopts the configured workers and starts receiver + health
    /// threads. Throws std::invalid_argument for an impossible config and
    /// std::runtime_error when spawning fails.
    explicit Router(RouterConfig config);
    ~Router();

    Router(const Router&) = delete;
    Router& operator=(const Router&) = delete;

    /// Dispatches one frame on behalf of `client_id`. Thread-safe. The future
    /// always resolves (admission sheds and fleet failures included). Blocks
    /// only when every healthy worker is at worker_inflight_limit.
    [[nodiscard]] std::future<serve::ServeResult> submit(std::uint64_t client_id,
                                                         Image frame);

    /// Blocks until no accepted frame is unresolved. Producers should be
    /// quiescent, as with DetectionService::drain().
    void drain();

    /// Graceful shutdown: workers get kShutdown, in-flight frames are awaited
    /// up to shutdown_timeout_ms, stragglers resolve kShutdown, spawned
    /// processes are reaped (SIGKILL after the timeout). Idempotent.
    void stop();

    /// Polls every dispatchable worker for its ServeStats (bounded by
    /// `timeout_ms` each) and merges with the router counters.
    [[nodiscard]] FleetStats fleet_stats(std::int64_t timeout_ms = 2000);

    [[nodiscard]] std::size_t slots() const noexcept;
    [[nodiscard]] WorkerState worker_state(std::size_t slot) const;
    [[nodiscard]] pid_t worker_pid(std::size_t slot) const;
    [[nodiscard]] int alive_workers() const;
    [[nodiscard]] const RouterConfig& config() const noexcept { return config_; }

    /// Chaos hook: SIGKILL a spawned worker process (no-op for adopted
    /// workers). The fleet reacts exactly as it would to a real crash.
    void kill_worker(std::size_t slot);

    /// Rolling fleet reload: one worker at a time is taken out of dispatch
    /// (kReloading — traffic keeps flowing to the rest, and submits wait
    /// rather than shed if every worker is mid-reload), drained of in-flight
    /// frames, sent a kReloadRequest for `weights_path`, and re-admitted
    /// once it confirms the swap. The first failure — an unhealthy slot, a
    /// drain or reload timeout, a canary rejection, or a worker death
    /// mid-rollout — aborts the rollout and sends a rollback to every
    /// already-reloaded worker, restoring the previous version fleet-wide.
    /// Serialized against concurrent rollouts; safe alongside live traffic.
    [[nodiscard]] RolloutReport rolling_reload(const std::string& weights_path,
                                               std::int64_t timeout_ms = 30000);

  private:
    struct PendingRequest {
        std::promise<serve::ServeResult> promise;
        std::uint64_t client_id = 0;
        Image frame;  ///< retained for re-dispatch after a worker loss
        int frame_index = 0;
        int retries_left = 0;
        std::chrono::steady_clock::time_point submit_time;
    };

    struct Worker {
        std::size_t slot = 0;
        io::UniqueFd fd;
        pid_t pid = -1;  ///< -1 for adopted workers
        std::thread receiver;
        sync::Mutex write_mu{"Router::Worker::write_mu"};  ///< serializes frames onto the socket

        // Everything below is guarded by Router::mu_. (The thread-safety
        // analysis cannot express GUARDED_BY on a nested struct's fields
        // referring to the outer class's mutex; the *_locked methods carry
        // REQUIRES(mu_) instead.)
        WorkerState state = WorkerState::kUp;
        std::size_t inflight = 0;
        std::map<std::uint64_t, PendingRequest> pending;
        std::map<std::uint64_t, std::promise<WireStats>> pending_stats;
        std::map<std::uint64_t, std::promise<WireReloadResponse>> pending_reloads;
        int consecutive_failures = 0;
        std::chrono::steady_clock::time_point ejected_at;
        std::chrono::steady_clock::time_point ping_sent_at;  ///< zero = none
        bool ping_outstanding = false;
        WorkerGauges gauges;  ///< from the last pong
    };

    struct ClientState {
        std::uint64_t inflight = 0;
        double tokens = 0;
        std::chrono::steady_clock::time_point last_refill;
        bool initialized = false;
    };

    void spawn_into_slot(std::size_t slot);       // mu_ NOT held
    void start_receiver(Worker& w);
    void receiver_loop(Worker& w, int fd);
    void handle_detect_response(Worker& w, const Frame& frame);
    void handle_pong(Worker& w, const Frame& frame);
    void handle_stats_response(Worker& w, const Frame& frame);
    void handle_reload_response(Worker& w, const Frame& frame);
    /// Sends one reload/rollback request and awaits the response (bounded by
    /// `timeout_ms`). nullopt = worker dead, write failed, timed out, or lost
    /// mid-reload. mu_ NOT held.
    [[nodiscard]] std::optional<WireReloadResponse> request_reload(
        Worker& w, const WireReloadRequest& req, std::int64_t timeout_ms);
    void health_loop();
    void send_ping(Worker& w);
    /// Marks the worker dead/ejected and strands its in-flight work.
    /// `to_state` is kDead or kEjected. mu_ NOT held.
    void take_worker_out(Worker& w, WorkerState to_state, const char* reason);
    /// Re-dispatches stranded frames or resolves them kShutdown. mu_ NOT held.
    void redispatch_or_shed(std::vector<PendingRequest> stranded);
    /// Picks a dispatch target under mu_; nullptr when none is eligible.
    [[nodiscard]] Worker* pick_worker_locked(bool ignore_inflight_limit)
        REQUIRES(mu_);
    /// Registers `p` on `w` under mu_ and returns the encoded request frame
    /// bytes + id for the caller to write outside the lock.
    std::uint64_t register_locked(Worker& w, PendingRequest p) REQUIRES(mu_);
    void resolve_shed(PendingRequest p, serve::ServeStatus status,
                      std::string error);
    void count_resolution_locked(serve::ServeStatus status) REQUIRES(mu_);
    void note_first_submit_locked() REQUIRES(mu_);

    RouterConfig config_;
    std::vector<std::unique_ptr<Worker>> workers_;

    mutable sync::Mutex mu_{"Router::mu"};
    sync::CondVar capacity_cv_;  ///< a worker slot freed / state change
    sync::CondVar drained_cv_;   ///< pending count hit zero
    bool stopping_ GUARDED_BY(mu_) = false;
    std::uint64_t next_request_id_ GUARDED_BY(mu_) = 1;
    int next_frame_index_ GUARDED_BY(mu_) = 0;
    std::size_t rr_next_ GUARDED_BY(mu_) = 0;
    std::uint64_t total_pending_ GUARDED_BY(mu_) = 0;
    std::map<std::uint64_t, ClientState> clients_ GUARDED_BY(mu_);

    // Router counters (snapshot into FleetStats).
    FleetStats counters_ GUARDED_BY(mu_);
    bool clock_started_ GUARDED_BY(mu_) = false;
    std::chrono::steady_clock::time_point first_submit_ GUARDED_BY(mu_);
    std::chrono::steady_clock::time_point last_resolution_ GUARDED_BY(mu_);

    std::thread health_;
    sync::Mutex health_mu_{"Router::health_mu"};
    sync::CondVar health_cv_;
    bool health_stop_ GUARDED_BY(health_mu_) = false;

    sync::Mutex stop_mu_{"Router::stop_mu"};  ///< serializes stop() callers
    sync::Mutex rollout_mu_{"Router::rollout_mu"};  ///< one rolling reload at a time
    std::atomic<bool> stopped_{false};
};

}  // namespace dronet::cluster
