#include "cluster/worker.hpp"

#include <exception>
#include <string>
#include <utility>

#include "cluster/protocol.hpp"
#include "io/fdio.hpp"

namespace dronet::cluster {

namespace {

/// Pending slots between the reader and the resolver. Deep enough that the
/// reader never blocks on the resolver under normal pipelining (the router's
/// per-worker in-flight cap is far smaller); kBlock backpressure bounds
/// memory if a router misbehaves.
constexpr std::size_t kPendingCapacity = 256;

}  // namespace

WorkerServer::WorkerServer(serve::DetectionService& service, int fd)
    : service_(service),
      fd_(fd),
      pending_(kPendingCapacity, serve::BackpressurePolicy::kBlock) {
    io::ignore_sigpipe();
}

void WorkerServer::respond(std::uint64_t request_id, const serve::ServeResult& r) {
    WireDetectResult wire;
    wire.status = r.status;
    wire.frame_index = r.frame.frame_index;
    wire.timings = r.timings;
    wire.detections = r.frame.detections;
    wire.error = r.error;
    const std::vector<std::uint8_t> payload = encode_detect_response(wire);
    sync::MutexLock lock(write_mu_);
    write_frame(fd_, Opcode::kDetectResponse, request_id, payload);
}

void WorkerServer::start_reload(std::uint64_t request_id, bool rollback,
                                std::string path) {
    auto respond_reload = [this, request_id](const serve::ReloadOutcome& out) {
        WireReloadResponse wire;
        wire.ok = out.ok;
        wire.model_version = out.model_version;
        wire.error = out.error;
        if (peer_gone_.load(std::memory_order_acquire)) return;
        try {
            sync::MutexLock lock(write_mu_);
            write_frame(fd_, Opcode::kReloadResponse, request_id,
                        encode_reload_response(wire));
        } catch (const std::exception&) {
            peer_gone_.store(true, std::memory_order_release);
        }
    };
    if (reload_busy_.exchange(true, std::memory_order_acq_rel)) {
        serve::ReloadOutcome busy;
        busy.model_version = service_.model_version();
        busy.error = "reload already in progress";
        respond_reload(busy);
        return;
    }
    // The previous reload thread (if any) has finished its work — busy was
    // false — but still needs joining before we reuse the slot.
    if (reload_thread_.joinable()) reload_thread_.join();
    reload_thread_ = std::thread([this, rollback, path = std::move(path),
                                  respond_reload] {
        serve::ReloadOutcome out;
        try {
            out = rollback ? service_.rollback()
                           : service_.reload_checkpoint(path);
        } catch (const std::exception& e) {
            out.ok = false;
            out.model_version = service_.model_version();
            out.error = e.what();
        }
        // Clear busy before replying: a router that serializes reloads on the
        // reply must never race the flag into a spurious busy rejection.
        reload_busy_.store(false, std::memory_order_release);
        respond_reload(out);
    });
}

void WorkerServer::resolver_loop() {
    while (auto pending = pending_.pop()) {
        // The service contract: every submitted future resolves (success,
        // timeout, failure, or shutdown sweep) — this get() never hangs.
        serve::ServeResult r = pending->result.get();
        if (peer_gone_.load(std::memory_order_acquire)) continue;
        try {
            respond(pending->request_id, r);
        } catch (const std::exception&) {
            // Peer vanished mid-stream; keep draining futures so the service
            // can quiesce, but stop writing.
            peer_gone_.store(true, std::memory_order_release);
        }
    }
}

std::uint64_t WorkerServer::run() {
    std::thread resolver(&WorkerServer::resolver_loop, this);
    bool shutdown_requested = false;
    std::exception_ptr stream_error;
    try {
        Frame frame;
        while (read_frame(fd_, frame)) {
            const auto opcode = static_cast<Opcode>(frame.header.opcode);
            const std::uint64_t id = frame.header.request_id;
            switch (opcode) {
                case Opcode::kDetectRequest: {
                    Image img;
                    try {
                        img = decode_detect_request(frame.payload);
                    } catch (const std::exception& e) {
                        sync::MutexLock lock(write_mu_);
                        write_frame(fd_, Opcode::kError, id, encode_error(e.what()));
                        break;
                    }
                    Pending p;
                    p.request_id = id;
                    p.result = service_.submit(std::move(img));
                    ++served_;
                    (void)pending_.push(std::move(p));
                    break;
                }
                case Opcode::kPing: {
                    const serve::ServeStatsSnapshot s = service_.stats();
                    const WorkerGauges g{s.queue_depth, s.in_flight, s.uptime_ms};
                    sync::MutexLock lock(write_mu_);
                    write_frame(fd_, Opcode::kPong, id, encode_pong(g));
                    break;
                }
                case Opcode::kStatsRequest: {
                    const std::vector<std::uint8_t> payload =
                        encode_stats_response(service_.stats());
                    sync::MutexLock lock(write_mu_);
                    write_frame(fd_, Opcode::kStatsResponse, id, payload);
                    break;
                }
                case Opcode::kReloadRequest: {
                    WireReloadRequest req;
                    try {
                        req = decode_reload_request(frame.payload);
                    } catch (const std::exception& e) {
                        sync::MutexLock lock(write_mu_);
                        write_frame(fd_, Opcode::kError, id, encode_error(e.what()));
                        break;
                    }
                    start_reload(id, req.rollback, std::move(req.weights_path));
                    break;
                }
                case Opcode::kShutdown:
                    shutdown_requested = true;
                    break;
                default: {
                    sync::MutexLock lock(write_mu_);
                    write_frame(fd_, Opcode::kError, id,
                                encode_error(std::string("unexpected opcode ") +
                                             to_string(opcode)));
                    break;
                }
            }
            if (shutdown_requested) break;
        }
    } catch (...) {
        // Corrupt stream or dead peer: answer what we already accepted, then
        // surface the error to the process entry point.
        stream_error = std::current_exception();
        peer_gone_.store(true, std::memory_order_release);
    }
    // Drain: no new requests arrive; the resolver finishes answering every
    // accepted frame before the queue reports empty-and-closed.
    pending_.close();
    resolver.join();
    if (reload_thread_.joinable()) reload_thread_.join();
    if (shutdown_requested && !peer_gone_.load(std::memory_order_acquire)) {
        try {
            sync::MutexLock lock(write_mu_);
            write_frame(fd_, Opcode::kShutdownAck, 0, nullptr, 0);
        } catch (const std::exception&) {
            // Router left without waiting for the ack; nothing to do.
        }
    }
    if (stream_error) std::rethrow_exception(stream_error);
    return served_;
}

}  // namespace dronet::cluster
