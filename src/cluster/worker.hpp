// The worker-process half of the sharded serving tier.
//
// A WorkerServer wraps one DetectionService behind a single connected socket:
// a reader loop decodes frames (protocol.hpp) and submits detect requests to
// the service, and a resolver thread turns the resulting futures back into
// detect-response frames. Requests therefore pipeline — the router can keep
// several frames in flight per worker and the service's own queue, micro-
// batching, and self-healing machinery (docs/robustness.md) all apply
// unchanged inside the worker process.
//
// Lifecycle: run() serves until the peer closes the socket or sends
// kShutdown; every in-flight frame is resolved and answered (kShutdown
// additionally gets a kShutdownAck as the final frame) before run() returns.
// tools/serve_worker is the process entry point around this class.
#pragma once

#include <atomic>
#include <cstdint>
#include <future>
#include <string>
#include <thread>

#include "serve/bounded_queue.hpp"
#include "serve/detection_service.hpp"
#include "sync/mutex.hpp"

namespace dronet::cluster {

class WorkerServer {
  public:
    /// Serves `service` over the connected socket `fd` (not owned; the caller
    /// keeps it open for the duration of run()).
    WorkerServer(serve::DetectionService& service, int fd);

    WorkerServer(const WorkerServer&) = delete;
    WorkerServer& operator=(const WorkerServer&) = delete;

    /// Blocks serving the connection; returns the number of detect requests
    /// handled. Protocol errors from a corrupt stream propagate as
    /// std::runtime_error after in-flight work is resolved.
    std::uint64_t run();

  private:
    struct Pending {
        std::uint64_t request_id = 0;
        std::future<serve::ServeResult> result;
    };

    void resolver_loop();
    void respond(std::uint64_t request_id, const serve::ServeResult& r);
    void start_reload(std::uint64_t request_id, bool rollback, std::string path);

    serve::DetectionService& service_;
    int fd_;
    sync::Mutex write_mu_{"WorkerServer::write_mu"};  ///< reader (pong/stats/error) vs resolver responses
    /// FIFO of submitted-but-unanswered requests. Every future resolves (the
    /// service guarantees it), so the resolver can wait on them in order;
    /// responses still carry their request id, so ordering is cosmetic.
    serve::BoundedQueue<Pending> pending_;
    std::atomic<bool> peer_gone_{false};  ///< stop writing after EPIPE
    std::uint64_t served_ = 0;
    /// Reloads run on their own thread so the reader keeps answering pings
    /// (and accepting frames) while the candidate loads and canaries; one at
    /// a time — a second request while busy is answered with a rejection.
    std::thread reload_thread_;
    std::atomic<bool> reload_busy_{false};
};

}  // namespace dronet::cluster
