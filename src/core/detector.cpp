#include "core/detector.hpp"

#include <stdexcept>

#include "nn/cfg.hpp"
#include "nn/weights_io.hpp"

namespace dronet {

Detector::Detector(Network net, EvalConfig post)
    : net_(std::move(net)), post_(post) {
    if (net_.region() == nullptr) {
        throw std::invalid_argument("Detector: network has no region layer");
    }
    if (net_.config().batch != 1) net_.set_batch(1);
}

Detector::Detector(const Options& options)
    : Detector(build_model(options.model,
                           ModelOptions{.input_size = options.input_size,
                                        .classes = options.classes,
                                        .batch = 1,
                                        .seed = options.seed,
                                        .filter_scale = options.filter_scale}),
               options.post) {}

Detector Detector::from_files(const std::filesystem::path& cfg_path,
                              const std::filesystem::path& weights_path,
                              const EvalConfig& post) {
    Detector d(load_cfg_file(cfg_path), post);
    if (!weights_path.empty()) d.load_weights(weights_path);
    return d;
}

Detections Detector::detect(const Image& image) {
    return detect_image(net_, image, post_);
}

void Detector::load_weights(const std::filesystem::path& path) {
    dronet::load_weights(net_, path);
}

void Detector::save_weights(const std::filesystem::path& path) const {
    dronet::save_weights(net_, path);
}

void Detector::set_input_size(int size) {
    net_.resize_input(size, size);
}

std::string Detector::summary() const { return net_.describe(); }

}  // namespace dronet
