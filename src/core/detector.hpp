// dronet::Detector — the library's primary public API.
//
// Wraps model construction (zoo or cfg file), weight persistence, input-size
// selection (the paper's 352-608 sweep) and post-processing behind a single
// object:
//
//   dronet::Detector detector({.model = dronet::ModelId::kDroNet,
//                              .input_size = 512});
//   detector.load_weights("dronet.weights");
//   dronet::Detections cars = detector.detect(frame);
#pragma once

#include <filesystem>
#include <string>

#include "detect/box.hpp"
#include "eval/evaluator.hpp"
#include "image/image.hpp"
#include "models/model_zoo.hpp"
#include "nn/network.hpp"

namespace dronet {

class Detector {
  public:
    struct Options {
        ModelId model = ModelId::kDroNet;
        int input_size = 512;   ///< the paper's selected DroNet resolution
        int classes = 1;
        float filter_scale = 1.0f;
        std::uint64_t seed = 0x5eed;
        EvalConfig post;        ///< score/NMS thresholds
    };

    /// Builds a zoo model with randomly initialized weights.
    explicit Detector(const Options& options);

    /// Builds from a darknet cfg file; loads weights if a path is given.
    static Detector from_files(const std::filesystem::path& cfg_path,
                               const std::filesystem::path& weights_path = {},
                               const EvalConfig& post = {});

    /// Runs detection on an arbitrary-size image (resampled internally).
    [[nodiscard]] Detections detect(const Image& image);

    void load_weights(const std::filesystem::path& path);
    void save_weights(const std::filesystem::path& path) const;

    /// Changes the network input resolution (weights preserved).
    void set_input_size(int size);
    [[nodiscard]] int input_size() const noexcept { return net_.config().width; }

    /// Structure/parameter/FLOPs summary (Fig. 1-style table).
    [[nodiscard]] std::string summary() const;

    [[nodiscard]] Network& network() noexcept { return net_; }
    [[nodiscard]] const Network& network() const noexcept { return net_; }
    [[nodiscard]] EvalConfig& post() noexcept { return post_; }

  private:
    Detector(Network net, EvalConfig post);

    Network net_;
    EvalConfig post_;
};

}  // namespace dronet
