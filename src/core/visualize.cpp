#include "core/visualize.hpp"

#include <algorithm>
#include <cmath>

namespace dronet {
namespace {

void box_to_pixels(const Box& b, int w, int h, int& x0, int& y0, int& x1, int& y1) {
    x0 = static_cast<int>(std::lround(b.left() * static_cast<float>(w)));
    y0 = static_cast<int>(std::lround(b.top() * static_cast<float>(h)));
    x1 = static_cast<int>(std::lround(b.right() * static_cast<float>(w)));
    y1 = static_cast<int>(std::lround(b.bottom() * static_cast<float>(h)));
}

}  // namespace

Image draw_detections(const Image& image, const Detections& dets, int thickness) {
    Image out = image;
    for (const Detection& d : dets) {
        int x0, y0, x1, y1;
        box_to_pixels(d.box, out.width(), out.height(), x0, y0, x1, y1);
        // Confidence-coded colour: yellow (0.0) -> green (1.0).
        const float conf = std::clamp(d.score(), 0.0f, 1.0f);
        draw_rect(out, x0, y0, x1, y1, Rgb{1.0f - conf, 1.0f, 0.1f}, thickness);
    }
    return out;
}

Image draw_ground_truth(const Image& image, const std::vector<GroundTruth>& truths,
                        int thickness) {
    Image out = image;
    for (const GroundTruth& gt : truths) {
        int x0, y0, x1, y1;
        box_to_pixels(gt.box, out.width(), out.height(), x0, y0, x1, y1);
        draw_rect(out, x0, y0, x1, y1, Rgb{1.0f, 1.0f, 1.0f}, thickness);
    }
    return out;
}

}  // namespace dronet
