// Detection visualization (paper Fig. 5a-style overlays).
#pragma once

#include "detect/box.hpp"
#include "image/draw.hpp"
#include "image/image.hpp"

namespace dronet {

/// Returns a copy of `image` with detection boxes drawn on it. Box colour
/// encodes confidence (low = yellow, high = green) unless `color` is set.
[[nodiscard]] Image draw_detections(const Image& image, const Detections& dets,
                                    int thickness = 2);

/// Draws ground-truth boxes (white) — handy next to draw_detections output.
[[nodiscard]] Image draw_ground_truth(const Image& image,
                                      const std::vector<GroundTruth>& truths,
                                      int thickness = 1);

}  // namespace dronet
