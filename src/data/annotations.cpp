#include "data/annotations.hpp"

#include <fstream>
#include <iomanip>
#include <sstream>
#include <stdexcept>

#include "image/ppm.hpp"

namespace dronet {

std::string truths_to_text(const std::vector<GroundTruth>& truths) {
    std::ostringstream os;
    os << std::setprecision(8);
    for (const GroundTruth& gt : truths) {
        os << gt.class_id << " " << gt.box.x << " " << gt.box.y << " " << gt.box.w << " "
           << gt.box.h << "\n";
    }
    return os.str();
}

std::vector<GroundTruth> truths_from_text(const std::string& text) {
    std::vector<GroundTruth> out;
    std::istringstream in(text);
    std::string line;
    while (std::getline(in, line)) {
        if (line.find_first_not_of(" \t\r") == std::string::npos) continue;
        std::istringstream ls(line);
        GroundTruth gt;
        if (!(ls >> gt.class_id >> gt.box.x >> gt.box.y >> gt.box.w >> gt.box.h)) {
            throw std::runtime_error("truths_from_text: malformed line '" + line + "'");
        }
        out.push_back(gt);
    }
    return out;
}

void save_dataset(const DetectionDataset& ds, const std::filesystem::path& dir) {
    std::filesystem::create_directories(dir);
    std::ofstream index(dir / "index.txt");
    if (!index) throw std::runtime_error("save_dataset: cannot write index in " + dir.string());
    for (std::size_t i = 0; i < ds.size(); ++i) {
        std::ostringstream stem;
        stem << std::setw(4) << std::setfill('0') << i;
        write_ppm(ds.image(i), dir / (stem.str() + ".ppm"));
        std::ofstream label(dir / (stem.str() + ".txt"));
        label << truths_to_text(ds.truths(i));
        index << stem.str() << ".ppm\n";
    }
}

DetectionDataset load_dataset(const std::filesystem::path& dir) {
    std::ifstream index(dir / "index.txt");
    if (!index) throw std::runtime_error("load_dataset: cannot open index in " + dir.string());
    DetectionDataset ds;
    std::string name;
    while (std::getline(index, name)) {
        if (name.empty()) continue;
        Image im = read_ppm(dir / name);
        const std::filesystem::path label_path =
            dir / (std::filesystem::path(name).stem().string() + ".txt");
        std::ifstream label(label_path);
        if (!label) throw std::runtime_error("load_dataset: missing " + label_path.string());
        std::ostringstream buf;
        buf << label.rdbuf();
        ds.add(std::move(im), truths_from_text(buf.str()));
    }
    return ds;
}

}  // namespace dronet
