// Darknet-format annotation persistence.
//
// Labels use darknet's one-line-per-object text format
// ("class cx cy w h", all normalized), images are stored as PPM; a dataset
// directory holds NNNN.ppm / NNNN.txt pairs plus an index file, so datasets
// generated here are interchangeable with darknet tooling.
#pragma once

#include <filesystem>

#include "data/dataset.hpp"

namespace dronet {

/// Serializes one image's annotations to darknet label text.
[[nodiscard]] std::string truths_to_text(const std::vector<GroundTruth>& truths);

/// Parses darknet label text. Throws std::runtime_error on malformed lines.
[[nodiscard]] std::vector<GroundTruth> truths_from_text(const std::string& text);

/// Writes the dataset as dir/NNNN.ppm + dir/NNNN.txt + dir/index.txt.
void save_dataset(const DetectionDataset& ds, const std::filesystem::path& dir);

/// Loads a dataset previously written by save_dataset.
[[nodiscard]] DetectionDataset load_dataset(const std::filesystem::path& dir);

}  // namespace dronet
