#include "data/augment.hpp"

#include <algorithm>
#include <cmath>

#include "image/resize.hpp"

namespace dronet {
namespace {

// Crops [cx0,cx1) x [cy0,cy1) (normalized) and rescales to the original
// size; remaps boxes and drops those with too little area surviving.
SceneSample crop_sample(const SceneSample& in, float cx0, float cy0, float cx1,
                        float cy1, float min_visibility) {
    const int w = in.image.width();
    const int h = in.image.height();
    const int px0 = std::clamp(static_cast<int>(cx0 * static_cast<float>(w)), 0, w - 2);
    const int py0 = std::clamp(static_cast<int>(cy0 * static_cast<float>(h)), 0, h - 2);
    const int px1 = std::clamp(static_cast<int>(cx1 * static_cast<float>(w)), px0 + 1, w);
    const int py1 = std::clamp(static_cast<int>(cy1 * static_cast<float>(h)), py0 + 1, h);
    Image cropped(px1 - px0, py1 - py0, in.image.channels());
    for (int y = 0; y < cropped.height(); ++y) {
        for (int x = 0; x < cropped.width(); ++x) {
            for (int c = 0; c < cropped.channels(); ++c) {
                cropped.px(x, y, c) = in.image.px(x + px0, y + py0, c);
            }
        }
    }
    SceneSample out;
    out.image = resize_bilinear(cropped, w, h);
    const float fx0 = static_cast<float>(px0) / static_cast<float>(w);
    const float fy0 = static_cast<float>(py0) / static_cast<float>(h);
    const float fw = static_cast<float>(px1 - px0) / static_cast<float>(w);
    const float fh = static_cast<float>(py1 - py0) / static_cast<float>(h);
    for (const GroundTruth& gt : in.truths) {
        // Intersect the box with the crop window, then renormalize.
        const float left = std::max(gt.box.left(), fx0);
        const float right = std::min(gt.box.right(), fx0 + fw);
        const float top = std::max(gt.box.top(), fy0);
        const float bottom = std::min(gt.box.bottom(), fy0 + fh);
        if (right <= left || bottom <= top) continue;
        const float visible = (right - left) * (bottom - top);
        if (visible < min_visibility * gt.box.area()) continue;
        GroundTruth mapped = gt;
        mapped.box = Box::from_corners((left - fx0) / fw, (top - fy0) / fh,
                                       (right - fx0) / fw, (bottom - fy0) / fh);
        out.truths.push_back(mapped);
    }
    return out;
}

}  // namespace

SceneSample augment(const SceneSample& sample, const AugmentConfig& config, Rng& rng) {
    // Crop jitter.
    const float jx0 = rng.uniform(0.0f, config.jitter);
    const float jy0 = rng.uniform(0.0f, config.jitter);
    const float jx1 = 1.0f - rng.uniform(0.0f, config.jitter);
    const float jy1 = 1.0f - rng.uniform(0.0f, config.jitter);
    SceneSample out = crop_sample(sample, jx0, jy0, jx1, jy1, config.min_visibility);
    // Horizontal flip.
    if (rng.chance(config.flip_prob)) {
        flip_horizontal(out.image);
        for (GroundTruth& gt : out.truths) gt.box.x = 1.0f - gt.box.x;
    }
    // Photometric distortion.
    if (out.image.channels() == 3) {
        distort_hsv(out.image, rng, config.hue, config.saturation, config.exposure);
    }
    return out;
}

}  // namespace dronet
