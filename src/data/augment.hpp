// Training-time data augmentation.
//
// Reproduces darknet's detection augmentations: horizontal flip (with box
// mirroring), random crop-and-rescale jitter (boxes remapped, heavily
// truncated boxes dropped — the paper annotates vehicles with >= 50% of the
// body visible) and HSV photometric distortion.
#pragma once

#include "data/scene.hpp"
#include "tensor/rng.hpp"

namespace dronet {

struct AugmentConfig {
    float flip_prob = 0.5f;
    float jitter = 0.2f;        ///< max crop, fraction of each side
    float hue = 0.05f;          ///< hue shift amplitude
    float saturation = 1.3f;    ///< max saturation scale
    float exposure = 1.3f;      ///< max exposure scale
    float min_visibility = 0.5f;///< drop boxes with less area remaining
};

/// Returns an augmented copy of `sample`.
[[nodiscard]] SceneSample augment(const SceneSample& sample, const AugmentConfig& config,
                                  Rng& rng);

}  // namespace dronet
