#include "data/dataset.hpp"

#include <stdexcept>

#include "image/resize.hpp"

namespace dronet {

void DetectionDataset::add(Image image, std::vector<GroundTruth> truths) {
    if (image.empty()) throw std::invalid_argument("DetectionDataset::add: empty image");
    images_.push_back(std::move(image));
    labels_.push_back(std::move(truths));
}

std::size_t DetectionDataset::total_objects() const {
    std::size_t total = 0;
    for (const auto& l : labels_) total += l.size();
    return total;
}

std::pair<DetectionDataset, DetectionDataset> DetectionDataset::split(
    float test_fraction) const {
    if (test_fraction <= 0 || test_fraction >= 1) {
        throw std::invalid_argument("DetectionDataset::split: fraction must be in (0,1)");
    }
    const auto stride = static_cast<std::size_t>(1.0f / test_fraction);
    DetectionDataset train, test;
    for (std::size_t i = 0; i < images_.size(); ++i) {
        if (stride > 0 && i % stride == stride - 1) {
            test.add(images_[i], labels_[i]);
        } else {
            train.add(images_[i], labels_[i]);
        }
    }
    return {std::move(train), std::move(test)};
}

std::vector<std::vector<GroundTruth>> DetectionDataset::fill_batch(
    Tensor& batch, std::size_t first) const {
    if (empty()) throw std::logic_error("DetectionDataset::fill_batch: empty dataset");
    const Shape& s = batch.shape();
    std::vector<std::vector<GroundTruth>> truths;
    truths.reserve(static_cast<std::size_t>(s.n));
    for (int b = 0; b < s.n; ++b) {
        const std::size_t idx = (first + static_cast<std::size_t>(b)) % size();
        const Image& im = images_[idx];
        if (im.width() == s.w && im.height() == s.h && im.channels() == s.c) {
            im.copy_to_batch(batch, b);
        } else {
            resize_bilinear(im, s.w, s.h).copy_to_batch(batch, b);
        }
        truths.push_back(labels_[idx]);  // normalized boxes survive resizing
    }
    return truths;
}

DetectionDataset generate_dataset(const SceneConfig& config, int count,
                                  std::uint64_t seed) {
    AerialSceneGenerator gen(config, seed);
    DetectionDataset ds;
    for (int i = 0; i < count; ++i) {
        SceneSample sample = gen.generate();
        ds.add(std::move(sample.image), std::move(sample.truths));
    }
    return ds;
}

SceneConfig benchmark_scene_config(int size) {
    SceneConfig config;
    config.width = size;
    config.height = size;
    config.min_vehicles = 2;
    config.max_vehicles = 5;
    config.min_vehicle_size = 0.10f;
    config.max_vehicle_size = 0.22f;
    return config;
}

DetectionDataset benchmark_train_set(int count, int size) {
    return generate_dataset(benchmark_scene_config(size), count, /*seed=*/2018);
}

DetectionDataset benchmark_test_set(int count, int size) {
    return generate_dataset(benchmark_scene_config(size), count, /*seed=*/2019);
}

}  // namespace dronet
