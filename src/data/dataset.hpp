// In-memory detection dataset.
//
// Plays the role of the paper's 350-image vehicle database: a set of images
// with normalized box annotations, split into train/test, convertible to
// network input batches.
#pragma once

#include <cstdint>
#include <vector>

#include "data/scene.hpp"
#include "detect/box.hpp"
#include "image/image.hpp"
#include "tensor/tensor.hpp"

namespace dronet {

class DetectionDataset {
  public:
    DetectionDataset() = default;

    void add(Image image, std::vector<GroundTruth> truths);

    [[nodiscard]] std::size_t size() const noexcept { return images_.size(); }
    [[nodiscard]] bool empty() const noexcept { return images_.empty(); }
    [[nodiscard]] const Image& image(std::size_t i) const { return images_.at(i); }
    [[nodiscard]] const std::vector<GroundTruth>& truths(std::size_t i) const {
        return labels_.at(i);
    }

    /// Total annotated objects across the dataset.
    [[nodiscard]] std::size_t total_objects() const;

    /// Deterministic split: every `k`-th sample (k = 1/test_fraction) goes to
    /// test. Returns {train, test}.
    [[nodiscard]] std::pair<DetectionDataset, DetectionDataset> split(
        float test_fraction) const;

    /// Fills a pre-allocated NCHW batch tensor with samples
    /// [first, first+batch) (wrapping around), resampling each image to the
    /// tensor's spatial size. Returns the per-item ground truth.
    std::vector<std::vector<GroundTruth>> fill_batch(Tensor& batch,
                                                     std::size_t first) const;

  private:
    std::vector<Image> images_;
    std::vector<std::vector<GroundTruth>> labels_;
};

/// Generates `count` synthetic aerial scenes with the given config/seed.
[[nodiscard]] DetectionDataset generate_dataset(const SceneConfig& config, int count,
                                                std::uint64_t seed);

/// Canonical benchmark scene configuration shared by the training tool, the
/// figure benches and the integration tests — the stand-in for the paper's
/// 350-image vehicle database. Deterministic for a given `size`.
[[nodiscard]] SceneConfig benchmark_scene_config(int size = 256);

/// The canonical train/test sets (seeds fixed so every binary sees the same
/// data). ~120 train / 40 test images by default.
[[nodiscard]] DetectionDataset benchmark_train_set(int count = 120, int size = 256);
[[nodiscard]] DetectionDataset benchmark_test_set(int count = 40, int size = 256);

}  // namespace dronet
