#include "data/scene.hpp"

#include <algorithm>
#include <cmath>
#include <numbers>

#include "image/draw.hpp"

namespace dronet {
namespace {

// Muted ground palette: grass, dirt, concrete.
constexpr Rgb kGroundTones[] = {
    {0.32f, 0.40f, 0.27f}, {0.45f, 0.40f, 0.32f}, {0.52f, 0.52f, 0.50f}};
constexpr Rgb kAsphalt{0.33f, 0.33f, 0.35f};
constexpr Rgb kLaneMark{0.85f, 0.85f, 0.80f};

// Saturated body colours; distinct from every ground tone so the detector
// has a learnable signal, as real cars are against asphalt.
constexpr Rgb kBodyColors[] = {
    {0.85f, 0.10f, 0.10f}, {0.10f, 0.15f, 0.80f}, {0.90f, 0.90f, 0.92f},
    {0.08f, 0.08f, 0.08f}, {0.80f, 0.75f, 0.12f}, {0.55f, 0.58f, 0.60f},
    {0.70f, 0.30f, 0.08f}, {0.12f, 0.55f, 0.20f}};

float clamp01(float v) { return std::clamp(v, 0.0f, 1.0f); }

Rgb scale_color(Rgb c, float k) {
    return {clamp01(c.r * k), clamp01(c.g * k), clamp01(c.b * k)};
}

}  // namespace

void draw_vehicle(Image& im, const VehiclePose& pose) {
    const float hl = pose.length / 2;
    const float hw = pose.width / 2;
    // Soft shadow offset toward +x/+y (fixed sun azimuth).
    draw_rotated_rect(im, pose.cx + hw * 0.35f, pose.cy + hw * 0.35f, hl, hw,
                      pose.angle, scale_color(pose.body, 0.0f));
    // Body.
    draw_rotated_rect(im, pose.cx, pose.cy, hl, hw, pose.angle, pose.body);
    // Cabin/windshield: a darker bluish rect forward of centre.
    const float c = std::cos(pose.angle);
    const float s = std::sin(pose.angle);
    const float cab_cx = pose.cx + c * hl * 0.25f;
    const float cab_cy = pose.cy + s * hl * 0.25f;
    draw_rotated_rect(im, cab_cx, cab_cy, hl * 0.35f, hw * 0.75f, pose.angle,
                      Rgb{0.10f, 0.12f, 0.18f});
    // Hood highlight behind the cabin.
    const float hood_cx = pose.cx - c * hl * 0.55f;
    const float hood_cy = pose.cy - s * hl * 0.55f;
    draw_rotated_rect(im, hood_cx, hood_cy, hl * 0.25f, hw * 0.65f, pose.angle,
                      scale_color(pose.body, 1.25f));
}

GroundTruth vehicle_ground_truth(const VehiclePose& pose, int img_w, int img_h,
                                 int class_id) {
    const float c = std::fabs(std::cos(pose.angle));
    const float s = std::fabs(std::sin(pose.angle));
    const float ext_x = (pose.length * c + pose.width * s) / 2;
    const float ext_y = (pose.length * s + pose.width * c) / 2;
    const float left = std::max(0.0f, pose.cx - ext_x);
    const float right = std::min(static_cast<float>(img_w), pose.cx + ext_x);
    const float top = std::max(0.0f, pose.cy - ext_y);
    const float bottom = std::min(static_cast<float>(img_h), pose.cy + ext_y);
    GroundTruth gt;
    gt.class_id = class_id;
    gt.box = Box::from_corners(left / static_cast<float>(img_w), top / static_cast<float>(img_h),
                               right / static_cast<float>(img_w),
                               bottom / static_cast<float>(img_h));
    return gt;
}

GroundTruth draw_pedestrian(Image& im, float cx, float cy, float radius, Rng& rng) {
    // Top-view pedestrian: shadow, torso disc in a clothing colour, head dot.
    draw_disc(im, cx + radius * 0.4f, cy + radius * 0.4f, radius, Rgb{0.05f, 0.05f, 0.05f});
    const Rgb clothing{rng.uniform(0.3f, 0.95f), rng.uniform(0.1f, 0.6f),
                       rng.uniform(0.1f, 0.6f)};
    draw_disc(im, cx, cy, radius, clothing);
    draw_disc(im, cx, cy, radius * 0.45f, Rgb{0.75f, 0.6f, 0.5f});
    GroundTruth gt;
    gt.class_id = kPedestrianClass;
    const float ext = radius * 1.4f;  // shadow widens the visible footprint
    gt.box = Box::from_corners(
        std::max(0.0f, cx - ext) / static_cast<float>(im.width()),
        std::max(0.0f, cy - ext) / static_cast<float>(im.height()),
        std::min(static_cast<float>(im.width()), cx + ext) / static_cast<float>(im.width()),
        std::min(static_cast<float>(im.height()), cy + ext) / static_cast<float>(im.height()));
    return gt;
}

AerialSceneGenerator::AerialSceneGenerator(SceneConfig config, std::uint64_t seed)
    : config_(config), rng_(seed) {}

Image AerialSceneGenerator::background() {
    Image im(config_.width, config_.height, 3);
    const Rgb base = kGroundTones[static_cast<std::size_t>(
        rng_.uniform_int(0, static_cast<int>(std::size(kGroundTones)) - 1))];
    for (int y = 0; y < im.height(); ++y) {
        for (int x = 0; x < im.width(); ++x) {
            im.px(x, y, 0) = base.r;
            im.px(x, y, 1) = base.g;
            im.px(x, y, 2) = base.b;
        }
    }
    // Low-frequency mottling: blended random patches.
    const int patches = config_.num_distractors * 4;
    for (int i = 0; i < patches; ++i) {
        const int px = rng_.uniform_int(0, im.width() - 1);
        const int py = rng_.uniform_int(0, im.height() - 1);
        const int pw = rng_.uniform_int(im.width() / 16, im.width() / 4);
        const int ph = rng_.uniform_int(im.height() / 16, im.height() / 4);
        const float gain = rng_.uniform(0.85f, 1.15f);
        blend_rect(im, px, py, px + pw, py + ph, scale_color(base, gain), 0.35f);
    }
    if (config_.draw_roads) {
        const int roads = rng_.uniform_int(1, 2);
        for (int r = 0; r < roads; ++r) {
            const bool horizontal = rng_.chance(0.5f);
            const int extent = horizontal ? im.height() : im.width();
            const int road_w = rng_.uniform_int(extent / 7, extent / 4);
            const int pos = rng_.uniform_int(0, extent - road_w);
            if (horizontal) {
                draw_filled_rect(im, 0, pos, im.width() - 1, pos + road_w, kAsphalt);
            } else {
                draw_filled_rect(im, pos, 0, pos + road_w, im.height() - 1, kAsphalt);
            }
            // Dashed centre line.
            const int mid = pos + road_w / 2;
            const int dash = std::max(4, extent / 26);
            for (int d = 0; d + dash / 2 < (horizontal ? im.width() : im.height());
                 d += dash) {
                if (horizontal) {
                    draw_filled_rect(im, d, mid, d + dash / 2, mid + 1, kLaneMark);
                } else {
                    draw_filled_rect(im, mid, d, mid + 1, d + dash / 2, kLaneMark);
                }
            }
        }
    }
    // Distractors: buildings (muted rectangles) and trees (green discs).
    for (int i = 0; i < config_.num_distractors; ++i) {
        const int cx = rng_.uniform_int(0, im.width() - 1);
        const int cy = rng_.uniform_int(0, im.height() - 1);
        if (rng_.chance(0.5f)) {
            const int bw = rng_.uniform_int(im.width() / 14, im.width() / 6);
            const int bh = rng_.uniform_int(im.height() / 14, im.height() / 6);
            const float tone = rng_.uniform(0.40f, 0.65f);
            draw_filled_rect(im, cx, cy, cx + bw, cy + bh,
                             Rgb{tone, tone * 0.95f, tone * 0.9f});
        } else {
            const float radius =
                rng_.uniform(static_cast<float>(im.width()) / 40.0f,
                             static_cast<float>(im.width()) / 16.0f);
            draw_disc(im, static_cast<float>(cx), static_cast<float>(cy), radius,
                      Rgb{0.10f, rng_.uniform(0.30f, 0.45f), 0.12f});
        }
    }
    return im;
}

VehiclePose AerialSceneGenerator::random_pose() {
    const float short_dim = static_cast<float>(std::min(config_.width, config_.height));
    VehiclePose pose;
    pose.length = short_dim * rng_.uniform(config_.min_vehicle_size, config_.max_vehicle_size);
    pose.width = pose.length * rng_.uniform(0.42f, 0.55f);
    pose.cx = rng_.uniform(0.08f, 0.92f) * static_cast<float>(config_.width);
    pose.cy = rng_.uniform(0.08f, 0.92f) * static_cast<float>(config_.height);
    pose.angle = rng_.uniform(0.0f, 2.0f * std::numbers::pi_v<float>);
    pose.body = kBodyColors[static_cast<std::size_t>(
        rng_.uniform_int(0, static_cast<int>(std::size(kBodyColors)) - 1))];
    return pose;
}

SceneSample AerialSceneGenerator::generate() {
    SceneSample sample;
    sample.image = background();
    const int count = rng_.uniform_int(config_.min_vehicles, config_.max_vehicles);
    std::vector<VehiclePose> poses;
    for (int v = 0; v < count; ++v) {
        // Rejection-sample poses so vehicles do not pile on each other.
        VehiclePose pose = random_pose();
        bool ok = false;
        for (int attempt = 0; attempt < 12 && !ok; ++attempt) {
            ok = true;
            const GroundTruth cand =
                vehicle_ground_truth(pose, config_.width, config_.height);
            for (const VehiclePose& other : poses) {
                const GroundTruth gt =
                    vehicle_ground_truth(other, config_.width, config_.height);
                if (iou(cand.box, gt.box) > 0.05f) {
                    ok = false;
                    pose = random_pose();
                    break;
                }
            }
        }
        if (!ok) continue;
        poses.push_back(pose);
        draw_vehicle(sample.image, pose);
        sample.truths.push_back(vehicle_ground_truth(pose, config_.width, config_.height));
        // Partial occlusion by a tree canopy (paper: occlusion variation).
        if (rng_.chance(config_.occlusion_prob)) {
            const float r = pose.width * rng_.uniform(0.5f, 0.9f);
            const float ox = pose.cx + rng_.uniform(-pose.length / 2, pose.length / 2);
            const float oy = pose.cy + rng_.uniform(-pose.width, pose.width);
            draw_disc(sample.image, ox, oy, r, Rgb{0.10f, rng_.uniform(0.28f, 0.42f), 0.12f});
        }
    }
    // Pedestrians (class 1) when enabled.
    if (config_.max_pedestrians > 0) {
        const int peds = rng_.uniform_int(1, config_.max_pedestrians);
        const float short_dim =
            static_cast<float>(std::min(config_.width, config_.height));
        for (int p = 0; p < peds; ++p) {
            const float radius = short_dim * rng_.uniform(0.012f, 0.022f);
            const float cx = rng_.uniform(0.05f, 0.95f) * static_cast<float>(config_.width);
            const float cy = rng_.uniform(0.05f, 0.95f) * static_cast<float>(config_.height);
            sample.truths.push_back(draw_pedestrian(sample.image, cx, cy, radius, rng_));
        }
    }
    // Global illumination gain + sensor noise.
    const float gain = rng_.uniform(config_.illumination_min, config_.illumination_max);
    for (std::size_t i = 0; i < sample.image.size(); ++i) {
        sample.image.data()[i] = clamp01(sample.image.data()[i] * gain);
    }
    if (config_.noise_stddev > 0) {
        add_gaussian_noise(sample.image, rng_, config_.noise_stddev);
    }
    return sample;
}

}  // namespace dronet
