// Synthetic aerial-scene generator.
//
// The paper's dataset (350 aerial images, ~5000 annotated top-view vehicles,
// §III.A) is not publicly available; this generator is the documented
// substitution (DESIGN.md §2). It synthesizes nadir views with the same
// variation axes the authors collected for: illumination (global gain),
// viewpoint (vehicle orientation + position), occlusion (tree canopies),
// colour (body hue) and type (size/aspect), over textured ground with roads
// and building/vegetation distractors. Ground-truth boxes are exact.
#pragma once

#include <cstdint>
#include <vector>

#include "detect/box.hpp"
#include "image/color.hpp"
#include "image/image.hpp"
#include "tensor/rng.hpp"

namespace dronet {

/// Pose and appearance of one rendered vehicle.
struct VehiclePose {
    float cx = 0;        ///< centre x in pixels
    float cy = 0;        ///< centre y in pixels
    float length = 24;   ///< long side in pixels
    float width = 12;    ///< short side in pixels
    float angle = 0;     ///< radians, 0 = facing +x
    Rgb body{0.8f, 0.1f, 0.1f};
};

/// Object classes emitted by the generator.
inline constexpr int kVehicleClass = 0;
inline constexpr int kPedestrianClass = 1;

struct SceneConfig {
    int width = 416;
    int height = 416;
    int min_vehicles = 1;
    int max_vehicles = 6;
    /// Class-1 pedestrians per scene (paper §V future work: "additional
    /// object classes (e.g., pedestrians)"). 0 keeps the paper's
    /// vehicles-only setting.
    int max_pedestrians = 0;
    /// Vehicle long side as a fraction of the image's shorter dimension.
    float min_vehicle_size = 0.08f;
    float max_vehicle_size = 0.20f;
    float occlusion_prob = 0.10f;   ///< chance a vehicle is partially occluded
    float noise_stddev = 0.01f;     ///< sensor-noise sigma
    int num_distractors = 14;       ///< buildings/trees/markings per scene
    bool draw_roads = true;
    float illumination_min = 0.75f; ///< global gain range (paper: varied illumination)
    float illumination_max = 1.15f;
};

struct SceneSample {
    Image image;
    std::vector<GroundTruth> truths;
};

/// Renders one vehicle (shadow, body, cabin) into the image.
void draw_vehicle(Image& im, const VehiclePose& pose);

/// Renders a pedestrian (body disc + head dot) centred at (cx, cy) with the
/// given body radius in pixels; returns its ground-truth box.
GroundTruth draw_pedestrian(Image& im, float cx, float cy, float radius, Rng& rng);

/// Axis-aligned normalized ground-truth box of a vehicle pose.
[[nodiscard]] GroundTruth vehicle_ground_truth(const VehiclePose& pose, int img_w,
                                               int img_h, int class_id = 0);

class AerialSceneGenerator {
  public:
    AerialSceneGenerator(SceneConfig config, std::uint64_t seed);

    /// Generates the next scene (deterministic given construction seed).
    [[nodiscard]] SceneSample generate();

    /// Ground plane + roads + distractors, no vehicles. Exposed for the
    /// video pipeline, which animates vehicles over a fixed background.
    [[nodiscard]] Image background();

    /// Draws a random plausible vehicle pose (without rendering it).
    [[nodiscard]] VehiclePose random_pose();

    [[nodiscard]] const SceneConfig& config() const noexcept { return config_; }
    [[nodiscard]] Rng& rng() noexcept { return rng_; }

  private:
    SceneConfig config_;
    Rng rng_;
};

}  // namespace dronet
