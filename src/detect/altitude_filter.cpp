#include "detect/altitude_filter.hpp"

#include <algorithm>
#include <stdexcept>

namespace dronet {

AltitudeFilter::SizeRange AltitudeFilter::plausible_size(float altitude_m) const {
    if (altitude_m <= 0.0f) {
        throw std::invalid_argument("AltitudeFilter: altitude must be positive");
    }
    const float px_per_m = camera_.focal_px / altitude_m;
    const float inv_w = 1.0f / static_cast<float>(camera_.frame_width);
    SizeRange range;
    range.min_norm = prior_.min_width_m * px_per_m * inv_w / prior_.tolerance;
    range.max_norm = prior_.max_length_m * px_per_m * inv_w * prior_.tolerance;
    range.min_norm = std::clamp(range.min_norm, 0.0f, 1.0f);
    range.max_norm = std::clamp(range.max_norm, 0.0f, 1.0f);
    return range;
}

Detections AltitudeFilter::apply(const Detections& dets, float altitude_m) const {
    const SizeRange range = plausible_size(altitude_m);
    Detections out;
    out.reserve(dets.size());
    for (const Detection& d : dets) {
        const float longer = std::max(d.box.w, d.box.h);
        if (longer >= range.min_norm && longer <= range.max_norm) out.push_back(d);
    }
    return out;
}

}  // namespace dronet
