// Altitude-based plausibility filter (paper §III.D).
//
// The paper proposes — as a complementary application-level optimization —
// using the UAV's altitude to bound the apparent size of a vehicle and
// discard detections outside that range. The paper leaves it as future work;
// we implement it as the library's extension feature and evaluate it in the
// ablation bench.
//
// Model: a pinhole camera looking straight down. An object of physical size
// S metres observed from altitude A with focal length f (pixels) spans
// S * f / A pixels; normalized by the frame width W that is S * f / (A * W).
#pragma once

#include "detect/box.hpp"

namespace dronet {

struct CameraModel {
    float focal_px = 1000.0f;   ///< focal length in pixels at native resolution
    int frame_width = 1280;     ///< native frame width in pixels
    int frame_height = 720;     ///< native frame height in pixels
};

struct VehicleSizePrior {
    // Typical passenger-car footprint (top view), metres.
    float min_length_m = 3.0f;
    float max_length_m = 6.5f;
    float min_width_m = 1.4f;
    float max_width_m = 2.6f;
    /// Slack multiplier applied to both ends of the range to absorb
    /// bounding-box regression error.
    float tolerance = 1.5f;
};

class AltitudeFilter {
  public:
    AltitudeFilter(CameraModel camera, VehicleSizePrior prior)
        : camera_(camera), prior_(prior) {}

    /// Expected normalized size range [min,max] of a vehicle's longer side
    /// at the given altitude (metres). Throws std::invalid_argument for
    /// non-positive altitude.
    struct SizeRange {
        float min_norm = 0;
        float max_norm = 1;
    };
    [[nodiscard]] SizeRange plausible_size(float altitude_m) const;

    /// Drops detections whose box size is implausible at `altitude_m`.
    [[nodiscard]] Detections apply(const Detections& dets, float altitude_m) const;

  private:
    CameraModel camera_;
    VehicleSizePrior prior_;
};

}  // namespace dronet
