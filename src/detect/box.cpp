#include "detect/box.hpp"

#include <algorithm>
#include <cmath>

namespace dronet {

Box Box::from_corners(float left, float top, float right, float bottom) noexcept {
    Box b;
    b.x = (left + right) / 2;
    b.y = (top + bottom) / 2;
    b.w = right - left;
    b.h = bottom - top;
    return b;
}

float box_intersection(const Box& a, const Box& b) noexcept {
    const float w = std::min(a.right(), b.right()) - std::max(a.left(), b.left());
    const float h = std::min(a.bottom(), b.bottom()) - std::max(a.top(), b.top());
    if (w <= 0 || h <= 0) return 0;
    return w * h;
}

float box_union(const Box& a, const Box& b) noexcept {
    return a.area() + b.area() - box_intersection(a, b);
}

float iou(const Box& a, const Box& b) noexcept {
    const float u = box_union(a, b);
    if (u <= 0) return 0;
    return box_intersection(a, b) / u;
}

float box_rmse(const Box& a, const Box& b) noexcept {
    const float dx = a.x - b.x;
    const float dy = a.y - b.y;
    const float dw = a.w - b.w;
    const float dh = a.h - b.h;
    return std::sqrt((dx * dx + dy * dy + dw * dw + dh * dh) / 4.0f);
}

}  // namespace dronet
