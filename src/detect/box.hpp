// Bounding boxes and detections.
//
// Boxes use darknet's centre-normalized convention: (x, y) is the box centre
// and (w, h) its extent, all relative to the image size so the same box is
// valid at any network input resolution (the paper sweeps 352-608).
#pragma once

#include <vector>

namespace dronet {

struct Box {
    float x = 0;  ///< centre x, normalized to [0,1]
    float y = 0;  ///< centre y, normalized to [0,1]
    float w = 0;  ///< width, normalized
    float h = 0;  ///< height, normalized

    [[nodiscard]] float left() const noexcept { return x - w / 2; }
    [[nodiscard]] float right() const noexcept { return x + w / 2; }
    [[nodiscard]] float top() const noexcept { return y - h / 2; }
    [[nodiscard]] float bottom() const noexcept { return y + h / 2; }
    [[nodiscard]] float area() const noexcept { return w * h; }

    /// Builds a box from corner coordinates.
    [[nodiscard]] static Box from_corners(float left, float top, float right,
                                          float bottom) noexcept;
};

/// Intersection area of two boxes (0 when disjoint).
[[nodiscard]] float box_intersection(const Box& a, const Box& b) noexcept;

/// Union area of two boxes.
[[nodiscard]] float box_union(const Box& a, const Box& b) noexcept;

/// Intersection-over-Union, the paper's first accuracy metric (§IV, metric 1).
/// Returns 0 for degenerate (zero-area) unions.
[[nodiscard]] float iou(const Box& a, const Box& b) noexcept;

/// Root-mean-square distance between box parameter vectors; used by the
/// region-loss anchor matching diagnostics.
[[nodiscard]] float box_rmse(const Box& a, const Box& b) noexcept;

/// One decoded network prediction.
struct Detection {
    Box box;
    float objectness = 0;            ///< P(object) after logistic
    int class_id = 0;                ///< argmax class
    float class_prob = 0;            ///< P(class | object)
    /// Final score used for thresholding/NMS: objectness * class_prob.
    [[nodiscard]] float score() const noexcept { return objectness * class_prob; }
};

/// Ground-truth annotation: normalized box plus class label.
struct GroundTruth {
    Box box;
    int class_id = 0;
};

using Detections = std::vector<Detection>;

}  // namespace dronet
