#include "detect/nms.hpp"

#include <algorithm>

namespace dronet {

Detections filter_by_score(const Detections& dets, float threshold) {
    Detections out;
    out.reserve(dets.size());
    for (const Detection& d : dets) {
        if (d.score() >= threshold) out.push_back(d);
    }
    return out;
}

Detections nms(const Detections& dets, float iou_threshold) {
    Detections sorted = dets;
    std::stable_sort(sorted.begin(), sorted.end(),
                     [](const Detection& a, const Detection& b) {
                         return a.score() > b.score();
                     });
    Detections kept;
    kept.reserve(sorted.size());
    for (const Detection& cand : sorted) {
        bool suppressed = false;
        for (const Detection& k : kept) {
            if (k.class_id == cand.class_id && iou(k.box, cand.box) > iou_threshold) {
                suppressed = true;
                break;
            }
        }
        if (!suppressed) kept.push_back(cand);
    }
    return kept;
}

Detections postprocess(const Detections& dets, float score_threshold,
                       float iou_threshold) {
    return nms(filter_by_score(dets, score_threshold), iou_threshold);
}

}  // namespace dronet
