// Non-maximum suppression and score filtering.
//
// Standard greedy NMS as used by darknet's region-layer post-processing:
// detections are sorted by score and any box overlapping a kept higher-scored
// box of the same class above `iou_threshold` is suppressed.
#pragma once

#include "detect/box.hpp"

namespace dronet {

/// Removes detections with score() below `threshold`.
[[nodiscard]] Detections filter_by_score(const Detections& dets, float threshold);

/// Greedy per-class NMS; returns survivors sorted by descending score.
[[nodiscard]] Detections nms(const Detections& dets, float iou_threshold);

/// Convenience: score filter followed by NMS.
[[nodiscard]] Detections postprocess(const Detections& dets, float score_threshold,
                                     float iou_threshold);

}  // namespace dronet
