#include "eval/evaluator.hpp"

#include <algorithm>
#include <chrono>
#include <stdexcept>
#include <utility>
#include <vector>

#include "detect/nms.hpp"
#include "image/color.hpp"
#include "image/resize.hpp"

namespace dronet {

namespace {

// Milliseconds elapsed since `since`, and resets `since` to now. No-op cost
// when the caller passed no timings sink.
double lap_ms(std::chrono::steady_clock::time_point& since) {
    const auto now = std::chrono::steady_clock::now();
    const double ms = std::chrono::duration<double, std::milli>(now - since).count();
    since = now;
    return ms;
}

// Per-image preprocessing record; carries the letterbox transform forward to
// the post-decode inverse mapping.
struct Preprocess {
    bool letterboxed = false;
    Letterbox lb;
};

// Preprocesses one image into batch slot `b` of `input` (whose shape is the
// network input shape `in`). The transform sequence is the same regardless of
// batch size, which is what keeps batched detection bit-exact per image
// against the batch-1 path.
Preprocess preprocess_image(const Image& image, const Shape& in,
                            const EvalConfig& config, Tensor& input, int b) {
    if (image.empty()) throw std::invalid_argument("detect_image: empty image");
    Preprocess pp;
    const Image* src = &image;
    Image converted;
    if (image.channels() != in.c) {
        converted = convert_channels(image, in.c);
        src = &converted;
    }
    if (config.use_letterbox && (src->width() != in.w || src->height() != in.h)) {
        pp.letterboxed = true;
        pp.lb = letterbox(*src, in.w, in.h);
        pp.lb.image.copy_to_batch(input, b);
    } else if (src->width() == in.w && src->height() == in.h) {
        src->copy_to_batch(input, b);
    } else {
        resize_bilinear(*src, in.w, in.h).copy_to_batch(input, b);
    }
    return pp;
}

}  // namespace

Detections unletterbox(Detections dets, const Letterbox& lb, int net_w, int net_h,
                       int src_w, int src_h) {
    // Invert through the *rounded* embedded extent so the mapping is the exact
    // inverse of what letterbox() rendered; fall back to the unrounded scale
    // for hand-built Letterbox values that predate the emb_w/emb_h fields.
    const float emb_w = lb.emb_w > 0 ? static_cast<float>(lb.emb_w)
                                     : lb.scale * static_cast<float>(src_w);
    const float emb_h = lb.emb_h > 0 ? static_cast<float>(lb.emb_h)
                                     : lb.scale * static_cast<float>(src_h);
    for (Detection& d : dets) {
        const float cx = (d.box.x * static_cast<float>(net_w) -
                          static_cast<float>(lb.offset_x)) / emb_w;
        const float cy = (d.box.y * static_cast<float>(net_h) -
                          static_cast<float>(lb.offset_y)) / emb_h;
        const float w = d.box.w * static_cast<float>(net_w) / emb_w;
        const float h = d.box.h * static_cast<float>(net_h) / emb_h;
        // Clamp to the valid [0,1] source range: boxes extending into the gray
        // padding otherwise come back out of range and skew IoU matching. A
        // box entirely inside the padding collapses to zero extent at the
        // nearest border (zero area, matches nothing).
        const float left = std::clamp(cx - w / 2, 0.0f, 1.0f);
        const float right = std::clamp(cx + w / 2, 0.0f, 1.0f);
        const float top = std::clamp(cy - h / 2, 0.0f, 1.0f);
        const float bottom = std::clamp(cy + h / 2, 0.0f, 1.0f);
        d.box = Box::from_corners(left, top, right, bottom);
    }
    return dets;
}

Detections detect_image(Network& net, const Image& image, const EvalConfig& config) {
    return detect_image_timed(net, image, config, nullptr);
}

Detections detect_image_timed(Network& net, const Image& image,
                              const EvalConfig& config, DetectStageTimings* timings,
                              QuantizedNetwork* int8) {
    std::vector<Detections> out = detect_images_timed(
        net, std::span<const Image>(&image, 1), config, timings, int8);
    return std::move(out.front());
}

std::vector<Detections> detect_images(Network& net, std::span<const Image> images,
                                      const EvalConfig& config) {
    return detect_images_timed(net, images, config, nullptr);
}

std::vector<Detections> detect_images_timed(Network& net, std::span<const Image> images,
                                            const EvalConfig& config,
                                            DetectStageTimings* timings,
                                            QuantizedNetwork* int8) {
    RegionLayer* head = net.region();
    if (head == nullptr) throw std::logic_error("detect_images: network has no region layer");
    if (int8 != nullptr && &int8->source() != &net) {
        throw std::invalid_argument(
            "detect_images: the QuantizedNetwork wraps a different Network");
    }
    if (images.empty()) return {};
    net.set_batch(static_cast<int>(images.size()));
    const Shape in = net.input_shape();
    Tensor input(in);
    auto mark = std::chrono::steady_clock::now();
    std::vector<Preprocess> pre(images.size());
    for (std::size_t b = 0; b < images.size(); ++b) {
        pre[b] = preprocess_image(images[b], in, config, input, static_cast<int>(b));
    }
    if (timings != nullptr) timings->preprocess_ms = lap_ms(mark);
    if (int8 != nullptr) {
        int8->forward(input);
    } else {
        net.forward(input, /*train=*/false);
    }
    if (timings != nullptr) timings->forward_ms = lap_ms(mark);
    std::vector<Detections> out(images.size());
    for (std::size_t b = 0; b < images.size(); ++b) {
        Detections dets = head->decode(static_cast<int>(b));
        if (pre[b].letterboxed) {
            dets = unletterbox(std::move(dets), pre[b].lb, in.w, in.h,
                               images[b].width(), images[b].height());
        }
        out[b] = postprocess(dets, config.score_threshold, config.nms_threshold);
    }
    if (timings != nullptr) timings->postprocess_ms = lap_ms(mark);
    return out;
}

DetectionMetrics evaluate_detector(Network& net, const DetectionDataset& ds,
                                   const EvalConfig& config, QuantizedNetwork* int8) {
    DetectionMetrics total;
    for (std::size_t i = 0; i < ds.size(); ++i) {
        const Detections dets =
            detect_image_timed(net, ds.image(i), config, nullptr, int8);
        total += match_detections(dets, ds.truths(i), config.match_iou);
    }
    return total;
}

Int8Calibration calibrate_int8(Network& net, std::span<const Image> images,
                               const EvalConfig& config) {
    if (images.empty()) throw std::invalid_argument("calibrate_int8: no images");
    net.set_batch(static_cast<int>(images.size()));
    const Shape in = net.input_shape();
    Tensor input(in);
    for (std::size_t b = 0; b < images.size(); ++b) {
        (void)preprocess_image(images[b], in, config, input, static_cast<int>(b));
    }
    return QuantizedNetwork::calibrate(net, std::span<const Tensor>(&input, 1));
}

}  // namespace dronet
