#include "eval/evaluator.hpp"

#include <chrono>
#include <stdexcept>

#include "detect/nms.hpp"
#include "image/resize.hpp"

namespace dronet {

namespace {

// Maps network-space boxes back through the letterbox transform into
// source-image normalized coordinates.
Detections unletterbox(Detections dets, const Letterbox& lb, int net_w, int net_h,
                       int src_w, int src_h) {
    for (Detection& d : dets) {
        const float px = d.box.x * static_cast<float>(net_w) - static_cast<float>(lb.offset_x);
        const float py = d.box.y * static_cast<float>(net_h) - static_cast<float>(lb.offset_y);
        d.box.x = px / (lb.scale * static_cast<float>(src_w));
        d.box.y = py / (lb.scale * static_cast<float>(src_h));
        d.box.w = d.box.w * static_cast<float>(net_w) / (lb.scale * static_cast<float>(src_w));
        d.box.h = d.box.h * static_cast<float>(net_h) / (lb.scale * static_cast<float>(src_h));
    }
    return dets;
}

// Milliseconds elapsed since `since`, and resets `since` to now. No-op cost
// when the caller passed no timings sink.
double lap_ms(std::chrono::steady_clock::time_point& since) {
    const auto now = std::chrono::steady_clock::now();
    const double ms = std::chrono::duration<double, std::milli>(now - since).count();
    since = now;
    return ms;
}

}  // namespace

Detections detect_image(Network& net, const Image& image, const EvalConfig& config) {
    return detect_image_timed(net, image, config, nullptr);
}

Detections detect_image_timed(Network& net, const Image& image,
                              const EvalConfig& config, DetectStageTimings* timings) {
    RegionLayer* head = net.region();
    if (head == nullptr) throw std::logic_error("detect_image: network has no region layer");
    if (net.config().batch != 1) net.set_batch(1);
    const Shape in = net.input_shape();
    Tensor input(in);
    auto mark = std::chrono::steady_clock::now();
    if (config.use_letterbox &&
        (image.width() != in.w || image.height() != in.h)) {
        const Letterbox lb = letterbox(image, in.w, in.h);
        lb.image.copy_to_batch(input, 0);
        if (timings != nullptr) timings->preprocess_ms = lap_ms(mark);
        net.forward(input, /*train=*/false);
        if (timings != nullptr) timings->forward_ms = lap_ms(mark);
        Detections dets = unletterbox(head->decode(0), lb, in.w, in.h, image.width(),
                                      image.height());
        dets = postprocess(dets, config.score_threshold, config.nms_threshold);
        if (timings != nullptr) timings->postprocess_ms = lap_ms(mark);
        return dets;
    }
    if (image.width() == in.w && image.height() == in.h && image.channels() == in.c) {
        image.copy_to_batch(input, 0);
    } else {
        resize_bilinear(image, in.w, in.h).copy_to_batch(input, 0);
    }
    if (timings != nullptr) timings->preprocess_ms = lap_ms(mark);
    net.forward(input, /*train=*/false);
    if (timings != nullptr) timings->forward_ms = lap_ms(mark);
    Detections dets =
        postprocess(head->decode(0), config.score_threshold, config.nms_threshold);
    if (timings != nullptr) timings->postprocess_ms = lap_ms(mark);
    return dets;
}

DetectionMetrics evaluate_detector(Network& net, const DetectionDataset& ds,
                                   const EvalConfig& config) {
    DetectionMetrics total;
    for (std::size_t i = 0; i < ds.size(); ++i) {
        const Detections dets = detect_image(net, ds.image(i), config);
        total += match_detections(dets, ds.truths(i), config.match_iou);
    }
    return total;
}

}  // namespace dronet
