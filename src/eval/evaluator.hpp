// End-to-end detector evaluation over a dataset.
//
// Runs the network on every test image at its current input resolution,
// post-processes (score filter + NMS) and accumulates the paper's accuracy
// metrics.
#pragma once

#include "data/dataset.hpp"
#include "eval/metrics.hpp"
#include "nn/network.hpp"

namespace dronet {

struct EvalConfig {
    float score_threshold = 0.30f;  ///< objectness*class acceptance threshold
    float nms_threshold = 0.40f;    ///< NMS IoU threshold
    float match_iou = 0.50f;        ///< TP matching threshold
    /// Aspect-preserving letterbox preprocessing (darknet's test-time path)
    /// instead of plain resampling; boxes are mapped back to source-image
    /// coordinates. Matters for non-square camera frames.
    bool use_letterbox = false;
};

/// Per-stage wall-clock breakdown of one detect_image call, in milliseconds.
/// Feeds the serving layer's latency histograms (src/serve).
struct DetectStageTimings {
    double preprocess_ms = 0;   ///< resize/letterbox + NCHW copy
    double forward_ms = 0;      ///< network forward pass
    double postprocess_ms = 0;  ///< decode + score filter + NMS (+ unletterbox)
};

/// Runs `net` (batch 1) on one image and returns post-processed detections.
[[nodiscard]] Detections detect_image(Network& net, const Image& image,
                                      const EvalConfig& config = {});

/// Same computation as detect_image (bit-identical results), additionally
/// filling `timings` when non-null.
[[nodiscard]] Detections detect_image_timed(Network& net, const Image& image,
                                            const EvalConfig& config,
                                            DetectStageTimings* timings);

/// Evaluates the detector over every image of `ds`.
[[nodiscard]] DetectionMetrics evaluate_detector(Network& net, const DetectionDataset& ds,
                                                 const EvalConfig& config = {});

}  // namespace dronet
