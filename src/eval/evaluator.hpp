// End-to-end detector evaluation over a dataset.
//
// Runs the network on every test image at its current input resolution,
// post-processes (score filter + NMS) and accumulates the paper's accuracy
// metrics.
#pragma once

#include <span>
#include <vector>

#include "data/dataset.hpp"
#include "eval/metrics.hpp"
#include "image/resize.hpp"
#include "nn/network.hpp"
#include "nn/quantize.hpp"

namespace dronet {

struct EvalConfig {
    float score_threshold = 0.30f;  ///< objectness*class acceptance threshold
    float nms_threshold = 0.40f;    ///< NMS IoU threshold
    float match_iou = 0.50f;        ///< TP matching threshold
    /// Aspect-preserving letterbox preprocessing (darknet's test-time path)
    /// instead of plain resampling; boxes are mapped back to source-image
    /// coordinates. Matters for non-square camera frames.
    bool use_letterbox = false;
};

/// Per-stage wall-clock breakdown of one detect_image call, in milliseconds.
/// Feeds the serving layer's latency histograms (src/serve).
struct DetectStageTimings {
    double preprocess_ms = 0;   ///< resize/letterbox + NCHW copy
    double forward_ms = 0;      ///< network forward pass
    double postprocess_ms = 0;  ///< decode + score filter + NMS (+ unletterbox)
};

/// Runs `net` (batch 1) on one image and returns post-processed detections.
/// Images whose channel count differs from the network input are converted
/// (gray replicated to RGB, alpha dropped); unsupported channel combinations
/// throw std::invalid_argument.
[[nodiscard]] Detections detect_image(Network& net, const Image& image,
                                      const EvalConfig& config = {});

/// Same computation as detect_image (bit-identical results), additionally
/// filling `timings` when non-null. When `int8` is non-null (it must wrap
/// this same `net`), the forward pass runs through the quantized path;
/// preprocessing, decode and postprocessing are unchanged.
[[nodiscard]] Detections detect_image_timed(Network& net, const Image& image,
                                            const EvalConfig& config,
                                            DetectStageTimings* timings,
                                            QuantizedNetwork* int8 = nullptr);

/// Batched detection: preprocesses all `images` into one batch-N input tensor,
/// runs a single forward pass, and decodes/post-processes per batch index.
/// Per-image results are bit-identical to calling detect_image on each image
/// individually (every layer processes batch items independently and the GEMM
/// kernels are bit-exact regardless of batch position). Re-batches `net` to
/// images.size().
[[nodiscard]] std::vector<Detections> detect_images(Network& net,
                                                    std::span<const Image> images,
                                                    const EvalConfig& config = {});

/// detect_images with aggregate per-stage timings for the whole batch
/// (filled when `timings` is non-null). When `int8` is non-null (wrapping
/// this same `net`), the single batched forward runs through the quantized
/// path — batch-N int8 results are bit-identical per image to batch-1 int8.
[[nodiscard]] std::vector<Detections> detect_images_timed(
    Network& net, std::span<const Image> images, const EvalConfig& config,
    DetectStageTimings* timings, QuantizedNetwork* int8 = nullptr);

/// Maps network-space detections back through the letterbox transform into
/// source-image normalized coordinates, clamping every box to the valid [0,1]
/// range (detections extending into the letterbox padding are cut at the
/// source border). Inverts through the rounded embedded extent recorded in
/// `lb`, so letterbox -> unletterbox round-trips are exact up to float
/// arithmetic.
[[nodiscard]] Detections unletterbox(Detections dets, const Letterbox& lb, int net_w,
                                     int net_h, int src_w, int src_h);

/// Evaluates the detector over every image of `ds` (through the int8 path
/// when `int8` is non-null).
[[nodiscard]] DetectionMetrics evaluate_detector(Network& net, const DetectionDataset& ds,
                                                 const EvalConfig& config = {},
                                                 QuantizedNetwork* int8 = nullptr);

/// Int8 calibration over real imagery: letterboxes/resizes `images` exactly
/// as the detect path would (one batch-N tensor, one float forward) and
/// records per-conv-layer activation ranges. Re-batches `net` to
/// images.size(). This is the preferred calibration source; pass the result
/// to QuantizedNetwork's two-argument constructor.
[[nodiscard]] Int8Calibration calibrate_int8(Network& net, std::span<const Image> images,
                                             const EvalConfig& config = {});

}  // namespace dronet
