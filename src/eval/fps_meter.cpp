#include "eval/fps_meter.hpp"

#include <algorithm>
#include <stdexcept>

namespace dronet {

double measure_fps(const std::function<void()>& frame, int warmup, int iters) {
    if (iters <= 0) throw std::invalid_argument("measure_fps: iters must be positive");
    for (int i = 0; i < warmup; ++i) frame();
    const auto begin = std::chrono::steady_clock::now();
    for (int i = 0; i < iters; ++i) frame();
    const auto end = std::chrono::steady_clock::now();
    const double seconds = std::chrono::duration<double>(end - begin).count();
    return seconds > 0 ? static_cast<double>(iters) / seconds : 0.0;
}

void FpsMeter::frame_start() {
    start_ = Clock::now();
    open_ = true;
}

void FpsMeter::frame_end() {
    if (!open_) throw std::logic_error("FpsMeter::frame_end without frame_start");
    const double ms =
        std::chrono::duration<double, std::milli>(Clock::now() - start_).count();
    total_ms_ += ms;
    max_ms_ = std::max(max_ms_, ms);
    ++frames_;
    open_ = false;
}

double FpsMeter::mean_latency_ms() const noexcept {
    return frames_ > 0 ? total_ms_ / frames_ : 0.0;
}

double FpsMeter::fps() const noexcept {
    return total_ms_ > 0 ? 1000.0 * frames_ / total_ms_ : 0.0;
}

void ConcurrentFpsMeter::record_latency_ms(double ms) {
    const auto now = Clock::now();
    sync::MutexLock lock(mu_);
    if (frames_ == 0) first_ = now;
    last_ = now;
    total_ms_ += ms;
    max_ms_ = std::max(max_ms_, ms);
    ++frames_;
}

int ConcurrentFpsMeter::frames() const {
    sync::MutexLock lock(mu_);
    return frames_;
}

double ConcurrentFpsMeter::mean_latency_ms() const {
    sync::MutexLock lock(mu_);
    return frames_ > 0 ? total_ms_ / frames_ : 0.0;
}

double ConcurrentFpsMeter::max_latency_ms() const {
    sync::MutexLock lock(mu_);
    return max_ms_;
}

double ConcurrentFpsMeter::fps() const {
    sync::MutexLock lock(mu_);
    if (frames_ < 2) return 0.0;
    const double seconds = std::chrono::duration<double>(last_ - first_).count();
    return seconds > 0 ? static_cast<double>(frames_ - 1) / seconds : 0.0;
}

}  // namespace dronet
