// Wall-clock frames-per-second measurement (paper §IV, metric 4).
#pragma once

#include <chrono>
#include <functional>

#include "sync/mutex.hpp"

namespace dronet {

/// Runs `frame` `warmup` times unmeasured, then `iters` times measured;
/// returns iterations per wall-clock second.
[[nodiscard]] double measure_fps(const std::function<void()>& frame, int warmup = 1,
                                 int iters = 5);

/// Streaming FPS/latency tracker for the video pipeline: call frame_start /
/// frame_end around each frame.
class FpsMeter {
  public:
    void frame_start();
    void frame_end();

    [[nodiscard]] int frames() const noexcept { return frames_; }
    /// Mean latency per frame in milliseconds.
    [[nodiscard]] double mean_latency_ms() const noexcept;
    [[nodiscard]] double max_latency_ms() const noexcept { return max_ms_; }
    [[nodiscard]] double fps() const noexcept;

  private:
    using Clock = std::chrono::steady_clock;
    Clock::time_point start_{};
    double total_ms_ = 0;
    double max_ms_ = 0;
    int frames_ = 0;
    bool open_ = false;
};

/// Thread-safe FPS/latency aggregator for multi-worker serving: frames
/// overlap in time, so per-frame latency is reported by each worker via
/// record_latency_ms() and throughput is wall-clock from the first to the
/// last recorded frame (not the sum of latencies, which double-counts
/// concurrent work).
class ConcurrentFpsMeter {
  public:
    /// Records one completed frame with its end-to-end latency.
    void record_latency_ms(double ms);

    [[nodiscard]] int frames() const;
    [[nodiscard]] double mean_latency_ms() const;
    [[nodiscard]] double max_latency_ms() const;
    /// Frames per wall-clock second across all workers.
    [[nodiscard]] double fps() const;

  private:
    using Clock = std::chrono::steady_clock;
    mutable sync::Mutex mu_{"ConcurrentFpsMeter::mu"};
    Clock::time_point first_ GUARDED_BY(mu_){};
    Clock::time_point last_ GUARDED_BY(mu_){};
    double total_ms_ GUARDED_BY(mu_) = 0;
    double max_ms_ GUARDED_BY(mu_) = 0;
    int frames_ GUARDED_BY(mu_) = 0;
};

}  // namespace dronet
