#include "eval/metrics.hpp"

#include <algorithm>

namespace dronet {

float DetectionMetrics::avg_iou() const noexcept {
    return true_positives > 0 ? static_cast<float>(iou_sum / true_positives) : 0.0f;
}

float DetectionMetrics::sensitivity() const noexcept {
    const int denom = true_positives + false_negatives;
    return denom > 0 ? static_cast<float>(true_positives) / static_cast<float>(denom) : 0.0f;
}

float DetectionMetrics::precision() const noexcept {
    const int denom = true_positives + false_positives;
    return denom > 0 ? static_cast<float>(true_positives) / static_cast<float>(denom) : 0.0f;
}

float DetectionMetrics::f1() const noexcept {
    const float s = sensitivity();
    const float p = precision();
    return (s + p) > 0 ? 2 * s * p / (s + p) : 0.0f;
}

DetectionMetrics& DetectionMetrics::operator+=(const DetectionMetrics& other) noexcept {
    true_positives += other.true_positives;
    false_positives += other.false_positives;
    false_negatives += other.false_negatives;
    iou_sum += other.iou_sum;
    return *this;
}

DetectionMetrics match_detections(const Detections& dets,
                                  const std::vector<GroundTruth>& truths,
                                  float iou_thresh) {
    Detections sorted = dets;
    std::stable_sort(sorted.begin(), sorted.end(),
                     [](const Detection& a, const Detection& b) {
                         return a.score() > b.score();
                     });
    std::vector<bool> used(truths.size(), false);
    DetectionMetrics m;
    for (const Detection& d : sorted) {
        int best = -1;
        float best_iou = iou_thresh;
        for (std::size_t t = 0; t < truths.size(); ++t) {
            if (used[t] || truths[t].class_id != d.class_id) continue;
            const float v = iou(d.box, truths[t].box);
            if (v >= best_iou) {
                best_iou = v;
                best = static_cast<int>(t);
            }
        }
        if (best >= 0) {
            used[static_cast<std::size_t>(best)] = true;
            ++m.true_positives;
            m.iou_sum += best_iou;
        } else {
            ++m.false_positives;
        }
    }
    for (bool u : used) {
        if (!u) ++m.false_negatives;
    }
    return m;
}

}  // namespace dronet
