// Detection-accuracy metrics (paper §IV, metrics 1-3).
//
// Predictions are greedily matched to ground truth in descending score order
// at a configurable IoU threshold. From the match counts we derive exactly
// the paper's metrics: mean IoU of matched pairs, Sensitivity (eq. 1) and
// Precision (eq. 2).
#pragma once

#include <vector>

#include "detect/box.hpp"

namespace dronet {

struct DetectionMetrics {
    int true_positives = 0;
    int false_positives = 0;
    int false_negatives = 0;
    double iou_sum = 0;  ///< summed IoU over matched (TP) pairs

    /// Mean IoU over matched detections (0 when nothing matched).
    [[nodiscard]] float avg_iou() const noexcept;
    /// Tpos / (Tpos + Fneg), eq. (1).
    [[nodiscard]] float sensitivity() const noexcept;
    /// Tpos / (Tpos + Fpos), eq. (2).
    [[nodiscard]] float precision() const noexcept;
    /// Harmonic mean of sensitivity and precision (diagnostic, not a paper
    /// metric).
    [[nodiscard]] float f1() const noexcept;

    DetectionMetrics& operator+=(const DetectionMetrics& other) noexcept;
};

/// Matches one image's detections against its ground truth. A detection is a
/// TP if its best-IoU unmatched truth of the same class reaches `iou_thresh`;
/// each truth matches at most one detection (greedy, score-descending).
[[nodiscard]] DetectionMetrics match_detections(const Detections& dets,
                                                const std::vector<GroundTruth>& truths,
                                                float iou_thresh = 0.5f);

}  // namespace dronet
