#include "eval/pr_curve.hpp"

#include <algorithm>

namespace dronet {
namespace {

struct ScoredHit {
    float score = 0;
    bool is_tp = false;
};

// Per-image greedy matching (score-descending) recording each detection's
// TP/FP status, pooled across images.
std::pair<std::vector<ScoredHit>, int> pool_hits(
    const std::vector<ImageResult>& results, float iou_thresh) {
    std::vector<ScoredHit> hits;
    int total_truths = 0;
    for (const ImageResult& r : results) {
        total_truths += static_cast<int>(r.truths.size());
        Detections sorted = r.detections;
        std::stable_sort(sorted.begin(), sorted.end(),
                         [](const Detection& a, const Detection& b) {
                             return a.score() > b.score();
                         });
        std::vector<bool> used(r.truths.size(), false);
        for (const Detection& d : sorted) {
            int best = -1;
            float best_iou = iou_thresh;
            for (std::size_t t = 0; t < r.truths.size(); ++t) {
                if (used[t] || r.truths[t].class_id != d.class_id) continue;
                const float v = iou(d.box, r.truths[t].box);
                if (v >= best_iou) {
                    best_iou = v;
                    best = static_cast<int>(t);
                }
            }
            if (best >= 0) used[static_cast<std::size_t>(best)] = true;
            hits.push_back(ScoredHit{d.score(), best >= 0});
        }
    }
    return {std::move(hits), total_truths};
}

}  // namespace

std::vector<PrPoint> precision_recall_curve(const std::vector<ImageResult>& results,
                                            float iou_thresh) {
    auto [hits, total_truths] = pool_hits(results, iou_thresh);
    std::stable_sort(hits.begin(), hits.end(),
                     [](const ScoredHit& a, const ScoredHit& b) { return a.score > b.score; });
    std::vector<PrPoint> curve;
    curve.reserve(hits.size());
    int tp = 0;
    for (std::size_t i = 0; i < hits.size(); ++i) {
        if (hits[i].is_tp) ++tp;
        PrPoint p;
        p.threshold = hits[i].score;
        p.precision = static_cast<float>(tp) / static_cast<float>(i + 1);
        p.recall = total_truths > 0
                       ? static_cast<float>(tp) / static_cast<float>(total_truths)
                       : 0.0f;
        curve.push_back(p);
    }
    return curve;
}

float average_precision(const std::vector<PrPoint>& curve) {
    if (curve.empty()) return 0.0f;
    // Precision envelope: at each point, the max precision at >= this recall.
    std::vector<float> envelope(curve.size());
    float running = 0;
    for (std::size_t i = curve.size(); i-- > 0;) {
        running = std::max(running, curve[i].precision);
        envelope[i] = running;
    }
    float ap = 0;
    float prev_recall = 0;
    for (std::size_t i = 0; i < curve.size(); ++i) {
        ap += (curve[i].recall - prev_recall) * envelope[i];
        prev_recall = curve[i].recall;
    }
    return ap;
}

float average_precision(const std::vector<ImageResult>& results, float iou_thresh) {
    return average_precision(precision_recall_curve(results, iou_thresh));
}

float best_f1_threshold(const std::vector<PrPoint>& curve) {
    float best_f1 = -1;
    float best_threshold = 0;
    for (const PrPoint& p : curve) {
        const float denom = p.precision + p.recall;
        const float f1 = denom > 0 ? 2 * p.precision * p.recall / denom : 0.0f;
        if (f1 > best_f1) {
            best_f1 = f1;
            best_threshold = p.threshold;
        }
    }
    return best_threshold;
}

}  // namespace dronet
