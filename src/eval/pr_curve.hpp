// Precision-recall analysis and average precision.
//
// The paper reports point metrics (Sensitivity/Precision at one threshold);
// the detection community's standard summary is the PR curve and its
// integral (AP). This module sweeps the score threshold over pooled
// detections and computes both, used by the threshold-selection ablation.
#pragma once

#include <vector>

#include "detect/box.hpp"
#include "eval/metrics.hpp"

namespace dronet {

/// One image's detections with its ground truth, pooled for curve building.
struct ImageResult {
    Detections detections;
    std::vector<GroundTruth> truths;
};

struct PrPoint {
    float threshold = 0;
    float precision = 0;
    float recall = 0;
};

/// Builds the PR curve by sweeping the score threshold over all pooled
/// detections (greedy IoU matching per image at `iou_thresh`). Points are
/// ordered by descending threshold (increasing recall).
[[nodiscard]] std::vector<PrPoint> precision_recall_curve(
    const std::vector<ImageResult>& results, float iou_thresh = 0.5f);

/// Average precision: area under the precision envelope of the PR curve
/// (the "all-points" interpolation used by modern detection benchmarks).
[[nodiscard]] float average_precision(const std::vector<PrPoint>& curve);

/// Convenience: AP directly from pooled results.
[[nodiscard]] float average_precision(const std::vector<ImageResult>& results,
                                      float iou_thresh = 0.5f);

/// The threshold whose operating point maximizes F1 on the curve.
[[nodiscard]] float best_f1_threshold(const std::vector<PrPoint>& curve);

}  // namespace dronet
