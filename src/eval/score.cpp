#include "eval/score.hpp"

#include <algorithm>
#include <cmath>

namespace dronet {

void ScoreWeights::validate() const {
    const float values[] = {fps, iou, sensitivity, precision};
    float total = 0;
    for (float v : values) {
        if (v < 0.0f || v > 1.0f) {
            throw std::invalid_argument("ScoreWeights: weight outside [0,1]");
        }
        total += v;
    }
    if (std::fabs(total - 1.0f) > 1e-4f) {
        throw std::invalid_argument("ScoreWeights: weights must sum to 1");
    }
}

float composite_score(const ScoreInputs& normalized, const ScoreWeights& weights) {
    weights.validate();
    return weights.fps * normalized.fps + weights.iou * normalized.iou +
           weights.sensitivity * normalized.sensitivity +
           weights.precision * normalized.precision;
}

std::vector<float> normalize_by_max(std::span<const float> values) {
    std::vector<float> out(values.begin(), values.end());
    const float m = values.empty() ? 0.0f : *std::max_element(values.begin(), values.end());
    if (m > 0.0f) {
        for (float& v : out) v /= m;
    }
    return out;
}

std::vector<float> score_table(std::span<const ScoreInputs> rows,
                               const ScoreWeights& weights) {
    weights.validate();
    std::vector<float> fps, iou, sens, prec;
    for (const ScoreInputs& r : rows) {
        fps.push_back(r.fps);
        iou.push_back(r.iou);
        sens.push_back(r.sensitivity);
        prec.push_back(r.precision);
    }
    fps = normalize_by_max(fps);
    iou = normalize_by_max(iou);
    sens = normalize_by_max(sens);
    prec = normalize_by_max(prec);
    std::vector<float> scores;
    scores.reserve(rows.size());
    for (std::size_t i = 0; i < rows.size(); ++i) {
        scores.push_back(composite_score(
            ScoreInputs{fps[i], iou[i], sens[i], prec[i]}, weights));
    }
    return scores;
}

}  // namespace dronet
