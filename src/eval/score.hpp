// The paper's composite Score metric (§IV, eq. 3).
//
//   Score(w) = w1*FPS + w2*IoU + w3*Sensitivity + w4*Precision,  sum(w)=1
//
// applied to metrics normalized to [0,1] across the compared configurations
// (the paper normalizes each metric by its maximum across all CNNs, §IV.A).
#pragma once

#include <span>
#include <stdexcept>
#include <vector>

namespace dronet {

struct ScoreWeights {
    float fps = 0.4f;          ///< the paper prioritizes FPS for real-time use
    float iou = 0.2f;
    float sensitivity = 0.2f;
    float precision = 0.2f;

    /// Throws std::invalid_argument unless weights are in [0,1] and sum to 1.
    void validate() const;
};

/// One evaluated configuration's raw metrics.
struct ScoreInputs {
    float fps = 0;
    float iou = 0;
    float sensitivity = 0;
    float precision = 0;
};

/// Score of already-normalized inputs.
[[nodiscard]] float composite_score(const ScoreInputs& normalized,
                                    const ScoreWeights& weights = {});

/// Normalizes each metric by its maximum across `rows` (the paper's Fig. 3
/// normalization), then scores every row. Rows with an all-zero metric keep
/// zeros for that metric.
[[nodiscard]] std::vector<float> score_table(std::span<const ScoreInputs> rows,
                                             const ScoreWeights& weights = {});

/// Divides every element by the maximum of `values` (no-op on all-zero input).
[[nodiscard]] std::vector<float> normalize_by_max(std::span<const float> values);

}  // namespace dronet
