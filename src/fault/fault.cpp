#include "fault/fault.hpp"

#include <algorithm>
#include <chrono>
#include <thread>

namespace dronet::fault {
namespace {

std::vector<std::string> split(const std::string& text, char sep) {
    std::vector<std::string> parts;
    std::size_t start = 0;
    while (start <= text.size()) {
        const std::size_t end = text.find(sep, start);
        if (end == std::string::npos) {
            parts.push_back(text.substr(start));
            break;
        }
        parts.push_back(text.substr(start, end - start));
        start = end + 1;
    }
    return parts;
}

[[noreturn]] void parse_error(const std::string& clause, const std::string& why) {
    throw std::invalid_argument("FaultPlan::parse: " + why + " in clause \"" + clause +
                                "\" (grammar: site:action[:key=value]*; see "
                                "docs/robustness.md)");
}

std::uint64_t parse_u64(const std::string& clause, const std::string& v) {
    try {
        return std::stoull(v);
    } catch (const std::exception&) {
        parse_error(clause, "bad integer \"" + v + "\"");
    }
}

double parse_double(const std::string& clause, const std::string& v) {
    try {
        return std::stod(v);
    } catch (const std::exception&) {
        parse_error(clause, "bad number \"" + v + "\"");
    }
}

}  // namespace

FaultPlan FaultPlan::parse(const std::string& text) {
    FaultPlan plan;
    for (const std::string& clause : split(text, ';')) {
        if (clause.empty()) continue;
        const std::vector<std::string> fields = split(clause, ':');
        if (fields.size() < 2) parse_error(clause, "expected site:action");
        FaultSpec spec;
        spec.site = fields[0];
        if (spec.site.empty()) parse_error(clause, "empty site name");
        const std::string& action = fields[1];
        if (action == "throw") spec.action = FaultAction::kThrow;
        else if (action == "kill") spec.action = FaultAction::kKill;
        else if (action == "latency") spec.action = FaultAction::kLatency;
        else if (action == "short-read") spec.action = FaultAction::kShortRead;
        else parse_error(clause, "unknown action \"" + action + "\"");
        for (std::size_t i = 2; i < fields.size(); ++i) {
            const std::size_t eq = fields[i].find('=');
            if (eq == std::string::npos) parse_error(clause, "expected key=value");
            const std::string key = fields[i].substr(0, eq);
            const std::string value = fields[i].substr(eq + 1);
            if (key == "nth") spec.nth = parse_u64(clause, value);
            else if (key == "every") spec.every = parse_u64(clause, value);
            else if (key == "p") spec.probability = parse_double(clause, value);
            else if (key == "times") spec.times = parse_u64(clause, value);
            else if (key == "latency") spec.latency_ms = parse_double(clause, value);
            else if (key == "bytes") spec.bytes = static_cast<std::size_t>(parse_u64(clause, value));
            else if (key == "msg") spec.message = value;
            else if (key == "seed") plan.seed = parse_u64(clause, value);
            else parse_error(clause, "unknown key \"" + key + "\"");
        }
        if (spec.probability < 0 || spec.probability > 1) {
            parse_error(clause, "probability must be in [0,1]");
        }
        if (spec.action == FaultAction::kLatency && spec.latency_ms <= 0) {
            parse_error(clause, "latency action needs latency=MS > 0");
        }
        plan.specs.push_back(std::move(spec));
    }
    return plan;
}

FaultInjector& FaultInjector::instance() {
    static FaultInjector injector;
    return injector;
}

void FaultInjector::install(FaultPlan plan) {
    sync::MutexLock lock(mu_);
    armed_.clear();
    site_calls_.clear();
    for (FaultSpec& spec : plan.specs) {
        armed_.push_back(Armed{std::move(spec), 0, 0});
    }
    rng_.seed(plan.seed);
    active_.store(!armed_.empty(), std::memory_order_release);
}

void FaultInjector::clear() {
    sync::MutexLock lock(mu_);
    armed_.clear();
    site_calls_.clear();
    active_.store(false, std::memory_order_release);
}

FaultInjector::Decision FaultInjector::decide(const char* site, bool io_site,
                                              std::size_t want) {
    Decision d;
    sync::MutexLock lock(mu_);
    auto it = std::find_if(site_calls_.begin(), site_calls_.end(),
                           [&](const auto& e) { return e.first == site; });
    if (it == site_calls_.end()) {
        site_calls_.emplace_back(site, 1);
    } else {
        ++it->second;
    }
    for (Armed& a : armed_) {
        if (a.spec.site != site) continue;
        if (a.spec.action == FaultAction::kShortRead && !io_site) continue;
        ++a.calls;
        if (a.fires >= a.spec.times) continue;
        bool eligible = true;
        if (a.spec.nth > 0) eligible = (a.calls == a.spec.nth);
        else if (a.spec.every > 0) eligible = (a.calls % a.spec.every == 0);
        else if (a.spec.probability > 0) {
            eligible = std::uniform_real_distribution<double>(0.0, 1.0)(rng_) <
                       a.spec.probability;
        }
        if (!eligible) continue;
        ++a.fires;
        d.fired = true;
        d.action = a.spec.action;
        d.latency_ms = a.spec.latency_ms;
        d.bytes = std::min(a.spec.bytes, want);
        d.message = a.spec.message.empty()
                        ? "injected fault at " + std::string(site)
                        : a.spec.message;
        break;  // first matching armed spec wins for this call
    }
    return d;
}

void FaultInjector::fire(const char* site) {
    if (!active()) return;
    const Decision d = decide(site, /*io_site=*/false, 0);
    if (!d.fired) return;
    switch (d.action) {
        case FaultAction::kThrow: throw FaultInjected(d.message);
        case FaultAction::kKill: throw WorkerKillFault(d.message);
        case FaultAction::kLatency:
            std::this_thread::sleep_for(std::chrono::duration<double, std::milli>(d.latency_ms));
            return;
        case FaultAction::kShortRead: return;  // meaningless off the I/O path
    }
}

std::size_t FaultInjector::io_bytes(const char* site, std::size_t want) {
    if (!active()) return want;
    const Decision d = decide(site, /*io_site=*/true, want);
    if (!d.fired) return want;
    switch (d.action) {
        case FaultAction::kThrow: throw FaultInjected(d.message);
        case FaultAction::kKill: throw WorkerKillFault(d.message);
        case FaultAction::kLatency:
            std::this_thread::sleep_for(std::chrono::duration<double, std::milli>(d.latency_ms));
            return want;
        case FaultAction::kShortRead: return want - d.bytes;
    }
    return want;
}

std::uint64_t FaultInjector::calls(const std::string& site) const {
    sync::MutexLock lock(mu_);
    for (const auto& [name, count] : site_calls_) {
        if (name == site) return count;
    }
    return 0;
}

std::uint64_t FaultInjector::fires(const std::string& site) const {
    sync::MutexLock lock(mu_);
    std::uint64_t total = 0;
    for (const Armed& a : armed_) {
        if (a.spec.site == site) total += a.fires;
    }
    return total;
}

}  // namespace dronet::fault
