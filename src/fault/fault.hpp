// Deterministic, seeded fault injection for chaos testing.
//
// Production code is threaded with named injection sites (kSite* below). A
// test (or serve_bench --inject) installs a FaultPlan describing which sites
// fire and how — on exactly the Nth call, every Nth call, or with a seeded
// probability — and what happens when they do: throw a transient error, throw
// a worker-killing error, sleep, or shorten an I/O read. Everything is
// deterministic for a fixed plan (the probability path uses the plan's seed),
// so every recovery path in src/serve can be asserted rather than hoped for.
//
// Gating: sites are compiled in when the DRONET_FAULTS preprocessor flag is
// set (the default build; see the DRONET_FAULTS cmake option). With
// -DDRONET_FAULTS=OFF the DRONET_FAULT_* macros expand to nothing and the
// binary carries zero fault-injection overhead. Even when compiled in, an
// injector with no plan installed is a single relaxed atomic load per site.
//
// Plan grammar (one line, shell-friendly):
//   plan   := clause (';' clause)*
//   clause := site ':' action (':' key '=' value)*
//   action := throw | kill | latency | short-read
//   keys   := nth=N      fire on exactly the Nth matching call (1-based)
//           | every=N    fire on every Nth call
//           | p=F        fire with probability F (seeded, deterministic)
//           | times=N    stop after N fires (default: unlimited)
//           | latency=MS sleep MS milliseconds when firing (latency action)
//           | bytes=N    withhold N bytes (short-read action; default: all)
//           | msg=TEXT   exception message override
//           | seed=N     plan-level RNG seed (applies to the whole plan)
// With no nth/every/p selector a clause fires on every call (bounded by
// `times`). Example: "network.forward:kill:nth=3;weights.write:throw:nth=2".
#pragma once

#include <atomic>
#include <cstddef>
#include <cstdint>
#include <exception>
#include <random>
#include <stdexcept>
#include <string>
#include <vector>

#include "sync/mutex.hpp"

namespace dronet::fault {

// Canonical site names (keep docs/robustness.md in sync).
inline constexpr const char* kSiteForward = "network.forward";
inline constexpr const char* kSiteWeightsRead = "weights.read";
inline constexpr const char* kSiteWeightsWrite = "weights.write";
inline constexpr const char* kSiteImageRead = "image.read";
inline constexpr const char* kSiteQueuePush = "queue.push";
inline constexpr const char* kSiteQueuePop = "queue.pop";
/// Candidate checkpoint read during a hot reload (DetectionService).
inline constexpr const char* kSiteReloadRead = "reload.read";
/// Canary forward validating a reload candidate before the swap commits.
inline constexpr const char* kSiteReloadCanary = "reload.canary";
/// Parent-directory fsync that durably commits a checkpoint rename.
inline constexpr const char* kSiteWeightsDirFsync = "weights.dir_fsync";

/// Transient injected failure: retryable by the serving layer (derives from
/// std::runtime_error like real transient I/O and numerics errors).
class FaultInjected : public std::runtime_error {
  public:
    using std::runtime_error::runtime_error;
};

/// Worker-killing injected failure. Deliberately NOT a std::runtime_error:
/// the serving layer's retry logic treats it as unrecoverable, so it escapes
/// the worker loop and exercises the watchdog respawn path.
class WorkerKillFault : public std::exception {
  public:
    explicit WorkerKillFault(std::string message) : message_(std::move(message)) {}
    [[nodiscard]] const char* what() const noexcept override { return message_.c_str(); }

  private:
    std::string message_;
};

enum class FaultAction {
    kThrow,      ///< throw FaultInjected (transient, retryable)
    kKill,       ///< throw WorkerKillFault (unrecoverable; kills the worker)
    kLatency,    ///< sleep latency_ms (wedge/overload simulation)
    kShortRead,  ///< withhold bytes from an I/O site (truncation simulation)
};

[[nodiscard]] constexpr const char* to_string(FaultAction a) noexcept {
    switch (a) {
        case FaultAction::kThrow: return "throw";
        case FaultAction::kKill: return "kill";
        case FaultAction::kLatency: return "latency";
        case FaultAction::kShortRead: return "short-read";
    }
    return "?";
}

/// One armed fault: where, when, and what.
struct FaultSpec {
    std::string site;
    FaultAction action = FaultAction::kThrow;
    std::uint64_t nth = 0;    ///< fire on exactly this call index (1-based); 0 = off
    std::uint64_t every = 0;  ///< fire when call_index % every == 0; 0 = off
    double probability = 0;   ///< Bernoulli per call when > 0
    std::uint64_t times = UINT64_MAX;  ///< max fires
    double latency_ms = 0;             ///< kLatency sleep duration
    std::size_t bytes = SIZE_MAX;      ///< kShortRead: bytes withheld (SIZE_MAX = all)
    std::string message;               ///< exception text override
};

/// A set of armed faults plus the RNG seed for probabilistic clauses.
struct FaultPlan {
    std::vector<FaultSpec> specs;
    std::uint64_t seed = 0x5eed;

    /// Parses the grammar documented at the top of this header. Throws
    /// std::invalid_argument with a pointed message on malformed input.
    [[nodiscard]] static FaultPlan parse(const std::string& text);
};

/// Process-wide injector. Sites call fire()/io_bytes(); tests install plans.
/// Thread-safe: serving workers hit sites concurrently while a test thread
/// reads counters.
class FaultInjector {
  public:
    [[nodiscard]] static FaultInjector& instance();

    /// Installs `plan`, resetting all call/fire counters and reseeding.
    void install(FaultPlan plan);
    /// Removes any installed plan (sites return to no-op).
    void clear();
    [[nodiscard]] bool active() const noexcept {
        return active_.load(std::memory_order_acquire);
    }

    /// Trip point for non-I/O sites. May sleep (kLatency), throw FaultInjected
    /// (kThrow) or WorkerKillFault (kKill). kShortRead specs are ignored here.
    void fire(const char* site);

    /// Trip point for I/O sites reading `want` bytes: behaves like fire() and
    /// additionally returns the number of bytes the caller should actually
    /// read — `want` normally, less when a kShortRead spec fires.
    [[nodiscard]] std::size_t io_bytes(const char* site, std::size_t want);

    /// Total calls observed at `site` since install() (0 when inactive).
    [[nodiscard]] std::uint64_t calls(const std::string& site) const;
    /// Total fires triggered at `site` since install().
    [[nodiscard]] std::uint64_t fires(const std::string& site) const;

  private:
    FaultInjector() = default;

    struct Armed {
        FaultSpec spec;
        std::uint64_t calls = 0;
        std::uint64_t fires = 0;
    };

    // Decides and accounts under mu_; the action itself (sleep/throw) runs
    // outside the lock so a latency fault never stalls other sites.
    struct Decision {
        FaultAction action = FaultAction::kThrow;
        double latency_ms = 0;
        std::size_t bytes = 0;
        std::string message;
        bool fired = false;
    };
    [[nodiscard]] Decision decide(const char* site, bool io_site,
                                  std::size_t want) EXCLUDES(mu_);

    mutable sync::Mutex mu_{"FaultInjector::mu"};
    std::vector<Armed> armed_ GUARDED_BY(mu_);
    std::vector<std::pair<std::string, std::uint64_t>> site_calls_
        GUARDED_BY(mu_);
    std::mt19937_64 rng_ GUARDED_BY(mu_){0x5eed};
    std::atomic<bool> active_{false};
};

/// RAII plan install for tests: installs on construction, clears on scope
/// exit so a failing assertion never leaks an armed fault into later tests.
class ScopedFaultPlan {
  public:
    explicit ScopedFaultPlan(FaultPlan plan) {
        FaultInjector::instance().install(std::move(plan));
    }
    explicit ScopedFaultPlan(const std::string& text)
        : ScopedFaultPlan(FaultPlan::parse(text)) {}
    ~ScopedFaultPlan() { FaultInjector::instance().clear(); }
    ScopedFaultPlan(const ScopedFaultPlan&) = delete;
    ScopedFaultPlan& operator=(const ScopedFaultPlan&) = delete;
};

/// True when the build compiled injection sites in (DRONET_FAULTS). Tests
/// use this to skip chaos assertions in fault-free production builds.
[[nodiscard]] constexpr bool compiled_in() noexcept {
#if defined(DRONET_FAULTS) && DRONET_FAULTS
    return true;
#else
    return false;
#endif
}

}  // namespace dronet::fault

// Site macros: zero-cost when DRONET_FAULTS is off.
#if defined(DRONET_FAULTS) && DRONET_FAULTS
#define DRONET_FAULT_POINT(site)                                  \
    do {                                                          \
        auto& dronet_fault_inj = ::dronet::fault::FaultInjector::instance(); \
        if (dronet_fault_inj.active()) dronet_fault_inj.fire(site);          \
    } while (0)
#define DRONET_FAULT_IO(site, want)                               \
    (::dronet::fault::FaultInjector::instance().active()          \
         ? ::dronet::fault::FaultInjector::instance().io_bytes(site, want) \
         : (want))
#else
#define DRONET_FAULT_POINT(site) ((void)0)
#define DRONET_FAULT_IO(site, want) (want)
#endif
