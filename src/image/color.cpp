#include "image/color.hpp"

#include <algorithm>
#include <cmath>
#include <stdexcept>
#include <string>

namespace dronet {

Hsv rgb_to_hsv(Rgb rgb) noexcept {
    const float mx = std::max({rgb.r, rgb.g, rgb.b});
    const float mn = std::min({rgb.r, rgb.g, rgb.b});
    const float delta = mx - mn;
    Hsv out;
    out.v = mx;
    out.s = mx > 0.0f ? delta / mx : 0.0f;
    if (delta <= 0.0f) {
        out.h = 0.0f;
    } else if (mx == rgb.r) {
        out.h = std::fmod((rgb.g - rgb.b) / delta, 6.0f) / 6.0f;
    } else if (mx == rgb.g) {
        out.h = ((rgb.b - rgb.r) / delta + 2.0f) / 6.0f;
    } else {
        out.h = ((rgb.r - rgb.g) / delta + 4.0f) / 6.0f;
    }
    if (out.h < 0.0f) out.h += 1.0f;
    return out;
}

Rgb hsv_to_rgb(Hsv hsv) noexcept {
    const float h6 = hsv.h * 6.0f;
    const int sector = static_cast<int>(h6) % 6;
    const float f = h6 - std::floor(h6);
    const float p = hsv.v * (1.0f - hsv.s);
    const float q = hsv.v * (1.0f - hsv.s * f);
    const float t = hsv.v * (1.0f - hsv.s * (1.0f - f));
    switch (sector) {
        case 0: return {hsv.v, t, p};
        case 1: return {q, hsv.v, p};
        case 2: return {p, hsv.v, t};
        case 3: return {p, q, hsv.v};
        case 4: return {t, p, hsv.v};
        default: return {hsv.v, p, q};
    }
}

void distort_hsv(Image& im, Rng& rng, float hue, float saturation, float exposure) {
    if (im.channels() != 3) throw std::invalid_argument("distort_hsv: needs 3 channels");
    const float dh = rng.uniform(-hue, hue);
    auto scale_draw = [&rng](float s) {
        const float v = rng.uniform(1.0f, s);
        return rng.chance(0.5f) ? v : 1.0f / v;
    };
    const float ds = scale_draw(saturation);
    const float dv = scale_draw(exposure);
    for (int y = 0; y < im.height(); ++y) {
        for (int x = 0; x < im.width(); ++x) {
            Hsv hsv = rgb_to_hsv({im.px(x, y, 0), im.px(x, y, 1), im.px(x, y, 2)});
            hsv.h = std::fmod(hsv.h + dh + 1.0f, 1.0f);
            hsv.s = std::clamp(hsv.s * ds, 0.0f, 1.0f);
            hsv.v = std::clamp(hsv.v * dv, 0.0f, 1.0f);
            const Rgb rgb = hsv_to_rgb(hsv);
            im.px(x, y, 0) = rgb.r;
            im.px(x, y, 1) = rgb.g;
            im.px(x, y, 2) = rgb.b;
        }
    }
}

void flip_horizontal(Image& im) {
    for (int c = 0; c < im.channels(); ++c) {
        for (int y = 0; y < im.height(); ++y) {
            for (int x = 0; x < im.width() / 2; ++x) {
                std::swap(im.px(x, y, c), im.px(im.width() - 1 - x, y, c));
            }
        }
    }
}

void add_gaussian_noise(Image& im, Rng& rng, float stddev) {
    for (std::size_t i = 0; i < im.size(); ++i) {
        im.data()[i] += rng.normal(stddev);
    }
    im.clamp01();
}

Image convert_channels(const Image& im, int channels) {
    if (im.empty()) throw std::invalid_argument("convert_channels: empty source");
    if (im.channels() == channels) return im;
    Image out(im.width(), im.height(), channels);
    if (im.channels() == 1 && channels == 3) {
        for (int c = 0; c < 3; ++c) {
            for (int y = 0; y < im.height(); ++y) {
                for (int x = 0; x < im.width(); ++x) out.px(x, y, c) = im.px(x, y, 0);
            }
        }
        return out;
    }
    if (im.channels() == 4 && channels == 3) {
        for (int c = 0; c < 3; ++c) {
            for (int y = 0; y < im.height(); ++y) {
                for (int x = 0; x < im.width(); ++x) out.px(x, y, c) = im.px(x, y, c);
            }
        }
        return out;
    }
    throw std::invalid_argument("convert_channels: no conversion from " +
                                std::to_string(im.channels()) + " to " +
                                std::to_string(channels) + " channels");
}

}  // namespace dronet
