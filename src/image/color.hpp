// Colour-space utilities and photometric augmentation.
//
// The paper's dataset deliberately varies illumination and vehicle colour
// (§III.A); the HSV jitter here applies the matching augmentations during
// training, following darknet's hue/saturation/exposure distortion.
#pragma once

#include "image/draw.hpp"
#include "image/image.hpp"
#include "tensor/rng.hpp"

namespace dronet {

struct Hsv {
    float h = 0;  ///< hue in [0,1)
    float s = 0;  ///< saturation in [0,1]
    float v = 0;  ///< value in [0,1]
};

[[nodiscard]] Hsv rgb_to_hsv(Rgb rgb) noexcept;
[[nodiscard]] Rgb hsv_to_rgb(Hsv hsv) noexcept;

/// In-place photometric distortion of a 3-channel image: hue shifted by
/// +/-`hue`, saturation and exposure scaled in [1/s, s].
void distort_hsv(Image& im, Rng& rng, float hue, float saturation, float exposure);

/// Horizontally mirrors the image in place.
void flip_horizontal(Image& im);

/// Adds zero-mean Gaussian pixel noise (sensor-noise model).
void add_gaussian_noise(Image& im, Rng& rng, float stddev);

/// Returns `im` converted to exactly `channels` planes:
///  - same channel count: plain copy,
///  - 1 -> 3: the gray plane replicated into R/G/B,
///  - 4 -> 3: alpha plane dropped (no compositing; pixels are assumed
///    straight, not premultiplied).
/// Any other combination throws std::invalid_argument naming both counts.
[[nodiscard]] Image convert_channels(const Image& im, int channels);

}  // namespace dronet
