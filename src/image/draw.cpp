#include "image/draw.hpp"

#include <algorithm>
#include <cmath>

namespace dronet {
namespace {

void set_px(Image& im, int x, int y, Rgb color) {
    if (x < 0 || x >= im.width() || y < 0 || y >= im.height()) return;
    im.px(x, y, 0) = color.r;
    if (im.channels() > 1) im.px(x, y, 1) = color.g;
    if (im.channels() > 2) im.px(x, y, 2) = color.b;
}

}  // namespace

void draw_filled_rect(Image& im, int x0, int y0, int x1, int y1, Rgb color) {
    x0 = std::max(0, x0);
    y0 = std::max(0, y0);
    x1 = std::min(im.width() - 1, x1);
    y1 = std::min(im.height() - 1, y1);
    for (int y = y0; y <= y1; ++y) {
        for (int x = x0; x <= x1; ++x) set_px(im, x, y, color);
    }
}

void draw_rect(Image& im, int x0, int y0, int x1, int y1, Rgb color, int thickness) {
    for (int t = 0; t < thickness; ++t) {
        for (int x = x0 + t; x <= x1 - t; ++x) {
            set_px(im, x, y0 + t, color);
            set_px(im, x, y1 - t, color);
        }
        for (int y = y0 + t; y <= y1 - t; ++y) {
            set_px(im, x0 + t, y, color);
            set_px(im, x1 - t, y, color);
        }
    }
}

void draw_rotated_rect(Image& im, float cx, float cy, float hw, float hh,
                       float angle, Rgb color) {
    const float c = std::cos(angle);
    const float s = std::sin(angle);
    // Bounding box of the rotated rect in image space.
    const float ext_x = std::fabs(hw * c) + std::fabs(hh * s);
    const float ext_y = std::fabs(hw * s) + std::fabs(hh * c);
    const int x0 = std::max(0, static_cast<int>(std::floor(cx - ext_x)));
    const int x1 = std::min(im.width() - 1, static_cast<int>(std::ceil(cx + ext_x)));
    const int y0 = std::max(0, static_cast<int>(std::floor(cy - ext_y)));
    const int y1 = std::min(im.height() - 1, static_cast<int>(std::ceil(cy + ext_y)));
    for (int y = y0; y <= y1; ++y) {
        for (int x = x0; x <= x1; ++x) {
            // Transform the pixel centre into the rect's local frame.
            const float dx = (static_cast<float>(x) + 0.5f) - cx;
            const float dy = (static_cast<float>(y) + 0.5f) - cy;
            const float lx = dx * c + dy * s;
            const float ly = -dx * s + dy * c;
            if (std::fabs(lx) <= hw && std::fabs(ly) <= hh) set_px(im, x, y, color);
        }
    }
}

void draw_disc(Image& im, float cx, float cy, float radius, Rgb color) {
    const int x0 = std::max(0, static_cast<int>(std::floor(cx - radius)));
    const int x1 = std::min(im.width() - 1, static_cast<int>(std::ceil(cx + radius)));
    const int y0 = std::max(0, static_cast<int>(std::floor(cy - radius)));
    const int y1 = std::min(im.height() - 1, static_cast<int>(std::ceil(cy + radius)));
    const float r2 = radius * radius;
    for (int y = y0; y <= y1; ++y) {
        for (int x = x0; x <= x1; ++x) {
            const float dx = (static_cast<float>(x) + 0.5f) - cx;
            const float dy = (static_cast<float>(y) + 0.5f) - cy;
            if (dx * dx + dy * dy <= r2) set_px(im, x, y, color);
        }
    }
}

void draw_line(Image& im, int x0, int y0, int x1, int y1, Rgb color) {
    const int dx = std::abs(x1 - x0);
    const int dy = -std::abs(y1 - y0);
    const int sx = x0 < x1 ? 1 : -1;
    const int sy = y0 < y1 ? 1 : -1;
    int err = dx + dy;
    while (true) {
        set_px(im, x0, y0, color);
        if (x0 == x1 && y0 == y1) break;
        const int e2 = 2 * err;
        if (e2 >= dy) {
            err += dy;
            x0 += sx;
        }
        if (e2 <= dx) {
            err += dx;
            y0 += sy;
        }
    }
}

void blend_rect(Image& im, int x0, int y0, int x1, int y1, Rgb color, float alpha) {
    x0 = std::max(0, x0);
    y0 = std::max(0, y0);
    x1 = std::min(im.width() - 1, x1);
    y1 = std::min(im.height() - 1, y1);
    const float inv = 1.0f - alpha;
    for (int y = y0; y <= y1; ++y) {
        for (int x = x0; x <= x1; ++x) {
            im.px(x, y, 0) = im.px(x, y, 0) * inv + color.r * alpha;
            if (im.channels() > 1) im.px(x, y, 1) = im.px(x, y, 1) * inv + color.g * alpha;
            if (im.channels() > 2) im.px(x, y, 2) = im.px(x, y, 2) * inv + color.b * alpha;
        }
    }
}

}  // namespace dronet
