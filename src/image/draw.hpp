// 2-D rasterization primitives.
//
// Two consumers: the synthetic aerial-scene generator (drawing roads,
// vehicles, shadows) and the detection visualizer (overlaying predicted
// boxes, as in the paper's Fig. 5a).
#pragma once

#include "image/image.hpp"

namespace dronet {

struct Rgb {
    float r = 0, g = 0, b = 0;
};

/// Axis-aligned filled rectangle; coordinates are clipped to the image.
void draw_filled_rect(Image& im, int x0, int y0, int x1, int y1, Rgb color);

/// Rectangle outline with the given border thickness.
void draw_rect(Image& im, int x0, int y0, int x1, int y1, Rgb color, int thickness = 1);

/// Filled rotated rectangle centred at (cx,cy) with half-extents (hw,hh) and
/// rotation `angle` radians. Used for oriented top-view vehicles.
void draw_rotated_rect(Image& im, float cx, float cy, float hw, float hh,
                       float angle, Rgb color);

/// Filled disc.
void draw_disc(Image& im, float cx, float cy, float radius, Rgb color);

/// 1-px Bresenham line.
void draw_line(Image& im, int x0, int y0, int x1, int y1, Rgb color);

/// Alpha-blends `color` over the rectangle (used for soft shadows).
void blend_rect(Image& im, int x0, int y0, int x1, int y1, Rgb color, float alpha);

}  // namespace dronet
