#include "image/image.hpp"

#include <algorithm>
#include <stdexcept>

namespace dronet {

namespace {

// Validates before the data vector is sized, so a negative dimension throws
// invalid_argument instead of wrapping into a huge allocation.
std::size_t checked_pixel_count(int width, int height, int channels) {
    if (width <= 0 || height <= 0 || channels <= 0) {
        throw std::invalid_argument("Image: non-positive dimensions");
    }
    return static_cast<std::size_t>(width) * static_cast<std::size_t>(height) *
           static_cast<std::size_t>(channels);
}

}  // namespace

Image::Image(int width, int height, int channels)
    : width_(width), height_(height), channels_(channels),
      data_(checked_pixel_count(width, height, channels), 0.0f) {}

float Image::px_clamped(int x, int y, int c) const noexcept {
    x = std::clamp(x, 0, width_ - 1);
    y = std::clamp(y, 0, height_ - 1);
    c = std::clamp(c, 0, channels_ - 1);
    return px(x, y, c);
}

void Image::fill(float v) noexcept { std::fill(data_.begin(), data_.end(), v); }

void Image::clamp01() noexcept {
    for (float& v : data_) v = std::clamp(v, 0.0f, 1.0f);
}

Tensor Image::to_tensor() const {
    Tensor t(1, channels_, height_, width_);
    copy_to_batch(t, 0);
    return t;
}

void Image::copy_to_batch(Tensor& t, int n) const {
    const Shape& s = t.shape();
    if (s.c != channels_ || s.h != height_ || s.w != width_ || n < 0 || n >= s.n) {
        throw std::invalid_argument("Image::copy_to_batch: shape mismatch");
    }
    std::copy(data_.begin(), data_.end(),
              t.data() + static_cast<std::int64_t>(n) * s.chw());
}

Image Image::from_tensor(const Tensor& t, int n) {
    const Shape& s = t.shape();
    if (n < 0 || n >= s.n) throw std::invalid_argument("Image::from_tensor: bad batch index");
    Image im(s.w, s.h, s.c);
    const float* src = t.data() + static_cast<std::int64_t>(n) * s.chw();
    std::copy(src, src + s.chw(), im.data());
    return im;
}

}  // namespace dronet
