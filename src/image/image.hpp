// Planar float image (CHW, values nominally in [0,1]).
//
// Matches darknet's image representation so frames can be fed straight into
// the network input tensor without conversion. Channel 0/1/2 = R/G/B.
#pragma once

#include <cstdint>
#include <vector>

#include "tensor/tensor.hpp"

namespace dronet {

class Image {
  public:
    Image() = default;
    Image(int width, int height, int channels);

    [[nodiscard]] int width() const noexcept { return width_; }
    [[nodiscard]] int height() const noexcept { return height_; }
    [[nodiscard]] int channels() const noexcept { return channels_; }
    [[nodiscard]] bool empty() const noexcept { return data_.empty(); }

    [[nodiscard]] float* data() noexcept { return data_.data(); }
    [[nodiscard]] const float* data() const noexcept { return data_.data(); }
    [[nodiscard]] std::size_t size() const noexcept { return data_.size(); }

    /// Unchecked pixel access.
    [[nodiscard]] float& px(int x, int y, int c) noexcept {
        return data_[(static_cast<std::size_t>(c) * height_ + y) * width_ + x];
    }
    [[nodiscard]] float px(int x, int y, int c) const noexcept {
        return data_[(static_cast<std::size_t>(c) * height_ + y) * width_ + x];
    }

    /// Checked pixel access; clamps coordinates to the image border
    /// (replicate padding), convenient for filters and samplers.
    [[nodiscard]] float px_clamped(int x, int y, int c) const noexcept;

    void fill(float v) noexcept;

    /// Clamps every value into [0,1].
    void clamp01() noexcept;

    /// Copies pixel data into a 1xCxHxW tensor (allocates).
    [[nodiscard]] Tensor to_tensor() const;

    /// Copies pixel data into batch slot `n` of an existing NCHW tensor whose
    /// c/h/w match this image. Throws std::invalid_argument on mismatch.
    void copy_to_batch(Tensor& t, int n) const;

    /// Builds an image from batch slot `n` of an NCHW tensor.
    [[nodiscard]] static Image from_tensor(const Tensor& t, int n = 0);

  private:
    int width_ = 0;
    int height_ = 0;
    int channels_ = 0;
    std::vector<float> data_;
};

}  // namespace dronet
