#include "image/ppm.hpp"

#include <algorithm>
#include <cctype>
#include <fstream>
#include <stdexcept>
#include <string>
#include <vector>

#include "fault/fault.hpp"

namespace dronet {
namespace {

// Reads the next whitespace/comment-delimited token of a PNM header.
std::string next_token(std::istream& in) {
    std::string tok;
    int ch = 0;
    while ((ch = in.get()) != EOF) {
        if (ch == '#') {  // comment to end of line
            while ((ch = in.get()) != EOF && ch != '\n') {}
            continue;
        }
        if (!std::isspace(ch)) {
            tok.push_back(static_cast<char>(ch));
            break;
        }
    }
    while ((ch = in.get()) != EOF && !std::isspace(ch)) tok.push_back(static_cast<char>(ch));
    if (tok.empty()) throw std::runtime_error("ppm: truncated header");
    return tok;
}

}  // namespace

void write_ppm(const Image& im, const std::filesystem::path& path) {
    if (im.channels() != 3 && im.channels() != 1) {
        throw std::runtime_error("write_ppm: only 1- or 3-channel images supported");
    }
    std::ofstream out(path, std::ios::binary);
    if (!out) throw std::runtime_error("write_ppm: cannot open " + path.string());
    out << (im.channels() == 3 ? "P6" : "P5") << "\n"
        << im.width() << " " << im.height() << "\n255\n";
    std::vector<unsigned char> row(static_cast<std::size_t>(im.width()) * im.channels());
    for (int y = 0; y < im.height(); ++y) {
        for (int x = 0; x < im.width(); ++x) {
            for (int c = 0; c < im.channels(); ++c) {
                const float v = std::clamp(im.px(x, y, c), 0.0f, 1.0f);
                row[static_cast<std::size_t>(x) * im.channels() + c] =
                    static_cast<unsigned char>(v * 255.0f + 0.5f);
            }
        }
        out.write(reinterpret_cast<const char*>(row.data()),
                  static_cast<std::streamsize>(row.size()));
    }
    if (!out) throw std::runtime_error("write_ppm: write failed for " + path.string());
}

Image read_ppm(const std::filesystem::path& path) {
    std::ifstream in(path, std::ios::binary);
    if (!in) throw std::runtime_error("read_ppm: cannot open " + path.string());
    const std::string magic = next_token(in);
    int channels = 0;
    if (magic == "P6") {
        channels = 3;
    } else if (magic == "P5") {
        channels = 1;
    } else {
        throw std::runtime_error("read_ppm: unsupported magic " + magic);
    }
    const int w = std::stoi(next_token(in));
    const int h = std::stoi(next_token(in));
    const int maxval = std::stoi(next_token(in));
    if (w <= 0 || h <= 0 || maxval <= 0 || maxval > 255) {
        throw std::runtime_error("read_ppm: bad header in " + path.string());
    }
    // Cap dimensions so a corrupted header fails cleanly instead of asking
    // the allocator for gigabytes (32k x 32k x 3ch is already ~12 GB).
    constexpr int kMaxDim = 1 << 15;
    constexpr std::int64_t kMaxPixels = std::int64_t{1} << 26;
    if (w > kMaxDim || h > kMaxDim ||
        static_cast<std::int64_t>(w) * h > kMaxPixels) {
        throw std::runtime_error("read_ppm: implausible dimensions " +
                                 std::to_string(w) + "x" + std::to_string(h) +
                                 " in " + path.string());
    }
    Image im(w, h, channels);
    std::vector<unsigned char> row(static_cast<std::size_t>(w) * channels);
    const float inv = 1.0f / static_cast<float>(maxval);
    for (int y = 0; y < h; ++y) {
        // A short-read fault shrinks `take`, hitting the same truncation
        // error path a physically truncated file would.
        const std::size_t take = DRONET_FAULT_IO(fault::kSiteImageRead, row.size());
        in.read(reinterpret_cast<char*>(row.data()), static_cast<std::streamsize>(take));
        if (!in || take != row.size()) {
            throw std::runtime_error("read_ppm: truncated pixel data in " + path.string());
        }
        for (int x = 0; x < w; ++x) {
            for (int c = 0; c < channels; ++c) {
                im.px(x, y, c) = static_cast<float>(row[static_cast<std::size_t>(x) * channels + c]) * inv;
            }
        }
    }
    return im;
}

}  // namespace dronet
