// Minimal binary PPM (P6) / PGM (P5) reader & writer.
//
// Used to persist synthetic dataset frames and detection visualizations; the
// formats are header-only and dependency-free, which keeps the embedded
// deployment story (no image libraries on the UAV companion computer) honest.
#pragma once

#include <filesystem>

#include "image/image.hpp"

namespace dronet {

/// Writes a 3-channel image as binary PPM (P6) or a 1-channel image as PGM
/// (P5). Values are clamped to [0,1] and quantized to 8 bits.
/// Throws std::runtime_error on I/O failure or unsupported channel count.
void write_ppm(const Image& im, const std::filesystem::path& path);

/// Reads a binary PPM/PGM into a float image in [0,1].
/// Throws std::runtime_error on malformed input.
[[nodiscard]] Image read_ppm(const std::filesystem::path& path);

}  // namespace dronet
