#include "image/resize.hpp"

#include <algorithm>
#include <cmath>
#include <stdexcept>
#include <utility>
#include <vector>

#include "simd/kernels.hpp"

namespace dronet {

Image resize_bilinear(const Image& src, int new_w, int new_h) {
    if (src.empty()) throw std::invalid_argument("resize_bilinear: empty source");
    Image dst(new_w, new_h, src.channels());
    // Half-pixel (pixel-center) sampling: destination pixel center (x + 0.5)
    // maps to source coordinate (x + 0.5) * src/dst. This is the same
    // continuous-coordinate scaling that letterbox's `scale = dst/src` implies,
    // so the embed and the inverse box transform share one convention
    // (align-corners' (src-1)/(dst-1) mapping did not, drifting by up to half
    // a pixel at the borders).
    //
    // Two-pass separable structure: the horizontal lerp of each needed source
    // row is computed once and cached (each source row feeds up to two output
    // rows when upscaling), and the vertical lerp runs over whole rows via
    // the dispatched lerp_rows kernel. Per-element operations and their order
    // are identical to the fused per-pixel loop this replaced, so results are
    // bitwise unchanged at every dispatch level.
    const float sx = static_cast<float>(src.width()) / new_w;
    const float sy = static_cast<float>(src.height()) / new_h;
    std::vector<int> xi0(static_cast<std::size_t>(new_w));
    std::vector<int> xi1(static_cast<std::size_t>(new_w));
    std::vector<float> wxv(static_cast<std::size_t>(new_w));
    for (int x = 0; x < new_w; ++x) {
        const float fx = std::max((x + 0.5f) * sx - 0.5f, 0.0f);
        xi0[static_cast<std::size_t>(x)] = std::min(static_cast<int>(fx), src.width() - 1);
        xi1[static_cast<std::size_t>(x)] =
            std::min(xi0[static_cast<std::size_t>(x)] + 1, src.width() - 1);
        wxv[static_cast<std::size_t>(x)] =
            fx - static_cast<float>(xi0[static_cast<std::size_t>(x)]);
    }
    const auto lerp_rows = simd::kernels().lerp_rows;
    std::vector<float> buf0(static_cast<std::size_t>(new_w));
    std::vector<float> buf1(static_cast<std::size_t>(new_w));
    for (int c = 0; c < src.channels(); ++c) {
        int have0 = -1;
        int have1 = -1;
        const auto hrow = [&](int iy, float* out) {
            for (int x = 0; x < new_w; ++x) {
                const float wx = wxv[static_cast<std::size_t>(x)];
                out[x] = src.px(xi0[static_cast<std::size_t>(x)], iy, c) * (1 - wx) +
                         src.px(xi1[static_cast<std::size_t>(x)], iy, c) * wx;
            }
        };
        for (int y = 0; y < new_h; ++y) {
            const float fy = std::max((y + 0.5f) * sy - 0.5f, 0.0f);
            const int y0 = std::min(static_cast<int>(fy), src.height() - 1);
            const int y1 = std::min(y0 + 1, src.height() - 1);
            const float wy = fy - static_cast<float>(y0);
            if (y0 == have1 && y0 != have0) {
                std::swap(buf0, buf1);
                std::swap(have0, have1);
            }
            if (have0 != y0) {
                hrow(y0, buf0.data());
                have0 = y0;
            }
            if (y1 != y0 && have1 != y1) {
                hrow(y1, buf1.data());
                have1 = y1;
            }
            const float* top = buf0.data();
            const float* bot = y1 == y0 ? buf0.data() : buf1.data();
            lerp_rows(top, bot, wy, &dst.px(0, y, c),
                      static_cast<std::size_t>(new_w));
        }
    }
    return dst;
}

Image resize_nearest(const Image& src, int new_w, int new_h) {
    if (src.empty()) throw std::invalid_argument("resize_nearest: empty source");
    Image dst(new_w, new_h, src.channels());
    for (int y = 0; y < new_h; ++y) {
        const int sy = std::min(src.height() - 1,
                                static_cast<int>((y + 0.5f) * src.height() / new_h));
        for (int x = 0; x < new_w; ++x) {
            const int sx = std::min(src.width() - 1,
                                    static_cast<int>((x + 0.5f) * src.width() / new_w));
            for (int c = 0; c < src.channels(); ++c) dst.px(x, y, c) = src.px(sx, sy, c);
        }
    }
    return dst;
}

Letterbox letterbox(const Image& src, int new_w, int new_h) {
    if (src.empty()) throw std::invalid_argument("letterbox: empty source");
    Letterbox out;
    out.scale = std::min(static_cast<float>(new_w) / src.width(),
                         static_cast<float>(new_h) / src.height());
    out.emb_w = std::max(1, static_cast<int>(std::lround(src.width() * out.scale)));
    out.emb_h = std::max(1, static_cast<int>(std::lround(src.height() * out.scale)));
    const int emb_w = out.emb_w;
    const int emb_h = out.emb_h;
    out.offset_x = (new_w - emb_w) / 2;
    out.offset_y = (new_h - emb_h) / 2;
    Image embedded = resize_bilinear(src, emb_w, emb_h);
    out.image = Image(new_w, new_h, src.channels());
    out.image.fill(0.5f);
    for (int y = 0; y < emb_h; ++y) {
        for (int x = 0; x < emb_w; ++x) {
            for (int c = 0; c < src.channels(); ++c) {
                out.image.px(x + out.offset_x, y + out.offset_y, c) = embedded.px(x, y, c);
            }
        }
    }
    return out;
}

}  // namespace dronet
