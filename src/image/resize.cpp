#include "image/resize.hpp"

#include <algorithm>
#include <cmath>
#include <stdexcept>

namespace dronet {

Image resize_bilinear(const Image& src, int new_w, int new_h) {
    if (src.empty()) throw std::invalid_argument("resize_bilinear: empty source");
    Image dst(new_w, new_h, src.channels());
    // Half-pixel (pixel-center) sampling: destination pixel center (x + 0.5)
    // maps to source coordinate (x + 0.5) * src/dst. This is the same
    // continuous-coordinate scaling that letterbox's `scale = dst/src` implies,
    // so the embed and the inverse box transform share one convention
    // (align-corners' (src-1)/(dst-1) mapping did not, drifting by up to half
    // a pixel at the borders).
    const float sx = static_cast<float>(src.width()) / new_w;
    const float sy = static_cast<float>(src.height()) / new_h;
    for (int y = 0; y < new_h; ++y) {
        const float fy = std::max((y + 0.5f) * sy - 0.5f, 0.0f);
        const int y0 = std::min(static_cast<int>(fy), src.height() - 1);
        const int y1 = std::min(y0 + 1, src.height() - 1);
        const float wy = fy - static_cast<float>(y0);
        for (int x = 0; x < new_w; ++x) {
            const float fx = std::max((x + 0.5f) * sx - 0.5f, 0.0f);
            const int x0 = std::min(static_cast<int>(fx), src.width() - 1);
            const int x1 = std::min(x0 + 1, src.width() - 1);
            const float wx = fx - static_cast<float>(x0);
            for (int c = 0; c < src.channels(); ++c) {
                const float top = src.px(x0, y0, c) * (1 - wx) + src.px(x1, y0, c) * wx;
                const float bot = src.px(x0, y1, c) * (1 - wx) + src.px(x1, y1, c) * wx;
                dst.px(x, y, c) = top * (1 - wy) + bot * wy;
            }
        }
    }
    return dst;
}

Image resize_nearest(const Image& src, int new_w, int new_h) {
    if (src.empty()) throw std::invalid_argument("resize_nearest: empty source");
    Image dst(new_w, new_h, src.channels());
    for (int y = 0; y < new_h; ++y) {
        const int sy = std::min(src.height() - 1,
                                static_cast<int>((y + 0.5f) * src.height() / new_h));
        for (int x = 0; x < new_w; ++x) {
            const int sx = std::min(src.width() - 1,
                                    static_cast<int>((x + 0.5f) * src.width() / new_w));
            for (int c = 0; c < src.channels(); ++c) dst.px(x, y, c) = src.px(sx, sy, c);
        }
    }
    return dst;
}

Letterbox letterbox(const Image& src, int new_w, int new_h) {
    if (src.empty()) throw std::invalid_argument("letterbox: empty source");
    Letterbox out;
    out.scale = std::min(static_cast<float>(new_w) / src.width(),
                         static_cast<float>(new_h) / src.height());
    out.emb_w = std::max(1, static_cast<int>(std::lround(src.width() * out.scale)));
    out.emb_h = std::max(1, static_cast<int>(std::lround(src.height() * out.scale)));
    const int emb_w = out.emb_w;
    const int emb_h = out.emb_h;
    out.offset_x = (new_w - emb_w) / 2;
    out.offset_y = (new_h - emb_h) / 2;
    Image embedded = resize_bilinear(src, emb_w, emb_h);
    out.image = Image(new_w, new_h, src.channels());
    out.image.fill(0.5f);
    for (int y = 0; y < emb_h; ++y) {
        for (int x = 0; x < emb_w; ++x) {
            for (int c = 0; c < src.channels(); ++c) {
                out.image.px(x + out.offset_x, y + out.offset_y, c) = embedded.px(x, y, c);
            }
        }
    }
    return out;
}

}  // namespace dronet
