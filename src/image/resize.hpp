// Image resampling.
//
// The paper's §III.C.2 / §IV.A.2 experiments sweep the network input size
// from 352 to 608; frames from the (synthetic) camera are resampled to the
// network resolution with these routines. `letterbox` preserves aspect ratio
// with gray padding, matching darknet's test-time preprocessing.
#pragma once

#include "image/image.hpp"

namespace dronet {

/// Bilinear resample to new_w x new_h.
[[nodiscard]] Image resize_bilinear(const Image& src, int new_w, int new_h);

/// Nearest-neighbour resample (cheap path used by the video pipeline's
/// preview output; not used for network input).
[[nodiscard]] Image resize_nearest(const Image& src, int new_w, int new_h);

/// Result of letterboxing: the padded image plus the transform needed to map
/// network-space boxes back to source-image space.
struct Letterbox {
    Image image;      ///< new_w x new_h with gray (0.5) padding
    float scale = 1;  ///< source * scale = embedded size (before rounding)
    int offset_x = 0; ///< left padding in pixels
    int offset_y = 0; ///< top padding in pixels
    int emb_w = 0;    ///< embedded width in pixels (rounded from scale)
    int emb_h = 0;    ///< embedded height in pixels (rounded from scale)
};

/// Aspect-preserving embed of `src` into a new_w x new_h canvas.
[[nodiscard]] Letterbox letterbox(const Image& src, int new_w, int new_h);

}  // namespace dronet
