#include "io/fdio.hpp"

#include <unistd.h>

#include <cerrno>
#include <csignal>
#include <system_error>

namespace dronet::io {

std::size_t read_full(int fd, void* buf, std::size_t n) {
    auto* p = static_cast<char*>(buf);
    std::size_t done = 0;
    while (done < n) {
        const ssize_t got = ::read(fd, p + done, n - done);
        if (got > 0) {
            done += static_cast<std::size_t>(got);
            continue;
        }
        if (got == 0) break;  // end of stream
        if (errno == EINTR) continue;
        throw std::system_error(errno, std::generic_category(), "read_full");
    }
    return done;
}

void write_full(int fd, const void* buf, std::size_t n) {
    const auto* p = static_cast<const char*>(buf);
    std::size_t done = 0;
    while (done < n) {
        const ssize_t put = ::write(fd, p + done, n - done);
        if (put > 0) {
            done += static_cast<std::size_t>(put);
            continue;
        }
        // write() returning 0 for n > 0 is only possible for exotic fds;
        // treat it as an error rather than spinning.
        if (put < 0 && errno == EINTR) continue;
        throw std::system_error(put < 0 ? errno : EIO, std::generic_category(),
                                "write_full");
    }
}

void ignore_sigpipe() { std::signal(SIGPIPE, SIG_IGN); }

void UniqueFd::reset(int fd) noexcept {
    if (fd_ >= 0) ::close(fd_);
    fd_ = fd;
}

}  // namespace dronet::io
