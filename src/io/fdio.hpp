// EINTR-safe full-buffer POSIX I/O.
//
// Two call sites share these helpers deliberately (one definition of the
// retry loop, not two divergent copies): the crash-safe checkpoint writer in
// nn/weights_io, and the length-prefixed socket framing in src/cluster. Both
// need the same contract — a read or write of N bytes either transfers all N,
// stops early at end-of-stream (reads only), or throws — and both run in
// processes where signals (worker respawns, chaos tests sending SIGTERM/
// SIGCHLD) routinely interrupt syscalls mid-transfer.
#pragma once

#include <cstddef>
#include <utility>

namespace dronet::io {

/// Reads until `n` bytes have arrived or the stream ends, retrying on EINTR
/// and short reads. Returns the number of bytes actually read: `n` normally,
/// less only when end-of-file/peer-close intervened (0 for EOF at a clean
/// boundary). Throws std::system_error on a read error.
[[nodiscard]] std::size_t read_full(int fd, void* buf, std::size_t n);

/// Writes all `n` bytes, retrying on EINTR and short writes (sockets and
/// pipes routinely accept fewer bytes than asked under pressure). Throws
/// std::system_error on a write error, including EPIPE when the peer is gone
/// (callers must ignore SIGPIPE; see ignore_sigpipe()).
void write_full(int fd, const void* buf, std::size_t n);

/// Installs SIG_IGN for SIGPIPE (idempotent) so a write to a dead peer
/// surfaces as an EPIPE std::system_error instead of killing the process.
/// Every cluster entry point (router, worker, tools) calls this first.
void ignore_sigpipe();

/// Minimal RAII file descriptor: closes on destruction, move-only.
class UniqueFd {
  public:
    UniqueFd() = default;
    explicit UniqueFd(int fd) noexcept : fd_(fd) {}
    ~UniqueFd() { reset(); }
    UniqueFd(UniqueFd&& other) noexcept : fd_(other.release()) {}
    UniqueFd& operator=(UniqueFd&& other) noexcept {
        if (this != &other) reset(other.release());
        return *this;
    }
    UniqueFd(const UniqueFd&) = delete;
    UniqueFd& operator=(const UniqueFd&) = delete;

    [[nodiscard]] int get() const noexcept { return fd_; }
    [[nodiscard]] explicit operator bool() const noexcept { return fd_ >= 0; }
    [[nodiscard]] int release() noexcept { return std::exchange(fd_, -1); }
    /// Closes the held descriptor (if any) and adopts `fd`.
    void reset(int fd = -1) noexcept;

  private:
    int fd_ = -1;
};

}  // namespace dronet::io
