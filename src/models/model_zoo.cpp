#include "models/model_zoo.hpp"

#include <algorithm>
#include <cmath>
#include <sstream>
#include <stdexcept>

#include "nn/cfg.hpp"

namespace dronet {
namespace {

constexpr int kNumAnchors = 5;

// Anchor shapes as fractions of the image: top-view vehicles appear in a
// narrow size band (paper §III.D); two elongated anchors cover the two
// dominant orientations.
constexpr float kAnchorNorm[kNumAnchors][2] = {
    {0.05f, 0.05f}, {0.08f, 0.08f}, {0.12f, 0.12f}, {0.17f, 0.11f}, {0.11f, 0.17f},
};

int scaled(int filters, float scale) {
    return std::max(4, static_cast<int>(std::lround(static_cast<float>(filters) * scale)));
}

void emit_net_section(std::ostringstream& os, const ModelOptions& o) {
    os << "[net]\n"
       << "batch=" << o.batch << "\n"
       << "width=" << o.input_size << "\n"
       << "height=" << o.input_size << "\n"
       << "channels=3\n"
       << "learning_rate=" << o.learning_rate << "\n"
       << "momentum=" << o.momentum << "\n"
       << "decay=" << o.decay << "\n"
       << "burn_in=" << o.burn_in << "\n"
       << "seed=" << o.seed << "\n";
}

void emit_conv(std::ostringstream& os, int filters, int size, bool bn,
               const char* activation) {
    os << "\n[convolutional]\n";
    if (bn) os << "batch_normalize=1\n";
    os << "filters=" << filters << "\n"
       << "size=" << size << "\n"
       << "stride=1\n"
       << "pad=1\n"
       << "activation=" << activation << "\n";
}

void emit_maxpool(std::ostringstream& os, int size, int stride) {
    os << "\n[maxpool]\nsize=" << size << "\nstride=" << stride << "\n";
}

void emit_region(std::ostringstream& os, const ModelOptions& o, int stride) {
    const int grid = std::max(1, o.input_size / stride);
    os << "\n[region]\nanchors=";
    for (int a = 0; a < kNumAnchors; ++a) {
        os << (a ? "," : "") << kAnchorNorm[a][0] * static_cast<float>(grid) << ","
           << kAnchorNorm[a][1] * static_cast<float>(grid);
    }
    os << "\nclasses=" << o.classes << "\ncoords=4\nnum=" << kNumAnchors
       << "\nobject_scale=5\nnoobject_scale=1\nclass_scale=1\ncoord_scale=1\n"
          "thresh=0.6\nrescore=1\n";
}

int head_filters(const ModelOptions& o) { return kNumAnchors * (5 + o.classes); }

// The Tiny-YOLO topology shared by TinyYoloVoc / TinyYoloNet / SmallYoloV3:
// six conv+maxpool stages (the last pool has stride 1) followed by two 3x3
// convolutions and the 1x1 detection head. `f` holds the 8 hidden filter
// counts.
std::string tiny_family_cfg(const ModelOptions& o, const int (&f)[8]) {
    std::ostringstream os;
    emit_net_section(os, o);
    for (int stage = 0; stage < 6; ++stage) {
        emit_conv(os, scaled(f[stage], o.filter_scale), 3, true, "leaky");
        emit_maxpool(os, 2, stage < 5 ? 2 : 1);
    }
    emit_conv(os, scaled(f[6], o.filter_scale), 3, true, "leaky");
    emit_conv(os, scaled(f[7], o.filter_scale), 3, true, "leaky");
    emit_conv(os, head_filters(o), 1, false, "linear");
    emit_region(os, o, 32);
    return os.str();
}

// DroNet (Fig. 2): alternating 3x3 (spatial feature extraction) and 1x1
// (channel mixing) convolutions with four 2x max-pool reductions.
std::string dronet_cfg(const ModelOptions& o) {
    constexpr int f[4] = {8, 16, 32, 64};
    std::ostringstream os;
    emit_net_section(os, o);
    for (int stage = 0; stage < 4; ++stage) {
        emit_conv(os, scaled(f[stage], o.filter_scale), 3, true, "leaky");
        emit_maxpool(os, 2, 2);
        emit_conv(os, scaled(f[stage], o.filter_scale), 1, true, "leaky");
    }
    emit_conv(os, head_filters(o), 1, false, "linear");
    emit_region(os, o, 16);
    return os.str();
}

}  // namespace

std::vector<ModelId> all_models() {
    return {ModelId::kTinyYoloVoc, ModelId::kTinyYoloNet, ModelId::kSmallYoloV3,
            ModelId::kDroNet};
}

std::string to_string(ModelId id) {
    switch (id) {
        case ModelId::kTinyYoloVoc: return "TinyYoloVoc";
        case ModelId::kTinyYoloNet: return "TinyYoloNet";
        case ModelId::kSmallYoloV3: return "SmallYoloV3";
        case ModelId::kDroNet: return "DroNet";
    }
    return "?";
}

ModelId model_from_string(const std::string& name) {
    for (ModelId id : all_models()) {
        if (to_string(id) == name) return id;
    }
    throw std::invalid_argument("unknown model: " + name);
}

int model_stride(ModelId id) {
    return id == ModelId::kDroNet ? 16 : 32;
}

std::string model_cfg(ModelId id, const ModelOptions& options) {
    if (options.input_size % model_stride(id) != 0) {
        throw std::invalid_argument("model_cfg: input size " +
                                    std::to_string(options.input_size) +
                                    " not divisible by stride " +
                                    std::to_string(model_stride(id)));
    }
    switch (id) {
        case ModelId::kTinyYoloVoc: {
            constexpr int f[8] = {16, 32, 64, 128, 256, 512, 1024, 1024};
            return tiny_family_cfg(options, f);
        }
        case ModelId::kTinyYoloNet: {
            constexpr int f[8] = {8, 16, 32, 64, 128, 256, 256, 256};
            return tiny_family_cfg(options, f);
        }
        case ModelId::kSmallYoloV3: {
            constexpr int f[8] = {4, 8, 16, 32, 64, 64, 64, 64};
            return tiny_family_cfg(options, f);
        }
        case ModelId::kDroNet:
            return dronet_cfg(options);
    }
    throw std::invalid_argument("model_cfg: bad id");
}

Network build_model(ModelId id, const ModelOptions& options) {
    return parse_cfg(model_cfg(id, options));
}

}  // namespace dronet
