// The four CNN architectures evaluated in the paper (Fig. 1 / Fig. 2).
//
// All are single-shot YOLO-style detectors with 9 convolutional layers and
// 4-6 max-pooling layers (§III.C). Exact per-layer filter counts follow the
// paper's design rules:
//
//  * TinyYoloVoc  - the unmodified Tiny-YOLO reference adapted to 1 class;
//                   the accuracy anchor and the slowest model.
//  * TinyYoloNet  - Tiny-YOLO with the filter pyramid thinned (paper: ~10x
//                   faster than TinyYoloVoc at 386 with modest accuracy loss).
//  * SmallYoloV3  - the aggressively narrowed variant; highest frame-rate of
//                   all models, but with a substantial sensitivity drop.
//  * DroNet       - the paper's proposed model (Fig. 2): alternating 3x3 and
//                   1x1 convolutions with 4 max-pool stages (stride 16),
//                   ~17x fewer FLOPs and ~500x fewer parameters than
//                   TinyYoloVoc.
//
// Models are emitted as darknet cfg text and built through the cfg parser,
// so the zoo also exercises the config pipeline end to end.
#pragma once

#include <cstdint>
#include <string>
#include <vector>

#include "nn/network.hpp"

namespace dronet {

enum class ModelId {
    kTinyYoloVoc,
    kTinyYoloNet,
    kSmallYoloV3,
    kDroNet,
};

[[nodiscard]] std::vector<ModelId> all_models();
[[nodiscard]] std::string to_string(ModelId id);
/// Parses a model name ("DroNet", "TinyYoloVoc", ...); case-sensitive.
/// Throws std::invalid_argument on unknown names.
[[nodiscard]] ModelId model_from_string(const std::string& name);

/// Downsampling factor input->detection grid (32 for the Tiny-YOLO family,
/// 16 for DroNet).
[[nodiscard]] int model_stride(ModelId id);

struct ModelOptions {
    int input_size = 416;      ///< square network input (paper sweeps 352-608)
    int classes = 1;           ///< top-view vehicles only in the paper
    int batch = 1;
    std::uint64_t seed = 0x5eed;
    /// Multiplier on every hidden filter count (min 4 filters). 1.0 builds
    /// the paper architecture; smaller values build reduced-capacity models
    /// used for CPU-budget training runs. Relative capacity ordering across
    /// the four models is preserved at any fixed scale.
    float filter_scale = 1.0f;
    /// Training hyper-parameters copied into [net].
    float learning_rate = 1e-3f;
    float momentum = 0.9f;
    float decay = 5e-4f;
    int burn_in = 0;
};

/// Emits the darknet cfg text of the model.
[[nodiscard]] std::string model_cfg(ModelId id, const ModelOptions& options = {});

/// Builds a ready-to-run network (weights He-initialized from options.seed).
[[nodiscard]] Network build_model(ModelId id, const ModelOptions& options = {});

}  // namespace dronet
