#include "models/pretrained.hpp"

#include <cstdlib>
#include <fstream>
#include <stdexcept>
#include <vector>

#include "nn/weights_io.hpp"

namespace dronet {
namespace {

std::vector<std::filesystem::path> search_dirs() {
    // An explicit DRONET_WEIGHTS_DIR is authoritative (no fallbacks), so a
    // caller can point at a specific checkpoint set deterministically.
    // Tools read this at startup before any thread spawns; the process
    // never calls setenv. NOLINTNEXTLINE(concurrency-mt-unsafe)
    if (const char* env = std::getenv("DRONET_WEIGHTS_DIR")) return {env};
    return {"weights", "../weights", "../../weights"};
}

}  // namespace

std::optional<std::filesystem::path> find_weights_dir(ModelId id) {
    const std::string file = to_string(id) + ".weights";
    for (const auto& dir : search_dirs()) {
        std::error_code ec;
        if (std::filesystem::exists(dir / file, ec)) return dir;
    }
    return std::nullopt;
}

PretrainedMeta read_meta(const std::filesystem::path& meta_path) {
    std::ifstream in(meta_path);
    if (!in) throw std::runtime_error("read_meta: cannot open " + meta_path.string());
    PretrainedMeta meta;
    std::string line;
    while (std::getline(in, line)) {
        const auto eq = line.find('=');
        if (eq == std::string::npos) continue;
        const std::string key = line.substr(0, eq);
        const std::string value = line.substr(eq + 1);
        try {
            if (key == "filter_scale") meta.filter_scale = std::stof(value);
            else if (key == "classes") meta.classes = std::stoi(value);
            else if (key == "input_size") meta.input_size = std::stoi(value);
        } catch (const std::exception&) {
            throw std::runtime_error("read_meta: bad value for " + key + " in " +
                                     meta_path.string());
        }
    }
    return meta;
}

void write_meta(const PretrainedMeta& meta, const std::filesystem::path& meta_path) {
    std::ofstream out(meta_path);
    if (!out) throw std::runtime_error("write_meta: cannot open " + meta_path.string());
    out << "filter_scale=" << meta.filter_scale << "\n"
        << "classes=" << meta.classes << "\n"
        << "input_size=" << meta.input_size << "\n";
}

std::optional<Network> load_pretrained(ModelId id, int input_size) {
    const auto dir = find_weights_dir(id);
    if (!dir) return std::nullopt;
    const PretrainedMeta meta = read_meta(*dir / (to_string(id) + ".meta"));
    ModelOptions options;
    options.input_size = input_size > 0 ? input_size : meta.input_size;
    options.classes = meta.classes;
    options.filter_scale = meta.filter_scale;
    Network net = build_model(id, options);
    load_weights(net, *dir / (to_string(id) + ".weights"));
    return net;
}

}  // namespace dronet
