// Locating and loading pretrained checkpoints.
//
// The training tool (tools/train_models) writes `<Model>.weights` +
// `<Model>.meta` pairs into a weights directory; benches and examples load
// them through this helper so figure regeneration does not retrain. If
// $DRONET_WEIGHTS_DIR is set it is the only directory searched; otherwise
// ./weights, ../weights, ../../weights are tried in order.
#pragma once

#include <filesystem>
#include <optional>

#include "models/model_zoo.hpp"

namespace dronet {

struct PretrainedMeta {
    float filter_scale = 1.0f;
    int classes = 1;
    int input_size = 192;  ///< resolution the checkpoint was last trained at
};

/// Directory containing `<Model>.weights` for the given model, if any.
[[nodiscard]] std::optional<std::filesystem::path> find_weights_dir(ModelId id);

/// Parses `<Model>.meta` (key=value lines). Throws on malformed content.
[[nodiscard]] PretrainedMeta read_meta(const std::filesystem::path& meta_path);

/// Writes a meta file next to a checkpoint.
void write_meta(const PretrainedMeta& meta, const std::filesystem::path& meta_path);

/// Builds the model with the checkpoint's recorded options and loads its
/// weights. Returns nullopt when no checkpoint is found.
[[nodiscard]] std::optional<Network> load_pretrained(ModelId id,
                                                     int input_size = 0 /*0 = meta*/);

}  // namespace dronet
