#include "nn/activation.hpp"

#include <cmath>
#include <stdexcept>

#include "simd/kernels.hpp"

namespace dronet {

Activation activation_from_string(const std::string& name) {
    if (name == "linear") return Activation::kLinear;
    if (name == "leaky") return Activation::kLeaky;
    if (name == "relu") return Activation::kRelu;
    if (name == "logistic") return Activation::kLogistic;
    throw std::invalid_argument("unknown activation: " + name);
}

std::string to_string(Activation a) {
    switch (a) {
        case Activation::kLinear: return "linear";
        case Activation::kLeaky: return "leaky";
        case Activation::kRelu: return "relu";
        case Activation::kLogistic: return "logistic";
    }
    return "linear";
}

float activate(Activation a, float x) noexcept {
    switch (a) {
        case Activation::kLinear: return x;
        case Activation::kLeaky: return x > 0 ? x : 0.1f * x;
        case Activation::kRelu: return x > 0 ? x : 0;
        case Activation::kLogistic: return 1.0f / (1.0f + std::exp(-x));
    }
    return x;
}

float activation_gradient(Activation a, float y) noexcept {
    switch (a) {
        case Activation::kLinear: return 1.0f;
        case Activation::kLeaky: return y > 0 ? 1.0f : 0.1f;
        case Activation::kRelu: return y > 0 ? 1.0f : 0.0f;
        case Activation::kLogistic: return y * (1.0f - y);
    }
    return 1.0f;
}

void apply_activation(Activation a, std::span<float> x) noexcept {
    if (a == Activation::kLinear) return;
    // Leaky and relu dominate inference (every conv layer); both dispatch to
    // the vectorized row kernels, bit-exact with the scalar activate() loop.
    if (a == Activation::kLeaky) {
        simd::kernels().leaky_relu(x.data(), x.size());
        return;
    }
    if (a == Activation::kRelu) {
        simd::kernels().relu(x.data(), x.size());
        return;
    }
    for (float& v : x) v = activate(a, v);
}

void apply_activation_gradient(Activation a, std::span<const float> y,
                               std::span<float> delta) noexcept {
    if (a == Activation::kLinear) return;
    for (std::size_t i = 0; i < delta.size(); ++i) {
        delta[i] *= activation_gradient(a, y[i]);
    }
}

}  // namespace dronet
