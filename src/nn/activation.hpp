// Layer activation functions.
//
// The DroNet family uses leaky ReLU (slope 0.1) in every hidden convolution
// and linear activation on the detection head, matching the darknet configs.
#pragma once

#include <span>
#include <string>

namespace dronet {

enum class Activation {
    kLinear,
    kLeaky,
    kRelu,
    kLogistic,
};

/// Parses a darknet cfg activation name ("leaky", "linear", "relu",
/// "logistic"). Throws std::invalid_argument on unknown names.
[[nodiscard]] Activation activation_from_string(const std::string& name);
[[nodiscard]] std::string to_string(Activation a);

/// y = f(x) applied elementwise in place.
void apply_activation(Activation a, std::span<float> x) noexcept;

/// delta *= f'(x) where `y` holds the *activated* outputs. All supported
/// activations have derivatives expressible in terms of their outputs.
void apply_activation_gradient(Activation a, std::span<const float> y,
                               std::span<float> delta) noexcept;

/// Scalar versions (used by the region layer on individual entries).
[[nodiscard]] float activate(Activation a, float x) noexcept;
[[nodiscard]] float activation_gradient(Activation a, float y) noexcept;

}  // namespace dronet
