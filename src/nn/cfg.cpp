#include "nn/cfg.hpp"

#include <fstream>
#include <iostream>
#include <sstream>
#include <stdexcept>

#include "analysis/validate.hpp"

namespace dronet {

Network parse_cfg(const std::string& text) {
    const std::vector<CfgSection> sections = parse_cfg_sections(text);
    const ValidationReport report = validate_network(sections);
    for (const Diagnostic& d : report.diagnostics) {
        if (d.severity == Severity::kWarning) {
            std::cerr << "dronet: cfg " << d.str() << "\n";
        }
    }
    if (!report.ok()) {
        throw std::invalid_argument("cfg validation failed:\n" + report.str());
    }
    const CfgSection& net_sec = sections[0];
    NetConfig nc;
    nc.width = net_sec.get_int("width", nc.width);
    nc.height = net_sec.get_int("height", nc.height);
    nc.channels = net_sec.get_int("channels", nc.channels);
    nc.batch = net_sec.get_int("batch", nc.batch);
    nc.learning_rate = net_sec.get_float("learning_rate", nc.learning_rate);
    nc.momentum = net_sec.get_float("momentum", nc.momentum);
    nc.decay = net_sec.get_float("decay", nc.decay);
    nc.burn_in = net_sec.get_int("burn_in", nc.burn_in);
    nc.max_batches = net_sec.get_int("max_batches", 0);
    nc.seed = static_cast<std::uint64_t>(net_sec.get_int("seed", 0x5eed));
    const std::vector<int> steps = net_sec.get_int_list("steps");
    const std::vector<float> scales = net_sec.get_float_list("scales");
    if (steps.size() != scales.size()) {
        throw std::invalid_argument("cfg [net]: steps/scales length mismatch");
    }
    for (std::size_t i = 0; i < steps.size(); ++i) {
        nc.lr_steps.push_back({steps[i], scales[i]});
    }

    Network net(nc);
    for (std::size_t i = 1; i < sections.size(); ++i) {
        const CfgSection& s = sections[i];
        if (s.name == "convolutional" || s.name == "conv") {
            ConvConfig cc;
            cc.filters = s.get_int("filters", 1);
            cc.ksize = s.get_int("size", 3);
            cc.stride = s.get_int("stride", 1);
            // darknet: pad=1 selects "same" padding (size/2); padding=N is explicit.
            cc.pad = s.has("padding") ? s.get_int("padding", 0)
                                      : (s.get_int("pad", 0) != 0 ? cc.ksize / 2 : 0);
            cc.batch_normalize = s.get_int("batch_normalize", 0) != 0;
            cc.activation = activation_from_string(s.get_string("activation", "logistic"));
            net.add_conv(cc);
        } else if (s.name == "maxpool") {
            MaxPoolConfig mc;
            mc.size = s.get_int("size", 2);
            mc.stride = s.get_int("stride", mc.size);
            mc.padding = s.has("padding") ? s.get_int("padding", -1) : -1;
            net.add_maxpool(mc);
        } else if (s.name == "region") {
            RegionConfig rc;
            rc.classes = s.get_int("classes", 1);
            rc.coords = s.get_int("coords", 4);
            rc.num = s.get_int("num", 5);
            rc.anchors = s.get_float_list("anchors");
            if (rc.anchors.empty()) {
                rc.anchors.assign(static_cast<std::size_t>(2 * rc.num), 1.0f);
            }
            rc.object_scale = s.get_float("object_scale", rc.object_scale);
            rc.noobject_scale = s.get_float("noobject_scale", rc.noobject_scale);
            rc.class_scale = s.get_float("class_scale", rc.class_scale);
            rc.coord_scale = s.get_float("coord_scale", rc.coord_scale);
            rc.thresh = s.get_float("thresh", rc.thresh);
            rc.rescore = s.get_int("rescore", 1) != 0;
            rc.bias_match_batches = s.get_int("bias_match_batches", 12800);
            net.add_region(rc);
        } else if (s.name == "avgpool") {
            net.add_avgpool();
        } else if (s.name == "dropout") {
            net.add_dropout(s.get_float("probability", 0.5f));
        } else if (s.name == "upsample") {
            net.add_upsample(s.get_int("stride", 2));
        } else if (s.name == "route") {
            std::vector<int> raw = s.get_int_list("layers");
            if (raw.empty()) throw std::invalid_argument("cfg [route]: missing layers=");
            const int self = static_cast<int>(net.num_layers());
            for (int& idx : raw) {
                if (idx < 0) idx += self;  // darknet relative indexing
            }
            net.add_route(raw);
        } else {
            throw std::invalid_argument("cfg: unsupported section [" + s.name + "]");
        }
    }
    return net;
}

Network load_cfg_file(const std::filesystem::path& path) {
    std::ifstream in(path);
    if (!in) throw std::runtime_error("load_cfg_file: cannot open " + path.string());
    std::ostringstream buf;
    buf << in.rdbuf();
    return parse_cfg(buf.str());
}

std::string network_to_cfg(const Network& net) {
    std::ostringstream os;
    const NetConfig& nc = net.config();
    os << "[net]\n"
       << "batch=" << nc.batch << "\n"
       << "width=" << nc.width << "\n"
       << "height=" << nc.height << "\n"
       << "channels=" << nc.channels << "\n"
       << "learning_rate=" << nc.learning_rate << "\n"
       << "momentum=" << nc.momentum << "\n"
       << "decay=" << nc.decay << "\n"
       << "burn_in=" << nc.burn_in << "\n";
    if (nc.max_batches > 0) os << "max_batches=" << nc.max_batches << "\n";
    if (!nc.lr_steps.empty()) {
        os << "policy=steps\nsteps=";
        for (std::size_t i = 0; i < nc.lr_steps.size(); ++i) {
            os << (i ? "," : "") << nc.lr_steps[i].at_batch;
        }
        os << "\nscales=";
        for (std::size_t i = 0; i < nc.lr_steps.size(); ++i) {
            os << (i ? "," : "") << nc.lr_steps[i].scale;
        }
        os << "\n";
    }
    for (std::size_t i = 0; i < net.num_layers(); ++i) {
        const Layer& l = net.layer(static_cast<int>(i));
        os << "\n";
        switch (l.kind()) {
            case LayerKind::kConvolutional: {
                const auto& conv = dynamic_cast<const ConvolutionalLayer&>(l);
                const ConvConfig& c = conv.config();
                os << "[convolutional]\n";
                if (c.batch_normalize) os << "batch_normalize=1\n";
                os << "filters=" << c.filters << "\n"
                   << "size=" << c.ksize << "\n"
                   << "stride=" << c.stride << "\n"
                   << "padding=" << c.pad << "\n"
                   << "activation=" << to_string(c.activation) << "\n";
                break;
            }
            case LayerKind::kMaxPool: {
                const auto& pool = dynamic_cast<const MaxPoolLayer&>(l);
                os << "[maxpool]\n"
                   << "size=" << pool.config().size << "\n"
                   << "stride=" << pool.config().stride << "\n";
                if (pool.config().padding >= 0) os << "padding=" << pool.config().padding << "\n";
                break;
            }
            case LayerKind::kRegion: {
                const auto& region = dynamic_cast<const RegionLayer&>(l);
                const RegionConfig& r = region.config();
                os << "[region]\nanchors=";
                for (std::size_t a = 0; a < r.anchors.size(); ++a) {
                    os << (a ? "," : "") << r.anchors[a];
                }
                os << "\nclasses=" << r.classes << "\ncoords=" << r.coords
                   << "\nnum=" << r.num << "\nobject_scale=" << r.object_scale
                   << "\nnoobject_scale=" << r.noobject_scale
                   << "\nclass_scale=" << r.class_scale
                   << "\ncoord_scale=" << r.coord_scale << "\nthresh=" << r.thresh
                   << "\nrescore=" << (r.rescore ? 1 : 0)
                   << "\nbias_match_batches=" << r.bias_match_batches << "\n";
                break;
            }
            case LayerKind::kUpsample: {
                const auto& up = dynamic_cast<const UpsampleLayer&>(l);
                os << "[upsample]\nstride=" << up.stride() << "\n";
                break;
            }
            case LayerKind::kRoute: {
                const auto& route = dynamic_cast<const RouteLayer&>(l);
                os << "[route]\nlayers=";
                const auto& srcs = route.sources();
                for (std::size_t a = 0; a < srcs.size(); ++a) os << (a ? "," : "") << srcs[a];
                os << "\n";
                break;
            }
            case LayerKind::kAvgPool:
                os << "[avgpool]\n";
                break;
            case LayerKind::kDropout: {
                const auto& drop = dynamic_cast<const DropoutLayer&>(l);
                os << "[dropout]\nprobability=" << drop.probability() << "\n";
                break;
            }
        }
    }
    return os.str();
}

}  // namespace dronet
