// Darknet .cfg configuration language: parser and emitter.
//
// The paper's models are darknet configs; this module reads the same INI-like
// dialect ([section] headers, key=value options, '#' comments) and builds a
// Network. The emitter produces canonical cfg text so models can round-trip
// (used by the model zoo, the persistence layer, and the fixpoint tests).
#pragma once

#include <filesystem>
#include <map>
#include <string>
#include <vector>

#include "nn/network.hpp"

namespace dronet {

/// One parsed [section] with its options.
struct CfgSection {
    std::string name;                         ///< e.g. "convolutional"
    std::map<std::string, std::string> options;

    [[nodiscard]] bool has(const std::string& key) const;
    /// Typed getters with defaults; throw std::invalid_argument on parse
    /// failure of a present value.
    [[nodiscard]] int get_int(const std::string& key, int fallback) const;
    [[nodiscard]] float get_float(const std::string& key, float fallback) const;
    [[nodiscard]] std::string get_string(const std::string& key,
                                         const std::string& fallback) const;
    [[nodiscard]] std::vector<float> get_float_list(const std::string& key) const;
    [[nodiscard]] std::vector<int> get_int_list(const std::string& key) const;
};

/// Parses cfg text into raw sections. Throws on syntax errors (option before
/// any section, malformed key=value).
[[nodiscard]] std::vector<CfgSection> parse_cfg_sections(const std::string& text);

/// Builds a Network from cfg text. The first section must be [net] (or
/// [network]). Throws std::invalid_argument on unknown sections/activations
/// or inconsistent geometry.
[[nodiscard]] Network parse_cfg(const std::string& text);

/// Reads a cfg file from disk and builds the network.
[[nodiscard]] Network load_cfg_file(const std::filesystem::path& path);

/// Emits canonical cfg text reproducing `net`'s structure and hyper-params.
[[nodiscard]] std::string network_to_cfg(const Network& net);

}  // namespace dronet
