// Darknet .cfg configuration language: parser and emitter.
//
// The paper's models are darknet configs; this module reads the same INI-like
// dialect ([section] headers, key=value options, '#' comments) and builds a
// Network. The emitter produces canonical cfg text so models can round-trip
// (used by the model zoo, the persistence layer, and the fixpoint tests).
#pragma once

#include <filesystem>
#include <string>
#include <vector>

#include "analysis/cfg_sections.hpp"
#include "nn/network.hpp"

namespace dronet {

/// Builds a Network from cfg text. The first section must be [net] (or
/// [network]). The text is first checked by the static validator
/// (analysis/validate.hpp): hard errors throw std::invalid_argument carrying
/// the full diagnostic report, warnings are logged to stderr.
[[nodiscard]] Network parse_cfg(const std::string& text);

/// Reads a cfg file from disk and builds the network.
[[nodiscard]] Network load_cfg_file(const std::filesystem::path& path);

/// Emits canonical cfg text reproducing `net`'s structure and hyper-params.
[[nodiscard]] std::string network_to_cfg(const Network& net);

}  // namespace dronet
