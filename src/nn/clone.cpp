#include "nn/clone.hpp"

#include <stdexcept>
#include <string>

#include "nn/cfg.hpp"

namespace dronet {

Network clone_network(const Network& src) {
    Network dst = parse_cfg(network_to_cfg(src));
    if (dst.num_layers() != src.num_layers()) {
        throw std::logic_error("clone_network: cfg round-trip changed layer count");
    }
    // params() and serialized_stats() are non-const accessors (they hand out
    // mutable views for the optimizer), but cloning only reads the source.
    Network& mutable_src = const_cast<Network&>(src);
    for (std::size_t i = 0; i < src.num_layers(); ++i) {
        const int idx = static_cast<int>(i);
        Layer& from = mutable_src.layer(idx);
        Layer& to = dst.layer(idx);
        const auto from_params = from.params();
        const auto to_params = to.params();
        if (from_params.size() != to_params.size()) {
            throw std::logic_error("clone_network: layer " + std::to_string(i) +
                                   " param block count mismatch");
        }
        for (std::size_t p = 0; p < from_params.size(); ++p) {
            if (from_params[p]->size() != to_params[p]->size()) {
                throw std::logic_error("clone_network: layer " + std::to_string(i) +
                                       " param size mismatch (" + from_params[p]->name + ")");
            }
            to_params[p]->v = from_params[p]->v;
            to_params[p]->g = from_params[p]->g;
            to_params[p]->m = from_params[p]->m;
        }
        const auto from_stats = from.serialized_stats();
        const auto to_stats = to.serialized_stats();
        if (from_stats.size() != to_stats.size()) {
            throw std::logic_error("clone_network: layer " + std::to_string(i) +
                                   " stats block count mismatch");
        }
        for (std::size_t s = 0; s < from_stats.size(); ++s) {
            *to_stats[s] = *from_stats[s];
        }
    }
    dst.set_batch_num(src.batch_num());
    if (const RegionLayer* from_head = src.region()) {
        dst.region()->set_seen(from_head->seen());
    }
    // After the weight copy, so the clone's halves encode the copied floats.
    if (src.fp16()) dst.set_fp16(true);
    return dst;
}

}  // namespace dronet
