// Network replication for multi-worker serving.
//
// A Network owns mutable per-forward state (layer activations, the shared
// im2col workspace), so one instance cannot run on two threads at once.
// clone_network() builds an independent replica — same architecture, same
// weights, same batch-norm statistics — by round-tripping the structure
// through the canonical cfg emitter/parser and then copying every parameter
// block. Replicas share nothing, so each serving worker can forward its own
// copy without synchronization.
#pragma once

#include "nn/network.hpp"

namespace dronet {

/// Deep-copies `src`: architecture (via cfg round-trip), every trainable
/// parameter block (values, gradients, momentum), serialized batch-norm
/// statistics, the batch counter and the region layer's `seen` counter.
/// Throws std::logic_error if the rebuilt structure does not match `src`
/// (which would indicate a cfg emitter/parser bug).
[[nodiscard]] Network clone_network(const Network& src);

}  // namespace dronet
