#include "nn/conv_layer.hpp"

#include <cmath>
#include <sstream>
#include <stdexcept>

#include "nn/network.hpp"
#include "simd/half.hpp"
#include "tensor/gemm.hpp"
#include "tensor/ops.hpp"

namespace dronet {

ConvolutionalLayer::ConvolutionalLayer(const ConvConfig& config, const Shape& input,
                                       Rng& rng)
    : config_(config) {
    if (config.filters <= 0 || config.ksize <= 0 || config.stride <= 0 || config.pad < 0) {
        throw std::invalid_argument("ConvolutionalLayer: invalid config");
    }
    const int fan_in = input.c * config.ksize * config.ksize;
    weights_ = Param(static_cast<std::size_t>(config.filters) * fan_in, true, "weights");
    biases_ = Param(static_cast<std::size_t>(config.filters), false, "biases");
    rng.fill_he(weights_.v, fan_in);
    if (config.batch_normalize) {
        scales_ = Param(static_cast<std::size_t>(config.filters), false, "scales");
        std::fill(scales_.v.begin(), scales_.v.end(), 1.0f);
        rolling_mean_.assign(static_cast<std::size_t>(config.filters), 0.0f);
        rolling_variance_.assign(static_cast<std::size_t>(config.filters), 1.0f);
        mean_.assign(static_cast<std::size_t>(config.filters), 0.0f);
        variance_.assign(static_cast<std::size_t>(config.filters), 0.0f);
    }
    setup(input);
}

void ConvolutionalLayer::setup(const Shape& input) {
    input_shape_ = input;
    geo_ = ConvGeometry{input.c, input.h, input.w, config_.ksize, config_.stride,
                        config_.pad};
    if (geo_.out_h() <= 0 || geo_.out_w() <= 0) {
        throw std::invalid_argument("ConvolutionalLayer: output collapses to zero for input " +
                                    input.str());
    }
    output_shape_ = Shape{input.n, config_.filters, geo_.out_h(), geo_.out_w()};
    output_.resize(output_shape_);
    delta_.resize(output_shape_);
    if (config_.batch_normalize) x_norm_.resize(output_shape_);
}

std::string ConvolutionalLayer::describe() const {
    std::ostringstream os;
    os << "conv " << config_.filters << " " << config_.ksize << "x" << config_.ksize
       << "/" << config_.stride << "  " << input_shape_.w << "x" << input_shape_.h
       << "x" << input_shape_.c << " -> " << output_shape_.w << "x" << output_shape_.h
       << "x" << output_shape_.c;
    if (config_.batch_normalize) os << " bn";
    os << " " << to_string(config_.activation);
    return os.str();
}

std::vector<Param*> ConvolutionalLayer::params() {
    std::vector<Param*> out{&weights_, &biases_};
    if (config_.batch_normalize) out.push_back(&scales_);
    return out;
}

std::vector<std::vector<float>*> ConvolutionalLayer::serialized_stats() {
    if (!config_.batch_normalize) return {};
    return {&rolling_mean_, &rolling_variance_};
}

std::int64_t ConvolutionalLayer::flops() const {
    // 2 MACs-per-multiply convention; plus per-element bias/BN/activation.
    const std::int64_t out_hw = output_shape_.hw();
    const std::int64_t macs = out_hw * config_.filters *
                              static_cast<std::int64_t>(input_shape_.c) *
                              config_.ksize * config_.ksize;
    return 2 * macs + 3 * out_hw * config_.filters;
}

std::size_t ConvolutionalLayer::workspace_bytes() const {
    if (config_.ksize == 1 && config_.stride == 1 && config_.pad == 0) return 0;
    return sizeof(float) * static_cast<std::size_t>(geo_.col_rows()) *
           static_cast<std::size_t>(geo_.col_cols());
}

std::int64_t ConvolutionalLayer::memory_bytes() const {
    return Layer::memory_bytes() +
           static_cast<std::int64_t>(sizeof(float)) *
               static_cast<std::int64_t>(weights_.size() + 3 * biases_.size());
}

void ConvolutionalLayer::batchnorm_forward(bool train) {
    const int batch = output_shape_.n;
    const int channels = output_shape_.c;
    const int spatial = static_cast<int>(output_shape_.hw());
    auto out = output_.span();
    if (train) {
        channel_mean(out, batch, channels, spatial, mean_);
        channel_variance(out, mean_, batch, channels, spatial, variance_);
        for (int c = 0; c < channels; ++c) {
            rolling_mean_[static_cast<std::size_t>(c)] =
                kBnMomentum * rolling_mean_[static_cast<std::size_t>(c)] +
                (1 - kBnMomentum) * mean_[static_cast<std::size_t>(c)];
            rolling_variance_[static_cast<std::size_t>(c)] =
                kBnMomentum * rolling_variance_[static_cast<std::size_t>(c)] +
                (1 - kBnMomentum) * variance_[static_cast<std::size_t>(c)];
        }
        normalize_channels(out, mean_, variance_, batch, channels, spatial, kBnEps);
        copy(out, x_norm_.span());
    } else {
        normalize_channels(out, rolling_mean_, rolling_variance_, batch, channels,
                           spatial, kBnEps);
    }
    scale_channels(out, scales_.v, batch, channels, spatial);
}

void ConvolutionalLayer::forward(const Tensor& input, Network& net, bool train) {
    if (input.shape() != input_shape_) {
        throw std::invalid_argument("ConvolutionalLayer::forward: shape mismatch");
    }
    if (train && fp16_storage()) {
        throw std::logic_error(
            "ConvolutionalLayer::forward: fp16 storage is inference-only");
    }
    const int out_hw = static_cast<int>(output_shape_.hw());
    const int col_rows = geo_.col_rows();
    const bool is_1x1 = config_.ksize == 1 && config_.stride == 1 && config_.pad == 0;
    for (int b = 0; b < input.shape().n; ++b) {
        const float* in_b = input.data() + static_cast<std::int64_t>(b) * input.shape().chw();
        float* out_b = output_.data() + static_cast<std::int64_t>(b) * output_shape_.chw();
        const float* col = in_b;
        if (!is_1x1) {
            float* ws = net.workspace();
            im2col_mt(in_b, geo_, ws, gemm_threads());
            col = ws;
        }
        if (fp16_storage()) {
            gemm_halfw(config_.filters, out_hw, col_rows, weights_h_.data(),
                       col_rows, col, out_hw, out_b, out_hw);
        } else {
            gemm(false, false, config_.filters, out_hw, col_rows, 1.0f,
                 weights_.v.data(), col_rows, col, out_hw, 0.0f, out_b, out_hw);
        }
    }
    if (config_.batch_normalize) batchnorm_forward(train);
    add_channel_bias(output_.span(), biases_.v, output_shape_.n, output_shape_.c,
                     static_cast<int>(output_shape_.hw()));
    apply_activation(config_.activation, output_.span());
    // Half activation storage: round the layer output through fp16 precision,
    // exactly what writing halves and re-widening for the next layer costs.
    if (fp16_storage()) simd::fp16_round_trip(output_.span());
}

void ConvolutionalLayer::batchnorm_backward() {
    const int batch = output_shape_.n;
    const int channels = output_shape_.c;
    const int spatial = static_cast<int>(output_shape_.hw());
    const float count = static_cast<float>(batch) * static_cast<float>(spatial);
    for (int c = 0; c < channels; ++c) {
        // Accumulate dgamma and the two means needed for dx.
        double sum_delta = 0.0;
        double sum_delta_xnorm = 0.0;
        for (int b = 0; b < batch; ++b) {
            const std::int64_t base = (static_cast<std::int64_t>(b) * channels + c) * spatial;
            for (int i = 0; i < spatial; ++i) {
                sum_delta += delta_[base + i];
                sum_delta_xnorm +=
                    static_cast<double>(delta_[base + i]) * x_norm_[base + i];
            }
        }
        scales_.g[static_cast<std::size_t>(c)] += static_cast<float>(sum_delta_xnorm);
        const float mean_delta = static_cast<float>(sum_delta) / count;
        const float mean_delta_xnorm = static_cast<float>(sum_delta_xnorm) / count;
        const float gamma_inv_std =
            scales_.v[static_cast<std::size_t>(c)] /
            std::sqrt(variance_[static_cast<std::size_t>(c)] + kBnEps);
        for (int b = 0; b < batch; ++b) {
            const std::int64_t base = (static_cast<std::int64_t>(b) * channels + c) * spatial;
            for (int i = 0; i < spatial; ++i) {
                delta_[base + i] = gamma_inv_std * (delta_[base + i] - mean_delta -
                                                    x_norm_[base + i] * mean_delta_xnorm);
            }
        }
    }
}

void ConvolutionalLayer::backward(const Tensor& input, Tensor* input_delta, Network& net) {
    apply_activation_gradient(config_.activation, output_.span(), delta_.span());
    backward_channel_bias(biases_.g, delta_.span(), output_shape_.n, output_shape_.c,
                          static_cast<int>(output_shape_.hw()));
    if (config_.batch_normalize) batchnorm_backward();

    const int out_hw = static_cast<int>(output_shape_.hw());
    const int col_rows = geo_.col_rows();
    const bool is_1x1 = config_.ksize == 1 && config_.stride == 1 && config_.pad == 0;
    for (int b = 0; b < input.shape().n; ++b) {
        const float* in_b = input.data() + static_cast<std::int64_t>(b) * input.shape().chw();
        const float* delta_b =
            delta_.data() + static_cast<std::int64_t>(b) * output_shape_.chw();
        // dW += delta_b * col^T
        const float* col = in_b;
        if (!is_1x1) {
            float* ws = net.workspace();
            im2col_mt(in_b, geo_, ws, gemm_threads());
            col = ws;
        }
        gemm(false, true, config_.filters, col_rows, out_hw, 1.0f, delta_b, out_hw, col,
             out_hw, 1.0f, weights_.g.data(), col_rows);
        if (input_delta != nullptr) {
            float* in_delta_b =
                input_delta->data() + static_cast<std::int64_t>(b) * input.shape().chw();
            if (is_1x1) {
                // dcol aliases the input plane directly: accumulate W^T * delta.
                gemm(true, false, col_rows, out_hw, config_.filters, 1.0f,
                     weights_.v.data(), col_rows, delta_b, out_hw, 1.0f, in_delta_b,
                     out_hw);
            } else {
                float* ws = net.workspace();
                gemm(true, false, col_rows, out_hw, config_.filters, 1.0f,
                     weights_.v.data(), col_rows, delta_b, out_hw, 0.0f, ws, out_hw);
                col2im(ws, geo_, in_delta_b);
            }
        }
    }
}

void ConvolutionalLayer::fold_batchnorm() {
    if (!config_.batch_normalize) return;
    const int fan_in = input_shape_.c * config_.ksize * config_.ksize;
    for (int f = 0; f < config_.filters; ++f) {
        const float inv_std =
            1.0f / std::sqrt(rolling_variance_[static_cast<std::size_t>(f)] + kBnEps);
        const float gamma = scales_.v[static_cast<std::size_t>(f)];
        const float scale = gamma * inv_std;
        for (int i = 0; i < fan_in; ++i) {
            weights_.v[static_cast<std::size_t>(f) * fan_in + i] *= scale;
        }
        // beta - gamma * mean / std becomes the plain bias.
        biases_.v[static_cast<std::size_t>(f)] -=
            rolling_mean_[static_cast<std::size_t>(f)] * scale;
    }
    config_.batch_normalize = false;
    scales_ = Param();
    rolling_mean_.clear();
    rolling_variance_.clear();
    x_norm_ = Tensor();
    // Folding rewrote the float weights; refresh the half copies.
    if (fp16_storage()) set_fp16_storage(true);
}

void ConvolutionalLayer::set_fp16_storage(bool on) {
    if (!on) {
        weights_h_.clear();
        return;
    }
    weights_h_.resize(weights_.size());
    simd::floats_to_halfs(weights_.v.data(), weights_h_.data(), weights_.size());
}

void ConvolutionalLayer::forward_direct(const Tensor& input, Tensor& out) const {
    if (input.shape() != input_shape_) {
        throw std::invalid_argument("forward_direct: shape mismatch");
    }
    if (config_.batch_normalize) {
        throw std::logic_error("forward_direct: fold batch norm first");
    }
    out.resize(output_shape_);
    const int k = config_.ksize;
    for (int b = 0; b < input.shape().n; ++b) {
        for (int f = 0; f < config_.filters; ++f) {
            const float* w = weights_.v.data() +
                             static_cast<std::int64_t>(f) * input_shape_.c * k * k;
            for (int oy = 0; oy < output_shape_.h; ++oy) {
                for (int ox = 0; ox < output_shape_.w; ++ox) {
                    float acc = biases_.v[static_cast<std::size_t>(f)];
                    for (int c = 0; c < input_shape_.c; ++c) {
                        for (int ky = 0; ky < k; ++ky) {
                            const int iy = oy * config_.stride + ky - config_.pad;
                            if (iy < 0 || iy >= input_shape_.h) continue;
                            for (int kx = 0; kx < k; ++kx) {
                                const int ix = ox * config_.stride + kx - config_.pad;
                                if (ix < 0 || ix >= input_shape_.w) continue;
                                acc += w[(c * k + ky) * k + kx] *
                                       input[input.index(b, c, iy, ix)];
                            }
                        }
                    }
                    out[out.index(b, f, oy, ox)] = activate(config_.activation, acc);
                }
            }
        }
    }
}

}  // namespace dronet
