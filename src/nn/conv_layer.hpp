// 2-D convolution layer with optional batch normalization.
//
// Forward lowers to im2col + GEMM, darknet's CPU execution strategy and the
// dominant cost in every model the paper benchmarks. Training support
// (backward + gradients) implements the full batch-norm backward pass.
#pragma once

#include <cstdint>

#include "nn/activation.hpp"
#include "nn/layer.hpp"
#include "tensor/im2col.hpp"
#include "tensor/rng.hpp"

namespace dronet {

struct ConvConfig {
    int filters = 1;
    int ksize = 3;
    int stride = 1;
    int pad = 0;             ///< pixels of zero padding each side
    bool batch_normalize = false;
    Activation activation = Activation::kLeaky;
};

class ConvolutionalLayer final : public Layer {
  public:
    /// Creates the layer and initializes weights (He init) from `rng`.
    ConvolutionalLayer(const ConvConfig& config, const Shape& input, Rng& rng);

    [[nodiscard]] LayerKind kind() const override { return LayerKind::kConvolutional; }
    [[nodiscard]] std::string describe() const override;
    void setup(const Shape& input) override;
    void forward(const Tensor& input, Network& net, bool train) override;
    void backward(const Tensor& input, Tensor* input_delta, Network& net) override;
    [[nodiscard]] std::vector<Param*> params() override;
    [[nodiscard]] std::vector<std::vector<float>*> serialized_stats() override;
    [[nodiscard]] std::int64_t flops() const override;
    [[nodiscard]] std::size_t workspace_bytes() const override;
    [[nodiscard]] std::int64_t memory_bytes() const override;

    [[nodiscard]] const ConvConfig& config() const noexcept { return config_; }

    /// Folds batch-norm statistics into weights/biases for inference-only
    /// deployment (ablation #3 in DESIGN.md). After folding the layer
    /// behaves identically in eval mode but skips normalization work.
    void fold_batchnorm();

    [[nodiscard]] Param& weights() noexcept { return weights_; }
    [[nodiscard]] const Param& weights() const noexcept { return weights_; }
    [[nodiscard]] Param& biases() noexcept { return biases_; }
    [[nodiscard]] const Param& biases() const noexcept { return biases_; }
    [[nodiscard]] Param& scales() noexcept { return scales_; }
    [[nodiscard]] std::vector<float>& rolling_mean() noexcept { return rolling_mean_; }
    [[nodiscard]] std::vector<float>& rolling_variance() noexcept { return rolling_variance_; }

    /// Direct (non-im2col) reference forward used by tests and the
    /// im2col-vs-direct ablation bench.
    void forward_direct(const Tensor& input, Tensor& out) const;

    /// Inference-only IEEE binary16 storage mode. When on, weights are
    /// re-encoded as halves from the CURRENT float values (call after loading
    /// weights / fold_batchnorm — both re-encode automatically thereafter),
    /// forward runs gemm_halfw on them, and the layer output is rounded
    /// through fp16 precision to model half activation storage. Training
    /// through an fp16 layer throws. Tolerances: docs/vectorization.md.
    void set_fp16_storage(bool on);
    [[nodiscard]] bool fp16_storage() const noexcept { return !weights_h_.empty(); }

  private:
    void batchnorm_forward(bool train);
    void batchnorm_backward();

    ConvConfig config_;
    ConvGeometry geo_;

    Param weights_;
    std::vector<std::uint16_t> weights_h_;  ///< fp16 weight storage (empty = off)
    Param biases_;   ///< beta when batch-normalized, plain bias otherwise
    Param scales_;   ///< gamma (batch-norm only)
    std::vector<float> rolling_mean_;
    std::vector<float> rolling_variance_;

    // Training caches.
    Tensor x_norm_;               ///< normalized pre-scale activations
    std::vector<float> mean_;     ///< batch mean per channel
    std::vector<float> variance_; ///< batch variance per channel
    static constexpr float kBnEps = 1e-5f;
    static constexpr float kBnMomentum = 0.9f;  ///< rolling-average retention
};

}  // namespace dronet
