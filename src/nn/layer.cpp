#include "nn/layer.hpp"

namespace dronet {

std::string to_string(LayerKind kind) {
    switch (kind) {
        case LayerKind::kConvolutional: return "conv";
        case LayerKind::kMaxPool: return "max";
        case LayerKind::kRegion: return "region";
        case LayerKind::kUpsample: return "upsample";
        case LayerKind::kRoute: return "route";
        case LayerKind::kAvgPool: return "avg";
        case LayerKind::kDropout: return "dropout";
    }
    return "?";
}

std::int64_t Layer::param_count() const {
    std::int64_t total = 0;
    for (const Param* p : const_cast<Layer*>(this)->params()) {
        total += static_cast<std::int64_t>(p->size());
    }
    return total;
}

std::int64_t Layer::memory_bytes() const {
    // Activations in + out, single image, float32. Parameter traffic is added
    // by the platform model separately (weights are re-read every frame on
    // cache-starved embedded CPUs).
    return static_cast<std::int64_t>(sizeof(float)) *
           (input_shape_.chw() + output_shape_.chw());
}

}  // namespace dronet
