// Abstract layer interface of the CNN engine.
//
// Layers own their output activation tensor and (during training) a delta
// tensor holding dLoss/dOutput. The Network drives forward/backward passes
// and provides the shared im2col workspace, mirroring darknet's execution
// model which the paper's models were deployed with.
#pragma once

#include <cstdint>
#include <memory>
#include <string>
#include <vector>

#include "nn/optimizer.hpp"
#include "tensor/tensor.hpp"

namespace dronet {

class Network;

enum class LayerKind {
    kConvolutional,
    kMaxPool,
    kRegion,
    kUpsample,
    kRoute,
    kAvgPool,
    kDropout,
};

[[nodiscard]] std::string to_string(LayerKind kind);

/// One trainable parameter block: values, gradient accumulator and momentum
/// buffer share the same length. `decay` marks blocks subject to L2 weight
/// decay (weights yes; biases and batch-norm parameters no, per darknet).
struct Param {
    std::vector<float> v;
    std::vector<float> g;
    std::vector<float> m;
    bool decay = true;
    std::string name;

    explicit Param(std::size_t size = 0, bool apply_decay = true, std::string label = {})
        : v(size, 0.0f), g(size, 0.0f), m(size, 0.0f), decay(apply_decay),
          name(std::move(label)) {}

    [[nodiscard]] std::size_t size() const noexcept { return v.size(); }
};

class Layer {
  public:
    virtual ~Layer() = default;

    Layer(const Layer&) = delete;
    Layer& operator=(const Layer&) = delete;

    [[nodiscard]] virtual LayerKind kind() const = 0;

    /// One-line structural description used by the Fig. 1 reproduction
    /// (e.g. "conv  16 3x3/1  416x416x3 -> 416x416x16").
    [[nodiscard]] virtual std::string describe() const = 0;

    /// Computes the output shape for `input` and (re)allocates buffers.
    /// Called at construction and again by Network::resize().
    virtual void setup(const Shape& input) = 0;

    [[nodiscard]] const Shape& input_shape() const noexcept { return input_shape_; }
    [[nodiscard]] const Shape& output_shape() const noexcept { return output_shape_; }

    /// Runs the layer. `train` enables training-only behaviour (batch-norm
    /// batch statistics, loss computation in the region layer).
    virtual void forward(const Tensor& input, Network& net, bool train) = 0;

    /// Propagates this layer's delta into `input_delta` (accumulating) and
    /// accumulates parameter gradients. `input_delta` may be null for the
    /// first layer.
    virtual void backward(const Tensor& input, Tensor* input_delta, Network& net) = 0;

    [[nodiscard]] const Tensor& output() const noexcept { return output_; }
    [[nodiscard]] Tensor& output() noexcept { return output_; }
    [[nodiscard]] Tensor& delta() noexcept { return delta_; }

    /// Trainable parameter blocks (empty for parameter-free layers).
    [[nodiscard]] virtual std::vector<Param*> params() { return {}; }

    /// Extra non-trainable state serialized with the weights (batch-norm
    /// rolling statistics). Order matters: it defines the file layout.
    [[nodiscard]] virtual std::vector<std::vector<float>*> serialized_stats() { return {}; }

    /// Multiply-accumulate-based FLOP estimate per *single* image forward.
    [[nodiscard]] virtual std::int64_t flops() const = 0;

    /// Trainable parameter count.
    [[nodiscard]] std::int64_t param_count() const;

    /// Bytes of shared workspace required (conv im2col buffer).
    [[nodiscard]] virtual std::size_t workspace_bytes() const { return 0; }

    /// Bytes of activations read + written per single-image forward; feeds
    /// the roofline platform model.
    [[nodiscard]] virtual std::int64_t memory_bytes() const;

  protected:
    Layer() = default;

    Shape input_shape_;
    Shape output_shape_;
    Tensor output_;
    Tensor delta_;
};

}  // namespace dronet
