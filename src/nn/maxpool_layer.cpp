#include "nn/maxpool_layer.hpp"

#include <limits>
#include <sstream>
#include <stdexcept>

namespace dronet {

MaxPoolLayer::MaxPoolLayer(const MaxPoolConfig& config, const Shape& input)
    : config_(config) {
    if (config.size <= 0 || config.stride <= 0) {
        throw std::invalid_argument("MaxPoolLayer: invalid config");
    }
    pad_ = config.padding >= 0 ? config.padding : config.size - 1;
    setup(input);
}

void MaxPoolLayer::setup(const Shape& input) {
    input_shape_ = input;
    const int out_h = (input.h + pad_ - config_.size) / config_.stride + 1;
    const int out_w = (input.w + pad_ - config_.size) / config_.stride + 1;
    if (out_h <= 0 || out_w <= 0) {
        throw std::invalid_argument("MaxPoolLayer: output collapses to zero for input " +
                                    input.str());
    }
    output_shape_ = Shape{input.n, input.c, out_h, out_w};
    output_.resize(output_shape_);
    delta_.resize(output_shape_);
    // Grow-only: forward() writes every element of argmax_ before backward()
    // reads it, so batch-size toggling never needs a realloc or zero-fill.
    const auto needed = static_cast<std::size_t>(output_shape_.size());
    if (argmax_.size() < needed) argmax_.resize(needed, 0);
}

std::string MaxPoolLayer::describe() const {
    std::ostringstream os;
    os << "max " << config_.size << "x" << config_.size << "/" << config_.stride << "  "
       << input_shape_.w << "x" << input_shape_.h << "x" << input_shape_.c << " -> "
       << output_shape_.w << "x" << output_shape_.h << "x" << output_shape_.c;
    return os.str();
}

std::int64_t MaxPoolLayer::flops() const {
    return output_shape_.chw() * config_.size * config_.size;
}

void MaxPoolLayer::forward(const Tensor& input, Network&, bool) {
    if (input.shape() != input_shape_) {
        throw std::invalid_argument("MaxPoolLayer::forward: shape mismatch");
    }
    const int offset = -pad_ / 2;
    std::int64_t out_idx = 0;
    for (int b = 0; b < input_shape_.n; ++b) {
        for (int c = 0; c < input_shape_.c; ++c) {
            for (int oy = 0; oy < output_shape_.h; ++oy) {
                for (int ox = 0; ox < output_shape_.w; ++ox, ++out_idx) {
                    float best = -std::numeric_limits<float>::max();
                    std::int64_t best_idx = -1;
                    for (int ky = 0; ky < config_.size; ++ky) {
                        const int iy = offset + oy * config_.stride + ky;
                        if (iy < 0 || iy >= input_shape_.h) continue;
                        for (int kx = 0; kx < config_.size; ++kx) {
                            const int ix = offset + ox * config_.stride + kx;
                            if (ix < 0 || ix >= input_shape_.w) continue;
                            const std::int64_t idx = input.index(b, c, iy, ix);
                            if (input[idx] > best) {
                                best = input[idx];
                                best_idx = idx;
                            }
                        }
                    }
                    output_[out_idx] = best;
                    argmax_[static_cast<std::size_t>(out_idx)] = best_idx;
                }
            }
        }
    }
}

void MaxPoolLayer::backward(const Tensor&, Tensor* input_delta, Network&) {
    if (input_delta == nullptr) return;
    for (std::int64_t i = 0; i < output_shape_.size(); ++i) {
        const std::int64_t src = argmax_[static_cast<std::size_t>(i)];
        if (src >= 0) (*input_delta)[src] += delta_[i];
    }
}

}  // namespace dronet
