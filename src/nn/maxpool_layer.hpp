// Max-pooling layer.
//
// Follows darknet's geometry exactly (default padding = size-1, applied
// half-before/half-after), including the stride-1 "same size" pool that
// Tiny-YOLO places before its two wide convolutions.
#pragma once

#include <vector>

#include "nn/layer.hpp"

namespace dronet {

struct MaxPoolConfig {
    int size = 2;
    int stride = 2;
    int padding = -1;  ///< -1 selects the darknet default (size - 1)
};

class MaxPoolLayer final : public Layer {
  public:
    MaxPoolLayer(const MaxPoolConfig& config, const Shape& input);

    [[nodiscard]] LayerKind kind() const override { return LayerKind::kMaxPool; }
    [[nodiscard]] std::string describe() const override;
    void setup(const Shape& input) override;
    void forward(const Tensor& input, Network& net, bool train) override;
    void backward(const Tensor& input, Tensor* input_delta, Network& net) override;
    [[nodiscard]] std::int64_t flops() const override;

    [[nodiscard]] const MaxPoolConfig& config() const noexcept { return config_; }

  private:
    MaxPoolConfig config_;
    int pad_ = 0;
    std::vector<std::int64_t> argmax_;  ///< winning input index per output element
};

}  // namespace dronet
