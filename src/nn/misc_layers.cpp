#include "nn/misc_layers.hpp"

#include <sstream>
#include <stdexcept>

namespace dronet {

LayerKind AvgPoolLayer::kind() const { return LayerKind::kAvgPool; }
LayerKind DropoutLayer::kind() const { return LayerKind::kDropout; }

AvgPoolLayer::AvgPoolLayer(const Shape& input) { setup(input); }

void AvgPoolLayer::setup(const Shape& input) {
    input_shape_ = input;
    output_shape_ = Shape{input.n, input.c, 1, 1};
    output_.resize(output_shape_);
    delta_.resize(output_shape_);
}

std::string AvgPoolLayer::describe() const {
    std::ostringstream os;
    os << "avg  " << input_shape_.w << "x" << input_shape_.h << "x" << input_shape_.c
       << " -> 1x1x" << output_shape_.c;
    return os.str();
}

void AvgPoolLayer::forward(const Tensor& input, Network&, bool) {
    if (input.shape() != input_shape_) {
        throw std::invalid_argument("AvgPoolLayer::forward: shape mismatch");
    }
    const std::int64_t spatial = input_shape_.hw();
    const float inv = 1.0f / static_cast<float>(spatial);
    for (int b = 0; b < input_shape_.n; ++b) {
        for (int c = 0; c < input_shape_.c; ++c) {
            const float* p = input.data() +
                             (static_cast<std::int64_t>(b) * input_shape_.c + c) * spatial;
            double acc = 0;
            for (std::int64_t i = 0; i < spatial; ++i) acc += p[i];
            output_[output_.index(b, c, 0, 0)] = static_cast<float>(acc) * inv;
        }
    }
}

void AvgPoolLayer::backward(const Tensor&, Tensor* input_delta, Network&) {
    if (input_delta == nullptr) return;
    const std::int64_t spatial = input_shape_.hw();
    const float inv = 1.0f / static_cast<float>(spatial);
    for (int b = 0; b < input_shape_.n; ++b) {
        for (int c = 0; c < input_shape_.c; ++c) {
            const float g = delta_[delta_.index(b, c, 0, 0)] * inv;
            float* p = input_delta->data() +
                       (static_cast<std::int64_t>(b) * input_shape_.c + c) * spatial;
            for (std::int64_t i = 0; i < spatial; ++i) p[i] += g;
        }
    }
}

DropoutLayer::DropoutLayer(float probability, const Shape& input, std::uint64_t seed)
    : probability_(probability), rng_(seed) {
    if (probability < 0.0f || probability >= 1.0f) {
        throw std::invalid_argument("DropoutLayer: probability must be in [0,1)");
    }
    setup(input);
}

void DropoutLayer::setup(const Shape& input) {
    input_shape_ = input;
    output_shape_ = input;
    output_.resize(output_shape_);
    delta_.resize(output_shape_);
    mask_.assign(static_cast<std::size_t>(input.size()), 1.0f);
}

std::string DropoutLayer::describe() const {
    std::ostringstream os;
    os << "dropout p=" << probability_ << "  " << input_shape_.w << "x"
       << input_shape_.h << "x" << input_shape_.c;
    return os.str();
}

void DropoutLayer::forward(const Tensor& input, Network&, bool train) {
    if (input.shape() != input_shape_) {
        throw std::invalid_argument("DropoutLayer::forward: shape mismatch");
    }
    if (!train || probability_ == 0.0f) {
        std::copy(input.data(), input.data() + input.size(), output_.data());
        return;
    }
    const float keep_scale = 1.0f / (1.0f - probability_);
    for (std::int64_t i = 0; i < input.size(); ++i) {
        const float m = rng_.chance(probability_) ? 0.0f : keep_scale;
        mask_[static_cast<std::size_t>(i)] = m;
        output_[i] = input[i] * m;
    }
}

void DropoutLayer::backward(const Tensor&, Tensor* input_delta, Network&) {
    if (input_delta == nullptr) return;
    for (std::int64_t i = 0; i < delta_.size(); ++i) {
        (*input_delta)[i] += delta_[i] * mask_[static_cast<std::size_t>(i)];
    }
}

}  // namespace dronet
