// Global average pooling and dropout layers.
//
// Neither appears in the four paper models, but both belong to darknet's
// layer set: avgpool terminates classification backbones (useful when
// pre-training a feature extractor before attaching the detection head) and
// dropout is the classic regularizer for small datasets like the paper's
// 350 images.
#pragma once

#include "nn/layer.hpp"
#include "tensor/rng.hpp"

namespace dronet {

/// Global average pooling: NxCxHxW -> NxCx1x1.
class AvgPoolLayer final : public Layer {
  public:
    explicit AvgPoolLayer(const Shape& input);

    [[nodiscard]] LayerKind kind() const override;
    [[nodiscard]] std::string describe() const override;
    void setup(const Shape& input) override;
    void forward(const Tensor& input, Network& net, bool train) override;
    void backward(const Tensor& input, Tensor* input_delta, Network& net) override;
    [[nodiscard]] std::int64_t flops() const override { return input_shape_.chw(); }
};

/// Inverted dropout: keeps each activation with probability 1-p and scales
/// survivors by 1/(1-p) during training; identity at inference.
class DropoutLayer final : public Layer {
  public:
    DropoutLayer(float probability, const Shape& input, std::uint64_t seed);

    [[nodiscard]] LayerKind kind() const override;
    [[nodiscard]] std::string describe() const override;
    void setup(const Shape& input) override;
    void forward(const Tensor& input, Network& net, bool train) override;
    void backward(const Tensor& input, Tensor* input_delta, Network& net) override;
    [[nodiscard]] std::int64_t flops() const override { return input_shape_.chw(); }

    [[nodiscard]] float probability() const noexcept { return probability_; }

  private:
    float probability_;
    Rng rng_;
    std::vector<float> mask_;  ///< per-element keep scale of the last train pass
};

}  // namespace dronet
