#include "nn/network.hpp"

#include <algorithm>
#include <sstream>
#include <stdexcept>

#include "analysis/numerics.hpp"
#include "fault/fault.hpp"

namespace dronet {
namespace {

std::string guard_context(const char* pass, std::size_t index, const Layer& layer,
                          const char* tensor) {
    return std::string(pass) + " layer " + std::to_string(index) + " (" +
           layer.describe() + ") " + tensor;
}

}  // namespace

Network::Network(NetConfig config)
    : config_(config),
      schedule_(config.learning_rate, config.burn_in, config.lr_steps),
      rng_(config.seed) {
    if (config_.width <= 0 || config_.height <= 0 || config_.channels <= 0 ||
        config_.batch <= 0) {
        throw std::invalid_argument("Network: invalid [net] dimensions");
    }
}

Shape Network::next_input_shape() const {
    if (layers_.empty()) return input_shape();
    return layers_.back()->output_shape();
}

void Network::refresh_workspace() {
    std::size_t bytes = 0;
    for (const auto& l : layers_) bytes = std::max(bytes, l->workspace_bytes());
    // Grow-only: im2col fully rewrites the workspace before every use, so a
    // shrinking resize (batch toggling in the serving micro-batch path) need
    // not reallocate or zero.
    const std::size_t floats = (bytes + sizeof(float) - 1) / sizeof(float);
    if (workspace_.size() < floats) workspace_.resize(floats, 0.0f);
}

template <typename L, typename... Args>
L& Network::emplace_layer(Args&&... args) {
    auto layer = std::make_unique<L>(std::forward<Args>(args)...);
    L& ref = *layer;
    layers_.push_back(std::move(layer));
    refresh_workspace();
    return ref;
}

ConvolutionalLayer& Network::add_conv(const ConvConfig& config) {
    return emplace_layer<ConvolutionalLayer>(config, next_input_shape(), rng_);
}

MaxPoolLayer& Network::add_maxpool(const MaxPoolConfig& config) {
    return emplace_layer<MaxPoolLayer>(config, next_input_shape());
}

RegionLayer& Network::add_region(const RegionConfig& config) {
    return emplace_layer<RegionLayer>(config, next_input_shape());
}

UpsampleLayer& Network::add_upsample(int stride) {
    return emplace_layer<UpsampleLayer>(stride, next_input_shape());
}

RouteLayer& Network::add_route(std::vector<int> sources) {
    auto layer = std::make_unique<RouteLayer>(std::move(sources));
    RouteLayer& ref = *layer;
    layers_.push_back(std::move(layer));
    ref.setup_with_network(*this, static_cast<int>(layers_.size()) - 1);
    refresh_workspace();
    return ref;
}

AvgPoolLayer& Network::add_avgpool() {
    return emplace_layer<AvgPoolLayer>(next_input_shape());
}

DropoutLayer& Network::add_dropout(float probability) {
    return emplace_layer<DropoutLayer>(probability, next_input_shape(),
                                       rng_.engine()());
}

const Tensor& Network::forward(const Tensor& input, bool train) {
    if (layers_.empty()) throw std::logic_error("Network::forward: no layers");
    if (input.shape() != input_shape()) {
        throw std::invalid_argument("Network::forward: input shape " +
                                    input.shape().str() + " != expected " +
                                    input_shape().str());
    }
    DRONET_FAULT_POINT(fault::kSiteForward);
    profile::ForwardProfiler* prof = nullptr;
    if (profile::profiling_enabled()) {
        if (!profiler_) profiler_ = std::make_unique<profile::ForwardProfiler>();
        prof = profiler_.get();
    }
    profile::ScopedForwardTimer forward_timer(prof);
    // The input snapshot only feeds backward(); inference skips the copy.
    if (train) input_copy_ = input;
    const Tensor* x = train ? &input_copy_ : &input;
    for (std::size_t i = 0; i < layers_.size(); ++i) {
        Layer& l = *layers_[i];
        {
            profile::ScopedLayerTimer timer(prof, static_cast<int>(i),
                                            to_string(l.kind()), l.flops());
            l.forward(*x, *this, train);
        }
        if (numerics_checks_enabled()) {
            check_finite(l.output().span(), guard_context("forward", i, l, "output"));
        }
        x = &l.output();
    }
    return *x;
}

void Network::backward() {
    if (layers_.empty()) return;
    // Clear deltas of all but the last layer (whose delta holds dL/dOut, set
    // by the region layer's loss).
    for (std::size_t i = 0; i + 1 < layers_.size(); ++i) layers_[i]->delta().zero();
    for (int i = static_cast<int>(layers_.size()) - 1; i >= 0; --i) {
        const Tensor& in = (i == 0) ? input_copy_ : layers_[static_cast<std::size_t>(i - 1)]->output();
        Tensor* in_delta = (i == 0) ? nullptr : &layers_[static_cast<std::size_t>(i - 1)]->delta();
        Layer& l = *layers_[static_cast<std::size_t>(i)];
        l.backward(in, in_delta, *this);
        if (numerics_checks_enabled()) {
            const auto idx = static_cast<std::size_t>(i);
            for (Param* p : l.params()) {
                check_finite(p->g, guard_context("backward", idx, l,
                                                 ("gradient of " + p->name).c_str()));
            }
            if (in_delta != nullptr) {
                check_finite(in_delta->span(),
                             guard_context("backward", idx, l, "propagated delta"));
            }
        }
    }
}

void Network::update() {
    SgdConfig sgd;
    sgd.learning_rate = schedule_.at(batch_num_);
    sgd.momentum = config_.momentum;
    sgd.decay = config_.decay;
    sgd.batch = config_.batch;
    for (auto& l : layers_) {
        for (Param* p : l->params()) sgd_step(*p, sgd);
    }
    ++batch_num_;
}

float Network::train_step(const Tensor& input,
                          std::vector<std::vector<GroundTruth>> truths) {
    RegionLayer* head = region();
    if (head == nullptr) throw std::logic_error("Network::train_step: no region layer");
    head->set_ground_truth(std::move(truths));
    forward(input, /*train=*/true);
    backward();
    update();
    return head->stats().loss;
}

void Network::resize_input(int width, int height) {
    if (width <= 0 || height <= 0) {
        throw std::invalid_argument("Network::resize_input: bad dimensions");
    }
    config_.width = width;
    config_.height = height;
    Shape in = input_shape();
    for (std::size_t i = 0; i < layers_.size(); ++i) {
        if (auto* route = dynamic_cast<RouteLayer*>(layers_[i].get())) {
            route->setup_with_network(*this, static_cast<int>(i));
        } else {
            layers_[i]->setup(in);
        }
        in = layers_[i]->output_shape();
    }
    refresh_workspace();
}

void Network::set_batch(int batch) {
    if (batch <= 0) throw std::invalid_argument("Network::set_batch: bad batch");
    if (batch == config_.batch) return;
    config_.batch = batch;
    resize_input(config_.width, config_.height);
}

RegionLayer* Network::region() noexcept {
    for (auto it = layers_.rbegin(); it != layers_.rend(); ++it) {
        if (auto* r = dynamic_cast<RegionLayer*>(it->get())) return r;
    }
    return nullptr;
}

const RegionLayer* Network::region() const noexcept {
    return const_cast<Network*>(this)->region();
}

std::int64_t Network::total_flops() const {
    std::int64_t total = 0;
    for (const auto& l : layers_) total += l->flops();
    return total;
}

std::int64_t Network::total_params() const {
    std::int64_t total = 0;
    for (const auto& l : layers_) total += l->param_count();
    return total;
}

std::int64_t Network::total_memory_bytes() const {
    std::int64_t total = 0;
    for (const auto& l : layers_) total += l->memory_bytes();
    return total;
}

std::string Network::describe() const {
    std::ostringstream os;
    os << "input " << config_.width << "x" << config_.height << "x" << config_.channels
       << "\n";
    for (std::size_t i = 0; i < layers_.size(); ++i) {
        os << i << ": " << layers_[i]->describe() << "\n";
    }
    os << "total params " << total_params() << ", flops/image " << total_flops() << "\n";
    return os.str();
}

void Network::fold_batchnorm() {
    for (auto& l : layers_) {
        if (auto* conv = dynamic_cast<ConvolutionalLayer*>(l.get())) {
            conv->fold_batchnorm();
        }
    }
}

void Network::set_fp16(bool on) {
    fp16_ = on;
    for (auto& l : layers_) {
        if (auto* conv = dynamic_cast<ConvolutionalLayer*>(l.get())) {
            conv->set_fp16_storage(on);
        }
    }
}

}  // namespace dronet
