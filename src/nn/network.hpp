// Network: an ordered stack of layers plus training state.
//
// Mirrors darknet's `network` struct: owns the layers, a shared im2col
// workspace, the batch counter driving the LR schedule, and the RNG used for
// weight initialization. Networks are built programmatically (model zoo) or
// parsed from darknet-format .cfg text (nn/cfg.hpp).
#pragma once

#include <cstdint>
#include <memory>
#include <string>
#include <vector>

#include "detect/box.hpp"
#include "nn/conv_layer.hpp"
#include "nn/layer.hpp"
#include "nn/maxpool_layer.hpp"
#include "nn/misc_layers.hpp"
#include "nn/optimizer.hpp"
#include "nn/region_layer.hpp"
#include "nn/route_layer.hpp"
#include "nn/upsample_layer.hpp"
#include "profile/profiler.hpp"
#include "tensor/rng.hpp"

namespace dronet {

/// Hyper-parameters from a cfg's [net] section.
struct NetConfig {
    int width = 416;
    int height = 416;
    int channels = 3;
    int batch = 1;
    float learning_rate = 1e-3f;
    float momentum = 0.9f;
    float decay = 5e-4f;
    int burn_in = 0;
    std::int64_t max_batches = 0;  ///< 0 = unbounded
    std::vector<LrSchedule::Step> lr_steps;
    std::uint64_t seed = 0x5eed;
};

class Network {
  public:
    explicit Network(NetConfig config);

    Network(const Network&) = delete;
    Network& operator=(const Network&) = delete;
    Network(Network&&) = default;
    Network& operator=(Network&&) = default;

    // ---- construction -----------------------------------------------------
    ConvolutionalLayer& add_conv(const ConvConfig& config);
    MaxPoolLayer& add_maxpool(const MaxPoolConfig& config);
    RegionLayer& add_region(const RegionConfig& config);
    UpsampleLayer& add_upsample(int stride);
    RouteLayer& add_route(std::vector<int> sources);
    AvgPoolLayer& add_avgpool();
    DropoutLayer& add_dropout(float probability);

    // ---- execution ----------------------------------------------------------
    /// Runs all layers; returns the last layer's output. The input shape must
    /// equal input_shape().
    const Tensor& forward(const Tensor& input, bool train = false);

    /// Backpropagates from the last layer's delta (set by the region layer's
    /// loss) down to the first layer, accumulating parameter gradients.
    void backward();

    /// Applies one SGD step at the current schedule position and advances the
    /// batch counter.
    void update();

    /// forward(train) + backward + update for one mini-batch; returns the
    /// region-layer loss.
    float train_step(const Tensor& input,
                     std::vector<std::vector<GroundTruth>> truths);

    // ---- shape management ---------------------------------------------------
    /// Re-derives every layer's geometry for a new spatial input size; weights
    /// are preserved (the models are fully convolutional, enabling the paper's
    /// 352-608 input-size sweep on one set of weights).
    void resize_input(int width, int height);

    /// Changes the batch dimension (e.g. train with batch 8, infer with 1).
    void set_batch(int batch);

    // ---- inspection ---------------------------------------------------------
    [[nodiscard]] Shape input_shape() const noexcept {
        return Shape{config_.batch, config_.channels, config_.height, config_.width};
    }
    [[nodiscard]] std::size_t num_layers() const noexcept { return layers_.size(); }
    [[nodiscard]] Layer& layer(int i) { return *layers_.at(static_cast<std::size_t>(i)); }
    [[nodiscard]] const Layer& layer(int i) const {
        return *layers_.at(static_cast<std::size_t>(i));
    }
    /// Last region layer (the detection head), or null if absent.
    [[nodiscard]] RegionLayer* region() noexcept;
    [[nodiscard]] const RegionLayer* region() const noexcept;

    /// Totals per single-image forward.
    [[nodiscard]] std::int64_t total_flops() const;
    [[nodiscard]] std::int64_t total_params() const;
    [[nodiscard]] std::int64_t total_memory_bytes() const;

    /// Multi-line structure table (one describe() line per layer) — the
    /// Fig. 1 reproduction output.
    [[nodiscard]] std::string describe() const;

    /// Folds batch-norm into conv weights across all layers (inference only).
    void fold_batchnorm();

    /// Switches every conv layer to IEEE binary16 weight + activation storage
    /// (inference only; training a half network throws). Call after weights
    /// are loaded — enabling re-encodes halves from the current floats.
    /// Accuracy impact and tolerances: docs/vectorization.md.
    void set_fp16(bool on);
    [[nodiscard]] bool fp16() const noexcept { return fp16_; }

    [[nodiscard]] NetConfig& config() noexcept { return config_; }
    [[nodiscard]] const NetConfig& config() const noexcept { return config_; }
    [[nodiscard]] Rng& rng() noexcept { return rng_; }
    [[nodiscard]] std::int64_t batch_num() const noexcept { return batch_num_; }
    void set_batch_num(std::int64_t n) noexcept { batch_num_ = n; }
    [[nodiscard]] const LrSchedule& schedule() const noexcept { return schedule_; }
    [[nodiscard]] float current_lr() const { return schedule_.at(batch_num_); }

    /// Shared im2col scratch; sized for the largest conv layer.
    [[nodiscard]] float* workspace() noexcept { return workspace_.data(); }

    /// Per-layer timing sink, populated by forward() while profiling is
    /// enabled (profile::profiling_enabled()). Null until the first profiled
    /// forward. Read only while the network is quiescent.
    [[nodiscard]] const profile::ForwardProfiler* profiler() const noexcept {
        return profiler_.get();
    }
    [[nodiscard]] profile::ForwardProfiler* profiler() noexcept {
        return profiler_.get();
    }

  private:
    [[nodiscard]] Shape next_input_shape() const;
    void refresh_workspace();
    template <typename L, typename... Args>
    L& emplace_layer(Args&&... args);

    NetConfig config_;
    LrSchedule schedule_;
    Rng rng_;
    std::vector<std::unique_ptr<Layer>> layers_;
    std::vector<float> workspace_;
    Tensor input_copy_;  ///< retained for backward()
    bool fp16_ = false;
    std::int64_t batch_num_ = 0;
    std::unique_ptr<profile::ForwardProfiler> profiler_;
};

}  // namespace dronet
