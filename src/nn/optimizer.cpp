#include "nn/optimizer.hpp"

#include <algorithm>
#include <cmath>

#include "nn/layer.hpp"

namespace dronet {

void sgd_step(Param& param, const SgdConfig& config) {
    const float inv_batch = 1.0f / static_cast<float>(std::max(1, config.batch));
    const float decay = param.decay ? config.decay : 0.0f;
    for (std::size_t i = 0; i < param.size(); ++i) {
        const float grad = param.g[i] * inv_batch + decay * param.v[i];
        param.m[i] = config.momentum * param.m[i] - config.learning_rate * grad;
        param.v[i] += param.m[i];
        param.g[i] = 0.0f;
    }
}

float LrSchedule::at(std::int64_t batch_num) const {
    float lr = base_lr_;
    if (burn_in_ > 0 && batch_num < burn_in_) {
        const float frac = static_cast<float>(batch_num + 1) / static_cast<float>(burn_in_);
        return lr * std::pow(frac, 4.0f);
    }
    for (const Step& s : steps_) {
        if (batch_num >= s.at_batch) lr *= s.scale;
    }
    return lr;
}

}  // namespace dronet
