// SGD optimizer and learning-rate policy.
//
// The paper trains its models with darknet's stock optimizer: SGD with
// momentum, L2 weight decay, polynomial burn-in and step decay. This module
// reproduces that schedule.
#pragma once

#include <cstdint>
#include <vector>

namespace dronet {

struct Param;

/// Hyper-parameters of one SGD step.
struct SgdConfig {
    float learning_rate = 1e-3f;
    float momentum = 0.9f;
    float decay = 5e-4f;  ///< L2 weight-decay coefficient
    int batch = 1;        ///< images contributing to the accumulated gradient
};

/// Applies one SGD-with-momentum step to `param` and clears its gradient:
///   m <- momentum * m - lr * (g / batch + decay * v)
///   v <- v + m
/// Weight decay is skipped when param.decay is false.
void sgd_step(Param& param, const SgdConfig& config);

/// Learning-rate schedule: constant, or darknet "steps" policy with burn-in.
class LrSchedule {
  public:
    struct Step {
        std::int64_t at_batch = 0;
        float scale = 1.0f;
    };

    LrSchedule(float base_lr, int burn_in, std::vector<Step> steps)
        : base_lr_(base_lr), burn_in_(burn_in), steps_(std::move(steps)) {}

    explicit LrSchedule(float base_lr) : LrSchedule(base_lr, 0, {}) {}

    /// Learning rate at training batch index `batch_num` (0-based).
    [[nodiscard]] float at(std::int64_t batch_num) const;

    [[nodiscard]] float base_lr() const noexcept { return base_lr_; }
    [[nodiscard]] int burn_in() const noexcept { return burn_in_; }
    [[nodiscard]] const std::vector<Step>& steps() const noexcept { return steps_; }

  private:
    float base_lr_;
    int burn_in_;
    std::vector<Step> steps_;  ///< sorted by at_batch; scales are cumulative
};

}  // namespace dronet
