#include "nn/quantize.hpp"

#include <cmath>
#include <stdexcept>
#include <string>

#include "tensor/gemm_i8.hpp"
#include "tensor/im2col.hpp"
#include "tensor/ops.hpp"

namespace dronet {

float QuantizedConv::mean_weight_error(ConvolutionalLayer& source) const {
    const int fan_in = geo.col_rows();
    double err = 0;
    for (int f = 0; f < config.filters; ++f) {
        for (int i = 0; i < fan_in; ++i) {
            const std::size_t idx = static_cast<std::size_t>(f) * fan_in + i;
            const float deq = static_cast<float>(weights[idx]) * scales[static_cast<std::size_t>(f)];
            err += std::fabs(deq - source.weights().v[idx]);
        }
    }
    return static_cast<float>(err / (static_cast<double>(config.filters) * fan_in));
}

QuantizedNetwork::QuantizedNetwork(Network& net) : net_(net) {
    if (net_.config().batch != 1) {
        throw std::invalid_argument("QuantizedNetwork: batch size must be 1");
    }
    net_.fold_batchnorm();
    std::size_t max_col = 0;
    for (std::size_t i = 0; i < net_.num_layers(); ++i) {
        auto* conv = dynamic_cast<ConvolutionalLayer*>(&net_.layer(static_cast<int>(i)));
        if (conv == nullptr) continue;
        QuantizedConv qc;
        qc.layer_index = static_cast<int>(i);
        qc.config = conv->config();
        qc.geo = ConvGeometry{conv->input_shape().c, conv->input_shape().h,
                              conv->input_shape().w, qc.config.ksize,
                              qc.config.stride, qc.config.pad};
        const int fan_in = qc.geo.col_rows();
        qc.weights.resize(static_cast<std::size_t>(qc.config.filters) * fan_in);
        qc.scales.resize(static_cast<std::size_t>(qc.config.filters));
        qc.biases = conv->biases().v;
        for (int f = 0; f < qc.config.filters; ++f) {
            const float* row = conv->weights().v.data() + static_cast<std::int64_t>(f) * fan_in;
            const float scale = quantization_scale(row, fan_in);
            qc.scales[static_cast<std::size_t>(f)] = scale;
            quantize_buffer(row, fan_in, scale,
                            qc.weights.data() + static_cast<std::int64_t>(f) * fan_in);
        }
        max_col = std::max(max_col, static_cast<std::size_t>(qc.geo.col_rows()) *
                                        static_cast<std::size_t>(qc.geo.col_cols()));
        quantized_.push_back(std::move(qc));
    }
    col_i8_.resize(max_col);
    col_f32_.resize(max_col);
}

void QuantizedNetwork::forward_quantized_conv(const QuantizedConv& qc,
                                              const Tensor& input, Tensor& output) {
    const int out_hw = qc.geo.col_cols();
    const int col_rows = qc.geo.col_rows();
    // Lower to the col matrix (float), then dynamically quantize it with one
    // per-tensor scale.
    const float* col_f = nullptr;
    if (qc.config.ksize == 1 && qc.config.stride == 1 && qc.config.pad == 0) {
        col_f = input.data();
    } else {
        im2col(input.data(), qc.geo, col_f32_.data());
        col_f = col_f32_.data();
    }
    const std::int64_t col_size = static_cast<std::int64_t>(col_rows) * out_hw;
    const float in_scale = quantization_scale(col_f, col_size);
    quantize_buffer(col_f, col_size, in_scale, col_i8_.data());

    acc_.resize(static_cast<std::size_t>(qc.config.filters) * out_hw);
    gemm_i8(qc.config.filters, out_hw, col_rows, qc.weights.data(), col_rows,
            col_i8_.data(), out_hw, acc_.data(), out_hw);

    // Dequantize, add bias, activate.
    for (int f = 0; f < qc.config.filters; ++f) {
        const float scale = qc.scales[static_cast<std::size_t>(f)] * in_scale;
        const float bias = qc.biases[static_cast<std::size_t>(f)];
        const std::int32_t* arow = acc_.data() + static_cast<std::int64_t>(f) * out_hw;
        float* orow = output.data() + static_cast<std::int64_t>(f) * out_hw;
        for (int j = 0; j < out_hw; ++j) {
            orow[j] = activate(qc.config.activation,
                               static_cast<float>(arow[j]) * scale + bias);
        }
    }
}

const Tensor& QuantizedNetwork::forward(const Tensor& input) {
    // The quantized conv path captures per-layer geometry at construction with
    // batch 1 and indexes raw buffers accordingly. If the source network was
    // re-batched afterwards (e.g. by the serving micro-batch path), the shape
    // check below would still pass against the new batch-N input shape while
    // forward_quantized_conv silently processed only item 0 — so reject it
    // explicitly here.
    if (net_.config().batch != 1) {
        throw std::logic_error(
            "QuantizedNetwork::forward: source network batch is " +
            std::to_string(net_.config().batch) +
            "; it was re-batched after quantization (batch must stay 1)");
    }
    if (input.shape() != net_.input_shape()) {
        throw std::invalid_argument("QuantizedNetwork::forward: shape mismatch");
    }
    std::size_t next_q = 0;
    const Tensor* x = &input;
    for (std::size_t i = 0; i < net_.num_layers(); ++i) {
        Layer& layer = net_.layer(static_cast<int>(i));
        if (next_q < quantized_.size() &&
            quantized_[next_q].layer_index == static_cast<int>(i)) {
            forward_quantized_conv(quantized_[next_q], *x, layer.output());
            ++next_q;
        } else {
            layer.forward(*x, net_, /*train=*/false);
        }
        x = &layer.output();
    }
    return *x;
}

Detections QuantizedNetwork::decode() const {
    const RegionLayer* head = net_.region();
    if (head == nullptr) throw std::logic_error("QuantizedNetwork::decode: no region layer");
    return head->decode(0);
}

std::size_t QuantizedNetwork::weight_bytes() const noexcept {
    std::size_t total = 0;
    for (const QuantizedConv& qc : quantized_) {
        total += qc.weights.size() * sizeof(std::int8_t) +
                 qc.scales.size() * sizeof(float) + qc.biases.size() * sizeof(float);
    }
    return total;
}

std::size_t QuantizedNetwork::float_weight_bytes() const noexcept {
    std::size_t total = 0;
    for (const QuantizedConv& qc : quantized_) {
        total += (qc.weights.size() + qc.biases.size()) * sizeof(float);
    }
    return total;
}

}  // namespace dronet
