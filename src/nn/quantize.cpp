#include "nn/quantize.hpp"

#include <algorithm>
#include <cmath>
#include <stdexcept>
#include <string>

#include "tensor/gemm.hpp"
#include "tensor/gemm_i8.hpp"
#include "tensor/im2col.hpp"
#include "tensor/ops.hpp"
#include "tensor/rng.hpp"

namespace dronet {
namespace {

[[nodiscard]] float max_abs_of(std::span<const float> data) noexcept {
    float mx = 0.0f;
    for (const float v : data) mx = std::max(mx, std::fabs(v));
    return mx;
}

/// Live lowering geometry for a quantized layer — derived per call from the
/// source layer so set_batch / resize_input are picked up automatically.
[[nodiscard]] ConvGeometry live_geometry(const QuantizedConv& qc,
                                         const ConvolutionalLayer& conv) noexcept {
    const Shape& in = conv.input_shape();
    return ConvGeometry{in.c, in.h, in.w, qc.config.ksize, qc.config.stride,
                        qc.config.pad};
}

}  // namespace

float QuantizedConv::mean_weight_error(const ConvolutionalLayer& source) const {
    double err = 0;
    for (int f = 0; f < config.filters; ++f) {
        for (int i = 0; i < fan_in; ++i) {
            const std::size_t idx = static_cast<std::size_t>(f) * fan_in + i;
            const float deq = static_cast<float>(weights[idx]) * scales[static_cast<std::size_t>(f)];
            err += std::fabs(deq - source.weights().v[idx]);
        }
    }
    return static_cast<float>(err / (static_cast<double>(config.filters) * fan_in));
}

Int8Calibration QuantizedNetwork::calibrate(Network& net,
                                            std::span<const Tensor> samples) {
    if (samples.empty()) {
        throw std::invalid_argument("QuantizedNetwork::calibrate: no samples");
    }
    // Fold first: quantized inference runs on the folded network, so the
    // recorded ranges must come from folded float forwards.
    net.fold_batchnorm();
    Int8Calibration calib;
    for (const Tensor& sample : samples) {
        if (sample.shape() != net.input_shape()) {
            throw std::invalid_argument(
                "QuantizedNetwork::calibrate: sample shape mismatch");
        }
        net.forward(sample, /*train=*/false);
        std::size_t slot = 0;
        for (std::size_t i = 0; i < net.num_layers(); ++i) {
            if (net.layer(static_cast<int>(i)).kind() != LayerKind::kConvolutional) {
                continue;
            }
            // The conv's input is the previous layer's output (the network
            // input for layer 0). im2col only copies or zero-pads, so this
            // max is exactly the col matrix's max.
            const Tensor& in = i == 0 ? sample : net.layer(static_cast<int>(i) - 1).output();
            const float mx = max_abs_of(in.span());
            if (slot == calib.max_abs.size()) calib.max_abs.push_back(0.0f);
            calib.max_abs[slot] = std::max(calib.max_abs[slot], mx);
            ++slot;
        }
    }
    return calib;
}

Int8Calibration QuantizedNetwork::self_calibrate(Network& net) {
    const Shape in = net.input_shape();
    std::vector<Tensor> samples;
    // Constant frames bound the aligned-filter response, the ramp adds
    // low-frequency structure, seeded noise adds texture — a deterministic
    // stand-in for representative [0,1] imagery (docs/quantization.md).
    samples.emplace_back(in);
    samples.back().fill(0.5f);
    samples.emplace_back(in);
    samples.back().fill(1.0f);
    Tensor ramp(in);
    for (int n = 0; n < in.n; ++n) {
        for (int c = 0; c < in.c; ++c) {
            for (int h = 0; h < in.h; ++h) {
                for (int w = 0; w < in.w; ++w) {
                    const float y = in.h > 1 ? static_cast<float>(h) / static_cast<float>(in.h - 1) : 0.0f;
                    const float x = in.w > 1 ? static_cast<float>(w) / static_cast<float>(in.w - 1) : 0.0f;
                    ramp[ramp.index(n, c, h, w)] = 0.5f * (x + y);
                }
            }
        }
    }
    samples.push_back(std::move(ramp));
    Tensor noise(in);
    Rng rng(0x178cu);
    rng.fill_uniform(noise.span(), 0.0f, 1.0f);
    samples.push_back(std::move(noise));
    return calibrate(net, samples);
}

QuantizedNetwork::QuantizedNetwork(Network& net, const Int8Calibration& calibration)
    : net_(net), calibration_(calibration) {
    net_.fold_batchnorm();
    std::size_t slot = 0;
    for (std::size_t i = 0; i < net_.num_layers(); ++i) {
        auto* conv = dynamic_cast<ConvolutionalLayer*>(&net_.layer(static_cast<int>(i)));
        if (conv == nullptr) continue;
        if (slot >= calibration_.layer_count()) {
            throw std::invalid_argument(
                "QuantizedNetwork: calibration covers fewer conv layers than the network");
        }
        QuantizedConv qc;
        qc.layer_index = static_cast<int>(i);
        qc.config = conv->config();
        qc.fan_in = conv->input_shape().c * qc.config.ksize * qc.config.ksize;
        const float in_max = calibration_.max_abs[slot];
        qc.input_scale = in_max > 0.0f ? in_max / 127.0f : 1.0f;
        qc.weights.resize(static_cast<std::size_t>(qc.config.filters) * qc.fan_in);
        qc.scales.resize(static_cast<std::size_t>(qc.config.filters));
        qc.requant.resize(static_cast<std::size_t>(qc.config.filters));
        qc.biases = conv->biases().v;
        for (int f = 0; f < qc.config.filters; ++f) {
            const float* row = conv->weights().v.data() + static_cast<std::int64_t>(f) * qc.fan_in;
            const float scale = quantization_scale(row, qc.fan_in);
            qc.scales[static_cast<std::size_t>(f)] = scale;
            qc.requant[static_cast<std::size_t>(f)] = scale * qc.input_scale;
            quantize_buffer(row, qc.fan_in, scale,
                            qc.weights.data() + static_cast<std::int64_t>(f) * qc.fan_in);
        }
        convs_.push_back(conv);
        quantized_.push_back(std::move(qc));
        ++slot;
    }
    if (slot != calibration_.layer_count()) {
        throw std::invalid_argument(
            "QuantizedNetwork: calibration covers more conv layers than the network");
    }
    // Pre-size scratch for the construction-time geometry; forwards at this
    // size or smaller (re-batch, degraded input) never allocate again.
    ensure_scratch();
    scratch_grows_ = 0;
}

QuantizedNetwork::QuantizedNetwork(Network& net)
    : QuantizedNetwork(net, self_calibrate(net)) {}

void QuantizedNetwork::ensure_scratch() {
    std::size_t col_need = 0;
    std::size_t acc_need = 0;
    for (std::size_t qi = 0; qi < quantized_.size(); ++qi) {
        const QuantizedConv& qc = quantized_[qi];
        const ConvGeometry geo = live_geometry(qc, *convs_[qi]);
        const auto cols = static_cast<std::size_t>(geo.col_cols());
        col_need = std::max(col_need, static_cast<std::size_t>(geo.col_rows()) * cols);
        acc_need = std::max(acc_need, static_cast<std::size_t>(qc.config.filters) * cols);
    }
    if (col_need <= col_i8_.size() && acc_need <= acc_.size()) return;
    ++scratch_grows_;
    if (col_need > col_i8_.size()) {
        col_i8_.resize(col_need);
        col_f32_.resize(col_need);
    }
    if (acc_need > acc_.size()) acc_.resize(acc_need);
}

void QuantizedNetwork::forward_quantized_conv(const QuantizedConv& qc,
                                              const ConvolutionalLayer& conv,
                                              const Tensor& input, Tensor& output) {
    const ConvGeometry geo = live_geometry(qc, conv);
    const int out_hw = geo.col_cols();
    const int col_rows = geo.col_rows();
    const std::int64_t col_size = static_cast<std::int64_t>(col_rows) * out_hw;
    const bool is_1x1 = qc.config.ksize == 1 && qc.config.stride == 1 && qc.config.pad == 0;
    for (int b = 0; b < input.shape().n; ++b) {
        const float* in_b = input.data() + static_cast<std::int64_t>(b) * input.shape().chw();
        float* out_b = output.data() + static_cast<std::int64_t>(b) * conv.output_shape().chw();
        // Lower to the col matrix (float), then quantize with the layer's
        // static calibrated scale — no per-frame range sweep.
        const float* col_f = in_b;
        if (!is_1x1) {
            im2col_mt(in_b, geo, col_f32_.data(), gemm_threads());
            col_f = col_f32_.data();
        }
        quantize_buffer(col_f, col_size, qc.input_scale, col_i8_.data());
        gemm_i8(qc.config.filters, out_hw, col_rows, qc.weights.data(), col_rows,
                col_i8_.data(), out_hw, acc_.data(), out_hw);
        // Fused requantize epilogue: dequantize + bias + activation in one
        // pass with the precomputed per-channel multiplier.
        for (int f = 0; f < qc.config.filters; ++f) {
            const float scale = qc.requant[static_cast<std::size_t>(f)];
            const float bias = qc.biases[static_cast<std::size_t>(f)];
            const std::int32_t* arow = acc_.data() + static_cast<std::int64_t>(f) * out_hw;
            float* orow = out_b + static_cast<std::int64_t>(f) * out_hw;
            for (int j = 0; j < out_hw; ++j) {
                orow[j] = activate(qc.config.activation,
                                   static_cast<float>(arow[j]) * scale + bias);
            }
        }
    }
}

const Tensor& QuantizedNetwork::forward(const Tensor& input) {
    if (input.shape() != net_.input_shape()) {
        throw std::invalid_argument("QuantizedNetwork::forward: shape mismatch");
    }
    // Re-batch / resize the scratch to the live geometry (grow-only; a no-op
    // at construction-time-or-smaller shapes, so serving stays allocation-free).
    ensure_scratch();
    std::size_t next_q = 0;
    const Tensor* x = &input;
    for (std::size_t i = 0; i < net_.num_layers(); ++i) {
        Layer& layer = net_.layer(static_cast<int>(i));
        if (next_q < quantized_.size() &&
            quantized_[next_q].layer_index == static_cast<int>(i)) {
            forward_quantized_conv(quantized_[next_q], *convs_[next_q], *x,
                                   layer.output());
            ++next_q;
        } else {
            layer.forward(*x, net_, /*train=*/false);
        }
        x = &layer.output();
    }
    return *x;
}

Detections QuantizedNetwork::decode(int b) const {
    const RegionLayer* head = net_.region();
    if (head == nullptr) throw std::logic_error("QuantizedNetwork::decode: no region layer");
    return head->decode(b);
}

float QuantizedNetwork::mean_weight_error() const {
    if (quantized_.empty()) return 0.0f;
    double total = 0;
    for (std::size_t qi = 0; qi < quantized_.size(); ++qi) {
        total += quantized_[qi].mean_weight_error(*convs_[qi]);
    }
    return static_cast<float>(total / static_cast<double>(quantized_.size()));
}

std::size_t QuantizedNetwork::weight_bytes() const noexcept {
    std::size_t total = 0;
    for (const QuantizedConv& qc : quantized_) {
        total += qc.weights.size() * sizeof(std::int8_t) +
                 (qc.scales.size() + qc.requant.size() + qc.biases.size()) * sizeof(float);
    }
    return total;
}

std::size_t QuantizedNetwork::float_weight_bytes() const noexcept {
    std::size_t total = 0;
    for (const QuantizedConv& qc : quantized_) {
        total += (qc.weights.size() + qc.biases.size()) * sizeof(float);
    }
    return total;
}

}  // namespace dronet
