// Post-training INT8 quantization of the convolution path.
//
// Implements the paper's §V future-work item ("reduce bitwidth precisions"):
// per-output-channel symmetric int8 weight quantization plus dynamic
// per-tensor activation quantization, with int32 accumulation. Max-pool and
// region layers (negligible compute) stay in float, as does the detection
// decode, so accuracy loss is isolated to the conv arithmetic.
//
// Usage:
//   Network net = ...;            // trained
//   QuantizedNetwork q(net);      // folds batch norm, snapshots int8 weights
//   const Tensor& out = q.forward(input);
//   Detections dets = q.decode();
#pragma once

#include <cstdint>
#include <vector>

#include "nn/network.hpp"

namespace dronet {

/// Int8 snapshot of one convolutional layer.
struct QuantizedConv {
    int layer_index = 0;              ///< index in the source network
    std::vector<std::int8_t> weights; ///< [filters x fan_in], row-major
    std::vector<float> scales;        ///< per-output-channel weight scale
    std::vector<float> biases;        ///< float biases (post BN folding)
    ConvConfig config;
    ConvGeometry geo;

    /// Mean absolute weight quantization error (diagnostics).
    [[nodiscard]] float mean_weight_error(ConvolutionalLayer& source) const;
};

class QuantizedNetwork {
  public:
    /// Snapshots `net`'s conv layers as int8. Folds batch normalization in
    /// place (the float network keeps working, with BN folded). The source
    /// network must outlive this object (non-conv layers execute through
    /// it). Batch size must be 1.
    explicit QuantizedNetwork(Network& net);

    /// Runs inference with int8 convolution arithmetic.
    const Tensor& forward(const Tensor& input);

    /// Decodes the region layer's detections for batch item 0 (after
    /// forward).
    [[nodiscard]] Detections decode() const;

    [[nodiscard]] const std::vector<QuantizedConv>& layers() const noexcept {
        return quantized_;
    }

    /// Bytes of weight storage: int8 vs the float network.
    [[nodiscard]] std::size_t weight_bytes() const noexcept;
    [[nodiscard]] std::size_t float_weight_bytes() const noexcept;

  private:
    void forward_quantized_conv(const QuantizedConv& qc, const Tensor& input,
                                Tensor& output);

    Network& net_;
    std::vector<QuantizedConv> quantized_;  ///< one per conv layer, in order
    // Scratch buffers reused across layers.
    std::vector<std::int8_t> col_i8_;
    std::vector<float> col_f32_;
    std::vector<std::int32_t> acc_;
};

}  // namespace dronet
