// Post-training INT8 quantization of the convolution path.
//
// Implements the paper's §V future-work item ("reduce bitwidth precisions"):
// per-output-channel symmetric int8 weight quantization plus *calibrated*
// static per-layer activation scales, with int32 accumulation and a fused
// requantize epilogue (one combined multiplier per output channel). Max-pool
// and region layers (negligible compute) stay in float, as does the detection
// decode, so accuracy loss is isolated to the conv arithmetic.
//
// Calibration replaces the old dynamic per-tensor scheme (a full
// quantization_scale + quantize_buffer sweep of every col matrix, every
// layer, every frame): a calibration pass runs float forwards over a sample
// set and records each conv layer's input activation range. Because im2col
// only copies or zero-pads, max|col matrix| == max|input tensor|, so the
// recorded input maximum IS the col-matrix maximum and the baked scale is
// exact, not approximate.
//
// The quantized forward is batch- and size-flexible: geometry derives
// per-call from the source layer's live input shape (so Network::set_batch
// and resize_input — the serving micro-batch and degrade paths — both work),
// each batch item runs through per-item scratch, and integer arithmetic makes
// batch-N outputs bit-identical per item to batch-1. Scratch follows PR 4's
// grow-only policy; scratch_grows() counts reallocation for tests.
//
// Usage:
//   Network net = ...;                            // trained
//   auto calib = QuantizedNetwork::calibrate(net, samples);   // float passes
//   QuantizedNetwork q(net, calib);               // folds BN, snapshots int8
//   const Tensor& out = q.forward(input);         // any batch size
//   Detections dets = q.decode(b);
// or, with no sample set at hand, QuantizedNetwork q(net) self-calibrates on
// a deterministic synthetic set (docs/quantization.md).
#pragma once

#include <cstdint>
#include <span>
#include <vector>

#include "nn/network.hpp"

namespace dronet {

/// Per-conv-layer activation ranges from a calibration pass, in network
/// order. Replicas cloned from one source network can share a single
/// calibration (identical weights imply identical ranges), so a serving tier
/// calibrates once and fans the result out.
struct Int8Calibration {
    std::vector<float> max_abs;  ///< max |input activation| per conv layer

    [[nodiscard]] std::size_t layer_count() const noexcept { return max_abs.size(); }
};

/// Int8 snapshot of one convolutional layer.
struct QuantizedConv {
    int layer_index = 0;              ///< index in the source network
    std::vector<std::int8_t> weights; ///< [filters x fan_in], row-major
    std::vector<float> scales;        ///< per-output-channel weight scale
    std::vector<float> requant;       ///< fused epilogue: scales[f] * input_scale
    std::vector<float> biases;        ///< float biases (post BN folding)
    float input_scale = 1.0f;         ///< static activation scale (calibrated)
    ConvConfig config;
    int fan_in = 0;                   ///< channels * ksize^2 — resize-invariant

    /// Mean absolute weight quantization error (diagnostics).
    [[nodiscard]] float mean_weight_error(const ConvolutionalLayer& source) const;
};

class QuantizedNetwork {
  public:
    /// Snapshots `net`'s conv layers as int8 with `calibration` providing the
    /// static activation scales (entries must match the network's conv layers
    /// in order). Folds batch normalization in place (the float network keeps
    /// working, with BN folded). The source network must outlive this object
    /// (non-conv layers execute through it). Any batch size.
    QuantizedNetwork(Network& net, const Int8Calibration& calibration);

    /// Self-calibrating convenience: runs self_calibrate(net) first. Prefer
    /// the two-argument form with representative samples when available.
    explicit QuantizedNetwork(Network& net);

    /// Runs float forwards over `samples` (each shaped net.input_shape())
    /// and records every conv layer's input activation range. Folds batch
    /// norm first so the ranges match what quantized inference will see.
    [[nodiscard]] static Int8Calibration calibrate(Network& net,
                                                   std::span<const Tensor> samples);

    /// calibrate() over a deterministic synthetic set (constant, ramp and
    /// seeded-noise frames in [0, 1] at the network's current input shape) —
    /// reproducible across replicas and runs.
    [[nodiscard]] static Int8Calibration self_calibrate(Network& net);

    /// Runs inference with int8 convolution arithmetic. `input` must match
    /// net.input_shape() — re-batch or resize the source network first; the
    /// quantized path follows its live geometry. Allocation-free after
    /// construction for any batch size or degraded (smaller) input.
    const Tensor& forward(const Tensor& input);

    /// Decodes the region layer's detections for batch item `b` (after
    /// forward).
    [[nodiscard]] Detections decode(int b = 0) const;

    [[nodiscard]] const std::vector<QuantizedConv>& layers() const noexcept {
        return quantized_;
    }
    /// The float network this snapshot executes through.
    [[nodiscard]] const Network& source() const noexcept { return net_; }
    [[nodiscard]] const Int8Calibration& calibration() const noexcept {
        return calibration_;
    }

    /// Mean of mean_weight_error over all quantized layers — a forward-free,
    /// const diagnostic of quantization quality.
    [[nodiscard]] float mean_weight_error() const;

    /// Bytes of weight storage: int8 vs the float network.
    [[nodiscard]] std::size_t weight_bytes() const noexcept;
    [[nodiscard]] std::size_t float_weight_bytes() const noexcept;

    /// Times the scratch buffers (col/acc) have grown since construction.
    /// Stays 0 across forwards at construction-time-or-smaller geometry —
    /// the serving tier's allocation-free guarantee (grow-only, PR 4).
    [[nodiscard]] std::int64_t scratch_grows() const noexcept { return scratch_grows_; }

  private:
    /// Grows (never shrinks) per-item scratch to the live layer geometry.
    void ensure_scratch();
    void forward_quantized_conv(const QuantizedConv& qc,
                                const ConvolutionalLayer& conv,
                                const Tensor& input, Tensor& output);

    Network& net_;
    Int8Calibration calibration_;
    std::vector<QuantizedConv> quantized_;  ///< one per conv layer, in order
    std::vector<const ConvolutionalLayer*> convs_;  ///< parallel to quantized_
    // Per-item scratch reused across layers and batch items (grow-only).
    std::vector<std::int8_t> col_i8_;
    std::vector<float> col_f32_;
    std::vector<std::int32_t> acc_;
    std::int64_t scratch_grows_ = 0;
};

}  // namespace dronet
