#include "nn/region_layer.hpp"

#include <algorithm>
#include <cmath>
#include <sstream>
#include <stdexcept>

#include "tensor/ops.hpp"

namespace dronet {
namespace {

// Clamp for exp() in the w/h decode; keeps half-trained nets finite.
constexpr float kMaxExpArg = 8.0f;

float safe_exp(float x) noexcept { return std::exp(std::min(x, kMaxExpArg)); }

}  // namespace

RegionLayer::RegionLayer(const RegionConfig& config, const Shape& input)
    : config_(config) {
    if (config_.num <= 0 || config_.classes <= 0 || config_.coords != 4) {
        throw std::invalid_argument("RegionLayer: invalid config");
    }
    if (config_.anchors.size() != static_cast<std::size_t>(2 * config_.num)) {
        throw std::invalid_argument("RegionLayer: anchors must hold 2*num values");
    }
    setup(input);
}

void RegionLayer::setup(const Shape& input) {
    const int per_anchor = config_.coords + 1 + config_.classes;
    if (input.c != config_.num * per_anchor) {
        std::ostringstream os;
        os << "RegionLayer: input channels " << input.c << " != num*(coords+1+classes) = "
           << config_.num * per_anchor;
        throw std::invalid_argument(os.str());
    }
    input_shape_ = input;
    output_shape_ = input;
    output_.resize(output_shape_);
    delta_.resize(output_shape_);
}

std::string RegionLayer::describe() const {
    std::ostringstream os;
    os << "region " << config_.num << " anchors, " << config_.classes << " classes, grid "
       << grid_w() << "x" << grid_h();
    return os.str();
}

std::int64_t RegionLayer::flops() const {
    // logistic + softmax + decode, ~10 flops per output element.
    return output_shape_.chw() * 10;
}

std::int64_t RegionLayer::entry_index(int b, int n, int e, int loc) const noexcept {
    const std::int64_t hw = input_shape_.hw();
    const int per_anchor = config_.coords + 1 + config_.classes;
    return static_cast<std::int64_t>(b) * input_shape_.chw() +
           (static_cast<std::int64_t>(n) * per_anchor + e) * hw + loc;
}

Box RegionLayer::decode_box(int b, int n, int col, int row, const Tensor& src) const {
    const int w = grid_w();
    const int h = grid_h();
    const int loc = row * w + col;
    Box box;
    box.x = (static_cast<float>(col) + src[entry_index(b, n, 0, loc)]) / static_cast<float>(w);
    box.y = (static_cast<float>(row) + src[entry_index(b, n, 1, loc)]) / static_cast<float>(h);
    box.w = safe_exp(src[entry_index(b, n, 2, loc)]) *
            config_.anchors[static_cast<std::size_t>(2 * n)] / static_cast<float>(w);
    box.h = safe_exp(src[entry_index(b, n, 3, loc)]) *
            config_.anchors[static_cast<std::size_t>(2 * n + 1)] / static_cast<float>(h);
    return box;
}

void RegionLayer::set_ground_truth(std::vector<std::vector<GroundTruth>> truths) {
    truths_ = std::move(truths);
}

void RegionLayer::forward(const Tensor& input, Network&, bool train) {
    if (input.shape() != input_shape_) {
        throw std::invalid_argument("RegionLayer::forward: shape mismatch");
    }
    copy(input.span(), output_.span());
    const int hw = static_cast<int>(input_shape_.hw());
    std::vector<float> cls(static_cast<std::size_t>(config_.classes));
    for (int b = 0; b < input_shape_.n; ++b) {
        for (int n = 0; n < config_.num; ++n) {
            for (int loc = 0; loc < hw; ++loc) {
                for (int e : {0, 1, 4}) {
                    float& v = output_[entry_index(b, n, e, loc)];
                    v = logistic(v);
                }
                for (int c = 0; c < config_.classes; ++c) {
                    cls[static_cast<std::size_t>(c)] = output_[entry_index(b, n, 5 + c, loc)];
                }
                softmax(cls, cls);
                for (int c = 0; c < config_.classes; ++c) {
                    output_[entry_index(b, n, 5 + c, loc)] = cls[static_cast<std::size_t>(c)];
                }
            }
        }
    }
    if (train) {
        compute_loss(input);
        seen_ += input_shape_.n;
    }
}

void RegionLayer::compute_loss(const Tensor& input) {
    delta_.zero();
    stats_ = RegionStats{};
    const int w = grid_w();
    const int h = grid_h();
    double coord_loss = 0, obj_loss = 0, class_loss = 0;
    double iou_sum = 0, obj_sum = 0;
    int matched = 0, recalled = 0;

    if (truths_.size() < static_cast<std::size_t>(input_shape_.n)) {
        truths_.resize(static_cast<std::size_t>(input_shape_.n));
    }

    for (int b = 0; b < input_shape_.n; ++b) {
        const auto& truths = truths_[static_cast<std::size_t>(b)];
        // 1. No-object suppression: any predictor whose best IoU against all
        //    truths is below thresh is pushed toward zero objectness.
        for (int n = 0; n < config_.num; ++n) {
            for (int row = 0; row < h; ++row) {
                for (int col = 0; col < w; ++col) {
                    const int loc = row * w + col;
                    const Box pred = decode_box(b, n, col, row, output_);
                    float best_iou = 0;
                    for (const GroundTruth& t : truths) {
                        best_iou = std::max(best_iou, iou(pred, t.box));
                    }
                    const std::int64_t obj_idx = entry_index(b, n, 4, loc);
                    const float obj = output_[obj_idx];
                    if (best_iou <= config_.thresh) {
                        delta_[obj_idx] =
                            config_.noobject_scale * obj * logistic_gradient(obj);
                        obj_loss += 0.5 * config_.noobject_scale * obj * obj;
                    }
                    // 2. Early-training anchor prior: pull every predictor
                    //    toward its anchor's default box so the w/h decode
                    //    starts in a sane regime.
                    if (seen_ < config_.bias_match_batches) {
                        constexpr float kPriorScale = 0.01f;
                        const float sx = output_[entry_index(b, n, 0, loc)];
                        const float sy = output_[entry_index(b, n, 1, loc)];
                        delta_[entry_index(b, n, 0, loc)] +=
                            kPriorScale * (sx - 0.5f) * logistic_gradient(sx);
                        delta_[entry_index(b, n, 1, loc)] +=
                            kPriorScale * (sy - 0.5f) * logistic_gradient(sy);
                        delta_[entry_index(b, n, 2, loc)] +=
                            kPriorScale * input[entry_index(b, n, 2, loc)];
                        delta_[entry_index(b, n, 3, loc)] +=
                            kPriorScale * input[entry_index(b, n, 3, loc)];
                    }
                }
            }
        }
        // 3. Per-truth responsible-predictor deltas.
        for (const GroundTruth& t : truths) {
            if (t.box.w <= 0 || t.box.h <= 0) continue;
            const int col = std::clamp(static_cast<int>(t.box.x * static_cast<float>(w)), 0, w - 1);
            const int row = std::clamp(static_cast<int>(t.box.y * static_cast<float>(h)), 0, h - 1);
            const int loc = row * w + col;
            // Best anchor by shape-only IoU (both boxes centred at origin).
            Box truth_shift = t.box;
            truth_shift.x = 0;
            truth_shift.y = 0;
            int best_n = 0;
            float best_anchor_iou = -1;
            for (int n = 0; n < config_.num; ++n) {
                Box anchor_box;
                anchor_box.w = config_.anchors[static_cast<std::size_t>(2 * n)] / static_cast<float>(w);
                anchor_box.h = config_.anchors[static_cast<std::size_t>(2 * n + 1)] / static_cast<float>(h);
                const float v = iou(truth_shift, anchor_box);
                if (v > best_anchor_iou) {
                    best_anchor_iou = v;
                    best_n = n;
                }
            }
            // Coordinate deltas, weighted toward small boxes (darknet's
            // (2 - w*h) trick).
            const float scale = config_.coord_scale * (2.0f - t.box.w * t.box.h);
            const float tx = t.box.x * static_cast<float>(w) - static_cast<float>(col);
            const float ty = t.box.y * static_cast<float>(h) - static_cast<float>(row);
            const float tw = std::log(std::max(1e-6f, t.box.w * static_cast<float>(w) /
                                                          config_.anchors[static_cast<std::size_t>(2 * best_n)]));
            const float th = std::log(std::max(1e-6f, t.box.h * static_cast<float>(h) /
                                                          config_.anchors[static_cast<std::size_t>(2 * best_n + 1)]));
            const float sx = output_[entry_index(b, best_n, 0, loc)];
            const float sy = output_[entry_index(b, best_n, 1, loc)];
            const float rw = input[entry_index(b, best_n, 2, loc)];
            const float rh = input[entry_index(b, best_n, 3, loc)];
            delta_[entry_index(b, best_n, 0, loc)] = scale * (sx - tx) * logistic_gradient(sx);
            delta_[entry_index(b, best_n, 1, loc)] = scale * (sy - ty) * logistic_gradient(sy);
            delta_[entry_index(b, best_n, 2, loc)] = scale * (rw - tw);
            delta_[entry_index(b, best_n, 3, loc)] = scale * (rh - th);
            coord_loss += 0.5 * scale *
                          ((sx - tx) * (sx - tx) + (sy - ty) * (sy - ty) +
                           (rw - tw) * (rw - tw) + (rh - th) * (rh - th));

            const Box pred = decode_box(b, best_n, col, row, output_);
            const float iou_pred = iou(pred, t.box);
            const std::int64_t obj_idx = entry_index(b, best_n, 4, loc);
            const float obj = output_[obj_idx];
            const float obj_target = config_.rescore ? iou_pred : 1.0f;
            // The responsible predictor's delta replaces any no-object delta
            // written in pass 1; retract that pass's loss contribution so the
            // reported loss stays the integral of the emitted gradient
            // (darknet gets this for free by deriving cost from the delta
            // array).
            if (delta_[obj_idx] != 0.0f) {
                obj_loss -= 0.5 * config_.noobject_scale * obj * obj;
            }
            delta_[obj_idx] =
                config_.object_scale * (obj - obj_target) * logistic_gradient(obj);
            obj_loss += 0.5 * config_.object_scale * (obj - obj_target) * (obj - obj_target);

            // Softmax cross-entropy class gradient on the logits.
            for (int c = 0; c < config_.classes; ++c) {
                const std::int64_t idx = entry_index(b, best_n, 5 + c, loc);
                const float p = output_[idx];
                const float target = (c == t.class_id) ? 1.0f : 0.0f;
                delta_[idx] = config_.class_scale * (p - target);
                if (c == t.class_id) {
                    class_loss -= config_.class_scale * std::log(std::max(p, 1e-9f));
                }
            }

            iou_sum += iou_pred;
            obj_sum += obj;
            ++matched;
            if (iou_pred > 0.5f) ++recalled;
        }
    }
    stats_.coord_loss = static_cast<float>(coord_loss);
    stats_.obj_loss = static_cast<float>(obj_loss);
    stats_.class_loss = static_cast<float>(class_loss);
    stats_.loss = stats_.coord_loss + stats_.obj_loss + stats_.class_loss;
    stats_.truth_count = matched;
    if (matched > 0) {
        stats_.avg_iou = static_cast<float>(iou_sum / matched);
        stats_.avg_obj = static_cast<float>(obj_sum / matched);
        stats_.recall50 = static_cast<float>(recalled) / static_cast<float>(matched);
    }
}

void RegionLayer::backward(const Tensor&, Tensor* input_delta, Network&) {
    if (input_delta == nullptr) return;
    axpy(1.0f, delta_.span(), input_delta->span());
}

Detections RegionLayer::decode(int b) const {
    if (b < 0 || b >= input_shape_.n) {
        throw std::out_of_range("RegionLayer::decode: bad batch index");
    }
    Detections dets;
    const int w = grid_w();
    const int h = grid_h();
    dets.reserve(static_cast<std::size_t>(config_.num) * w * h);
    for (int n = 0; n < config_.num; ++n) {
        for (int row = 0; row < h; ++row) {
            for (int col = 0; col < w; ++col) {
                const int loc = row * w + col;
                Detection d;
                d.box = decode_box(b, n, col, row, output_);
                d.objectness = output_[entry_index(b, n, 4, loc)];
                d.class_id = 0;
                d.class_prob = 0;
                for (int c = 0; c < config_.classes; ++c) {
                    const float p = output_[entry_index(b, n, 5 + c, loc)];
                    if (p > d.class_prob) {
                        d.class_prob = p;
                        d.class_id = c;
                    }
                }
                dets.push_back(d);
            }
        }
    }
    return dets;
}

}  // namespace dronet
