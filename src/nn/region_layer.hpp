// YOLOv2-style region layer: detection head + training loss.
//
// The paper trains every model "using the loss function defined in [9]"
// (YOLO) inside darknet; this layer reproduces darknet's region layer:
//  * anchors in grid-cell units, logistic x/y/objectness, exp w/h decode,
//  * softmax class probabilities (cross-entropy gradient),
//  * noobject suppression for predictors whose best IoU with any truth is
//    below `thresh`,
//  * early-training anchor-prior matching (seen < bias_match_batches),
//  * per-truth coordinate/objectness/class deltas with darknet's scales.
//
// During training the layer computes dLoss/dInput directly (folding the
// activation Jacobians), so backward simply adds its delta to the previous
// layer's delta.
#pragma once

#include <vector>

#include "detect/box.hpp"
#include "nn/layer.hpp"

namespace dronet {

struct RegionConfig {
    int classes = 1;
    int coords = 4;
    int num = 5;                      ///< anchors per cell
    std::vector<float> anchors;       ///< 2*num values, grid-cell units
    float object_scale = 5.0f;
    float noobject_scale = 1.0f;
    float class_scale = 1.0f;
    float coord_scale = 1.0f;
    float thresh = 0.6f;              ///< IoU below which a predictor is "no object"
    bool rescore = true;              ///< objectness target = IoU instead of 1
    std::int64_t bias_match_batches = 12800;  ///< images of anchor-prior warm-up
};

/// Diagnostics of one training forward pass.
struct RegionStats {
    float loss = 0;        ///< total (coord + obj + class)
    float coord_loss = 0;
    float obj_loss = 0;
    float class_loss = 0;
    float avg_iou = 0;     ///< mean IoU of matched predictors vs truth
    float avg_obj = 0;     ///< mean objectness at matched predictors
    float recall50 = 0;    ///< fraction of truths matched with IoU > 0.5
    int truth_count = 0;
};

class RegionLayer final : public Layer {
  public:
    RegionLayer(const RegionConfig& config, const Shape& input);

    [[nodiscard]] LayerKind kind() const override { return LayerKind::kRegion; }
    [[nodiscard]] std::string describe() const override;
    void setup(const Shape& input) override;
    void forward(const Tensor& input, Network& net, bool train) override;
    void backward(const Tensor& input, Tensor* input_delta, Network& net) override;
    [[nodiscard]] std::int64_t flops() const override;

    /// Ground truth for the next training forward; outer index = batch item.
    void set_ground_truth(std::vector<std::vector<GroundTruth>> truths);

    /// Decodes all predictor outputs of batch item `b` into detections
    /// (unfiltered; apply postprocess() from detect/nms.hpp).
    [[nodiscard]] Detections decode(int b) const;

    [[nodiscard]] const RegionConfig& config() const noexcept { return config_; }
    [[nodiscard]] const RegionStats& stats() const noexcept { return stats_; }
    [[nodiscard]] std::int64_t seen() const noexcept { return seen_; }
    void set_seen(std::int64_t seen) noexcept { seen_ = seen; }

    /// Grid dimensions (equal to the input feature-map dimensions).
    [[nodiscard]] int grid_w() const noexcept { return input_shape_.w; }
    [[nodiscard]] int grid_h() const noexcept { return input_shape_.h; }

  private:
    /// Flat offset of (batch b, anchor n, entry e, location loc).
    [[nodiscard]] std::int64_t entry_index(int b, int n, int e, int loc) const noexcept;
    [[nodiscard]] Box decode_box(int b, int n, int col, int row, const Tensor& src) const;
    void compute_loss(const Tensor& input);

    RegionConfig config_;
    RegionStats stats_;
    std::int64_t seen_ = 0;
    std::vector<std::vector<GroundTruth>> truths_;
};

}  // namespace dronet
