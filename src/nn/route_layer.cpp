#include "nn/route_layer.hpp"

#include <sstream>
#include <stdexcept>

#include "nn/network.hpp"
#include "tensor/ops.hpp"

namespace dronet {

RouteLayer::RouteLayer(std::vector<int> sources) : sources_(std::move(sources)) {
    if (sources_.empty()) throw std::invalid_argument("RouteLayer: no sources");
}

void RouteLayer::setup(const Shape&) {
    throw std::logic_error("RouteLayer::setup: use setup_with_network");
}

void RouteLayer::setup_with_network(Network& net, int self_index) {
    int channels = 0;
    Shape first{};
    bool have_first = false;
    for (int src : sources_) {
        if (src < 0 || src >= self_index) {
            throw std::invalid_argument("RouteLayer: source index out of range");
        }
        const Shape& s = net.layer(src).output_shape();
        if (!have_first) {
            first = s;
            have_first = true;
        } else if (s.h != first.h || s.w != first.w || s.n != first.n) {
            throw std::invalid_argument("RouteLayer: spatial shape mismatch between sources");
        }
        channels += s.c;
    }
    input_shape_ = first;
    output_shape_ = Shape{first.n, channels, first.h, first.w};
    output_.resize(output_shape_);
    delta_.resize(output_shape_);
}

std::string RouteLayer::describe() const {
    std::ostringstream os;
    os << "route";
    for (int s : sources_) os << " " << s;
    os << " -> " << output_shape_.w << "x" << output_shape_.h << "x" << output_shape_.c;
    return os.str();
}

void RouteLayer::forward(const Tensor&, Network& net, bool) {
    for (int b = 0; b < output_shape_.n; ++b) {
        std::int64_t offset = 0;
        for (int src : sources_) {
            const Tensor& src_out = net.layer(src).output();
            const std::int64_t chw = src_out.shape().chw();
            const float* from = src_out.data() + static_cast<std::int64_t>(b) * chw;
            float* to = output_.data() + static_cast<std::int64_t>(b) * output_shape_.chw() + offset;
            std::copy(from, from + chw, to);
            offset += chw;
        }
    }
}

void RouteLayer::backward(const Tensor&, Tensor*, Network& net) {
    // Scatter this layer's delta back into each source layer's delta.
    for (int b = 0; b < output_shape_.n; ++b) {
        std::int64_t offset = 0;
        for (int src : sources_) {
            Tensor& src_delta = net.layer(src).delta();
            const std::int64_t chw = src_delta.shape().chw();
            const float* from =
                delta_.data() + static_cast<std::int64_t>(b) * output_shape_.chw() + offset;
            float* to = src_delta.data() + static_cast<std::int64_t>(b) * chw;
            for (std::int64_t i = 0; i < chw; ++i) to[i] += from[i];
            offset += chw;
        }
    }
}

}  // namespace dronet
