// Route (concatenation) layer.
//
// Concatenates the channel dimension of one or more earlier layers' outputs,
// darknet's mechanism for skip connections. Sources are absolute layer
// indices into the owning network.
#pragma once

#include <vector>

#include "nn/layer.hpp"

namespace dronet {

class RouteLayer final : public Layer {
  public:
    /// `sources` are indices of earlier layers in the owning network.
    /// Shapes are resolved lazily through `net` at setup_with_network().
    explicit RouteLayer(std::vector<int> sources);

    [[nodiscard]] LayerKind kind() const override { return LayerKind::kRoute; }
    [[nodiscard]] std::string describe() const override;

    /// Routes resolve their input shape from the network, not the previous
    /// layer; plain setup() is unsupported.
    void setup(const Shape& input) override;
    void setup_with_network(Network& net, int self_index);

    void forward(const Tensor& input, Network& net, bool train) override;
    void backward(const Tensor& input, Tensor* input_delta, Network& net) override;
    [[nodiscard]] std::int64_t flops() const override { return output_shape_.chw(); }

    [[nodiscard]] const std::vector<int>& sources() const noexcept { return sources_; }

  private:
    std::vector<int> sources_;
};

}  // namespace dronet
