#include "nn/upsample_layer.hpp"

#include <sstream>
#include <stdexcept>

namespace dronet {

UpsampleLayer::UpsampleLayer(int stride, const Shape& input) : stride_(stride) {
    if (stride <= 0) throw std::invalid_argument("UpsampleLayer: stride must be positive");
    setup(input);
}

void UpsampleLayer::setup(const Shape& input) {
    input_shape_ = input;
    output_shape_ = Shape{input.n, input.c, input.h * stride_, input.w * stride_};
    output_.resize(output_shape_);
    delta_.resize(output_shape_);
}

std::string UpsampleLayer::describe() const {
    std::ostringstream os;
    os << "upsample x" << stride_ << "  " << input_shape_.w << "x" << input_shape_.h
       << "x" << input_shape_.c << " -> " << output_shape_.w << "x" << output_shape_.h
       << "x" << output_shape_.c;
    return os.str();
}

void UpsampleLayer::forward(const Tensor& input, Network&, bool) {
    if (input.shape() != input_shape_) {
        throw std::invalid_argument("UpsampleLayer::forward: shape mismatch");
    }
    for (int b = 0; b < input_shape_.n; ++b) {
        for (int c = 0; c < input_shape_.c; ++c) {
            for (int y = 0; y < output_shape_.h; ++y) {
                for (int x = 0; x < output_shape_.w; ++x) {
                    output_[output_.index(b, c, y, x)] =
                        input[input.index(b, c, y / stride_, x / stride_)];
                }
            }
        }
    }
}

void UpsampleLayer::backward(const Tensor&, Tensor* input_delta, Network&) {
    if (input_delta == nullptr) return;
    for (int b = 0; b < input_shape_.n; ++b) {
        for (int c = 0; c < input_shape_.c; ++c) {
            for (int y = 0; y < output_shape_.h; ++y) {
                for (int x = 0; x < output_shape_.w; ++x) {
                    (*input_delta)[input_delta->index(b, c, y / stride_, x / stride_)] +=
                        delta_[delta_.index(b, c, y, x)];
                }
            }
        }
    }
}

}  // namespace dronet
