// Nearest-neighbour upsampling layer (YOLOv3-style).
//
// Not used by the four paper models but part of the engine's layer set so
// feature-pyramid variants (the paper's future-work direction of multi-class
// multi-scale detection) can be expressed in the same cfg language.
#pragma once

#include "nn/layer.hpp"

namespace dronet {

class UpsampleLayer final : public Layer {
  public:
    UpsampleLayer(int stride, const Shape& input);

    [[nodiscard]] LayerKind kind() const override { return LayerKind::kUpsample; }
    [[nodiscard]] std::string describe() const override;
    void setup(const Shape& input) override;
    void forward(const Tensor& input, Network& net, bool train) override;
    void backward(const Tensor& input, Tensor* input_delta, Network& net) override;
    [[nodiscard]] std::int64_t flops() const override { return output_shape_.chw(); }

    [[nodiscard]] int stride() const noexcept { return stride_; }

  private:
    int stride_ = 2;
};

}  // namespace dronet
