#include "nn/weights_io.hpp"

#include <fcntl.h>
#include <unistd.h>

#include <cstdint>
#include <stdexcept>

#include "fault/fault.hpp"
#include "io/fdio.hpp"

namespace dronet {
namespace {

constexpr std::int32_t kMajor = 0;
constexpr std::int32_t kMinor = 2;
constexpr std::int32_t kRevision = 0;

// Checkpoints go through the shared EINTR-safe helpers (io/fdio.hpp) — the
// same single definition the cluster wire protocol uses — so a signal landing
// mid-transfer (watchdog respawns, chaos tests) can never shear a read or
// write in two.

void write_floats(int fd, const std::vector<float>& v) {
    io::write_full(fd, v.data(), v.size() * sizeof(float));
}

void read_floats(int fd, std::vector<float>& v, const char* what) {
    const std::size_t want = v.size() * sizeof(float);
    // A short-read fault shrinks `take`; the truncation check below then
    // reports exactly what a really-truncated file would.
    const std::size_t take = DRONET_FAULT_IO(fault::kSiteWeightsRead, want);
    const std::size_t got = io::read_full(fd, v.data(), take);
    if (got != want) {
        throw std::runtime_error(std::string("load_weights: truncated at ") + what);
    }
}

}  // namespace

// Crash-safe checkpointing: all bytes go to a sibling temp file which is
// atomically renamed over `path` only after a successful fsync+close. A crash
// (or injected fault) at any point mid-write leaves the previous checkpoint
// untouched — load_weights can never see a half-written file.
void save_weights(const Network& net, const std::filesystem::path& path) {
    const std::filesystem::path tmp = path.string() + ".tmp";
    try {
        {
            io::UniqueFd out(::open(tmp.c_str(),
                                    O_WRONLY | O_CREAT | O_TRUNC | O_CLOEXEC, 0644));
            if (!out) {
                throw std::runtime_error("save_weights: cannot open " + tmp.string());
            }
            io::write_full(out.get(), &kMajor, sizeof(kMajor));
            io::write_full(out.get(), &kMinor, sizeof(kMinor));
            io::write_full(out.get(), &kRevision, sizeof(kRevision));
            const std::uint64_t seen =
                static_cast<std::uint64_t>(net.batch_num()) * net.config().batch;
            io::write_full(out.get(), &seen, sizeof(seen));
            auto& mutable_net = const_cast<Network&>(net);
            for (std::size_t i = 0; i < net.num_layers(); ++i) {
                Layer& l = mutable_net.layer(static_cast<int>(i));
                if (l.kind() != LayerKind::kConvolutional) continue;
                DRONET_FAULT_POINT(fault::kSiteWeightsWrite);
                auto& conv = dynamic_cast<ConvolutionalLayer&>(l);
                write_floats(out.get(), conv.biases().v);
                if (conv.config().batch_normalize) {
                    write_floats(out.get(), conv.scales().v);
                    write_floats(out.get(), conv.rolling_mean());
                    write_floats(out.get(), conv.rolling_variance());
                }
                write_floats(out.get(), conv.weights().v);
            }
            if (::fsync(out.get()) != 0) {
                throw std::runtime_error("save_weights: write failed for " + tmp.string());
            }
        }
        std::filesystem::rename(tmp, path);  // atomic on POSIX
        // The rename is only durable once the directory entry itself is on
        // disk: fsync the parent directory, or a crash right here could roll
        // the directory back and lose the just-committed checkpoint even
        // though its data blocks were synced.
        const std::filesystem::path dir =
            path.has_parent_path() ? path.parent_path() : ".";
        DRONET_FAULT_POINT(fault::kSiteWeightsDirFsync);
        io::UniqueFd dfd(::open(dir.c_str(), O_RDONLY | O_DIRECTORY | O_CLOEXEC));
        if (!dfd || ::fsync(dfd.get()) != 0) {
            throw std::runtime_error("save_weights: cannot fsync directory " +
                                     dir.string());
        }
    } catch (...) {
        std::error_code ec;
        std::filesystem::remove(tmp, ec);  // best-effort; a real crash leaves it
        throw;
    }
}

std::int64_t expected_weight_file_bytes(const Network& net) {
    // 3 version ints + the 8-byte `seen` counter.
    std::int64_t floats = 0;
    for (std::size_t i = 0; i < net.num_layers(); ++i) {
        const Layer& l = net.layer(static_cast<int>(i));
        if (l.kind() != LayerKind::kConvolutional) continue;
        const auto& conv = dynamic_cast<const ConvolutionalLayer&>(l);
        const ConvConfig& c = conv.config();
        floats += static_cast<std::int64_t>(c.filters) *
                  (1 + (c.batch_normalize ? 3 : 0));  // biases [+ scales, mean, var]
        floats += static_cast<std::int64_t>(c.filters) * conv.input_shape().c *
                  c.ksize * c.ksize;
    }
    return 20 + 4 * floats;
}

void load_weights(Network& net, const std::filesystem::path& path) {
    std::error_code ec;
    const auto actual = std::filesystem::file_size(path, ec);
    if (!ec) {
        const std::int64_t expected = expected_weight_file_bytes(net);
        if (static_cast<std::int64_t>(actual) != expected) {
            throw std::runtime_error(
                "load_weights: " + path.string() + " holds " + std::to_string(actual) +
                " bytes but the network layout needs exactly " +
                std::to_string(expected) +
                " (truncated checkpoint or cfg/weights mismatch)");
        }
    }
    io::UniqueFd in(::open(path.c_str(), O_RDONLY | O_CLOEXEC));
    if (!in) throw std::runtime_error("load_weights: cannot open " + path.string());
    std::int32_t header[3] = {0, 0, 0};  // major, minor, revision
    std::uint64_t seen = 0;
    if (io::read_full(in.get(), header, sizeof(header)) != sizeof(header) ||
        io::read_full(in.get(), &seen, sizeof(seen)) != sizeof(seen)) {
        throw std::runtime_error("load_weights: truncated header in " + path.string());
    }
    for (std::size_t i = 0; i < net.num_layers(); ++i) {
        Layer& l = net.layer(static_cast<int>(i));
        if (l.kind() != LayerKind::kConvolutional) continue;
        auto& conv = dynamic_cast<ConvolutionalLayer&>(l);
        read_floats(in.get(), conv.biases().v, "biases");
        if (conv.config().batch_normalize) {
            read_floats(in.get(), conv.scales().v, "scales");
            read_floats(in.get(), conv.rolling_mean(), "rolling_mean");
            read_floats(in.get(), conv.rolling_variance(), "rolling_variance");
        }
        read_floats(in.get(), conv.weights().v, "weights");
    }
    // Trailing bytes indicate a structure/file mismatch.
    char extra = 0;
    if (io::read_full(in.get(), &extra, 1) != 0) {
        throw std::runtime_error("load_weights: file larger than network: " + path.string());
    }
    if (net.config().batch > 0) {
        net.set_batch_num(static_cast<std::int64_t>(seen) / net.config().batch);
    }
    if (RegionLayer* head = net.region()) {
        head->set_seen(static_cast<std::int64_t>(seen));
    }
}

}  // namespace dronet
