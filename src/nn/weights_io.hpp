// Darknet-format binary weight files.
//
// Layout matches darknet's save_weights/load_weights so trained models can be
// checkpointed and shipped: a 3-int version header, the `seen` image counter,
// then for every convolutional layer (in network order):
//   biases, [scales, rolling_mean, rolling_variance,] weights
// all as little-endian float32.
#pragma once

#include <filesystem>

#include "nn/network.hpp"

namespace dronet {

/// Writes all layer parameters of `net` to `path`.
/// Throws std::runtime_error on I/O failure.
void save_weights(const Network& net, const std::filesystem::path& path);

/// Exact size in bytes of a darknet-format weight file matching `net`'s
/// structure (header + every conv parameter block). load_weights compares
/// this against the actual file size before reading a single float, so a
/// truncated or mismatched checkpoint fails fast with a precise message
/// instead of deep inside the read loop.
[[nodiscard]] std::int64_t expected_weight_file_bytes(const Network& net);

/// Loads parameters into an already-constructed network (structure must
/// match the file). Restores the `seen` counter into the region layer and
/// the network batch counter. Throws std::runtime_error on mismatch.
void load_weights(Network& net, const std::filesystem::path& path);

}  // namespace dronet
