#include "platform/platform_model.hpp"

#include <algorithm>
#include <chrono>
#include <string>
#include <vector>

#include "simd/dispatch.hpp"
#include "tensor/gemm.hpp"

namespace dronet {

PlatformSpec intel_i5_2520m() {
    // 2C/4T Sandy Bridge @ 3.2 GHz turbo, AVX: ~51 GFLOP/s peak; darknet's
    // CPU GEMM sustains ~10% of that. 3 MB LLC with aggressive hardware
    // prefetch keeps the cache-thrash floor mild (0.5); ~21 GB/s DDR3 at
    // ~30% sustained efficiency.
    return PlatformSpec{"Intel i5-2520M", 5.2, 6.3, 3e6, 0.5, 2.0};
}

PlatformSpec odroid_xu4() {
    // Exynos 5422 big.LITTLE (4x A15 @ 2 GHz + 4x A7). The paper observed
    // darknet spreading across all eight cores at ~50% utilization; in that
    // regime the NEON clusters sustain ~8 GFLOP/s on cache-resident GEMM but
    // collapse hard (floor 0.05) once weight panels spill the 2 MB big-
    // cluster L2 into slow LPDDR3.
    return PlatformSpec{"Odroid-XU4", 8.1, 2.0, 2e6, 0.05, 8.0};
}

PlatformSpec raspberry_pi3() {
    // 4x Cortex-A53 @ 1.2 GHz, in-order NEON: ~4.6 GFLOP/s sustained on
    // cache-resident kernels; 512 KB shared L2 and a slow LPDDR2 interface.
    return PlatformSpec{"Raspberry Pi 3", 4.6, 1.5, 5.12e5, 0.08, 12.0};
}

std::vector<PlatformSpec> paper_platforms() {
    return {intel_i5_2520m(), odroid_xu4(), raspberry_pi3()};
}

double cache_scale(const PlatformSpec& platform, double weights_bytes) {
    if (weights_bytes <= platform.cache_bytes) return 1.0;
    return std::max(platform.min_cache_scale, platform.cache_bytes / weights_bytes);
}

LayerCost estimate_layer_cost(const Layer& layer, const PlatformSpec& platform) {
    LayerCost cost;
    cost.description = layer.describe();
    double scale = 1.0;
    if (layer.kind() == LayerKind::kConvolutional) {
        const double weight_bytes =
            static_cast<double>(layer.param_count()) * sizeof(float);
        scale = cache_scale(platform, weight_bytes);
    }
    cost.compute_ms = static_cast<double>(layer.flops()) /
                      (platform.effective_gflops * scale) * 1e-6;
    cost.memory_ms =
        static_cast<double>(layer.memory_bytes()) / platform.bandwidth_gbps * 1e-6;
    return cost;
}

double estimate_latency_ms(const Network& net, const PlatformSpec& platform) {
    double total = platform.framework_overhead_ms;
    for (std::size_t i = 0; i < net.num_layers(); ++i) {
        total += estimate_layer_cost(net.layer(static_cast<int>(i)), platform).total_ms();
    }
    return total;
}

double estimate_fps(const Network& net, const PlatformSpec& platform) {
    const double ms = estimate_latency_ms(net, platform);
    return ms > 0 ? 1000.0 / ms : 0.0;
}

std::vector<LayerCost> cost_breakdown(const Network& net, const PlatformSpec& platform) {
    std::vector<LayerCost> out;
    out.reserve(net.num_layers());
    for (std::size_t i = 0; i < net.num_layers(); ++i) {
        out.push_back(estimate_layer_cost(net.layer(static_cast<int>(i)), platform));
    }
    return out;
}

PlatformSpec calibrate_host_platform() {
    // Time a conv-shaped GEMM (DroNet stage 3 at 416 input) with the
    // production kernel.
    constexpr int m = 64, k = 32 * 9, n = 52 * 52;
    std::vector<float> a(static_cast<std::size_t>(m) * k, 0.5f);
    std::vector<float> b(static_cast<std::size_t>(k) * n, 0.25f);
    std::vector<float> c(static_cast<std::size_t>(m) * n, 0.0f);
    const auto run = [&] {
        gemm(false, false, m, n, k, 1.0f, a.data(), k, b.data(), n, 0.0f, c.data(), n);
    };
    run();  // warm-up
    const auto begin = std::chrono::steady_clock::now();
    constexpr int reps = 10;
    for (int i = 0; i < reps; ++i) run();
    const double seconds =
        std::chrono::duration<double>(std::chrono::steady_clock::now() - begin).count();
    const double gflops =
        static_cast<double>(gemm_flops(m, n, k)) * reps / (seconds > 0 ? seconds : 1e-9) * 1e-9;
    // The measured figure depends on which kernel level ran; record it.
    const std::string name =
        std::string("host (measured, ") + simd::to_string(simd::active_level()) + ")";
    PlatformSpec spec{name, std::max(0.1, gflops), 8.0, 4e6, 0.12, 1.0};
    return spec;
}

}  // namespace dronet
