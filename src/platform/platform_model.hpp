// Analytic performance model of the paper's embedded platforms.
//
// The paper measures FPS on three CPU platforms (§IV): an Intel i5-2520M
// laptop CPU, the Odroid-XU4 (Exynos 5422) mounted on the DJI Matrice 100,
// and a Raspberry Pi 3. Those boards are not available here, so the FPS
// rows are reproduced with a calibrated roofline-style model
// (DESIGN.md §2):
//
//   layer_time = flops / (effective_gflops * cache_scale(weights))
//              + bytes_moved / effective_bandwidth
//   frame_time = framework_overhead + sum(layer_time)
//
// cache_scale models GEMM weight-panel reuse: when a layer's weights exceed
// the last-level cache, efficiency degrades proportionally (floored), which
// is what makes the 60 MB TinyYoloVoc collapse to ~0.1 FPS on the Odroid
// while the 128 KB DroNet stays in the 8-10 FPS band — the paper's 40x
// observation. Constants are calibrated against the paper's published
// anchor points (SmallYoloV3@384 = 23 FPS on the i5; DroNet@512 = 8-10 FPS
// Odroid, 5-6 FPS RPi3; TinyYoloVoc = 0.1 FPS Odroid).
#pragma once

#include <string>
#include <vector>

#include "nn/network.hpp"

namespace dronet {

struct PlatformSpec {
    std::string name;
    double effective_gflops = 4.0;   ///< sustained GEMM throughput, one image
    double bandwidth_gbps = 2.0;     ///< sustained memory bandwidth
    double cache_bytes = 2e6;        ///< last-level cache
    double min_cache_scale = 0.12;   ///< floor of the cache-thrash penalty
    double framework_overhead_ms = 5;///< per-frame capture/convert/postprocess
};

/// The paper's three evaluation platforms (§IV) plus this machine.
[[nodiscard]] PlatformSpec intel_i5_2520m();
[[nodiscard]] PlatformSpec odroid_xu4();
[[nodiscard]] PlatformSpec raspberry_pi3();
[[nodiscard]] std::vector<PlatformSpec> paper_platforms();

struct LayerCost {
    std::string description;
    double compute_ms = 0;
    double memory_ms = 0;
    [[nodiscard]] double total_ms() const noexcept { return compute_ms + memory_ms; }
};

/// Efficiency multiplier for a conv layer whose weight panel is
/// `weights_bytes` on a platform with the given cache.
[[nodiscard]] double cache_scale(const PlatformSpec& platform, double weights_bytes);

/// Per-layer cost estimate for one image.
[[nodiscard]] LayerCost estimate_layer_cost(const Layer& layer,
                                            const PlatformSpec& platform);

/// Full per-frame latency (ms) and FPS for one image.
[[nodiscard]] double estimate_latency_ms(const Network& net, const PlatformSpec& platform);
[[nodiscard]] double estimate_fps(const Network& net, const PlatformSpec& platform);

/// Layer-by-layer cost table (diagnostics / ablation bench).
[[nodiscard]] std::vector<LayerCost> cost_breakdown(const Network& net,
                                                    const PlatformSpec& platform);

/// Measures this host's sustained GEMM GFLOP/s on a DroNet-sized problem and
/// returns a PlatformSpec usable in the same tables ("host (measured)").
[[nodiscard]] PlatformSpec calibrate_host_platform();

}  // namespace dronet
