#include "profile/profiler.hpp"

#include <algorithm>
#include <atomic>
#include <chrono>
#include <cstdlib>
#include <sstream>

namespace dronet::profile {
namespace {

std::uint64_t now_ns() noexcept {
    return static_cast<std::uint64_t>(
        std::chrono::duration_cast<std::chrono::nanoseconds>(
            std::chrono::steady_clock::now().time_since_epoch())
            .count());
}

bool env_default() noexcept {
    // Read once under call_once-like static init (flag() below); no
    // concurrent setenv in this process.
    // NOLINTNEXTLINE(concurrency-mt-unsafe)
    const char* env = std::getenv("DRONET_PROFILE");
    return env != nullptr && env[0] != '\0' &&
           !(env[0] == '0' && env[1] == '\0');
}

std::atomic<bool>& flag() noexcept {
    static std::atomic<bool> enabled{env_default()};
    return enabled;
}

}  // namespace

bool profiling_enabled() noexcept {
    return flag().load(std::memory_order_relaxed);
}

void set_profiling(bool on) noexcept {
    flag().store(on, std::memory_order_relaxed);
}

double LayerStat::mean_ms() const noexcept {
    return calls > 0 ? total_ms / static_cast<double>(calls) : 0.0;
}

double LayerStat::gflops() const noexcept {
    if (total_ms <= 0.0) return 0.0;
    const double total_flops =
        static_cast<double>(flops) * static_cast<double>(calls);
    return total_flops / (total_ms * 1e6);
}

void ForwardProfiler::record_layer(int index, std::string_view name,
                                   std::int64_t flops, double ms) {
    if (index < 0) return;
    sync::MutexLock lock(mu_);
    if (static_cast<std::size_t>(index) >= layers_.size()) {
        layers_.resize(static_cast<std::size_t>(index) + 1);
    }
    LayerStat& s = layers_[static_cast<std::size_t>(index)];
    if (s.calls == 0) {
        s.index = index;
        s.name.assign(name);
        s.flops = flops;
    }
    ++s.calls;
    s.total_ms += ms;
}

void ForwardProfiler::record_forward(double ms) {
    sync::MutexLock lock(mu_);
    ++forwards_;
    total_forward_ms_ += ms;
}

std::size_t ForwardProfiler::layer_count() const {
    sync::MutexLock lock(mu_);
    return layers_.size();
}

std::vector<LayerStat> ForwardProfiler::layers() const {
    sync::MutexLock lock(mu_);
    return layers_;
}

std::uint64_t ForwardProfiler::forwards() const {
    sync::MutexLock lock(mu_);
    return forwards_;
}

double ForwardProfiler::total_forward_ms() const {
    sync::MutexLock lock(mu_);
    return total_forward_ms_;
}

double ForwardProfiler::layer_sum_ms() const {
    sync::MutexLock lock(mu_);
    return layer_sum_ms_locked();
}

double ForwardProfiler::layer_sum_ms_locked() const {
    double sum = 0.0;
    for (const LayerStat& s : layers_) sum += s.total_ms;
    return sum;
}

void ForwardProfiler::reset() {
    sync::MutexLock lock(mu_);
    layers_.clear();
    forwards_ = 0;
    total_forward_ms_ = 0.0;
}

std::string ForwardProfiler::report_text() const {
    sync::MutexLock lock(mu_);
    std::ostringstream os;
    os.setf(std::ios::fixed);
    const double total = total_forward_ms_;
    os << "layer  kind       calls   mean ms     total ms   share    GFLOP/s\n";
    for (const LayerStat& s : layers_) {
        if (s.calls == 0) continue;
        os.precision(3);
        os << s.index;
        for (std::size_t p = std::to_string(s.index).size(); p < 7; ++p) os << ' ';
        os << s.name;
        for (std::size_t p = s.name.size(); p < 11; ++p) os << ' ';
        os.width(5);
        os << s.calls << "  ";
        os.width(8);
        os << s.mean_ms() << "  ";
        os.width(11);
        os << s.total_ms << "  ";
        os.precision(1);
        os.width(5);
        os << (total > 0.0 ? 100.0 * s.total_ms / total : 0.0) << "%  ";
        os.precision(2);
        os.width(9);
        os << s.gflops() << "\n";
    }
    os.precision(3);
    os << "forwards " << forwards_ << ", layer sum " << layer_sum_ms_locked()
       << " ms, end-to-end " << total_forward_ms_ << " ms";
    if (forwards_ > 0) {
        os << " (" << total_forward_ms_ / static_cast<double>(forwards_)
           << " ms/forward)";
    }
    os << "\n";
    return os.str();
}

std::string ForwardProfiler::report_json() const {
    sync::MutexLock lock(mu_);
    std::ostringstream os;
    os.setf(std::ios::fixed);
    os.precision(4);
    const double sum = layer_sum_ms_locked();
    os << "{\"forwards\":" << forwards_
       << ",\"forward_ms_total\":" << total_forward_ms_ << ",\"forward_ms_mean\":"
       << (forwards_ > 0 ? total_forward_ms_ / static_cast<double>(forwards_) : 0.0)
       << ",\"layer_sum_ms\":" << sum << ",\"coverage\":"
       << (total_forward_ms_ > 0.0 ? sum / total_forward_ms_ : 0.0)
       << ",\"layers\":[";
    bool first = true;
    for (const LayerStat& s : layers_) {
        if (s.calls == 0) continue;
        if (!first) os << ",";
        first = false;
        os << "{\"index\":" << s.index << ",\"kind\":\"" << s.name
           << "\",\"flops\":" << s.flops << ",\"calls\":" << s.calls
           << ",\"total_ms\":" << s.total_ms << ",\"mean_ms\":" << s.mean_ms()
           << ",\"gflops\":" << s.gflops() << "}";
    }
    os << "]}";
    return os.str();
}

ScopedLayerTimer::ScopedLayerTimer(ForwardProfiler* sink, int index,
                                   std::string_view name, std::int64_t flops)
    : sink_(sink), index_(index), name_(sink != nullptr ? name : std::string_view{}),
      flops_(flops), start_ns_(sink != nullptr ? now_ns() : 0) {}

ScopedLayerTimer::~ScopedLayerTimer() {
    if (sink_ == nullptr) return;
    sink_->record_layer(index_, name_, flops_,
                        static_cast<double>(now_ns() - start_ns_) * 1e-6);
}

ScopedForwardTimer::ScopedForwardTimer(ForwardProfiler* sink) noexcept
    : sink_(sink), start_ns_(sink != nullptr ? now_ns() : 0) {}

ScopedForwardTimer::~ScopedForwardTimer() {
    if (sink_ == nullptr) return;
    sink_->record_forward(static_cast<double>(now_ns() - start_ns_) * 1e-6);
}

}  // namespace dronet::profile
