// Low-overhead per-layer forward-pass profiler.
//
// The paper's contribution is a throughput/accuracy trade-off measured on
// CPU-bound platforms, so "where does a forward pass spend its time" is the
// primary optimisation question. This module answers it: Network::forward
// wraps every layer in a ScopedLayerTimer when profiling is enabled and
// aggregates wall-time, call counts and achieved GFLOP/s per layer, plus the
// end-to-end forward time, into text and JSON reports.
//
// Profiling is off by default; the per-forward cost when disabled is one
// relaxed atomic load. Enable with the DRONET_PROFILE environment variable
// (any value except "0") or programmatically via set_profiling(true).
// Each Network owns its own ForwardProfiler, so DetectionService replicas
// profile independently; a single network's forward is always driven by one
// thread at a time, so the internal mutex is uncontended on the hot path. It
// exists because *reports* are read from other threads (DetectionService::
// profile_reports aggregates replica profilers) — the lock makes those reads
// well-defined and lets the thread-safety analysis check the discipline.
//
// Consumers: tools/profile (per-layer breakdown CLI), tools/detect
// --profile, tools/serve_bench --profile, docs/performance.md.
#pragma once

#include <cstdint>
#include <string>
#include <string_view>
#include <vector>

#include "sync/mutex.hpp"

namespace dronet::profile {

/// True when per-layer timing should be collected. Reads DRONET_PROFILE once
/// at first call; set_profiling() overrides it either way afterwards.
[[nodiscard]] bool profiling_enabled() noexcept;
void set_profiling(bool on) noexcept;

/// Accumulated cost of one layer position in the network.
struct LayerStat {
    int index = -1;            ///< layer position in the network
    std::string name;          ///< layer kind ("conv", "maxpool", ...)
    std::int64_t flops = 0;    ///< FLOP estimate per single forward
    std::uint64_t calls = 0;   ///< forwards recorded
    double total_ms = 0.0;     ///< wall time summed over calls

    /// Mean wall time per call in milliseconds (0 when never called).
    [[nodiscard]] double mean_ms() const noexcept;
    /// Achieved throughput in GFLOP/s over the recorded calls.
    [[nodiscard]] double gflops() const noexcept;
};

/// Per-network aggregation sink. Records are serialized by the internal
/// mutex; a network's forward pass is single-threaded, so the lock is
/// uncontended unless reports are read concurrently.
class ForwardProfiler {
  public:
    /// Adds `ms` of wall time to layer `index`, creating its slot on first
    /// sight. `name`/`flops` are sticky from the first record.
    void record_layer(int index, std::string_view name, std::int64_t flops,
                      double ms) EXCLUDES(mu_);

    /// Adds one completed end-to-end forward of `ms` wall time.
    void record_forward(double ms) EXCLUDES(mu_);

    [[nodiscard]] std::size_t layer_count() const EXCLUDES(mu_);
    /// Snapshot of the per-layer stats (copied under the lock).
    [[nodiscard]] std::vector<LayerStat> layers() const EXCLUDES(mu_);
    [[nodiscard]] std::uint64_t forwards() const EXCLUDES(mu_);
    /// End-to-end forward wall time summed over all recorded forwards.
    [[nodiscard]] double total_forward_ms() const EXCLUDES(mu_);
    /// Sum of per-layer wall time (<= total_forward_ms; the difference is
    /// loop overhead: shape checks, the input copy, timer reads).
    [[nodiscard]] double layer_sum_ms() const EXCLUDES(mu_);

    void reset() EXCLUDES(mu_);

    /// Human table: one line per layer with share-of-total and GFLOP/s.
    [[nodiscard]] std::string report_text() const EXCLUDES(mu_);
    /// Single JSON object: {"forwards", "forward_ms_total", "forward_ms_mean",
    /// "layer_sum_ms", "coverage", "layers": [...]} — the tools/profile
    /// --json payload.
    [[nodiscard]] std::string report_json() const EXCLUDES(mu_);

  private:
    [[nodiscard]] double layer_sum_ms_locked() const REQUIRES(mu_);

    mutable sync::Mutex mu_{"ForwardProfiler::mu"};
    std::vector<LayerStat> layers_ GUARDED_BY(mu_);
    std::uint64_t forwards_ GUARDED_BY(mu_) = 0;
    double total_forward_ms_ GUARDED_BY(mu_) = 0.0;
};

/// RAII wall-clock timer: records into `sink` at destruction. A null sink
/// makes it a no-op so call sites don't need to branch. The name is copied
/// (the caller may pass a temporary).
class ScopedLayerTimer {
  public:
    ScopedLayerTimer(ForwardProfiler* sink, int index, std::string_view name,
                     std::int64_t flops);
    ~ScopedLayerTimer();

    ScopedLayerTimer(const ScopedLayerTimer&) = delete;
    ScopedLayerTimer& operator=(const ScopedLayerTimer&) = delete;

  private:
    ForwardProfiler* sink_;
    int index_;
    std::string name_;
    std::int64_t flops_;
    std::uint64_t start_ns_;
};

/// RAII timer for the whole forward pass (record_forward at destruction).
class ScopedForwardTimer {
  public:
    explicit ScopedForwardTimer(ForwardProfiler* sink) noexcept;
    ~ScopedForwardTimer();

    ScopedForwardTimer(const ScopedForwardTimer&) = delete;
    ScopedForwardTimer& operator=(const ScopedForwardTimer&) = delete;

  private:
    ForwardProfiler* sink_;
    std::uint64_t start_ns_;
};

}  // namespace dronet::profile
