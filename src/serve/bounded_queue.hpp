// Bounded multi-producer/multi-consumer queue with pluggable backpressure.
//
// The serving layer's robustness story for live video: when frames arrive
// faster than the workers drain them, the queue either blocks the producer
// (batch jobs, lossless), rejects the new frame (load shedding at the edge),
// or evicts the oldest queued frame (live streams, where the newest frame is
// the most valuable one). All three policies are exercised under TSan by the
// `concurrency`-labeled tests.
#pragma once

#include <chrono>
#include <cstddef>
#include <deque>
#include <optional>
#include <utility>
#include <vector>

#include "fault/fault.hpp"
#include "sync/mutex.hpp"

namespace dronet::serve {

enum class BackpressurePolicy {
    kBlock,      ///< push() waits for space (lossless; producers throttle)
    kReject,     ///< push() fails immediately when full
    kDropOldest, ///< push() evicts the oldest queued item to make room
};

[[nodiscard]] constexpr const char* to_string(BackpressurePolicy p) noexcept {
    switch (p) {
        case BackpressurePolicy::kBlock: return "block";
        case BackpressurePolicy::kReject: return "reject";
        case BackpressurePolicy::kDropOldest: return "drop-oldest";
    }
    return "?";
}

enum class PushOutcome {
    kEnqueued,       ///< item accepted
    kRejected,       ///< queue full under kReject, item returned to caller
    kEvictedOldest,  ///< item accepted; the oldest item was evicted
    kClosed,         ///< queue closed, item returned to caller
};

template <typename T>
class BoundedQueue {
  public:
    explicit BoundedQueue(std::size_t capacity,
                          BackpressurePolicy policy = BackpressurePolicy::kBlock)
        : capacity_(capacity == 0 ? 1 : capacity), policy_(policy) {}

    BoundedQueue(const BoundedQueue&) = delete;
    BoundedQueue& operator=(const BoundedQueue&) = delete;

    /// Enqueues `item` according to the backpressure policy. On kRejected or
    /// kClosed the argument is left unconsumed (not moved from). On
    /// kEvictedOldest the evicted element is moved into `*evicted` when the
    /// caller provides one (so a serving layer can fail that frame's future).
    PushOutcome push(T&& item, std::optional<T>* evicted = nullptr)
        EXCLUDES(mu_) {
        DRONET_FAULT_POINT(fault::kSiteQueuePush);  // before the lock: latency
        sync::MutexLock lock(mu_);
        if (policy_ == BackpressurePolicy::kBlock) {
            while (!closed_ && items_.size() >= capacity_) not_full_.wait(mu_);
        }
        if (closed_) return PushOutcome::kClosed;
        PushOutcome outcome = PushOutcome::kEnqueued;
        if (items_.size() >= capacity_) {
            if (policy_ == BackpressurePolicy::kReject) return PushOutcome::kRejected;
            // kDropOldest (kBlock can't get here: the wait above guarantees room).
            if (evicted != nullptr) *evicted = std::move(items_.front());
            items_.pop_front();
            outcome = PushOutcome::kEvictedOldest;
        }
        items_.push_back(std::move(item));
        lock.unlock();
        not_empty_.notify_one();
        return outcome;
    }

    /// Blocks until an item is available or the queue is closed and drained;
    /// returns nullopt only in the latter case.
    std::optional<T> pop() EXCLUDES(mu_) {
        sync::MutexLock lock(mu_);
        while (!closed_ && items_.empty()) not_empty_.wait(mu_);
        if (items_.empty()) return std::nullopt;  // closed and drained
        T item = std::move(items_.front());
        items_.pop_front();
        lock.unlock();
        not_full_.notify_one();
        return item;
    }

    /// Batched pop for micro-batching consumers: blocks for the first item
    /// exactly like pop(), then lingers up to `linger` for more items, taking
    /// at most `max_items` in total. Items are appended to `out`; returns the
    /// number taken, which is 0 only when the queue is closed and drained.
    /// A zero `linger` takes whatever is already queued without waiting.
    std::size_t pop_batch(std::vector<T>& out, std::size_t max_items,
                          std::chrono::microseconds linger) EXCLUDES(mu_) {
        if (max_items == 0) return 0;
        DRONET_FAULT_POINT(fault::kSiteQueuePop);  // before the lock: latency
        sync::MutexLock lock(mu_);
        while (!closed_ && items_.empty()) not_empty_.wait(mu_);
        if (items_.empty()) return 0;  // closed and drained
        std::size_t taken = 0;
        take_available_locked(out, taken, max_items);
        if (linger.count() > 0 && taken < max_items) {
            const auto deadline = std::chrono::steady_clock::now() + linger;
            while (taken < max_items) {
                bool timed_out = false;
                while (!closed_ && items_.empty()) {
                    if (not_empty_.wait_until(mu_, deadline) ==
                        std::cv_status::timeout) {
                        timed_out = true;
                        break;
                    }
                }
                if (items_.empty()) break;  // timed out, or closed dry
                take_available_locked(out, taken, max_items);
                if (timed_out) break;
            }
        }
        lock.unlock();
        // Potentially freed several slots; wake every blocked producer.
        if (taken > 1) not_full_.notify_all();
        else not_full_.notify_one();
        return taken;
    }

    /// Non-blocking pop; false when empty (regardless of closed state).
    bool try_pop(T& out) EXCLUDES(mu_) {
        sync::MutexLock lock(mu_);
        if (items_.empty()) return false;
        out = std::move(items_.front());
        items_.pop_front();
        lock.unlock();
        not_full_.notify_one();
        return true;
    }

    /// Closes the queue: subsequent pushes fail with kClosed, blocked
    /// producers and consumers wake up. Items already queued remain poppable.
    void close() EXCLUDES(mu_) {
        {
            sync::MutexLock lock(mu_);
            closed_ = true;
        }
        not_empty_.notify_all();
        not_full_.notify_all();
    }

    [[nodiscard]] bool closed() const EXCLUDES(mu_) {
        sync::MutexLock lock(mu_);
        return closed_;
    }

    [[nodiscard]] std::size_t size() const EXCLUDES(mu_) {
        sync::MutexLock lock(mu_);
        return items_.size();
    }

    [[nodiscard]] std::size_t capacity() const noexcept { return capacity_; }
    [[nodiscard]] BackpressurePolicy policy() const noexcept { return policy_; }

  private:
    /// Moves up to `max_items - taken` queued items into `out`.
    void take_available_locked(std::vector<T>& out, std::size_t& taken,
                               std::size_t max_items) REQUIRES(mu_) {
        while (taken < max_items && !items_.empty()) {
            out.push_back(std::move(items_.front()));
            items_.pop_front();
            ++taken;
        }
    }

    mutable sync::Mutex mu_{"BoundedQueue::mu"};
    sync::CondVar not_empty_;
    sync::CondVar not_full_;
    std::deque<T> items_ GUARDED_BY(mu_);
    const std::size_t capacity_;
    const BackpressurePolicy policy_;
    bool closed_ GUARDED_BY(mu_) = false;
};

}  // namespace dronet::serve
