#include "serve/detection_service.hpp"

#include <algorithm>
#include <cmath>
#include <stdexcept>
#include <utility>

#include "eval/evaluator.hpp"
#include "fault/fault.hpp"
#include "nn/clone.hpp"
#include "nn/weights_io.hpp"
#include "tensor/rng.hpp"

namespace dronet::serve {

namespace {

double ms_since(std::chrono::steady_clock::time_point t) {
    return std::chrono::duration<double, std::milli>(
               std::chrono::steady_clock::now() - t)
        .count();
}

constexpr auto kNoDeadline = std::chrono::steady_clock::time_point::max();

/// Thrown by detect_with_retry when a frame's deadline expires mid-retry;
/// both ends live in this TU.
struct DeadlineExpired {};

}  // namespace

DetectionService::DetectionService(const Network& prototype, ServiceConfig config)
    : config_(config),
      altitude_filter_(config.pipeline.camera, config.pipeline.size_prior),
      queue_(config.queue_capacity, config.policy),
      started_at_(std::chrono::steady_clock::now()) {
    if (config_.workers <= 0) {
        throw std::invalid_argument("DetectionService: workers must be positive");
    }
    if (config_.max_batch <= 0) {
        throw std::invalid_argument("DetectionService: max_batch must be positive");
    }
    if (config_.batch_timeout_us < 0) {
        throw std::invalid_argument("DetectionService: batch_timeout_us must be >= 0");
    }
    if (config_.deadline_ms < 0 || config_.max_retries < 0 ||
        config_.retry_backoff_ms < 0 || config_.breaker_threshold < 0 ||
        config_.watchdog_interval_ms <= 0) {
        throw std::invalid_argument("DetectionService: negative self-healing knob");
    }
    if (config_.breaker_threshold > 0 && config_.breaker_open_ms <= 0) {
        throw std::invalid_argument("DetectionService: breaker_open_ms must be positive");
    }
    if (config_.degrade_high_watermark > 0) {
        if (config_.degraded_size <= 0) {
            throw std::invalid_argument(
                "DetectionService: degradation needs degraded_size > 0");
        }
        if (config_.degrade_low_watermark > config_.degrade_high_watermark) {
            throw std::invalid_argument(
                "DetectionService: degrade_low_watermark > high watermark");
        }
        if (prototype.config().width != prototype.config().height) {
            throw std::invalid_argument(
                "DetectionService: degradation requires a square input network");
        }
    }
    if (prototype.region() == nullptr) {
        throw std::invalid_argument("DetectionService: network has no region layer");
    }
    if (config_.int8 && prototype.fp16()) {
        throw std::invalid_argument(
            "DetectionService: int8 and fp16 modes are mutually exclusive");
    }
    if (config_.canary_max_divergence <= 0 || config_.reload_probation_ms < 0 ||
        config_.reload_rollback_failures <= 0) {
        throw std::invalid_argument("DetectionService: bad model-lifecycle knob");
    }
    full_size_ = prototype.config().width;
    {
        auto set = build_model_set(clone_network(prototype));
        set->version = 1;
        sync::MutexLock lock(model_mu_);
        live_set_ = std::move(set);
    }
    slots_.reserve(static_cast<std::size_t>(config_.workers));
    for (int i = 0; i < config_.workers; ++i) {
        slots_.push_back(std::make_unique<WorkerSlot>());
    }
    for (int i = 0; i < config_.workers; ++i) {
        slots_[static_cast<std::size_t>(i)]->thread = std::thread(
            &DetectionService::worker_loop, this, static_cast<std::size_t>(i));
    }
    if (config_.watchdog) {
        watchdog_ = std::thread(&DetectionService::watchdog_loop, this);
    }
}

DetectionService::~DetectionService() { stop(); }

// Mirrors construction for every generation: per-worker clones pre-reserved
// at the largest batch (tensor storage is grow-only, so later per-batch
// set_batch() calls in detect_images are allocation-free), the degraded
// geometry warmed when degradation is configured, and — under int8 — one
// calibration computed on replica 0 and shared (clones carry identical
// weights, so every replica quantizes identically).
std::shared_ptr<DetectionService::ModelSet>
DetectionService::build_model_set(Network candidate) {
    auto set = std::make_shared<ModelSet>();
    set->replicas.reserve(static_cast<std::size_t>(config_.workers));
    Int8Calibration int8_calib;
    for (int i = 0; i < config_.workers; ++i) {
        auto replica = std::make_unique<Network>(clone_network(candidate));
        replica->set_batch(config_.max_batch);
        if (config_.degrade_high_watermark > 0) {
            replica->resize_input(config_.degraded_size, config_.degraded_size);
            replica->resize_input(full_size_, full_size_);
        }
        if (config_.int8) {
            if (i == 0) int8_calib = QuantizedNetwork::self_calibrate(*replica);
            set->qnets.push_back(
                std::make_unique<QuantizedNetwork>(*replica, int8_calib));
        }
        replica->set_batch(1);
        set->replicas.push_back(std::move(replica));
    }
    candidate.set_batch(1);
    set->reference = std::make_unique<Network>(std::move(candidate));
    return set;
}

std::shared_ptr<const DetectionService::ModelSet>
DetectionService::current_set() const {
    sync::MutexLock lock(model_mu_);
    return live_set_;
}

std::uint64_t DetectionService::model_version() const {
    sync::MutexLock lock(model_mu_);
    return live_set_ ? live_set_->version : 0;
}

std::future<ServeResult> DetectionService::submit(Image frame) {
    Job job;
    job.frame = std::move(frame);
    job.frame_index = next_index_.fetch_add(1, std::memory_order_relaxed);
    job.submit_time = std::chrono::steady_clock::now();
    job.deadline = config_.deadline_ms > 0
                       ? job.submit_time + std::chrono::milliseconds(config_.deadline_ms)
                       : kNoDeadline;
    std::future<ServeResult> future = job.promise.get_future();
    stats_.record_submitted();

    if (stopped_.load(std::memory_order_acquire)) {
        ServeResult r;
        r.status = ServeStatus::kRejected;
        r.frame.frame_index = job.frame_index;
        r.error = "service stopped";
        stats_.record_rejected();
        job.promise.set_value(std::move(r));
        return future;
    }
    if (!breaker_allows()) {
        ServeResult r;
        r.status = ServeStatus::kRejected;
        r.frame.frame_index = job.frame_index;
        r.error = "circuit breaker open";
        stats_.record_rejected();
        job.promise.set_value(std::move(r));
        return future;
    }

    {
        sync::MutexLock lock(inflight_mu_);
        ++accepted_;
    }
    const int frame_index = job.frame_index;
    std::optional<Job> evicted;
    PushOutcome outcome;
    try {
        outcome = queue_.push(std::move(job), &evicted);
    } catch (const std::exception& e) {
        // Only reachable via an injected queue.push fault; shed the frame so
        // the accounting invariant (and the caller's future) survive.
        ServeResult r;
        r.status = ServeStatus::kRejected;
        r.frame.frame_index = frame_index;
        r.error = e.what();
        stats_.record_rejected();
        job.promise.set_value(std::move(r));
        finish_one();
        return future;
    }
    switch (outcome) {
        case PushOutcome::kEnqueued:
            break;
        case PushOutcome::kEvictedOldest: {
            ServeResult r;
            r.status = ServeStatus::kDropped;
            r.frame.frame_index = evicted->frame_index;
            stats_.record_dropped();
            evicted->promise.set_value(std::move(r));
            finish_one();  // the evicted frame, not the new one
            break;
        }
        case PushOutcome::kRejected:
        case PushOutcome::kClosed: {
            // push() does not consume its argument on these outcomes, so
            // `job` (and its promise) is still ours to resolve.
            ServeResult r;
            r.status = ServeStatus::kRejected;
            r.frame.frame_index = job.frame_index;
            stats_.record_rejected();
            job.promise.set_value(std::move(r));
            finish_one();  // was counted accepted above; balance the books
            break;
        }
    }
    if (config_.degrade_high_watermark > 0 &&
        (outcome == PushOutcome::kEnqueued || outcome == PushOutcome::kEvictedOldest) &&
        queue_.size() >= config_.degrade_high_watermark) {
        if (!degraded_.exchange(true, std::memory_order_acq_rel)) {
            stats_.record_degrade_transition();
        }
    }
    return future;
}

void DetectionService::resolve(Job& job, ServeResult r) {
    job.promise.set_value(std::move(r));
    job.resolved = true;
    finish_one();
}

void DetectionService::expire_overdue(std::vector<Job>& jobs) {
    if (config_.deadline_ms <= 0) return;
    const auto now = std::chrono::steady_clock::now();
    std::vector<Job> kept;
    kept.reserve(jobs.size());
    for (Job& job : jobs) {
        if (now > job.deadline) {
            ServeResult r;
            r.status = ServeStatus::kTimeout;
            r.frame.frame_index = job.frame_index;
            r.error = "deadline expired before processing";
            stats_.record_deadline_expired();
            resolve(job, std::move(r));
        } else {
            kept.push_back(std::move(job));
        }
    }
    jobs.swap(kept);
}

void DetectionService::apply_degrade_mode(Network& net, bool& degraded_now) {
    degraded_now = false;
    if (config_.degrade_high_watermark == 0) return;
    if (degraded_.load(std::memory_order_acquire) &&
        queue_.size() <= config_.degrade_low_watermark) {
        if (degraded_.exchange(false, std::memory_order_acq_rel)) {
            stats_.record_degrade_transition();
        }
    }
    degraded_now = degraded_.load(std::memory_order_acquire);
    const int desired = degraded_now ? config_.degraded_size : full_size_;
    if (net.config().width != desired) {
        net.resize_input(desired, desired);  // allocation-free: pre-reserved
    }
}

void DetectionService::worker_loop(std::size_t worker_id) {
    WorkerSlot& slot = *slots_[worker_id];
    const auto max_batch = static_cast<std::size_t>(config_.max_batch);
    const std::chrono::microseconds linger(config_.batch_timeout_us);
    std::vector<Job> jobs;
    try {
        while (true) {
            jobs.clear();
            if (queue_.pop_batch(jobs, max_batch, linger) == 0) {
                slot.state.store(WorkerSlot::kFinished, std::memory_order_release);
                return;  // queue closed and drained
            }
            expire_overdue(jobs);
            if (jobs.empty()) continue;
            // Re-fetch the live generation per batch: this is the hot-swap
            // commit point. The shared_ptr pins the set for the whole batch,
            // so a concurrent swap never pulls the replica out from under an
            // in-flight forward, and the old generation is freed once the
            // last worker moves on.
            const std::shared_ptr<const ModelSet> set = current_set();
            Network& net = *set->replicas[worker_id];
            QuantizedNetwork* qnet =
                set->qnets.empty() ? nullptr : set->qnets[worker_id].get();
            bool degraded_now = false;
            apply_degrade_mode(net, degraded_now);
            process_batch(net, qnet, jobs, degraded_now);
        }
    } catch (const std::exception& e) {
        on_worker_death(slot, jobs, e.what());
    } catch (...) {
        on_worker_death(slot, jobs, "unknown exception");
    }
}

// Unrecoverable fault (e.g. an injected worker-kill): fail whatever the
// worker still holds so no future is abandoned, then mark the slot dead for
// the watchdog to respawn.
void DetectionService::on_worker_death(WorkerSlot& slot, std::vector<Job>& jobs,
                                       const char* what) {
    for (Job& job : jobs) {
        if (job.resolved) continue;
        ServeResult r;
        r.status = ServeStatus::kFailed;
        r.frame.frame_index = job.frame_index;
        r.error = std::string("worker died: ") + what;
        stats_.record_failed();
        resolve(job, std::move(r));
    }
    note_frame_failure();
    slot.state.store(WorkerSlot::kDead, std::memory_order_release);
}

void DetectionService::watchdog_loop() {
    sync::MutexLock lock(watchdog_mu_);
    while (!stopping_) {
        watchdog_cv_.wait_for(
            watchdog_mu_,
            std::chrono::milliseconds(config_.watchdog_interval_ms));
        if (stopping_) return;
        lock.unlock();
        for (std::size_t i = 0; i < slots_.size(); ++i) {
            WorkerSlot& slot = *slots_[i];
            if (slot.state.load(std::memory_order_acquire) != WorkerSlot::kDead) {
                continue;
            }
            {
                sync::MutexLock tl(threads_mu_);
                if (slot.thread.joinable()) slot.thread.join();
                slot.state.store(WorkerSlot::kRunning, std::memory_order_release);
                slot.thread =
                    std::thread(&DetectionService::worker_loop, this, i);
            }
            stats_.record_worker_restart();
        }
        lock.lock();
    }
}

Detections DetectionService::detect_with_retry(Network& net, QuantizedNetwork* qnet,
                                               const Image& frame, const Job& job,
                                               DetectStageTimings* timings) {
    std::int64_t backoff = std::max<std::int64_t>(config_.retry_backoff_ms, 0);
    for (int attempt = 0;; ++attempt) {
        if (job.deadline != kNoDeadline &&
            std::chrono::steady_clock::now() > job.deadline) {
            throw DeadlineExpired{};
        }
        try {
            return detect_image_timed(net, frame, config_.pipeline.eval, timings, qnet);
        } catch (const fault::WorkerKillFault&) {
            throw;  // unrecoverable: escalate to the worker loop / watchdog
        } catch (const std::logic_error&) {
            throw;  // bad input (invalid_argument & co): retrying cannot help
        } catch (const std::exception&) {
            if (attempt >= config_.max_retries) throw;
            stats_.record_retry();
            if (backoff > 0) {
                std::this_thread::sleep_for(std::chrono::milliseconds(backoff));
            }
            backoff = std::min<std::int64_t>(backoff > 0 ? backoff * 2 : 1, 1000);
        }
    }
}

// Forwards the popped jobs as one batch and resolves each future
// individually. Per-frame stage timings are the batch aggregate amortized
// over the batch (queue wait stays per-frame); detections are bit-identical
// to processing each frame alone. On a batch error every frame is retried
// solo (with the configured transient-retry budget), so one bad or unlucky
// frame never fails its batch-mates.
void DetectionService::process_batch(Network& net, QuantizedNetwork* qnet,
                                     std::vector<Job>& jobs, bool degraded) {
    const std::size_t n = jobs.size();
    stats_.record_batch(n);
    const auto popped = std::chrono::steady_clock::now();
    std::vector<Image> frames;
    frames.reserve(n);
    for (Job& j : jobs) frames.push_back(std::move(j.frame));

    DetectStageTimings stages;
    std::vector<Detections> dets;
    bool batch_ok = true;
    try {
        dets = detect_images_timed(net, frames, config_.pipeline.eval, &stages, qnet);
    } catch (const fault::WorkerKillFault&) {
        throw;  // worker_loop fails the held jobs and marks the slot dead
    } catch (...) {
        batch_ok = false;
    }

    if (!batch_ok) {
        // Retry each frame alone so only genuinely-failing frames carry an
        // error; transient faults get the per-frame retry budget.
        for (std::size_t i = 0; i < n; ++i) {
            Job& job = jobs[i];
            ServeResult r;
            r.status = ServeStatus::kOk;
            r.frame.frame_index = job.frame_index;
            r.timings.queue_wait_ms = std::chrono::duration<double, std::milli>(
                                          popped - job.submit_time)
                                          .count();
            DetectStageTimings solo;
            try {
                r.frame.detections =
                    detect_with_retry(net, qnet, frames[i], job, &solo);
                if (config_.pipeline.altitude_filter_enabled) {
                    const auto t0 = std::chrono::steady_clock::now();
                    r.frame.detections = altitude_filter_.apply(
                        r.frame.detections, config_.pipeline.altitude_m);
                    solo.postprocess_ms += ms_since(t0);
                }
                r.timings.preprocess_ms = solo.preprocess_ms;
                r.timings.forward_ms = solo.forward_ms;
                r.timings.postprocess_ms = solo.postprocess_ms;
                r.frame.latency_ms = r.timings.total_ms();
                stats_.record_completed(r.timings);
                if (degraded) stats_.record_degraded(1);
                note_frame_success();
                resolve(job, std::move(r));
            } catch (const DeadlineExpired&) {
                r.status = ServeStatus::kTimeout;
                r.frame.detections.clear();
                r.error = "deadline expired during retry";
                stats_.record_deadline_expired();
                resolve(job, std::move(r));
            } catch (const fault::WorkerKillFault&) {
                throw;  // remaining jobs handled by worker_loop
            } catch (const std::logic_error&) {
                // Bad input: surface the exception itself (API contract with
                // detect_image) rather than a kFailed status.
                job.promise.set_exception(std::current_exception());
                job.resolved = true;
                finish_one();
            } catch (const std::exception& e) {
                r.status = ServeStatus::kFailed;
                r.frame.detections.clear();
                r.error = e.what();
                stats_.record_failed();
                note_frame_failure();
                resolve(job, std::move(r));
            }
        }
        return;
    }

    const double share = 1.0 / static_cast<double>(n);
    for (std::size_t i = 0; i < n; ++i) {
        ServeResult r;
        r.status = ServeStatus::kOk;
        r.frame.frame_index = jobs[i].frame_index;
        r.timings.queue_wait_ms = std::chrono::duration<double, std::milli>(
                                      popped - jobs[i].submit_time)
                                      .count();
        r.timings.preprocess_ms = stages.preprocess_ms * share;
        r.timings.forward_ms = stages.forward_ms * share;
        r.timings.postprocess_ms = stages.postprocess_ms * share;
        r.frame.detections = std::move(dets[i]);
        if (config_.pipeline.altitude_filter_enabled) {
            const auto t0 = std::chrono::steady_clock::now();
            r.frame.detections =
                altitude_filter_.apply(r.frame.detections, config_.pipeline.altitude_m);
            r.timings.postprocess_ms += ms_since(t0);
        }
        r.frame.latency_ms = r.timings.total_ms();
        stats_.record_completed(r.timings);
        resolve(jobs[i], std::move(r));
    }
    if (degraded) stats_.record_degraded(n);
    note_frame_success();
}

bool DetectionService::breaker_allows() {
    if (config_.breaker_threshold <= 0) return true;
    sync::MutexLock lock(breaker_mu_);
    if (!breaker_open_) return true;
    const double open_ms = ms_since(breaker_opened_at_);
    if (open_ms >= static_cast<double>(config_.breaker_open_ms)) {
        // Half-open: close, let this frame through as the trial request.
        breaker_open_ = false;
        breaker_failures_ = 0;
        stats_.record_breaker_open_ms(open_ms);
        return true;
    }
    return false;
}

void DetectionService::note_frame_failure() {
    bool opened = false;
    if (config_.breaker_threshold > 0) {
        sync::MutexLock lock(breaker_mu_);
        ++breaker_failures_;
        if (!breaker_open_ && breaker_failures_ >= config_.breaker_threshold) {
            breaker_open_ = true;
            breaker_opened_at_ = std::chrono::steady_clock::now();
            stats_.record_breaker_opened();
            opened = true;
        }
    }
    // Outside breaker_mu_: the rollback path takes model_mu_, and holding
    // both here would order them against reload (model lock order).
    maybe_probation_failure(opened);
}

void DetectionService::note_frame_success() {
    if (config_.breaker_threshold <= 0) return;
    sync::MutexLock lock(breaker_mu_);
    breaker_failures_ = 0;
}

namespace {

std::int64_t steady_now_ns() {
    return std::chrono::duration_cast<std::chrono::nanoseconds>(
               std::chrono::steady_clock::now().time_since_epoch())
        .count();
}

}  // namespace

void DetectionService::maybe_probation_failure(bool breaker_opened) {
    if (config_.reload_probation_ms <= 0) return;
    std::int64_t deadline = probation_deadline_ns_.load(std::memory_order_acquire);
    if (deadline == 0) return;
    if (steady_now_ns() > deadline) {
        // Window expired: the new model survived probation; stop counting.
        probation_deadline_ns_.compare_exchange_strong(deadline, 0,
                                                       std::memory_order_acq_rel);
        return;
    }
    const int fails = probation_failures_.fetch_add(1, std::memory_order_acq_rel) + 1;
    if (breaker_opened || fails >= config_.reload_rollback_failures) {
        // Close the window first so concurrent failures don't pile up more
        // rollbacks; roll_back_internal is a no-op if prev is already gone.
        probation_deadline_ns_.store(0, std::memory_order_release);
        (void)roll_back_internal(breaker_opened
                                     ? "probation: circuit breaker opened"
                                     : "probation: frame-failure budget exhausted");
    }
}

ReloadOutcome DetectionService::roll_back_internal(const std::string& why) {
    ReloadOutcome out;
    sync::MutexLock lock(model_mu_);
    if (!prev_set_) {
        out.model_version = live_set_ ? live_set_->version : 0;
        out.error = "rollback: no previous model set (" + why + ")";
        return out;
    }
    live_set_ = std::move(prev_set_);
    prev_set_.reset();
    out.ok = true;
    out.model_version = live_set_->version;
    stats_.record_rollback();
    return out;
}

ReloadOutcome DetectionService::rollback() {
    sync::MutexLock lock(reload_mu_);
    probation_deadline_ns_.store(0, std::memory_order_release);
    return roll_back_internal("explicit rollback");
}

// Deterministic synthetic canary batch, the same family of frames the int8
// self-calibration uses: a constant, a low-frequency ramp, and seeded noise —
// all in the [0,1] range real preprocessed imagery occupies.
void DetectionService::run_canary(Network& candidate, Network& reference) {
    DRONET_FAULT_POINT(fault::kSiteReloadCanary);
    const Shape in = reference.input_shape();
    std::vector<Tensor> samples;
    samples.emplace_back(in);
    samples.back().fill(0.5f);
    Tensor ramp(in);
    for (int n = 0; n < in.n; ++n) {
        for (int c = 0; c < in.c; ++c) {
            for (int h = 0; h < in.h; ++h) {
                for (int w = 0; w < in.w; ++w) {
                    const float y = in.h > 1
                                        ? static_cast<float>(h) / static_cast<float>(in.h - 1)
                                        : 0.0f;
                    const float x = in.w > 1
                                        ? static_cast<float>(w) / static_cast<float>(in.w - 1)
                                        : 0.0f;
                    ramp[ramp.index(n, c, h, w)] = 0.5f * (x + y);
                }
            }
        }
    }
    samples.push_back(std::move(ramp));
    Tensor noise(in);
    Rng rng(0x178cu);
    rng.fill_uniform(noise.span(), 0.0f, 1.0f);
    samples.push_back(std::move(noise));

    double max_div = 0;
    for (const Tensor& x : samples) {
        const Tensor& cand = candidate.forward(x);
        for (const float v : cand.span()) {
            if (!std::isfinite(v)) {
                throw std::runtime_error(
                    "reload canary: candidate produced non-finite outputs");
            }
        }
        const Tensor& live = reference.forward(x);
        const auto cs = cand.span();
        const auto ls = live.span();
        if (cs.size() != ls.size()) {
            throw std::runtime_error("reload canary: output shape mismatch");
        }
        for (std::size_t i = 0; i < cs.size(); ++i) {
            max_div = std::max(max_div,
                               static_cast<double>(std::fabs(cs[i] - ls[i])));
        }
    }
    if (max_div > config_.canary_max_divergence) {
        throw std::runtime_error(
            "reload canary: divergence " + std::to_string(max_div) +
            " exceeds limit " + std::to_string(config_.canary_max_divergence));
    }
}

ReloadOutcome DetectionService::reload_checkpoint(
    const std::filesystem::path& weights) {
    ReloadOutcome out;
    sync::MutexLock lock(reload_mu_);
    if (stopped_.load(std::memory_order_acquire)) {
        out.model_version = model_version();
        out.error = "reload: service stopped";
        stats_.record_reload_failure();
        return out;
    }
    // The live reference network is only touched under reload_mu_, so using
    // it as both the architecture source and the canary baseline is safe
    // while workers keep serving from their replicas.
    const std::shared_ptr<const ModelSet> live = current_set();
    Network& reference = *live->reference;
    try {
        Network candidate = clone_network(reference);
        const bool fp16 = candidate.fp16();
        // load_weights pre-checks the exact byte size (truncated or padded
        // files are rejected before any state changes) and restores every
        // parameter block, so the fp16 re-encode below sees the new floats.
        if (fp16) candidate.set_fp16(false);
        DRONET_FAULT_POINT(fault::kSiteReloadRead);
        load_weights(candidate, weights);
        if (fp16) candidate.set_fp16(true);
        run_canary(candidate, reference);
        auto set = build_model_set(std::move(candidate));
        {
            sync::MutexLock ml(model_mu_);
            set->version = next_version_++;
            out.model_version = set->version;
            prev_set_ = std::move(live_set_);
            live_set_ = std::move(set);
        }
        out.ok = true;
        stats_.record_reload();
        if (config_.reload_probation_ms > 0) {
            probation_failures_.store(0, std::memory_order_release);
            probation_deadline_ns_.store(
                steady_now_ns() + config_.reload_probation_ms * 1'000'000,
                std::memory_order_release);
        }
    } catch (const std::exception& e) {
        out.ok = false;
        out.model_version = model_version();
        out.error = e.what();
        stats_.record_reload_failure();
    }
    return out;
}

ServeStatsSnapshot DetectionService::stats() const {
    ServeStatsSnapshot s = stats_.snapshot();
    if (config_.breaker_threshold > 0) {
        sync::MutexLock lock(breaker_mu_);
        if (breaker_open_) {
            s.breaker_open_ms += ms_since(breaker_opened_at_);
        }
    }
    s.model_version = model_version();
    s.queue_depth = queue_.size();
    {
        sync::MutexLock lock(inflight_mu_);
        s.in_flight = accepted_ - resolved_;
    }
    s.uptime_ms = static_cast<std::uint64_t>(ms_since(started_at_));
    return s;
}

void DetectionService::finish_one() {
    {
        sync::MutexLock lock(inflight_mu_);
        ++resolved_;
    }
    inflight_cv_.notify_all();
}

void DetectionService::drain() {
    sync::MutexLock lock(inflight_mu_);
    while (resolved_ < accepted_) inflight_cv_.wait(inflight_mu_);
}

void DetectionService::stop() {
    stopped_.store(true, std::memory_order_release);
    queue_.close();
    // Serialize joins so stop() is safe to call from several threads (and
    // again from the destructor).
    sync::MutexLock lock(stop_mu_);
    {
        sync::MutexLock wl(watchdog_mu_);
        stopping_ = true;
    }
    watchdog_cv_.notify_all();
    if (watchdog_.joinable()) watchdog_.join();
    {
        sync::MutexLock tl(threads_mu_);
        for (auto& slot : slots_) {
            if (slot->thread.joinable()) slot->thread.join();
        }
    }
    // Workers normally drain the queue before exiting, but if they died (and
    // the watchdog was off or already stopped) frames may still be queued:
    // resolve every one with a shutdown error so no future blocks forever.
    Job job;
    while (queue_.try_pop(job)) {
        ServeResult r;
        r.status = ServeStatus::kShutdown;
        r.frame.frame_index = job.frame_index;
        r.error = "service stopped before the frame was processed";
        stats_.record_rejected();
        resolve(job, std::move(r));
    }
}

std::vector<std::string> DetectionService::profile_reports() const {
    std::vector<std::string> reports;
    const std::shared_ptr<const ModelSet> set = current_set();
    for (const auto& replica : set->replicas) {
        const profile::ForwardProfiler* prof = replica->profiler();
        if (prof != nullptr && prof->forwards() > 0) {
            reports.push_back(prof->report_json());
        }
    }
    return reports;
}

}  // namespace dronet::serve
