#include "serve/detection_service.hpp"

#include <stdexcept>

#include "eval/evaluator.hpp"
#include "nn/clone.hpp"

namespace dronet::serve {

namespace {

double ms_since(std::chrono::steady_clock::time_point t) {
    return std::chrono::duration<double, std::milli>(
               std::chrono::steady_clock::now() - t)
        .count();
}

}  // namespace

DetectionService::DetectionService(const Network& prototype, ServiceConfig config)
    : config_(config),
      altitude_filter_(config.pipeline.camera, config.pipeline.size_prior),
      queue_(config.queue_capacity, config.policy) {
    if (config_.workers <= 0) {
        throw std::invalid_argument("DetectionService: workers must be positive");
    }
    if (prototype.region() == nullptr) {
        throw std::invalid_argument("DetectionService: network has no region layer");
    }
    replicas_.reserve(static_cast<std::size_t>(config_.workers));
    for (int i = 0; i < config_.workers; ++i) {
        auto replica = std::make_unique<Network>(clone_network(prototype));
        replica->set_batch(1);
        replicas_.push_back(std::move(replica));
    }
    threads_.reserve(static_cast<std::size_t>(config_.workers));
    for (int i = 0; i < config_.workers; ++i) {
        threads_.emplace_back(&DetectionService::worker_loop, this,
                              static_cast<std::size_t>(i));
    }
}

DetectionService::~DetectionService() { stop(); }

std::future<ServeResult> DetectionService::submit(Image frame) {
    Job job;
    job.frame = std::move(frame);
    job.frame_index = next_index_.fetch_add(1, std::memory_order_relaxed);
    job.submit_time = std::chrono::steady_clock::now();
    std::future<ServeResult> future = job.promise.get_future();
    stats_.record_submitted();

    if (stopped_.load(std::memory_order_acquire)) {
        ServeResult r;
        r.status = ServeStatus::kRejected;
        r.frame.frame_index = job.frame_index;
        stats_.record_rejected();
        job.promise.set_value(std::move(r));
        return future;
    }

    {
        std::lock_guard<std::mutex> lock(inflight_mu_);
        ++accepted_;
    }
    std::optional<Job> evicted;
    const PushOutcome outcome = queue_.push(std::move(job), &evicted);
    switch (outcome) {
        case PushOutcome::kEnqueued:
            break;
        case PushOutcome::kEvictedOldest: {
            ServeResult r;
            r.status = ServeStatus::kDropped;
            r.frame.frame_index = evicted->frame_index;
            stats_.record_dropped();
            evicted->promise.set_value(std::move(r));
            finish_one();  // the evicted frame, not the new one
            break;
        }
        case PushOutcome::kRejected:
        case PushOutcome::kClosed: {
            // push() does not consume its argument on these outcomes, so
            // `job` (and its promise) is still ours to resolve.
            ServeResult r;
            r.status = ServeStatus::kRejected;
            r.frame.frame_index = job.frame_index;
            stats_.record_rejected();
            job.promise.set_value(std::move(r));
            finish_one();  // was counted accepted above; balance the books
            break;
        }
    }
    return future;
}

void DetectionService::worker_loop(std::size_t worker_id) {
    Network& net = *replicas_[worker_id];
    while (true) {
        std::optional<Job> job = queue_.pop();
        if (!job) return;  // queue closed and drained
        ServeResult r;
        r.status = ServeStatus::kOk;
        r.frame.frame_index = job->frame_index;
        r.timings.queue_wait_ms = ms_since(job->submit_time);
        DetectStageTimings stages;
        try {
            r.frame.detections =
                detect_image_timed(net, job->frame, config_.pipeline.eval, &stages);
            if (config_.pipeline.altitude_filter_enabled) {
                const auto t0 = std::chrono::steady_clock::now();
                r.frame.detections =
                    altitude_filter_.apply(r.frame.detections, config_.pipeline.altitude_m);
                stages.postprocess_ms += ms_since(t0);
            }
            r.timings.preprocess_ms = stages.preprocess_ms;
            r.timings.forward_ms = stages.forward_ms;
            r.timings.postprocess_ms = stages.postprocess_ms;
            r.frame.latency_ms = r.timings.total_ms();
            stats_.record_completed(r.timings);
            job->promise.set_value(std::move(r));
        } catch (...) {
            job->promise.set_exception(std::current_exception());
        }
        finish_one();
    }
}

void DetectionService::finish_one() {
    {
        std::lock_guard<std::mutex> lock(inflight_mu_);
        ++resolved_;
    }
    inflight_cv_.notify_all();
}

void DetectionService::drain() {
    std::unique_lock<std::mutex> lock(inflight_mu_);
    inflight_cv_.wait(lock, [&] { return resolved_ >= accepted_; });
}

void DetectionService::stop() {
    stopped_.store(true, std::memory_order_release);
    queue_.close();
    // Serialize joins so stop() is safe to call from several threads (and
    // again from the destructor).
    std::lock_guard<std::mutex> lock(stop_mu_);
    for (auto& t : threads_) {
        if (t.joinable()) t.join();
    }
}

std::vector<std::string> DetectionService::profile_reports() const {
    std::vector<std::string> reports;
    for (const auto& replica : replicas_) {
        const profile::ForwardProfiler* prof = replica->profiler();
        if (prof != nullptr && prof->forwards() > 0) {
            reports.push_back(prof->report_json());
        }
    }
    return reports;
}

}  // namespace dronet::serve
