#include "serve/detection_service.hpp"

#include <stdexcept>

#include "eval/evaluator.hpp"
#include "nn/clone.hpp"

namespace dronet::serve {

namespace {

double ms_since(std::chrono::steady_clock::time_point t) {
    return std::chrono::duration<double, std::milli>(
               std::chrono::steady_clock::now() - t)
        .count();
}

}  // namespace

DetectionService::DetectionService(const Network& prototype, ServiceConfig config)
    : config_(config),
      altitude_filter_(config.pipeline.camera, config.pipeline.size_prior),
      queue_(config.queue_capacity, config.policy) {
    if (config_.workers <= 0) {
        throw std::invalid_argument("DetectionService: workers must be positive");
    }
    if (config_.max_batch <= 0) {
        throw std::invalid_argument("DetectionService: max_batch must be positive");
    }
    if (config_.batch_timeout_us < 0) {
        throw std::invalid_argument("DetectionService: batch_timeout_us must be >= 0");
    }
    if (prototype.region() == nullptr) {
        throw std::invalid_argument("DetectionService: network has no region layer");
    }
    replicas_.reserve(static_cast<std::size_t>(config_.workers));
    for (int i = 0; i < config_.workers; ++i) {
        auto replica = std::make_unique<Network>(clone_network(prototype));
        // Pre-reserve activations/workspace at the largest batch the worker
        // will ever run: tensor storage is grow-only, so later per-batch
        // set_batch() calls in detect_images are allocation-free.
        replica->set_batch(config_.max_batch);
        replica->set_batch(1);
        replicas_.push_back(std::move(replica));
    }
    threads_.reserve(static_cast<std::size_t>(config_.workers));
    for (int i = 0; i < config_.workers; ++i) {
        threads_.emplace_back(&DetectionService::worker_loop, this,
                              static_cast<std::size_t>(i));
    }
}

DetectionService::~DetectionService() { stop(); }

std::future<ServeResult> DetectionService::submit(Image frame) {
    Job job;
    job.frame = std::move(frame);
    job.frame_index = next_index_.fetch_add(1, std::memory_order_relaxed);
    job.submit_time = std::chrono::steady_clock::now();
    std::future<ServeResult> future = job.promise.get_future();
    stats_.record_submitted();

    if (stopped_.load(std::memory_order_acquire)) {
        ServeResult r;
        r.status = ServeStatus::kRejected;
        r.frame.frame_index = job.frame_index;
        stats_.record_rejected();
        job.promise.set_value(std::move(r));
        return future;
    }

    {
        std::lock_guard<std::mutex> lock(inflight_mu_);
        ++accepted_;
    }
    std::optional<Job> evicted;
    const PushOutcome outcome = queue_.push(std::move(job), &evicted);
    switch (outcome) {
        case PushOutcome::kEnqueued:
            break;
        case PushOutcome::kEvictedOldest: {
            ServeResult r;
            r.status = ServeStatus::kDropped;
            r.frame.frame_index = evicted->frame_index;
            stats_.record_dropped();
            evicted->promise.set_value(std::move(r));
            finish_one();  // the evicted frame, not the new one
            break;
        }
        case PushOutcome::kRejected:
        case PushOutcome::kClosed: {
            // push() does not consume its argument on these outcomes, so
            // `job` (and its promise) is still ours to resolve.
            ServeResult r;
            r.status = ServeStatus::kRejected;
            r.frame.frame_index = job.frame_index;
            stats_.record_rejected();
            job.promise.set_value(std::move(r));
            finish_one();  // was counted accepted above; balance the books
            break;
        }
    }
    return future;
}

void DetectionService::worker_loop(std::size_t worker_id) {
    Network& net = *replicas_[worker_id];
    const auto max_batch = static_cast<std::size_t>(config_.max_batch);
    const std::chrono::microseconds linger(config_.batch_timeout_us);
    std::vector<Job> jobs;
    while (true) {
        jobs.clear();
        if (queue_.pop_batch(jobs, max_batch, linger) == 0) {
            return;  // queue closed and drained
        }
        process_batch(net, jobs);
    }
}

// Forwards the popped jobs as one batch and resolves each future
// individually. Per-frame stage timings are the batch aggregate amortized
// over the batch (queue wait stays per-frame); detections are bit-identical
// to processing each frame alone.
void DetectionService::process_batch(Network& net, std::vector<Job>& jobs) {
    const std::size_t n = jobs.size();
    stats_.record_batch(n);
    const auto popped = std::chrono::steady_clock::now();
    std::vector<Image> frames;
    frames.reserve(n);
    for (Job& j : jobs) frames.push_back(std::move(j.frame));

    DetectStageTimings stages;
    std::vector<Detections> dets;
    std::exception_ptr batch_error;
    try {
        dets = detect_images_timed(net, frames, config_.pipeline.eval, &stages);
    } catch (...) {
        batch_error = std::current_exception();
    }

    if (batch_error != nullptr && n > 1) {
        // One bad input (e.g. unsupported channel count) must not fail its
        // batch-mates: retry each frame alone so only the offender's future
        // carries the exception.
        for (std::size_t i = 0; i < n; ++i) {
            ServeResult r;
            r.status = ServeStatus::kOk;
            r.frame.frame_index = jobs[i].frame_index;
            r.timings.queue_wait_ms = std::chrono::duration<double, std::milli>(
                                          popped - jobs[i].submit_time)
                                          .count();
            DetectStageTimings solo;
            try {
                r.frame.detections =
                    detect_image_timed(net, frames[i], config_.pipeline.eval, &solo);
                if (config_.pipeline.altitude_filter_enabled) {
                    const auto t0 = std::chrono::steady_clock::now();
                    r.frame.detections = altitude_filter_.apply(
                        r.frame.detections, config_.pipeline.altitude_m);
                    solo.postprocess_ms += ms_since(t0);
                }
                r.timings.preprocess_ms = solo.preprocess_ms;
                r.timings.forward_ms = solo.forward_ms;
                r.timings.postprocess_ms = solo.postprocess_ms;
                r.frame.latency_ms = r.timings.total_ms();
                stats_.record_completed(r.timings);
                jobs[i].promise.set_value(std::move(r));
            } catch (...) {
                jobs[i].promise.set_exception(std::current_exception());
            }
            finish_one();
        }
        return;
    }
    if (batch_error != nullptr) {
        jobs[0].promise.set_exception(batch_error);
        finish_one();
        return;
    }

    const double share = 1.0 / static_cast<double>(n);
    for (std::size_t i = 0; i < n; ++i) {
        ServeResult r;
        r.status = ServeStatus::kOk;
        r.frame.frame_index = jobs[i].frame_index;
        r.timings.queue_wait_ms = std::chrono::duration<double, std::milli>(
                                      popped - jobs[i].submit_time)
                                      .count();
        r.timings.preprocess_ms = stages.preprocess_ms * share;
        r.timings.forward_ms = stages.forward_ms * share;
        r.timings.postprocess_ms = stages.postprocess_ms * share;
        r.frame.detections = std::move(dets[i]);
        if (config_.pipeline.altitude_filter_enabled) {
            const auto t0 = std::chrono::steady_clock::now();
            r.frame.detections =
                altitude_filter_.apply(r.frame.detections, config_.pipeline.altitude_m);
            r.timings.postprocess_ms += ms_since(t0);
        }
        r.frame.latency_ms = r.timings.total_ms();
        stats_.record_completed(r.timings);
        jobs[i].promise.set_value(std::move(r));
        finish_one();
    }
}

void DetectionService::finish_one() {
    {
        std::lock_guard<std::mutex> lock(inflight_mu_);
        ++resolved_;
    }
    inflight_cv_.notify_all();
}

void DetectionService::drain() {
    std::unique_lock<std::mutex> lock(inflight_mu_);
    inflight_cv_.wait(lock, [&] { return resolved_ >= accepted_; });
}

void DetectionService::stop() {
    stopped_.store(true, std::memory_order_release);
    queue_.close();
    // Serialize joins so stop() is safe to call from several threads (and
    // again from the destructor).
    std::lock_guard<std::mutex> lock(stop_mu_);
    for (auto& t : threads_) {
        if (t.joinable()) t.join();
    }
}

std::vector<std::string> DetectionService::profile_reports() const {
    std::vector<std::string> reports;
    for (const auto& replica : replicas_) {
        const profile::ForwardProfiler* prof = replica->profiler();
        if (prof != nullptr && prof->forwards() > 0) {
            reports.push_back(prof->report_json());
        }
    }
    return reports;
}

}  // namespace dronet::serve
