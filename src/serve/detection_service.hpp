// Multi-worker detection service: the serving counterpart of the serial
// DetectionPipeline.
//
// The paper's deployment loop feeds one camera into one CPU pipeline; the
// production target is many streams on a multi-core host. DetectionService
// owns N worker threads, each with its own Network replica (same weights,
// cloned via clone_network so per-layer activations and im2col workspaces
// never race), fed from one bounded MPMC queue. Whole frames are the unit of
// scheduling, so detections are bit-identical to the serial pipeline — the
// same detect_image code path runs, just on a replica.
//
// The service is self-healing (docs/robustness.md): per-frame deadlines
// resolve late frames with kTimeout instead of occupying a worker, transient
// forward faults are retried with exponential backoff, a watchdog respawns
// workers killed by unrecoverable faults, a circuit breaker sheds load after
// consecutive failures, and under queue-depth overload workers degrade to a
// smaller pre-reserved input size, recovering when the backlog clears. Every
// submitted future always resolves — success, timeout, failure, or shutdown.
//
//   DetectionService service(net, {.workers = 4});
//   auto f = service.submit(frame);          // non-blocking (policy-dependent)
//   ServeResult r = f.get();                 // detections + status + timings
//   service.drain();                         // barrier for batch jobs
//   std::puts(service.stats().to_json().c_str());
#pragma once

#include <atomic>
#include <chrono>
#include <cstdint>
#include <filesystem>
#include <future>
#include <memory>
#include <string>
#include <thread>
#include <vector>

#include "nn/network.hpp"
#include "nn/quantize.hpp"
#include "serve/bounded_queue.hpp"
#include "serve/serve_stats.hpp"
#include "sync/mutex.hpp"
#include "video/pipeline.hpp"

namespace dronet::serve {

enum class ServeStatus {
    kOk,        ///< frame was processed; detections valid
    kDropped,   ///< evicted from the queue by kDropOldest backpressure
    kRejected,  ///< refused at submit (kReject policy full, breaker open, or stopped)
    kTimeout,   ///< deadline expired before a worker could process the frame
    kFailed,    ///< forward pass failed after all configured retries
    kShutdown,  ///< still queued when the service stopped
};

[[nodiscard]] constexpr const char* to_string(ServeStatus s) noexcept {
    switch (s) {
        case ServeStatus::kOk: return "ok";
        case ServeStatus::kDropped: return "dropped";
        case ServeStatus::kRejected: return "rejected";
        case ServeStatus::kTimeout: return "timeout";
        case ServeStatus::kFailed: return "failed";
        case ServeStatus::kShutdown: return "shutdown";
    }
    return "?";
}

/// Outcome of one submitted frame. `frame.detections` is empty unless
/// status == kOk; `error` is non-empty for kFailed (and names the breaker for
/// breaker-shed kRejected frames).
struct ServeResult {
    ServeStatus status = ServeStatus::kOk;
    FrameResult frame;     ///< index, detections, end-to-end latency
    FrameTimings timings;  ///< per-stage breakdown (zeros unless kOk)
    std::string error;     ///< diagnostic for kFailed / shed frames
};

struct ServiceConfig {
    int workers = 2;
    std::size_t queue_capacity = 16;
    BackpressurePolicy policy = BackpressurePolicy::kBlock;
    /// Upper bound on frames one worker forwards as a single batch. 1 keeps
    /// the classic frame-at-a-time path; N > 1 enables dynamic micro-batching
    /// (workers take whatever is queued, up to N, per forward pass). Results
    /// stay bit-identical to frame-at-a-time — detect_images is bit-exact per
    /// image against detect_image.
    int max_batch = 1;
    /// After popping the first frame of a batch, how long a worker lingers
    /// waiting for more frames to fill it (0 = take only what is already
    /// queued). Trades per-frame latency for larger batches under light load.
    std::int64_t batch_timeout_us = 0;

    // --- self-healing knobs (all recovery paths off by default) ---

    /// Per-frame deadline measured from submit. A frame still queued (or
    /// retried) past its deadline resolves with kTimeout instead of occupying
    /// a worker. 0 disables deadlines.
    std::int64_t deadline_ms = 0;
    /// Retries per frame when the forward pass throws a transient error
    /// (std::runtime_error family). Input errors (std::invalid_argument) are
    /// never retried. 0 disables retries.
    int max_retries = 0;
    /// Initial retry backoff; doubles per attempt (capped at 1 s).
    std::int64_t retry_backoff_ms = 1;
    /// Consecutive frame failures that open the circuit breaker; while open,
    /// submits are shed immediately as kRejected. 0 disables the breaker.
    int breaker_threshold = 0;
    /// How long the breaker stays open before the next submit half-opens it.
    std::int64_t breaker_open_ms = 100;
    /// Queue depth at which workers switch their replica to `degraded_size`
    /// (graceful degradation under overload). 0 disables degradation.
    std::size_t degrade_high_watermark = 0;
    /// Queue depth at or below which workers switch back to full resolution.
    std::size_t degrade_low_watermark = 0;
    /// Fallback square input size used while degraded (e.g. 256 for a 512
    /// network). Storage is pre-reserved at construction so the switch is
    /// allocation-free (grow-only tensors). Required when
    /// degrade_high_watermark > 0.
    int degraded_size = 0;
    /// Serve through the calibrated int8 path: each replica gets its own
    /// QuantizedNetwork (private scratch), all sharing one calibration
    /// computed once at construction (clones have identical weights, so the
    /// activation ranges — and therefore detections — are identical across
    /// replicas). Micro-batching and degraded-input switching work unchanged:
    /// the quantized forward follows the replica's live geometry. Mutually
    /// exclusive with an fp16 prototype.
    bool int8 = false;
    /// Supervisor thread that respawns dead workers (replica preserved) and
    /// counts the restart in ServeStats. Leave on unless the process manages
    /// worker death externally.
    bool watchdog = true;
    std::int64_t watchdog_interval_ms = 10;

    // --- model lifecycle knobs (docs/robustness.md, "Model lifecycle") ---

    /// Canary gate: maximum |candidate - live| output divergence tolerated on
    /// the fixed synthetic canary batch before a reload candidate is rejected.
    /// The finite-output check always runs regardless of this threshold. The
    /// default is deliberately permissive (any healthy checkpoint of the same
    /// architecture passes); tests tighten it to force rejections.
    double canary_max_divergence = 1e6;
    /// Probation window after a committed swap: while it is open, frame
    /// failures and breaker opens count against the new model, and reaching
    /// `reload_rollback_failures` (or any breaker open) auto-rolls back to
    /// the previous model set. 0 disables probation.
    std::int64_t reload_probation_ms = 0;
    /// Frame failures within the probation window that trigger auto-rollback.
    int reload_rollback_failures = 3;

    /// Post-processing thresholds and the optional altitude prior, shared
    /// with the serial DetectionPipeline for identical results.
    PipelineConfig pipeline;
};

/// Outcome of a reload / rollback attempt. `model_version` is the version
/// serving after the call returned (the new version on success, the
/// still-live one on rejection).
struct ReloadOutcome {
    bool ok = false;
    std::uint64_t model_version = 0;
    std::string error;  ///< empty on success
};

class DetectionService {
  public:
    /// Builds `config.workers` independent replicas of `prototype` (which is
    /// only read during construction and may be used freely afterwards) and
    /// starts the worker threads. Throws std::invalid_argument for a
    /// prototype without a region layer, a non-positive worker count, or an
    /// inconsistent self-healing configuration.
    DetectionService(const Network& prototype, ServiceConfig config);

    /// Stops accepting work, waits for queued frames, joins the workers.
    ~DetectionService();

    DetectionService(const DetectionService&) = delete;
    DetectionService& operator=(const DetectionService&) = delete;

    /// Enqueues one frame. Thread-safe (any number of producer streams).
    /// Frame indices are assigned in submission order. Under kBlock this
    /// call waits for queue space; under kReject/kDropOldest it returns
    /// immediately (the returned future resolves with the corresponding
    /// status for shed frames).
    [[nodiscard]] std::future<ServeResult> submit(Image frame);

    /// Blocks until every accepted frame has resolved (completed, timed out,
    /// failed, dropped, or swept at shutdown). Producers should be quiescent
    /// while draining.
    void drain();

    /// Closes the queue, joins watchdog and workers, then resolves any frame
    /// still queued with kShutdown — no future is ever left unresolved.
    /// Subsequent submits resolve as kRejected. Idempotent.
    void stop();

    /// Snapshot of the service counters. breaker_open_ms includes the
    /// still-running open interval when the breaker is currently open; the
    /// live gauges (queue_depth, in_flight, uptime_ms) are sampled here.
    [[nodiscard]] ServeStatsSnapshot stats() const;
    [[nodiscard]] int workers() const noexcept { return config_.workers; }
    [[nodiscard]] const ServiceConfig& config() const noexcept { return config_; }
    /// True while workers are serving at the degraded input size.
    [[nodiscard]] bool degraded() const noexcept {
        return degraded_.load(std::memory_order_acquire);
    }

    /// Hot-swaps the serving model to the checkpoint at `weights`, without
    /// dropping a single in-flight future. Runs entirely on the calling
    /// thread (never a worker thread): a candidate network is cloned from
    /// the live model's architecture, the checkpoint is loaded (exact
    /// byte-size pre-check, fp16 re-encode / int8 re-calibration per the
    /// active mode), and a canary gate — deterministic synthetic forwards
    /// checked for finite outputs and bounded divergence vs the live model
    /// (`canary_max_divergence`) — must pass before fresh replicas are built
    /// and swapped in. Workers pick up the new set at their next batch, so
    /// every in-flight frame finishes on the model it started on. Any
    /// failure (unreadable/truncated file, NaN outputs, divergence) rejects
    /// the candidate and leaves serving byte-identical to before the call.
    /// Reloads are serialized; concurrent callers queue. Thread-safe.
    [[nodiscard]] ReloadOutcome reload_checkpoint(const std::filesystem::path& weights);

    /// Restores the model set that was live before the last committed swap
    /// (kept until the next successful reload). Fails if there has been no
    /// swap, or the previous set was already consumed by a rollback.
    [[nodiscard]] ReloadOutcome rollback();

    /// Version of the live model set: 1 at construction, +1 per committed
    /// swap; a rollback restores the previous version number.
    [[nodiscard]] std::uint64_t model_version() const;

    /// Per-worker profiler JSON (profile/profiler.hpp), one entry per replica
    /// that recorded at least one forward; empty unless DRONET_PROFILE /
    /// profile::set_profiling was enabled. Call only while the service is
    /// quiescent (after drain() or stop()) — worker threads write these
    /// profilers while frames are in flight.
    [[nodiscard]] std::vector<std::string> profile_reports() const;

  private:
    struct Job {
        Image frame;
        std::promise<ServeResult> promise;
        int frame_index = 0;
        std::chrono::steady_clock::time_point submit_time;
        std::chrono::steady_clock::time_point deadline;  ///< max() = none
        bool resolved = false;  ///< promise already fulfilled (worker-local)
    };

    /// One worker's supervision slot; the thread object is guarded by
    /// threads_mu_ (watchdog respawn vs. stop() join).
    struct WorkerSlot {
        std::thread thread;
        enum State { kRunning = 0, kFinished = 1, kDead = 2 };
        std::atomic<int> state{kRunning};
    };

    /// One versioned generation of the serving model: per-worker replicas
    /// (plus parallel QuantizedNetworks when int8) and a `reference` network
    /// workers never touch — the canary baseline and the architecture source
    /// for the next candidate. Shared pointers let an in-flight batch finish
    /// on the generation it started with after a swap; the old generation is
    /// freed when its last worker releases it.
    struct ModelSet {
        std::uint64_t version = 0;
        std::vector<std::unique_ptr<Network>> replicas;
        std::vector<std::unique_ptr<QuantizedNetwork>> qnets;
        std::unique_ptr<Network> reference;  ///< forwarded only under reload_mu_
    };

    void worker_loop(std::size_t worker_id);
    void on_worker_death(WorkerSlot& slot, std::vector<Job>& jobs, const char* what);
    void watchdog_loop();
    void process_batch(Network& net, QuantizedNetwork* qnet, std::vector<Job>& jobs,
                       bool degraded);
    Detections detect_with_retry(Network& net, QuantizedNetwork* qnet,
                                 const Image& frame, const Job& job,
                                 DetectStageTimings* timings);
    void resolve(Job& job, ServeResult r);
    void expire_overdue(std::vector<Job>& jobs);
    void apply_degrade_mode(Network& net, bool& degraded_now);
    [[nodiscard]] bool breaker_allows() EXCLUDES(breaker_mu_);
    void note_frame_failure() EXCLUDES(breaker_mu_);
    void note_frame_success() EXCLUDES(breaker_mu_);
    void finish_one() EXCLUDES(inflight_mu_);

    /// Builds one complete model generation (replicas + int8 calibration +
    /// degrade warm-up, mirroring construction) from `candidate`, which is
    /// consumed and becomes the set's reference network.
    [[nodiscard]] std::shared_ptr<ModelSet> build_model_set(Network candidate);
    [[nodiscard]] std::shared_ptr<const ModelSet> current_set() const
        EXCLUDES(model_mu_);
    /// Canary gate: deterministic synthetic forwards of `candidate` vs the
    /// live reference. Throws std::runtime_error on non-finite outputs or
    /// divergence beyond config_.canary_max_divergence.
    void run_canary(Network& candidate, Network& reference);
    /// Counts one frame failure (and breaker-open edge) against an open
    /// probation window; rolls back when the window's budget is exhausted.
    void maybe_probation_failure(bool breaker_opened) EXCLUDES(model_mu_);
    [[nodiscard]] ReloadOutcome roll_back_internal(const std::string& why)
        EXCLUDES(model_mu_);

    ServiceConfig config_;
    AltitudeFilter altitude_filter_;
    BoundedQueue<Job> queue_;
    ServeStats stats_;
    std::vector<std::unique_ptr<WorkerSlot>> slots_;
    int full_size_ = 0;  ///< prototype input size (degradation restores this)
    std::chrono::steady_clock::time_point started_at_;  ///< uptime_ms gauge

    std::atomic<int> next_index_{0};
    std::atomic<bool> stopped_{false};
    std::atomic<bool> degraded_{false};
    sync::Mutex stop_mu_{"DetectionService::stop_mu"};  ///< serializes stop()
    /// Guards WorkerSlot::thread join/respawn. (The slots live behind
    /// unique_ptrs in slots_, so the guarded data cannot carry a GUARDED_BY
    /// referring back to this member.)
    sync::Mutex threads_mu_{"DetectionService::threads_mu"};

    // Watchdog.
    std::thread watchdog_;
    sync::Mutex watchdog_mu_{"DetectionService::watchdog_mu"};
    sync::CondVar watchdog_cv_;
    bool stopping_ GUARDED_BY(watchdog_mu_) = false;

    // Circuit breaker (mutable so stats() can fold the live open interval
    // into the snapshot).
    mutable sync::Mutex breaker_mu_{"DetectionService::breaker_mu"};
    int breaker_failures_ GUARDED_BY(breaker_mu_) = 0;
    bool breaker_open_ GUARDED_BY(breaker_mu_) = false;
    std::chrono::steady_clock::time_point breaker_opened_at_
        GUARDED_BY(breaker_mu_);

    // drain() bookkeeping: frames accepted into the queue vs. resolved.
    mutable sync::Mutex inflight_mu_{"DetectionService::inflight_mu"};
    sync::CondVar inflight_cv_;
    std::uint64_t accepted_ GUARDED_BY(inflight_mu_) = 0;
    std::uint64_t resolved_ GUARDED_BY(inflight_mu_) = 0;

    // Model lifecycle. model_mu_ guards only the set pointers (held for a
    // pointer copy per worker batch); reload_mu_ serializes whole reload /
    // rollback operations, which run on caller threads and do the expensive
    // work (load, canary, replica builds) outside model_mu_.
    mutable sync::Mutex model_mu_{"DetectionService::model_mu"};
    std::shared_ptr<ModelSet> live_set_ GUARDED_BY(model_mu_);
    /// Previous generation, retained until the next committed swap so
    /// probation (and the fleet rollout abort) can always roll back.
    std::shared_ptr<ModelSet> prev_set_ GUARDED_BY(model_mu_);
    std::uint64_t next_version_ GUARDED_BY(model_mu_) = 2;
    sync::Mutex reload_mu_{"DetectionService::reload_mu"};
    /// Probation window end (steady-clock ns since epoch); 0 = no window.
    std::atomic<std::int64_t> probation_deadline_ns_{0};
    std::atomic<int> probation_failures_{0};
};

}  // namespace dronet::serve
