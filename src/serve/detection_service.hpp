// Multi-worker detection service: the serving counterpart of the serial
// DetectionPipeline.
//
// The paper's deployment loop feeds one camera into one CPU pipeline; the
// production target is many streams on a multi-core host. DetectionService
// owns N worker threads, each with its own Network replica (same weights,
// cloned via clone_network so per-layer activations and im2col workspaces
// never race), fed from one bounded MPMC queue. Whole frames are the unit of
// scheduling, so detections are bit-identical to the serial pipeline — the
// same detect_image code path runs, just on a replica.
//
//   DetectionService service(net, {.workers = 4});
//   auto f = service.submit(frame);          // non-blocking (policy-dependent)
//   ServeResult r = f.get();                 // detections + status + timings
//   service.drain();                         // barrier for batch jobs
//   std::puts(service.stats().to_json().c_str());
#pragma once

#include <atomic>
#include <chrono>
#include <condition_variable>
#include <cstdint>
#include <future>
#include <memory>
#include <mutex>
#include <thread>
#include <vector>

#include "nn/network.hpp"
#include "serve/bounded_queue.hpp"
#include "serve/serve_stats.hpp"
#include "video/pipeline.hpp"

namespace dronet::serve {

enum class ServeStatus {
    kOk,        ///< frame was processed; detections valid
    kDropped,   ///< evicted from the queue by kDropOldest backpressure
    kRejected,  ///< refused at submit (kReject policy full, or service stopped)
};

[[nodiscard]] constexpr const char* to_string(ServeStatus s) noexcept {
    switch (s) {
        case ServeStatus::kOk: return "ok";
        case ServeStatus::kDropped: return "dropped";
        case ServeStatus::kRejected: return "rejected";
    }
    return "?";
}

/// Outcome of one submitted frame. `frame.detections` is empty unless
/// status == kOk.
struct ServeResult {
    ServeStatus status = ServeStatus::kOk;
    FrameResult frame;     ///< index, detections, end-to-end latency
    FrameTimings timings;  ///< per-stage breakdown (zeros unless kOk)
};

struct ServiceConfig {
    int workers = 2;
    std::size_t queue_capacity = 16;
    BackpressurePolicy policy = BackpressurePolicy::kBlock;
    /// Upper bound on frames one worker forwards as a single batch. 1 keeps
    /// the classic frame-at-a-time path; N > 1 enables dynamic micro-batching
    /// (workers take whatever is queued, up to N, per forward pass). Results
    /// stay bit-identical to frame-at-a-time — detect_images is bit-exact per
    /// image against detect_image.
    int max_batch = 1;
    /// After popping the first frame of a batch, how long a worker lingers
    /// waiting for more frames to fill it (0 = take only what is already
    /// queued). Trades per-frame latency for larger batches under light load.
    std::int64_t batch_timeout_us = 0;
    /// Post-processing thresholds and the optional altitude prior, shared
    /// with the serial DetectionPipeline for identical results.
    PipelineConfig pipeline;
};

class DetectionService {
  public:
    /// Builds `config.workers` independent replicas of `prototype` (which is
    /// only read during construction and may be used freely afterwards) and
    /// starts the worker threads. Throws std::invalid_argument for a
    /// prototype without a region layer or a non-positive worker count.
    DetectionService(const Network& prototype, ServiceConfig config);

    /// Stops accepting work, waits for queued frames, joins the workers.
    ~DetectionService();

    DetectionService(const DetectionService&) = delete;
    DetectionService& operator=(const DetectionService&) = delete;

    /// Enqueues one frame. Thread-safe (any number of producer streams).
    /// Frame indices are assigned in submission order. Under kBlock this
    /// call waits for queue space; under kReject/kDropOldest it returns
    /// immediately (the returned future resolves with the corresponding
    /// status for shed frames).
    [[nodiscard]] std::future<ServeResult> submit(Image frame);

    /// Blocks until every accepted frame has resolved (completed or
    /// dropped). Producers should be quiescent while draining.
    void drain();

    /// Closes the queue, drains in-flight work and joins all workers.
    /// Subsequent submits resolve as kRejected. Idempotent.
    void stop();

    [[nodiscard]] ServeStatsSnapshot stats() const { return stats_.snapshot(); }
    [[nodiscard]] int workers() const noexcept { return config_.workers; }
    [[nodiscard]] const ServiceConfig& config() const noexcept { return config_; }

    /// Per-worker profiler JSON (profile/profiler.hpp), one entry per replica
    /// that recorded at least one forward; empty unless DRONET_PROFILE /
    /// profile::set_profiling was enabled. Call only while the service is
    /// quiescent (after drain() or stop()) — worker threads write these
    /// profilers while frames are in flight.
    [[nodiscard]] std::vector<std::string> profile_reports() const;

  private:
    struct Job {
        Image frame;
        std::promise<ServeResult> promise;
        int frame_index = 0;
        std::chrono::steady_clock::time_point submit_time;
    };

    void worker_loop(std::size_t worker_id);
    void process_batch(Network& net, std::vector<Job>& jobs);
    void finish_one();

    ServiceConfig config_;
    AltitudeFilter altitude_filter_;
    std::vector<std::unique_ptr<Network>> replicas_;
    BoundedQueue<Job> queue_;
    ServeStats stats_;
    std::vector<std::thread> threads_;

    std::atomic<int> next_index_{0};
    std::atomic<bool> stopped_{false};
    std::mutex stop_mu_;  ///< serializes thread joins across stop() callers

    // drain() bookkeeping: frames accepted into the queue vs. resolved.
    mutable std::mutex inflight_mu_;
    std::condition_variable inflight_cv_;
    std::uint64_t accepted_ = 0;
    std::uint64_t resolved_ = 0;
};

}  // namespace dronet::serve
