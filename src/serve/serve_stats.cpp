#include "serve/serve_stats.hpp"

#include <algorithm>
#include <chrono>
#include <cmath>
#include <sstream>

namespace dronet::serve {

namespace {

// Bucket i covers (kMinMs * kGrowth^(i-1), kMinMs * kGrowth^i]; bucket 0
// additionally absorbs everything below kMinMs.
constexpr double kMinMs = 1e-3;   // 1 us
constexpr double kGrowth = 1.33;  // 64 buckets reach ~6.5e4 ms

double now_seconds() {
    return std::chrono::duration<double>(
               std::chrono::steady_clock::now().time_since_epoch())
        .count();
}

StageSummary summarize(const LatencyHistogram& h) {
    StageSummary s;
    s.count = h.count();
    s.mean_ms = h.mean_ms();
    s.p50_ms = h.percentile(50);
    s.p95_ms = h.percentile(95);
    s.p99_ms = h.percentile(99);
    s.max_ms = h.max_ms();
    return s;
}

void json_stage(std::ostringstream& os, const char* name, const StageSummary& s) {
    os << "\"" << name << "\":{\"mean_ms\":" << s.mean_ms
       << ",\"p50_ms\":" << s.p50_ms << ",\"p95_ms\":" << s.p95_ms
       << ",\"p99_ms\":" << s.p99_ms << ",\"max_ms\":" << s.max_ms << "}";
}

}  // namespace

int LatencyHistogram::bucket_of(double ms) noexcept {
    if (!(ms > kMinMs)) return 0;  // also catches NaN / negatives
    const int b = static_cast<int>(std::ceil(std::log(ms / kMinMs) / std::log(kGrowth)));
    return std::clamp(b, 0, kBuckets - 1);
}

double LatencyHistogram::bucket_upper_ms(int bucket) noexcept {
    return kMinMs * std::pow(kGrowth, bucket);
}

void LatencyHistogram::record(double ms) noexcept {
    if (std::isnan(ms) || ms < 0) ms = 0;
    ++buckets_[static_cast<std::size_t>(bucket_of(ms))];
    ++count_;
    total_ms_ += ms;
    max_ms_ = std::max(max_ms_, ms);
}

void LatencyHistogram::merge(const LatencyHistogram& other) noexcept {
    for (int i = 0; i < kBuckets; ++i) {
        buckets_[static_cast<std::size_t>(i)] +=
            other.buckets_[static_cast<std::size_t>(i)];
    }
    count_ += other.count_;
    total_ms_ += other.total_ms_;
    max_ms_ = std::max(max_ms_, other.max_ms_);
}

double LatencyHistogram::mean_ms() const noexcept {
    return count_ > 0 ? total_ms_ / static_cast<double>(count_) : 0.0;
}

double LatencyHistogram::percentile(double p) const noexcept {
    if (count_ == 0) return 0.0;
    p = std::clamp(p, 0.0, 100.0);
    const double rank = p / 100.0 * static_cast<double>(count_);
    std::uint64_t seen = 0;
    for (int i = 0; i < kBuckets; ++i) {
        const std::uint64_t in_bucket = buckets_[static_cast<std::size_t>(i)];
        if (in_bucket == 0) continue;
        if (static_cast<double>(seen + in_bucket) >= rank) {
            // Linear interpolation inside the bucket keeps small-sample
            // percentiles from snapping to bucket edges.
            const double lower = i == 0 ? 0.0 : bucket_upper_ms(i - 1);
            const double upper = std::min(bucket_upper_ms(i), max_ms_);
            const double frac =
                in_bucket > 0
                    ? (rank - static_cast<double>(seen)) / static_cast<double>(in_bucket)
                    : 1.0;
            return lower + std::clamp(frac, 0.0, 1.0) * (std::max(upper, lower) - lower);
        }
        seen += in_bucket;
    }
    return max_ms_;
}

void ServeStats::record_submitted() noexcept {
    sync::MutexLock lock(mu_);
    ++submitted_;
    if (!clock_started_) {
        clock_started_ = true;
        first_submit_s_ = now_seconds();
    }
}

void ServeStats::record_rejected() noexcept {
    sync::MutexLock lock(mu_);
    ++rejected_;
}

void ServeStats::record_dropped() noexcept {
    sync::MutexLock lock(mu_);
    ++dropped_;
}

void ServeStats::record_failed() noexcept {
    sync::MutexLock lock(mu_);
    ++failed_;
}

void ServeStats::record_retry() noexcept {
    sync::MutexLock lock(mu_);
    ++retries_;
}

void ServeStats::record_deadline_expired() noexcept {
    sync::MutexLock lock(mu_);
    ++deadline_expired_;
}

void ServeStats::record_worker_restart() noexcept {
    sync::MutexLock lock(mu_);
    ++worker_restarts_;
}

void ServeStats::record_degraded(std::uint64_t frames) noexcept {
    sync::MutexLock lock(mu_);
    degraded_frames_ += frames;
}

void ServeStats::record_degrade_transition() noexcept {
    sync::MutexLock lock(mu_);
    ++degrade_transitions_;
}

void ServeStats::record_breaker_opened() noexcept {
    sync::MutexLock lock(mu_);
    ++breaker_opens_;
}

void ServeStats::record_breaker_open_ms(double ms) noexcept {
    sync::MutexLock lock(mu_);
    if (ms > 0) breaker_open_ms_ += ms;
}

void ServeStats::record_reload() noexcept {
    sync::MutexLock lock(mu_);
    ++reloads_;
}

void ServeStats::record_reload_failure() noexcept {
    sync::MutexLock lock(mu_);
    ++reload_failures_;
}

void ServeStats::record_rollback() noexcept {
    sync::MutexLock lock(mu_);
    ++rollbacks_;
}

void ServeStats::record_batch(std::size_t size) noexcept {
    if (size == 0) return;
    sync::MutexLock lock(mu_);
    ++batches_;
    const std::size_t bucket = std::min(size, kMaxTrackedBatch) - 1;
    ++batch_size_counts_[bucket];
}

void ServeStats::record_completed(const FrameTimings& t) noexcept {
    sync::MutexLock lock(mu_);
    ++completed_;
    last_done_s_ = now_seconds();
    queue_wait_.record(t.queue_wait_ms);
    preprocess_.record(t.preprocess_ms);
    forward_.record(t.forward_ms);
    postprocess_.record(t.postprocess_ms);
    total_.record(t.total_ms());
}

ServeStatsSnapshot ServeStats::snapshot() const {
    sync::MutexLock lock(mu_);
    ServeStatsSnapshot s;
    s.submitted = submitted_;
    s.completed = completed_;
    s.dropped = dropped_;
    s.rejected = rejected_;
    s.batches = batches_;
    s.failed = failed_;
    s.retries = retries_;
    s.deadline_expired = deadline_expired_;
    s.worker_restarts = worker_restarts_;
    s.degraded_frames = degraded_frames_;
    s.degrade_transitions = degrade_transitions_;
    s.breaker_opens = breaker_opens_;
    s.breaker_open_ms = breaker_open_ms_;
    s.reloads = reloads_;
    s.reload_failures = reload_failures_;
    s.rollbacks = rollbacks_;
    for (std::size_t i = 0; i < kMaxTrackedBatch; ++i) {
        if (batch_size_counts_[i] > 0) {
            s.batch_sizes.emplace_back(static_cast<int>(i + 1), batch_size_counts_[i]);
        }
    }
    s.wall_seconds =
        clock_started_ ? std::max(0.0, last_done_s_ - first_submit_s_) : 0.0;
    s.throughput_fps = s.wall_seconds > 0
                           ? static_cast<double>(completed_) / s.wall_seconds
                           : 0.0;
    s.queue_wait = summarize(queue_wait_);
    s.preprocess = summarize(preprocess_);
    s.forward = summarize(forward_);
    s.postprocess = summarize(postprocess_);
    s.total = summarize(total_);
    return s;
}

std::string ServeStatsSnapshot::to_json() const {
    std::ostringstream os;
    os << "{\"submitted\":" << submitted << ",\"completed\":" << completed
       << ",\"dropped\":" << dropped << ",\"rejected\":" << rejected
       << ",\"failed\":" << failed << ",\"retries\":" << retries
       << ",\"deadline_expired\":" << deadline_expired
       << ",\"worker_restarts\":" << worker_restarts
       << ",\"degraded_frames\":" << degraded_frames
       << ",\"degrade_transitions\":" << degrade_transitions
       << ",\"breaker_opens\":" << breaker_opens
       << ",\"breaker_open_ms\":" << breaker_open_ms
       << ",\"model_version\":" << model_version
       << ",\"reloads\":" << reloads
       << ",\"reload_failures\":" << reload_failures
       << ",\"rollbacks\":" << rollbacks
       << ",\"queue_depth\":" << queue_depth
       << ",\"in_flight\":" << in_flight
       << ",\"uptime_ms\":" << uptime_ms
       << ",\"batches\":" << batches << ",\"batch_sizes\":{";
    for (std::size_t i = 0; i < batch_sizes.size(); ++i) {
        if (i > 0) os << ",";
        os << "\"" << batch_sizes[i].first << "\":" << batch_sizes[i].second;
    }
    os << "}"
       << ",\"wall_seconds\":" << wall_seconds
       << ",\"throughput_fps\":" << throughput_fps << ",";
    json_stage(os, "queue_wait", queue_wait);
    os << ",";
    json_stage(os, "preprocess", preprocess);
    os << ",";
    json_stage(os, "forward", forward);
    os << ",";
    json_stage(os, "postprocess", postprocess);
    os << ",";
    json_stage(os, "total", total);
    os << "}";
    return os.str();
}

}  // namespace dronet::serve
