// Latency/throughput instrumentation for the detection service.
//
// Each completed frame records four stage durations (queue wait, preprocess,
// network forward, postprocess) plus the end-to-end total into log-spaced
// histograms, from which p50/p95/p99 are interpolated. The recorder is
// thread-safe (workers report concurrently); snapshot() returns a plain
// struct and to_json() a single line for the bench harnesses.
#pragma once

#include <array>
#include <cstdint>
#include <string>
#include <utility>
#include <vector>

#include "sync/mutex.hpp"

namespace dronet::serve {

/// Log-spaced latency histogram covering 1 us .. ~107 s (64 buckets, x1.33
/// per step). Records are clamped into the covered range. Not thread-safe on
/// its own; ServeStats serializes access.
class LatencyHistogram {
  public:
    static constexpr int kBuckets = 64;

    void record(double ms) noexcept;
    void merge(const LatencyHistogram& other) noexcept;

    [[nodiscard]] std::uint64_t count() const noexcept { return count_; }
    [[nodiscard]] double mean_ms() const noexcept;
    [[nodiscard]] double max_ms() const noexcept { return max_ms_; }
    /// Interpolated percentile, p in [0,100]. Returns 0 with no samples.
    [[nodiscard]] double percentile(double p) const noexcept;

  private:
    [[nodiscard]] static int bucket_of(double ms) noexcept;
    [[nodiscard]] static double bucket_upper_ms(int bucket) noexcept;

    std::array<std::uint64_t, kBuckets> buckets_{};
    std::uint64_t count_ = 0;
    double total_ms_ = 0;
    double max_ms_ = 0;
};

/// Summary of one pipeline stage, derived from its histogram.
struct StageSummary {
    std::uint64_t count = 0;
    double mean_ms = 0;
    double p50_ms = 0;
    double p95_ms = 0;
    double p99_ms = 0;
    double max_ms = 0;
};

/// Stage durations of one served frame, in milliseconds.
struct FrameTimings {
    double queue_wait_ms = 0;
    double preprocess_ms = 0;
    double forward_ms = 0;
    double postprocess_ms = 0;
    [[nodiscard]] double total_ms() const noexcept {
        return queue_wait_ms + preprocess_ms + forward_ms + postprocess_ms;
    }
};

/// Consistent point-in-time view of the service counters and latencies.
struct ServeStatsSnapshot {
    std::uint64_t submitted = 0;
    std::uint64_t completed = 0;
    std::uint64_t dropped = 0;   ///< evicted by kDropOldest
    std::uint64_t rejected = 0;  ///< refused by kReject, closed queue, open breaker, shutdown sweep
    std::uint64_t batches = 0;   ///< forward passes executed by workers
    // Self-healing counters (docs/robustness.md). An accounting invariant the
    // chaos tests assert: submitted == completed + dropped + rejected +
    // failed + deadline_expired once the service is drained.
    std::uint64_t failed = 0;            ///< frames whose forward failed after all retries
    std::uint64_t retries = 0;           ///< transient-fault retry attempts
    std::uint64_t deadline_expired = 0;  ///< frames resolved kTimeout past their deadline
    std::uint64_t worker_restarts = 0;   ///< dead workers respawned by the watchdog
    std::uint64_t degraded_frames = 0;   ///< frames served at the fallback input size
    std::uint64_t degrade_transitions = 0;  ///< full<->degraded mode flips
    std::uint64_t breaker_opens = 0;        ///< circuit-breaker open transitions
    double breaker_open_ms = 0;             ///< cumulative time the breaker was open
    // Model lifecycle (docs/robustness.md, "Model lifecycle"). model_version
    // is a gauge: 1 for the construction-time model, +1 per committed swap
    // (a rollback restores the previous version number).
    std::uint64_t model_version = 0;    ///< version of the live model set
    std::uint64_t reloads = 0;          ///< committed hot swaps
    std::uint64_t reload_failures = 0;  ///< candidates rejected before swap
    std::uint64_t rollbacks = 0;        ///< probation/explicit reversions
    // Live gauges (point-in-time, not counters). DetectionService::stats()
    // fills them; a bare ServeStats::snapshot() leaves them zero. They feed
    // the cluster router's least-loaded dispatch and the fleet-aggregated
    // JSON (docs/serving.md).
    std::uint64_t queue_depth = 0;  ///< frames waiting in the service queue now
    std::uint64_t in_flight = 0;    ///< frames accepted but not yet resolved
    std::uint64_t uptime_ms = 0;    ///< since service construction
    /// Per-batch-size histogram: (size, count) for every size that occurred,
    /// ascending. completed == sum(size * count) once the service is drained.
    std::vector<std::pair<int, std::uint64_t>> batch_sizes;
    double wall_seconds = 0;     ///< first submit -> last completion
    double throughput_fps = 0;   ///< completed / wall_seconds
    StageSummary queue_wait;
    StageSummary preprocess;
    StageSummary forward;
    StageSummary postprocess;
    StageSummary total;

    /// One-line JSON object (stable key order) for bench harnesses.
    [[nodiscard]] std::string to_json() const;
};

/// Thread-safe recorder shared by all service workers.
class ServeStats {
  public:
    void record_submitted() noexcept;
    void record_rejected() noexcept;
    void record_dropped() noexcept;
    void record_completed(const FrameTimings& timings) noexcept;
    /// Records one worker forward pass covering `size` frames. Sizes beyond
    /// kMaxTrackedBatch are clamped into the last bucket.
    void record_batch(std::size_t size) noexcept;
    // Self-healing events (see ServeStatsSnapshot field docs).
    void record_failed() noexcept;
    void record_retry() noexcept;
    void record_deadline_expired() noexcept;
    void record_worker_restart() noexcept;
    void record_degraded(std::uint64_t frames) noexcept;
    void record_degrade_transition() noexcept;
    void record_breaker_opened() noexcept;
    /// Accumulates one closed open-interval of the circuit breaker.
    void record_breaker_open_ms(double ms) noexcept;
    // Model lifecycle events (see ServeStatsSnapshot field docs).
    void record_reload() noexcept;
    void record_reload_failure() noexcept;
    void record_rollback() noexcept;

    static constexpr std::size_t kMaxTrackedBatch = 64;

    [[nodiscard]] ServeStatsSnapshot snapshot() const;

  private:
    mutable sync::Mutex mu_{"ServeStats::mu"};
    std::uint64_t submitted_ GUARDED_BY(mu_) = 0;
    std::uint64_t completed_ GUARDED_BY(mu_) = 0;
    std::uint64_t dropped_ GUARDED_BY(mu_) = 0;
    std::uint64_t rejected_ GUARDED_BY(mu_) = 0;
    std::uint64_t batches_ GUARDED_BY(mu_) = 0;
    std::uint64_t failed_ GUARDED_BY(mu_) = 0;
    std::uint64_t retries_ GUARDED_BY(mu_) = 0;
    std::uint64_t deadline_expired_ GUARDED_BY(mu_) = 0;
    std::uint64_t worker_restarts_ GUARDED_BY(mu_) = 0;
    std::uint64_t degraded_frames_ GUARDED_BY(mu_) = 0;
    std::uint64_t degrade_transitions_ GUARDED_BY(mu_) = 0;
    std::uint64_t breaker_opens_ GUARDED_BY(mu_) = 0;
    double breaker_open_ms_ GUARDED_BY(mu_) = 0;
    std::uint64_t reloads_ GUARDED_BY(mu_) = 0;
    std::uint64_t reload_failures_ GUARDED_BY(mu_) = 0;
    std::uint64_t rollbacks_ GUARDED_BY(mu_) = 0;
    std::array<std::uint64_t, kMaxTrackedBatch> batch_size_counts_
        GUARDED_BY(mu_){};
    bool clock_started_ GUARDED_BY(mu_) = false;
    double first_submit_s_ GUARDED_BY(mu_) = 0;  ///< steady-clock seconds
    double last_done_s_ GUARDED_BY(mu_) = 0;
    LatencyHistogram queue_wait_ GUARDED_BY(mu_);
    LatencyHistogram preprocess_ GUARDED_BY(mu_);
    LatencyHistogram forward_ GUARDED_BY(mu_);
    LatencyHistogram postprocess_ GUARDED_BY(mu_);
    LatencyHistogram total_ GUARDED_BY(mu_);
};

}  // namespace dronet::serve
