#include "simd/dispatch.hpp"

#include <atomic>
#include <cstdio>
#include <cstdlib>
#include <cstring>

#include "simd/kernels.hpp"

namespace dronet::simd {

#ifndef DRONET_SIMD_HAS_AVX2
// Built without AVX2 kernels (non-x86 or disabled): kernels_avx2.cpp is not
// in the build, so provide the "no table" answer here.
const KernelTable* avx2_kernel_table() noexcept { return nullptr; }
#endif

namespace {

bool detect_cpu_avx2() noexcept {
#if defined(DRONET_SIMD_HAS_AVX2) && (defined(__x86_64__) || defined(__i386__))
    return __builtin_cpu_supports("avx2") && __builtin_cpu_supports("fma") &&
           __builtin_cpu_supports("f16c");
#else
    return false;
#endif
}

// The active table pointer IS the dispatch state: kernels() reads it with one
// acquire load, set_level() swaps it. Initialized before main() by the
// EnvInit constructor below (single-threaded at that point).
std::atomic<const KernelTable*> g_table{nullptr};
std::atomic<SimdLevel> g_level{SimdLevel::kScalar};

void install(SimdLevel level) noexcept {
    const KernelTable* table = level == SimdLevel::kAvx2
                                   ? avx2_kernel_table()
                                   : scalar_kernel_table();
    if (table == nullptr) {  // AVX2 requested but not compiled in
        table = scalar_kernel_table();
        level = SimdLevel::kScalar;
    }
    g_level.store(level, std::memory_order_relaxed);
    g_table.store(table, std::memory_order_release);
}

SimdLevel startup_level() noexcept {
    const char* env = std::getenv("DRONET_SIMD");
    if (env != nullptr && *env != '\0') {
        if (std::strcmp(env, "scalar") == 0) return SimdLevel::kScalar;
        if (std::strcmp(env, "avx2") == 0) {
            if (detect_cpu_avx2()) return SimdLevel::kAvx2;
            std::fprintf(stderr,
                         "# DRONET_SIMD=avx2 requested but this CPU/build "
                         "lacks AVX2+FMA+F16C; using scalar kernels\n");
            return SimdLevel::kScalar;
        }
        std::fprintf(stderr,
                     "# DRONET_SIMD=%s not recognized (scalar|avx2); using "
                     "CPU detection\n",
                     env);
    }
    return detect_cpu_avx2() ? SimdLevel::kAvx2 : SimdLevel::kScalar;
}

struct EnvInit {
    EnvInit() noexcept { install(startup_level()); }
};
const EnvInit g_env_init;

}  // namespace

const char* to_string(SimdLevel level) noexcept {
    return level == SimdLevel::kAvx2 ? "avx2" : "scalar";
}

bool cpu_supports_avx2() noexcept { return detect_cpu_avx2(); }

SimdLevel active_level() noexcept {
    // Covers calls from other dynamic initializers that might run before
    // g_env_init (link order is unspecified).
    if (g_table.load(std::memory_order_acquire) == nullptr) {
        install(startup_level());
    }
    return g_level.load(std::memory_order_relaxed);
}

SimdLevel set_level(SimdLevel level) noexcept {
    if (level == SimdLevel::kAvx2 && !detect_cpu_avx2()) {
        level = SimdLevel::kScalar;
    }
    install(level);
    return level;
}

const KernelTable& kernels() noexcept {
    const KernelTable* t = g_table.load(std::memory_order_acquire);
    if (t == nullptr) {
        install(startup_level());
        t = g_table.load(std::memory_order_acquire);
    }
    return *t;
}

}  // namespace dronet::simd
