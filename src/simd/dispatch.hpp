// Runtime CPU-capability dispatch for the vectorized compute backend.
//
// The level is decided exactly once, before main() runs:
//
//     DRONET_SIMD env set?  ── "scalar" ──────────────► kScalar
//            │                  "avx2" ── CPU has it? ─► kAvx2
//            │                              └─ no ─────► kScalar (+ stderr note)
//            └─ unset ── CPUID: AVX2+FMA+F16C? ── yes ─► kAvx2
//                                              └─ no ──► kScalar
//
// Every dispatched kernel (kernels.hpp) reads the level through one atomic
// table pointer, so changing the level is race-free and costs one acquire
// load per kernel call. set_level() exists for tests and benchmarks that
// compare levels inside one process (the DRONET_SIMD matrix in
// scripts/run_all.sh covers the from-startup path).
#pragma once

namespace dronet::simd {

enum class SimdLevel {
    kScalar,  ///< portable reference kernels; bit-exact vs the naive paths
    kAvx2,    ///< AVX2 + FMA (+ F16C for half conversions); tolerance-gated
};

[[nodiscard]] const char* to_string(SimdLevel level) noexcept;

/// True when this binary carries AVX2 kernels AND the CPU reports
/// AVX2 + FMA + F16C.
[[nodiscard]] bool cpu_supports_avx2() noexcept;

/// The level dispatched kernels currently run at.
[[nodiscard]] SimdLevel active_level() noexcept;

/// Forces a level; returns the level actually installed (a kAvx2 request on
/// hardware without AVX2 stays at kScalar). Test/bench hook.
SimdLevel set_level(SimdLevel level) noexcept;

/// RAII level override for tests: restores the previous level on scope exit.
class ScopedSimdLevel {
  public:
    explicit ScopedSimdLevel(SimdLevel level) noexcept
        : previous_(active_level()) {
        set_level(level);
    }
    ~ScopedSimdLevel() { set_level(previous_); }
    ScopedSimdLevel(const ScopedSimdLevel&) = delete;
    ScopedSimdLevel& operator=(const ScopedSimdLevel&) = delete;

  private:
    SimdLevel previous_;
};

}  // namespace dronet::simd
