#include "simd/half.hpp"

#include <bit>
#include <vector>

#include "simd/kernels.hpp"

namespace dronet::simd {

std::uint16_t float_to_half_rtne(float f) noexcept {
    const std::uint32_t x = std::bit_cast<std::uint32_t>(f);
    const std::uint16_t sign = static_cast<std::uint16_t>((x >> 16) & 0x8000u);
    const std::uint32_t raw_exp = (x >> 23) & 0xFFu;
    const std::uint32_t man = x & 0x7FFFFFu;

    if (raw_exp == 0xFFu) {  // Inf or NaN
        if (man == 0) return sign | 0x7C00u;
        std::uint16_t hm = static_cast<std::uint16_t>(man >> 13);
        // A payload living entirely in the truncated low bits would decode as
        // Inf; substitute the quiet bit so NaN-ness survives.
        if (hm == 0) hm = 0x200u;
        return static_cast<std::uint16_t>(sign | 0x7C00u | hm);
    }

    // Rebias: half exponent = float exponent - 127 + 15.
    const std::int32_t exp = static_cast<std::int32_t>(raw_exp) - 112;
    if (exp >= 31) return sign | 0x7C00u;  // overflow -> Inf (after RTNE this
                                           // is exact: 65520 is the cutoff)
    if (exp <= 0) {
        // Subnormal half (or underflow to zero). Value = 1.man * 2^(exp-15);
        // express it in units of 2^-24 (the subnormal ULP) and round.
        const std::int32_t shift = 14 - exp;  // 24-bit significand >> shift
        if (shift > 25) return sign;          // below half of the smallest ULP
        const std::uint32_t full = man | 0x800000u;
        std::uint32_t h = full >> shift;  // shift <= 25, always in range
        const std::uint32_t rem = full & ((1u << shift) - 1u);
        const std::uint32_t half_point = 1u << (shift - 1);
        if (rem > half_point || (rem == half_point && (h & 1u))) ++h;
        // A carry out of the subnormal range lands on 0x0400 — the smallest
        // normal half — which is exactly the right encoding.
        return static_cast<std::uint16_t>(sign | h);
    }

    // Normal: round 23-bit mantissa to 10 bits, ties to even. The increment
    // may carry into the exponent (and from 30 into Inf) — both are correct.
    std::uint32_t h = (static_cast<std::uint32_t>(exp) << 10) | (man >> 13);
    const std::uint32_t rem = man & 0x1FFFu;
    if (rem > 0x1000u || (rem == 0x1000u && (h & 1u))) ++h;
    return static_cast<std::uint16_t>(sign | h);
}

float half_to_float(std::uint16_t h) noexcept {
    const std::uint32_t sign = static_cast<std::uint32_t>(h & 0x8000u) << 16;
    const std::uint32_t exp = (h >> 10) & 0x1Fu;
    std::uint32_t man = h & 0x3FFu;
    std::uint32_t bits;
    if (exp == 0) {
        if (man == 0) {
            bits = sign;  // signed zero
        } else {
            // Subnormal: normalize by shifting the leading 1 into place.
            std::int32_t e = 0;
            while ((man & 0x400u) == 0) {
                man <<= 1;
                ++e;
            }
            man &= 0x3FFu;
            // After e shifts the value is (man/2^10) * 2^(-14-e) with an
            // implicit leading 1, so the float exponent is -14-e (bias 127).
            bits = sign | (static_cast<std::uint32_t>(127 - 14 - e) << 23) | (man << 13);
        }
    } else if (exp == 31) {
        bits = sign | 0x7F800000u | (man << 13);  // Inf / NaN, payload kept
    } else {
        bits = sign | ((exp + 112u) << 23) | (man << 13);
    }
    return std::bit_cast<float>(bits);
}

void floats_to_halfs(const float* src, std::uint16_t* dst, std::size_t n) {
    kernels().floats_to_halfs(src, dst, n);
}

void halfs_to_floats(const std::uint16_t* src, float* dst, std::size_t n) {
    kernels().halfs_to_floats(src, dst, n);
}

void fp16_round_trip(std::span<float> x) {
    thread_local std::vector<std::uint16_t> scratch;
    if (scratch.size() < x.size()) scratch.resize(x.size());
    kernels().floats_to_halfs(x.data(), scratch.data(), x.size());
    kernels().halfs_to_floats(scratch.data(), x.data(), x.size());
}

}  // namespace dronet::simd
