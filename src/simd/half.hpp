// IEEE-754 binary16 ("half") storage type with software conversions.
//
// The numerics policy (docs/vectorization.md):
//   * float_to_half_rtne rounds to nearest, ties to even — the same rounding
//     hardware F16C (vcvtps2ph with _MM_FROUND_TO_NEAREST_INT) performs, so
//     the software and vectorized conversion paths agree bitwise on every
//     finite input and on infinities.
//   * Overflow (|x| >= 65520) saturates to ±Inf; values below 2^-24 round to
//     signed zero; the subnormal range [2^-24, 2^-14) is rounded exactly,
//     never flushed.
//   * NaNs stay NaNs. The top 10 mantissa bits are kept, and a payload that
//     would truncate to zero is replaced with the quiet-NaN bit so the result
//     still encodes NaN. half -> float -> half is the identity for ALL 65536
//     bit patterns, including NaN payloads (test_half exercises this
//     exhaustively).
//
// Half is storage-only: arithmetic converts to float, computes, converts
// back. Bulk conversions go through simd::kernels() (F16C on the AVX2 level).
#pragma once

#include <cstdint>
#include <span>

namespace dronet::simd {

[[nodiscard]] std::uint16_t float_to_half_rtne(float f) noexcept;
[[nodiscard]] float half_to_float(std::uint16_t h) noexcept;

/// POD 16-bit storage scalar. Implicit float conversion keeps call sites
/// readable; construction from float is explicit so narrowing is visible.
struct Half {
    std::uint16_t bits = 0;

    Half() = default;
    explicit Half(float f) noexcept : bits(float_to_half_rtne(f)) {}
    static Half from_bits(std::uint16_t b) noexcept {
        Half h;
        h.bits = b;
        return h;
    }
    operator float() const noexcept { return half_to_float(bits); }  // NOLINT(google-explicit-constructor)
};

/// Bulk conversions, dispatched (kernels.hpp): F16C on the AVX2 level,
/// the scalar routines above otherwise.
void floats_to_halfs(const float* src, std::uint16_t* dst, std::size_t n);
void halfs_to_floats(const std::uint16_t* src, float* dst, std::size_t n);

/// Rounds every value through fp16 storage precision in place — what a layer
/// output goes through when activations are stored as halves.
void fp16_round_trip(std::span<float> x);

}  // namespace dronet::simd
