// Dispatched kernel entry points backing the hot paths (tensor/gemm,
// tensor/im2col, tensor/ops, nn/activation, image/resize, nn fp16 storage).
//
// Callers fetch the active table once per call site via kernels() — one
// atomic acquire load — and invoke plain function pointers. The scalar table
// is always available; the AVX2 table exists when the binary was built with
// AVX2 kernels (x86-64) and is installed by dispatch when the CPU qualifies.
//
// Bit-exactness contract per entry (docs/vectorization.md):
//   * copy_row / add_bias_row / scale_row / normalize_row / leaky_relu /
//     relu / lerp_rows perform identical per-element IEEE operations at both
//     levels — results are bitwise equal regardless of dispatch.
//   * gemm_micro_4x16 is null on the scalar table (the caller keeps its
//     reference loop); the AVX2 entry uses FMA and is tolerance-gated.
//   * gemm_i8_row is pure integer arithmetic — results are bitwise identical
//     across levels (memcmp-gated in test_quantize).
//   * floats_to_halfs / halfs_to_floats agree bitwise across levels for all
//     finite values and infinities (RTNE both ways); NaN payloads may differ.
#pragma once

#include <cstddef>
#include <cstdint>

namespace dronet::simd {

struct KernelTable {
    void (*copy_row)(float* dst, const float* src, std::size_t n);
    void (*add_bias_row)(float* p, std::size_t n, float bias);
    void (*scale_row)(float* p, std::size_t n, float scale);
    void (*normalize_row)(float* p, std::size_t n, float mean, float inv_std);
    void (*leaky_relu)(float* p, std::size_t n);
    void (*relu)(float* p, std::size_t n);
    /// dst[i] = a[i]*(1-w) + b[i]*w — the bilinear vertical pass.
    void (*lerp_rows)(const float* a, const float* b, float w, float* dst,
                      std::size_t n);
    void (*floats_to_halfs)(const float* src, std::uint16_t* dst, std::size_t n);
    void (*halfs_to_floats)(const std::uint16_t* src, float* dst, std::size_t n);
    /// Full 4x16 C tile: c[r][j] = alpha*sum_k(ap[k*4+r]*b[k*b_stride+j]) +
    /// beta*c[r][j]. Null on the scalar table (caller's reference loop runs).
    void (*gemm_micro_4x16)(const float* ap, const float* b,
                            std::int64_t b_stride, int k, float alpha,
                            float beta, float* c, std::int64_t ldc);
    /// One output row of the int8 GEMM with int32 accumulation (overwrites):
    /// c_row[j] = sum_p a_row[p] * b[p*ldb + j], j in [0, n). Integer math —
    /// bitwise identical across levels. Overflow-safe for k < 2^16.
    void (*gemm_i8_row)(const std::int8_t* a_row, const std::int8_t* b,
                        std::int64_t ldb, int k, int n, std::int32_t* c_row);
};

/// The table for the active dispatch level (dispatch.hpp).
[[nodiscard]] const KernelTable& kernels() noexcept;

/// Tables by capability; scalar_kernel_table() always exists,
/// avx2_kernel_table() returns null when the binary carries no AVX2 kernels.
[[nodiscard]] const KernelTable* scalar_kernel_table() noexcept;
[[nodiscard]] const KernelTable* avx2_kernel_table() noexcept;

}  // namespace dronet::simd
