// AVX2/FMA/F16C instantiation of the kernel templates plus the hand-written
// GEMM micro-kernel and half conversions. This TU — and only this TU — is
// compiled with -mavx2 -mfma -mf16c (src/simd/CMakeLists.txt); nothing here
// may be called before dispatch has confirmed the CPU capability.
#include "simd/kernels.hpp"

#include <immintrin.h>

#include "simd/half.hpp"
#include "simd/kernels_impl.hpp"
#include "simd/vec_avx2.hpp"

namespace dronet::simd {
namespace {

/// Full 4x16 tile with FMA accumulators: 8 ymm accumulators (4 rows x 2
/// halves), one B-row load pair amortized over four broadcast A values —
/// the vector mirror of tensor/gemm.cpp's micro_full_direct/_packed.
void gemm_micro_4x16_fma(const float* ap, const float* b, std::int64_t b_stride,
                         int k, float alpha, float beta, float* c,
                         std::int64_t ldc) {
    __m256 acc00 = _mm256_setzero_ps(), acc01 = _mm256_setzero_ps();
    __m256 acc10 = _mm256_setzero_ps(), acc11 = _mm256_setzero_ps();
    __m256 acc20 = _mm256_setzero_ps(), acc21 = _mm256_setzero_ps();
    __m256 acc30 = _mm256_setzero_ps(), acc31 = _mm256_setzero_ps();
    for (int kk = 0; kk < k; ++kk) {
        const float* brow = b + static_cast<std::int64_t>(kk) * b_stride;
        const __m256 b0 = _mm256_loadu_ps(brow);
        const __m256 b1 = _mm256_loadu_ps(brow + 8);
        const __m256 a0 = _mm256_broadcast_ss(ap + 0);
        const __m256 a1 = _mm256_broadcast_ss(ap + 1);
        const __m256 a2 = _mm256_broadcast_ss(ap + 2);
        const __m256 a3 = _mm256_broadcast_ss(ap + 3);
        ap += 4;
        acc00 = _mm256_fmadd_ps(a0, b0, acc00);
        acc01 = _mm256_fmadd_ps(a0, b1, acc01);
        acc10 = _mm256_fmadd_ps(a1, b0, acc10);
        acc11 = _mm256_fmadd_ps(a1, b1, acc11);
        acc20 = _mm256_fmadd_ps(a2, b0, acc20);
        acc21 = _mm256_fmadd_ps(a2, b1, acc21);
        acc30 = _mm256_fmadd_ps(a3, b0, acc30);
        acc31 = _mm256_fmadd_ps(a3, b1, acc31);
    }
    const __m256 va = _mm256_set1_ps(alpha);
    const __m256 vb = _mm256_set1_ps(beta);
    const __m256 accs[4][2] = {
        {acc00, acc01}, {acc10, acc11}, {acc20, acc21}, {acc30, acc31}};
    for (int r = 0; r < 4; ++r) {
        float* crow = c + static_cast<std::int64_t>(r) * ldc;
        for (int h = 0; h < 2; ++h) {
            float* cp = crow + 8 * h;
            // alpha*acc + beta*c, beta multiplying whatever C holds — the
            // same expression the scalar write_tile evaluates.
            const __m256 cv = _mm256_loadu_ps(cp);
            _mm256_storeu_ps(
                cp, _mm256_add_ps(_mm256_mul_ps(va, accs[r][h]),
                                  _mm256_mul_ps(vb, cv)));
        }
    }
}

/// One int8 GEMM output row with paired-k madd accumulation. Two consecutive
/// B rows are byte-interleaved (unpacklo/hi), widened to int16, and folded by
/// _mm256_madd_epi16 against a broadcast (a[p], a[p+1]) int16 pair — so lane
/// i accumulates b[p][j+i]*a[p] + b[p+1][j+i]*a[p+1]. Pure integer math:
/// bitwise identical to the scalar reference. Odd k pairs the last row with
/// zeros; a scalar loop covers the n%16 column tail. Overflow-safe for
/// k < 2^16 (each madd pair <= 2*127*127, summed in int32 over k/2 steps).
void gemm_i8_row_avx2(const std::int8_t* a_row, const std::int8_t* b,
                      std::int64_t ldb, int k, int n, std::int32_t* c_row) {
    const __m128i zero128 = _mm_setzero_si128();
    int j = 0;
    for (; j + 16 <= n; j += 16) {
        __m256i acc_lo = _mm256_setzero_si256();
        __m256i acc_hi = _mm256_setzero_si256();
        for (int p = 0; p < k; p += 2) {
            const std::int32_t a0 = a_row[p];
            const std::int32_t a1 = (p + 1 < k) ? a_row[p + 1] : 0;
            if (a0 == 0 && a1 == 0) continue;
            const std::int8_t* bp = b + static_cast<std::int64_t>(p) * ldb + j;
            const __m128i b0 =
                _mm_loadu_si128(reinterpret_cast<const __m128i*>(bp));
            const __m128i b1 =
                (p + 1 < k)
                    ? _mm_loadu_si128(
                          reinterpret_cast<const __m128i*>(bp + ldb))
                    : zero128;
            const __m256i apair =
                _mm256_set1_epi32((a1 << 16) | (a0 & 0xFFFF));
            const __m256i wlo =
                _mm256_cvtepi8_epi16(_mm_unpacklo_epi8(b0, b1));
            const __m256i whi =
                _mm256_cvtepi8_epi16(_mm_unpackhi_epi8(b0, b1));
            acc_lo = _mm256_add_epi32(acc_lo, _mm256_madd_epi16(wlo, apair));
            acc_hi = _mm256_add_epi32(acc_hi, _mm256_madd_epi16(whi, apair));
        }
        _mm256_storeu_si256(reinterpret_cast<__m256i*>(c_row + j), acc_lo);
        _mm256_storeu_si256(reinterpret_cast<__m256i*>(c_row + j + 8), acc_hi);
    }
    for (; j < n; ++j) {
        std::int32_t sum = 0;
        for (int p = 0; p < k; ++p) {
            sum += static_cast<std::int32_t>(a_row[p]) *
                   static_cast<std::int32_t>(
                       b[static_cast<std::int64_t>(p) * ldb + j]);
        }
        c_row[j] = sum;
    }
}

void floats_to_halfs_f16c(const float* src, std::uint16_t* dst, std::size_t n) {
    std::size_t i = 0;
    for (; i + 8 <= n; i += 8) {
        const __m256 v = _mm256_loadu_ps(src + i);
        const __m128i h =
            _mm256_cvtps_ph(v, _MM_FROUND_TO_NEAREST_INT | _MM_FROUND_NO_EXC);
        _mm_storeu_si128(reinterpret_cast<__m128i*>(dst + i), h);
    }
    for (; i < n; ++i) dst[i] = float_to_half_rtne(src[i]);
}

void halfs_to_floats_f16c(const std::uint16_t* src, float* dst, std::size_t n) {
    std::size_t i = 0;
    for (; i + 8 <= n; i += 8) {
        const __m128i h =
            _mm_loadu_si128(reinterpret_cast<const __m128i*>(src + i));
        _mm256_storeu_ps(dst + i, _mm256_cvtph_ps(h));
    }
    for (; i < n; ++i) dst[i] = half_to_float(src[i]);
}

constexpr KernelTable kAvx2Table = {
    impl::copy_row<VecAvx2>,
    impl::add_bias_row<VecAvx2>,
    impl::scale_row<VecAvx2>,
    impl::normalize_row<VecAvx2>,
    impl::leaky_relu<VecAvx2>,
    impl::relu<VecAvx2>,
    impl::lerp_rows<VecAvx2>,
    floats_to_halfs_f16c,
    halfs_to_floats_f16c,
    gemm_micro_4x16_fma,
    gemm_i8_row_avx2,
};

}  // namespace

const KernelTable* avx2_kernel_table() noexcept { return &kAvx2Table; }

}  // namespace dronet::simd
