// Kernel bodies, written once against the Vec interface (vec_base.hpp) and
// instantiated per capability: kernels_scalar.cpp with VecScalar and
// kernels_avx2.cpp with VecAvx2. Tails (< V::kWidth elements) use the same
// per-element expressions as the vector lanes, so both instantiations are
// bitwise-identical to the plain scalar loops they replaced.
#pragma once

#include <cstddef>

namespace dronet::simd::impl {

template <class V>
void copy_row(float* dst, const float* src, std::size_t n) {
    std::size_t i = 0;
    for (; i + V::kWidth <= n; i += V::kWidth) V::loadu(src + i).storeu(dst + i);
    for (; i < n; ++i) dst[i] = src[i];
}

template <class V>
void add_bias_row(float* p, std::size_t n, float bias) {
    const V vb = V::broadcast(bias);
    std::size_t i = 0;
    for (; i + V::kWidth <= n; i += V::kWidth) (V::loadu(p + i) + vb).storeu(p + i);
    for (; i < n; ++i) p[i] += bias;
}

template <class V>
void scale_row(float* p, std::size_t n, float scale) {
    const V vs = V::broadcast(scale);
    std::size_t i = 0;
    for (; i + V::kWidth <= n; i += V::kWidth) (V::loadu(p + i) * vs).storeu(p + i);
    for (; i < n; ++i) p[i] *= scale;
}

template <class V>
void normalize_row(float* p, std::size_t n, float mean, float inv_std) {
    const V vm = V::broadcast(mean);
    const V vi = V::broadcast(inv_std);
    std::size_t i = 0;
    for (; i + V::kWidth <= n; i += V::kWidth) {
        ((V::loadu(p + i) - vm) * vi).storeu(p + i);
    }
    for (; i < n; ++i) p[i] = (p[i] - mean) * inv_std;
}

template <class V>
void leaky_relu(float* p, std::size_t n) {
    const V zero = V::zero();
    const V slope = V::broadcast(0.1f);
    std::size_t i = 0;
    for (; i + V::kWidth <= n; i += V::kWidth) {
        const V x = V::loadu(p + i);
        V::blend(V::cmp_gt(x, zero), x, x * slope).storeu(p + i);
    }
    for (; i < n; ++i) p[i] = p[i] > 0 ? p[i] : 0.1f * p[i];
}

template <class V>
void relu(float* p, std::size_t n) {
    const V zero = V::zero();
    std::size_t i = 0;
    for (; i + V::kWidth <= n; i += V::kWidth) {
        // max(x, 0): second-operand-on-NaN semantics make a NaN input 0,
        // matching the `x > 0 ? x : 0` scalar tail.
        V::max(V::loadu(p + i), zero).storeu(p + i);
    }
    for (; i < n; ++i) p[i] = p[i] > 0 ? p[i] : 0.0f;
}

template <class V>
void lerp_rows(const float* a, const float* b, float w, float* dst, std::size_t n) {
    const V va = V::broadcast(1.0f - w);
    const V vb = V::broadcast(w);
    std::size_t i = 0;
    for (; i + V::kWidth <= n; i += V::kWidth) {
        // mul, mul, add — the exact operation sequence of the scalar
        // expression `a*(1-w) + b*w`, so results are bitwise identical.
        (V::loadu(a + i) * va + V::loadu(b + i) * vb).storeu(dst + i);
    }
    for (; i < n; ++i) dst[i] = a[i] * (1.0f - w) + b[i] * w;
}

}  // namespace dronet::simd::impl
