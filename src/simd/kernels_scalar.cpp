// Scalar instantiation of the kernel templates — the always-available,
// bit-exact dispatch level. gemm_micro_4x16 stays null: tensor/gemm.cpp keeps
// its reference micro-kernel loop on this level.
#include "simd/kernels.hpp"

#include <algorithm>

#include "simd/half.hpp"
#include "simd/kernels_impl.hpp"
#include "simd/vec_base.hpp"

namespace dronet::simd {
namespace {

void floats_to_halfs_scalar(const float* src, std::uint16_t* dst, std::size_t n) {
    for (std::size_t i = 0; i < n; ++i) dst[i] = float_to_half_rtne(src[i]);
}

void halfs_to_floats_scalar(const std::uint16_t* src, float* dst, std::size_t n) {
    for (std::size_t i = 0; i < n; ++i) dst[i] = half_to_float(src[i]);
}

void gemm_i8_row_scalar(const std::int8_t* a_row, const std::int8_t* b,
                        std::int64_t ldb, int k, int n, std::int32_t* c_row) {
    std::fill(c_row, c_row + n, 0);
    for (int p = 0; p < k; ++p) {
        const std::int32_t a_p = a_row[p];
        if (a_p == 0) continue;
        const std::int8_t* brow = b + static_cast<std::int64_t>(p) * ldb;
        for (int j = 0; j < n; ++j) {
            c_row[j] += a_p * static_cast<std::int32_t>(brow[j]);
        }
    }
}

constexpr KernelTable kScalarTable = {
    impl::copy_row<VecScalar>,
    impl::add_bias_row<VecScalar>,
    impl::scale_row<VecScalar>,
    impl::normalize_row<VecScalar>,
    impl::leaky_relu<VecScalar>,
    impl::relu<VecScalar>,
    impl::lerp_rows<VecScalar>,
    floats_to_halfs_scalar,
    halfs_to_floats_scalar,
    nullptr,  // gemm_micro_4x16: scalar level keeps the reference loop
    gemm_i8_row_scalar,
};

}  // namespace

const KernelTable* scalar_kernel_table() noexcept { return &kScalarTable; }

}  // namespace dronet::simd
