// AVX2/FMA specialization of the Vec interface (see vec_base.hpp for the
// semantics contract). This header must only be included from translation
// units compiled with -mavx2 -mfma (kernels_avx2.cpp): the types below expand
// to 256-bit ymm intrinsics, and inlining them into a generic TU would let
// AVX instructions leak into code that runs before dispatch checks CPUID.
#pragma once

#if !defined(__AVX2__) || !defined(__FMA__)
#error "vec_avx2.hpp requires a TU compiled with -mavx2 -mfma"
#endif

#include <immintrin.h>

namespace dronet::simd {

struct VecAvx2 {
    static constexpr int kWidth = 8;
    __m256 v;

    VecAvx2() = default;
    explicit VecAvx2(__m256 x) : v(x) {}

    static VecAvx2 loadu(const float* p) { return VecAvx2(_mm256_loadu_ps(p)); }
    void storeu(float* p) const { _mm256_storeu_ps(p, v); }
    static VecAvx2 broadcast(float x) { return VecAvx2(_mm256_set1_ps(x)); }
    static VecAvx2 zero() { return VecAvx2(_mm256_setzero_ps()); }

    friend VecAvx2 operator+(const VecAvx2& a, const VecAvx2& b) {
        return VecAvx2(_mm256_add_ps(a.v, b.v));
    }
    friend VecAvx2 operator-(const VecAvx2& a, const VecAvx2& b) {
        return VecAvx2(_mm256_sub_ps(a.v, b.v));
    }
    friend VecAvx2 operator*(const VecAvx2& a, const VecAvx2& b) {
        return VecAvx2(_mm256_mul_ps(a.v, b.v));
    }

    /// True fused multiply-add: one rounding. Tolerance-gated paths only.
    static VecAvx2 fmadd(const VecAvx2& a, const VecAvx2& b, const VecAvx2& c) {
        return VecAvx2(_mm256_fmadd_ps(a.v, b.v, c.v));
    }

    // x86 max/min return the second operand when either input is NaN, which
    // is exactly the `a > b ? a : b` contract from vec_base.hpp.
    static VecAvx2 max(const VecAvx2& a, const VecAvx2& b) {
        return VecAvx2(_mm256_max_ps(a.v, b.v));
    }
    static VecAvx2 min(const VecAvx2& a, const VecAvx2& b) {
        return VecAvx2(_mm256_min_ps(a.v, b.v));
    }

    static VecAvx2 cmp_gt(const VecAvx2& a, const VecAvx2& b) {
        return VecAvx2(_mm256_cmp_ps(a.v, b.v, _CMP_GT_OQ));
    }
    static VecAvx2 blend(const VecAvx2& mask, const VecAvx2& a, const VecAvx2& b) {
        return VecAvx2(_mm256_blendv_ps(b.v, a.v, mask.v));
    }

    [[nodiscard]] float hsum() const {
        const __m128 lo = _mm256_castps256_ps128(v);
        const __m128 hi = _mm256_extractf128_ps(v, 1);
        __m128 s = _mm_add_ps(lo, hi);
        s = _mm_add_ps(s, _mm_movehl_ps(s, s));
        s = _mm_add_ss(s, _mm_shuffle_ps(s, s, 1));
        return _mm_cvtss_f32(s);
    }
    [[nodiscard]] float hmax() const {
        const __m128 lo = _mm256_castps256_ps128(v);
        const __m128 hi = _mm256_extractf128_ps(v, 1);
        __m128 m = _mm_max_ps(lo, hi);
        m = _mm_max_ps(m, _mm_movehl_ps(m, m));
        m = _mm_max_ss(m, _mm_shuffle_ps(m, m, 1));
        return _mm_cvtss_f32(m);
    }
};

}  // namespace dronet::simd
