// Vec: fixed-width vector abstraction in the style of ATen's Vec256.
//
// Kernels in kernels_impl.hpp are written once against this interface and
// instantiated per CPU capability: VecScalar here (plain C++, any target) and
// VecAvx2 in vec_avx2.hpp (compiled only in the -mavx2 -mfma translation
// unit). Both expose the same 8-lane float surface: loadu/storeu,
// broadcast/zero, elementwise arithmetic, fmadd, max/min, compare+blend, and
// horizontal reductions.
//
// Semantics contract (docs/vectorization.md):
//   * VecScalar::fmadd computes a*b + c with SEPARATE roundings — the
//     reference semantics every scalar kernel in this repo uses, which is
//     what keeps the scalar dispatch level bit-exact against gemm_naive.
//     VecAvx2::fmadd is a true fused multiply-add (one rounding); paths that
//     use it are gated by tolerance tests, not memcmp.
//   * max/min return the SECOND operand when either input is NaN, matching
//     the `a > b ? a : b` scalar idiom and x86 max/min instruction semantics.
#pragma once

#include <cstddef>

namespace dronet::simd {

struct VecScalar {
    static constexpr int kWidth = 8;
    float v[kWidth];

    static VecScalar loadu(const float* p) {
        VecScalar r;
        for (int i = 0; i < kWidth; ++i) r.v[i] = p[i];
        return r;
    }
    void storeu(float* p) const {
        for (int i = 0; i < kWidth; ++i) p[i] = v[i];
    }
    static VecScalar broadcast(float x) {
        VecScalar r;
        for (int i = 0; i < kWidth; ++i) r.v[i] = x;
        return r;
    }
    static VecScalar zero() { return broadcast(0.0f); }

    friend VecScalar operator+(const VecScalar& a, const VecScalar& b) {
        VecScalar r;
        for (int i = 0; i < kWidth; ++i) r.v[i] = a.v[i] + b.v[i];
        return r;
    }
    friend VecScalar operator-(const VecScalar& a, const VecScalar& b) {
        VecScalar r;
        for (int i = 0; i < kWidth; ++i) r.v[i] = a.v[i] - b.v[i];
        return r;
    }
    friend VecScalar operator*(const VecScalar& a, const VecScalar& b) {
        VecScalar r;
        for (int i = 0; i < kWidth; ++i) r.v[i] = a.v[i] * b.v[i];
        return r;
    }

    /// a*b + c, reference (two-rounding) semantics on the scalar level.
    static VecScalar fmadd(const VecScalar& a, const VecScalar& b, const VecScalar& c) {
        VecScalar r;
        for (int i = 0; i < kWidth; ++i) r.v[i] = a.v[i] * b.v[i] + c.v[i];
        return r;
    }

    static VecScalar max(const VecScalar& a, const VecScalar& b) {
        VecScalar r;
        for (int i = 0; i < kWidth; ++i) r.v[i] = a.v[i] > b.v[i] ? a.v[i] : b.v[i];
        return r;
    }
    static VecScalar min(const VecScalar& a, const VecScalar& b) {
        VecScalar r;
        for (int i = 0; i < kWidth; ++i) r.v[i] = a.v[i] < b.v[i] ? a.v[i] : b.v[i];
        return r;
    }

    /// Lane mask: all-ones where a > b (ordered), zero elsewhere.
    static VecScalar cmp_gt(const VecScalar& a, const VecScalar& b) {
        VecScalar r;
        for (int i = 0; i < kWidth; ++i) r.v[i] = a.v[i] > b.v[i] ? 1.0f : 0.0f;
        return r;
    }
    /// Per lane: mask ? a : b (mask as produced by cmp_gt).
    static VecScalar blend(const VecScalar& mask, const VecScalar& a, const VecScalar& b) {
        VecScalar r;
        for (int i = 0; i < kWidth; ++i) r.v[i] = mask.v[i] != 0.0f ? a.v[i] : b.v[i];
        return r;
    }

    [[nodiscard]] float hsum() const {
        float s = 0.0f;
        for (int i = 0; i < kWidth; ++i) s += v[i];
        return s;
    }
    [[nodiscard]] float hmax() const {
        float m = v[0];
        for (int i = 1; i < kWidth; ++i) m = v[i] > m ? v[i] : m;
        return m;
    }
};

}  // namespace dronet::simd
