#include "sync/deadlock.hpp"

#include <atomic>
#include <cstdio>
#include <cstdlib>
#include <mutex>
#include <sstream>
#include <unordered_map>
#include <utility>

#if defined(__has_include)
#if __has_include(<execinfo.h>)
#include <execinfo.h>
#define DRONET_HAVE_EXECINFO 1
#endif
#endif

namespace dronet::sync::deadlock {

namespace {

std::atomic<std::uint64_t> g_cycles{0};

// Handler storage. Guarded by its own mutex (never a sync::Mutex: the
// detector must not recurse into itself).
std::mutex& handler_mu() {
    static std::mutex mu;
    return mu;
}
std::function<void(const CycleReport&)>& handler_slot() {
    static std::function<void(const CycleReport&)> h;
    return h;
}

}  // namespace

void set_handler(std::function<void(const CycleReport&)> handler) {
    std::lock_guard<std::mutex> lock(handler_mu());
    handler_slot() = std::move(handler);
}

std::uint64_t cycles_detected() noexcept {
    return g_cycles.load(std::memory_order_acquire);
}

#if defined(DRONET_DEADLOCK_DETECT) && DRONET_DEADLOCK_DETECT

namespace {

using Key = std::uintptr_t;

Key key_of(const void* mu) noexcept {
    return reinterpret_cast<Key>(mu);
}

std::string describe(Key key, const char* name) {
    if (name != nullptr) return name;
    char buf[32];
    std::snprintf(buf, sizeof(buf), "mutex@%#zx", static_cast<std::size_t>(key));
    return buf;
}

/// Symbolized backtrace of the current call site (best effort; empty when
/// the platform has no execinfo).
std::string capture_stack() {
#if defined(DRONET_HAVE_EXECINFO)
    void* frames[32];
    const int n = ::backtrace(frames, 32);
    char** symbols = ::backtrace_symbols(frames, n);
    if (symbols == nullptr) return {};
    std::ostringstream os;
    // Frame 0 is capture_stack itself, 1 is the detector; start at 2.
    for (int i = 2; i < n; ++i) os << "      " << symbols[i] << "\n";
    std::free(symbols);
    return os.str();
#else
    return {};
#endif
}

struct EdgeInfo {
    const char* before_name = nullptr;
    const char* after_name = nullptr;
    std::string stack;  ///< where `after` was first acquired under `before`
};

/// Global lock-order graph: edge (a -> b) means "a was held while b was
/// acquired". Once recorded, an edge persists until one endpoint's mutex is
/// destroyed — the order contract outlives any single acquisition.
struct Registry {
    std::mutex mu;
    std::unordered_map<Key, std::unordered_map<Key, EdgeInfo>> edges;

    static Registry& instance() {
        // Leaked on purpose: mutexes (and their destruction hooks) may run
        // during static teardown, after a normal static's destructor.
        static Registry* r = new Registry();
        return *r;
    }

    /// Depth-first search for a path `from -> ... -> to`, collecting the
    /// edges along the found path. Requires mu held.
    bool find_path(Key from, Key to, std::vector<std::pair<Key, Key>>& path,
                   std::unordered_map<Key, bool>& visited) {
        if (from == to) return true;
        visited[from] = true;
        auto it = edges.find(from);
        if (it == edges.end()) return false;
        for (const auto& [next, info] : it->second) {
            if (visited.count(next) != 0) continue;
            path.emplace_back(from, next);
            if (find_path(next, to, path, visited)) return true;
            path.pop_back();
        }
        return false;
    }
};

/// Per-thread stack of currently held sync::Mutexes, in acquisition order.
struct HeldLock {
    Key key;
    const char* name;
};
thread_local std::vector<HeldLock> t_held;

void report_cycle(CycleReport report) {
    g_cycles.fetch_add(1, std::memory_order_acq_rel);
    std::function<void(const CycleReport&)> h;
    {
        std::lock_guard<std::mutex> lock(handler_mu());
        h = handler_slot();
    }
    if (h) {
        h(report);
        return;
    }
    std::fputs(report.text.c_str(), stderr);
    std::fflush(stderr);
    std::abort();
}

}  // namespace

void on_acquire(const void* mu, const char* name) {
    const Key acquiring = key_of(mu);

    // Recursive acquisition of a non-recursive mutex: a guaranteed deadlock,
    // reported without consulting the graph.
    for (const HeldLock& held : t_held) {
        if (held.key != acquiring) continue;
        CycleReport report;
        std::ostringstream os;
        os << "dronet deadlock detector: recursive acquisition of "
           << describe(acquiring, name) << " — this thread already holds it\n"
           << capture_stack();
        report.edges.push_back(CycleEdge{describe(acquiring, name),
                                         describe(acquiring, name),
                                         capture_stack()});
        report.text = os.str();
        t_held.push_back(HeldLock{acquiring, name});
        report_cycle(std::move(report));
        return;
    }

    if (!t_held.empty()) {
        Registry& reg = Registry::instance();
        std::lock_guard<std::mutex> lock(reg.mu);
        for (const HeldLock& held : t_held) {
            EdgeInfo& edge = reg.edges[held.key][acquiring];
            const bool is_new = edge.stack.empty();
            if (!is_new) continue;  // order already on record
            edge.before_name = held.name;
            edge.after_name = name;
            edge.stack = capture_stack();

            // Would the new edge close a cycle? I.e. does the graph already
            // order `acquiring` before `held`?
            std::vector<std::pair<Key, Key>> path;
            std::unordered_map<Key, bool> visited;
            if (!reg.find_path(acquiring, held.key, path, visited)) continue;

            CycleReport report;
            std::ostringstream os;
            os << "dronet deadlock detector: lock-order cycle\n"
               << "  new edge: " << describe(held.key, held.name) << " -> "
               << describe(acquiring, name)
               << " (held while acquiring), acquired at:\n"
               << edge.stack;
            report.edges.push_back(CycleEdge{describe(held.key, held.name),
                                             describe(acquiring, name),
                                             edge.stack});
            os << "  conflicting order on record:\n";
            for (const auto& [from, to] : path) {
                const EdgeInfo& info = reg.edges[from][to];
                os << "    " << describe(from, info.before_name) << " -> "
                   << describe(to, info.after_name) << ", acquired at:\n"
                   << info.stack;
                report.edges.push_back(CycleEdge{describe(from, info.before_name),
                                                 describe(to, info.after_name),
                                                 info.stack});
            }
            report.text = os.str();
            t_held.push_back(HeldLock{acquiring, name});
            report_cycle(std::move(report));
            return;
        }
    }
    t_held.push_back(HeldLock{acquiring, name});
}

void on_release(const void* mu) noexcept {
    const Key key = key_of(mu);
    // Out-of-order release is legal (MutexLock::unlock interleavings): erase
    // the most recent matching entry, wherever it sits.
    for (auto it = t_held.rbegin(); it != t_held.rend(); ++it) {
        if (it->key == key) {
            t_held.erase(std::next(it).base());
            return;
        }
    }
}

void on_destroy(const void* mu) noexcept {
    const Key key = key_of(mu);
    Registry& reg = Registry::instance();
    std::lock_guard<std::mutex> lock(reg.mu);
    // The address may be reused by a future Mutex: drop every edge touching
    // this node so stale orders cannot leak across lifetimes.
    reg.edges.erase(key);
    for (auto& [from, adj] : reg.edges) adj.erase(key);
}

#endif  // DRONET_DEADLOCK_DETECT

}  // namespace dronet::sync::deadlock
