// Runtime lock-order deadlock detection (debug builds).
//
// The static thread-safety analysis proves that guarded fields are accessed
// with the right lock held, but it cannot see a global acquisition *order*
// across call chains — the classic ABBA deadlock where thread 1 locks A then
// B while thread 2 locks B then A. This module catches that class at
// runtime: every sync::Mutex acquisition pushes onto a per-thread held-lock
// stack and adds "held -> acquiring" edges to a global lock-order graph. The
// first acquisition that would close a cycle in that graph is reported
// immediately — with the acquisition stacks of both directions — rather than
// waiting for the interleaving that actually deadlocks. One test run that
// merely *touches* both orders is enough; the threads never need to collide.
//
// Gating: compiled in with -DDRONET_DEADLOCK_DETECT=ON (a global cmake
// option, so header-inlined hooks agree across every TU). Compiled out, the
// hooks below are empty inline functions and sync::Mutex is a plain
// std::mutex shim. The cost when enabled — a global registry lock on every
// acquisition — is deliberate and confined to debug/chaos builds; see the
// sync stage in scripts/run_all.sh.
//
// By default a detected cycle prints the report to stderr and aborts (a
// deadlock-in-waiting is not a recoverable condition in the field — the
// UAV deployment would rather respawn than wedge). Tests install a handler
// via set_handler() to assert on reports instead.
#pragma once

#include <cstdint>
#include <functional>
#include <string>
#include <vector>

namespace dronet::sync::deadlock {

/// True when the build compiled the detector in (DRONET_DEADLOCK_DETECT).
/// Tests use this to skip detector assertions in plain builds.
[[nodiscard]] constexpr bool compiled_in() noexcept {
#if defined(DRONET_DEADLOCK_DETECT) && DRONET_DEADLOCK_DETECT
    return true;
#else
    return false;
#endif
}

/// One edge of a detected cycle: `before` was held while `after` was being
/// acquired. `stack` is the symbolized acquisition backtrace recorded when
/// the edge first entered the lock-order graph.
struct CycleEdge {
    std::string before;  ///< mutex name (or "mutex@0x..." when unnamed)
    std::string after;
    std::string stack;
};

/// A lock-order inversion: following `edges` leads from one mutex back to
/// itself. `text` is the full human-readable report (what the default
/// handler prints before aborting).
struct CycleReport {
    std::vector<CycleEdge> edges;
    std::string text;
};

/// Installs `handler` to receive cycle reports instead of the default
/// print-and-abort. Pass nullptr to restore the default. Test hook.
void set_handler(std::function<void(const CycleReport&)> handler);

/// Total cycles reported since process start (0 when compiled out).
[[nodiscard]] std::uint64_t cycles_detected() noexcept;

#if defined(DRONET_DEADLOCK_DETECT) && DRONET_DEADLOCK_DETECT

/// Hooks called by sync::Mutex. `mu` is used purely as an identity key.
void on_acquire(const void* mu, const char* name);
void on_release(const void* mu) noexcept;
void on_destroy(const void* mu) noexcept;

#else

inline void on_acquire(const void*, const char*) {}
inline void on_release(const void*) noexcept {}
inline void on_destroy(const void*) noexcept {}

#endif

}  // namespace dronet::sync::deadlock
