// Annotated mutex / lock / condition-variable wrappers.
//
// Every locking site in the tree goes through these types instead of raw
// std::mutex, for two reasons:
//
//  1. They carry the Clang thread-safety attributes (thread_annotations.hpp),
//     so `clang++ -Wthread-safety` can prove each GUARDED_BY field is only
//     touched with its mutex held and each REQUIRES contract is met.
//  2. They feed the runtime lock-order deadlock detector (deadlock.hpp) when
//     the build enables DRONET_DEADLOCK_DETECT: every acquisition is checked
//     against the global lock-order graph and an ABBA inversion aborts with
//     both acquisition stacks instead of deadlocking in the field.
//
// With the detector compiled out (the default) Mutex is a zero-overhead
// shim over std::mutex — lock() inlines to mu_.lock().
//
// Usage mirrors the std types it replaces:
//
//   sync::Mutex mu_;
//   int value_ GUARDED_BY(mu_);
//   sync::CondVar cv_;
//
//   sync::MutexLock lock(mu_);          // std::unique_lock shape
//   while (!ready_) cv_.wait(mu_);      // predicate as an explicit loop:
//                                       // the analysis can't see into lambdas
#pragma once

#include <chrono>
#include <condition_variable>
#include <mutex>

#include "sync/deadlock.hpp"
#include "sync/thread_annotations.hpp"

namespace dronet::sync {

/// std::mutex with a Clang capability attribute and optional runtime
/// lock-order checking. The optional `name` appears in deadlock-detector
/// reports; pass a string literal (the pointer is stored, not copied).
class CAPABILITY("mutex") Mutex {
  public:
    Mutex() = default;
    explicit Mutex(const char* name) : name_(name) {}
    ~Mutex() { deadlock::on_destroy(this); }

    Mutex(const Mutex&) = delete;
    Mutex& operator=(const Mutex&) = delete;

    void lock() ACQUIRE() {
        deadlock::on_acquire(this, name_);
        mu_.lock();
    }
    void unlock() RELEASE() {
        deadlock::on_release(this);
        mu_.unlock();
    }
    [[nodiscard]] bool try_lock() TRY_ACQUIRE(true) {
        if (!mu_.try_lock()) return false;
        // A successful try_lock cannot deadlock, but it still establishes
        // ordering edges for later blocking acquisitions.
        deadlock::on_acquire(this, name_);
        return true;
    }

    [[nodiscard]] const char* name() const noexcept { return name_; }

  private:
    std::mutex mu_;
    const char* name_ = nullptr;
};

/// RAII lock with the std::unique_lock surface the codebase uses: scoped
/// acquire/release plus explicit unlock()/lock() for drain-style loops that
/// drop the lock to run work. Not movable — a lock's scope is its critical
/// section.
class SCOPED_CAPABILITY MutexLock {
  public:
    explicit MutexLock(Mutex& mu) ACQUIRE(mu) : mu_(mu), held_(true) {
        mu_.lock();
    }
    ~MutexLock() RELEASE() {
        if (held_) mu_.unlock();
    }

    MutexLock(const MutexLock&) = delete;
    MutexLock& operator=(const MutexLock&) = delete;

    /// Early release (re-acquirable); the destructor then does nothing.
    void unlock() RELEASE() {
        mu_.unlock();
        held_ = false;
    }
    /// Re-acquire after unlock().
    void lock() ACQUIRE() {
        mu_.lock();
        held_ = true;
    }

  private:
    Mutex& mu_;
    bool held_;
};

/// Condition variable paired with sync::Mutex, abseil CondVar shape: waits
/// name the Mutex itself (not the lock object), so REQUIRES contracts stay
/// expressible. Waiters must hold `mu` via a MutexLock in the same scope;
/// wait() atomically releases and re-acquires it.
///
/// Predicates are deliberately NOT taken as callables: the thread-safety
/// analysis does not propagate the held-lock context into lambda bodies, so
/// a guarded field read inside a predicate lambda would defeat the proof.
/// Write the loop out instead: `while (!pred) cv.wait(mu);`.
class CondVar {
  public:
    CondVar() = default;
    CondVar(const CondVar&) = delete;
    CondVar& operator=(const CondVar&) = delete;

    /// Blocks until notified; `mu` is released while blocked and re-held on
    /// return. Spurious wakeups happen — always wait in a predicate loop.
    void wait(Mutex& mu) REQUIRES(mu) { cv_.wait(mu); }

    /// Timed wait; returns std::cv_status::timeout when `rel_time` elapsed.
    template <typename Rep, typename Period>
    std::cv_status wait_for(Mutex& mu,
                            const std::chrono::duration<Rep, Period>& rel_time)
        REQUIRES(mu) {
        return cv_.wait_for(mu, rel_time);
    }

    /// Deadline wait; returns std::cv_status::timeout once `deadline` passed.
    template <typename Clock, typename Duration>
    std::cv_status wait_until(
        Mutex& mu, const std::chrono::time_point<Clock, Duration>& deadline)
        REQUIRES(mu) {
        return cv_.wait_until(mu, deadline);
    }

    void notify_one() noexcept { cv_.notify_one(); }
    void notify_all() noexcept { cv_.notify_all(); }

  private:
    // condition_variable_any waits on anything BasicLockable — including our
    // Mutex directly, which keeps the deadlock detector's held-lock stack
    // consistent across the wait (the unlock/relock goes through
    // Mutex::unlock/lock).
    std::condition_variable_any cv_;
};

}  // namespace dronet::sync
