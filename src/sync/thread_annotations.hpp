// Clang thread-safety annotation macros (ATen / abseil style).
//
// These macros attach compile-time lock discipline to types, fields and
// functions: a field declares the mutex that guards it (GUARDED_BY), a
// function declares the locks it needs (REQUIRES) or manipulates
// (ACQUIRE / RELEASE), and `clang++ -Wthread-safety` then *proves* every
// access is made with the right locks held — the concurrency analogue of
// what tools/cfglint does for model definitions. Under DRONET_WERROR the
// analysis is promoted to an error, so an unguarded access fails the build
// (tests/compile_fail/ asserts exactly that).
//
// The annotations are attributes only Clang understands; under GCC (or any
// compiler without the attribute) every macro expands to nothing, so the
// annotated code stays portable. The runtime companion is the lock-order
// deadlock detector in sync/deadlock.hpp, which catches what a static
// analysis cannot (ordering across call chains the analysis does not see).
//
// Apply them through the wrapper types in sync/mutex.hpp — dronet::sync::
// Mutex / MutexLock / CondVar — not to raw std::mutex, which carries no
// capability attribute.
#pragma once

#if defined(__clang__) && defined(__has_attribute)
#define DRONET_THREAD_ANNOTATION(x) __attribute__((x))
#else
#define DRONET_THREAD_ANNOTATION(x)  // no-op outside Clang
#endif

/// Marks a class as a lockable capability ("mutex" names the kind in
/// diagnostics). Applies to the type declaration.
#define CAPABILITY(x) DRONET_THREAD_ANNOTATION(capability(x))

/// Marks an RAII class whose constructor acquires and destructor releases a
/// capability (std::lock_guard shape).
#define SCOPED_CAPABILITY DRONET_THREAD_ANNOTATION(scoped_lockable)

/// Field annotation: reads/writes require holding `x`.
#define GUARDED_BY(x) DRONET_THREAD_ANNOTATION(guarded_by(x))

/// Pointer field annotation: the *pointed-to* data requires holding `x`.
#define PT_GUARDED_BY(x) DRONET_THREAD_ANNOTATION(pt_guarded_by(x))

/// Declares a required lock order between two mutexes: this one must be
/// acquired before / after the named ones. The static analysis enforces it
/// where visible; sync/deadlock.hpp enforces the global order at runtime.
#define ACQUIRED_BEFORE(...) DRONET_THREAD_ANNOTATION(acquired_before(__VA_ARGS__))
#define ACQUIRED_AFTER(...) DRONET_THREAD_ANNOTATION(acquired_after(__VA_ARGS__))

/// Function annotation: callers must hold the listed capabilities (and they
/// are not released).
#define REQUIRES(...) DRONET_THREAD_ANNOTATION(requires_capability(__VA_ARGS__))
#define REQUIRES_SHARED(...) \
    DRONET_THREAD_ANNOTATION(requires_shared_capability(__VA_ARGS__))

/// Function annotation: acquires the listed capabilities (callers must NOT
/// already hold them); they are held on return.
#define ACQUIRE(...) DRONET_THREAD_ANNOTATION(acquire_capability(__VA_ARGS__))
#define ACQUIRE_SHARED(...) \
    DRONET_THREAD_ANNOTATION(acquire_shared_capability(__VA_ARGS__))

/// Function annotation: releases the listed capabilities (callers must hold
/// them on entry).
#define RELEASE(...) DRONET_THREAD_ANNOTATION(release_capability(__VA_ARGS__))
#define RELEASE_SHARED(...) \
    DRONET_THREAD_ANNOTATION(release_shared_capability(__VA_ARGS__))

/// Function annotation: acquires the capability only when returning `b`
/// (try_lock shape).
#define TRY_ACQUIRE(...) DRONET_THREAD_ANNOTATION(try_acquire_capability(__VA_ARGS__))

/// Function annotation: callers must NOT hold the listed capabilities
/// (deadlock guard for functions that acquire them internally).
#define EXCLUDES(...) DRONET_THREAD_ANNOTATION(locks_excluded(__VA_ARGS__))

/// Function annotation: asserts at runtime that the capability is held,
/// telling the analysis to assume it from here on.
#define ASSERT_CAPABILITY(x) DRONET_THREAD_ANNOTATION(assert_capability(x))

/// Function annotation: returns a reference to the named capability (lets
/// accessors like `Mutex& mu()` participate in the analysis).
#define RETURN_CAPABILITY(x) DRONET_THREAD_ANNOTATION(lock_returned(x))

/// Escape hatch: the function's locking is intentionally invisible to the
/// analysis (e.g. the lock/unlock plumbing inside MutexLock and CondVar, or
/// init/teardown code that is single-threaded by construction). Always pair
/// with a comment saying why it is sound.
#define NO_THREAD_SAFETY_ANALYSIS DRONET_THREAD_ANNOTATION(no_thread_safety_analysis)
