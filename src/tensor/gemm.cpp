#include "tensor/gemm.hpp"

#include <algorithm>
#include <atomic>
#include <stdexcept>
#include <thread>
#include <vector>

namespace dronet {
namespace {

std::atomic<int> g_gemm_threads{1};

inline float a_elem(const GemmArgs& g, int i, int p) {
    return g.trans_a ? g.a[static_cast<std::int64_t>(p) * g.lda + i]
                     : g.a[static_cast<std::int64_t>(i) * g.lda + p];
}

inline float b_elem(const GemmArgs& g, int p, int j) {
    return g.trans_b ? g.b[static_cast<std::int64_t>(j) * g.ldb + p]
                     : g.b[static_cast<std::int64_t>(p) * g.ldb + j];
}

void validate(const GemmArgs& g) {
    if (g.m < 0 || g.n < 0 || g.k < 0) {
        throw std::invalid_argument("gemm: negative dimension");
    }
    if ((g.m > 0 && g.k > 0 && g.a == nullptr) ||
        (g.k > 0 && g.n > 0 && g.b == nullptr) ||
        (g.m > 0 && g.n > 0 && g.c == nullptr)) {
        throw std::invalid_argument("gemm: null matrix pointer");
    }
}

void scale_c(const GemmArgs& g, int row_begin, int row_end) {
    if (g.beta == 1.0f) return;
    for (int i = row_begin; i < row_end; ++i) {
        float* row = g.c + static_cast<std::int64_t>(i) * g.ldc;
        if (g.beta == 0.0f) {
            std::fill(row, row + g.n, 0.0f);
        } else {
            for (int j = 0; j < g.n; ++j) row[j] *= g.beta;
        }
    }
}

// Blocked kernel over a row range [row_begin, row_end) of C. The inner ikj
// order streams B rows and accumulates into C rows, which vectorizes well
// with -O2 and keeps the working set inside L1/L2 for the layer sizes the
// DroNet models produce.
void blocked_rows(const GemmArgs& g, int row_begin, int row_end) {
    constexpr int kBlockK = 128;
    constexpr int kBlockJ = 256;
    scale_c(g, row_begin, row_end);
    for (int p0 = 0; p0 < g.k; p0 += kBlockK) {
        const int p1 = std::min(g.k, p0 + kBlockK);
        for (int j0 = 0; j0 < g.n; j0 += kBlockJ) {
            const int j1 = std::min(g.n, j0 + kBlockJ);
            for (int i = row_begin; i < row_end; ++i) {
                float* crow = g.c + static_cast<std::int64_t>(i) * g.ldc;
                for (int p = p0; p < p1; ++p) {
                    const float a_ip = g.alpha * a_elem(g, i, p);
                    if (a_ip == 0.0f) continue;
                    if (!g.trans_b) {
                        const float* brow = g.b + static_cast<std::int64_t>(p) * g.ldb;
                        for (int j = j0; j < j1; ++j) crow[j] += a_ip * brow[j];
                    } else {
                        for (int j = j0; j < j1; ++j) {
                            crow[j] += a_ip * g.b[static_cast<std::int64_t>(j) * g.ldb + p];
                        }
                    }
                }
            }
        }
    }
}

}  // namespace

void gemm_naive(const GemmArgs& g) {
    validate(g);
    for (int i = 0; i < g.m; ++i) {
        for (int j = 0; j < g.n; ++j) {
            float acc = 0.0f;
            for (int p = 0; p < g.k; ++p) acc += a_elem(g, i, p) * b_elem(g, p, j);
            float& c = g.c[static_cast<std::int64_t>(i) * g.ldc + j];
            c = g.alpha * acc + g.beta * c;
        }
    }
}

void gemm_blocked(const GemmArgs& g) {
    validate(g);
    blocked_rows(g, 0, g.m);
}

void gemm_threaded(const GemmArgs& g, int threads) {
    validate(g);
    threads = std::min(threads, g.m);
    if (threads <= 1) {
        blocked_rows(g, 0, g.m);
        return;
    }
    std::vector<std::thread> workers;
    workers.reserve(static_cast<std::size_t>(threads));
    const int rows_per = (g.m + threads - 1) / threads;
    for (int t = 0; t < threads; ++t) {
        const int lo = t * rows_per;
        const int hi = std::min(g.m, lo + rows_per);
        if (lo >= hi) break;
        workers.emplace_back([&g, lo, hi] { blocked_rows(g, lo, hi); });
    }
    for (auto& w : workers) w.join();
}

void gemm(bool trans_a, bool trans_b, int m, int n, int k, float alpha,
          const float* a, int lda, const float* b, int ldb, float beta, float* c,
          int ldc) {
    const GemmArgs g{trans_a, trans_b, m, n, k, alpha, a, lda, b, ldb, beta, c, ldc};
    const int threads = g_gemm_threads.load(std::memory_order_relaxed);
    if (threads > 1) {
        gemm_threaded(g, threads);
    } else {
        gemm_blocked(g);
    }
}

void set_gemm_threads(int threads) {
    g_gemm_threads.store(std::max(1, threads), std::memory_order_relaxed);
}

int gemm_threads() { return g_gemm_threads.load(std::memory_order_relaxed); }

std::int64_t gemm_flops(int m, int n, int k) noexcept {
    return 2LL * m * n * k;
}

}  // namespace dronet
