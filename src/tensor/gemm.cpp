#include "tensor/gemm.hpp"

#include <algorithm>
#include <atomic>
#include <stdexcept>
#include <thread>
#include <vector>

#include "simd/kernels.hpp"
#include "tensor/thread_pool.hpp"

namespace dronet {
namespace {

std::atomic<int> g_gemm_threads{1};

// Micro-kernel tile: kMr rows of C by kNr columns, accumulators held in
// registers. 4x16 keeps the accumulator block within the SSE register budget
// after unrolling while amortizing each B-row load over four C rows.
constexpr int kMr = 4;
constexpr int kNr = 16;

// Problems below this many multiply-accumulates run serially: a trip through
// the pool queue costs a few microseconds, which such calls finish in anyway.
constexpr std::int64_t kMinParallelMacs = 16 * 1024;

inline float a_elem(const GemmArgs& g, int i, int p) {
    return g.trans_a ? g.a[static_cast<std::int64_t>(p) * g.lda + i]
                     : g.a[static_cast<std::int64_t>(i) * g.lda + p];
}

inline float b_elem(const GemmArgs& g, int p, int j) {
    return g.trans_b ? g.b[static_cast<std::int64_t>(j) * g.ldb + p]
                     : g.b[static_cast<std::int64_t>(p) * g.ldb + j];
}

void validate(const GemmArgs& g) {
    if (g.m < 0 || g.n < 0 || g.k < 0) {
        throw std::invalid_argument("gemm: negative dimension");
    }
    if ((g.m > 0 && g.k > 0 && g.a == nullptr) ||
        (g.k > 0 && g.n > 0 && g.b == nullptr) ||
        (g.m > 0 && g.n > 0 && g.c == nullptr)) {
        throw std::invalid_argument("gemm: null matrix pointer");
    }
}

// ---- packing ---------------------------------------------------------------
// Panels are packed into thread-local scratch so worker threads never share
// buffers. Layout is k-major with a fixed tile stride (kMr / kNr); pad lanes
// of edge tiles are zero-filled so the fast kernels may read them.

float* a_scratch(std::size_t floats) {
    thread_local std::vector<float> buf;
    if (buf.size() < floats) buf.resize(floats);
    return buf.data();
}

float* b_scratch(std::size_t floats) {
    thread_local std::vector<float> buf;
    if (buf.size() < floats) buf.resize(floats);
    return buf.data();
}

/// dst[kk*kMr + ii] = op(A)(i0+ii, kk) for ii < mr, 0 for pad lanes.
void pack_a(const GemmArgs& g, int i0, int mr, float* dst) {
    if (!g.trans_a) {
        for (int kk = 0; kk < g.k; ++kk) {
            float* out = dst + static_cast<std::int64_t>(kk) * kMr;
            for (int ii = 0; ii < mr; ++ii) {
                out[ii] = g.a[static_cast<std::int64_t>(i0 + ii) * g.lda + kk];
            }
            for (int ii = mr; ii < kMr; ++ii) out[ii] = 0.0f;
        }
    } else {
        for (int kk = 0; kk < g.k; ++kk) {
            const float* src = g.a + static_cast<std::int64_t>(kk) * g.lda + i0;
            float* out = dst + static_cast<std::int64_t>(kk) * kMr;
            for (int ii = 0; ii < mr; ++ii) out[ii] = src[ii];
            for (int ii = mr; ii < kMr; ++ii) out[ii] = 0.0f;
        }
    }
}

/// dst[kk*kNr + jj] = op(B)(kk, j0+jj) for jj < nr (trans_b layout only).
void pack_b(const GemmArgs& g, int j0, int nr, float* dst) {
    for (int kk = 0; kk < g.k; ++kk) {
        float* out = dst + static_cast<std::int64_t>(kk) * kNr;
        for (int jj = 0; jj < nr; ++jj) {
            out[jj] = g.b[static_cast<std::int64_t>(j0 + jj) * g.ldb + kk];
        }
        for (int jj = nr; jj < kNr; ++jj) out[jj] = 0.0f;
    }
}

// ---- micro-kernels ---------------------------------------------------------
// Every kernel accumulates each C element over the full k range in ascending
// order into a fresh float accumulator and finishes with
//   c = alpha * acc + beta * c
// which is the exact operation sequence of gemm_naive — hence bit-exact
// results, independent of tiling and thread count.

void write_tile(const GemmArgs& g, const float acc[kMr][kNr], int i0, int j0,
                int mr, int nr) {
    for (int ii = 0; ii < mr; ++ii) {
        float* crow = g.c + static_cast<std::int64_t>(i0 + ii) * g.ldc + j0;
        for (int jj = 0; jj < nr; ++jj) {
            crow[jj] = g.alpha * acc[ii][jj] + g.beta * crow[jj];
        }
    }
}

/// Full 4x16 tile, B read in place (row-major, !trans_b).
void micro_full_direct(const GemmArgs& g, const float* ap, int i0, int j0) {
    float acc[kMr][kNr] = {};
    const float* b = g.b + j0;
    for (int kk = 0; kk < g.k; ++kk) {
        const float* brow = b + static_cast<std::int64_t>(kk) * g.ldb;
        const float a0 = ap[0];
        const float a1 = ap[1];
        const float a2 = ap[2];
        const float a3 = ap[3];
        ap += kMr;
        for (int jj = 0; jj < kNr; ++jj) {
            const float bv = brow[jj];
            acc[0][jj] += a0 * bv;
            acc[1][jj] += a1 * bv;
            acc[2][jj] += a2 * bv;
            acc[3][jj] += a3 * bv;
        }
    }
    write_tile(g, acc, i0, j0, kMr, kNr);
}

/// Full 4x16 tile against a packed B panel (trans_b path).
void micro_full_packed(const GemmArgs& g, const float* ap, const float* bp,
                       int i0, int j0) {
    float acc[kMr][kNr] = {};
    for (int kk = 0; kk < g.k; ++kk) {
        const float* brow = bp + static_cast<std::int64_t>(kk) * kNr;
        const float a0 = ap[0];
        const float a1 = ap[1];
        const float a2 = ap[2];
        const float a3 = ap[3];
        ap += kMr;
        for (int jj = 0; jj < kNr; ++jj) {
            const float bv = brow[jj];
            acc[0][jj] += a0 * bv;
            acc[1][jj] += a1 * bv;
            acc[2][jj] += a2 * bv;
            acc[3][jj] += a3 * bv;
        }
    }
    write_tile(g, acc, i0, j0, kMr, kNr);
}

/// Edge tile (mr < kMr and/or nr < kNr). bp may be null (read B in place).
void micro_edge(const GemmArgs& g, const float* ap, const float* bp, int i0,
                int j0, int mr, int nr) {
    float acc[kMr][kNr] = {};
    for (int kk = 0; kk < g.k; ++kk) {
        const float* brow = bp != nullptr
                                ? bp + static_cast<std::int64_t>(kk) * kNr
                                : g.b + static_cast<std::int64_t>(kk) * g.ldb + j0;
        const float* av = ap + static_cast<std::int64_t>(kk) * kMr;
        for (int ii = 0; ii < mr; ++ii) {
            const float a = av[ii];
            for (int jj = 0; jj < nr; ++jj) acc[ii][jj] += a * brow[jj];
        }
    }
    write_tile(g, acc, i0, j0, mr, nr);
}

/// Packed kernel over a row range [row_begin, row_end) of C.
void packed_rows(const GemmArgs& g, int row_begin, int row_end) {
    if (row_begin >= row_end || g.n <= 0) return;
    if (g.k <= 0) {
        // Degenerate k: C = alpha*0 + beta*C, same expression as gemm_naive.
        for (int i = row_begin; i < row_end; ++i) {
            float* crow = g.c + static_cast<std::int64_t>(i) * g.ldc;
            for (int j = 0; j < g.n; ++j) crow[j] = g.alpha * 0.0f + g.beta * crow[j];
        }
        return;
    }
    // Fetched once per row range: null on the scalar level (the reference
    // loops below stay the kernel), the FMA tile on AVX2. Edge tiles always
    // take the scalar path — only full 4x16 tiles dispatch.
    const auto micro_simd = simd::kernels().gemm_micro_4x16;
    float* ap = a_scratch(static_cast<std::size_t>(kMr) * std::max(1, g.k));
    if (!g.trans_b) {
        for (int i0 = row_begin; i0 < row_end; i0 += kMr) {
            const int mr = std::min(kMr, row_end - i0);
            pack_a(g, i0, mr, ap);
            int j0 = 0;
            if (mr == kMr) {
                for (; j0 + kNr <= g.n; j0 += kNr) {
                    if (micro_simd != nullptr) {
                        micro_simd(ap, g.b + j0, g.ldb, g.k, g.alpha, g.beta,
                                   g.c + static_cast<std::int64_t>(i0) * g.ldc + j0,
                                   g.ldc);
                    } else {
                        micro_full_direct(g, ap, i0, j0);
                    }
                }
            }
            for (; j0 < g.n; j0 += kNr) {
                micro_edge(g, ap, nullptr, i0, j0, mr, std::min(kNr, g.n - j0));
            }
        }
    } else {
        // op(B) columns are strided in memory; pack one k x kNr panel at a
        // time and sweep the row range against it. A is repacked per panel —
        // ~1/kNr of the multiply work, which the contiguous inner loop repays.
        float* bp = b_scratch(static_cast<std::size_t>(kNr) * std::max(1, g.k));
        for (int j0 = 0; j0 < g.n; j0 += kNr) {
            const int nr = std::min(kNr, g.n - j0);
            pack_b(g, j0, nr, bp);
            for (int i0 = row_begin; i0 < row_end; i0 += kMr) {
                const int mr = std::min(kMr, row_end - i0);
                pack_a(g, i0, mr, ap);
                if (mr == kMr && nr == kNr) {
                    if (micro_simd != nullptr) {
                        micro_simd(ap, bp, kNr, g.k, g.alpha, g.beta,
                                   g.c + static_cast<std::int64_t>(i0) * g.ldc + j0,
                                   g.ldc);
                    } else {
                        micro_full_packed(g, ap, bp, i0, j0);
                    }
                } else {
                    micro_edge(g, ap, bp, i0, j0, mr, nr);
                }
            }
        }
    }
}

// ---- legacy kernel (pre-pool baseline, kept for the ablation bench) --------

void legacy_scale_c(const GemmArgs& g, int row_begin, int row_end) {
    if (g.beta == 1.0f) return;
    for (int i = row_begin; i < row_end; ++i) {
        float* row = g.c + static_cast<std::int64_t>(i) * g.ldc;
        if (g.beta == 0.0f) {
            std::fill(row, row + g.n, 0.0f);
        } else {
            for (int j = 0; j < g.n; ++j) row[j] *= g.beta;
        }
    }
}

void legacy_blocked_rows(const GemmArgs& g, int row_begin, int row_end) {
    constexpr int kBlockK = 128;
    constexpr int kBlockJ = 256;
    legacy_scale_c(g, row_begin, row_end);
    for (int p0 = 0; p0 < g.k; p0 += kBlockK) {
        const int p1 = std::min(g.k, p0 + kBlockK);
        for (int j0 = 0; j0 < g.n; j0 += kBlockJ) {
            const int j1 = std::min(g.n, j0 + kBlockJ);
            for (int i = row_begin; i < row_end; ++i) {
                float* crow = g.c + static_cast<std::int64_t>(i) * g.ldc;
                for (int p = p0; p < p1; ++p) {
                    const float a_ip = g.alpha * a_elem(g, i, p);
                    if (a_ip == 0.0f) continue;
                    if (!g.trans_b) {
                        const float* brow = g.b + static_cast<std::int64_t>(p) * g.ldb;
                        for (int j = j0; j < j1; ++j) crow[j] += a_ip * brow[j];
                    } else {
                        for (int j = j0; j < j1; ++j) {
                            crow[j] += a_ip * g.b[static_cast<std::int64_t>(j) * g.ldb + p];
                        }
                    }
                }
            }
        }
    }
}

}  // namespace

void gemm_naive(const GemmArgs& g) {
    validate(g);
    for (int i = 0; i < g.m; ++i) {
        for (int j = 0; j < g.n; ++j) {
            float acc = 0.0f;
            for (int p = 0; p < g.k; ++p) acc += a_elem(g, i, p) * b_elem(g, p, j);
            float& c = g.c[static_cast<std::int64_t>(i) * g.ldc + j];
            c = g.alpha * acc + g.beta * c;
        }
    }
}

void gemm_blocked(const GemmArgs& g) {
    validate(g);
    packed_rows(g, 0, g.m);
}

void gemm_threaded(const GemmArgs& g, int threads) {
    validate(g);
    if (g.m <= 0) return;
    threads = std::max(1, threads);
    const std::int64_t macs = static_cast<std::int64_t>(g.m) * g.n * g.k;
    if (threads == 1 || macs < kMinParallelMacs) {
        packed_rows(g, 0, g.m);
        return;
    }
    ThreadPool::instance().parallel_for(
        0, g.m, threads, kMr,
        [&g](int lo, int hi) { packed_rows(g, lo, hi); });
}

void gemm_threaded_spawn(const GemmArgs& g, int threads) {
    validate(g);
    threads = std::min(threads, g.m);
    if (threads <= 1) {
        legacy_blocked_rows(g, 0, g.m);
        return;
    }
    std::vector<std::thread> workers;
    workers.reserve(static_cast<std::size_t>(threads));
    const int rows_per = (g.m + threads - 1) / threads;
    for (int t = 0; t < threads; ++t) {
        const int lo = t * rows_per;
        const int hi = std::min(g.m, lo + rows_per);
        if (lo >= hi) break;
        workers.emplace_back([&g, lo, hi] { legacy_blocked_rows(g, lo, hi); });
    }
    for (auto& w : workers) w.join();
}

void gemm_halfw(int m, int n, int k, const std::uint16_t* a, int lda,
                const float* b, int ldb, float* c, int ldc) {
    if (m < 0 || n < 0 || k < 0) {
        throw std::invalid_argument("gemm_halfw: negative dimension");
    }
    if ((m > 0 && k > 0 && a == nullptr) || (k > 0 && n > 0 && b == nullptr) ||
        (m > 0 && n > 0 && c == nullptr)) {
        throw std::invalid_argument("gemm_halfw: null matrix pointer");
    }
    if (m <= 0) return;
    const auto worker = [&](int lo, int hi) {
        // Widen this worker's A rows once into thread-local scratch, then run
        // the ordinary packed kernel on them. Accumulation order is therefore
        // identical to gemm() on a pre-rounded A — the fp16 path adds exactly
        // one rounding step (the storage format), nothing else.
        thread_local std::vector<float> a32;
        const std::size_t rows = static_cast<std::size_t>(hi - lo);
        const std::size_t need = rows * static_cast<std::size_t>(k);
        if (a32.size() < need) a32.resize(need);
        for (int i = lo; i < hi; ++i) {
            simd::kernels().halfs_to_floats(
                a + static_cast<std::int64_t>(i) * lda,
                a32.data() + static_cast<std::size_t>(i - lo) * k,
                static_cast<std::size_t>(k));
        }
        GemmArgs sub;
        sub.m = hi - lo;
        sub.n = n;
        sub.k = k;
        sub.alpha = 1.0f;
        sub.a = a32.data();
        sub.lda = k;
        sub.b = b;
        sub.ldb = ldb;
        sub.beta = 0.0f;
        sub.c = c + static_cast<std::int64_t>(lo) * ldc;
        sub.ldc = ldc;
        packed_rows(sub, 0, sub.m);
    };
    const int threads = g_gemm_threads.load(std::memory_order_relaxed);
    const std::int64_t macs = static_cast<std::int64_t>(m) * n * k;
    if (threads <= 1 || macs < kMinParallelMacs) {
        worker(0, m);
        return;
    }
    ThreadPool::instance().parallel_for(0, m, threads, kMr, worker);
}

void gemm(bool trans_a, bool trans_b, int m, int n, int k, float alpha,
          const float* a, int lda, const float* b, int ldb, float beta, float* c,
          int ldc) {
    const GemmArgs g{trans_a, trans_b, m, n, k, alpha, a, lda, b, ldb, beta, c, ldc};
    gemm_threaded(g, g_gemm_threads.load(std::memory_order_relaxed));
}

void set_gemm_threads(int threads) {
    g_gemm_threads.store(std::max(1, threads), std::memory_order_relaxed);
}

int gemm_threads() { return g_gemm_threads.load(std::memory_order_relaxed); }

std::int64_t gemm_flops(int m, int n, int k) noexcept {
    return 2LL * m * n * k;
}

}  // namespace dronet
