// Single-precision GEMM kernels.
//
// The convolution layers lower to matrix multiplication via im2col, exactly
// as the darknet framework the paper deployed on its CPU targets. Kernels:
//
//   * gemm_naive          - reference triple loop, used by tests as ground
//                           truth and by the ablation bench (DESIGN.md #2).
//   * gemm_blocked        - packed micro-kernel; the production kernel. Packs
//                           A panels (and B panels when trans_b) into
//                           thread-local scratch and runs a 4x16
//                           register-tiled inner loop. Bit-exact with
//                           gemm_naive: each C element accumulates over k in
//                           the same order, so the results are identical
//                           floats, not merely close.
//   * gemm_threaded       - gemm_blocked sharded over row ranges on the
//                           persistent ThreadPool (tensor/thread_pool.hpp).
//                           No threads are created per call.
//   * gemm_threaded_spawn - the pre-pool implementation (spawn + join fresh
//                           std::threads every call, unpacked blocked
//                           kernel). Kept as the baseline for
//                           bench_ablation_gemm and regression tests; do not
//                           use in new code.
//
// All kernels compute, for row-major matrices:
//   C = alpha * op(A) * op(B) + beta * C
// where op transposes when the corresponding flag is set.
// A is M x K, B is K x N, C is M x N (after op).
#pragma once

#include <cstdint>

namespace dronet {

struct GemmArgs {
    bool trans_a = false;
    bool trans_b = false;
    int m = 0;
    int n = 0;
    int k = 0;
    float alpha = 1.0f;
    const float* a = nullptr;
    int lda = 0;
    const float* b = nullptr;
    int ldb = 0;
    float beta = 1.0f;
    float* c = nullptr;
    int ldc = 0;
};

/// Reference implementation; O(mnk) with no blocking. Ground truth in tests.
void gemm_naive(const GemmArgs& args);

/// Packed micro-kernel (the default used by the conv layers). Bit-exact with
/// gemm_naive for identical inputs.
void gemm_blocked(const GemmArgs& args);

/// gemm_blocked parallelized over row ranges of C with up to `threads` ways
/// on the shared persistent ThreadPool. threads <= 1 runs the serial packed
/// kernel. Results are bit-exact with gemm_naive regardless of thread count
/// (each C row is computed by exactly one thread, in the same order).
void gemm_threaded(const GemmArgs& args, int threads);

/// Legacy reference: spawns and joins `threads` fresh std::threads per call
/// over the unpacked blocked kernel. Only for benchmarking the pool against.
void gemm_threaded_spawn(const GemmArgs& args, int threads);

/// Convenience wrapper matching darknet's historic signature. Dispatches to
/// the packed kernel (pool-threaded when set_gemm_threads() > 1).
void gemm(bool trans_a, bool trans_b, int m, int n, int k, float alpha,
          const float* a, int lda, const float* b, int ldb, float beta, float* c,
          int ldc);

/// GEMM with IEEE binary16 (half) A-matrix storage: C = A16 * B, alpha=1,
/// beta=0, no transposes. Each worker widens its A rows to float once
/// (simd::kernels().halfs_to_floats) and runs the packed kernel, so the
/// result is bit-exact with gemm() called on the widened A. Used by the
/// --fp16 inference mode for conv weights (docs/vectorization.md). Threaded
/// via set_gemm_threads() like gemm().
void gemm_halfw(int m, int n, int k, const std::uint16_t* a, int lda,
                const float* b, int ldb, float* c, int ldc);

/// Global thread count used by gemm(); defaults to 1. Values > 1 shard work
/// on the persistent pool; see docs/performance.md for how this interacts
/// with DetectionService workers.
void set_gemm_threads(int threads);
int gemm_threads();

/// FLOP count of a gemm call (2*m*n*k), for the platform cost model.
[[nodiscard]] std::int64_t gemm_flops(int m, int n, int k) noexcept;

}  // namespace dronet
