// Single-precision GEMM kernels.
//
// The convolution layers lower to matrix multiplication via im2col, exactly
// as the darknet framework the paper deployed on its CPU targets. Three
// kernels are provided:
//
//   * gemm_naive    - reference triple loop, used by tests as ground truth
//                     and by the ablation bench (DESIGN.md #2).
//   * gemm_blocked  - cache-blocked ikj loop; the production kernel.
//   * gemm_threaded - gemm_blocked sharded over rows across worker threads.
//
// All kernels compute, for row-major matrices:
//   C = alpha * op(A) * op(B) + beta * C
// where op transposes when the corresponding flag is set.
// A is M x K, B is K x N, C is M x N (after op).
#pragma once

#include <cstdint>

namespace dronet {

struct GemmArgs {
    bool trans_a = false;
    bool trans_b = false;
    int m = 0;
    int n = 0;
    int k = 0;
    float alpha = 1.0f;
    const float* a = nullptr;
    int lda = 0;
    const float* b = nullptr;
    int ldb = 0;
    float beta = 1.0f;
    float* c = nullptr;
    int ldc = 0;
};

/// Reference implementation; O(mnk) with no blocking. Ground truth in tests.
void gemm_naive(const GemmArgs& args);

/// Cache-blocked kernel (the default used by the conv layers).
void gemm_blocked(const GemmArgs& args);

/// gemm_blocked parallelized over row blocks of C with `threads` workers.
/// threads <= 1 falls back to the serial blocked kernel.
void gemm_threaded(const GemmArgs& args, int threads);

/// Convenience wrapper matching darknet's historic signature. Dispatches to
/// the blocked kernel (or the threaded one if set_gemm_threads() > 1).
void gemm(bool trans_a, bool trans_b, int m, int n, int k, float alpha,
          const float* a, int lda, const float* b, int ldb, float beta, float* c,
          int ldc);

/// Global thread count used by gemm(); defaults to 1.
void set_gemm_threads(int threads);
int gemm_threads();

/// FLOP count of a gemm call (2*m*n*k), for the platform cost model.
[[nodiscard]] std::int64_t gemm_flops(int m, int n, int k) noexcept;

}  // namespace dronet
