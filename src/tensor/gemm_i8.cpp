#include "tensor/gemm_i8.hpp"

#include <algorithm>
#include <cmath>

#include "tensor/gemm.hpp"
#include "tensor/thread_pool.hpp"

namespace dronet {
namespace {

void gemm_i8_rows(int row_begin, int row_end, int n, int k, const std::int8_t* a,
                  int lda, const std::int8_t* b, int ldb, std::int32_t* c,
                  int ldc) {
    for (int i = row_begin; i < row_end; ++i) {
        std::int32_t* crow = c + static_cast<std::int64_t>(i) * ldc;
        std::fill(crow, crow + n, 0);
        const std::int8_t* arow = a + static_cast<std::int64_t>(i) * lda;
        for (int p = 0; p < k; ++p) {
            const std::int32_t a_ip = arow[p];
            if (a_ip == 0) continue;
            const std::int8_t* brow = b + static_cast<std::int64_t>(p) * ldb;
            for (int j = 0; j < n; ++j) {
                crow[j] += a_ip * static_cast<std::int32_t>(brow[j]);
            }
        }
    }
}

}  // namespace

void gemm_i8(int m, int n, int k, const std::int8_t* a, int lda,
             const std::int8_t* b, int ldb, std::int32_t* c, int ldc) {
    const int threads = gemm_threads();
    const std::int64_t macs = static_cast<std::int64_t>(m) * n * k;
    if (threads > 1 && macs >= 16 * 1024) {
        ThreadPool::instance().parallel_for(
            0, m, threads, 1, [&](int lo, int hi) {
                gemm_i8_rows(lo, hi, n, k, a, lda, b, ldb, c, ldc);
            });
        return;
    }
    gemm_i8_rows(0, m, n, k, a, lda, b, ldb, c, ldc);
}

std::int8_t quantize_value(float x, float scale) noexcept {
    const float q = std::round(x / scale);
    return static_cast<std::int8_t>(std::clamp(q, -127.0f, 127.0f));
}

float quantization_scale(const float* x, std::int64_t n) noexcept {
    float mx = 0.0f;
    for (std::int64_t i = 0; i < n; ++i) mx = std::max(mx, std::fabs(x[i]));
    return mx > 0.0f ? mx / 127.0f : 1.0f;
}

void quantize_buffer(const float* x, std::int64_t n, float scale, std::int8_t* out) noexcept {
    for (std::int64_t i = 0; i < n; ++i) out[i] = quantize_value(x[i], scale);
}

}  // namespace dronet
