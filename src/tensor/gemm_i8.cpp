#include "tensor/gemm_i8.hpp"

#include <algorithm>
#include <cfloat>
#include <cmath>

#include "analysis/numerics.hpp"
#include "simd/kernels.hpp"
#include "tensor/gemm.hpp"
#include "tensor/thread_pool.hpp"

namespace dronet {
namespace {

void gemm_i8_rows(int row_begin, int row_end, int n, int k, const std::int8_t* a,
                  int lda, const std::int8_t* b, int ldb, std::int32_t* c,
                  int ldc) {
    const auto row_kernel = simd::kernels().gemm_i8_row;
    for (int i = row_begin; i < row_end; ++i) {
        row_kernel(a + static_cast<std::int64_t>(i) * lda, b, ldb, k, n,
                   c + static_cast<std::int64_t>(i) * ldc);
    }
}

}  // namespace

void gemm_i8(int m, int n, int k, const std::int8_t* a, int lda,
             const std::int8_t* b, int ldb, std::int32_t* c, int ldc) {
    const int threads = gemm_threads();
    const std::int64_t macs = static_cast<std::int64_t>(m) * n * k;
    if (threads > 1 && macs >= 16 * 1024) {
        ThreadPool::instance().parallel_for(
            0, m, threads, 1, [&](int lo, int hi) {
                gemm_i8_rows(lo, hi, n, k, a, lda, b, ldb, c, ldc);
            });
        return;
    }
    gemm_i8_rows(0, m, n, k, a, lda, b, ldb, c, ldc);
}

std::int8_t quantize_value(float x, float scale) noexcept {
    const float q = std::round(x / scale);
    return static_cast<std::int8_t>(std::clamp(q, -127.0f, 127.0f));
}

float quantization_scale(const float* x, std::int64_t n) {
    const bool guard = numerics_checks_enabled();
    float mx = 0.0f;
    for (std::int64_t i = 0; i < n; ++i) {
        const float v = x[i];
        if (!std::isfinite(v)) {
            if (guard) throw NumericsError("quantization_scale input", i, v);
            // NaN carries no magnitude information — skip it; Inf saturates
            // the range, so the scale clamps to the largest finite max.
            if (std::isnan(v)) continue;
            mx = FLT_MAX;
            continue;
        }
        mx = std::max(mx, std::fabs(v));
    }
    return mx > 0.0f ? mx / 127.0f : 1.0f;
}

void quantize_buffer(const float* x, std::int64_t n, float scale, std::int8_t* out) noexcept {
    for (std::int64_t i = 0; i < n; ++i) out[i] = quantize_value(x[i], scale);
}

}  // namespace dronet
