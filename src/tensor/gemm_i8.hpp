// Int8 GEMM with int32 accumulation.
//
// Backbone of the reduced-bitwidth inference path the paper lists as future
// work (§V: "performance improvements by applying finer-level optimizations
// to reduce bitwidth precisions"). Row-major, no transposition (the
// quantized conv path only needs the plain W x col product).
#pragma once

#include <cstdint>

namespace dronet {

/// C[m x n] = A[m x k] * B[k x n], int8 inputs, int32 accumulator/output.
/// ldX are row strides. Overflow-safe for k < 2^16 (worst case |a*b| <= 2^14
/// per term). Rows are sharded on the persistent ThreadPool when
/// set_gemm_threads() > 1; results are identical (integer math, each row
/// written by exactly one thread). The per-row inner loop dispatches through
/// the simd kernel table (scalar reference / AVX2 madd-paired) — bitwise
/// identical across levels.
void gemm_i8(int m, int n, int k, const std::int8_t* a, int lda,
             const std::int8_t* b, int ldb, std::int32_t* c, int ldc);

/// Symmetric quantization helpers: q = clamp(round(x / scale), -127, 127).
[[nodiscard]] std::int8_t quantize_value(float x, float scale) noexcept;

/// Largest-magnitude-based scale for a buffer (returns a scale such that
/// max|x| maps to 127; 1.0 for an all-zero buffer). Non-finite inputs no
/// longer poison the scale: NaN elements are ignored by the max scan and Inf
/// clamps to FLT_MAX, keeping the returned scale finite — unless
/// DRONET_CHECK_NUMERICS is active, in which case a NumericsError pinpoints
/// the first non-finite element instead.
[[nodiscard]] float quantization_scale(const float* x, std::int64_t n);

/// Quantizes `n` floats into `out` with the given scale.
void quantize_buffer(const float* x, std::int64_t n, float scale, std::int8_t* out) noexcept;

}  // namespace dronet
