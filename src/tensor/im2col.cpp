#include "tensor/im2col.hpp"

#include <algorithm>
#include <cstdint>

#include "simd/kernels.hpp"
#include "tensor/thread_pool.hpp"

namespace dronet {
namespace {

void im2col_rows(const float* im, const ConvGeometry& geo, float* col,
                 int row_begin, int row_end) {
    const int oh = geo.out_h();
    const int ow = geo.out_w();
    const auto copy_row = simd::kernels().copy_row;
    for (int r = row_begin; r < row_end; ++r) {
        const int kw = r % geo.ksize;
        const int kh = (r / geo.ksize) % geo.ksize;
        const int ch = r / (geo.ksize * geo.ksize);
        const float* plane =
            im + static_cast<std::int64_t>(ch) * geo.height * geo.width;
        float* out_row = col + static_cast<std::int64_t>(r) * oh * ow;
        for (int y = 0; y < oh; ++y) {
            const int iy = y * geo.stride + kh - geo.pad;
            if (iy < 0 || iy >= geo.height) {
                for (int x = 0; x < ow; ++x) out_row[y * ow + x] = 0.0f;
                continue;
            }
            const float* in_row = plane + static_cast<std::int64_t>(iy) * geo.width;
            if (geo.stride == 1) {
                // Stride-1 rows are a contiguous copy once the left/right
                // padding edges are zero-filled: out x maps to ix = x+kw-pad.
                const int x_lo = std::max(0, geo.pad - kw);
                const int x_hi = std::min(ow, geo.width - kw + geo.pad);
                float* orow = out_row + static_cast<std::int64_t>(y) * ow;
                for (int x = 0; x < x_lo; ++x) orow[x] = 0.0f;
                if (x_hi > x_lo) {
                    copy_row(orow + x_lo, in_row + x_lo + kw - geo.pad,
                             static_cast<std::size_t>(x_hi - x_lo));
                }
                for (int x = std::max(x_lo, x_hi); x < ow; ++x) orow[x] = 0.0f;
                continue;
            }
            for (int x = 0; x < ow; ++x) {
                const int ix = x * geo.stride + kw - geo.pad;
                out_row[y * ow + x] =
                    (ix >= 0 && ix < geo.width) ? in_row[ix] : 0.0f;
            }
        }
    }
}

}  // namespace

void im2col(const float* im, const ConvGeometry& geo, float* col) {
    im2col_rows(im, geo, col, 0, geo.col_rows());
}

void im2col_mt(const float* im, const ConvGeometry& geo, float* col, int ways) {
    const int rows = geo.col_rows();
    // Below ~16k written floats the unroll is too cheap to shard.
    const std::int64_t cells = static_cast<std::int64_t>(rows) * geo.col_cols();
    if (ways <= 1 || cells < 16 * 1024) {
        im2col_rows(im, geo, col, 0, rows);
        return;
    }
    ThreadPool::instance().parallel_for(0, rows, ways, 1, [&](int lo, int hi) {
        im2col_rows(im, geo, col, lo, hi);
    });
}

void col2im(const float* col, const ConvGeometry& geo, float* im) {
    const int oh = geo.out_h();
    const int ow = geo.out_w();
    const int rows = geo.col_rows();
    for (int r = 0; r < rows; ++r) {
        const int kw = r % geo.ksize;
        const int kh = (r / geo.ksize) % geo.ksize;
        const int ch = r / (geo.ksize * geo.ksize);
        float* plane = im + static_cast<std::int64_t>(ch) * geo.height * geo.width;
        const float* in_row = col + static_cast<std::int64_t>(r) * oh * ow;
        for (int y = 0; y < oh; ++y) {
            const int iy = y * geo.stride + kh - geo.pad;
            if (iy < 0 || iy >= geo.height) continue;
            float* out_row = plane + static_cast<std::int64_t>(iy) * geo.width;
            for (int x = 0; x < ow; ++x) {
                const int ix = x * geo.stride + kw - geo.pad;
                if (ix >= 0 && ix < geo.width) out_row[ix] += in_row[y * ow + x];
            }
        }
    }
}

}  // namespace dronet
