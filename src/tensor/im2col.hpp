// im2col / col2im lowering.
//
// Convolution is executed as GEMM over an unrolled patch matrix, the darknet
// strategy the paper relies on for CPU deployment. col2im is the adjoint
// operation used by the backward pass during training.
#pragma once

namespace dronet {

struct ConvGeometry {
    int channels = 0;   ///< input channels
    int height = 0;     ///< input height
    int width = 0;      ///< input width
    int ksize = 1;      ///< square kernel size
    int stride = 1;
    int pad = 0;

    [[nodiscard]] int out_h() const noexcept {
        return (height + 2 * pad - ksize) / stride + 1;
    }
    [[nodiscard]] int out_w() const noexcept {
        return (width + 2 * pad - ksize) / stride + 1;
    }
    /// Rows of the unrolled matrix: channels * ksize * ksize.
    [[nodiscard]] int col_rows() const noexcept { return channels * ksize * ksize; }
    /// Columns of the unrolled matrix: out_h * out_w.
    [[nodiscard]] int col_cols() const noexcept { return out_h() * out_w(); }
};

/// Unrolls `im` (CHW, geometry `geo`) into `col`, a row-major matrix of
/// col_rows() x col_cols(). Out-of-image taps read as zero (zero padding).
void im2col(const float* im, const ConvGeometry& geo, float* col);

/// im2col with its rows sharded across the persistent ThreadPool in up to
/// `ways` chunks. Output is identical to im2col (each row is written by
/// exactly one thread); `ways <= 1` or a small unroll runs serially. The conv
/// layers pass set_gemm_threads() here so one knob controls both lowering
/// and GEMM parallelism.
void im2col_mt(const float* im, const ConvGeometry& geo, float* col, int ways);

/// Adjoint of im2col: accumulates `col` back into `im` (im must be
/// pre-initialized; contributions are added, matching gradient semantics).
void col2im(const float* col, const ConvGeometry& geo, float* im);

}  // namespace dronet
