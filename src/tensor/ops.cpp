#include "tensor/ops.hpp"

#include <algorithm>
#include <cmath>
#include <stdexcept>

#include "simd/kernels.hpp"

namespace dronet {
namespace {

void check_same_size(std::span<const float> x, std::span<const float> y,
                     const char* what) {
    if (x.size() != y.size()) throw std::invalid_argument(what);
}

}  // namespace

void axpy(float alpha, std::span<const float> x, std::span<float> y) {
    check_same_size(x, y, "axpy: size mismatch");
    for (std::size_t i = 0; i < x.size(); ++i) y[i] += alpha * x[i];
}

void scal(float alpha, std::span<float> x) {
    for (float& v : x) v *= alpha;
}

void copy(std::span<const float> x, std::span<float> y) {
    check_same_size(x, y, "copy: size mismatch");
    std::copy(x.begin(), x.end(), y.begin());
}

void channel_mean(std::span<const float> x, int batch, int channels, int spatial,
                  std::span<float> mean) {
    if (mean.size() != static_cast<std::size_t>(channels)) {
        throw std::invalid_argument("channel_mean: bad mean size");
    }
    const float inv = 1.0f / (static_cast<float>(batch) * static_cast<float>(spatial));
    for (int c = 0; c < channels; ++c) {
        double acc = 0.0;
        for (int b = 0; b < batch; ++b) {
            const float* p = x.data() + (static_cast<std::int64_t>(b) * channels + c) * spatial;
            for (int i = 0; i < spatial; ++i) acc += p[i];
        }
        mean[static_cast<std::size_t>(c)] = static_cast<float>(acc) * inv;
    }
}

void channel_variance(std::span<const float> x, std::span<const float> mean,
                      int batch, int channels, int spatial, std::span<float> variance) {
    if (variance.size() != static_cast<std::size_t>(channels)) {
        throw std::invalid_argument("channel_variance: bad variance size");
    }
    const float inv = 1.0f / (static_cast<float>(batch) * static_cast<float>(spatial));
    for (int c = 0; c < channels; ++c) {
        const float m = mean[static_cast<std::size_t>(c)];
        double acc = 0.0;
        for (int b = 0; b < batch; ++b) {
            const float* p = x.data() + (static_cast<std::int64_t>(b) * channels + c) * spatial;
            for (int i = 0; i < spatial; ++i) {
                const float d = p[i] - m;
                acc += static_cast<double>(d) * d;
            }
        }
        variance[static_cast<std::size_t>(c)] = static_cast<float>(acc) * inv;
    }
}

void normalize_channels(std::span<float> x, std::span<const float> mean,
                        std::span<const float> variance, int batch, int channels,
                        int spatial, float eps) {
    const auto row = simd::kernels().normalize_row;
    for (int c = 0; c < channels; ++c) {
        const float m = mean[static_cast<std::size_t>(c)];
        const float inv_std =
            1.0f / std::sqrt(variance[static_cast<std::size_t>(c)] + eps);
        for (int b = 0; b < batch; ++b) {
            float* p = x.data() + (static_cast<std::int64_t>(b) * channels + c) * spatial;
            row(p, static_cast<std::size_t>(spatial), m, inv_std);
        }
    }
}

void add_channel_bias(std::span<float> x, std::span<const float> bias, int batch,
                      int channels, int spatial) {
    const auto row = simd::kernels().add_bias_row;
    for (int b = 0; b < batch; ++b) {
        for (int c = 0; c < channels; ++c) {
            const float v = bias[static_cast<std::size_t>(c)];
            float* p = x.data() + (static_cast<std::int64_t>(b) * channels + c) * spatial;
            row(p, static_cast<std::size_t>(spatial), v);
        }
    }
}

void scale_channels(std::span<float> x, std::span<const float> scale, int batch,
                    int channels, int spatial) {
    const auto row = simd::kernels().scale_row;
    for (int b = 0; b < batch; ++b) {
        for (int c = 0; c < channels; ++c) {
            const float v = scale[static_cast<std::size_t>(c)];
            float* p = x.data() + (static_cast<std::int64_t>(b) * channels + c) * spatial;
            row(p, static_cast<std::size_t>(spatial), v);
        }
    }
}

void backward_channel_bias(std::span<float> bias_grad, std::span<const float> delta,
                           int batch, int channels, int spatial) {
    for (int b = 0; b < batch; ++b) {
        for (int c = 0; c < channels; ++c) {
            const float* p =
                delta.data() + (static_cast<std::int64_t>(b) * channels + c) * spatial;
            double acc = 0.0;
            for (int i = 0; i < spatial; ++i) acc += p[i];
            bias_grad[static_cast<std::size_t>(c)] += static_cast<float>(acc);
        }
    }
}

void softmax(std::span<const float> x, std::span<float> out, float temperature) {
    check_same_size(x, out, "softmax: size mismatch");
    if (x.empty()) return;
    const float inv_t = 1.0f / temperature;
    const float m = *std::max_element(x.begin(), x.end());
    double total = 0.0;
    for (std::size_t i = 0; i < x.size(); ++i) {
        const float e = std::exp((x[i] - m) * inv_t);
        out[i] = e;
        total += e;
    }
    const float inv = static_cast<float>(1.0 / total);
    for (float& v : out) v *= inv;
}

float logistic(float x) noexcept { return 1.0f / (1.0f + std::exp(-x)); }

float logistic_gradient(float y) noexcept { return y * (1.0f - y); }

float sum(std::span<const float> x) noexcept {
    double acc = 0.0;
    for (float v : x) acc += v;
    return static_cast<float>(acc);
}

float max_abs(std::span<const float> x) noexcept {
    float m = 0.0f;
    for (float v : x) m = std::max(m, std::fabs(v));
    return m;
}

float l2_norm(std::span<const float> x) noexcept {
    double acc = 0.0;
    for (float v : x) acc += static_cast<double>(v) * v;
    return static_cast<float>(std::sqrt(acc));
}

}  // namespace dronet
