// Elementwise / vector primitives shared across layers and the optimizer.
//
// These mirror the small BLAS-1 surface darknet uses: axpy, scal, copy, plus
// the batch-norm statistics helpers. All operate on raw spans so layers can
// apply them to sub-ranges of their tensors.
#pragma once

#include <cstdint>
#include <span>

namespace dronet {

/// y += alpha * x (sizes must match).
void axpy(float alpha, std::span<const float> x, std::span<float> y);

/// x *= alpha.
void scal(float alpha, std::span<float> x);

/// y = x (sizes must match).
void copy(std::span<const float> x, std::span<float> y);

/// Per-channel mean of a NCHW tensor: mean[c] = avg over n,h,w.
/// `spatial` = h*w, `batch` = n, `channels` = c; x has batch*channels*spatial
/// elements.
void channel_mean(std::span<const float> x, int batch, int channels, int spatial,
                  std::span<float> mean);

/// Per-channel (biased) variance given precomputed means.
void channel_variance(std::span<const float> x, std::span<const float> mean,
                      int batch, int channels, int spatial, std::span<float> variance);

/// In-place batch normalization: x = (x - mean[c]) / sqrt(var[c] + eps).
void normalize_channels(std::span<float> x, std::span<const float> mean,
                        std::span<const float> variance, int batch, int channels,
                        int spatial, float eps);

/// x[i] += bias[c] broadcast over the channel's spatial plane.
void add_channel_bias(std::span<float> x, std::span<const float> bias, int batch,
                      int channels, int spatial);

/// x[i] *= scale[c] broadcast over the channel's spatial plane.
void scale_channels(std::span<float> x, std::span<const float> scale, int batch,
                    int channels, int spatial);

/// bias_grad[c] += sum of delta over the channel's spatial plane.
void backward_channel_bias(std::span<float> bias_grad, std::span<const float> delta,
                           int batch, int channels, int spatial);

/// Numerically stable softmax over `x`, written to `out` (may alias x).
void softmax(std::span<const float> x, std::span<float> out, float temperature = 1.0f);

/// Logistic sigmoid.
[[nodiscard]] float logistic(float x) noexcept;

/// Derivative of the logistic expressed in terms of its output y: y*(1-y).
[[nodiscard]] float logistic_gradient(float y) noexcept;

/// Sum, max, L2-norm helpers used by tests and metrics.
[[nodiscard]] float sum(std::span<const float> x) noexcept;
[[nodiscard]] float max_abs(std::span<const float> x) noexcept;
[[nodiscard]] float l2_norm(std::span<const float> x) noexcept;

}  // namespace dronet
