#include "tensor/rng.hpp"

#include <cmath>

namespace dronet {

float Rng::uniform(float lo, float hi) {
    std::uniform_real_distribution<float> dist(lo, hi);
    return dist(engine_);
}

int Rng::uniform_int(int lo, int hi) {
    std::uniform_int_distribution<int> dist(lo, hi);
    return dist(engine_);
}

float Rng::normal(float stddev) {
    std::normal_distribution<float> dist(0.0f, stddev);
    return dist(engine_);
}

bool Rng::chance(float p) {
    std::bernoulli_distribution dist(static_cast<double>(p));
    return dist(engine_);
}

void Rng::fill_he(std::span<float> out, int fan_in) {
    // darknet uses scale = sqrt(2 / fan_in) with uniform(-1, 1) samples.
    const float scale = std::sqrt(2.0f / static_cast<float>(fan_in > 0 ? fan_in : 1));
    for (float& v : out) v = scale * uniform(-1.0f, 1.0f);
}

void Rng::fill_uniform(std::span<float> out, float lo, float hi) {
    for (float& v : out) v = uniform(lo, hi);
}

}  // namespace dronet
