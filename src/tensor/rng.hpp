// Deterministic random number generation.
//
// Every stochastic component (weight init, synthetic scene generation, data
// augmentation) draws from an explicitly seeded Rng so experiments are
// reproducible run-to-run — a requirement for the paper-reproduction benches.
#pragma once

#include <cstdint>
#include <random>
#include <span>

namespace dronet {

class Rng {
  public:
    explicit Rng(std::uint64_t seed = 0x5eed) : engine_(seed) {}

    /// Uniform float in [lo, hi).
    [[nodiscard]] float uniform(float lo = 0.0f, float hi = 1.0f);

    /// Uniform integer in [lo, hi] inclusive.
    [[nodiscard]] int uniform_int(int lo, int hi);

    /// Standard normal scaled by `stddev`.
    [[nodiscard]] float normal(float stddev = 1.0f);

    /// Bernoulli trial.
    [[nodiscard]] bool chance(float p);

    /// Fills `out` with He-initialized weights for a layer of `fan_in` inputs
    /// (scaled uniform, the darknet convolutional init).
    void fill_he(std::span<float> out, int fan_in);

    /// Fills `out` with uniform values in [lo, hi).
    void fill_uniform(std::span<float> out, float lo, float hi);

    [[nodiscard]] std::mt19937_64& engine() noexcept { return engine_; }

  private:
    std::mt19937_64 engine_;
};

}  // namespace dronet
