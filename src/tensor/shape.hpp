// Shape of a 4-D activation tensor in NCHW layout.
//
// All feature maps flowing through the network use this layout, matching the
// darknet convention the paper's models were defined in: `n` images per
// batch, `c` channels, spatial `h x w`.
#pragma once

#include <cstdint>
#include <ostream>
#include <string>

namespace dronet {

struct Shape {
    int n = 1;  ///< batch size
    int c = 1;  ///< channels
    int h = 1;  ///< height (rows)
    int w = 1;  ///< width (columns)

    /// Total number of scalar elements.
    [[nodiscard]] std::int64_t size() const noexcept {
        return static_cast<std::int64_t>(n) * c * h * w;
    }

    /// Elements in one batch item (c*h*w).
    [[nodiscard]] std::int64_t chw() const noexcept {
        return static_cast<std::int64_t>(c) * h * w;
    }

    /// Elements in one channel plane (h*w).
    [[nodiscard]] std::int64_t hw() const noexcept {
        return static_cast<std::int64_t>(h) * w;
    }

    [[nodiscard]] bool valid() const noexcept {
        return n > 0 && c > 0 && h > 0 && w > 0;
    }

    friend bool operator==(const Shape&, const Shape&) = default;

    [[nodiscard]] std::string str() const;
};

std::ostream& operator<<(std::ostream& os, const Shape& s);

}  // namespace dronet
