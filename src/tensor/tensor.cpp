#include "tensor/tensor.hpp"

#include <algorithm>
#include <sstream>
#include <stdexcept>

namespace dronet {

std::string Shape::str() const {
    std::ostringstream os;
    os << *this;
    return os.str();
}

std::ostream& operator<<(std::ostream& os, const Shape& s) {
    return os << "[" << s.n << " x " << s.c << " x " << s.h << " x " << s.w << "]";
}

Tensor::Tensor(Shape shape)
    : shape_(shape), data_(static_cast<std::size_t>(shape.size()), 0.0f) {
    if (!shape.valid()) {
        throw std::invalid_argument("Tensor: invalid shape " + shape.str());
    }
}

Tensor::Tensor(int n, int c, int h, int w) : Tensor(Shape{n, c, h, w}) {}

float& Tensor::at(int n, int c, int h, int w) {
    if (n < 0 || n >= shape_.n || c < 0 || c >= shape_.c || h < 0 || h >= shape_.h ||
        w < 0 || w >= shape_.w) {
        throw std::out_of_range("Tensor::at out of range");
    }
    return data_[static_cast<std::size_t>(index(n, c, h, w))];
}

float Tensor::at(int n, int c, int h, int w) const {
    return const_cast<Tensor*>(this)->at(n, c, h, w);
}

void Tensor::fill(float v) noexcept { std::fill(data_.begin(), data_.end(), v); }

void Tensor::reshape(Shape shape) {
    if (shape.size() != shape_.size()) {
        throw std::invalid_argument("Tensor::reshape size mismatch: " + shape_.str() +
                                    " -> " + shape.str());
    }
    shape_ = shape;
}

void Tensor::resize(Shape shape) {
    if (!shape.valid()) {
        throw std::invalid_argument("Tensor::resize invalid shape " + shape.str());
    }
    shape_ = shape;
    // Grow-only storage: shrinking keeps the old buffer (and its contents
    // beyond the logical size) so batch-size toggling is allocation-free.
    const auto needed = static_cast<std::size_t>(shape.size());
    if (data_.size() < needed) data_.resize(needed, 0.0f);
}

}  // namespace dronet
