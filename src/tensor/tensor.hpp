// Dense float32 tensor in NCHW layout.
//
// This is the only numeric container used by the CNN engine. It owns its
// storage (no views) and is cheap to move. Element access is provided both
// through flat indexing (hot loops index manually for speed) and a checked
// 4-D accessor used in tests and non-critical code.
#pragma once

#include <cstddef>
#include <span>
#include <vector>

#include "tensor/shape.hpp"

namespace dronet {

class Tensor {
  public:
    Tensor() = default;

    /// Allocates a zero-initialized tensor of the given shape.
    explicit Tensor(Shape shape);

    /// Convenience constructor: Tensor({n,c,h,w}).
    Tensor(int n, int c, int h, int w);

    [[nodiscard]] const Shape& shape() const noexcept { return shape_; }
    [[nodiscard]] std::int64_t size() const noexcept { return shape_.size(); }
    [[nodiscard]] bool empty() const noexcept { return data_.empty(); }

    [[nodiscard]] float* data() noexcept { return data_.data(); }
    [[nodiscard]] const float* data() const noexcept { return data_.data(); }

    [[nodiscard]] std::span<float> span() noexcept { return {data_}; }
    [[nodiscard]] std::span<const float> span() const noexcept { return {data_}; }

    float& operator[](std::int64_t i) noexcept { return data_[static_cast<std::size_t>(i)]; }
    float operator[](std::int64_t i) const noexcept { return data_[static_cast<std::size_t>(i)]; }

    /// Bounds-checked 4-D access; throws std::out_of_range on violation.
    [[nodiscard]] float& at(int n, int c, int h, int w);
    [[nodiscard]] float at(int n, int c, int h, int w) const;

    /// Flat offset of element (n,c,h,w); no bounds check.
    [[nodiscard]] std::int64_t index(int n, int c, int h, int w) const noexcept {
        return ((static_cast<std::int64_t>(n) * shape_.c + c) * shape_.h + h) * shape_.w + w;
    }

    /// Sets every element to `v`.
    void fill(float v) noexcept;

    /// Sets every element to zero.
    void zero() noexcept { fill(0.0f); }

    /// Reinterprets the buffer with a new shape of identical element count.
    /// Throws std::invalid_argument on size mismatch.
    void reshape(Shape shape);

    /// Discards contents and re-allocates for `shape` (used by layer resize).
    void resize(Shape shape);

    friend bool operator==(const Tensor&, const Tensor&) = default;

  private:
    Shape shape_{0, 0, 0, 0};
    std::vector<float> data_;
};

}  // namespace dronet
