// Dense float32 tensor in NCHW layout.
//
// This is the only numeric container used by the CNN engine. It owns its
// storage (no views) and is cheap to move. Element access is provided both
// through flat indexing (hot loops index manually for speed) and a checked
// 4-D accessor used in tests and non-critical code.
#pragma once

#include <algorithm>
#include <cstddef>
#include <span>
#include <vector>

#include "tensor/shape.hpp"

namespace dronet {

class Tensor {
  public:
    Tensor() = default;

    /// Allocates a zero-initialized tensor of the given shape.
    explicit Tensor(Shape shape);

    /// Convenience constructor: Tensor({n,c,h,w}).
    Tensor(int n, int c, int h, int w);

    [[nodiscard]] const Shape& shape() const noexcept { return shape_; }
    [[nodiscard]] std::int64_t size() const noexcept { return shape_.size(); }
    [[nodiscard]] bool empty() const noexcept { return data_.empty(); }

    [[nodiscard]] float* data() noexcept { return data_.data(); }
    [[nodiscard]] const float* data() const noexcept { return data_.data(); }

    /// Logical element range. The backing vector may hold extra capacity
    /// after a shrinking resize(); the span always covers exactly shape_.size()
    /// elements.
    [[nodiscard]] std::span<float> span() noexcept {
        return {data_.data(), static_cast<std::size_t>(shape_.size())};
    }
    [[nodiscard]] std::span<const float> span() const noexcept {
        return {data_.data(), static_cast<std::size_t>(shape_.size())};
    }

    float& operator[](std::int64_t i) noexcept { return data_[static_cast<std::size_t>(i)]; }
    float operator[](std::int64_t i) const noexcept { return data_[static_cast<std::size_t>(i)]; }

    /// Bounds-checked 4-D access; throws std::out_of_range on violation.
    [[nodiscard]] float& at(int n, int c, int h, int w);
    [[nodiscard]] float at(int n, int c, int h, int w) const;

    /// Flat offset of element (n,c,h,w); no bounds check.
    [[nodiscard]] std::int64_t index(int n, int c, int h, int w) const noexcept {
        return ((static_cast<std::int64_t>(n) * shape_.c + c) * shape_.h + h) * shape_.w + w;
    }

    /// Sets every element to `v`.
    void fill(float v) noexcept;

    /// Sets every element to zero.
    void zero() noexcept { fill(0.0f); }

    /// Reinterprets the buffer with a new shape of identical element count.
    /// Throws std::invalid_argument on size mismatch.
    void reshape(Shape shape);

    /// Re-shapes the tensor; contents become unspecified. Storage is only
    /// grown, never released (new tail elements are zero), so repeatedly
    /// toggling between batch sizes — the serving layer's micro-batching path
    /// flips layer activations between batch 1 and max_batch per popped batch
    /// — costs no allocation and no full-buffer zero-fill after the first
    /// pass at the largest shape.
    void resize(Shape shape);

    friend bool operator==(const Tensor& a, const Tensor& b) noexcept {
        if (a.shape_ != b.shape_) return false;
        return std::equal(a.span().begin(), a.span().end(), b.span().begin());
    }

  private:
    Shape shape_{0, 0, 0, 0};
    std::vector<float> data_;
};

}  // namespace dronet
