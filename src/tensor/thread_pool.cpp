#include "tensor/thread_pool.hpp"

#include <algorithm>
#include <atomic>
#include <cstdlib>
#include <deque>
#include <thread>
#include <vector>

#include "sync/mutex.hpp"

namespace dronet {
namespace {

int default_worker_count() {
    // Read once when the static pool is constructed; no setenv in-process.
    // NOLINTNEXTLINE(concurrency-mt-unsafe)
    if (const char* env = std::getenv("DRONET_POOL_WORKERS")) {
        const int n = std::atoi(env);
        if (n >= 0) return std::min(n, 64);
    }
    const unsigned hc = std::thread::hardware_concurrency();
    return static_cast<int>(std::clamp(hc, 1u, 64u));
}

}  // namespace

struct ThreadPool::Impl {
    /// One batch per parallel_for call; lives on the caller's stack for the
    /// duration of the call. Chunk completions decrement `remaining` with
    /// release ordering, so the caller's acquire load of 0 sees every write
    /// the chunks made.
    struct Batch {
        std::atomic<int> remaining{0};
    };

    struct Task {
        const RangeFn* fn = nullptr;
        int lo = 0;
        int hi = 0;
        Batch* batch = nullptr;
    };

    mutable sync::Mutex mu{"ThreadPool::mu"};
    sync::CondVar work_cv;  ///< wakes parked workers
    sync::CondVar done_cv;  ///< wakes callers waiting on a batch
    std::deque<Task> queue GUARDED_BY(mu);
    bool shutdown GUARDED_BY(mu) = false;
    std::vector<std::thread> workers;  ///< written only in ctor/dtor

    std::atomic<std::uint64_t> threads_created{0};
    std::atomic<std::uint64_t> parallel_calls{0};
    std::atomic<std::uint64_t> tasks_executed{0};

    void run_task(const Task& t) EXCLUDES(mu) {
        (*t.fn)(t.lo, t.hi);
        tasks_executed.fetch_add(1, std::memory_order_relaxed);
        if (t.batch->remaining.fetch_sub(1, std::memory_order_acq_rel) == 1) {
            // Last chunk of the batch: wake its caller. Lock/unlock pairs the
            // notification with the caller's predicate check.
            { sync::MutexLock lk(mu); }
            done_cv.notify_all();
        }
    }

    void worker_loop() EXCLUDES(mu) {
        for (;;) {
            Task t;
            {
                sync::MutexLock lk(mu);
                while (!shutdown && queue.empty()) work_cv.wait(mu);
                if (queue.empty()) return;  // shutdown with no work left
                t = queue.front();
                queue.pop_front();
            }
            run_task(t);
        }
    }
};

ThreadPool::ThreadPool(int workers) : impl_(new Impl) {
    workers = std::max(0, workers);
    impl_->workers.reserve(static_cast<std::size_t>(workers));
    for (int i = 0; i < workers; ++i) {
        impl_->workers.emplace_back([this] { impl_->worker_loop(); });
        impl_->threads_created.fetch_add(1, std::memory_order_relaxed);
    }
}

ThreadPool::~ThreadPool() {
    {
        sync::MutexLock lk(impl_->mu);
        impl_->shutdown = true;
    }
    impl_->work_cv.notify_all();
    for (auto& w : impl_->workers) w.join();
    delete impl_;
}

ThreadPool& ThreadPool::instance() {
    static ThreadPool pool(default_worker_count());
    return pool;
}

void ThreadPool::parallel_for(int begin, int end, int ways, int grain,
                              const RangeFn& fn) {
    const int total = end - begin;
    if (total <= 0) return;
    grain = std::max(1, grain);
    const int max_chunks = (total + grain - 1) / grain;
    ways = std::clamp(ways, 1, max_chunks);
    if (ways == 1) {
        fn(begin, end);
        return;
    }
    // Chunk size: even split rounded up to a grain multiple.
    const int chunk = ((total + ways - 1) / ways + grain - 1) / grain * grain;
    const int chunks = (total + chunk - 1) / chunk;

    Impl::Batch batch;
    batch.remaining.store(chunks, std::memory_order_relaxed);
    impl_->parallel_calls.fetch_add(1, std::memory_order_relaxed);

    Impl::Task first{&fn, begin, std::min(end, begin + chunk), &batch};
    {
        sync::MutexLock lk(impl_->mu);
        for (int c = 1; c < chunks; ++c) {
            const int lo = begin + c * chunk;
            impl_->queue.push_back(
                Impl::Task{&fn, lo, std::min(end, lo + chunk), &batch});
        }
    }
    if (chunks > 1) impl_->work_cv.notify_all();

    impl_->run_task(first);

    // Help drain the queue (our chunks or another caller's) until our batch
    // completes. This guarantees progress even with zero pool workers.
    sync::MutexLock lk(impl_->mu);
    while (batch.remaining.load(std::memory_order_acquire) > 0) {
        if (!impl_->queue.empty()) {
            Impl::Task t = impl_->queue.front();
            impl_->queue.pop_front();
            lk.unlock();
            impl_->run_task(t);
            lk.lock();
        } else {
            while (batch.remaining.load(std::memory_order_acquire) != 0 &&
                   impl_->queue.empty()) {
                impl_->done_cv.wait(impl_->mu);
            }
        }
    }
}

int ThreadPool::worker_count() const noexcept {
    return static_cast<int>(impl_->workers.size());
}

ThreadPoolStats ThreadPool::stats() const noexcept {
    ThreadPoolStats s;
    s.threads_created = impl_->threads_created.load(std::memory_order_relaxed);
    s.parallel_calls = impl_->parallel_calls.load(std::memory_order_relaxed);
    s.tasks_executed = impl_->tasks_executed.load(std::memory_order_relaxed);
    return s;
}

}  // namespace dronet
