// Persistent worker pool for intra-op parallelism.
//
// The paper's FPS numbers are CPU-bound, and the original gemm_threaded
// spawned (and joined) fresh std::threads on every convolution call — tens of
// microseconds of overhead per layer, paid hundreds of times per frame. This
// pool is created once on first use, parks its workers on a condition
// variable, and hands them contiguous row ranges. gemm, gemm_i8 and im2col
// all dispatch through it; concurrent callers (e.g. serve workers running
// their own forward passes) are safe and simply interleave their chunks.
//
// The calling thread always participates: it runs the first chunk itself and
// then helps drain the queue until its own batch is finished, so the pool
// makes progress even on a single-core host and can never deadlock on
// oversubscription.
#pragma once

#include <cstdint>
#include <functional>

namespace dronet {

/// Monotonic counters for observability and tests. `threads_created` is the
/// total number of OS threads the pool ever started — after first use it must
/// stay constant, which is how the ablation bench proves "zero per-call
/// thread creation".
struct ThreadPoolStats {
    std::uint64_t threads_created = 0;
    std::uint64_t parallel_calls = 0;  ///< parallel_for calls that fanned out
    std::uint64_t tasks_executed = 0;  ///< chunks run (on workers or callers)
};

class ThreadPool {
  public:
    /// Callback for one contiguous range [lo, hi). Must not throw.
    using RangeFn = std::function<void(int lo, int hi)>;

    /// Starts `workers` parked threads (clamped to >= 0). Most code should
    /// use the shared instance() instead of constructing pools.
    explicit ThreadPool(int workers);
    ~ThreadPool();

    ThreadPool(const ThreadPool&) = delete;
    ThreadPool& operator=(const ThreadPool&) = delete;

    /// Process-wide pool, lazily created on first call. Worker count is
    /// DRONET_POOL_WORKERS when set, else hardware_concurrency(). The first
    /// gemm/im2col call pays the one-time thread creation; every later call
    /// reuses the parked workers.
    static ThreadPool& instance();

    /// Splits [begin, end) into at most `ways` contiguous chunks (chunk
    /// boundaries are multiples of `grain`, so e.g. GEMM row tiles are never
    /// torn) and runs `fn` on each chunk. The caller runs one chunk inline
    /// and helps drain queued chunks while waiting. Returns after every chunk
    /// has finished; writes made by the chunks happen-before the return.
    /// Thread-safe for any number of concurrent callers. `ways <= 1` or an
    /// empty range runs inline without touching the queue.
    void parallel_for(int begin, int end, int ways, int grain, const RangeFn& fn);

    [[nodiscard]] int worker_count() const noexcept;
    [[nodiscard]] ThreadPoolStats stats() const noexcept;

  private:
    struct Impl;
    Impl* impl_;  // raw pointer keeps the header dependency-free
};

}  // namespace dronet
