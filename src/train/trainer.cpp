#include "train/trainer.hpp"

#include <algorithm>
#include <numeric>
#include <stdexcept>

#include "image/resize.hpp"

namespace dronet {

Trainer::Trainer(Network& net, const DetectionDataset& train_set, TrainConfig config)
    : net_(net), data_(train_set), config_(std::move(config)), rng_(config_.shuffle_seed) {
    if (net_.region() == nullptr) {
        throw std::invalid_argument("Trainer: network has no region layer");
    }
    if (data_.empty()) throw std::invalid_argument("Trainer: empty dataset");
    batch_.resize(net_.input_shape());
    refill_order();
}

void Trainer::refill_order() {
    order_.resize(data_.size());
    std::iota(order_.begin(), order_.end(), std::size_t{0});
    std::shuffle(order_.begin(), order_.end(), rng_.engine());
    cursor_ = 0;
}

TrainLogEntry Trainer::step() {
    if (!config_.multiscale_sizes.empty() && config_.resize_every > 0 &&
        iteration_ % config_.resize_every == 0) {
        const int pick = rng_.uniform_int(
            0, static_cast<int>(config_.multiscale_sizes.size()) - 1);
        const int size = config_.multiscale_sizes[static_cast<std::size_t>(pick)];
        if (size != net_.config().width) net_.resize_input(size, size);
    }
    const Shape in = net_.input_shape();
    if (batch_.shape() != in) batch_.resize(in);
    std::vector<std::vector<GroundTruth>> truths;
    truths.reserve(static_cast<std::size_t>(in.n));
    for (int b = 0; b < in.n; ++b) {
        if (cursor_ >= order_.size()) refill_order();
        const std::size_t idx = order_[cursor_++];
        SceneSample sample;
        sample.image = data_.image(idx);
        sample.truths = data_.truths(idx);
        if (config_.use_augmentation) {
            sample = augment(sample, config_.augment, rng_);
        }
        if (sample.image.width() != in.w || sample.image.height() != in.h) {
            sample.image = resize_bilinear(sample.image, in.w, in.h);
        }
        sample.image.copy_to_batch(batch_, b);
        truths.push_back(std::move(sample.truths));
    }
    const float lr = net_.current_lr();
    const float loss = net_.train_step(batch_, std::move(truths));
    avg_loss_ = avg_loss_ < 0 ? loss : 0.9f * avg_loss_ + 0.1f * loss;

    const RegionStats& stats = net_.region()->stats();
    TrainLogEntry entry;
    entry.iteration = iteration_++;
    entry.loss = loss;
    entry.avg_loss = avg_loss_;
    entry.avg_iou = stats.avg_iou;
    entry.recall50 = stats.recall50;
    entry.learning_rate = lr;
    history_.push_back(entry);
    if (config_.on_batch) config_.on_batch(entry);
    return entry;
}

void Trainer::run() {
    for (int i = 0; i < config_.iterations; ++i) step();
}

}  // namespace dronet
