// Detection-training driver (paper §III.B).
//
// Reproduces the darknet training loop the paper used on its Titan Xp:
// shuffled mini-batches, detection augmentation, YOLO region loss, SGD with
// momentum under the configured LR schedule. On this repository's CPU-only
// substrate the loop is exercised with reduced-capacity models and synthetic
// data (see EXPERIMENTS.md for the scaling).
#pragma once

#include <functional>
#include <vector>

#include "data/augment.hpp"
#include "data/dataset.hpp"
#include "nn/network.hpp"

namespace dronet {

struct TrainLogEntry {
    int iteration = 0;     ///< 0-based mini-batch index
    float loss = 0;
    float avg_loss = 0;    ///< exponentially smoothed (darknet's avg loss)
    float avg_iou = 0;     ///< matched-predictor IoU this batch
    float recall50 = 0;
    float learning_rate = 0;
};

struct TrainConfig {
    int iterations = 200;
    AugmentConfig augment;
    bool use_augmentation = true;
    /// Multi-scale training (darknet's random-resize trick): when non-empty,
    /// the network input is resized to a random element every
    /// `resize_every` batches, making one set of weights usable across the
    /// paper's 352-608 input-size sweep.
    std::vector<int> multiscale_sizes;
    int resize_every = 10;
    /// Invoked after every mini-batch when set (progress logging).
    std::function<void(const TrainLogEntry&)> on_batch;
    std::uint64_t shuffle_seed = 0xdeadbeef;
};

class Trainer {
  public:
    /// `net` must contain a region layer; its configured batch size is used.
    /// The dataset reference must outlive the trainer.
    Trainer(Network& net, const DetectionDataset& train_set, TrainConfig config);

    /// Runs one mini-batch (forward + backward + SGD step).
    TrainLogEntry step();

    /// Runs config.iterations batches.
    void run();

    [[nodiscard]] const std::vector<TrainLogEntry>& history() const noexcept {
        return history_;
    }

  private:
    void refill_order();

    Network& net_;
    const DetectionDataset& data_;
    TrainConfig config_;
    Rng rng_;
    Tensor batch_;
    std::vector<std::size_t> order_;
    std::size_t cursor_ = 0;
    int iteration_ = 0;
    float avg_loss_ = -1;
    std::vector<TrainLogEntry> history_;
};

}  // namespace dronet
