#include "video/frame_source.hpp"

#include <cmath>

namespace dronet {

UavFrameSource::UavFrameSource(VideoConfig config)
    : config_(config), generator_(config.scene, config.seed) {
    background_ = generator_.background();
    Rng& rng = generator_.rng();
    vehicles_.reserve(static_cast<std::size_t>(config_.num_vehicles));
    for (int i = 0; i < config_.num_vehicles; ++i) {
        MovingVehicle v;
        v.pose = generator_.random_pose();
        v.speed = rng.uniform(config_.speed_min_px, config_.speed_max_px);
        vehicles_.push_back(v);
    }
}

SceneSample UavFrameSource::next_frame() {
    SceneSample sample;
    sample.image = background_;
    const auto w = static_cast<float>(background_.width());
    const auto h = static_cast<float>(background_.height());
    for (MovingVehicle& v : vehicles_) {
        v.pose.cx += v.speed * std::cos(v.pose.angle);
        v.pose.cy += v.speed * std::sin(v.pose.angle);
        // Toroidal wrap keeps the vehicle count constant for counting tests.
        if (v.pose.cx < 0) v.pose.cx += w;
        if (v.pose.cx >= w) v.pose.cx -= w;
        if (v.pose.cy < 0) v.pose.cy += h;
        if (v.pose.cy >= h) v.pose.cy -= h;
        draw_vehicle(sample.image, v.pose);
        sample.truths.push_back(vehicle_ground_truth(v.pose, background_.width(),
                                                     background_.height()));
    }
    ++frame_index_;
    return sample;
}

}  // namespace dronet
