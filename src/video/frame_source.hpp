// Synthetic UAV camera feed.
//
// Stands in for the DJI Matrice 100's on-board camera used in §IV.B: a
// fixed aerial background with vehicles moving at constant headings
// (wrapping at the frame border), delivering frame-by-frame images plus
// exact ground truth so streaming accuracy can be scored.
#pragma once

#include <cstdint>
#include <vector>

#include "data/scene.hpp"

namespace dronet {

struct VideoConfig {
    SceneConfig scene;            ///< background/vehicle appearance parameters
    int num_vehicles = 4;
    float speed_min_px = 1.0f;    ///< per-frame displacement along heading
    float speed_max_px = 3.5f;
    std::uint64_t seed = 0xcafe;
};

class UavFrameSource {
  public:
    explicit UavFrameSource(VideoConfig config);

    /// Renders the next frame; vehicles advance along their headings.
    [[nodiscard]] SceneSample next_frame();

    [[nodiscard]] int frame_index() const noexcept { return frame_index_; }
    [[nodiscard]] int width() const noexcept { return config_.scene.width; }
    [[nodiscard]] int height() const noexcept { return config_.scene.height; }
    [[nodiscard]] std::size_t vehicle_count() const noexcept { return vehicles_.size(); }

  private:
    struct MovingVehicle {
        VehiclePose pose;
        float speed = 2.0f;  ///< pixels per frame along pose.angle
    };

    VideoConfig config_;
    AerialSceneGenerator generator_;
    Image background_;
    std::vector<MovingVehicle> vehicles_;
    int frame_index_ = 0;
};

}  // namespace dronet
