#include "video/pipeline.hpp"

#include <stdexcept>

namespace dronet {

DetectionPipeline::DetectionPipeline(Network& net, PipelineConfig config)
    : net_(net), config_(config),
      altitude_filter_(config.camera, config.size_prior) {
    if (net_.region() == nullptr) {
        throw std::invalid_argument("DetectionPipeline: network has no region layer");
    }
}

FrameResult DetectionPipeline::process(const Image& frame) {
    meter_.frame_start();
    FrameResult result;
    result.frame_index = frame_index_++;
    result.detections = detect_image(net_, frame, config_.eval);
    if (config_.altitude_filter_enabled) {
        result.detections = altitude_filter_.apply(result.detections, config_.altitude_m);
    }
    meter_.frame_end();
    result.latency_ms = meter_.mean_latency_ms();
    total_detections_ += static_cast<long>(result.detections.size());
    return result;
}

double DetectionPipeline::mean_vehicles_per_frame() const noexcept {
    return meter_.frames() > 0
               ? static_cast<double>(total_detections_) / meter_.frames()
               : 0.0;
}

}  // namespace dronet
