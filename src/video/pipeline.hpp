// Frame-by-frame detection pipeline (paper §IV.B deployment loop).
//
// "We use the on board camera to retrieve real time video feed and pass it
// frame by frame to the processing board where the vehicles are detected."
// This class is that loop: resize -> network forward -> score filter + NMS ->
// optional altitude-prior filter (§III.D) -> latency/FPS accounting.
#pragma once

#include "detect/altitude_filter.hpp"
#include "eval/evaluator.hpp"
#include "eval/fps_meter.hpp"
#include "nn/network.hpp"

namespace dronet {

struct PipelineConfig {
    EvalConfig eval;
    bool altitude_filter_enabled = false;
    float altitude_m = 50.0f;
    CameraModel camera;
    VehicleSizePrior size_prior;
};

struct FrameResult {
    int frame_index = 0;
    Detections detections;
    double latency_ms = 0;
};

class DetectionPipeline {
  public:
    /// `net` must outlive the pipeline and contain a region layer.
    DetectionPipeline(Network& net, PipelineConfig config);

    /// Processes one camera frame.
    [[nodiscard]] FrameResult process(const Image& frame);

    [[nodiscard]] const FpsMeter& meter() const noexcept { return meter_; }
    [[nodiscard]] int frames_processed() const noexcept { return meter_.frames(); }
    /// Running mean of detections per frame (traffic-density estimate).
    [[nodiscard]] double mean_vehicles_per_frame() const noexcept;

    void set_altitude(float altitude_m) { config_.altitude_m = altitude_m; }

  private:
    Network& net_;
    PipelineConfig config_;
    AltitudeFilter altitude_filter_;
    FpsMeter meter_;
    long total_detections_ = 0;
    int frame_index_ = 0;
};

}  // namespace dronet
