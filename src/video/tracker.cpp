#include "video/tracker.hpp"

#include <algorithm>

namespace dronet {

const std::vector<Track>& IouTracker::update(const Detections& detections) {
    // Greedy association: repeatedly take the globally best (track, det)
    // IoU pair above the threshold.
    std::vector<bool> det_used(detections.size(), false);
    std::vector<bool> trk_used(tracks_.size(), false);
    while (true) {
        float best_iou = config_.match_iou;
        int best_t = -1, best_d = -1;
        for (std::size_t t = 0; t < tracks_.size(); ++t) {
            if (trk_used[t]) continue;
            for (std::size_t d = 0; d < detections.size(); ++d) {
                if (det_used[d]) continue;
                if (tracks_[t].class_id != detections[d].class_id) continue;
                const float v = iou(tracks_[t].box, detections[d].box);
                if (v >= best_iou) {
                    best_iou = v;
                    best_t = static_cast<int>(t);
                    best_d = static_cast<int>(d);
                }
            }
        }
        if (best_t < 0) break;
        Track& trk = tracks_[static_cast<std::size_t>(best_t)];
        const Detection& det = detections[static_cast<std::size_t>(best_d)];
        trk.box = det.box;
        trk.score = det.score();
        trk.misses = 0;
        ++trk.hits;
        if (trk.hits == config_.min_hits) ++total_confirmed_;
        trk_used[static_cast<std::size_t>(best_t)] = true;
        det_used[static_cast<std::size_t>(best_d)] = true;
    }
    // Age all tracks; count a miss on the unmatched ones.
    for (std::size_t t = 0; t < tracks_.size(); ++t) {
        ++tracks_[t].age;
        if (!trk_used[t]) ++tracks_[t].misses;
    }
    // Open a track per unmatched detection.
    for (std::size_t d = 0; d < detections.size(); ++d) {
        if (det_used[d]) continue;
        Track trk;
        trk.id = next_id_++;
        trk.box = detections[d].box;
        trk.class_id = detections[d].class_id;
        trk.score = detections[d].score();
        trk.hits = 1;
        if (config_.min_hits <= 1) ++total_confirmed_;
        tracks_.push_back(trk);
    }
    // Retire stale tracks.
    std::erase_if(tracks_, [this](const Track& t) { return t.misses > config_.max_misses; });
    return tracks_;
}

std::vector<Track> IouTracker::confirmed_tracks() const {
    std::vector<Track> out;
    for (const Track& t : tracks_) {
        if (t.confirmed(config_.min_hits)) out.push_back(t);
    }
    return out;
}

}  // namespace dronet
