// Multi-object IoU tracker.
//
// The paper's traffic-monitoring motivation (§I) needs per-vehicle identity
// ("searching, collecting and sending vehicle information in real time"),
// not just per-frame boxes. This greedy IoU tracker associates detections
// across frames: each track carries an id, its last box, and hit/miss
// counters; detections match the track of highest IoU above a threshold,
// unmatched detections open new tracks, and tracks missing for too many
// frames are retired.
#pragma once

#include <cstdint>
#include <vector>

#include "detect/box.hpp"

namespace dronet {

struct Track {
    int id = 0;
    Box box;                 ///< last matched position
    int class_id = 0;
    float score = 0;         ///< last matched detection score
    int hits = 0;            ///< total matched frames
    int misses = 0;          ///< consecutive unmatched frames
    int age = 0;             ///< frames since creation

    /// A track is "confirmed" after enough hits; unconfirmed tracks are
    /// likely spurious single-frame detections.
    [[nodiscard]] bool confirmed(int min_hits) const noexcept { return hits >= min_hits; }
};

struct TrackerConfig {
    float match_iou = 0.3f;  ///< minimum IoU for detection-track association
    int max_misses = 5;      ///< frames a track survives without detections
    int min_hits = 3;        ///< frames before a track counts as confirmed
};

class IouTracker {
  public:
    explicit IouTracker(TrackerConfig config = {}) : config_(config) {}

    /// Consumes one frame's detections; returns the live track list (matched
    /// tracks updated, new tracks opened, stale tracks retired).
    const std::vector<Track>& update(const Detections& detections);

    [[nodiscard]] const std::vector<Track>& tracks() const noexcept { return tracks_; }

    /// Tracks that have accumulated config.min_hits.
    [[nodiscard]] std::vector<Track> confirmed_tracks() const;

    /// Total distinct confirmed tracks ever observed (the traffic count).
    [[nodiscard]] int total_confirmed() const noexcept { return total_confirmed_; }

    [[nodiscard]] const TrackerConfig& config() const noexcept { return config_; }

  private:
    TrackerConfig config_;
    std::vector<Track> tracks_;
    int next_id_ = 1;
    int total_confirmed_ = 0;
};

}  // namespace dronet
