// Positive control for the compile-fail cases: the same code shapes as
// unguarded_access.cpp and lock_order.cpp, but lock-correct. Builds and runs
// in every configuration — if this target ever fails to compile under Clang,
// the annotations themselves (not a violation) are broken; if the negative
// cases start passing their builds, the analysis is off and this control is
// what distinguishes "analysis clean" from "analysis disabled".
#include "sync/mutex.hpp"

namespace {

namespace sync = dronet::sync;  // shadows the POSIX ::sync() in this TU

class Counter {
  public:
    void increment() EXCLUDES(mu_) {
        sync::MutexLock lock(mu_);
        ++value_;
    }
    [[nodiscard]] int value() const EXCLUDES(mu_) {
        sync::MutexLock lock(mu_);
        return value_;
    }

  private:
    mutable sync::Mutex mu_{"control.counter"};
    int value_ GUARDED_BY(mu_) = 0;
};

class TwoLocks {
  public:
    void right_order() EXCLUDES(a_, b_) {
        sync::MutexLock la(a_);
        sync::MutexLock lb(b_);
    }

  private:
    sync::Mutex a_ ACQUIRED_BEFORE(b_);
    sync::Mutex b_;
};

}  // namespace

int main() {
    Counter c;
    c.increment();
    TwoLocks t;
    t.right_order();
    return c.value() == 1 ? 0 : 1;
}
