// Compile-fail case: acquires two mutexes against their declared
// ACQUIRED_BEFORE order. Expected diagnostic (clang -Wthread-safety-beta):
//   mutex 'a_' must be acquired before 'b_'
#include "sync/mutex.hpp"

class TwoLocks {
  public:
    void wrong_order() {
        dronet::sync::MutexLock lb(b_);
        dronet::sync::MutexLock la(a_);  // BAD: contract says a_ first
    }

  private:
    dronet::sync::Mutex a_ ACQUIRED_BEFORE(b_);
    dronet::sync::Mutex b_;
};

int main() {
    TwoLocks t;
    t.wrong_order();
    return 0;
}
