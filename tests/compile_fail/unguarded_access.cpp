// Compile-fail case: writes a GUARDED_BY field without holding its mutex.
// Expected diagnostic (clang -Wthread-safety):
//   writing variable 'value_' requires holding mutex 'mu_' exclusively
#include "sync/mutex.hpp"

class Counter {
  public:
    void increment() { ++value_; }  // BAD: mu_ not held

  private:
    dronet::sync::Mutex mu_;
    int value_ GUARDED_BY(mu_) = 0;
};

int main() {
    Counter c;
    c.increment();
    return 0;
}
