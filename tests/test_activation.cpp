// Activation functions: values, derivatives (vs finite differences), parsing.
#include <gtest/gtest.h>

#include <cmath>
#include <vector>

#include "nn/activation.hpp"

namespace dronet {
namespace {

TEST(Activation, ParseAndPrint) {
    EXPECT_EQ(activation_from_string("leaky"), Activation::kLeaky);
    EXPECT_EQ(activation_from_string("linear"), Activation::kLinear);
    EXPECT_EQ(activation_from_string("relu"), Activation::kRelu);
    EXPECT_EQ(activation_from_string("logistic"), Activation::kLogistic);
    EXPECT_THROW(static_cast<void>(activation_from_string("tanh")),
                 std::invalid_argument);
    for (Activation a : {Activation::kLinear, Activation::kLeaky, Activation::kRelu,
                         Activation::kLogistic}) {
        EXPECT_EQ(activation_from_string(to_string(a)), a);
    }
}

TEST(Activation, LeakyValues) {
    EXPECT_FLOAT_EQ(activate(Activation::kLeaky, 2.0f), 2.0f);
    EXPECT_FLOAT_EQ(activate(Activation::kLeaky, -2.0f), -0.2f);
}

TEST(Activation, ReluValues) {
    EXPECT_FLOAT_EQ(activate(Activation::kRelu, 3.0f), 3.0f);
    EXPECT_FLOAT_EQ(activate(Activation::kRelu, -3.0f), 0.0f);
}

TEST(Activation, LogisticValues) {
    EXPECT_FLOAT_EQ(activate(Activation::kLogistic, 0.0f), 0.5f);
}

class ActivationGradient : public ::testing::TestWithParam<Activation> {};

// f'(x) expressed via the output y must match finite differences on f.
TEST_P(ActivationGradient, MatchesFiniteDifference) {
    const Activation a = GetParam();
    for (float x : {-2.0f, -0.5f, 0.3f, 1.7f, 4.0f}) {
        const float eps = 1e-3f;
        const float numeric =
            (activate(a, x + eps) - activate(a, x - eps)) / (2.0f * eps);
        const float analytic = activation_gradient(a, activate(a, x));
        EXPECT_NEAR(analytic, numeric, 2e-3f) << to_string(a) << " at x=" << x;
    }
}

INSTANTIATE_TEST_SUITE_P(All, ActivationGradient,
                         ::testing::Values(Activation::kLinear, Activation::kLeaky,
                                           Activation::kRelu, Activation::kLogistic));

TEST(Activation, VectorApply) {
    std::vector<float> x = {-1.0f, 2.0f};
    apply_activation(Activation::kLeaky, x);
    EXPECT_FLOAT_EQ(x[0], -0.1f);
    EXPECT_FLOAT_EQ(x[1], 2.0f);
}

TEST(Activation, VectorGradientScalesDelta) {
    const std::vector<float> y = {-0.1f, 2.0f};  // leaky outputs
    std::vector<float> delta = {1.0f, 1.0f};
    apply_activation_gradient(Activation::kLeaky, y, delta);
    EXPECT_FLOAT_EQ(delta[0], 0.1f);
    EXPECT_FLOAT_EQ(delta[1], 1.0f);
}

TEST(Activation, LinearGradientIsNoop) {
    const std::vector<float> y = {5.0f};
    std::vector<float> delta = {3.0f};
    apply_activation_gradient(Activation::kLinear, y, delta);
    EXPECT_FLOAT_EQ(delta[0], 3.0f);
}

}  // namespace
}  // namespace dronet
