// Static validator (analysis/validate.hpp): rule coverage, symbolic
// weight-layout computation against real files, parse_cfg integration,
// clone-report equality, and the DRONET_CHECK_NUMERICS runtime guard.
#include <gtest/gtest.h>

#include <algorithm>
#include <cmath>
#include <filesystem>
#include <limits>

#include "analysis/numerics.hpp"
#include "analysis/validate.hpp"
#include "nn/activation.hpp"
#include "nn/cfg.hpp"
#include "nn/clone.hpp"
#include "nn/weights_io.hpp"
#include "models/model_zoo.hpp"
#include "tensor/rng.hpp"

namespace dronet {
namespace {

bool has_rule(const ValidationReport& report, const std::string& rule,
              Severity severity) {
    return std::any_of(report.diagnostics.begin(), report.diagnostics.end(),
                       [&](const Diagnostic& d) {
                           return d.rule == rule && d.severity == severity;
                       });
}

constexpr const char* kGoodCfg = R"(
[net]
batch=1
width=32
height=32
channels=3
[convolutional]
batch_normalize=1
filters=8
size=3
stride=1
pad=1
activation=leaky
[maxpool]
size=2
stride=2
[convolutional]
filters=12
size=1
stride=1
activation=linear
[region]
anchors=1,1,2,2
classes=1
num=2
)";

TEST(Validate, CleanCfgHasNoDiagnostics) {
    const ValidationReport report = validate_network(std::string(kGoodCfg));
    EXPECT_TRUE(report.ok());
    EXPECT_EQ(report.warnings(), 0) << report.str();
}

TEST(Validate, AllZooModelsAreClean) {
    for (ModelId id : all_models()) {
        const ValidationReport report = validate_network(model_cfg(id));
        EXPECT_TRUE(report.ok()) << to_string(id) << ":\n" << report.str();
        EXPECT_EQ(report.warnings(), 0) << to_string(id) << ":\n" << report.str();
    }
}

TEST(Validate, RouteOutOfRangeIsError) {
    const ValidationReport report = validate_network(
        "[net]\nwidth=8\nheight=8\nchannels=3\n"
        "[convolutional]\nfilters=2\nsize=1\nstride=1\nactivation=linear\n"
        "[route]\nlayers=7\n");
    EXPECT_FALSE(report.ok());
    EXPECT_TRUE(has_rule(report, "route-source-range", Severity::kError));
}

TEST(Validate, RouteToSelfViaRelativeIndexIsError) {
    const ValidationReport report = validate_network(
        "[net]\nwidth=8\nheight=8\nchannels=3\n"
        "[convolutional]\nfilters=2\nsize=1\nstride=1\nactivation=linear\n"
        "[route]\nlayers=0,-3\n");
    EXPECT_TRUE(has_rule(report, "route-source-range", Severity::kError));
}

TEST(Validate, RouteSpatialMismatchIsError) {
    const ValidationReport report = validate_network(
        "[net]\nwidth=16\nheight=16\nchannels=3\n"
        "[convolutional]\nfilters=2\nsize=1\nstride=1\nactivation=linear\n"
        "[maxpool]\nsize=2\nstride=2\npadding=0\n"
        "[route]\nlayers=0,1\n");
    EXPECT_TRUE(has_rule(report, "route-shape-mismatch", Severity::kError));
}

TEST(Validate, RegionWrongHeadFiltersIsError) {
    const ValidationReport report = validate_network(
        "[net]\nwidth=32\nheight=32\nchannels=3\n"
        "[convolutional]\nfilters=11\nsize=1\nstride=1\nactivation=linear\n"
        "[region]\nanchors=1,1,2,2\nclasses=1\nnum=2\n");
    EXPECT_FALSE(report.ok());
    EXPECT_TRUE(has_rule(report, "region-input-channels", Severity::kError));
}

TEST(Validate, RegionAnchorLengthMismatchIsError) {
    const ValidationReport report = validate_network(
        "[net]\nwidth=32\nheight=32\nchannels=3\n"
        "[convolutional]\nfilters=12\nsize=1\nstride=1\nactivation=linear\n"
        "[region]\nanchors=1,1,2\nclasses=1\nnum=2\n");
    EXPECT_TRUE(has_rule(report, "region-anchors-length", Severity::kError));
}

TEST(Validate, DegenerateConvOutputIsError) {
    const ValidationReport report = validate_network(
        "[net]\nwidth=4\nheight=4\nchannels=3\n"
        "[convolutional]\nfilters=2\nsize=7\nstride=1\nactivation=linear\n");
    EXPECT_TRUE(has_rule(report, "degenerate-output", Severity::kError));
}

TEST(Validate, DroppedPixelsIsWarning) {
    // 33x33 into a 2x2/2 pool with explicit padding 0: the last row/column is
    // never read by any window.
    const ValidationReport report = validate_network(
        "[net]\nwidth=33\nheight=33\nchannels=3\n"
        "[maxpool]\nsize=2\nstride=2\npadding=0\n");
    EXPECT_TRUE(report.ok());
    EXPECT_TRUE(has_rule(report, "drops-pixels", Severity::kWarning));
}

TEST(Validate, UnknownKeyIsWarning) {
    const ValidationReport report = validate_network(
        "[net]\nwidth=8\nheight=8\nchannels=3\n"
        "[convolutional]\nfliters=32\nsize=1\nstride=1\nactivation=linear\n");
    EXPECT_TRUE(has_rule(report, "unknown-key", Severity::kWarning));
}

TEST(Validate, HeadBatchnormAndActivationAreWarnings) {
    const ValidationReport report = validate_network(
        "[net]\nwidth=32\nheight=32\nchannels=3\n"
        "[convolutional]\nbatch_normalize=1\nfilters=12\nsize=1\nstride=1\n"
        "activation=leaky\n"
        "[region]\nanchors=1,1,2,2\nclasses=1\nnum=2\n");
    EXPECT_TRUE(report.ok());
    EXPECT_TRUE(has_rule(report, "head-batchnorm", Severity::kWarning));
    EXPECT_TRUE(has_rule(report, "head-activation", Severity::kWarning));
}

TEST(Validate, SyntaxErrorBecomesDiagnostic) {
    const ValidationReport report = validate_network(std::string("width=10\n[net]\n"));
    EXPECT_FALSE(report.ok());
    EXPECT_TRUE(has_rule(report, "cfg-syntax", Severity::kError));
}

TEST(Validate, KnownActivationsMatchEngine) {
    for (const std::string& name : cfg_known_activations()) {
        EXPECT_NO_THROW(static_cast<void>(activation_from_string(name))) << name;
    }
}

TEST(Validate, ParseCfgThrowsOnValidatorError) {
    EXPECT_THROW(parse_cfg("[net]\nwidth=8\nheight=8\nchannels=3\n"
                           "[convolutional]\nfilters=2\nsize=1\nstride=1\n"
                           "activation=linear\n[route]\nlayers=7\n"),
                 std::invalid_argument);
}

TEST(Validate, ExpectedWeightBytesMatchSavedFile) {
    const std::string cfg = model_cfg(ModelId::kDroNet, {.input_size = 192});
    Network net = parse_cfg(cfg);
    const auto path = std::filesystem::temp_directory_path() / "dronet_lint.weights";
    save_weights(net, path);
    const ValidationReport report = validate_network(cfg);
    EXPECT_EQ(report.expected_weight_bytes,
              static_cast<std::int64_t>(std::filesystem::file_size(path)));
    EXPECT_EQ(report.expected_weight_bytes, expected_weight_file_bytes(net));
    EXPECT_EQ(report.param_count, net.total_params());
    std::filesystem::remove(path);
}

TEST(Validate, CheckWeightsFileFlagsTruncation) {
    Network net = parse_cfg(kGoodCfg);
    const auto path = std::filesystem::temp_directory_path() / "dronet_trunc.weights";
    save_weights(net, path);
    ValidationReport ok_report = validate_network(std::string(kGoodCfg));
    EXPECT_TRUE(check_weights_file(ok_report, path));
    std::filesystem::resize_file(path, std::filesystem::file_size(path) - 4);
    ValidationReport bad_report = validate_network(std::string(kGoodCfg));
    EXPECT_FALSE(check_weights_file(bad_report, path));
    EXPECT_TRUE(has_rule(bad_report, "weights-size-mismatch", Severity::kError));
    std::filesystem::remove(path);
}

TEST(Validate, LoadWeightsRejectsTruncationBeforeReading) {
    Network net = parse_cfg(kGoodCfg);
    const auto path = std::filesystem::temp_directory_path() / "dronet_pre.weights";
    save_weights(net, path);
    std::filesystem::resize_file(path, std::filesystem::file_size(path) - 4);
    try {
        load_weights(net, path);
        FAIL() << "expected load_weights to throw";
    } catch (const std::runtime_error& e) {
        EXPECT_NE(std::string(e.what()).find("needs exactly"), std::string::npos)
            << e.what();
    }
    std::filesystem::remove(path);
}

TEST(Validate, JsonReportIsWellFormedEnough) {
    const ValidationReport report = validate_network(
        "[net]\nwidth=8\nheight=8\nchannels=3\n[route]\nlayers=3\n");
    const std::string json = report.json();
    EXPECT_NE(json.find("\"errors\":1"), std::string::npos) << json;
    EXPECT_NE(json.find("\"rule\":\"route-source-range\""), std::string::npos) << json;
}

TEST(CloneValidation, CloneProducesIdenticalReport) {
    Network src = build_model(ModelId::kDroNet, {.input_size = 192});
    Rng rng(21);
    for (std::size_t i = 0; i < src.num_layers(); ++i) {
        for (Param* p : src.layer(static_cast<int>(i)).params()) {
            rng.fill_uniform(p->v, -0.5f, 0.5f);
        }
    }
    Network copy = clone_network(src);
    const ValidationReport src_report = validate_network(network_to_cfg(src));
    const ValidationReport copy_report = validate_network(network_to_cfg(copy));
    EXPECT_TRUE(src_report.ok()) << src_report.str();
    EXPECT_TRUE(copy_report.ok()) << copy_report.str();
    EXPECT_EQ(src_report.str(), copy_report.str());
    EXPECT_EQ(src_report.expected_weight_bytes, copy_report.expected_weight_bytes);
    EXPECT_EQ(src_report.param_count, copy_report.param_count);
}

class NumericsGuard : public ::testing::Test {
  protected:
    void TearDown() override { set_numerics_checks(false); }
};

TEST_F(NumericsGuard, FindNonfinite) {
    const float nan = std::numeric_limits<float>::quiet_NaN();
    const float inf = std::numeric_limits<float>::infinity();
    const std::vector<float> clean{0.0f, -1.5f, 3.0f};
    const std::vector<float> dirty{0.0f, inf, nan};
    EXPECT_EQ(find_nonfinite(clean), -1);
    EXPECT_EQ(find_nonfinite(dirty), 1);
}

TEST_F(NumericsGuard, ForwardPinpointsFirstBadLayer) {
    Network net = parse_cfg(kGoodCfg);
    auto& conv = dynamic_cast<ConvolutionalLayer&>(net.layer(0));
    conv.weights().v[0] = std::numeric_limits<float>::quiet_NaN();
    Tensor in(net.input_shape());
    in.fill(0.5f);
    set_numerics_checks(false);
    EXPECT_NO_THROW(net.forward(in));  // guard off: silent NaN propagation
    set_numerics_checks(true);
    try {
        net.forward(in);
        FAIL() << "expected NumericsError";
    } catch (const NumericsError& e) {
        EXPECT_NE(e.where().find("forward layer 0"), std::string::npos) << e.what();
    }
}

TEST_F(NumericsGuard, BackwardCatchesPoisonedDelta) {
    Network net = parse_cfg(kGoodCfg);
    Tensor in(net.input_shape());
    in.fill(0.25f);
    net.forward(in, /*train=*/true);
    const int last = static_cast<int>(net.num_layers()) - 1;
    net.layer(last).delta().fill(std::numeric_limits<float>::infinity());
    set_numerics_checks(true);
    EXPECT_THROW(net.backward(), NumericsError);
}

}  // namespace
}  // namespace dronet
