// Classical background-subtraction baseline (paper §II.A ref [2]) and its
// connected-components support.
#include <gtest/gtest.h>

#include "baseline/bg_subtraction.hpp"
#include "baseline/connected_components.hpp"
#include "data/dataset.hpp"
#include "eval/metrics.hpp"
#include "image/draw.hpp"
#include "video/frame_source.hpp"

namespace dronet {
namespace {

Image binary_mask(int w, int h) { return Image(w, h, 1); }

TEST(ConnectedComponents, EmptyMaskHasNoBlobs) {
    EXPECT_TRUE(connected_components(binary_mask(8, 8)).empty());
}

TEST(ConnectedComponents, SingleBlobBoundingBox) {
    Image mask = binary_mask(16, 16);
    draw_filled_rect(mask, 3, 4, 7, 9, Rgb{1, 1, 1});
    const auto blobs = connected_components(mask);
    ASSERT_EQ(blobs.size(), 1u);
    EXPECT_EQ(blobs[0].min_x, 3);
    EXPECT_EQ(blobs[0].max_x, 7);
    EXPECT_EQ(blobs[0].min_y, 4);
    EXPECT_EQ(blobs[0].max_y, 9);
    EXPECT_EQ(blobs[0].area, 5 * 6);
    const Box box = blobs[0].box(16, 16);
    EXPECT_NEAR(box.left(), 3.0f / 16.0f, 1e-6f);
    EXPECT_NEAR(box.right(), 8.0f / 16.0f, 1e-6f);
}

TEST(ConnectedComponents, SeparatesDisjointBlobs) {
    Image mask = binary_mask(20, 20);
    draw_filled_rect(mask, 1, 1, 3, 3, Rgb{1, 1, 1});
    draw_filled_rect(mask, 10, 10, 14, 12, Rgb{1, 1, 1});
    EXPECT_EQ(connected_components(mask).size(), 2u);
}

TEST(ConnectedComponents, DiagonalPixelsAreSeparate) {
    // 4-connectivity: two diagonal pixels are two components.
    Image mask = binary_mask(4, 4);
    mask.px(1, 1, 0) = 1.0f;
    mask.px(2, 2, 0) = 1.0f;
    EXPECT_EQ(connected_components(mask).size(), 2u);
}

TEST(ConnectedComponents, MinAreaFilters) {
    Image mask = binary_mask(10, 10);
    mask.px(0, 0, 0) = 1.0f;                          // speck
    draw_filled_rect(mask, 4, 4, 7, 7, Rgb{1, 1, 1});  // 16 px blob
    EXPECT_EQ(connected_components(mask, 4).size(), 1u);
}

TEST(BgSubtraction, WarmupEmitsNothing) {
    BackgroundSubtractionDetector detector;
    Image frame(32, 32, 3);
    for (int i = 0; i < 3; ++i) {
        EXPECT_TRUE(detector.process(frame).empty()) << "frame " << i;
    }
}

TEST(BgSubtraction, DetectsAppearingObject) {
    BgSubtractionConfig cfg;
    cfg.warmup_frames = 2;
    BackgroundSubtractionDetector detector(cfg);
    Image background(48, 48, 3);
    background.fill(0.3f);
    static_cast<void>(detector.process(background));
    static_cast<void>(detector.process(background));
    Image with_car = background;
    draw_filled_rect(with_car, 20, 20, 30, 26, Rgb{0.9f, 0.1f, 0.1f});
    const Detections dets = detector.process(with_car);
    ASSERT_GE(dets.size(), 1u);
    const Box expected = Box::from_corners(20.0f / 48, 20.0f / 48, 31.0f / 48, 27.0f / 48);
    EXPECT_GT(iou(dets[0].box, expected), 0.5f);
}

TEST(BgSubtraction, StaticObjectFadesIntoBackground) {
    // The classical method's structural weakness: a parked vehicle present
    // from frame 0 is background, never detected.
    BgSubtractionConfig cfg;
    cfg.warmup_frames = 2;
    BackgroundSubtractionDetector detector(cfg);
    Image frame(48, 48, 3);
    frame.fill(0.3f);
    draw_filled_rect(frame, 10, 10, 20, 16, Rgb{0.9f, 0.1f, 0.1f});
    for (int i = 0; i < 6; ++i) static_cast<void>(detector.process(frame));
    EXPECT_TRUE(detector.process(frame).empty());
}

TEST(BgSubtraction, RejectsFrameSizeChange) {
    BackgroundSubtractionDetector detector;
    Image a(32, 32, 3), b(16, 16, 3);
    static_cast<void>(detector.process(a));
    EXPECT_THROW(static_cast<void>(detector.process(b)), std::invalid_argument);
    EXPECT_THROW(static_cast<void>(detector.process(Image{})), std::invalid_argument);
    detector.reset();
    EXPECT_EQ(detector.frames_seen(), 0);
    static_cast<void>(detector.process(b));  // fine after reset
}

TEST(BgSubtraction, TracksMovingVehiclesOnVideoFeed) {
    VideoConfig vc;
    vc.scene = benchmark_scene_config(96);
    vc.scene.noise_stddev = 0;
    vc.num_vehicles = 2;
    vc.speed_min_px = 3.0f;
    vc.speed_max_px = 5.0f;
    vc.seed = 99;
    UavFrameSource source(vc);
    BgSubtractionConfig cfg;
    cfg.warmup_frames = 4;
    BackgroundSubtractionDetector detector(cfg);
    DetectionMetrics m;
    for (int f = 0; f < 20; ++f) {
        const SceneSample frame = source.next_frame();
        const Detections dets = detector.process(frame.image);
        if (f >= 8) m += match_detections(dets, frame.truths, 0.3f);
    }
    // Moving vehicles against a static background: the baseline must catch a
    // reasonable share once its model has settled.
    EXPECT_GT(m.sensitivity(), 0.3f);
}

}  // namespace
}  // namespace dronet
