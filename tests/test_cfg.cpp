// Darknet cfg dialect: section parsing, typed getters, network construction,
// error reporting, and the emit->parse fixpoint property.
#include <gtest/gtest.h>

#include <filesystem>
#include <fstream>

#include "nn/cfg.hpp"

namespace dronet {
namespace {

constexpr const char* kTinyCfg = R"(
[net]
batch=2
width=32
height=32
channels=3
learning_rate=0.002
momentum=0.9
decay=0.0005
burn_in=5
policy=steps
steps=100,200
scales=0.5,0.1

[convolutional]
batch_normalize=1
filters=8
size=3
stride=1
pad=1
activation=leaky

[maxpool]
size=2
stride=2

# detection head
[convolutional]
filters=12
size=1
stride=1
activation=linear

[region]
anchors=1.0,1.0,2.5,2.5
classes=1
coords=4
num=2
object_scale=5
noobject_scale=1
thresh=0.6
rescore=1
)";

TEST(CfgSections, ParsesSectionsAndOptions) {
    const auto sections = parse_cfg_sections(kTinyCfg);
    ASSERT_EQ(sections.size(), 5u);
    EXPECT_EQ(sections[0].name, "net");
    EXPECT_EQ(sections[1].name, "convolutional");
    EXPECT_EQ(sections[1].get_int("filters", 0), 8);
    EXPECT_TRUE(sections[1].has("batch_normalize"));
    EXPECT_FALSE(sections[2].has("filters"));
}

TEST(CfgSections, CommentsAndWhitespaceIgnored) {
    const auto sections = parse_cfg_sections("[net]\n # comment\n  width = 64 \n;also\n");
    ASSERT_EQ(sections.size(), 1u);
    EXPECT_EQ(sections[0].get_int("width", 0), 64);
}

TEST(CfgSections, RejectsOptionBeforeSection) {
    EXPECT_THROW(parse_cfg_sections("width=10\n[net]\n"), std::invalid_argument);
}

TEST(CfgSections, RejectsMalformedLines) {
    EXPECT_THROW(parse_cfg_sections("[net]\nnonsense\n"), std::invalid_argument);
    EXPECT_THROW(parse_cfg_sections("[net\nwidth=3\n"), std::invalid_argument);
}

TEST(CfgSections, TypedGettersValidate) {
    const auto sections = parse_cfg_sections("[net]\nwidth=abc\nlist=1,2,x\n");
    EXPECT_THROW(static_cast<void>(sections[0].get_int("width", 0)),
                 std::invalid_argument);
    EXPECT_THROW(static_cast<void>(sections[0].get_float_list("list")),
                 std::invalid_argument);
    EXPECT_EQ(sections[0].get_int("missing", 7), 7);
    EXPECT_EQ(sections[0].get_string("missing", "x"), "x");
}

TEST(CfgSections, FloatListParsesWithSpaces) {
    const auto sections = parse_cfg_sections("[region]\nanchors=1.08,1.19, 3.42,4.41\n");
    const auto anchors = sections[0].get_float_list("anchors");
    ASSERT_EQ(anchors.size(), 4u);
    EXPECT_FLOAT_EQ(anchors[2], 3.42f);
}

TEST(ParseCfg, BuildsNetwork) {
    Network net = parse_cfg(kTinyCfg);
    ASSERT_EQ(net.num_layers(), 4u);
    EXPECT_EQ(net.config().batch, 2);
    EXPECT_EQ(net.config().width, 32);
    EXPECT_FLOAT_EQ(net.config().learning_rate, 0.002f);
    ASSERT_EQ(net.config().lr_steps.size(), 2u);
    EXPECT_EQ(net.config().lr_steps[1].at_batch, 200);
    EXPECT_EQ(net.layer(0).kind(), LayerKind::kConvolutional);
    EXPECT_EQ(net.layer(1).kind(), LayerKind::kMaxPool);
    EXPECT_EQ(net.layer(3).kind(), LayerKind::kRegion);
    const auto& conv = dynamic_cast<const ConvolutionalLayer&>(net.layer(0));
    EXPECT_TRUE(conv.config().batch_normalize);
    EXPECT_EQ(conv.config().pad, 1);  // pad=1 means "same"
    EXPECT_EQ(net.region()->config().num, 2);
    EXPECT_EQ(net.region()->config().anchors.size(), 4u);
}

TEST(ParseCfg, PadConventions) {
    Network net = parse_cfg(
        "[net]\nwidth=8\nheight=8\nchannels=3\n"
        "[convolutional]\nfilters=2\nsize=5\nstride=1\npad=1\nactivation=linear\n");
    const auto& conv = dynamic_cast<const ConvolutionalLayer&>(net.layer(0));
    EXPECT_EQ(conv.config().pad, 2);  // size/2
    Network net2 = parse_cfg(
        "[net]\nwidth=8\nheight=8\nchannels=3\n"
        "[convolutional]\nfilters=2\nsize=5\nstride=1\npadding=1\nactivation=linear\n");
    EXPECT_EQ(dynamic_cast<const ConvolutionalLayer&>(net2.layer(0)).config().pad, 1);
}

TEST(ParseCfg, RouteRelativeIndices) {
    Network net = parse_cfg(
        "[net]\nwidth=8\nheight=8\nchannels=3\n"
        "[convolutional]\nfilters=2\nsize=1\nstride=1\nactivation=linear\n"
        "[convolutional]\nfilters=3\nsize=1\nstride=1\nactivation=linear\n"
        "[route]\nlayers=-1,-2\n");
    const auto& route = dynamic_cast<const RouteLayer&>(net.layer(2));
    EXPECT_EQ(route.sources(), (std::vector<int>{1, 0}));
    EXPECT_EQ(route.output_shape().c, 5);
}

TEST(ParseCfg, UpsampleSection) {
    Network net = parse_cfg(
        "[net]\nwidth=8\nheight=8\nchannels=3\n[upsample]\nstride=2\n");
    EXPECT_EQ(net.layer(0).output_shape(), (Shape{1, 3, 16, 16}));
}

TEST(ParseCfg, RejectsMissingNetSection) {
    EXPECT_THROW(parse_cfg("[convolutional]\nfilters=2\n"), std::invalid_argument);
}

TEST(ParseCfg, RejectsUnknownSection) {
    EXPECT_THROW(parse_cfg("[net]\nwidth=8\nheight=8\n[lstm]\n"),
                 std::invalid_argument);
}

TEST(ParseCfg, RejectsStepsScalesMismatch) {
    EXPECT_THROW(parse_cfg("[net]\nwidth=8\nheight=8\nsteps=1,2\nscales=0.1\n"),
                 std::invalid_argument);
}

TEST(ParseCfg, RejectsUnknownActivation) {
    EXPECT_THROW(parse_cfg("[net]\nwidth=8\nheight=8\nchannels=3\n"
                           "[convolutional]\nfilters=2\nsize=1\nactivation=swish\n"),
                 std::invalid_argument);
}

TEST(EmitCfg, FixpointUnderReparse) {
    Network net = parse_cfg(kTinyCfg);
    const std::string emitted = network_to_cfg(net);
    Network net2 = parse_cfg(emitted);
    const std::string emitted2 = network_to_cfg(net2);
    EXPECT_EQ(emitted, emitted2);
    // Structure is preserved.
    ASSERT_EQ(net2.num_layers(), net.num_layers());
    for (std::size_t i = 0; i < net.num_layers(); ++i) {
        EXPECT_EQ(net2.layer(static_cast<int>(i)).kind(), net.layer(static_cast<int>(i)).kind());
        EXPECT_EQ(net2.layer(static_cast<int>(i)).output_shape(),
                  net.layer(static_cast<int>(i)).output_shape());
    }
}

TEST(LoadCfgFile, MissingFileThrows) {
    EXPECT_THROW(load_cfg_file("/no/such/file.cfg"), std::runtime_error);
}

TEST(LoadCfgFile, RoundTripThroughDisk) {
    const auto path = std::filesystem::temp_directory_path() / "dronet_test.cfg";
    {
        std::ofstream out(path);
        out << kTinyCfg;
    }
    Network net = load_cfg_file(path);
    EXPECT_EQ(net.num_layers(), 4u);
    std::filesystem::remove(path);
}

}  // namespace
}  // namespace dronet
