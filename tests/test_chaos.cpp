// Chaos tests (ctest label `chaos`; run under TSan and ASan in
// scripts/run_all.sh): deterministic fault injection through a live
// DetectionService, asserting every self-healing path rather than hoping for
// it — watchdog respawn after a worker-killing fault, transient-fault retry,
// circuit-breaker shed and recovery, deadline expiry, graceful degradation
// under overload, crash-safe checkpointing, and the shutdown sweep that
// guarantees no submitted future is ever abandoned.
#include <gtest/gtest.h>

#include <atomic>
#include <chrono>
#include <cstdint>
#include <filesystem>
#include <fstream>
#include <future>
#include <iterator>
#include <string>
#include <thread>
#include <vector>

#include "data/dataset.hpp"
#include "fault/fault.hpp"
#include "models/model_zoo.hpp"
#include "nn/clone.hpp"
#include "nn/conv_layer.hpp"
#include "nn/weights_io.hpp"
#include "serve/detection_service.hpp"
#include "video/pipeline.hpp"

namespace dronet {
namespace {

using serve::DetectionService;
using serve::ServeResult;
using serve::ServeStatsSnapshot;
using serve::ServeStatus;

constexpr auto kFutureTimeout = std::chrono::seconds(120);

PipelineConfig low_threshold_pipeline() {
    PipelineConfig pc;
    pc.eval.score_threshold = 5e-4f;
    pc.eval.nms_threshold = 0.45f;
    return pc;
}

/// get() with a generous bound so a regression hangs the assertion, not CI.
ServeResult get_or_die(std::future<ServeResult>& f) {
    if (f.wait_for(kFutureTimeout) != std::future_status::ready) {
        ADD_FAILURE() << "future never resolved (abandoned promise?)";
        return {};
    }
    return f.get();
}

/// The service-wide accounting invariant: once drained, every submitted frame
/// landed in exactly one terminal bucket.
void expect_accounting(const ServeStatsSnapshot& s) {
    EXPECT_EQ(s.submitted,
              s.completed + s.dropped + s.rejected + s.failed + s.deadline_expired)
        << s.to_json();
}

/// Extracts an integer counter from the stats JSON (proves the counters are
/// exported, not just tracked internally).
std::uint64_t json_counter(const std::string& json, const std::string& key) {
    const std::string needle = "\"" + key + "\":";
    const std::size_t at = json.find(needle);
    if (at == std::string::npos) {
        ADD_FAILURE() << key << " missing in " << json;
        return 0;
    }
    return std::stoull(json.substr(at + needle.size()));
}

TEST(Chaos, WorkerKillFaultIsRespawnedAndEveryFutureResolves) {
    if (!fault::compiled_in()) GTEST_SKIP() << "DRONET_FAULTS is off";
    Network net = build_model(ModelId::kDroNet, {.input_size = 96, .filter_scale = 0.35f});
    serve::ServiceConfig sc;
    sc.workers = 1;  // the killed worker IS the service; only a respawn saves it
    sc.queue_capacity = 32;
    sc.watchdog_interval_ms = 5;
    sc.pipeline = low_threshold_pipeline();
    DetectionService service(net, sc);
    const DetectionDataset frames =
        generate_dataset(benchmark_scene_config(96), 4, /*seed=*/7);

    constexpr int kSubmitted = 12;
    int ok = 0, failed = 0;
    {
        fault::ScopedFaultPlan plan("network.forward:kill:nth=3:times=1");
        std::vector<std::future<ServeResult>> futures;
        for (int i = 0; i < kSubmitted; ++i) {
            futures.push_back(
                service.submit(frames.image(static_cast<std::size_t>(i) % frames.size())));
        }
        // Draining past the kill is only possible if the watchdog respawned
        // the sole worker; the remaining frames prove the replica still works.
        for (auto& f : futures) {
            const ServeResult r = get_or_die(f);
            if (r.status == ServeStatus::kOk) ++ok;
            if (r.status == ServeStatus::kFailed) {
                EXPECT_NE(r.error.find("worker died"), std::string::npos) << r.error;
                ++failed;
            }
        }
    }
    EXPECT_EQ(failed, 1);  // exactly the frame the worker held when killed
    EXPECT_EQ(ok, kSubmitted - 1);

    const ServeStatsSnapshot snap = service.stats();
    EXPECT_GE(snap.worker_restarts, 1u);
    EXPECT_EQ(snap.failed, 1u);
    EXPECT_EQ(snap.completed, static_cast<std::uint64_t>(ok));
    expect_accounting(snap);
    EXPECT_GE(json_counter(snap.to_json(), "worker_restarts"), 1u);
    service.stop();
}

TEST(Chaos, TransientForwardFaultIsRetriedToSuccess) {
    if (!fault::compiled_in()) GTEST_SKIP() << "DRONET_FAULTS is off";
    Network net = build_model(ModelId::kDroNet, {.input_size = 96, .filter_scale = 0.35f});
    serve::ServiceConfig sc;
    sc.workers = 1;
    sc.max_retries = 3;
    sc.retry_backoff_ms = 1;
    sc.pipeline = low_threshold_pipeline();
    DetectionService service(net, sc);
    const DetectionDataset frames =
        generate_dataset(benchmark_scene_config(96), 3, /*seed=*/7);

    {
        // Fires on the first two forward calls: the batch attempt and the
        // first solo retry both fail, the second retry succeeds.
        fault::ScopedFaultPlan plan("network.forward:throw:every=1:times=2");
        std::vector<std::future<ServeResult>> futures;
        for (std::size_t i = 0; i < frames.size(); ++i) {
            futures.push_back(service.submit(frames.image(i)));
        }
        for (auto& f : futures) {
            EXPECT_EQ(get_or_die(f).status, ServeStatus::kOk);
        }
    }
    const ServeStatsSnapshot snap = service.stats();
    EXPECT_EQ(snap.completed, frames.size());
    EXPECT_EQ(snap.failed, 0u);
    EXPECT_GE(snap.retries, 1u);
    expect_accounting(snap);
    EXPECT_GE(json_counter(snap.to_json(), "retries"), 1u);
    service.stop();
}

TEST(Chaos, ExpiredDeadlinesResolveTimeoutNotBlock) {
    if (!fault::compiled_in()) GTEST_SKIP() << "DRONET_FAULTS is off";
    Network net = build_model(ModelId::kDroNet, {.input_size = 96, .filter_scale = 0.35f});
    serve::ServiceConfig sc;
    sc.workers = 1;
    sc.queue_capacity = 16;
    sc.deadline_ms = 250;
    sc.pipeline = low_threshold_pipeline();
    DetectionService service(net, sc);
    const DetectionDataset frames =
        generate_dataset(benchmark_scene_config(96), 5, /*seed=*/7);

    int ok = 0, timeout = 0;
    {
        // Every forward sleeps well past the deadline, so frames queued
        // behind the first are already overdue when the worker reaches them.
        fault::ScopedFaultPlan plan("network.forward:latency:latency=600:every=1");
        std::vector<std::future<ServeResult>> futures;
        for (std::size_t i = 0; i < frames.size(); ++i) {
            futures.push_back(service.submit(frames.image(i)));
        }
        for (auto& f : futures) {
            const ServeResult r = get_or_die(f);
            if (r.status == ServeStatus::kOk) ++ok;
            if (r.status == ServeStatus::kTimeout) {
                EXPECT_TRUE(r.frame.detections.empty());
                ++timeout;
            }
        }
    }
    EXPECT_EQ(ok + timeout, static_cast<int>(frames.size()));
    EXPECT_GE(timeout, 3);
    const ServeStatsSnapshot snap = service.stats();
    EXPECT_EQ(snap.deadline_expired, static_cast<std::uint64_t>(timeout));
    expect_accounting(snap);
    EXPECT_GE(json_counter(snap.to_json(), "deadline_expired"), 3u);
    service.stop();
}

TEST(Chaos, BreakerOpensShedsLoadAndRecoversHalfOpen) {
    if (!fault::compiled_in()) GTEST_SKIP() << "DRONET_FAULTS is off";
    Network net = build_model(ModelId::kDroNet, {.input_size = 96, .filter_scale = 0.35f});
    serve::ServiceConfig sc;
    sc.workers = 1;
    sc.breaker_threshold = 2;
    sc.breaker_open_ms = 300;
    sc.pipeline = low_threshold_pipeline();
    DetectionService service(net, sc);
    const DetectionDataset frames =
        generate_dataset(benchmark_scene_config(96), 2, /*seed=*/7);

    {
        // Every forward fails; two consecutive frame failures trip the
        // breaker.
        fault::ScopedFaultPlan plan("network.forward:throw");
        auto f0 = service.submit(frames.image(0));
        auto f1 = service.submit(frames.image(1));
        EXPECT_EQ(get_or_die(f0).status, ServeStatus::kFailed);
        EXPECT_EQ(get_or_die(f1).status, ServeStatus::kFailed);

        // While open, submits are shed synchronously without touching the
        // (still-faulty) network.
        auto shed = service.submit(frames.image(0));
        const ServeResult r = get_or_die(shed);
        EXPECT_EQ(r.status, ServeStatus::kRejected);
        EXPECT_NE(r.error.find("breaker"), std::string::npos) << r.error;
    }

    // After the open window the next submit half-opens the breaker; with the
    // fault gone the trial frame succeeds and the breaker stays closed.
    std::this_thread::sleep_for(std::chrono::milliseconds(350));
    auto trial = service.submit(frames.image(0));
    EXPECT_EQ(get_or_die(trial).status, ServeStatus::kOk);

    const ServeStatsSnapshot snap = service.stats();
    EXPECT_EQ(snap.breaker_opens, 1u);
    EXPECT_GT(snap.breaker_open_ms, 0.0);
    EXPECT_EQ(snap.failed, 2u);
    EXPECT_EQ(snap.rejected, 1u);
    EXPECT_EQ(snap.completed, 1u);
    expect_accounting(snap);
    const std::string json = snap.to_json();
    EXPECT_EQ(json_counter(json, "breaker_opens"), 1u);
    EXPECT_NE(json.find("\"breaker_open_ms\":"), std::string::npos);
    service.stop();
}

TEST(Chaos, OverloadBurstDegradesToFallbackSizeAndRecovers) {
    if (!fault::compiled_in()) GTEST_SKIP() << "DRONET_FAULTS is off";
    Network net = build_model(ModelId::kDroNet, {.input_size = 128, .filter_scale = 0.35f});
    serve::ServiceConfig sc;
    sc.workers = 1;
    sc.queue_capacity = 64;
    sc.degrade_high_watermark = 4;
    sc.degrade_low_watermark = 1;
    sc.degraded_size = 64;
    sc.pipeline = low_threshold_pipeline();
    DetectionService service(net, sc);
    const DetectionDataset frames =
        generate_dataset(benchmark_scene_config(128), 4, /*seed=*/0x5eed);

    constexpr int kBurst = 16;
    {
        // Slow every forward a little so the burst reliably outruns the
        // worker and the queue crosses the high watermark.
        fault::ScopedFaultPlan plan("network.forward:latency:latency=20:every=1");
        std::vector<std::future<ServeResult>> futures;
        for (int i = 0; i < kBurst; ++i) {
            futures.push_back(
                service.submit(frames.image(static_cast<std::size_t>(i) % frames.size())));
        }
        // The burst outran the worker: the service is already in degraded
        // mode before the backlog clears.
        EXPECT_TRUE(service.degraded());
        for (auto& f : futures) {
            EXPECT_EQ(get_or_die(f).status, ServeStatus::kOk);
        }
    }
    // The backlog cleared below the low watermark, so the worker switched
    // back to full resolution before the final frames.
    EXPECT_FALSE(service.degraded());

    const ServeStatsSnapshot snap = service.stats();
    EXPECT_EQ(snap.completed, static_cast<std::uint64_t>(kBurst));
    EXPECT_GE(snap.degraded_frames, 1u);
    EXPECT_LT(snap.degraded_frames, snap.completed);  // recovery frames at full size
    EXPECT_GE(snap.degrade_transitions, 2u);  // at least one full->degraded->full
    expect_accounting(snap);
    const std::string json = snap.to_json();
    EXPECT_GE(json_counter(json, "degraded_frames"), 1u);
    EXPECT_GE(json_counter(json, "degrade_transitions"), 2u);
    service.stop();
}

TEST(Chaos, MidSaveCrashLeavesPreviousCheckpointIntact) {
    if (!fault::compiled_in()) GTEST_SKIP() << "DRONET_FAULTS is off";
    const auto dir = std::filesystem::temp_directory_path() / "dronet_chaos_ckpt";
    std::filesystem::create_directories(dir);
    const auto path = dir / "model.weights";
    const auto tmp = std::filesystem::path(path.string() + ".tmp");

    Network net = build_model(ModelId::kDroNet, {.input_size = 96, .filter_scale = 0.35f});
    save_weights(net, path);
    std::vector<char> before;
    {
        std::ifstream in(path, std::ios::binary);
        before.assign(std::istreambuf_iterator<char>(in), {});
    }
    ASSERT_FALSE(before.empty());

    // Perturb the weights so a *successful* second save would change the file
    // — making "the old checkpoint survived" a non-vacuous assertion.
    auto& conv = dynamic_cast<ConvolutionalLayer&>(net.layer(0));
    conv.weights().v[0] += 1.0f;

    {
        // Crash (exception) after the header and first layer hit the temp
        // file: the in-process stand-in for power loss mid-checkpoint.
        fault::ScopedFaultPlan plan("weights.write:throw:nth=2");
        EXPECT_THROW(save_weights(net, path), fault::FaultInjected);
    }
    std::vector<char> after;
    {
        std::ifstream in(path, std::ios::binary);
        after.assign(std::istreambuf_iterator<char>(in), {});
    }
    EXPECT_EQ(before, after) << "interrupted save corrupted the live checkpoint";
    EXPECT_FALSE(std::filesystem::exists(tmp)) << "temp file leaked";

    // The surviving checkpoint is still loadable...
    Network fresh = build_model(ModelId::kDroNet, {.input_size = 96, .filter_scale = 0.35f});
    EXPECT_NO_THROW(load_weights(fresh, path));

    // ...and a clean save afterwards replaces it atomically.
    save_weights(net, path);
    std::vector<char> replaced;
    {
        std::ifstream in(path, std::ios::binary);
        replaced.assign(std::istreambuf_iterator<char>(in), {});
    }
    EXPECT_NE(before, replaced);
    EXPECT_NO_THROW(load_weights(fresh, path));
    std::filesystem::remove_all(dir);
}

TEST(Chaos, DirFsyncFaultAfterRenameSurfacesWithoutCorruptingCheckpoint) {
    if (!fault::compiled_in()) GTEST_SKIP() << "DRONET_FAULTS is off";
    const auto dir =
        std::filesystem::temp_directory_path() / "dronet_chaos_dirsync";
    std::filesystem::create_directories(dir);
    const auto path = dir / "model.weights";
    const auto tmp = std::filesystem::path(path.string() + ".tmp");

    Network net = build_model(ModelId::kDroNet, {.input_size = 96, .filter_scale = 0.35f});
    save_weights(net, path);
    auto& conv = dynamic_cast<ConvolutionalLayer&>(net.layer(0));
    conv.weights().v[0] += 1.0f;

    {
        // Fault between rename(2) and the parent-directory fsync: the new
        // checkpoint's data and name are in place, but the directory entry's
        // durability is not guaranteed yet — save_weights must surface that
        // instead of reporting success.
        fault::ScopedFaultPlan plan("weights.dir_fsync:throw");
        EXPECT_THROW(save_weights(net, path), fault::FaultInjected);
        auto& inj = fault::FaultInjector::instance();
        EXPECT_EQ(inj.calls(fault::kSiteWeightsDirFsync), 1u);
        EXPECT_EQ(inj.fires(fault::kSiteWeightsDirFsync), 1u);
    }
    EXPECT_FALSE(std::filesystem::exists(tmp)) << "temp file leaked";

    // Whichever generation the crash would leave behind, the visible file is
    // a complete, loadable checkpoint — never a torn one.
    Network fresh = build_model(ModelId::kDroNet, {.input_size = 96, .filter_scale = 0.35f});
    EXPECT_NO_THROW(load_weights(fresh, path));

    // A clean retry commits durably.
    EXPECT_NO_THROW(save_weights(net, path));
    EXPECT_NO_THROW(load_weights(fresh, path));
    std::filesystem::remove_all(dir);
}

TEST(Chaos, StopSweepsQueuedFramesSoNoFutureBlocksForever) {
    if (!fault::compiled_in()) GTEST_SKIP() << "DRONET_FAULTS is off";
    Network net = build_model(ModelId::kDroNet, {.input_size = 96, .filter_scale = 0.35f});
    serve::ServiceConfig sc;
    sc.workers = 1;
    sc.watchdog = false;  // nobody revives the worker: frames stay queued
    sc.queue_capacity = 16;
    sc.pipeline = low_threshold_pipeline();
    DetectionService service(net, sc);
    const DetectionDataset frames =
        generate_dataset(benchmark_scene_config(96), 5, /*seed=*/7);

    fault::ScopedFaultPlan plan("network.forward:kill:every=1");
    std::vector<std::future<ServeResult>> futures;
    for (std::size_t i = 0; i < frames.size(); ++i) {
        futures.push_back(service.submit(frames.image(i)));
    }
    // Wait until the sole worker has died holding the first frame.
    const auto give_up = std::chrono::steady_clock::now() + kFutureTimeout;
    while (service.stats().failed == 0 &&
           std::chrono::steady_clock::now() < give_up) {
        std::this_thread::sleep_for(std::chrono::milliseconds(2));
    }
    ASSERT_GE(service.stats().failed, 1u) << "worker never hit the kill fault";

    service.stop();
    // Regression contract for stop(): every future is ready the moment stop()
    // returns — queued frames were swept with kShutdown, none abandoned.
    int failed = 0, shutdown = 0;
    for (auto& f : futures) {
        ASSERT_EQ(f.wait_for(std::chrono::seconds(0)), std::future_status::ready)
            << "future left unresolved by stop()";
        const ServeResult r = f.get();
        if (r.status == ServeStatus::kFailed) ++failed;
        if (r.status == ServeStatus::kShutdown) {
            EXPECT_NE(r.error.find("stopped"), std::string::npos) << r.error;
            ++shutdown;
        }
    }
    EXPECT_EQ(failed, 1);
    EXPECT_EQ(shutdown, static_cast<int>(frames.size()) - 1);
    expect_accounting(service.stats());
}

TEST(Chaos, TruncatedWeightsReadReportsExpectedVsActual) {
    if (!fault::compiled_in()) GTEST_SKIP() << "DRONET_FAULTS is off";
    const auto dir = std::filesystem::temp_directory_path() / "dronet_chaos_short";
    std::filesystem::create_directories(dir);
    const auto path = dir / "model.weights";
    Network net = build_model(ModelId::kDroNet, {.input_size = 96, .filter_scale = 0.35f});
    save_weights(net, path);

    // A short read mid-stream must surface as a clean truncation error even
    // when the on-disk byte count is exactly right.
    fault::ScopedFaultPlan plan("weights.read:short-read:bytes=64:nth=2");
    Network fresh = build_model(ModelId::kDroNet, {.input_size = 96, .filter_scale = 0.35f});
    try {
        load_weights(fresh, path);
        FAIL() << "short read went unnoticed";
    } catch (const std::runtime_error& e) {
        EXPECT_NE(std::string(e.what()).find("truncated"), std::string::npos) << e.what();
    }
    std::filesystem::remove_all(dir);
}

}  // namespace
}  // namespace dronet
