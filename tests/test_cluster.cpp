// Tests for the sharded serving tier (src/cluster): wire-protocol codecs and
// framing, the WorkerServer loop over a real socketpair, and the Router —
// dispatch, admission control, retry-on-worker-loss, the eject/half-open/
// re-admit breaker, and spawned serve_worker processes end to end. These
// carry the `cluster` ctest label; scripts/run_all.sh re-runs them under
// AddressSanitizer. The worker-kill chaos runs live in test_cluster_chaos.
#include <gtest/gtest.h>

#include <signal.h>
#include <sys/socket.h>
#include <sys/types.h>
#include <sys/wait.h>
#include <unistd.h>

#include <atomic>
#include <chrono>
#include <cstdint>
#include <cstring>
#include <filesystem>
#include <future>
#include <map>
#include <mutex>
#include <string>
#include <thread>
#include <vector>

#include "cluster/protocol.hpp"
#include "cluster/router.hpp"
#include "cluster/worker.hpp"
#include "data/dataset.hpp"
#include "io/fdio.hpp"
#include "models/model_zoo.hpp"
#include "nn/clone.hpp"
#include "nn/conv_layer.hpp"
#include "nn/weights_io.hpp"
#include "serve/detection_service.hpp"
#include "tensor/rng.hpp"
#include "video/pipeline.hpp"

#ifndef DRONET_SERVE_WORKER_PATH
#define DRONET_SERVE_WORKER_PATH ""
#endif

namespace dronet {
namespace {

using cluster::Frame;
using cluster::Opcode;
using serve::ServeResult;
using serve::ServeStatus;

struct SocketPair {
    io::UniqueFd a;
    io::UniqueFd b;
    SocketPair() {
        int sv[2];
        if (::socketpair(AF_UNIX, SOCK_STREAM, 0, sv) != 0) {
            throw std::system_error(errno, std::generic_category(), "socketpair");
        }
        a.reset(sv[0]);
        b.reset(sv[1]);
    }
};

PipelineConfig low_threshold_pipeline() {
    // Near-zero threshold so random-weight networks emit detections and the
    // end-to-end comparisons below are non-vacuous without checkpoints.
    PipelineConfig pc;
    pc.eval.score_threshold = 5e-4f;
    pc.eval.nms_threshold = 0.45f;
    return pc;
}

Image patterned_image(int w, int h, int c, float scale) {
    Image img(w, h, c);
    for (std::size_t i = 0; i < img.size(); ++i) {
        img.data()[i] = scale * static_cast<float>(i % 97) / 97.0f;
    }
    return img;
}

void randomize_params(Network& net, std::uint64_t seed) {
    Rng rng(seed);
    for (std::size_t i = 0; i < net.num_layers(); ++i) {
        for (Param* p : net.layer(static_cast<int>(i)).params()) {
            rng.fill_uniform(p->v, -1.0f, 1.0f);
        }
        if (auto* conv = dynamic_cast<ConvolutionalLayer*>(
                &net.layer(static_cast<int>(i)))) {
            if (conv->config().batch_normalize) {
                rng.fill_uniform(conv->rolling_mean(), -0.5f, 0.5f);
                rng.fill_uniform(conv->rolling_variance(), 0.5f, 1.5f);
            }
        }
    }
}

/// Saves a same-architecture checkpoint with different (seeded) weights —
/// the rollout candidate. Spawned serve_worker processes at the same size and
/// filter scale build the identical deterministic model, so the candidate is
/// loadable by every worker in the fleet.
std::filesystem::path save_perturbed_checkpoint(const Network& live,
                                                const char* name,
                                                std::uint64_t seed) {
    Network cand = clone_network(live);
    randomize_params(cand, seed);
    // Per-process filename: ctest runs test_cluster and test_cluster_inproc
    // (same binary, different filter) concurrently.
    const auto path = std::filesystem::temp_directory_path() /
                      (std::string(name) + "." + std::to_string(::getpid()) +
                       ".weights");
    save_weights(cand, path);
    return path;
}

// ---- protocol ---------------------------------------------------------------

TEST(Protocol, FrameRoundTripOverSocketpair) {
    SocketPair sp;
    const std::vector<std::uint8_t> payload = {1, 2, 3, 250, 251};
    cluster::write_frame(sp.a.get(), Opcode::kDetectRequest, 42, payload);
    Frame f;
    ASSERT_TRUE(cluster::read_frame(sp.b.get(), f));
    EXPECT_EQ(f.header.magic, cluster::kMagic);
    EXPECT_EQ(f.header.version, cluster::kProtocolVersion);
    EXPECT_EQ(static_cast<Opcode>(f.header.opcode), Opcode::kDetectRequest);
    EXPECT_EQ(f.header.request_id, 42u);
    EXPECT_EQ(f.payload, payload);
}

TEST(Protocol, CleanEofReturnsFalseMidFrameEofThrows) {
    {
        SocketPair sp;
        sp.a.reset();  // peer closed without writing
        Frame f;
        EXPECT_FALSE(cluster::read_frame(sp.b.get(), f));
    }
    {
        SocketPair sp;
        const std::uint8_t half_header[10] = {};
        io::write_full(sp.a.get(), half_header, sizeof(half_header));
        sp.a.reset();  // EOF inside the header
        Frame f;
        EXPECT_THROW((void)cluster::read_frame(sp.b.get(), f), std::runtime_error);
    }
}

TEST(Protocol, RejectsBadMagicAndBadVersion) {
    {
        SocketPair sp;
        cluster::FrameHeader h;
        h.magic = 0xdeadbeef;
        io::write_full(sp.a.get(), &h, sizeof(h));
        Frame f;
        EXPECT_THROW((void)cluster::read_frame(sp.b.get(), f), std::runtime_error);
    }
    {
        SocketPair sp;
        cluster::FrameHeader h;
        h.version = cluster::kProtocolVersion + 1;
        io::write_full(sp.a.get(), &h, sizeof(h));
        Frame f;
        EXPECT_THROW((void)cluster::read_frame(sp.b.get(), f), std::runtime_error);
    }
}

TEST(Protocol, DetectRequestRoundTripPreservesPixels) {
    const Image img = patterned_image(17, 11, 3, 1.0f);
    const Image back = cluster::decode_detect_request(cluster::encode_detect_request(img));
    ASSERT_EQ(back.width(), 17);
    ASSERT_EQ(back.height(), 11);
    ASSERT_EQ(back.channels(), 3);
    ASSERT_EQ(back.size(), img.size());
    EXPECT_EQ(std::memcmp(back.data(), img.data(), img.size() * sizeof(float)), 0);
}

TEST(Protocol, DetectResponseRoundTripPreservesEverything) {
    cluster::WireDetectResult r;
    r.status = ServeStatus::kFailed;
    r.frame_index = -7;
    r.timings.queue_wait_ms = 1.5;
    r.timings.preprocess_ms = 0.25;
    r.timings.forward_ms = 12.75;
    r.timings.postprocess_ms = 0.125;
    Detection d;
    d.box = {0.1f, 0.2f, 0.3f, 0.4f};
    d.objectness = 0.9f;
    d.class_prob = 0.8f;
    d.class_id = 3;
    r.detections = {d, d};
    r.error = "forward failed: injected";
    const cluster::WireDetectResult back =
        cluster::decode_detect_response(cluster::encode_detect_response(r));
    EXPECT_EQ(back.status, r.status);
    EXPECT_EQ(back.frame_index, r.frame_index);
    EXPECT_DOUBLE_EQ(back.timings.forward_ms, r.timings.forward_ms);
    ASSERT_EQ(back.detections.size(), 2u);
    EXPECT_FLOAT_EQ(back.detections[1].box.w, 0.3f);
    EXPECT_EQ(back.detections[1].class_id, 3);
    EXPECT_EQ(back.error, r.error);
}

TEST(Protocol, PongStatsAndErrorRoundTrip) {
    const cluster::WorkerGauges g{3, 2, 12345};
    const cluster::WorkerGauges gb = cluster::decode_pong(cluster::encode_pong(g));
    EXPECT_EQ(gb.queue_depth, 3u);
    EXPECT_EQ(gb.in_flight, 2u);
    EXPECT_EQ(gb.uptime_ms, 12345u);

    serve::ServeStats stats;
    stats.record_submitted();
    stats.record_completed({.queue_wait_ms = 1, .preprocess_ms = 1,
                            .forward_ms = 5, .postprocess_ms = 1});
    serve::ServeStatsSnapshot snap = stats.snapshot();
    snap.queue_depth = 4;
    snap.in_flight = 1;
    snap.uptime_ms = 99;
    const cluster::WireStats ws =
        cluster::decode_stats_response(cluster::encode_stats_response(snap));
    EXPECT_EQ(ws.submitted, 1u);
    EXPECT_EQ(ws.completed, 1u);
    EXPECT_EQ(ws.gauges.queue_depth, 4u);
    EXPECT_EQ(ws.gauges.uptime_ms, 99u);
    EXPECT_EQ(ws.json, snap.to_json());

    EXPECT_EQ(cluster::decode_error(cluster::encode_error("boom")), "boom");
}

TEST(Protocol, TruncatedPayloadDecodesAsError) {
    cluster::WireDetectResult r;
    r.detections.resize(3);
    std::vector<std::uint8_t> payload = cluster::encode_detect_response(r);
    payload.resize(payload.size() / 2);
    EXPECT_THROW((void)cluster::decode_detect_response(payload), std::runtime_error);
    EXPECT_THROW((void)cluster::decode_pong({1, 2, 3}), std::runtime_error);
    EXPECT_THROW((void)cluster::decode_detect_request({0, 0}), std::runtime_error);
}

// ---- WorkerServer over a live socketpair ------------------------------------

TEST(WorkerServer, ServesDetectPingStatsAndShutdownAck) {
    Network net = build_model(ModelId::kDroNet, {.input_size = 64, .filter_scale = 0.25f});
    serve::ServiceConfig sc;
    sc.workers = 1;
    sc.pipeline = low_threshold_pipeline();
    serve::DetectionService service(net, sc);

    SocketPair sp;
    std::atomic<std::uint64_t> served{0};
    std::thread worker([&, fd = sp.b.get()] {
        cluster::WorkerServer server(service, fd);
        served.store(server.run());
        sp.b.reset();  // our side of the hang-up, after the ack
    });

    const DetectionDataset frames =
        generate_dataset(benchmark_scene_config(64), 2, /*seed=*/3);
    cluster::write_frame(sp.a.get(), Opcode::kDetectRequest, 101,
                         cluster::encode_detect_request(frames.image(0)));
    cluster::write_frame(sp.a.get(), Opcode::kDetectRequest, 102,
                         cluster::encode_detect_request(frames.image(1)));
    cluster::write_frame(sp.a.get(), Opcode::kPing, 103, nullptr, 0);
    cluster::write_frame(sp.a.get(), Opcode::kStatsRequest, 104, nullptr, 0);
    cluster::write_frame(sp.a.get(), Opcode::kShutdown, 0, nullptr, 0);

    std::map<std::uint64_t, Opcode> replies;
    bool got_ack = false;
    Frame f;
    while (cluster::read_frame(sp.a.get(), f)) {
        const auto op = static_cast<Opcode>(f.header.opcode);
        if (op == Opcode::kShutdownAck) {
            got_ack = true;
        } else {
            replies[f.header.request_id] = op;
            if (op == Opcode::kDetectResponse) {
                const cluster::WireDetectResult r =
                    cluster::decode_detect_response(f.payload);
                EXPECT_EQ(r.status, ServeStatus::kOk);
            }
        }
    }
    worker.join();
    service.stop();
    EXPECT_EQ(served.load(), 2u);
    EXPECT_TRUE(got_ack);
    ASSERT_EQ(replies.size(), 4u);
    EXPECT_EQ(replies[101], Opcode::kDetectResponse);
    EXPECT_EQ(replies[102], Opcode::kDetectResponse);
    EXPECT_EQ(replies[103], Opcode::kPong);
    EXPECT_EQ(replies[104], Opcode::kStatsResponse);
}

TEST(WorkerServer, MalformedDetectRequestGetsErrorReply) {
    Network net = build_model(ModelId::kDroNet, {.input_size = 64, .filter_scale = 0.25f});
    serve::ServiceConfig sc;
    sc.workers = 1;
    serve::DetectionService service(net, sc);

    SocketPair sp;
    std::thread worker([&, fd = sp.b.get()] {
        cluster::WorkerServer server(service, fd);
        (void)server.run();
        sp.b.reset();
    });
    cluster::write_frame(sp.a.get(), Opcode::kDetectRequest, 7,
                         std::vector<std::uint8_t>{1, 2, 3});  // truncated
    cluster::write_frame(sp.a.get(), Opcode::kShutdown, 0, nullptr, 0);
    bool got_error = false;
    Frame f;
    while (cluster::read_frame(sp.a.get(), f)) {
        if (static_cast<Opcode>(f.header.opcode) == Opcode::kError &&
            f.header.request_id == 7) {
            got_error = true;
            EXPECT_NE(cluster::decode_error(f.payload).find("truncated"),
                      std::string::npos);
        }
    }
    worker.join();
    service.stop();
    EXPECT_TRUE(got_error);
}

TEST(WorkerServer, ReloadSwapsRollsBackAndRejectsBadCandidates) {
    Network net = build_model(ModelId::kDroNet, {.input_size = 64, .filter_scale = 0.25f});
    const auto path =
        save_perturbed_checkpoint(net, "dronet_worker_reload", 0x31);
    serve::ServiceConfig sc;
    sc.workers = 1;
    sc.pipeline = low_threshold_pipeline();
    serve::DetectionService service(net, sc);

    SocketPair sp;
    std::thread worker([&, fd = sp.b.get()] {
        cluster::WorkerServer server(service, fd);
        (void)server.run();
        sp.b.reset();
    });

    auto roundtrip = [&](const cluster::WireReloadRequest& req,
                         std::uint64_t id) {
        cluster::write_frame(sp.a.get(), Opcode::kReloadRequest, id,
                             cluster::encode_reload_request(req));
        Frame f;
        while (cluster::read_frame(sp.a.get(), f)) {
            if (static_cast<Opcode>(f.header.opcode) == Opcode::kReloadResponse &&
                f.header.request_id == id) {
                return cluster::decode_reload_response(f.payload);
            }
        }
        throw std::runtime_error("worker hung up before the reload reply");
    };

    // Commit the candidate, roll it back, then watch a bad path get rejected
    // with the live model untouched — all over the wire, on the worker's
    // dedicated reload thread (the reader keeps answering in the meantime).
    const cluster::WireReloadResponse swapped =
        roundtrip({.rollback = false, .weights_path = path.string()}, 301);
    EXPECT_TRUE(swapped.ok) << swapped.error;
    EXPECT_EQ(swapped.model_version, 2u);
    const cluster::WireReloadResponse rolled =
        roundtrip({.rollback = true, .weights_path = ""}, 302);
    EXPECT_TRUE(rolled.ok) << rolled.error;
    EXPECT_EQ(rolled.model_version, 1u);
    const cluster::WireReloadResponse rejected = roundtrip(
        {.rollback = false, .weights_path = "/nonexistent/nope.weights"}, 303);
    EXPECT_FALSE(rejected.ok);
    EXPECT_FALSE(rejected.error.empty());
    EXPECT_EQ(rejected.model_version, 1u);

    cluster::write_frame(sp.a.get(), Opcode::kShutdown, 0, nullptr, 0);
    Frame f;
    while (cluster::read_frame(sp.a.get(), f)) {
    }
    worker.join();
    service.stop();
    EXPECT_EQ(service.model_version(), 1u);
}

// ---- a scriptable fake worker for deterministic Router tests ----------------

/// Speaks the wire protocol on one socketpair end but only answers when the
/// test says so: detect requests are held until release_all(), pings are
/// answered only while answer_pings is on. That makes admission, dispatch,
/// retry, and breaker transitions deterministic — no timing races on real
/// compute.
class FakeWorker {
  public:
    explicit FakeWorker(io::UniqueFd fd)
        : fd_(std::move(fd)), thread_([this] { loop(); }) {}
    ~FakeWorker() {
        disconnect();
        join();
    }

    void join() {
        if (thread_.joinable()) thread_.join();
    }

    /// Severs the connection abruptly, as a crashed worker process would.
    void disconnect() {
        if (fd_) ::shutdown(fd_.get(), SHUT_RDWR);
    }

    void set_answer_pings(bool v) { answer_pings_.store(v); }

    /// Scripted verdict for subsequent reload requests (rollbacks always
    /// succeed, like the real service keeping prev_set_ around).
    void set_reload_ok(bool v) { reload_ok_.store(v); }
    int reload_requests() { return reload_requests_.load(); }
    int rollback_requests() { return rollback_requests_.load(); }

    std::size_t held() {
        std::lock_guard<std::mutex> lock(mu_);
        return held_.size();
    }

    /// Answers every held detect request with an empty kOk result.
    void release_all() {
        std::vector<std::uint64_t> ids;
        {
            std::lock_guard<std::mutex> lock(mu_);
            ids.swap(held_);
        }
        cluster::WireDetectResult ok;
        const std::vector<std::uint8_t> payload = cluster::encode_detect_response(ok);
        std::lock_guard<std::mutex> wl(write_mu_);
        for (std::uint64_t id : ids) {
            cluster::write_frame(fd_.get(), Opcode::kDetectResponse, id, payload);
        }
    }

    /// Waits until `n` detect requests are held (generous deadline).
    [[nodiscard]] bool wait_for_held(std::size_t n,
                                     std::chrono::seconds deadline =
                                         std::chrono::seconds(30)) {
        const auto until = std::chrono::steady_clock::now() + deadline;
        while (std::chrono::steady_clock::now() < until) {
            if (held() >= n) return true;
            std::this_thread::sleep_for(std::chrono::milliseconds(2));
        }
        return held() >= n;
    }

  private:
    void loop() {
        try {
            Frame f;
            while (cluster::read_frame(fd_.get(), f)) {
                switch (static_cast<Opcode>(f.header.opcode)) {
                    case Opcode::kDetectRequest: {
                        std::lock_guard<std::mutex> lock(mu_);
                        held_.push_back(f.header.request_id);
                        break;
                    }
                    case Opcode::kPing:
                        if (answer_pings_.load()) {
                            std::lock_guard<std::mutex> wl(write_mu_);
                            cluster::write_frame(fd_.get(), Opcode::kPong,
                                                 f.header.request_id,
                                                 cluster::encode_pong({}));
                        }
                        break;
                    case Opcode::kReloadRequest: {
                        const cluster::WireReloadRequest req =
                            cluster::decode_reload_request(f.payload);
                        cluster::WireReloadResponse resp;
                        if (req.rollback) {
                            rollback_requests_.fetch_add(1);
                            resp.ok = true;
                            resp.model_version = 1;
                        } else {
                            reload_requests_.fetch_add(1);
                            resp.ok = reload_ok_.load();
                            resp.model_version = resp.ok ? 2 : 1;
                            if (!resp.ok) resp.error = "canary rejected candidate";
                        }
                        std::lock_guard<std::mutex> wl(write_mu_);
                        cluster::write_frame(fd_.get(), Opcode::kReloadResponse,
                                             f.header.request_id,
                                             cluster::encode_reload_response(resp));
                        break;
                    }
                    case Opcode::kShutdown: {
                        release_all();  // drain like a real worker would
                        std::lock_guard<std::mutex> wl(write_mu_);
                        cluster::write_frame(fd_.get(), Opcode::kShutdownAck, 0,
                                             nullptr, 0);
                        return;
                    }
                    default:
                        break;  // stats requests left unanswered on purpose
                }
            }
        } catch (...) {
            // Disconnected mid-frame — exactly what disconnect() simulates.
        }
    }

    io::UniqueFd fd_;
    std::mutex mu_;
    std::vector<std::uint64_t> held_;
    std::mutex write_mu_;
    std::atomic<bool> answer_pings_{true};
    std::atomic<bool> reload_ok_{true};
    std::atomic<int> reload_requests_{0};
    std::atomic<int> rollback_requests_{0};
    std::thread thread_;
};

cluster::RouterConfig adopt_config(std::vector<int> fds) {
    cluster::RouterConfig rc;
    rc.adopt_fds = std::move(fds);
    rc.health_interval_ms = 20;
    rc.health_timeout_ms = 200;
    return rc;
}

// ---- Router with adopted in-process workers ---------------------------------

TEST(Router, AdoptedWorkerEndToEndMatchesSerialPipeline) {
    Network net = build_model(ModelId::kDroNet, {.input_size = 64, .filter_scale = 0.25f});
    const PipelineConfig pc = low_threshold_pipeline();
    serve::ServiceConfig sc;
    sc.workers = 1;
    sc.pipeline = pc;
    serve::DetectionService service(net, sc);

    SocketPair sp;
    const int adopt_fd = sp.a.release();
    std::thread worker([&, fd = sp.b.get()] {
        cluster::WorkerServer server(service, fd);
        (void)server.run();
    });

    const DetectionDataset frames =
        generate_dataset(benchmark_scene_config(64), 6, /*seed=*/11);
    {
        cluster::Router router(adopt_config({adopt_fd}));
        std::vector<std::future<ServeResult>> futures;
        for (int i = 0; i < 6; ++i) {
            futures.push_back(router.submit(/*client_id=*/1 + (i % 2),
                                            frames.image(i)));
        }
        // Serial reference on a replica-equivalent path: the fleet must be
        // bit-identical to the in-process pipeline, wire transfer included.
        Network ref = build_model(ModelId::kDroNet, {.input_size = 64, .filter_scale = 0.25f});
        DetectionPipeline serial(ref, pc);
        for (int i = 0; i < 6; ++i) {
            const ServeResult r = futures[static_cast<std::size_t>(i)].get();
            ASSERT_EQ(r.status, ServeStatus::kOk) << "frame " << i;
            const Detections expected = serial.process(frames.image(i)).detections;
            ASSERT_EQ(r.frame.detections.size(), expected.size()) << "frame " << i;
            for (std::size_t d = 0; d < expected.size(); ++d) {
                EXPECT_EQ(std::memcmp(&r.frame.detections[d].box,
                                      &expected[d].box, sizeof(Box)), 0);
            }
        }
        const cluster::FleetStats fs = router.fleet_stats();
        EXPECT_TRUE(fs.accounting_ok()) << fs.to_json();
        EXPECT_EQ(fs.ok, 6u);
        ASSERT_EQ(fs.workers.size(), 1u);
        EXPECT_EQ(fs.workers[0].completed, 6u);
        EXPECT_NE(fs.to_json().find("\"aggregate\""), std::string::npos);
        router.stop();
    }
    worker.join();
    service.stop();
}

TEST(Router, ClientInflightCapShedsAsRejected) {
    SocketPair sp;
    const int adopt_fd = sp.a.release();
    FakeWorker fake(std::move(sp.b));
    cluster::RouterConfig rc = adopt_config({adopt_fd});
    rc.client_max_inflight = 2;
    rc.worker_inflight_limit = 0;  // unlimited: only admission sheds
    cluster::Router router(rc);

    const Image img = patterned_image(8, 8, 3, 1.0f);
    std::vector<std::future<ServeResult>> futures;
    for (int i = 0; i < 4; ++i) futures.push_back(router.submit(/*client*/ 5, img));
    ASSERT_TRUE(fake.wait_for_held(2));
    // Frames 3 and 4 breached the cap: resolved immediately, no dispatch.
    EXPECT_EQ(futures[2].wait_for(std::chrono::seconds(10)),
              std::future_status::ready);
    ServeResult r3 = futures[2].get();
    EXPECT_EQ(r3.status, ServeStatus::kRejected);
    EXPECT_NE(r3.error.find("in-flight"), std::string::npos) << r3.error;
    EXPECT_EQ(futures[3].get().status, ServeStatus::kRejected);
    // A different client is not throttled by client 5's backlog.
    std::future<ServeResult> other = router.submit(/*client*/ 6, img);
    ASSERT_TRUE(fake.wait_for_held(3));
    fake.release_all();
    EXPECT_EQ(futures[0].get().status, ServeStatus::kOk);
    EXPECT_EQ(futures[1].get().status, ServeStatus::kOk);
    EXPECT_EQ(other.get().status, ServeStatus::kOk);
    const cluster::FleetStats fs = router.fleet_stats(/*timeout_ms=*/100);
    EXPECT_TRUE(fs.accounting_ok());
    EXPECT_EQ(fs.rejected_admission, 2u);
    EXPECT_EQ(fs.ok, 3u);
    router.stop();
}

TEST(Router, TokenBucketQuotaShedsAsRejected) {
    SocketPair sp;
    const int adopt_fd = sp.a.release();
    FakeWorker fake(std::move(sp.b));
    cluster::RouterConfig rc = adopt_config({adopt_fd});
    rc.client_rate_per_s = 1e-9;  // effectively no refill inside the test
    rc.client_burst = 2;
    rc.worker_inflight_limit = 0;
    cluster::Router router(rc);

    const Image img = patterned_image(8, 8, 3, 1.0f);
    std::vector<std::future<ServeResult>> futures;
    for (int i = 0; i < 4; ++i) futures.push_back(router.submit(/*client*/ 9, img));
    ASSERT_TRUE(fake.wait_for_held(2));
    fake.release_all();
    EXPECT_EQ(futures[0].get().status, ServeStatus::kOk);
    EXPECT_EQ(futures[1].get().status, ServeStatus::kOk);
    ServeResult r3 = futures[2].get();
    EXPECT_EQ(r3.status, ServeStatus::kRejected);
    EXPECT_NE(r3.error.find("quota"), std::string::npos) << r3.error;
    EXPECT_EQ(futures[3].get().status, ServeStatus::kRejected);
    const cluster::FleetStats fs = router.fleet_stats(/*timeout_ms=*/100);
    EXPECT_TRUE(fs.accounting_ok());
    EXPECT_EQ(fs.rejected_quota, 2u);
    router.stop();
}

TEST(Router, RoundRobinAlternatesAcrossWorkers) {
    SocketPair spa;
    SocketPair spb;
    const int fd_a = spa.a.release();
    const int fd_b = spb.a.release();
    FakeWorker fake_a(std::move(spa.b));
    FakeWorker fake_b(std::move(spb.b));
    cluster::RouterConfig rc = adopt_config({fd_a, fd_b});
    rc.dispatch = cluster::DispatchPolicy::kRoundRobin;
    rc.worker_inflight_limit = 0;
    cluster::Router router(rc);

    const Image img = patterned_image(8, 8, 3, 1.0f);
    std::vector<std::future<ServeResult>> futures;
    for (int i = 0; i < 4; ++i) futures.push_back(router.submit(1, img));
    ASSERT_TRUE(fake_a.wait_for_held(2));
    ASSERT_TRUE(fake_b.wait_for_held(2));
    EXPECT_EQ(fake_a.held(), 2u);
    EXPECT_EQ(fake_b.held(), 2u);
    fake_a.release_all();
    fake_b.release_all();
    for (auto& f : futures) EXPECT_EQ(f.get().status, ServeStatus::kOk);
    router.stop();
}

TEST(Router, LostWorkerRetriesInflightFramesOnHealthyOne) {
    SocketPair spa;
    SocketPair spb;
    const int fd_a = spa.a.release();
    const int fd_b = spb.a.release();
    FakeWorker fake_a(std::move(spa.b));
    FakeWorker fake_b(std::move(spb.b));
    cluster::RouterConfig rc = adopt_config({fd_a, fd_b});
    rc.dispatch = cluster::DispatchPolicy::kRoundRobin;
    rc.worker_inflight_limit = 0;
    rc.max_retries = 1;
    cluster::Router router(rc);

    const Image img = patterned_image(8, 8, 3, 1.0f);
    auto f0 = router.submit(1, img);  // slot 0 (fake_a)
    auto f1 = router.submit(1, img);  // slot 1 (fake_b)
    ASSERT_TRUE(fake_a.wait_for_held(1));
    ASSERT_TRUE(fake_b.wait_for_held(1));

    fake_a.disconnect();  // crash: its in-flight frame must move to fake_b
    ASSERT_TRUE(fake_b.wait_for_held(2));
    fake_b.release_all();
    EXPECT_EQ(f0.get().status, ServeStatus::kOk);
    EXPECT_EQ(f1.get().status, ServeStatus::kOk);
    const cluster::FleetStats fs = router.fleet_stats(/*timeout_ms=*/100);
    EXPECT_TRUE(fs.accounting_ok());
    EXPECT_EQ(fs.retried, 1u);
    EXPECT_EQ(fs.worker_deaths, 1u);
    EXPECT_EQ(fs.ok, 2u);
    router.stop();
}

TEST(Router, EjectsUnresponsiveWorkerThenReadmitsViaHalfOpen) {
    SocketPair sp;
    const int adopt_fd = sp.a.release();
    FakeWorker fake(std::move(sp.b));
    cluster::RouterConfig rc = adopt_config({adopt_fd});
    rc.health_interval_ms = 10;
    rc.health_timeout_ms = 30;
    rc.eject_threshold = 2;
    rc.readmit_ms = 50;
    rc.max_retries = 0;  // a stranded frame has nowhere to go: kShutdown
    cluster::Router router(rc);

    const Image img = patterned_image(8, 8, 3, 1.0f);
    auto held_future = router.submit(1, img);
    ASSERT_TRUE(fake.wait_for_held(1));

    fake.set_answer_pings(false);  // worker wedges
    // The breaker may already be cycling ejected <-> half-open (readmit_ms is
    // tiny); any non-kUp state is "breaker open" for this assertion.
    const auto deadline = std::chrono::steady_clock::now() + std::chrono::seconds(30);
    while (router.worker_state(0) == cluster::WorkerState::kUp &&
           std::chrono::steady_clock::now() < deadline) {
        std::this_thread::sleep_for(std::chrono::milliseconds(5));
    }
    ASSERT_NE(router.worker_state(0), cluster::WorkerState::kUp);
    // The ejected worker's in-flight frame resolved (kShutdown: no budget,
    // no healthy peer) instead of hanging.
    ASSERT_EQ(held_future.wait_for(std::chrono::seconds(10)),
              std::future_status::ready);
    EXPECT_EQ(held_future.get().status, ServeStatus::kShutdown);
    // With no healthy worker, new submits shed immediately.
    EXPECT_EQ(router.submit(1, img).get().status, ServeStatus::kRejected);

    fake.set_answer_pings(true);  // worker recovers
    while (router.worker_state(0) != cluster::WorkerState::kUp &&
           std::chrono::steady_clock::now() < deadline) {
        std::this_thread::sleep_for(std::chrono::milliseconds(5));
    }
    ASSERT_EQ(router.worker_state(0), cluster::WorkerState::kUp);
    auto after = router.submit(1, img);
    // The fake still holds the pre-eject request (its answer will be stale and
    // ignored by the router), so the new frame is the second held entry.
    ASSERT_TRUE(fake.wait_for_held(2));
    fake.release_all();
    EXPECT_EQ(after.get().status, ServeStatus::kOk);
    const cluster::FleetStats fs = router.fleet_stats(/*timeout_ms=*/100);
    EXPECT_TRUE(fs.accounting_ok()) << fs.to_json();
    EXPECT_GE(fs.worker_ejects, 1u);
    EXPECT_GE(fs.worker_readmits, 1u);
    router.stop();
}

TEST(Router, StopResolvesHeldFramesAsShutdown) {
    SocketPair sp;
    const int adopt_fd = sp.a.release();
    FakeWorker fake(std::move(sp.b));
    cluster::RouterConfig rc = adopt_config({adopt_fd});
    rc.shutdown_timeout_ms = 200;  // fake drains on kShutdown, so this is slack
    cluster::Router router(rc);
    const Image img = patterned_image(8, 8, 3, 1.0f);
    auto fut = router.submit(1, img);
    ASSERT_TRUE(fake.wait_for_held(1));
    router.stop();  // fake answers the held frame during its shutdown drain
    ASSERT_EQ(fut.wait_for(std::chrono::seconds(10)), std::future_status::ready);
    const ServeResult r = fut.get();
    EXPECT_TRUE(r.status == ServeStatus::kOk || r.status == ServeStatus::kShutdown)
        << to_string(r.status);
    // After stop, submits resolve kShutdown immediately.
    EXPECT_EQ(router.submit(1, img).get().status, ServeStatus::kShutdown);
}

// ---- rolling fleet reload (scripted fakes: deterministic, TSan-visible) -----

TEST(Router, RollingReloadDrainsThenSwapsEveryWorker) {
    SocketPair spa;
    SocketPair spb;
    const int fd_a = spa.a.release();
    const int fd_b = spb.a.release();
    FakeWorker fake_a(std::move(spa.b));
    FakeWorker fake_b(std::move(spb.b));
    cluster::RouterConfig rc = adopt_config({fd_a, fd_b});
    rc.dispatch = cluster::DispatchPolicy::kRoundRobin;
    rc.worker_inflight_limit = 0;
    cluster::Router router(rc);

    const Image img = patterned_image(8, 8, 3, 1.0f);
    auto f0 = router.submit(1, img);  // slot 0 (fake_a), held
    auto f1 = router.submit(1, img);  // slot 1 (fake_b), held
    ASSERT_TRUE(fake_a.wait_for_held(1));
    ASSERT_TRUE(fake_b.wait_for_held(1));

    // The rollout must drain each worker's in-flight frames before swapping:
    // with both fakes holding a frame, it cannot complete (or even send the
    // first reload request) until we release them.
    std::atomic<bool> done{false};
    cluster::RolloutReport report;
    std::thread rollout([&] {
        report = router.rolling_reload("fake-candidate.weights",
                                       /*timeout_ms=*/30000);
        done.store(true);
    });
    std::this_thread::sleep_for(std::chrono::milliseconds(50));
    EXPECT_FALSE(done.load());
    EXPECT_EQ(fake_a.reload_requests(), 0);
    fake_a.release_all();
    fake_b.release_all();
    rollout.join();

    EXPECT_TRUE(report.ok) << report.error;
    EXPECT_EQ(report.total, 2u);
    EXPECT_EQ(report.reloaded, 2u);
    EXPECT_EQ(report.rolled_back, 0u);
    EXPECT_EQ(report.model_version, 2u);
    EXPECT_EQ(fake_a.reload_requests(), 1);
    EXPECT_EQ(fake_b.reload_requests(), 1);
    EXPECT_EQ(fake_a.rollback_requests(), 0);
    EXPECT_NE(report.to_json().find("\"reloaded\":2"), std::string::npos)
        << report.to_json();
    EXPECT_EQ(f0.get().status, ServeStatus::kOk);
    EXPECT_EQ(f1.get().status, ServeStatus::kOk);

    // Both slots are dispatchable again after the rollout.
    auto after = router.submit(2, img);
    const auto deadline =
        std::chrono::steady_clock::now() + std::chrono::seconds(10);
    while (fake_a.held() + fake_b.held() < 1 &&
           std::chrono::steady_clock::now() < deadline) {
        std::this_thread::sleep_for(std::chrono::milliseconds(2));
    }
    fake_a.release_all();
    fake_b.release_all();
    EXPECT_EQ(after.get().status, ServeStatus::kOk);
    router.stop();
}

TEST(Router, RollingReloadAbortsAndRollsBackCommittedWorkers) {
    SocketPair spa;
    SocketPair spb;
    const int fd_a = spa.a.release();
    const int fd_b = spb.a.release();
    FakeWorker fake_a(std::move(spa.b));
    FakeWorker fake_b(std::move(spb.b));
    fake_b.set_reload_ok(false);  // slot 1's canary will reject the candidate
    cluster::Router router(adopt_config({fd_a, fd_b}));

    const cluster::RolloutReport report =
        router.rolling_reload("fake-candidate.weights", /*timeout_ms=*/30000);
    EXPECT_FALSE(report.ok);
    EXPECT_EQ(report.total, 2u);
    EXPECT_EQ(report.reloaded, 1u);     // slot 0 swapped before the abort...
    EXPECT_EQ(report.rolled_back, 1u);  // ...and was restored by it
    EXPECT_NE(report.error.find("canary rejected"), std::string::npos)
        << report.error;
    EXPECT_EQ(fake_a.rollback_requests(), 1);
    EXPECT_EQ(fake_b.rollback_requests(), 0);

    // The fleet keeps serving the old version after the abort.
    const Image img = patterned_image(8, 8, 3, 1.0f);
    auto f0 = router.submit(1, img);
    auto f1 = router.submit(1, img);
    const auto deadline =
        std::chrono::steady_clock::now() + std::chrono::seconds(10);
    while (fake_a.held() + fake_b.held() < 2 &&
           std::chrono::steady_clock::now() < deadline) {
        std::this_thread::sleep_for(std::chrono::milliseconds(2));
    }
    fake_a.release_all();
    fake_b.release_all();
    EXPECT_EQ(f0.get().status, ServeStatus::kOk);
    EXPECT_EQ(f1.get().status, ServeStatus::kOk);
    router.stop();
}

// ---- spawned serve_worker processes -----------------------------------------

TEST(Router, SpawnedWorkersEndToEnd) {
    const std::string worker_bin = DRONET_SERVE_WORKER_PATH;
    ASSERT_FALSE(worker_bin.empty());
    cluster::RouterConfig rc;
    rc.worker_argv = {worker_bin, "--size", "64", "--filter-scale", "0.25",
                      "--workers", "1"};
    rc.workers = 2;
    rc.worker_inflight_limit = 1;
    cluster::Router router(rc);
    EXPECT_EQ(router.slots(), 2u);
    EXPECT_GT(router.worker_pid(0), 0);
    EXPECT_GT(router.worker_pid(1), 0);

    const DetectionDataset frames =
        generate_dataset(benchmark_scene_config(64), 8, /*seed=*/5);
    std::vector<std::future<ServeResult>> futures;
    for (int i = 0; i < 8; ++i) {
        futures.push_back(router.submit(1 + (i % 2), frames.image(i)));
    }
    for (auto& f : futures) EXPECT_EQ(f.get().status, ServeStatus::kOk);
    router.drain();
    const cluster::FleetStats fs = router.fleet_stats();
    EXPECT_TRUE(fs.accounting_ok()) << fs.to_json();
    EXPECT_EQ(fs.ok, 8u);
    EXPECT_EQ(fs.workers.size(), 2u);
    EXPECT_EQ(fs.agg_completed, 8u);
    EXPECT_EQ(router.alive_workers(), 2);
    router.stop();
    router.stop();  // idempotent
}

TEST(Router, SpawnedFleetRollingReloadMatchesColdStart) {
    const std::string worker_bin = DRONET_SERVE_WORKER_PATH;
    ASSERT_FALSE(worker_bin.empty());
    // The spawned workers build the same deterministic model at this size and
    // filter scale, so a local clone can author the rollout candidate.
    Network local =
        build_model(ModelId::kDroNet, {.input_size = 64, .filter_scale = 0.25f});
    const auto path =
        save_perturbed_checkpoint(local, "dronet_rollout_cand", 0x90d);

    cluster::RouterConfig rc;
    rc.worker_argv = {worker_bin,  "--size",           "64",
                      "--filter-scale", "0.25",        "--workers",
                      "1",         "--score-threshold", "0.0005"};
    rc.workers = 2;
    cluster::Router router(rc);

    const DetectionDataset frames =
        generate_dataset(benchmark_scene_config(64), 8, /*seed=*/21);
    std::vector<std::future<ServeResult>> futures;
    for (int i = 0; i < 8; ++i) {
        futures.push_back(router.submit(1 + (i % 2), frames.image(i)));
    }
    const cluster::RolloutReport report =
        router.rolling_reload(path.string(), /*timeout_ms=*/60000);
    // Every future accepted before/during the rollout resolves kOk.
    for (auto& f : futures) EXPECT_EQ(f.get().status, ServeStatus::kOk);
    ASSERT_TRUE(report.ok) << report.error;
    EXPECT_EQ(report.reloaded, 2u);
    EXPECT_EQ(report.model_version, 2u);

    // Every worker reports the new version in its wire stats...
    router.drain();
    const cluster::FleetStats fs = router.fleet_stats();
    EXPECT_TRUE(fs.accounting_ok()) << fs.to_json();
    ASSERT_EQ(fs.workers.size(), 2u);
    for (const auto& w : fs.workers) {
        EXPECT_EQ(w.model_version, 2u);
        EXPECT_EQ(w.reloads, 1u);
        EXPECT_EQ(w.rollbacks, 0u);
    }

    // ...and post-rollout fleet outputs are bit-identical to a cold start of
    // the candidate checkpoint.
    Network cold =
        build_model(ModelId::kDroNet, {.input_size = 64, .filter_scale = 0.25f});
    load_weights(cold, path);
    serve::ServiceConfig sc;
    sc.workers = 1;
    // Match the spawned workers' pipeline exactly: default NMS threshold,
    // score threshold from their --score-threshold flag.
    sc.pipeline.eval.score_threshold = 0.0005f;
    serve::DetectionService reference(cold, sc);
    bool any_detection = false;
    for (int i = 0; i < 4; ++i) {
        const ServeResult got = router.submit(3, frames.image(i)).get();
        ASSERT_EQ(got.status, ServeStatus::kOk);
        const ServeResult want = reference.submit(frames.image(i)).get();
        ASSERT_EQ(want.status, ServeStatus::kOk);
        ASSERT_EQ(got.frame.detections.size(), want.frame.detections.size())
            << "frame " << i;
        for (std::size_t d = 0; d < want.frame.detections.size(); ++d) {
            EXPECT_EQ(std::memcmp(&got.frame.detections[d].box,
                                  &want.frame.detections[d].box, sizeof(Box)), 0);
            EXPECT_EQ(got.frame.detections[d].objectness,
                      want.frame.detections[d].objectness);
            EXPECT_EQ(got.frame.detections[d].class_prob,
                      want.frame.detections[d].class_prob);
        }
        any_detection = any_detection || !want.frame.detections.empty();
    }
    EXPECT_TRUE(any_detection);  // the bit-identical comparison was non-vacuous
    reference.stop();
    router.stop();
}

TEST(SpawnedWorker, SigtermDrainsAcceptedFramesAndExitsZero) {
    const std::string worker_bin = DRONET_SERVE_WORKER_PATH;
    ASSERT_FALSE(worker_bin.empty());
    int sv[2];
    ASSERT_EQ(::socketpair(AF_UNIX, SOCK_STREAM, 0, sv), 0);
    const pid_t pid = ::fork();
    ASSERT_GE(pid, 0);
    if (pid == 0) {
        ::close(sv[0]);
        const std::string fd_arg = std::to_string(sv[1]);
        ::execl(worker_bin.c_str(), worker_bin.c_str(), "--fd", fd_arg.c_str(),
                "--size", "64", "--filter-scale", "0.25", "--workers", "1",
                static_cast<char*>(nullptr));
        ::_exit(127);  // exec failed
    }
    ::close(sv[1]);
    io::UniqueFd fd(sv[0]);

    const DetectionDataset frames =
        generate_dataset(benchmark_scene_config(64), 2, /*seed=*/9);
    // Prove the worker is serving (and so its signal handlers are installed)
    // before the signal lands.
    cluster::write_frame(fd.get(), Opcode::kDetectRequest, 1,
                         cluster::encode_detect_request(frames.image(0)));
    Frame f;
    ASSERT_TRUE(cluster::read_frame(fd.get(), f));
    EXPECT_EQ(static_cast<Opcode>(f.header.opcode), Opcode::kDetectResponse);

    // SIGTERM with a frame possibly in flight: the handler half-closes the
    // read side, the worker drains whatever it accepted, replies, and closes
    // the socket at a frame boundary — a clean EOF, then exit code 0.
    cluster::write_frame(fd.get(), Opcode::kDetectRequest, 2,
                         cluster::encode_detect_request(frames.image(1)));
    ASSERT_EQ(::kill(pid, SIGTERM), 0);
    int responses = 1;
    while (cluster::read_frame(fd.get(), f)) {
        if (static_cast<Opcode>(f.header.opcode) == Opcode::kDetectResponse) {
            ++responses;
        }
    }
    EXPECT_LE(responses, 2);  // frame 2 raced the signal: served or never read

    int status = 0;
    ASSERT_EQ(::waitpid(pid, &status, 0), pid);
    ASSERT_TRUE(WIFEXITED(status)) << status;
    EXPECT_EQ(WEXITSTATUS(status), 0);
}

}  // namespace
}  // namespace dronet
