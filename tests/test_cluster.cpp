// Tests for the sharded serving tier (src/cluster): wire-protocol codecs and
// framing, the WorkerServer loop over a real socketpair, and the Router —
// dispatch, admission control, retry-on-worker-loss, the eject/half-open/
// re-admit breaker, and spawned serve_worker processes end to end. These
// carry the `cluster` ctest label; scripts/run_all.sh re-runs them under
// AddressSanitizer. The worker-kill chaos runs live in test_cluster_chaos.
#include <gtest/gtest.h>

#include <sys/socket.h>
#include <sys/types.h>

#include <atomic>
#include <chrono>
#include <cstring>
#include <future>
#include <map>
#include <mutex>
#include <string>
#include <thread>
#include <vector>

#include "cluster/protocol.hpp"
#include "cluster/router.hpp"
#include "cluster/worker.hpp"
#include "data/dataset.hpp"
#include "io/fdio.hpp"
#include "models/model_zoo.hpp"
#include "serve/detection_service.hpp"
#include "video/pipeline.hpp"

#ifndef DRONET_SERVE_WORKER_PATH
#define DRONET_SERVE_WORKER_PATH ""
#endif

namespace dronet {
namespace {

using cluster::Frame;
using cluster::Opcode;
using serve::ServeResult;
using serve::ServeStatus;

struct SocketPair {
    io::UniqueFd a;
    io::UniqueFd b;
    SocketPair() {
        int sv[2];
        if (::socketpair(AF_UNIX, SOCK_STREAM, 0, sv) != 0) {
            throw std::system_error(errno, std::generic_category(), "socketpair");
        }
        a.reset(sv[0]);
        b.reset(sv[1]);
    }
};

PipelineConfig low_threshold_pipeline() {
    // Near-zero threshold so random-weight networks emit detections and the
    // end-to-end comparisons below are non-vacuous without checkpoints.
    PipelineConfig pc;
    pc.eval.score_threshold = 5e-4f;
    pc.eval.nms_threshold = 0.45f;
    return pc;
}

Image patterned_image(int w, int h, int c, float scale) {
    Image img(w, h, c);
    for (std::size_t i = 0; i < img.size(); ++i) {
        img.data()[i] = scale * static_cast<float>(i % 97) / 97.0f;
    }
    return img;
}

// ---- protocol ---------------------------------------------------------------

TEST(Protocol, FrameRoundTripOverSocketpair) {
    SocketPair sp;
    const std::vector<std::uint8_t> payload = {1, 2, 3, 250, 251};
    cluster::write_frame(sp.a.get(), Opcode::kDetectRequest, 42, payload);
    Frame f;
    ASSERT_TRUE(cluster::read_frame(sp.b.get(), f));
    EXPECT_EQ(f.header.magic, cluster::kMagic);
    EXPECT_EQ(f.header.version, cluster::kProtocolVersion);
    EXPECT_EQ(static_cast<Opcode>(f.header.opcode), Opcode::kDetectRequest);
    EXPECT_EQ(f.header.request_id, 42u);
    EXPECT_EQ(f.payload, payload);
}

TEST(Protocol, CleanEofReturnsFalseMidFrameEofThrows) {
    {
        SocketPair sp;
        sp.a.reset();  // peer closed without writing
        Frame f;
        EXPECT_FALSE(cluster::read_frame(sp.b.get(), f));
    }
    {
        SocketPair sp;
        const std::uint8_t half_header[10] = {};
        io::write_full(sp.a.get(), half_header, sizeof(half_header));
        sp.a.reset();  // EOF inside the header
        Frame f;
        EXPECT_THROW((void)cluster::read_frame(sp.b.get(), f), std::runtime_error);
    }
}

TEST(Protocol, RejectsBadMagicAndBadVersion) {
    {
        SocketPair sp;
        cluster::FrameHeader h;
        h.magic = 0xdeadbeef;
        io::write_full(sp.a.get(), &h, sizeof(h));
        Frame f;
        EXPECT_THROW((void)cluster::read_frame(sp.b.get(), f), std::runtime_error);
    }
    {
        SocketPair sp;
        cluster::FrameHeader h;
        h.version = cluster::kProtocolVersion + 1;
        io::write_full(sp.a.get(), &h, sizeof(h));
        Frame f;
        EXPECT_THROW((void)cluster::read_frame(sp.b.get(), f), std::runtime_error);
    }
}

TEST(Protocol, DetectRequestRoundTripPreservesPixels) {
    const Image img = patterned_image(17, 11, 3, 1.0f);
    const Image back = cluster::decode_detect_request(cluster::encode_detect_request(img));
    ASSERT_EQ(back.width(), 17);
    ASSERT_EQ(back.height(), 11);
    ASSERT_EQ(back.channels(), 3);
    ASSERT_EQ(back.size(), img.size());
    EXPECT_EQ(std::memcmp(back.data(), img.data(), img.size() * sizeof(float)), 0);
}

TEST(Protocol, DetectResponseRoundTripPreservesEverything) {
    cluster::WireDetectResult r;
    r.status = ServeStatus::kFailed;
    r.frame_index = -7;
    r.timings.queue_wait_ms = 1.5;
    r.timings.preprocess_ms = 0.25;
    r.timings.forward_ms = 12.75;
    r.timings.postprocess_ms = 0.125;
    Detection d;
    d.box = {0.1f, 0.2f, 0.3f, 0.4f};
    d.objectness = 0.9f;
    d.class_prob = 0.8f;
    d.class_id = 3;
    r.detections = {d, d};
    r.error = "forward failed: injected";
    const cluster::WireDetectResult back =
        cluster::decode_detect_response(cluster::encode_detect_response(r));
    EXPECT_EQ(back.status, r.status);
    EXPECT_EQ(back.frame_index, r.frame_index);
    EXPECT_DOUBLE_EQ(back.timings.forward_ms, r.timings.forward_ms);
    ASSERT_EQ(back.detections.size(), 2u);
    EXPECT_FLOAT_EQ(back.detections[1].box.w, 0.3f);
    EXPECT_EQ(back.detections[1].class_id, 3);
    EXPECT_EQ(back.error, r.error);
}

TEST(Protocol, PongStatsAndErrorRoundTrip) {
    const cluster::WorkerGauges g{3, 2, 12345};
    const cluster::WorkerGauges gb = cluster::decode_pong(cluster::encode_pong(g));
    EXPECT_EQ(gb.queue_depth, 3u);
    EXPECT_EQ(gb.in_flight, 2u);
    EXPECT_EQ(gb.uptime_ms, 12345u);

    serve::ServeStats stats;
    stats.record_submitted();
    stats.record_completed({.queue_wait_ms = 1, .preprocess_ms = 1,
                            .forward_ms = 5, .postprocess_ms = 1});
    serve::ServeStatsSnapshot snap = stats.snapshot();
    snap.queue_depth = 4;
    snap.in_flight = 1;
    snap.uptime_ms = 99;
    const cluster::WireStats ws =
        cluster::decode_stats_response(cluster::encode_stats_response(snap));
    EXPECT_EQ(ws.submitted, 1u);
    EXPECT_EQ(ws.completed, 1u);
    EXPECT_EQ(ws.gauges.queue_depth, 4u);
    EXPECT_EQ(ws.gauges.uptime_ms, 99u);
    EXPECT_EQ(ws.json, snap.to_json());

    EXPECT_EQ(cluster::decode_error(cluster::encode_error("boom")), "boom");
}

TEST(Protocol, TruncatedPayloadDecodesAsError) {
    cluster::WireDetectResult r;
    r.detections.resize(3);
    std::vector<std::uint8_t> payload = cluster::encode_detect_response(r);
    payload.resize(payload.size() / 2);
    EXPECT_THROW((void)cluster::decode_detect_response(payload), std::runtime_error);
    EXPECT_THROW((void)cluster::decode_pong({1, 2, 3}), std::runtime_error);
    EXPECT_THROW((void)cluster::decode_detect_request({0, 0}), std::runtime_error);
}

// ---- WorkerServer over a live socketpair ------------------------------------

TEST(WorkerServer, ServesDetectPingStatsAndShutdownAck) {
    Network net = build_model(ModelId::kDroNet, {.input_size = 64, .filter_scale = 0.25f});
    serve::ServiceConfig sc;
    sc.workers = 1;
    sc.pipeline = low_threshold_pipeline();
    serve::DetectionService service(net, sc);

    SocketPair sp;
    std::atomic<std::uint64_t> served{0};
    std::thread worker([&, fd = sp.b.get()] {
        cluster::WorkerServer server(service, fd);
        served.store(server.run());
        sp.b.reset();  // our side of the hang-up, after the ack
    });

    const DetectionDataset frames =
        generate_dataset(benchmark_scene_config(64), 2, /*seed=*/3);
    cluster::write_frame(sp.a.get(), Opcode::kDetectRequest, 101,
                         cluster::encode_detect_request(frames.image(0)));
    cluster::write_frame(sp.a.get(), Opcode::kDetectRequest, 102,
                         cluster::encode_detect_request(frames.image(1)));
    cluster::write_frame(sp.a.get(), Opcode::kPing, 103, nullptr, 0);
    cluster::write_frame(sp.a.get(), Opcode::kStatsRequest, 104, nullptr, 0);
    cluster::write_frame(sp.a.get(), Opcode::kShutdown, 0, nullptr, 0);

    std::map<std::uint64_t, Opcode> replies;
    bool got_ack = false;
    Frame f;
    while (cluster::read_frame(sp.a.get(), f)) {
        const auto op = static_cast<Opcode>(f.header.opcode);
        if (op == Opcode::kShutdownAck) {
            got_ack = true;
        } else {
            replies[f.header.request_id] = op;
            if (op == Opcode::kDetectResponse) {
                const cluster::WireDetectResult r =
                    cluster::decode_detect_response(f.payload);
                EXPECT_EQ(r.status, ServeStatus::kOk);
            }
        }
    }
    worker.join();
    service.stop();
    EXPECT_EQ(served.load(), 2u);
    EXPECT_TRUE(got_ack);
    ASSERT_EQ(replies.size(), 4u);
    EXPECT_EQ(replies[101], Opcode::kDetectResponse);
    EXPECT_EQ(replies[102], Opcode::kDetectResponse);
    EXPECT_EQ(replies[103], Opcode::kPong);
    EXPECT_EQ(replies[104], Opcode::kStatsResponse);
}

TEST(WorkerServer, MalformedDetectRequestGetsErrorReply) {
    Network net = build_model(ModelId::kDroNet, {.input_size = 64, .filter_scale = 0.25f});
    serve::ServiceConfig sc;
    sc.workers = 1;
    serve::DetectionService service(net, sc);

    SocketPair sp;
    std::thread worker([&, fd = sp.b.get()] {
        cluster::WorkerServer server(service, fd);
        (void)server.run();
        sp.b.reset();
    });
    cluster::write_frame(sp.a.get(), Opcode::kDetectRequest, 7,
                         std::vector<std::uint8_t>{1, 2, 3});  // truncated
    cluster::write_frame(sp.a.get(), Opcode::kShutdown, 0, nullptr, 0);
    bool got_error = false;
    Frame f;
    while (cluster::read_frame(sp.a.get(), f)) {
        if (static_cast<Opcode>(f.header.opcode) == Opcode::kError &&
            f.header.request_id == 7) {
            got_error = true;
            EXPECT_NE(cluster::decode_error(f.payload).find("truncated"),
                      std::string::npos);
        }
    }
    worker.join();
    service.stop();
    EXPECT_TRUE(got_error);
}

// ---- a scriptable fake worker for deterministic Router tests ----------------

/// Speaks the wire protocol on one socketpair end but only answers when the
/// test says so: detect requests are held until release_all(), pings are
/// answered only while answer_pings is on. That makes admission, dispatch,
/// retry, and breaker transitions deterministic — no timing races on real
/// compute.
class FakeWorker {
  public:
    explicit FakeWorker(io::UniqueFd fd)
        : fd_(std::move(fd)), thread_([this] { loop(); }) {}
    ~FakeWorker() {
        disconnect();
        join();
    }

    void join() {
        if (thread_.joinable()) thread_.join();
    }

    /// Severs the connection abruptly, as a crashed worker process would.
    void disconnect() {
        if (fd_) ::shutdown(fd_.get(), SHUT_RDWR);
    }

    void set_answer_pings(bool v) { answer_pings_.store(v); }

    std::size_t held() {
        std::lock_guard<std::mutex> lock(mu_);
        return held_.size();
    }

    /// Answers every held detect request with an empty kOk result.
    void release_all() {
        std::vector<std::uint64_t> ids;
        {
            std::lock_guard<std::mutex> lock(mu_);
            ids.swap(held_);
        }
        cluster::WireDetectResult ok;
        const std::vector<std::uint8_t> payload = cluster::encode_detect_response(ok);
        std::lock_guard<std::mutex> wl(write_mu_);
        for (std::uint64_t id : ids) {
            cluster::write_frame(fd_.get(), Opcode::kDetectResponse, id, payload);
        }
    }

    /// Waits until `n` detect requests are held (generous deadline).
    [[nodiscard]] bool wait_for_held(std::size_t n,
                                     std::chrono::seconds deadline =
                                         std::chrono::seconds(30)) {
        const auto until = std::chrono::steady_clock::now() + deadline;
        while (std::chrono::steady_clock::now() < until) {
            if (held() >= n) return true;
            std::this_thread::sleep_for(std::chrono::milliseconds(2));
        }
        return held() >= n;
    }

  private:
    void loop() {
        try {
            Frame f;
            while (cluster::read_frame(fd_.get(), f)) {
                switch (static_cast<Opcode>(f.header.opcode)) {
                    case Opcode::kDetectRequest: {
                        std::lock_guard<std::mutex> lock(mu_);
                        held_.push_back(f.header.request_id);
                        break;
                    }
                    case Opcode::kPing:
                        if (answer_pings_.load()) {
                            std::lock_guard<std::mutex> wl(write_mu_);
                            cluster::write_frame(fd_.get(), Opcode::kPong,
                                                 f.header.request_id,
                                                 cluster::encode_pong({}));
                        }
                        break;
                    case Opcode::kShutdown: {
                        release_all();  // drain like a real worker would
                        std::lock_guard<std::mutex> wl(write_mu_);
                        cluster::write_frame(fd_.get(), Opcode::kShutdownAck, 0,
                                             nullptr, 0);
                        return;
                    }
                    default:
                        break;  // stats requests left unanswered on purpose
                }
            }
        } catch (...) {
            // Disconnected mid-frame — exactly what disconnect() simulates.
        }
    }

    io::UniqueFd fd_;
    std::mutex mu_;
    std::vector<std::uint64_t> held_;
    std::mutex write_mu_;
    std::atomic<bool> answer_pings_{true};
    std::thread thread_;
};

cluster::RouterConfig adopt_config(std::vector<int> fds) {
    cluster::RouterConfig rc;
    rc.adopt_fds = std::move(fds);
    rc.health_interval_ms = 20;
    rc.health_timeout_ms = 200;
    return rc;
}

// ---- Router with adopted in-process workers ---------------------------------

TEST(Router, AdoptedWorkerEndToEndMatchesSerialPipeline) {
    Network net = build_model(ModelId::kDroNet, {.input_size = 64, .filter_scale = 0.25f});
    const PipelineConfig pc = low_threshold_pipeline();
    serve::ServiceConfig sc;
    sc.workers = 1;
    sc.pipeline = pc;
    serve::DetectionService service(net, sc);

    SocketPair sp;
    const int adopt_fd = sp.a.release();
    std::thread worker([&, fd = sp.b.get()] {
        cluster::WorkerServer server(service, fd);
        (void)server.run();
    });

    const DetectionDataset frames =
        generate_dataset(benchmark_scene_config(64), 6, /*seed=*/11);
    {
        cluster::Router router(adopt_config({adopt_fd}));
        std::vector<std::future<ServeResult>> futures;
        for (int i = 0; i < 6; ++i) {
            futures.push_back(router.submit(/*client_id=*/1 + (i % 2),
                                            frames.image(i)));
        }
        // Serial reference on a replica-equivalent path: the fleet must be
        // bit-identical to the in-process pipeline, wire transfer included.
        Network ref = build_model(ModelId::kDroNet, {.input_size = 64, .filter_scale = 0.25f});
        DetectionPipeline serial(ref, pc);
        for (int i = 0; i < 6; ++i) {
            const ServeResult r = futures[static_cast<std::size_t>(i)].get();
            ASSERT_EQ(r.status, ServeStatus::kOk) << "frame " << i;
            const Detections expected = serial.process(frames.image(i)).detections;
            ASSERT_EQ(r.frame.detections.size(), expected.size()) << "frame " << i;
            for (std::size_t d = 0; d < expected.size(); ++d) {
                EXPECT_EQ(std::memcmp(&r.frame.detections[d].box,
                                      &expected[d].box, sizeof(Box)), 0);
            }
        }
        const cluster::FleetStats fs = router.fleet_stats();
        EXPECT_TRUE(fs.accounting_ok()) << fs.to_json();
        EXPECT_EQ(fs.ok, 6u);
        ASSERT_EQ(fs.workers.size(), 1u);
        EXPECT_EQ(fs.workers[0].completed, 6u);
        EXPECT_NE(fs.to_json().find("\"aggregate\""), std::string::npos);
        router.stop();
    }
    worker.join();
    service.stop();
}

TEST(Router, ClientInflightCapShedsAsRejected) {
    SocketPair sp;
    const int adopt_fd = sp.a.release();
    FakeWorker fake(std::move(sp.b));
    cluster::RouterConfig rc = adopt_config({adopt_fd});
    rc.client_max_inflight = 2;
    rc.worker_inflight_limit = 0;  // unlimited: only admission sheds
    cluster::Router router(rc);

    const Image img = patterned_image(8, 8, 3, 1.0f);
    std::vector<std::future<ServeResult>> futures;
    for (int i = 0; i < 4; ++i) futures.push_back(router.submit(/*client*/ 5, img));
    ASSERT_TRUE(fake.wait_for_held(2));
    // Frames 3 and 4 breached the cap: resolved immediately, no dispatch.
    EXPECT_EQ(futures[2].wait_for(std::chrono::seconds(10)),
              std::future_status::ready);
    ServeResult r3 = futures[2].get();
    EXPECT_EQ(r3.status, ServeStatus::kRejected);
    EXPECT_NE(r3.error.find("in-flight"), std::string::npos) << r3.error;
    EXPECT_EQ(futures[3].get().status, ServeStatus::kRejected);
    // A different client is not throttled by client 5's backlog.
    std::future<ServeResult> other = router.submit(/*client*/ 6, img);
    ASSERT_TRUE(fake.wait_for_held(3));
    fake.release_all();
    EXPECT_EQ(futures[0].get().status, ServeStatus::kOk);
    EXPECT_EQ(futures[1].get().status, ServeStatus::kOk);
    EXPECT_EQ(other.get().status, ServeStatus::kOk);
    const cluster::FleetStats fs = router.fleet_stats(/*timeout_ms=*/100);
    EXPECT_TRUE(fs.accounting_ok());
    EXPECT_EQ(fs.rejected_admission, 2u);
    EXPECT_EQ(fs.ok, 3u);
    router.stop();
}

TEST(Router, TokenBucketQuotaShedsAsRejected) {
    SocketPair sp;
    const int adopt_fd = sp.a.release();
    FakeWorker fake(std::move(sp.b));
    cluster::RouterConfig rc = adopt_config({adopt_fd});
    rc.client_rate_per_s = 1e-9;  // effectively no refill inside the test
    rc.client_burst = 2;
    rc.worker_inflight_limit = 0;
    cluster::Router router(rc);

    const Image img = patterned_image(8, 8, 3, 1.0f);
    std::vector<std::future<ServeResult>> futures;
    for (int i = 0; i < 4; ++i) futures.push_back(router.submit(/*client*/ 9, img));
    ASSERT_TRUE(fake.wait_for_held(2));
    fake.release_all();
    EXPECT_EQ(futures[0].get().status, ServeStatus::kOk);
    EXPECT_EQ(futures[1].get().status, ServeStatus::kOk);
    ServeResult r3 = futures[2].get();
    EXPECT_EQ(r3.status, ServeStatus::kRejected);
    EXPECT_NE(r3.error.find("quota"), std::string::npos) << r3.error;
    EXPECT_EQ(futures[3].get().status, ServeStatus::kRejected);
    const cluster::FleetStats fs = router.fleet_stats(/*timeout_ms=*/100);
    EXPECT_TRUE(fs.accounting_ok());
    EXPECT_EQ(fs.rejected_quota, 2u);
    router.stop();
}

TEST(Router, RoundRobinAlternatesAcrossWorkers) {
    SocketPair spa;
    SocketPair spb;
    const int fd_a = spa.a.release();
    const int fd_b = spb.a.release();
    FakeWorker fake_a(std::move(spa.b));
    FakeWorker fake_b(std::move(spb.b));
    cluster::RouterConfig rc = adopt_config({fd_a, fd_b});
    rc.dispatch = cluster::DispatchPolicy::kRoundRobin;
    rc.worker_inflight_limit = 0;
    cluster::Router router(rc);

    const Image img = patterned_image(8, 8, 3, 1.0f);
    std::vector<std::future<ServeResult>> futures;
    for (int i = 0; i < 4; ++i) futures.push_back(router.submit(1, img));
    ASSERT_TRUE(fake_a.wait_for_held(2));
    ASSERT_TRUE(fake_b.wait_for_held(2));
    EXPECT_EQ(fake_a.held(), 2u);
    EXPECT_EQ(fake_b.held(), 2u);
    fake_a.release_all();
    fake_b.release_all();
    for (auto& f : futures) EXPECT_EQ(f.get().status, ServeStatus::kOk);
    router.stop();
}

TEST(Router, LostWorkerRetriesInflightFramesOnHealthyOne) {
    SocketPair spa;
    SocketPair spb;
    const int fd_a = spa.a.release();
    const int fd_b = spb.a.release();
    FakeWorker fake_a(std::move(spa.b));
    FakeWorker fake_b(std::move(spb.b));
    cluster::RouterConfig rc = adopt_config({fd_a, fd_b});
    rc.dispatch = cluster::DispatchPolicy::kRoundRobin;
    rc.worker_inflight_limit = 0;
    rc.max_retries = 1;
    cluster::Router router(rc);

    const Image img = patterned_image(8, 8, 3, 1.0f);
    auto f0 = router.submit(1, img);  // slot 0 (fake_a)
    auto f1 = router.submit(1, img);  // slot 1 (fake_b)
    ASSERT_TRUE(fake_a.wait_for_held(1));
    ASSERT_TRUE(fake_b.wait_for_held(1));

    fake_a.disconnect();  // crash: its in-flight frame must move to fake_b
    ASSERT_TRUE(fake_b.wait_for_held(2));
    fake_b.release_all();
    EXPECT_EQ(f0.get().status, ServeStatus::kOk);
    EXPECT_EQ(f1.get().status, ServeStatus::kOk);
    const cluster::FleetStats fs = router.fleet_stats(/*timeout_ms=*/100);
    EXPECT_TRUE(fs.accounting_ok());
    EXPECT_EQ(fs.retried, 1u);
    EXPECT_EQ(fs.worker_deaths, 1u);
    EXPECT_EQ(fs.ok, 2u);
    router.stop();
}

TEST(Router, EjectsUnresponsiveWorkerThenReadmitsViaHalfOpen) {
    SocketPair sp;
    const int adopt_fd = sp.a.release();
    FakeWorker fake(std::move(sp.b));
    cluster::RouterConfig rc = adopt_config({adopt_fd});
    rc.health_interval_ms = 10;
    rc.health_timeout_ms = 30;
    rc.eject_threshold = 2;
    rc.readmit_ms = 50;
    rc.max_retries = 0;  // a stranded frame has nowhere to go: kShutdown
    cluster::Router router(rc);

    const Image img = patterned_image(8, 8, 3, 1.0f);
    auto held_future = router.submit(1, img);
    ASSERT_TRUE(fake.wait_for_held(1));

    fake.set_answer_pings(false);  // worker wedges
    // The breaker may already be cycling ejected <-> half-open (readmit_ms is
    // tiny); any non-kUp state is "breaker open" for this assertion.
    const auto deadline = std::chrono::steady_clock::now() + std::chrono::seconds(30);
    while (router.worker_state(0) == cluster::WorkerState::kUp &&
           std::chrono::steady_clock::now() < deadline) {
        std::this_thread::sleep_for(std::chrono::milliseconds(5));
    }
    ASSERT_NE(router.worker_state(0), cluster::WorkerState::kUp);
    // The ejected worker's in-flight frame resolved (kShutdown: no budget,
    // no healthy peer) instead of hanging.
    ASSERT_EQ(held_future.wait_for(std::chrono::seconds(10)),
              std::future_status::ready);
    EXPECT_EQ(held_future.get().status, ServeStatus::kShutdown);
    // With no healthy worker, new submits shed immediately.
    EXPECT_EQ(router.submit(1, img).get().status, ServeStatus::kRejected);

    fake.set_answer_pings(true);  // worker recovers
    while (router.worker_state(0) != cluster::WorkerState::kUp &&
           std::chrono::steady_clock::now() < deadline) {
        std::this_thread::sleep_for(std::chrono::milliseconds(5));
    }
    ASSERT_EQ(router.worker_state(0), cluster::WorkerState::kUp);
    auto after = router.submit(1, img);
    // The fake still holds the pre-eject request (its answer will be stale and
    // ignored by the router), so the new frame is the second held entry.
    ASSERT_TRUE(fake.wait_for_held(2));
    fake.release_all();
    EXPECT_EQ(after.get().status, ServeStatus::kOk);
    const cluster::FleetStats fs = router.fleet_stats(/*timeout_ms=*/100);
    EXPECT_TRUE(fs.accounting_ok()) << fs.to_json();
    EXPECT_GE(fs.worker_ejects, 1u);
    EXPECT_GE(fs.worker_readmits, 1u);
    router.stop();
}

TEST(Router, StopResolvesHeldFramesAsShutdown) {
    SocketPair sp;
    const int adopt_fd = sp.a.release();
    FakeWorker fake(std::move(sp.b));
    cluster::RouterConfig rc = adopt_config({adopt_fd});
    rc.shutdown_timeout_ms = 200;  // fake drains on kShutdown, so this is slack
    cluster::Router router(rc);
    const Image img = patterned_image(8, 8, 3, 1.0f);
    auto fut = router.submit(1, img);
    ASSERT_TRUE(fake.wait_for_held(1));
    router.stop();  // fake answers the held frame during its shutdown drain
    ASSERT_EQ(fut.wait_for(std::chrono::seconds(10)), std::future_status::ready);
    const ServeResult r = fut.get();
    EXPECT_TRUE(r.status == ServeStatus::kOk || r.status == ServeStatus::kShutdown)
        << to_string(r.status);
    // After stop, submits resolve kShutdown immediately.
    EXPECT_EQ(router.submit(1, img).get().status, ServeStatus::kShutdown);
}

// ---- spawned serve_worker processes -----------------------------------------

TEST(Router, SpawnedWorkersEndToEnd) {
    const std::string worker_bin = DRONET_SERVE_WORKER_PATH;
    ASSERT_FALSE(worker_bin.empty());
    cluster::RouterConfig rc;
    rc.worker_argv = {worker_bin, "--size", "64", "--filter-scale", "0.25",
                      "--workers", "1"};
    rc.workers = 2;
    rc.worker_inflight_limit = 1;
    cluster::Router router(rc);
    EXPECT_EQ(router.slots(), 2u);
    EXPECT_GT(router.worker_pid(0), 0);
    EXPECT_GT(router.worker_pid(1), 0);

    const DetectionDataset frames =
        generate_dataset(benchmark_scene_config(64), 8, /*seed=*/5);
    std::vector<std::future<ServeResult>> futures;
    for (int i = 0; i < 8; ++i) {
        futures.push_back(router.submit(1 + (i % 2), frames.image(i)));
    }
    for (auto& f : futures) EXPECT_EQ(f.get().status, ServeStatus::kOk);
    router.drain();
    const cluster::FleetStats fs = router.fleet_stats();
    EXPECT_TRUE(fs.accounting_ok()) << fs.to_json();
    EXPECT_EQ(fs.ok, 8u);
    EXPECT_EQ(fs.workers.size(), 2u);
    EXPECT_EQ(fs.agg_completed, 8u);
    EXPECT_EQ(router.alive_workers(), 2);
    router.stop();
    router.stop();  // idempotent
}

}  // namespace
}  // namespace dronet
