// Chaos tests for the sharded serving tier: SIGKILL a worker process in the
// middle of a loaded run (and in the middle of a rolling model reload) and
// assert the PR-5 invariant fleet-wide — every accepted future resolves (kOk,
// retried-kOk, kRejected, or kShutdown; never hung), the accounting identity
// holds, and recovery restores the fleet: the respawned worker rejoins at
// full capacity, and an aborted rollout rolls every committed worker back to
// the old model. Carries the `chaos` + `cluster` ctest labels;
// scripts/run_all.sh re-runs it under both TSan and ASan.
#include <gtest/gtest.h>

#include <chrono>
#include <cstdint>
#include <filesystem>
#include <future>
#include <string>
#include <thread>
#include <vector>

#include "cluster/router.hpp"
#include "data/dataset.hpp"
#include "models/model_zoo.hpp"
#include "nn/clone.hpp"
#include "nn/conv_layer.hpp"
#include "nn/weights_io.hpp"
#include "serve/detection_service.hpp"
#include "tensor/rng.hpp"

#ifndef DRONET_SERVE_WORKER_PATH
#define DRONET_SERVE_WORKER_PATH ""
#endif

namespace dronet {
namespace {

using serve::ServeResult;
using serve::ServeStatus;

TEST(ClusterChaos, WorkerKillMidLoadResolvesEveryFuture) {
    const std::string worker_bin = DRONET_SERVE_WORKER_PATH;
    ASSERT_FALSE(worker_bin.empty());

    cluster::RouterConfig rc;
    rc.worker_argv = {worker_bin, "--size", "64", "--filter-scale", "0.25",
                      "--workers", "1"};
    rc.workers = 2;
    rc.worker_inflight_limit = 2;
    rc.max_retries = 1;
    rc.health_interval_ms = 20;
    rc.respawn = true;
    cluster::Router router(rc);

    const DetectionDataset frames =
        generate_dataset(benchmark_scene_config(64), 8, /*seed=*/21);
    constexpr int kTotal = 48;
    std::vector<std::future<ServeResult>> futures;
    futures.reserve(kTotal);
    bool killed = false;
    for (int i = 0; i < kTotal; ++i) {
        futures.push_back(router.submit(/*client_id=*/1 + (i % 4),
                                        frames.image(static_cast<std::size_t>(i % 8))));
        if (!killed && i == kTotal / 3) {
            router.kill_worker(0);  // SIGKILL mid-load, in-flight frames stranded
            killed = true;
        }
    }

    // The invariant under test: every accepted future resolves. The deadline
    // is a hang detector, not a latency bound.
    std::uint64_t by_status[6] = {};
    int unresolved = 0;
    for (auto& f : futures) {
        if (f.wait_for(std::chrono::seconds(120)) != std::future_status::ready) {
            ++unresolved;
            continue;
        }
        const ServeResult r = f.get();
        by_status[static_cast<int>(r.status)]++;
    }
    EXPECT_EQ(unresolved, 0) << "futures abandoned after worker kill";
    EXPECT_EQ(by_status[static_cast<int>(ServeStatus::kOk)] +
                  by_status[static_cast<int>(ServeStatus::kDropped)] +
                  by_status[static_cast<int>(ServeStatus::kRejected)] +
                  by_status[static_cast<int>(ServeStatus::kTimeout)] +
                  by_status[static_cast<int>(ServeStatus::kFailed)] +
                  by_status[static_cast<int>(ServeStatus::kShutdown)],
              static_cast<std::uint64_t>(kTotal));
    // Most of the load must still succeed: only frames in flight on the dying
    // worker at the kill instant can shed, and the retry budget covers one
    // re-dispatch each.
    EXPECT_GE(by_status[static_cast<int>(ServeStatus::kOk)],
              static_cast<std::uint64_t>(kTotal - 2 * rc.worker_inflight_limit));

    const cluster::FleetStats fs = router.fleet_stats();
    EXPECT_TRUE(fs.accounting_ok()) << fs.to_json();
    EXPECT_EQ(fs.submitted, static_cast<std::uint64_t>(kTotal));
    EXPECT_GE(fs.worker_deaths, 1u);

    // The watchdog must respawn the killed worker and restore capacity.
    const auto deadline = std::chrono::steady_clock::now() + std::chrono::seconds(60);
    while (router.alive_workers() < 2 &&
           std::chrono::steady_clock::now() < deadline) {
        std::this_thread::sleep_for(std::chrono::milliseconds(10));
    }
    EXPECT_EQ(router.alive_workers(), 2);
    EXPECT_GE(router.fleet_stats(/*timeout_ms=*/5000).worker_respawns, 1u);

    // And the respawned fleet serves again.
    auto after = router.submit(/*client_id=*/1, frames.image(0));
    EXPECT_EQ(after.get().status, ServeStatus::kOk);
    router.stop();
}

TEST(ClusterChaos, WorkerKillMidRolloutAbortsAndRollsBackFleet) {
    const std::string worker_bin = DRONET_SERVE_WORKER_PATH;
    ASSERT_FALSE(worker_bin.empty());

    // A loadable same-architecture candidate: the spawned workers build the
    // identical deterministic model at this size and filter scale.
    Network local =
        build_model(ModelId::kDroNet, {.input_size = 64, .filter_scale = 0.25f});
    Network cand = clone_network(local);
    {
        Rng rng(0x7a1);
        for (std::size_t i = 0; i < cand.num_layers(); ++i) {
            for (Param* p : cand.layer(static_cast<int>(i)).params()) {
                rng.fill_uniform(p->v, -1.0f, 1.0f);
            }
            if (auto* conv = dynamic_cast<ConvolutionalLayer*>(
                    &cand.layer(static_cast<int>(i)))) {
                if (conv->config().batch_normalize) {
                    rng.fill_uniform(conv->rolling_mean(), -0.5f, 0.5f);
                    rng.fill_uniform(conv->rolling_variance(), 0.5f, 1.5f);
                }
            }
        }
    }
    const auto path =
        std::filesystem::temp_directory_path() / "dronet_rollout_kill.weights";
    save_weights(cand, path);

    cluster::RouterConfig rc;
    rc.worker_argv = {worker_bin, "--size", "64", "--filter-scale", "0.25",
                      "--workers", "1"};
    rc.workers = 2;
    rc.max_retries = 1;
    rc.health_interval_ms = 20;
    rc.respawn = false;  // keep the kill permanent so the abort is forced
    cluster::Router router(rc);

    const DetectionDataset frames =
        generate_dataset(benchmark_scene_config(64), 8, /*seed=*/33);
    // Warm both workers and settle the queue so the rollout's per-slot drain
    // starts from a known state.
    std::vector<std::future<ServeResult>> warm;
    for (int i = 0; i < 8; ++i) {
        warm.push_back(router.submit(1 + (i % 2), frames.image(i)));
    }
    for (auto& f : warm) EXPECT_EQ(f.get().status, ServeStatus::kOk);

    // Kill slot 1, then roll out: slot 0 reloads to the candidate, slot 1 is
    // dead when the rollout reaches it, the rollout aborts and rolls slot 0
    // back to the old model — the fleet never ends split across versions.
    router.kill_worker(1);
    const cluster::RolloutReport report =
        router.rolling_reload(path.string(), /*timeout_ms=*/60000);
    EXPECT_FALSE(report.ok);
    EXPECT_FALSE(report.error.empty());
    EXPECT_EQ(report.total, 2u);
    EXPECT_EQ(report.reloaded, 1u);
    EXPECT_EQ(report.rolled_back, 1u);

    // The surviving worker serves the OLD model version (rolled back), and
    // submits still resolve on the degraded fleet — zero stranded futures.
    const cluster::FleetStats fs = router.fleet_stats(/*timeout_ms=*/5000);
    EXPECT_TRUE(fs.accounting_ok()) << fs.to_json();
    ASSERT_GE(fs.workers.size(), 1u);
    for (const auto& w : fs.workers) {
        EXPECT_EQ(w.model_version, 1u) << "fleet left split across versions";
        EXPECT_EQ(w.reloads, 1u);
        EXPECT_EQ(w.rollbacks, 1u);
    }
    std::vector<std::future<ServeResult>> after;
    for (int i = 0; i < 4; ++i) {
        after.push_back(router.submit(5, frames.image(i)));
    }
    for (auto& f : after) {
        ASSERT_EQ(f.wait_for(std::chrono::seconds(120)),
                  std::future_status::ready);
        EXPECT_EQ(f.get().status, ServeStatus::kOk);
    }
    router.stop();
}

}  // namespace
}  // namespace dronet
