// Chaos test for the sharded serving tier: SIGKILL a worker process in the
// middle of a loaded run and assert the PR-5 invariant fleet-wide — every
// accepted future resolves (kOk, retried-kOk, kRejected, or kShutdown; never
// hung), the accounting identity holds, and the respawned worker restores
// full fleet capacity. Carries the `chaos` + `cluster` ctest labels;
// scripts/run_all.sh re-runs it under both TSan and ASan.
#include <gtest/gtest.h>

#include <chrono>
#include <future>
#include <string>
#include <thread>
#include <vector>

#include "cluster/router.hpp"
#include "data/dataset.hpp"
#include "serve/detection_service.hpp"

#ifndef DRONET_SERVE_WORKER_PATH
#define DRONET_SERVE_WORKER_PATH ""
#endif

namespace dronet {
namespace {

using serve::ServeResult;
using serve::ServeStatus;

TEST(ClusterChaos, WorkerKillMidLoadResolvesEveryFuture) {
    const std::string worker_bin = DRONET_SERVE_WORKER_PATH;
    ASSERT_FALSE(worker_bin.empty());

    cluster::RouterConfig rc;
    rc.worker_argv = {worker_bin, "--size", "64", "--filter-scale", "0.25",
                      "--workers", "1"};
    rc.workers = 2;
    rc.worker_inflight_limit = 2;
    rc.max_retries = 1;
    rc.health_interval_ms = 20;
    rc.respawn = true;
    cluster::Router router(rc);

    const DetectionDataset frames =
        generate_dataset(benchmark_scene_config(64), 8, /*seed=*/21);
    constexpr int kTotal = 48;
    std::vector<std::future<ServeResult>> futures;
    futures.reserve(kTotal);
    bool killed = false;
    for (int i = 0; i < kTotal; ++i) {
        futures.push_back(router.submit(/*client_id=*/1 + (i % 4),
                                        frames.image(static_cast<std::size_t>(i % 8))));
        if (!killed && i == kTotal / 3) {
            router.kill_worker(0);  // SIGKILL mid-load, in-flight frames stranded
            killed = true;
        }
    }

    // The invariant under test: every accepted future resolves. The deadline
    // is a hang detector, not a latency bound.
    std::uint64_t by_status[6] = {};
    int unresolved = 0;
    for (auto& f : futures) {
        if (f.wait_for(std::chrono::seconds(120)) != std::future_status::ready) {
            ++unresolved;
            continue;
        }
        const ServeResult r = f.get();
        by_status[static_cast<int>(r.status)]++;
    }
    EXPECT_EQ(unresolved, 0) << "futures abandoned after worker kill";
    EXPECT_EQ(by_status[static_cast<int>(ServeStatus::kOk)] +
                  by_status[static_cast<int>(ServeStatus::kDropped)] +
                  by_status[static_cast<int>(ServeStatus::kRejected)] +
                  by_status[static_cast<int>(ServeStatus::kTimeout)] +
                  by_status[static_cast<int>(ServeStatus::kFailed)] +
                  by_status[static_cast<int>(ServeStatus::kShutdown)],
              static_cast<std::uint64_t>(kTotal));
    // Most of the load must still succeed: only frames in flight on the dying
    // worker at the kill instant can shed, and the retry budget covers one
    // re-dispatch each.
    EXPECT_GE(by_status[static_cast<int>(ServeStatus::kOk)],
              static_cast<std::uint64_t>(kTotal - 2 * rc.worker_inflight_limit));

    const cluster::FleetStats fs = router.fleet_stats();
    EXPECT_TRUE(fs.accounting_ok()) << fs.to_json();
    EXPECT_EQ(fs.submitted, static_cast<std::uint64_t>(kTotal));
    EXPECT_GE(fs.worker_deaths, 1u);

    // The watchdog must respawn the killed worker and restore capacity.
    const auto deadline = std::chrono::steady_clock::now() + std::chrono::seconds(60);
    while (router.alive_workers() < 2 &&
           std::chrono::steady_clock::now() < deadline) {
        std::this_thread::sleep_for(std::chrono::milliseconds(10));
    }
    EXPECT_EQ(router.alive_workers(), 2);
    EXPECT_GE(router.fleet_stats(/*timeout_ms=*/5000).worker_respawns, 1u);

    // And the respawned fleet serves again.
    auto after = router.submit(/*client_id=*/1, frames.image(0));
    EXPECT_EQ(after.get().status, ServeStatus::kOk);
    router.stop();
}

}  // namespace
}  // namespace dronet
