// Convolutional layer: geometry, im2col-GEMM forward vs the direct
// reference, full numerical gradient checks (weights, bias, input; with and
// without batch norm), and batch-norm folding equivalence.
#include <gtest/gtest.h>

#include <vector>

#include "nn/network.hpp"
#include "tensor/rng.hpp"

namespace dronet {
namespace {

NetConfig tiny_net_config(int c, int h, int w, int batch = 1) {
    NetConfig nc;
    nc.channels = c;
    nc.height = h;
    nc.width = w;
    nc.batch = batch;
    nc.seed = 77;
    return nc;
}

void randomize_input(Tensor& t, std::uint64_t seed) {
    Rng rng(seed);
    rng.fill_uniform(t.span(), -1.0f, 1.0f);
}

double weighted_sum(const Tensor& out, const std::vector<float>& m) {
    double total = 0;
    for (std::int64_t i = 0; i < out.size(); ++i) total += static_cast<double>(out[i]) * m[static_cast<std::size_t>(i)];
    return total;
}

TEST(ConvLayer, OutputGeometry) {
    Network net(tiny_net_config(3, 16, 16));
    auto& conv = net.add_conv({.filters = 8, .ksize = 3, .stride = 1, .pad = 1});
    EXPECT_EQ(conv.output_shape(), (Shape{1, 8, 16, 16}));
    Network net2(tiny_net_config(3, 16, 16));
    auto& strided = net2.add_conv({.filters = 4, .ksize = 3, .stride = 2, .pad = 1});
    EXPECT_EQ(strided.output_shape(), (Shape{1, 4, 8, 8}));
}

TEST(ConvLayer, RejectsBadConfig) {
    Network net(tiny_net_config(3, 8, 8));
    EXPECT_THROW(net.add_conv({.filters = 0}), std::invalid_argument);
    EXPECT_THROW(net.add_conv({.filters = 4, .ksize = -1}), std::invalid_argument);
}

TEST(ConvLayer, ParamCount) {
    Network net(tiny_net_config(3, 8, 8));
    auto& conv = net.add_conv({.filters = 16, .ksize = 3, .stride = 1, .pad = 1,
                               .batch_normalize = true});
    // weights 16*3*9 + biases 16 + scales 16.
    EXPECT_EQ(conv.param_count(), 16 * 27 + 16 + 16);
}

TEST(ConvLayer, FlopsFormula) {
    Network net(tiny_net_config(3, 10, 10));
    auto& conv = net.add_conv({.filters = 4, .ksize = 3, .stride = 1, .pad = 1});
    // 2 * 100 * 4 * 27 MACs + 3 * 400 pointwise.
    EXPECT_EQ(conv.flops(), 2LL * 100 * 4 * 27 + 3LL * 400);
}

TEST(ConvLayer, GemmForwardMatchesDirect) {
    Network net(tiny_net_config(3, 9, 9));
    auto& conv = net.add_conv({.filters = 5, .ksize = 3, .stride = 2, .pad = 1,
                               .activation = Activation::kLeaky});
    Tensor in(net.input_shape());
    randomize_input(in, 5);
    net.forward(in);
    Tensor direct;
    conv.forward_direct(in, direct);
    ASSERT_EQ(direct.shape(), conv.output().shape());
    for (std::int64_t i = 0; i < direct.size(); ++i) {
        EXPECT_NEAR(direct[i], conv.output()[i], 1e-4f);
    }
}

TEST(ConvLayer, OneByOneFastPathMatchesDirect) {
    Network net(tiny_net_config(6, 7, 7));
    auto& conv = net.add_conv({.filters = 3, .ksize = 1, .stride = 1, .pad = 0,
                               .activation = Activation::kLinear});
    EXPECT_EQ(conv.workspace_bytes(), 0u);  // 1x1 path needs no im2col buffer
    Tensor in(net.input_shape());
    randomize_input(in, 6);
    net.forward(in);
    Tensor direct;
    conv.forward_direct(in, direct);
    for (std::int64_t i = 0; i < direct.size(); ++i) {
        EXPECT_NEAR(direct[i], conv.output()[i], 1e-4f);
    }
}

struct GradCase {
    bool batch_norm;
    Activation act;
    int ksize;
    int stride;
    int pad;
    int batch;
};

class ConvGradient : public ::testing::TestWithParam<GradCase> {};

// Full numerical gradient check of dLoss/dInput, dLoss/dWeights, dLoss/dBias
// where Loss = <output, M> for a fixed random M.
TEST_P(ConvGradient, MatchesFiniteDifferences) {
    const GradCase p = GetParam();
    Network net(tiny_net_config(2, 6, 6, p.batch));
    auto& conv = net.add_conv({.filters = 3, .ksize = p.ksize, .stride = p.stride,
                               .pad = p.pad, .batch_normalize = p.batch_norm,
                               .activation = p.act});
    Tensor in(net.input_shape());
    randomize_input(in, 42);
    Rng mrng(43);
    std::vector<float> m(static_cast<std::size_t>(conv.output_shape().size()));
    mrng.fill_uniform(m, -1.0f, 1.0f);

    // Analytic gradients.
    net.forward(in, /*train=*/true);
    for (std::int64_t i = 0; i < conv.delta().size(); ++i) {
        conv.delta()[i] = m[static_cast<std::size_t>(i)];
    }
    Tensor in_delta(in.shape());
    conv.backward(in, &in_delta, net);

    // Small eps keeps finite differences away from the leaky-ReLU kink; the
    // tolerance absorbs the rare unit that still straddles it.
    const float eps = 1e-3f;
    const auto tol = [](double numeric) {
        return std::max(0.05, 0.08 * std::abs(numeric));
    };
    auto loss_at = [&]() {
        net.forward(in, /*train=*/true);
        return weighted_sum(conv.output(), m);
    };

    // Input gradient (spot-check a spread of positions).
    for (std::int64_t i = 0; i < in.size(); i += 7) {
        const float saved = in[i];
        in[i] = saved + eps;
        const double up = loss_at();
        in[i] = saved - eps;
        const double down = loss_at();
        in[i] = saved;
        const double numeric = (up - down) / (2.0 * eps);
        EXPECT_NEAR(in_delta[i], numeric, tol(numeric))
            << "input grad at " << i;
    }
    // Weight gradient.
    for (std::size_t i = 0; i < conv.weights().size(); i += 5) {
        const float saved = conv.weights().v[i];
        conv.weights().v[i] = saved + eps;
        const double up = loss_at();
        conv.weights().v[i] = saved - eps;
        const double down = loss_at();
        conv.weights().v[i] = saved;
        const double numeric = (up - down) / (2.0 * eps);
        EXPECT_NEAR(conv.weights().g[i], numeric, tol(numeric))
            << "weight grad at " << i;
    }
    // Bias gradient.
    for (std::size_t i = 0; i < conv.biases().size(); ++i) {
        const float saved = conv.biases().v[i];
        conv.biases().v[i] = saved + eps;
        const double up = loss_at();
        conv.biases().v[i] = saved - eps;
        const double down = loss_at();
        conv.biases().v[i] = saved;
        const double numeric = (up - down) / (2.0 * eps);
        EXPECT_NEAR(conv.biases().g[i], numeric, tol(numeric))
            << "bias grad at " << i;
    }
    // Batch-norm scale gradient.
    if (p.batch_norm) {
        for (std::size_t i = 0; i < conv.scales().size(); ++i) {
            const float saved = conv.scales().v[i];
            conv.scales().v[i] = saved + eps;
            const double up = loss_at();
            conv.scales().v[i] = saved - eps;
            const double down = loss_at();
            conv.scales().v[i] = saved;
            const double numeric = (up - down) / (2.0 * eps);
            EXPECT_NEAR(conv.scales().g[i], numeric, tol(numeric))
                << "scale grad at " << i;
        }
    }
}

INSTANTIATE_TEST_SUITE_P(
    Configs, ConvGradient,
    ::testing::Values(GradCase{false, Activation::kLinear, 3, 1, 1, 1},
                      GradCase{false, Activation::kLeaky, 3, 1, 1, 2},
                      GradCase{false, Activation::kLinear, 1, 1, 0, 1},
                      GradCase{true, Activation::kLinear, 3, 1, 1, 2},
                      GradCase{true, Activation::kLeaky, 3, 1, 1, 2},
                      GradCase{false, Activation::kLinear, 3, 2, 1, 1}));

TEST(ConvLayer, BatchNormFoldingPreservesEvalOutput) {
    Network net(tiny_net_config(3, 8, 8));
    auto& conv = net.add_conv({.filters = 6, .ksize = 3, .stride = 1, .pad = 1,
                               .batch_normalize = true});
    // Give the rolling stats non-trivial values via a few training passes.
    Tensor in(net.input_shape());
    for (int pass = 0; pass < 5; ++pass) {
        randomize_input(in, 100 + static_cast<std::uint64_t>(pass));
        net.forward(in, /*train=*/true);
    }
    randomize_input(in, 200);
    net.forward(in, /*train=*/false);
    const Tensor before = conv.output();
    conv.fold_batchnorm();
    EXPECT_FALSE(conv.config().batch_normalize);
    net.forward(in, /*train=*/false);
    for (std::int64_t i = 0; i < before.size(); ++i) {
        EXPECT_NEAR(before[i], conv.output()[i], 1e-3f);
    }
}

TEST(ConvLayer, ResizePreservesWeights) {
    Network net(tiny_net_config(3, 8, 8));
    auto& conv = net.add_conv({.filters = 4, .ksize = 3, .stride = 1, .pad = 1});
    const std::vector<float> w = conv.weights().v;
    net.resize_input(12, 12);
    EXPECT_EQ(conv.output_shape(), (Shape{1, 4, 12, 12}));
    EXPECT_EQ(conv.weights().v, w);
}

TEST(ConvLayer, ForwardRejectsWrongShape) {
    Network net(tiny_net_config(3, 8, 8));
    net.add_conv({.filters = 4, .ksize = 3, .stride = 1, .pad = 1});
    Tensor wrong(1, 3, 9, 9);
    EXPECT_THROW(net.forward(wrong), std::invalid_argument);
}

}  // namespace
}  // namespace dronet
