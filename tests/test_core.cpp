// Detector façade and visualization helpers.
#include <gtest/gtest.h>

#include <filesystem>
#include <fstream>

#include "core/detector.hpp"
#include "core/visualize.hpp"
#include "data/scene.hpp"
#include "eval/evaluator.hpp"
#include "nn/cfg.hpp"

namespace dronet {
namespace {

Detector micro_detector() {
    Detector::Options opts;
    opts.model = ModelId::kDroNet;
    opts.input_size = 64;
    opts.filter_scale = 0.25f;
    return Detector(opts);
}

TEST(Detector, ConstructsWithDefaults) {
    Detector d = micro_detector();
    EXPECT_EQ(d.input_size(), 64);
    EXPECT_NE(d.network().region(), nullptr);
    EXPECT_EQ(d.network().config().batch, 1);
}

TEST(Detector, DetectAcceptsAnyImageSize) {
    Detector d = micro_detector();
    AerialSceneGenerator gen(benchmark_scene_config(200), 3);
    const SceneSample s = gen.generate();
    const Detections dets = d.detect(s.image);  // 200x200 resampled to 64
    for (const Detection& det : dets) {
        EXPECT_GE(det.score(), d.post().score_threshold);
    }
}

TEST(Detector, SetInputSizePreservesWeights) {
    Detector d = micro_detector();
    auto& conv = dynamic_cast<ConvolutionalLayer&>(d.network().layer(0));
    const std::vector<float> w = conv.weights().v;
    d.set_input_size(96);
    EXPECT_EQ(d.input_size(), 96);
    EXPECT_EQ(conv.weights().v, w);
}

TEST(Detector, SummaryMentionsStructure) {
    Detector d = micro_detector();
    const std::string s = d.summary();
    EXPECT_NE(s.find("conv"), std::string::npos);
    EXPECT_NE(s.find("region"), std::string::npos);
}

TEST(Detector, WeightRoundTripKeepsDetections) {
    const auto path = std::filesystem::temp_directory_path() / "dronet_core_test.weights";
    Detector a = micro_detector();
    AerialSceneGenerator gen(benchmark_scene_config(64), 5);
    const SceneSample s = gen.generate();
    a.post().score_threshold = 0.0f;
    const Detections before = a.detect(s.image);
    a.save_weights(path);

    Detector b = micro_detector();
    b.post().score_threshold = 0.0f;
    b.load_weights(path);
    const Detections after = b.detect(s.image);
    ASSERT_EQ(before.size(), after.size());
    for (std::size_t i = 0; i < before.size(); ++i) {
        EXPECT_FLOAT_EQ(before[i].objectness, after[i].objectness);
        EXPECT_FLOAT_EQ(before[i].box.x, after[i].box.x);
    }
    std::filesystem::remove(path);
}

TEST(Detector, FromFilesBuildsNetwork) {
    const auto cfg_path = std::filesystem::temp_directory_path() / "dronet_core_test.cfg";
    {
        Detector d = micro_detector();
        std::ofstream out(cfg_path);
        out << network_to_cfg(d.network());
    }
    Detector d = Detector::from_files(cfg_path);
    EXPECT_EQ(d.input_size(), 64);
    EXPECT_THROW(Detector::from_files("/no/such.cfg"), std::runtime_error);
    std::filesystem::remove(cfg_path);
}

TEST(Visualize, DrawDetectionsDoesNotTouchUnboxedPixels) {
    Image im(32, 32, 3);
    Detections dets;
    Detection d;
    d.box = {0.5f, 0.5f, 0.4f, 0.4f};
    d.objectness = 1.0f;
    d.class_prob = 1.0f;
    dets.push_back(d);
    const Image out = draw_detections(im, dets, 1);
    EXPECT_GT(out.px(16, 10, 1), 0.5f);  // on the top edge of the box
    EXPECT_FLOAT_EQ(out.px(0, 0, 1), 0.0f);
    EXPECT_FLOAT_EQ(out.px(16, 16, 1), 0.0f);  // interior untouched
}

TEST(Visualize, GroundTruthDrawsWhite) {
    Image im(32, 32, 3);
    const std::vector<GroundTruth> truths = {{{0.5f, 0.5f, 0.5f, 0.5f}, 0}};
    const Image out = draw_ground_truth(im, truths);
    EXPECT_FLOAT_EQ(out.px(16, 8, 0), 1.0f);
    EXPECT_FLOAT_EQ(out.px(16, 8, 2), 1.0f);
}

TEST(Visualize, OriginalImageUnmodified) {
    Image im(16, 16, 3);
    Detections dets;
    Detection d;
    d.box = {0.5f, 0.5f, 0.5f, 0.5f};
    d.objectness = 1.0f;
    d.class_prob = 1.0f;
    dets.push_back(d);
    (void)draw_detections(im, dets);
    for (std::size_t i = 0; i < im.size(); ++i) EXPECT_FLOAT_EQ(im.data()[i], 0.0f);
}

}  // namespace
}  // namespace dronet
