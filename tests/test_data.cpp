// Synthetic scenes, dataset plumbing, augmentation box math, annotation I/O.
#include <gtest/gtest.h>

#include <filesystem>

#include "data/annotations.hpp"
#include "data/augment.hpp"
#include "data/dataset.hpp"
#include "data/scene.hpp"

namespace dronet {
namespace {

TEST(Scene, VehicleGroundTruthAxisAligned) {
    VehiclePose pose;
    pose.cx = 50;
    pose.cy = 40;
    pose.length = 20;
    pose.width = 10;
    pose.angle = 0;
    const GroundTruth gt = vehicle_ground_truth(pose, 100, 100);
    EXPECT_NEAR(gt.box.x, 0.5f, 1e-5f);
    EXPECT_NEAR(gt.box.y, 0.4f, 1e-5f);
    EXPECT_NEAR(gt.box.w, 0.2f, 1e-5f);
    EXPECT_NEAR(gt.box.h, 0.1f, 1e-5f);
}

TEST(Scene, RotatedGroundTruthGrows) {
    VehiclePose pose;
    pose.cx = pose.cy = 50;
    pose.length = 20;
    pose.width = 10;
    pose.angle = 0.785398f;  // 45 degrees
    const GroundTruth gt = vehicle_ground_truth(pose, 100, 100);
    // AABB of a rotated rect is larger than the axis-aligned footprint.
    EXPECT_GT(gt.box.w, 0.2f);
    EXPECT_NEAR(gt.box.w, gt.box.h, 1e-5f);
}

TEST(Scene, GroundTruthClampedAtBorders) {
    VehiclePose pose;
    pose.cx = 2;
    pose.cy = 50;
    pose.length = 20;
    pose.width = 10;
    pose.angle = 0;
    const GroundTruth gt = vehicle_ground_truth(pose, 100, 100);
    EXPECT_GE(gt.box.left(), 0.0f);
    EXPECT_LE(gt.box.right(), 1.0f);
}

TEST(Scene, DrawVehicleChangesPixels) {
    Image im(64, 64, 3);
    VehiclePose pose;
    pose.cx = pose.cy = 32;
    pose.length = 20;
    pose.width = 10;
    pose.body = {0.9f, 0.1f, 0.1f};
    draw_vehicle(im, pose);
    EXPECT_GT(im.px(32, 32, 0), 0.0f);
}

TEST(Scene, GeneratorDeterministic) {
    const SceneConfig config = benchmark_scene_config(96);
    AerialSceneGenerator a(config, 5), b(config, 5);
    const SceneSample sa = a.generate();
    const SceneSample sb = b.generate();
    ASSERT_EQ(sa.truths.size(), sb.truths.size());
    for (std::size_t i = 0; i < sa.image.size(); ++i) {
        ASSERT_EQ(sa.image.data()[i], sb.image.data()[i]);
    }
}

TEST(Scene, GeneratorRespectsVehicleCountBounds) {
    SceneConfig config = benchmark_scene_config(96);
    config.min_vehicles = 2;
    config.max_vehicles = 4;
    AerialSceneGenerator gen(config, 11);
    for (int i = 0; i < 10; ++i) {
        const SceneSample s = gen.generate();
        // Rejection sampling may drop a vehicle but never exceeds max.
        EXPECT_LE(s.truths.size(), 4u);
        EXPECT_GE(s.truths.size(), 1u);
    }
}

TEST(Scene, TruthsWithinUnitSquareAndSizeBand) {
    SceneConfig config = benchmark_scene_config(128);
    AerialSceneGenerator gen(config, 13);
    for (int i = 0; i < 8; ++i) {
        for (const GroundTruth& gt : gen.generate().truths) {
            EXPECT_GE(gt.box.left(), -1e-5f);
            EXPECT_LE(gt.box.right(), 1.0f + 1e-5f);
            EXPECT_GT(gt.box.w, 0.0f);
            // AABB of the long side can exceed max_vehicle_size by sqrt(2).
            EXPECT_LT(std::max(gt.box.w, gt.box.h),
                      config.max_vehicle_size * 1.5f);
        }
    }
}

TEST(Scene, VehiclesDoNotPileUp) {
    AerialSceneGenerator gen(benchmark_scene_config(128), 17);
    for (int i = 0; i < 5; ++i) {
        const SceneSample s = gen.generate();
        for (std::size_t a = 0; a < s.truths.size(); ++a) {
            for (std::size_t b = a + 1; b < s.truths.size(); ++b) {
                EXPECT_LT(iou(s.truths[a].box, s.truths[b].box), 0.35f);
            }
        }
    }
}

TEST(Dataset, AddAndAccess) {
    DetectionDataset ds;
    Image im(8, 8, 3);
    ds.add(im, {GroundTruth{{0.5f, 0.5f, 0.2f, 0.2f}, 0}});
    EXPECT_EQ(ds.size(), 1u);
    EXPECT_EQ(ds.total_objects(), 1u);
    EXPECT_THROW(ds.add(Image{}, {}), std::invalid_argument);
}

TEST(Dataset, SplitIsDisjointAndComplete) {
    const DetectionDataset ds = generate_dataset(benchmark_scene_config(64), 20, 3);
    const auto [train, test] = ds.split(0.25f);
    EXPECT_EQ(train.size() + test.size(), 20u);
    EXPECT_EQ(test.size(), 5u);
    EXPECT_THROW(ds.split(0.0f), std::invalid_argument);
    EXPECT_THROW(ds.split(1.0f), std::invalid_argument);
}

TEST(Dataset, FillBatchResamplesAndWraps) {
    const DetectionDataset ds = generate_dataset(benchmark_scene_config(64), 3, 4);
    Tensor batch(5, 3, 32, 32);
    const auto truths = ds.fill_batch(batch, 1);
    ASSERT_EQ(truths.size(), 5u);
    // Wrapping: slot 2 is dataset item 0 again; truths match.
    EXPECT_EQ(truths[2].size(), ds.truths(0).size());
    EXPECT_THROW(DetectionDataset{}.fill_batch(batch, 0), std::logic_error);
}

TEST(Dataset, BenchmarkSetsAreDeterministicAndDisjoint) {
    const DetectionDataset a = benchmark_train_set(10, 96);
    const DetectionDataset b = benchmark_train_set(10, 96);
    ASSERT_EQ(a.size(), b.size());
    for (std::size_t i = 0; i < a.image(0).size(); ++i) {
        ASSERT_EQ(a.image(0).data()[i], b.image(0).data()[i]);
    }
    // Different seed streams for train vs test.
    const DetectionDataset t = benchmark_test_set(10, 96);
    bool differs = false;
    for (std::size_t i = 0; i < a.image(0).size() && !differs; ++i) {
        differs = a.image(0).data()[i] != t.image(0).data()[i];
    }
    EXPECT_TRUE(differs);
}

TEST(Augment, NoopConfigKeepsBoxes) {
    AerialSceneGenerator gen(benchmark_scene_config(64), 21);
    const SceneSample s = gen.generate();
    AugmentConfig cfg;
    cfg.flip_prob = 0;
    cfg.jitter = 0;
    cfg.hue = 0;
    cfg.saturation = 1;
    cfg.exposure = 1;
    Rng rng(1);
    const SceneSample out = augment(s, cfg, rng);
    ASSERT_EQ(out.truths.size(), s.truths.size());
    for (std::size_t i = 0; i < s.truths.size(); ++i) {
        EXPECT_NEAR(out.truths[i].box.x, s.truths[i].box.x, 0.02f);
        EXPECT_NEAR(out.truths[i].box.w, s.truths[i].box.w, 0.02f);
    }
}

TEST(Augment, FlipMirrorsBoxes) {
    SceneSample s;
    s.image = Image(64, 64, 3);
    s.truths = {GroundTruth{{0.2f, 0.5f, 0.1f, 0.1f}, 0}};
    AugmentConfig cfg;
    cfg.flip_prob = 1.0f;
    cfg.jitter = 0;
    cfg.hue = 0;
    cfg.saturation = 1;
    cfg.exposure = 1;
    Rng rng(2);
    const SceneSample out = augment(s, cfg, rng);
    ASSERT_EQ(out.truths.size(), 1u);
    EXPECT_NEAR(out.truths[0].box.x, 0.8f, 1e-5f);
    EXPECT_NEAR(out.truths[0].box.y, 0.5f, 1e-5f);
}

TEST(Augment, CropDropsMostlyHiddenBoxes) {
    SceneSample s;
    s.image = Image(100, 100, 3);
    // Box hugging the left edge; a right-side crop of 30% must remove it.
    s.truths = {GroundTruth{{0.05f, 0.5f, 0.1f, 0.1f}, 0},
                GroundTruth{{0.7f, 0.5f, 0.1f, 0.1f}, 0}};
    AugmentConfig cfg;
    cfg.flip_prob = 0;
    cfg.jitter = 0;
    cfg.min_visibility = 0.5f;
    Rng rng(3);
    // Simulate the crop through the public API by jittering deterministically:
    // with jitter=0 nothing is cropped, so instead exercise visibility via a
    // manual crop-heavy config (jitter close to the box).
    cfg.jitter = 0.3f;
    bool dropped_any = false;
    for (int trial = 0; trial < 20; ++trial) {
        const SceneSample out = augment(s, cfg, rng);
        EXPECT_LE(out.truths.size(), 2u);
        if (out.truths.size() < 2) dropped_any = true;
        for (const GroundTruth& gt : out.truths) {
            EXPECT_GE(gt.box.left(), -1e-4f);
            EXPECT_LE(gt.box.right(), 1.0f + 1e-4f);
        }
    }
    EXPECT_TRUE(dropped_any);
}

TEST(Annotations, TextRoundTrip) {
    const std::vector<GroundTruth> truths = {
        {{0.5f, 0.25f, 0.125f, 0.0625f}, 0}, {{0.1f, 0.9f, 0.05f, 0.07f}, 2}};
    const std::vector<GroundTruth> back = truths_from_text(truths_to_text(truths));
    ASSERT_EQ(back.size(), 2u);
    EXPECT_EQ(back[1].class_id, 2);
    EXPECT_NEAR(back[0].box.w, 0.125f, 1e-6f);
}

TEST(Annotations, RejectsMalformedText) {
    EXPECT_THROW(truths_from_text("0 0.5 0.5 nope 0.1\n"), std::runtime_error);
}

TEST(Annotations, DatasetDiskRoundTrip) {
    const auto dir = std::filesystem::temp_directory_path() / "dronet_test_ds";
    const DetectionDataset ds = generate_dataset(benchmark_scene_config(48), 4, 6);
    save_dataset(ds, dir);
    const DetectionDataset back = load_dataset(dir);
    ASSERT_EQ(back.size(), ds.size());
    EXPECT_EQ(back.total_objects(), ds.total_objects());
    for (std::size_t i = 0; i < ds.truths(2).size(); ++i) {
        EXPECT_NEAR(back.truths(2)[i].box.x, ds.truths(2)[i].box.x, 1e-6f);
    }
    // Pixels survive 8-bit quantization.
    EXPECT_NEAR(back.image(1).px(10, 10, 1), ds.image(1).px(10, 10, 1), 1.0f / 255.0f);
    std::filesystem::remove_all(dir);
}

TEST(Annotations, LoadMissingDirectoryThrows) {
    EXPECT_THROW(load_dataset("/no/such/dataset_dir"), std::runtime_error);
}

}  // namespace
}  // namespace dronet
