// Boxes, IoU properties, NMS invariants and the altitude filter (§III.D).
#include <gtest/gtest.h>

#include "detect/altitude_filter.hpp"
#include "detect/box.hpp"
#include "detect/nms.hpp"
#include "tensor/rng.hpp"

namespace dronet {
namespace {

Box make_box(float x, float y, float w, float h) { return Box{x, y, w, h}; }

Detection make_det(Box b, float obj, int cls = 0, float cls_prob = 1.0f) {
    Detection d;
    d.box = b;
    d.objectness = obj;
    d.class_id = cls;
    d.class_prob = cls_prob;
    return d;
}

TEST(Box, CornerConversions) {
    const Box b = make_box(0.5f, 0.5f, 0.2f, 0.4f);
    EXPECT_FLOAT_EQ(b.left(), 0.4f);
    EXPECT_FLOAT_EQ(b.right(), 0.6f);
    EXPECT_FLOAT_EQ(b.top(), 0.3f);
    EXPECT_FLOAT_EQ(b.bottom(), 0.7f);
    const Box back = Box::from_corners(b.left(), b.top(), b.right(), b.bottom());
    EXPECT_NEAR(back.x, b.x, 1e-6f);
    EXPECT_NEAR(back.w, b.w, 1e-6f);
}

TEST(Iou, IdenticalBoxesIsOne) {
    const Box b = make_box(0.3f, 0.3f, 0.2f, 0.2f);
    EXPECT_NEAR(iou(b, b), 1.0f, 1e-5f);
}

TEST(Iou, DisjointIsZero) {
    EXPECT_FLOAT_EQ(iou(make_box(0.2f, 0.2f, 0.1f, 0.1f),
                        make_box(0.8f, 0.8f, 0.1f, 0.1f)),
                    0.0f);
}

TEST(Iou, KnownOverlap) {
    // Two unit squares offset by half: intersection 0.5, union 1.5.
    const Box a = make_box(0.5f, 0.5f, 1.0f, 1.0f);
    const Box b = make_box(1.0f, 0.5f, 1.0f, 1.0f);
    EXPECT_NEAR(iou(a, b), 1.0f / 3.0f, 1e-6f);
}

TEST(Iou, ZeroAreaBoxes) {
    const Box degenerate = make_box(0.5f, 0.5f, 0.0f, 0.0f);
    EXPECT_FLOAT_EQ(iou(degenerate, degenerate), 0.0f);
}

// Property sweep: symmetry, range, containment ordering.
class IouProperties : public ::testing::TestWithParam<int> {};

TEST_P(IouProperties, SymmetricAndBounded) {
    Rng rng(static_cast<std::uint64_t>(GetParam()));
    for (int i = 0; i < 50; ++i) {
        const Box a = make_box(rng.uniform(), rng.uniform(), rng.uniform(0.01f, 0.5f),
                               rng.uniform(0.01f, 0.5f));
        const Box b = make_box(rng.uniform(), rng.uniform(), rng.uniform(0.01f, 0.5f),
                               rng.uniform(0.01f, 0.5f));
        const float ab = iou(a, b);
        EXPECT_FLOAT_EQ(ab, iou(b, a));
        EXPECT_GE(ab, 0.0f);
        EXPECT_LE(ab, 1.0f);
        EXPECT_LE(box_intersection(a, b), std::min(a.area(), b.area()) + 1e-6f);
        EXPECT_GE(box_union(a, b), std::max(a.area(), b.area()) - 1e-6f);
    }
}

INSTANTIATE_TEST_SUITE_P(Seeds, IouProperties, ::testing::Values(1, 2, 3, 4, 5));

TEST(BoxRmse, ZeroForIdentical) {
    const Box b = make_box(0.1f, 0.2f, 0.3f, 0.4f);
    EXPECT_FLOAT_EQ(box_rmse(b, b), 0.0f);
    EXPECT_GT(box_rmse(b, make_box(0.5f, 0.2f, 0.3f, 0.4f)), 0.0f);
}

TEST(Detection, ScoreIsProduct) {
    const Detection d = make_det(make_box(0, 0, 1, 1), 0.5f, 0, 0.8f);
    EXPECT_FLOAT_EQ(d.score(), 0.4f);
}

TEST(FilterByScore, Thresholds) {
    Detections dets = {make_det(make_box(0.5f, 0.5f, 0.1f, 0.1f), 0.9f),
                       make_det(make_box(0.5f, 0.5f, 0.1f, 0.1f), 0.1f)};
    const Detections out = filter_by_score(dets, 0.5f);
    ASSERT_EQ(out.size(), 1u);
    EXPECT_FLOAT_EQ(out[0].objectness, 0.9f);
}

TEST(Nms, SuppressesOverlapsKeepsBest) {
    Detections dets = {make_det(make_box(0.5f, 0.5f, 0.2f, 0.2f), 0.9f),
                       make_det(make_box(0.51f, 0.5f, 0.2f, 0.2f), 0.8f),
                       make_det(make_box(0.9f, 0.9f, 0.1f, 0.1f), 0.7f)};
    const Detections out = nms(dets, 0.45f);
    ASSERT_EQ(out.size(), 2u);
    EXPECT_FLOAT_EQ(out[0].objectness, 0.9f);
    EXPECT_FLOAT_EQ(out[1].objectness, 0.7f);
}

TEST(Nms, DifferentClassesNotSuppressed) {
    Detections dets = {make_det(make_box(0.5f, 0.5f, 0.2f, 0.2f), 0.9f, 0),
                       make_det(make_box(0.5f, 0.5f, 0.2f, 0.2f), 0.8f, 1)};
    EXPECT_EQ(nms(dets, 0.45f).size(), 2u);
}

TEST(Nms, EmptyInput) {
    EXPECT_TRUE(nms({}, 0.45f).empty());
}

// NMS invariants over random inputs: output subset of input, sorted by
// score, no same-class surviving pair above the threshold.
class NmsProperties : public ::testing::TestWithParam<float> {};

TEST_P(NmsProperties, Invariants) {
    const float thresh = GetParam();
    Rng rng(99);
    Detections dets;
    for (int i = 0; i < 60; ++i) {
        dets.push_back(make_det(make_box(rng.uniform(0.2f, 0.8f), rng.uniform(0.2f, 0.8f),
                                         rng.uniform(0.05f, 0.3f), rng.uniform(0.05f, 0.3f)),
                                rng.uniform(0.01f, 1.0f), rng.uniform_int(0, 1)));
    }
    const Detections out = nms(dets, thresh);
    EXPECT_LE(out.size(), dets.size());
    for (std::size_t i = 0; i + 1 < out.size(); ++i) {
        EXPECT_GE(out[i].score(), out[i + 1].score());
    }
    for (std::size_t i = 0; i < out.size(); ++i) {
        for (std::size_t j = i + 1; j < out.size(); ++j) {
            if (out[i].class_id == out[j].class_id) {
                EXPECT_LE(iou(out[i].box, out[j].box), thresh + 1e-6f);
            }
        }
    }
}

INSTANTIATE_TEST_SUITE_P(Thresholds, NmsProperties,
                         ::testing::Values(0.1f, 0.3f, 0.45f, 0.7f));

TEST(Postprocess, CombinesFilterAndNms) {
    Detections dets = {make_det(make_box(0.5f, 0.5f, 0.2f, 0.2f), 0.9f),
                       make_det(make_box(0.5f, 0.5f, 0.2f, 0.2f), 0.85f),
                       make_det(make_box(0.2f, 0.2f, 0.1f, 0.1f), 0.05f)};
    const Detections out = postprocess(dets, 0.3f, 0.45f);
    ASSERT_EQ(out.size(), 1u);
}

TEST(AltitudeFilter, SizeRangeShrinksWithAltitude) {
    const AltitudeFilter f(CameraModel{}, VehicleSizePrior{});
    const auto low = f.plausible_size(20.0f);
    const auto high = f.plausible_size(100.0f);
    EXPECT_GT(low.max_norm, high.max_norm);
    EXPECT_GT(low.min_norm, high.min_norm);
    EXPECT_LT(low.min_norm, low.max_norm);
}

TEST(AltitudeFilter, RejectsNonPositiveAltitude) {
    const AltitudeFilter f(CameraModel{}, VehicleSizePrior{});
    EXPECT_THROW(static_cast<void>(f.plausible_size(0.0f)), std::invalid_argument);
    EXPECT_THROW(f.apply({}, -3.0f), std::invalid_argument);
}

TEST(AltitudeFilter, DropsImplausibleDetections) {
    // focal 1000 px, frame 1280 px wide, altitude 50 m: a 4.5 m car spans
    // 90 px = 0.07 normalized. A 0.5-normalized "vehicle" is a building.
    const AltitudeFilter f(CameraModel{1000.0f, 1280, 720}, VehicleSizePrior{});
    Detections dets = {make_det(make_box(0.5f, 0.5f, 0.07f, 0.04f), 0.9f),
                       make_det(make_box(0.5f, 0.5f, 0.5f, 0.5f), 0.9f),
                       make_det(make_box(0.5f, 0.5f, 0.001f, 0.001f), 0.9f)};
    const Detections out = f.apply(dets, 50.0f);
    ASSERT_EQ(out.size(), 1u);
    EXPECT_NEAR(out[0].box.w, 0.07f, 1e-6f);
}

}  // namespace
}  // namespace dronet
