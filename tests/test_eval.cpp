// Metrics (paper eq. 1-2), greedy matcher, Score metric (eq. 3),
// normalization and the FPS meter.
#include <gtest/gtest.h>

#include <thread>

#include "eval/fps_meter.hpp"
#include "eval/metrics.hpp"
#include "eval/score.hpp"

namespace dronet {
namespace {

Detection det(float x, float y, float w, float h, float score, int cls = 0) {
    Detection d;
    d.box = {x, y, w, h};
    d.objectness = score;
    d.class_prob = 1.0f;
    d.class_id = cls;
    return d;
}

GroundTruth gt(float x, float y, float w, float h, int cls = 0) {
    return GroundTruth{{x, y, w, h}, cls};
}

TEST(Metrics, PerfectDetection) {
    const DetectionMetrics m = match_detections({det(0.5f, 0.5f, 0.2f, 0.2f, 0.9f)},
                                                {gt(0.5f, 0.5f, 0.2f, 0.2f)});
    EXPECT_EQ(m.true_positives, 1);
    EXPECT_EQ(m.false_positives, 0);
    EXPECT_EQ(m.false_negatives, 0);
    EXPECT_FLOAT_EQ(m.sensitivity(), 1.0f);
    EXPECT_FLOAT_EQ(m.precision(), 1.0f);
    EXPECT_FLOAT_EQ(m.avg_iou(), 1.0f);
    EXPECT_FLOAT_EQ(m.f1(), 1.0f);
}

TEST(Metrics, MissAndFalseAlarm) {
    const DetectionMetrics m = match_detections({det(0.9f, 0.9f, 0.05f, 0.05f, 0.8f)},
                                                {gt(0.2f, 0.2f, 0.2f, 0.2f)});
    EXPECT_EQ(m.true_positives, 0);
    EXPECT_EQ(m.false_positives, 1);
    EXPECT_EQ(m.false_negatives, 1);
    EXPECT_FLOAT_EQ(m.sensitivity(), 0.0f);
    EXPECT_FLOAT_EQ(m.precision(), 0.0f);
}

TEST(Metrics, EachTruthMatchedOnce) {
    // Two detections over the same truth: one TP, one FP.
    const DetectionMetrics m = match_detections(
        {det(0.5f, 0.5f, 0.2f, 0.2f, 0.9f), det(0.51f, 0.5f, 0.2f, 0.2f, 0.8f)},
        {gt(0.5f, 0.5f, 0.2f, 0.2f)});
    EXPECT_EQ(m.true_positives, 1);
    EXPECT_EQ(m.false_positives, 1);
}

TEST(Metrics, HigherScoreMatchesFirst) {
    // The higher-scored detection gets the truth even if listed second.
    const DetectionMetrics m = match_detections(
        {det(0.52f, 0.5f, 0.2f, 0.2f, 0.5f), det(0.5f, 0.5f, 0.2f, 0.2f, 0.9f)},
        {gt(0.5f, 0.5f, 0.2f, 0.2f)});
    EXPECT_EQ(m.true_positives, 1);
    EXPECT_FLOAT_EQ(m.avg_iou(), 1.0f);  // the exact-overlap one won
}

TEST(Metrics, ClassMismatchIsFalsePositive) {
    const DetectionMetrics m = match_detections({det(0.5f, 0.5f, 0.2f, 0.2f, 0.9f, 1)},
                                                {gt(0.5f, 0.5f, 0.2f, 0.2f, 0)});
    EXPECT_EQ(m.true_positives, 0);
    EXPECT_EQ(m.false_positives, 1);
    EXPECT_EQ(m.false_negatives, 1);
}

TEST(Metrics, IouThresholdGates) {
    const Detections d = {det(0.55f, 0.5f, 0.2f, 0.2f, 0.9f)};
    const std::vector<GroundTruth> t = {gt(0.5f, 0.5f, 0.2f, 0.2f)};
    EXPECT_EQ(match_detections(d, t, 0.3f).true_positives, 1);
    EXPECT_EQ(match_detections(d, t, 0.9f).true_positives, 0);
}

TEST(Metrics, AccumulationOperator) {
    DetectionMetrics a;
    a.true_positives = 3;
    a.false_negatives = 1;
    a.iou_sum = 2.4;
    DetectionMetrics b;
    b.true_positives = 1;
    b.false_positives = 2;
    b.iou_sum = 0.9;
    a += b;
    EXPECT_EQ(a.true_positives, 4);
    EXPECT_EQ(a.false_positives, 2);
    EXPECT_EQ(a.false_negatives, 1);
    EXPECT_FLOAT_EQ(a.sensitivity(), 0.8f);
    EXPECT_NEAR(a.avg_iou(), 3.3 / 4.0, 1e-6);
}

TEST(Metrics, EmptyEverything) {
    const DetectionMetrics m = match_detections({}, {});
    EXPECT_FLOAT_EQ(m.sensitivity(), 0.0f);
    EXPECT_FLOAT_EQ(m.precision(), 0.0f);
    EXPECT_FLOAT_EQ(m.f1(), 0.0f);
    EXPECT_FLOAT_EQ(m.avg_iou(), 0.0f);
}

TEST(ScoreWeights, PaperDefaultsValid) {
    // Paper: FPS weighted 0.4, accuracy metrics 0.2 each, sum = 1.
    const ScoreWeights w;
    EXPECT_NO_THROW(w.validate());
    EXPECT_FLOAT_EQ(w.fps, 0.4f);
    EXPECT_FLOAT_EQ(w.iou + w.sensitivity + w.precision, 0.6f);
}

TEST(ScoreWeights, RejectsBadWeights) {
    ScoreWeights w;
    w.fps = 0.9f;
    EXPECT_THROW(w.validate(), std::invalid_argument);
    w = ScoreWeights{};
    w.iou = -0.2f;
    w.fps = 0.8f;
    EXPECT_THROW(w.validate(), std::invalid_argument);
}

TEST(Score, CompositeLinearCombination) {
    const float s = composite_score({1.0f, 0.5f, 0.5f, 0.5f});
    EXPECT_NEAR(s, 0.4f + 0.2f * 1.5f, 1e-6f);
}

TEST(Score, NormalizeByMax) {
    const std::vector<float> v = {2.0f, 4.0f, 1.0f};
    const auto out = normalize_by_max(v);
    EXPECT_FLOAT_EQ(out[0], 0.5f);
    EXPECT_FLOAT_EQ(out[1], 1.0f);
    EXPECT_FLOAT_EQ(out[2], 0.25f);
    // All-zero input unchanged.
    const auto zeros = normalize_by_max(std::vector<float>{0.0f, 0.0f});
    EXPECT_FLOAT_EQ(zeros[0], 0.0f);
}

TEST(Score, TableNormalizesPerMetric) {
    // Fast-but-inaccurate vs slow-but-accurate: with the paper's FPS-heavy
    // weights the fast model must win when accuracy is close.
    const std::vector<ScoreInputs> rows = {
        {30.0f, 0.6f, 0.90f, 0.90f},   // fast
        {1.0f, 0.7f, 0.95f, 0.95f}};   // slow, slightly more accurate
    const auto scores = score_table(rows);
    ASSERT_EQ(scores.size(), 2u);
    EXPECT_GT(scores[0], scores[1]);
    // And the winner's score is bounded by 1.
    EXPECT_LE(scores[0], 1.0f + 1e-6f);
}

TEST(Score, EqualRowsScoreEqually) {
    const std::vector<ScoreInputs> rows = {{10, 0.5f, 0.8f, 0.9f}, {10, 0.5f, 0.8f, 0.9f}};
    const auto scores = score_table(rows);
    EXPECT_FLOAT_EQ(scores[0], scores[1]);
    EXPECT_NEAR(scores[0], 1.0f, 1e-6f);  // every metric normalizes to 1
}

TEST(FpsMeter, MeasureFpsPositive) {
    const double fps = measure_fps([] { std::this_thread::sleep_for(std::chrono::milliseconds(1)); },
                                   0, 3);
    EXPECT_GT(fps, 1.0);
    EXPECT_LT(fps, 1000.0);
    EXPECT_THROW(static_cast<void>(measure_fps([] {}, 0, 0)),
                 std::invalid_argument);
}

TEST(FpsMeter, StreamingAccounting) {
    FpsMeter meter;
    for (int i = 0; i < 3; ++i) {
        meter.frame_start();
        std::this_thread::sleep_for(std::chrono::milliseconds(2));
        meter.frame_end();
    }
    EXPECT_EQ(meter.frames(), 3);
    EXPECT_GT(meter.mean_latency_ms(), 1.0);
    EXPECT_GE(meter.max_latency_ms(), meter.mean_latency_ms());
    EXPECT_GT(meter.fps(), 0.0);
    EXPECT_THROW(meter.frame_end(), std::logic_error);
}

}  // namespace
}  // namespace dronet
