// Evaluator: detect_image / detect_images / evaluate_detector plumbing and
// threshold interactions on a controlled, hand-weighted detector.
#include <gtest/gtest.h>

#include <algorithm>
#include <vector>

#include "data/dataset.hpp"
#include "eval/evaluator.hpp"
#include "image/color.hpp"
#include "models/model_zoo.hpp"
#include "tensor/rng.hpp"

namespace dronet {
namespace {

Network micro_net() {
    return build_model(ModelId::kDroNet, {.input_size = 64, .filter_scale = 0.25f});
}

// Field-level exact (bit-identical) comparison of two detection lists.
void expect_identical(const Detections& a, const Detections& b) {
    ASSERT_EQ(a.size(), b.size());
    for (std::size_t i = 0; i < a.size(); ++i) {
        EXPECT_EQ(a[i].box.x, b[i].box.x);
        EXPECT_EQ(a[i].box.y, b[i].box.y);
        EXPECT_EQ(a[i].box.w, b[i].box.w);
        EXPECT_EQ(a[i].box.h, b[i].box.h);
        EXPECT_EQ(a[i].objectness, b[i].objectness);
        EXPECT_EQ(a[i].class_id, b[i].class_id);
        EXPECT_EQ(a[i].class_prob, b[i].class_prob);
    }
}

TEST(DetectImage, RequiresRegionLayer) {
    NetConfig nc;
    nc.width = nc.height = 32;
    nc.channels = 3;
    Network headless(nc);
    headless.add_conv({.filters = 2, .ksize = 3, .stride = 1, .pad = 1});
    Image im(32, 32, 3);
    EXPECT_THROW(detect_image(headless, im, {}), std::logic_error);
}

TEST(DetectImage, ForcesBatchOne) {
    Network net = build_model(ModelId::kDroNet,
                              {.input_size = 64, .batch = 3, .filter_scale = 0.25f});
    Image im(64, 64, 3);
    (void)detect_image(net, im, {});
    EXPECT_EQ(net.config().batch, 1);
}

TEST(DetectImage, ResamplesArbitrarySizes) {
    Network net = micro_net();
    for (int size : {32, 64, 200}) {
        Image im(size, size / 2 + 10, 3);
        EXPECT_NO_THROW(detect_image(net, im, {}));
    }
}

TEST(DetectImage, ThresholdZeroReturnsNmsSurvivorsOnly) {
    Network net = micro_net();
    Image im(64, 64, 3);
    Rng rng(4);
    for (std::size_t i = 0; i < im.size(); ++i) im.data()[i] = rng.uniform();
    EvalConfig loose;
    loose.score_threshold = 0.0f;
    loose.nms_threshold = 0.45f;
    const Detections all = detect_image(net, im, loose);
    // 5 anchors x 4x4 grid raw candidates; NMS must have removed overlaps.
    EXPECT_LE(all.size(), 80u);
    EXPECT_FALSE(all.empty());
    // Higher score threshold is a subset.
    EvalConfig strict = loose;
    strict.score_threshold = 0.5f;
    const Detections few = detect_image(net, im, strict);
    EXPECT_LE(few.size(), all.size());
    for (const Detection& d : few) EXPECT_GE(d.score(), 0.5f);
}

TEST(DetectImage, TighterNmsThresholdKeepsMore) {
    // Larger IoU threshold suppresses less.
    Network net = micro_net();
    Image im(64, 64, 3);
    Rng rng(5);
    for (std::size_t i = 0; i < im.size(); ++i) im.data()[i] = rng.uniform();
    EvalConfig a, b;
    a.score_threshold = b.score_threshold = 0.0f;
    a.nms_threshold = 0.1f;
    b.nms_threshold = 0.9f;
    EXPECT_LE(detect_image(net, im, a).size(), detect_image(net, im, b).size());
}

TEST(DetectImages, EmptySpanReturnsEmpty) {
    Network net = micro_net();
    EXPECT_TRUE(detect_images(net, {}, {}).empty());
}

// The batched-equivalence property: detect_images on a shuffled N-image batch
// must produce byte-identical detections to N sequential detect_image calls.
// Every layer processes batch items independently and the GEMM kernels are
// bit-exact irrespective of batch position, so equality here is exact, not
// approximate.
void check_batched_equivalence(Network net) {
    const int n = 5;
    Rng rng(21);
    std::vector<Image> images;
    for (int i = 0; i < n; ++i) {
        // Mix of native-size and resampled inputs.
        const int w = i % 2 == 0 ? net.config().width : 50 + 13 * i;
        const int h = i % 2 == 0 ? net.config().height : 40 + 9 * i;
        Image im(w, h, 3);
        for (std::size_t p = 0; p < im.size(); ++p) im.data()[p] = rng.uniform();
        images.push_back(std::move(im));
    }
    EvalConfig ec;
    ec.score_threshold = 0.0f;  // keep detections non-vacuous
    std::vector<Detections> sequential;
    for (const Image& im : images) sequential.push_back(detect_image(net, im, ec));

    // Shuffle, batch, and compare against the matching sequential result.
    std::vector<std::size_t> order = {3, 0, 4, 2, 1};
    std::vector<Image> shuffled;
    for (std::size_t idx : order) shuffled.push_back(images[idx]);
    const std::vector<Detections> batched = detect_images(net, shuffled, ec);
    ASSERT_EQ(batched.size(), shuffled.size());
    for (std::size_t i = 0; i < order.size(); ++i) {
        expect_identical(batched[i], sequential[order[i]]);
    }
}

TEST(DetectImages, BatchBitExactVsSequentialDroNet) {
    check_batched_equivalence(
        build_model(ModelId::kDroNet, {.input_size = 64, .filter_scale = 0.25f}));
}

TEST(DetectImages, BatchBitExactVsSequentialTinyYoloNet) {
    check_batched_equivalence(
        build_model(ModelId::kTinyYoloNet, {.input_size = 64, .filter_scale = 0.25f}));
}

TEST(DetectImages, BatchBitExactWithLetterbox) {
    Network net = micro_net();
    Rng rng(33);
    std::vector<Image> images;
    for (int i = 0; i < 3; ++i) {
        Image im(96 + 10 * i, 48, 3);  // non-square: letterbox path
        for (std::size_t p = 0; p < im.size(); ++p) im.data()[p] = rng.uniform();
        images.push_back(std::move(im));
    }
    EvalConfig ec;
    ec.score_threshold = 0.0f;
    ec.use_letterbox = true;
    const std::vector<Detections> batched = detect_images(net, images, ec);
    for (std::size_t i = 0; i < images.size(); ++i) {
        expect_identical(batched[i], detect_image(net, images[i], ec));
    }
}

TEST(DetectImage, ConvertsGrayAndRgbaChannels) {
    Network net = micro_net();
    Rng rng(7);
    Image gray(64, 64, 1);
    for (std::size_t i = 0; i < gray.size(); ++i) gray.data()[i] = rng.uniform();
    // Gray input is replicated to RGB: identical to detecting on the
    // hand-replicated 3-channel image.
    expect_identical(detect_image(net, gray, {}),
                     detect_image(net, convert_channels(gray, 3), {}));

    Image rgba(64, 64, 4);
    for (std::size_t i = 0; i < rgba.size(); ++i) rgba.data()[i] = rng.uniform();
    Image rgb(64, 64, 3);
    for (int c = 0; c < 3; ++c) {
        for (int y = 0; y < 64; ++y) {
            for (int x = 0; x < 64; ++x) rgb.px(x, y, c) = rgba.px(x, y, c);
        }
    }
    expect_identical(detect_image(net, rgba, {}), detect_image(net, rgb, {}));
}

TEST(DetectImage, ConvertsChannelsOnLetterboxPathToo) {
    // Regression: the letterbox branch used to skip channel checks entirely
    // and die inside copy_to_batch.
    Network net = micro_net();
    Image gray(100, 40, 1);
    EvalConfig ec;
    ec.use_letterbox = true;
    EXPECT_NO_THROW((void)detect_image(net, gray, ec));
}

TEST(DetectImage, RejectsUnsupportedChannelCount) {
    Network net = micro_net();
    Image two(64, 64, 2);
    EXPECT_THROW((void)detect_image(net, two, {}), std::invalid_argument);
}

TEST(Unletterbox, ClampsBoxesToSourceRange) {
    // A detection centred in the horizontal padding of a tall letterboxed
    // frame maps outside [0,1]; the clamp must cut it at the source border.
    Image tall(50, 100, 3);
    const Letterbox lb = letterbox(tall, 64, 64);
    ASSERT_GT(lb.offset_x, 0);
    Detection d;
    d.box = {0.02f, 0.5f, 0.1f, 0.2f};  // centred inside the left padding
    const Detections out = unletterbox({d}, lb, 64, 64, tall.width(), tall.height());
    ASSERT_EQ(out.size(), 1u);
    EXPECT_GE(out[0].box.left(), 0.0f);
    EXPECT_LE(out[0].box.right(), 1.0f);
    EXPECT_GE(out[0].box.top(), 0.0f);
    EXPECT_LE(out[0].box.bottom(), 1.0f);
}

TEST(Unletterbox, RoundTripIsTight) {
    // Forward-map a source-space box through the letterbox transform exactly
    // as letterbox() renders pixels (continuous coordinates scaled by the
    // rounded embedded extent), then invert with unletterbox: the round trip
    // must recover the box to float precision.
    const int src_w = 100, src_h = 40, net_w = 64, net_h = 64;
    Image src(src_w, src_h, 3);
    const Letterbox lb = letterbox(src, net_w, net_h);
    const Box original{0.4f, 0.6f, 0.25f, 0.3f};  // interior: no clamping
    Detection d;
    d.box.x = (original.x * static_cast<float>(lb.emb_w) +
               static_cast<float>(lb.offset_x)) / static_cast<float>(net_w);
    d.box.y = (original.y * static_cast<float>(lb.emb_h) +
               static_cast<float>(lb.offset_y)) / static_cast<float>(net_h);
    d.box.w = original.w * static_cast<float>(lb.emb_w) / static_cast<float>(net_w);
    d.box.h = original.h * static_cast<float>(lb.emb_h) / static_cast<float>(net_h);
    const Detections out =
        unletterbox({d}, lb, net_w, net_h, src_w, src_h);
    ASSERT_EQ(out.size(), 1u);
    EXPECT_NEAR(out[0].box.x, original.x, 1e-6f);
    EXPECT_NEAR(out[0].box.y, original.y, 1e-6f);
    EXPECT_NEAR(out[0].box.w, original.w, 1e-6f);
    EXPECT_NEAR(out[0].box.h, original.h, 1e-6f);
}

TEST(EvaluateDetector, CountsAllGroundTruthAsFnForBlindDetector) {
    // An untrained detector with an impossible threshold finds nothing; every
    // ground-truth object becomes a false negative.
    Network net = micro_net();
    const DetectionDataset ds = generate_dataset(benchmark_scene_config(64), 5, 8);
    EvalConfig ec;
    ec.score_threshold = 1.1f;  // nothing can pass
    const DetectionMetrics m = evaluate_detector(net, ds, ec);
    EXPECT_EQ(m.true_positives, 0);
    EXPECT_EQ(m.false_positives, 0);
    EXPECT_EQ(m.false_negatives, static_cast<int>(ds.total_objects()));
    EXPECT_FLOAT_EQ(m.sensitivity(), 0.0f);
}

TEST(EvaluateDetector, AggregatesOverImages) {
    Network net = micro_net();
    const DetectionDataset ds = generate_dataset(benchmark_scene_config(64), 4, 9);
    EvalConfig ec;
    ec.score_threshold = 0.0f;
    const DetectionMetrics whole = evaluate_detector(net, ds, ec);
    DetectionMetrics sum;
    for (std::size_t i = 0; i < ds.size(); ++i) {
        sum += match_detections(detect_image(net, ds.image(i), ec), ds.truths(i),
                                ec.match_iou);
    }
    EXPECT_EQ(whole.true_positives, sum.true_positives);
    EXPECT_EQ(whole.false_positives, sum.false_positives);
    EXPECT_EQ(whole.false_negatives, sum.false_negatives);
}

TEST(EvaluateDetector, EmptyDatasetYieldsZeroMetrics) {
    Network net = micro_net();
    const DetectionMetrics m = evaluate_detector(net, DetectionDataset{}, {});
    EXPECT_EQ(m.true_positives + m.false_positives + m.false_negatives, 0);
}

}  // namespace
}  // namespace dronet
