// Evaluator: detect_image / evaluate_detector plumbing and threshold
// interactions on a controlled, hand-weighted detector.
#include <gtest/gtest.h>

#include "data/dataset.hpp"
#include "eval/evaluator.hpp"
#include "models/model_zoo.hpp"
#include "tensor/rng.hpp"

namespace dronet {
namespace {

Network micro_net() {
    return build_model(ModelId::kDroNet, {.input_size = 64, .filter_scale = 0.25f});
}

TEST(DetectImage, RequiresRegionLayer) {
    NetConfig nc;
    nc.width = nc.height = 32;
    nc.channels = 3;
    Network headless(nc);
    headless.add_conv({.filters = 2, .ksize = 3, .stride = 1, .pad = 1});
    Image im(32, 32, 3);
    EXPECT_THROW(detect_image(headless, im, {}), std::logic_error);
}

TEST(DetectImage, ForcesBatchOne) {
    Network net = build_model(ModelId::kDroNet,
                              {.input_size = 64, .batch = 3, .filter_scale = 0.25f});
    Image im(64, 64, 3);
    (void)detect_image(net, im, {});
    EXPECT_EQ(net.config().batch, 1);
}

TEST(DetectImage, ResamplesArbitrarySizes) {
    Network net = micro_net();
    for (int size : {32, 64, 200}) {
        Image im(size, size / 2 + 10, 3);
        EXPECT_NO_THROW(detect_image(net, im, {}));
    }
}

TEST(DetectImage, ThresholdZeroReturnsNmsSurvivorsOnly) {
    Network net = micro_net();
    Image im(64, 64, 3);
    Rng rng(4);
    for (std::size_t i = 0; i < im.size(); ++i) im.data()[i] = rng.uniform();
    EvalConfig loose;
    loose.score_threshold = 0.0f;
    loose.nms_threshold = 0.45f;
    const Detections all = detect_image(net, im, loose);
    // 5 anchors x 4x4 grid raw candidates; NMS must have removed overlaps.
    EXPECT_LE(all.size(), 80u);
    EXPECT_FALSE(all.empty());
    // Higher score threshold is a subset.
    EvalConfig strict = loose;
    strict.score_threshold = 0.5f;
    const Detections few = detect_image(net, im, strict);
    EXPECT_LE(few.size(), all.size());
    for (const Detection& d : few) EXPECT_GE(d.score(), 0.5f);
}

TEST(DetectImage, TighterNmsThresholdKeepsMore) {
    // Larger IoU threshold suppresses less.
    Network net = micro_net();
    Image im(64, 64, 3);
    Rng rng(5);
    for (std::size_t i = 0; i < im.size(); ++i) im.data()[i] = rng.uniform();
    EvalConfig a, b;
    a.score_threshold = b.score_threshold = 0.0f;
    a.nms_threshold = 0.1f;
    b.nms_threshold = 0.9f;
    EXPECT_LE(detect_image(net, im, a).size(), detect_image(net, im, b).size());
}

TEST(EvaluateDetector, CountsAllGroundTruthAsFnForBlindDetector) {
    // An untrained detector with an impossible threshold finds nothing; every
    // ground-truth object becomes a false negative.
    Network net = micro_net();
    const DetectionDataset ds = generate_dataset(benchmark_scene_config(64), 5, 8);
    EvalConfig ec;
    ec.score_threshold = 1.1f;  // nothing can pass
    const DetectionMetrics m = evaluate_detector(net, ds, ec);
    EXPECT_EQ(m.true_positives, 0);
    EXPECT_EQ(m.false_positives, 0);
    EXPECT_EQ(m.false_negatives, static_cast<int>(ds.total_objects()));
    EXPECT_FLOAT_EQ(m.sensitivity(), 0.0f);
}

TEST(EvaluateDetector, AggregatesOverImages) {
    Network net = micro_net();
    const DetectionDataset ds = generate_dataset(benchmark_scene_config(64), 4, 9);
    EvalConfig ec;
    ec.score_threshold = 0.0f;
    const DetectionMetrics whole = evaluate_detector(net, ds, ec);
    DetectionMetrics sum;
    for (std::size_t i = 0; i < ds.size(); ++i) {
        sum += match_detections(detect_image(net, ds.image(i), ec), ds.truths(i),
                                ec.match_iou);
    }
    EXPECT_EQ(whole.true_positives, sum.true_positives);
    EXPECT_EQ(whole.false_positives, sum.false_positives);
    EXPECT_EQ(whole.false_negatives, sum.false_negatives);
}

TEST(EvaluateDetector, EmptyDatasetYieldsZeroMetrics) {
    Network net = micro_net();
    const DetectionMetrics m = evaluate_detector(net, DetectionDataset{}, {});
    EXPECT_EQ(m.true_positives + m.false_positives + m.false_negatives, 0);
}

}  // namespace
}  // namespace dronet
