// Extension features: pedestrian class generation (multi-class future work)
// and letterbox inference with box unmapping.
#include <gtest/gtest.h>

#include "data/dataset.hpp"
#include "data/scene.hpp"
#include "eval/evaluator.hpp"
#include "image/resize.hpp"
#include "models/model_zoo.hpp"
#include "train/trainer.hpp"

namespace dronet {
namespace {

TEST(Pedestrians, GeneratedWithClassOne) {
    SceneConfig sc = benchmark_scene_config(128);
    sc.max_pedestrians = 4;
    AerialSceneGenerator gen(sc, 55);
    int vehicles = 0, pedestrians = 0;
    for (int i = 0; i < 6; ++i) {
        for (const GroundTruth& gt : gen.generate().truths) {
            if (gt.class_id == kVehicleClass) ++vehicles;
            if (gt.class_id == kPedestrianClass) ++pedestrians;
            EXPECT_GE(gt.box.left(), -1e-5f);
            EXPECT_LE(gt.box.right(), 1.0f + 1e-5f);
        }
    }
    EXPECT_GT(vehicles, 0);
    EXPECT_GT(pedestrians, 0);
}

TEST(Pedestrians, MuchSmallerThanVehicles) {
    SceneConfig sc = benchmark_scene_config(128);
    sc.max_pedestrians = 3;
    AerialSceneGenerator gen(sc, 56);
    float max_ped = 0, min_veh = 1;
    for (int i = 0; i < 8; ++i) {
        for (const GroundTruth& gt : gen.generate().truths) {
            const float size = std::max(gt.box.w, gt.box.h);
            if (gt.class_id == kPedestrianClass) max_ped = std::max(max_ped, size);
            if (gt.class_id == kVehicleClass) min_veh = std::min(min_veh, size);
        }
    }
    EXPECT_LT(max_ped, min_veh);
}

TEST(Pedestrians, DrawReturnsCoveringBox) {
    Image im(100, 100, 3);
    Rng rng(7);
    const GroundTruth gt = draw_pedestrian(im, 50, 50, 3.0f, rng);
    EXPECT_EQ(gt.class_id, kPedestrianClass);
    EXPECT_GT(im.px(50, 50, 0), 0.0f);  // body drawn
    EXPECT_GT(gt.box.w, 0.04f);
    EXPECT_LT(gt.box.w, 0.12f);
}

TEST(Pedestrians, MultiClassTrainingRuns) {
    SceneConfig sc = benchmark_scene_config(64);
    sc.min_vehicles = 1;
    sc.max_vehicles = 2;
    sc.max_pedestrians = 2;
    const DetectionDataset ds = generate_dataset(sc, 8, 60);
    ModelOptions mo;
    mo.input_size = 64;
    mo.batch = 2;
    mo.classes = 2;
    mo.filter_scale = 0.25f;
    Network net = build_model(ModelId::kDroNet, mo);
    EXPECT_EQ(net.region()->config().classes, 2);
    TrainConfig tc;
    tc.iterations = 8;
    tc.use_augmentation = false;
    Trainer trainer(net, ds, tc);
    trainer.run();
    EXPECT_EQ(trainer.history().size(), 8u);
    // Class losses actually flow (2-class softmax is non-trivial).
    EXPECT_GT(net.region()->stats().class_loss, 0.0f);
}

TEST(Letterbox, DetectionBoxesMapBackToSourceCoordinates) {
    // A wide 2:1 frame with a known bright square; the untrained network's
    // boxes are arbitrary, so instead verify geometry with a synthetic
    // detection round trip: letterbox-embed a square and check that a box
    // decoded at the embedded position maps back onto the original square.
    Network net = build_model(ModelId::kDroNet, {.input_size = 64, .filter_scale = 0.25f});
    Image wide(128, 64, 3);
    EvalConfig plain, boxed;
    plain.score_threshold = 0.0f;
    boxed.score_threshold = 0.0f;
    boxed.use_letterbox = true;
    const Detections a = detect_image(net, wide, plain);
    const Detections b = detect_image(net, wide, boxed);
    EXPECT_FALSE(a.empty());
    EXPECT_FALSE(b.empty());
    // With letterboxing on a 2:1 frame, vertical padding occupies 1/4 top
    // and bottom of network space: boxes mapped back may exceed [0,1]
    // vertically but the *horizontal* mapping is the identity.
    for (std::size_t i = 0; i < std::min(b.size(), std::size_t{16}); ++i) {
        EXPECT_GE(b[i].box.x, -0.1f);
        EXPECT_LE(b[i].box.x, 1.1f);
    }
}

TEST(Letterbox, SquareImagePathIdenticalToPlain) {
    Network net = build_model(ModelId::kDroNet, {.input_size = 64, .filter_scale = 0.25f});
    AerialSceneGenerator gen(benchmark_scene_config(64), 61);
    const Image frame = gen.generate().image;  // already network-sized
    EvalConfig plain, boxed;
    plain.score_threshold = 0.0f;
    boxed.score_threshold = 0.0f;
    boxed.use_letterbox = true;
    const Detections a = detect_image(net, frame, plain);
    const Detections b = detect_image(net, frame, boxed);
    ASSERT_EQ(a.size(), b.size());
    for (std::size_t i = 0; i < a.size(); ++i) {
        EXPECT_FLOAT_EQ(a[i].box.x, b[i].box.x);
        EXPECT_FLOAT_EQ(a[i].objectness, b[i].objectness);
    }
}

TEST(Letterbox, RecoversObjectPositionOnWideFrame) {
    // Geometric check without a network: embed, pick the embedded-box centre
    // in network space, unmap by replicating the evaluator's arithmetic.
    Image wide(200, 100, 3);
    const Letterbox lb = letterbox(wide, 64, 64);
    EXPECT_EQ(lb.offset_y, 16);
    EXPECT_FLOAT_EQ(lb.scale, 0.32f);
    // Source-normalized (0.25, 0.5) -> pixels (50, 50) -> network pixels
    // (50*0.32, 50*0.32+16) = (16, 32) -> network-normalized (0.25, 0.5).
    const float net_x = (0.25f * 200 * lb.scale + lb.offset_x) / 64.0f;
    const float net_y = (0.5f * 100 * lb.scale + lb.offset_y) / 64.0f;
    EXPECT_NEAR(net_x, 0.25f, 1e-5f);
    EXPECT_NEAR(net_y, 0.5f, 1e-5f);
}

}  // namespace
}  // namespace dronet
