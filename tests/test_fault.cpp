// Unit tests for the fault-injection layer (src/fault): plan-grammar parsing,
// selector semantics (nth / every / p / times), action behaviour, and the
// determinism contract — a fixed plan must produce the identical fire pattern
// on every run. These tests drive FaultInjector directly, so they hold
// regardless of whether DRONET_FAULTS compiled the production sites in.
#include <gtest/gtest.h>

#include <chrono>
#include <stdexcept>
#include <string>

#include "fault/fault.hpp"

namespace dronet::fault {
namespace {

TEST(FaultPlan, ParsesFullGrammar) {
    const FaultPlan plan = FaultPlan::parse(
        "network.forward:kill:nth=3:times=1;"
        "weights.write:throw:msg=boom;"
        "weights.read:short-read:bytes=8:seed=99;"
        "queue.pop:latency:latency=2.5:every=4");
    ASSERT_EQ(plan.specs.size(), 4u);
    EXPECT_EQ(plan.seed, 99u);

    EXPECT_EQ(plan.specs[0].site, "network.forward");
    EXPECT_EQ(plan.specs[0].action, FaultAction::kKill);
    EXPECT_EQ(plan.specs[0].nth, 3u);
    EXPECT_EQ(plan.specs[0].times, 1u);

    EXPECT_EQ(plan.specs[1].action, FaultAction::kThrow);
    EXPECT_EQ(plan.specs[1].message, "boom");

    EXPECT_EQ(plan.specs[2].action, FaultAction::kShortRead);
    EXPECT_EQ(plan.specs[2].bytes, 8u);

    EXPECT_EQ(plan.specs[3].action, FaultAction::kLatency);
    EXPECT_DOUBLE_EQ(plan.specs[3].latency_ms, 2.5);
    EXPECT_EQ(plan.specs[3].every, 4u);
}

TEST(FaultPlan, RejectsMalformedClauses) {
    EXPECT_THROW((void)FaultPlan::parse("siteonly"), std::invalid_argument);
    EXPECT_THROW((void)FaultPlan::parse(":throw"), std::invalid_argument);
    EXPECT_THROW((void)FaultPlan::parse("x:frobnicate"), std::invalid_argument);
    EXPECT_THROW((void)FaultPlan::parse("x:throw:nth"), std::invalid_argument);
    EXPECT_THROW((void)FaultPlan::parse("x:throw:nth=abc"), std::invalid_argument);
    EXPECT_THROW((void)FaultPlan::parse("x:throw:p=1.5"), std::invalid_argument);
    EXPECT_THROW((void)FaultPlan::parse("x:throw:wat=1"), std::invalid_argument);
    EXPECT_THROW((void)FaultPlan::parse("x:latency"), std::invalid_argument);
}

TEST(FaultPlan, EmptyTextYieldsInactivePlan) {
    const FaultPlan plan = FaultPlan::parse("");
    EXPECT_TRUE(plan.specs.empty());
    FaultInjector::instance().install(plan);
    EXPECT_FALSE(FaultInjector::instance().active());
    EXPECT_NO_THROW(FaultInjector::instance().fire("anything"));
    FaultInjector::instance().clear();
}

TEST(FaultInjector, NthFiresExactlyOnce) {
    ScopedFaultPlan plan("x:throw:nth=3");
    auto& inj = FaultInjector::instance();
    EXPECT_NO_THROW(inj.fire("x"));
    EXPECT_NO_THROW(inj.fire("x"));
    EXPECT_THROW(inj.fire("x"), FaultInjected);
    EXPECT_NO_THROW(inj.fire("x"));
    EXPECT_NO_THROW(inj.fire("x"));
    EXPECT_EQ(inj.calls("x"), 5u);
    EXPECT_EQ(inj.fires("x"), 1u);
}

TEST(FaultInjector, EveryWithTimesBoundsFires) {
    ScopedFaultPlan plan("x:throw:every=2:times=2");
    auto& inj = FaultInjector::instance();
    int thrown = 0;
    for (int call = 1; call <= 8; ++call) {
        try {
            inj.fire("x");
        } catch (const FaultInjected&) {
            ++thrown;
            // Fires on calls 2 and 4, then the `times` budget is spent.
            EXPECT_TRUE(call == 2 || call == 4) << "fired on call " << call;
        }
    }
    EXPECT_EQ(thrown, 2);
    EXPECT_EQ(inj.fires("x"), 2u);
}

TEST(FaultInjector, UnlistedSitesNeverFire) {
    ScopedFaultPlan plan("x:throw");
    auto& inj = FaultInjector::instance();
    EXPECT_NO_THROW(inj.fire("y"));
    EXPECT_EQ(inj.fires("y"), 0u);
    EXPECT_THROW(inj.fire("x"), FaultInjected);
}

TEST(FaultInjector, ProbabilityPatternIsSeedDeterministic) {
    const auto pattern = [] {
        FaultInjector::instance().install(FaultPlan::parse("x:throw:p=0.5:seed=42"));
        std::string s;
        for (int i = 0; i < 64; ++i) {
            try {
                FaultInjector::instance().fire("x");
                s += '.';
            } catch (const FaultInjected&) {
                s += 'F';
            }
        }
        FaultInjector::instance().clear();
        return s;
    };
    const std::string a = pattern();
    const std::string b = pattern();
    EXPECT_EQ(a, b);
    // p=0.5 over 64 calls: both outcomes occur (for this fixed seed).
    EXPECT_NE(a.find('F'), std::string::npos);
    EXPECT_NE(a.find('.'), std::string::npos);
}

TEST(FaultInjector, ShortReadWithholdsBytes) {
    ScopedFaultPlan plan("io:short-read:bytes=4:nth=1;io2:short-read:nth=1");
    auto& inj = FaultInjector::instance();
    EXPECT_EQ(inj.io_bytes("io", 10), 6u);   // 4 bytes withheld
    EXPECT_EQ(inj.io_bytes("io", 10), 10u);  // nth=1 spent
    EXPECT_EQ(inj.io_bytes("io2", 10), 0u);  // default: withhold everything
}

TEST(FaultInjector, ShortReadIsIgnoredAtNonIoSites) {
    ScopedFaultPlan plan("io:short-read:nth=1");
    auto& inj = FaultInjector::instance();
    // fire() is a non-I/O trip point; the short-read spec must not burn its
    // selector there.
    for (int i = 0; i < 5; ++i) EXPECT_NO_THROW(inj.fire("io"));
    EXPECT_EQ(inj.fires("io"), 0u);
    EXPECT_EQ(inj.io_bytes("io", 10), 0u);  // first I/O call still fires
}

TEST(FaultInjector, KillThrowsWorkerKillFault) {
    ScopedFaultPlan plan("x:kill:msg=deliberate");
    try {
        FaultInjector::instance().fire("x");
        FAIL() << "expected WorkerKillFault";
    } catch (const WorkerKillFault& e) {
        EXPECT_STREQ(e.what(), "deliberate");
    }
}

TEST(FaultInjector, ExceptionTaxonomyMatchesRetryContract) {
    // FaultInjected models a transient error (retryable: runtime_error
    // family); WorkerKillFault is deliberately outside it so the serving
    // retry loop escalates instead of retrying.
    EXPECT_TRUE((std::is_base_of_v<std::runtime_error, FaultInjected>));
    EXPECT_FALSE((std::is_base_of_v<std::runtime_error, WorkerKillFault>));
    EXPECT_TRUE((std::is_base_of_v<std::exception, WorkerKillFault>));
}

TEST(FaultInjector, LatencyActionSleeps) {
    ScopedFaultPlan plan("x:latency:latency=30:nth=1");
    const auto t0 = std::chrono::steady_clock::now();
    FaultInjector::instance().fire("x");
    const double ms =
        std::chrono::duration<double, std::milli>(std::chrono::steady_clock::now() - t0)
            .count();
    EXPECT_GE(ms, 25.0);
}

TEST(FaultInjector, ScopedPlanClearsOnExit) {
    {
        ScopedFaultPlan plan("x:throw");
        EXPECT_TRUE(FaultInjector::instance().active());
    }
    EXPECT_FALSE(FaultInjector::instance().active());
    EXPECT_NO_THROW(FaultInjector::instance().fire("x"));
}

TEST(FaultInjector, InstallResetsCounters) {
    auto& inj = FaultInjector::instance();
    inj.install(FaultPlan::parse("x:throw:nth=1"));
    EXPECT_THROW(inj.fire("x"), FaultInjected);
    EXPECT_EQ(inj.calls("x"), 1u);
    inj.install(FaultPlan::parse("x:throw:nth=1"));
    EXPECT_EQ(inj.calls("x"), 0u);
    EXPECT_THROW(inj.fire("x"), FaultInjected);  // counter restarted
    inj.clear();
}

}  // namespace
}  // namespace dronet::fault
