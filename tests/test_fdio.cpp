// Unit tests for the shared EINTR-safe full-buffer IO helpers (src/io/fdio).
// These are the single read/write definition under both crash-safe weight
// checkpoints (nn/weights_io) and the cluster wire protocol, so the
// short-read/short-write reassembly contract is pinned here once.
#include <gtest/gtest.h>

#include <fcntl.h>
#include <unistd.h>

#include <cstdint>
#include <cstring>
#include <system_error>
#include <thread>
#include <vector>

#include "io/fdio.hpp"

namespace dronet {
namespace {

struct Pipe {
    io::UniqueFd rd;
    io::UniqueFd wr;
    Pipe() {
        int fds[2];
        if (::pipe(fds) != 0) throw std::system_error(errno, std::generic_category());
        rd.reset(fds[0]);
        wr.reset(fds[1]);
    }
};

TEST(Fdio, WriteFullReassemblesShortWritesAcrossPipeBuffer) {
    // 4 MB through a pipe whose kernel buffer is ~64 KB: write_full must loop
    // over many partial writes, read_full over many partial reads, and the
    // byte stream must come out exact.
    Pipe p;
    constexpr std::size_t kBytes = 4u << 20;
    std::vector<std::uint8_t> sent(kBytes);
    for (std::size_t i = 0; i < sent.size(); ++i) {
        sent[i] = static_cast<std::uint8_t>(i * 2654435761u >> 13);
    }
    std::thread writer([&] { io::write_full(p.wr.get(), sent.data(), sent.size()); });
    std::vector<std::uint8_t> got(kBytes, 0);
    const std::size_t n = io::read_full(p.rd.get(), got.data(), got.size());
    writer.join();
    EXPECT_EQ(n, kBytes);
    EXPECT_EQ(std::memcmp(sent.data(), got.data(), kBytes), 0);
}

TEST(Fdio, ReadFullReassemblesDribbledShortReads) {
    // The writer trickles one byte at a time; a single read_full call still
    // returns the complete buffer.
    Pipe p;
    const std::uint8_t want[10] = {0, 1, 2, 3, 4, 5, 6, 7, 8, 9};
    std::thread writer([&] {
        for (std::uint8_t b : want) {
            io::write_full(p.wr.get(), &b, 1);
            std::this_thread::sleep_for(std::chrono::milliseconds(1));
        }
    });
    std::uint8_t got[10] = {};
    EXPECT_EQ(io::read_full(p.rd.get(), got, sizeof(got)), sizeof(got));
    writer.join();
    EXPECT_EQ(std::memcmp(want, got, sizeof(got)), 0);
}

TEST(Fdio, ReadFullReturnsShortCountAtEof) {
    Pipe p;
    const char partial[100] = {};
    io::write_full(p.wr.get(), partial, sizeof(partial));
    p.wr.reset();  // EOF after 100 bytes
    char buf[256];
    EXPECT_EQ(io::read_full(p.rd.get(), buf, sizeof(buf)), 100u);
    // Stream exhausted: the next read reports a clean zero-byte EOF.
    EXPECT_EQ(io::read_full(p.rd.get(), buf, sizeof(buf)), 0u);
}

TEST(Fdio, WriteFullThrowsWhenReaderIsGone) {
    io::ignore_sigpipe();  // EPIPE as an error return, not a process kill
    Pipe p;
    p.rd.reset();
    std::vector<std::uint8_t> payload(1u << 20, 0xab);
    EXPECT_THROW(io::write_full(p.wr.get(), payload.data(), payload.size()),
                 std::system_error);
}

TEST(Fdio, UniqueFdClosesOnDestructionAndMoves) {
    int raw = -1;
    {
        Pipe p;
        raw = p.rd.get();
        ASSERT_NE(::fcntl(raw, F_GETFD), -1);
        io::UniqueFd moved = std::move(p.rd);
        EXPECT_FALSE(static_cast<bool>(p.rd));
        EXPECT_EQ(moved.get(), raw);
        ASSERT_NE(::fcntl(raw, F_GETFD), -1);  // still open while owned
    }
    EXPECT_EQ(::fcntl(raw, F_GETFD), -1);  // closed when the owner died
    // release() hands the fd back without closing.
    Pipe p2;
    const int kept = p2.wr.release();
    EXPECT_FALSE(static_cast<bool>(p2.wr));
    ASSERT_NE(::fcntl(kept, F_GETFD), -1);
    ::close(kept);
}

}  // namespace
}  // namespace dronet
