// FP16 storage mode accuracy gates (docs/vectorization.md): half weight +
// activation storage is tolerance-gated, never assumed bit-exact. Layer
// outputs must stay within a max-abs-error bound of the fp32 forward, and on
// the shipped checkpoint the detection metrics must stay within a small
// delta of the fp32 evaluation (skipped on a fresh clone without weights/,
// matching test_pretrained_checkpoints).
#include <gtest/gtest.h>

#include <cmath>
#include <cstdlib>

#include "data/dataset.hpp"
#include "eval/evaluator.hpp"
#include "models/model_zoo.hpp"
#include "models/pretrained.hpp"
#include "nn/clone.hpp"
#include "nn/network.hpp"
#include "tensor/rng.hpp"

namespace dronet {
namespace {

TEST(Fp16Mode, LayerOutputsWithinTolerance) {
    // Random-weight DroNet at a small input: compare every layer's output
    // between the fp32 net and an fp16 clone. Activations are magnitude ~1,
    // so the half storage error per value is ~2^-11 with mild growth through
    // the stack.
    Network fp32 = build_model(ModelId::kDroNet, {.input_size = 128});
    Network fp16 = clone_network(fp32);
    fp32.set_batch(1);
    fp16.set_batch(1);
    fp16.set_fp16(true);

    Tensor input(fp32.input_shape());
    Rng rng(0xF16);
    rng.fill_uniform(input.span(), 0.0f, 1.0f);
    fp32.forward(input);
    fp16.forward(input);

    for (std::size_t i = 0; i < fp32.num_layers(); ++i) {
        const Tensor& a = fp32.layer(static_cast<int>(i)).output();
        const Tensor& b = fp16.layer(static_cast<int>(i)).output();
        ASSERT_EQ(a.size(), b.size()) << "layer " << i;
        float max_abs = 0.0f;
        for (std::size_t j = 0; j < a.size(); ++j) {
            max_abs = std::max(max_abs, std::fabs(a[j] - b[j]));
        }
        // Generous ceiling: per-layer quantization is ~5e-3 for unit-scale
        // activations; catch real breakage (wrong kernel, stale halves), not
        // rounding noise.
        EXPECT_LT(max_abs, 0.05f) << "layer " << i << " ("
                                  << fp32.layer(static_cast<int>(i)).describe()
                                  << ")";
    }
}

TEST(Fp16Mode, TrainingThrows) {
    Network net = build_model(ModelId::kDroNet, {.input_size = 64});
    net.set_batch(1);
    net.set_fp16(true);
    Tensor input(net.input_shape());
    EXPECT_THROW(net.forward(input, /*train=*/true), std::logic_error);
    // Switching fp16 back off restores trainability.
    net.set_fp16(false);
    EXPECT_NO_THROW(net.forward(input, /*train=*/true));
}

TEST(Fp16Mode, CloneCarriesFp16) {
    Network net = build_model(ModelId::kDroNet, {.input_size = 64});
    net.set_fp16(true);
    const Network copy = clone_network(net);
    EXPECT_TRUE(copy.fp16());
}

TEST(Fp16Mode, CheckpointMetricsCloseToFp32) {
    auto net = load_pretrained(ModelId::kDroNet);
    if (!net) GTEST_SKIP() << "no DroNet checkpoint in weights/";
    const DetectionDataset test_set = benchmark_test_set(16);
    net->set_batch(1);
    net->resize_input(224, 224);
    const DetectionMetrics fp32 = evaluate_detector(*net, test_set, {});
    net->set_fp16(true);
    const DetectionMetrics fp16 = evaluate_detector(*net, test_set, {});
    // Half storage may move individual scores across thresholds but must not
    // change the operating point materially.
    EXPECT_NEAR(fp16.sensitivity(), fp32.sensitivity(), 0.05f);
    EXPECT_NEAR(fp16.precision(), fp32.precision(), 0.05f);
    EXPECT_NEAR(fp16.avg_iou(), fp32.avg_iou(), 0.05f);
    // And it must still clear the same conservative floors the fp32
    // checkpoint test pins.
    EXPECT_GE(fp16.sensitivity(), 0.75f);
    EXPECT_GE(fp16.precision(), 0.75f);
    EXPECT_GE(fp16.avg_iou(), 0.6f);
}

}  // namespace
}  // namespace dronet
