// Fuzz-style robustness tests for the formats the tools accept: PPM images,
// .cfg model descriptions, .weights checkpoints, and the cluster wire
// protocol's framed byte stream. Each suite takes a known-good artifact,
// applies ~50 seeded mutations (truncations and byte flips — deterministic
// via a fixed mt19937 seed), and asserts the loader either parses the mutant
// or throws something rooted in std::exception. Any crash, sanitizer report,
// or non-std exception fails the suite; run_all.sh repeats it under ASan.
#include <gtest/gtest.h>

#include <sys/socket.h>

#include <cstddef>
#include <cstdint>
#include <filesystem>
#include <fstream>
#include <iterator>
#include <random>
#include <stdexcept>
#include <string>
#include <vector>

#include "cluster/protocol.hpp"
#include "image/image.hpp"
#include "image/ppm.hpp"
#include "io/fdio.hpp"
#include "models/model_zoo.hpp"
#include "nn/cfg.hpp"
#include "nn/clone.hpp"
#include "nn/weights_io.hpp"

namespace dronet {
namespace {

constexpr int kMutations = 50;

std::filesystem::path fuzz_dir() {
    const auto dir = std::filesystem::temp_directory_path() / "dronet_fuzz";
    std::filesystem::create_directories(dir);
    return dir;
}

std::vector<char> read_bytes(const std::filesystem::path& path) {
    std::ifstream in(path, std::ios::binary);
    return {std::istreambuf_iterator<char>(in), {}};
}

void write_bytes(const std::filesystem::path& path, const std::vector<char>& bytes) {
    std::ofstream out(path, std::ios::binary | std::ios::trunc);
    out.write(bytes.data(), static_cast<std::streamsize>(bytes.size()));
}

/// Truncates (even rounds) or flips a few bytes (odd rounds). Truncation is
/// always strictly shortening, so those rounds are guaranteed-malformed.
std::vector<char> mutate(const std::vector<char>& bytes, int round, std::mt19937& rng) {
    std::vector<char> m = bytes;
    if (round % 2 == 0) {
        m.resize(rng() % m.size());
    } else {
        for (int k = 0; k < 3; ++k) {
            m[rng() % m.size()] ^= static_cast<char>(1 + rng() % 255);
        }
    }
    return m;
}

TEST(FuzzParsers, MutatedPpmNeverCrashes) {
    const auto base = fuzz_dir() / "fuzz_base.ppm";
    const auto victim = fuzz_dir() / "fuzz_mutant.ppm";
    Image im(64, 48, 3);
    for (int y = 0; y < im.height(); ++y) {
        for (int x = 0; x < im.width(); ++x) {
            for (int c = 0; c < 3; ++c) {
                im.px(x, y, c) = static_cast<float>((x * 7 + y * 3 + c) % 256) / 255.0f;
            }
        }
    }
    write_ppm(im, base);
    const std::vector<char> bytes = read_bytes(base);
    ASSERT_FALSE(bytes.empty());

    std::mt19937 rng(0x5eed);
    int threw = 0, parsed = 0;
    for (int i = 0; i < kMutations; ++i) {
        write_bytes(victim, mutate(bytes, i, rng));
        try {
            const Image out = read_ppm(victim);
            EXPECT_GT(out.width(), 0);
            ++parsed;
        } catch (const std::exception&) {
            ++threw;  // clean failure is the contract
        }
    }
    EXPECT_EQ(threw + parsed, kMutations);
    EXPECT_GE(threw, kMutations / 2);  // every truncation round must throw
}

TEST(FuzzParsers, MutatedCfgTextNeverCrashes) {
    const Network net =
        build_model(ModelId::kDroNet, {.input_size = 96, .filter_scale = 0.35f});
    const std::string base = network_to_cfg(net);
    ASSERT_FALSE(base.empty());

    std::mt19937 rng(0xc0ffee);
    int threw = 0, parsed = 0;
    for (int i = 0; i < kMutations; ++i) {
        std::string m = base;
        if (i % 2 == 0) {
            m.resize(rng() % m.size());
        } else {
            // Replace a few characters with random printables; same length,
            // so numeric fields keep their digit count (no absurd allocs).
            for (int k = 0; k < 3; ++k) {
                m[rng() % m.size()] = static_cast<char>(' ' + rng() % 95);
            }
        }
        try {
            const Network parsed_net = parse_cfg(m);
            EXPECT_GT(parsed_net.num_layers(), 0u);
            ++parsed;
        } catch (const std::exception&) {
            ++threw;  // validator/parse errors are the expected outcome
        }
    }
    EXPECT_EQ(threw + parsed, kMutations);
    EXPECT_GT(threw, 0);
}

TEST(FuzzParsers, MutatedWeightsFileNeverCrashes) {
    const auto base = fuzz_dir() / "fuzz_base.weights";
    const auto victim = fuzz_dir() / "fuzz_mutant.weights";
    Network net = build_model(ModelId::kDroNet, {.input_size = 96, .filter_scale = 0.35f});
    save_weights(net, base);
    const std::vector<char> bytes = read_bytes(base);
    ASSERT_FALSE(bytes.empty());

    std::mt19937 rng(0xbadf00d);
    int threw = 0, loaded = 0;
    for (int i = 0; i < kMutations; ++i) {
        const bool truncated = i % 2 == 0;
        write_bytes(victim, mutate(bytes, i, rng));
        Network target = clone_network(net);
        try {
            load_weights(target, victim);
            // Byte flips keep the length right, so the payload loads (as
            // garbage floats) — acceptable; truncations must never slip by.
            EXPECT_FALSE(truncated) << "truncated checkpoint loaded silently";
            ++loaded;
        } catch (const std::exception& e) {
            EXPECT_NE(std::string(e.what()).find("load_weights"), std::string::npos)
                << e.what();
            ++threw;
        }
    }
    EXPECT_EQ(threw + loaded, kMutations);
    EXPECT_GE(threw, kMutations / 2);
}

TEST(FuzzParsers, MutatedClusterWireFramesNeverCrash) {
    using cluster::Frame;
    using cluster::Opcode;

    // A canonical multi-frame byte stream: detect request, reload request,
    // reload response, ping — captured off a real socketpair so the framing
    // bytes are exactly what a peer would send.
    std::vector<char> blob;
    {
        int sv[2];
        ASSERT_EQ(::socketpair(AF_UNIX, SOCK_STREAM, 0, sv), 0);
        io::UniqueFd writer(sv[0]);
        io::UniqueFd reader(sv[1]);
        Image img(16, 12, 3);
        for (std::size_t i = 0; i < img.size(); ++i) {
            img.data()[i] = static_cast<float>(i % 251) / 251.0f;
        }
        cluster::write_frame(writer.get(), Opcode::kDetectRequest, 7,
                             cluster::encode_detect_request(img));
        cluster::WireReloadRequest rreq;
        rreq.rollback = false;
        rreq.weights_path = "/tmp/fuzz_candidate.weights";
        cluster::write_frame(writer.get(), Opcode::kReloadRequest, 8,
                             cluster::encode_reload_request(rreq));
        cluster::WireReloadResponse rresp;
        rresp.ok = true;
        rresp.model_version = 2;
        cluster::write_frame(writer.get(), Opcode::kReloadResponse, 9,
                             cluster::encode_reload_response(rresp));
        cluster::write_frame(writer.get(), Opcode::kPing, 10, nullptr, 0);
        writer.reset();  // EOF so the capture loop below terminates
        char buf[4096];
        ssize_t n;
        while ((n = ::read(reader.get(), buf, sizeof(buf))) > 0) {
            blob.insert(blob.end(), buf, buf + n);
        }
    }
    ASSERT_FALSE(blob.empty());

    std::mt19937 rng(0xf4a3e5u);
    int threw = 0, clean = 0;
    for (int i = 0; i < kMutations; ++i) {
        const std::vector<char> m = mutate(blob, i, rng);
        int sv[2];
        ASSERT_EQ(::socketpair(AF_UNIX, SOCK_STREAM, 0, sv), 0);
        io::UniqueFd writer(sv[0]);
        io::UniqueFd reader(sv[1]);
        io::write_full(writer.get(), m.data(), m.size());
        writer.reset();  // mutant fully buffered; reads can never hang
        try {
            Frame f;
            while (cluster::read_frame(reader.get(), f)) {
                // A frame that survives framing must also decode cleanly or
                // throw — never crash. Flipped payload bytes may decode into
                // garbage values; that is acceptable.
                try {
                    switch (static_cast<Opcode>(f.header.opcode)) {
                        case Opcode::kDetectRequest:
                            (void)cluster::decode_detect_request(f.payload);
                            break;
                        case Opcode::kReloadRequest:
                            (void)cluster::decode_reload_request(f.payload);
                            break;
                        case Opcode::kReloadResponse:
                            (void)cluster::decode_reload_response(f.payload);
                            break;
                        default:
                            break;
                    }
                } catch (const std::exception&) {
                    // clean payload rejection
                }
            }
            ++clean;  // stream ended on a frame boundary
        } catch (const std::exception&) {
            ++threw;  // bad magic/version/length or mid-frame EOF
        }
    }
    EXPECT_EQ(threw + clean, kMutations);
    EXPECT_GT(threw, 0);  // flips hit the fixed header often enough to reject
}

}  // namespace
}  // namespace dronet
