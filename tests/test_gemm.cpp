// GEMM kernels: blocked and threaded kernels must agree with the naive
// reference across transpose modes, alpha/beta values and shapes
// (parameterized property sweep). On the SCALAR dispatch level the packed
// kernels are required to be BIT-exact against gemm_naive (same accumulation
// order), which the *BitExact* tests check via memcmp after pinning the
// level. The AVX2 level's FMA micro-kernel fuses each multiply-add into one
// rounding and is tolerance-gated instead (test_simd.cpp).
#include <gtest/gtest.h>

#include <cstring>
#include <tuple>
#include <vector>

#include "simd/dispatch.hpp"
#include "tensor/gemm.hpp"
#include "tensor/rng.hpp"

namespace dronet {
namespace {

std::vector<float> random_matrix(Rng& rng, int rows, int cols) {
    std::vector<float> m(static_cast<std::size_t>(rows) * cols);
    rng.fill_uniform(m, -1.0f, 1.0f);
    return m;
}

void expect_near(const std::vector<float>& a, const std::vector<float>& b,
                 float tol = 2e-4f) {
    ASSERT_EQ(a.size(), b.size());
    for (std::size_t i = 0; i < a.size(); ++i) {
        ASSERT_NEAR(a[i], b[i], tol) << "at " << i;
    }
}

struct GemmCase {
    int m, n, k;
    bool ta, tb;
    float alpha, beta;
};

class GemmAgreement : public ::testing::TestWithParam<GemmCase> {};

TEST_P(GemmAgreement, BlockedMatchesNaive) {
    const GemmCase c = GetParam();
    Rng rng(11);
    const auto a = c.ta ? random_matrix(rng, c.k, c.m) : random_matrix(rng, c.m, c.k);
    const auto b = c.tb ? random_matrix(rng, c.n, c.k) : random_matrix(rng, c.k, c.n);
    auto c_ref = random_matrix(rng, c.m, c.n);
    auto c_blk = c_ref;
    const int lda = c.ta ? c.m : c.k;
    const int ldb = c.tb ? c.k : c.n;
    gemm_naive({c.ta, c.tb, c.m, c.n, c.k, c.alpha, a.data(), lda, b.data(), ldb,
                c.beta, c_ref.data(), c.n});
    gemm_blocked({c.ta, c.tb, c.m, c.n, c.k, c.alpha, a.data(), lda, b.data(), ldb,
                  c.beta, c_blk.data(), c.n});
    expect_near(c_ref, c_blk);
}

TEST_P(GemmAgreement, ThreadedMatchesNaive) {
    const GemmCase c = GetParam();
    Rng rng(13);
    const auto a = c.ta ? random_matrix(rng, c.k, c.m) : random_matrix(rng, c.m, c.k);
    const auto b = c.tb ? random_matrix(rng, c.n, c.k) : random_matrix(rng, c.k, c.n);
    auto c_ref = random_matrix(rng, c.m, c.n);
    auto c_thr = c_ref;
    const int lda = c.ta ? c.m : c.k;
    const int ldb = c.tb ? c.k : c.n;
    gemm_naive({c.ta, c.tb, c.m, c.n, c.k, c.alpha, a.data(), lda, b.data(), ldb,
                c.beta, c_ref.data(), c.n});
    gemm_threaded({c.ta, c.tb, c.m, c.n, c.k, c.alpha, a.data(), lda, b.data(), ldb,
                   c.beta, c_thr.data(), c.n},
                  3);
    expect_near(c_ref, c_thr);
}

// On the scalar level the packed kernels reproduce gemm_naive's exact
// accumulation order (full-k ascending into a fresh accumulator, then
// alpha*acc + beta*c), so the results must match bit for bit — not just
// within tolerance. This is what lets gemm() switch kernels without
// perturbing checkpoint evaluation.
TEST_P(GemmAgreement, BlockedBitExactVsNaive) {
    const simd::ScopedSimdLevel scalar(simd::SimdLevel::kScalar);
    const GemmCase c = GetParam();
    Rng rng(29);
    const auto a = c.ta ? random_matrix(rng, c.k, c.m) : random_matrix(rng, c.m, c.k);
    const auto b = c.tb ? random_matrix(rng, c.n, c.k) : random_matrix(rng, c.k, c.n);
    auto c_ref = random_matrix(rng, c.m, c.n);
    auto c_blk = c_ref;
    const int lda = c.ta ? c.m : c.k;
    const int ldb = c.tb ? c.k : c.n;
    gemm_naive({c.ta, c.tb, c.m, c.n, c.k, c.alpha, a.data(), lda, b.data(), ldb,
                c.beta, c_ref.data(), c.n});
    gemm_blocked({c.ta, c.tb, c.m, c.n, c.k, c.alpha, a.data(), lda, b.data(), ldb,
                  c.beta, c_blk.data(), c.n});
    ASSERT_EQ(std::memcmp(c_ref.data(), c_blk.data(), c_ref.size() * sizeof(float)), 0);
}

TEST_P(GemmAgreement, ThreadedBitExactVsNaive) {
    const simd::ScopedSimdLevel scalar(simd::SimdLevel::kScalar);
    const GemmCase c = GetParam();
    Rng rng(31);
    const auto a = c.ta ? random_matrix(rng, c.k, c.m) : random_matrix(rng, c.m, c.k);
    const auto b = c.tb ? random_matrix(rng, c.n, c.k) : random_matrix(rng, c.k, c.n);
    auto c_ref = random_matrix(rng, c.m, c.n);
    auto c_thr = c_ref;
    const int lda = c.ta ? c.m : c.k;
    const int ldb = c.tb ? c.k : c.n;
    gemm_naive({c.ta, c.tb, c.m, c.n, c.k, c.alpha, a.data(), lda, b.data(), ldb,
                c.beta, c_ref.data(), c.n});
    gemm_threaded({c.ta, c.tb, c.m, c.n, c.k, c.alpha, a.data(), lda, b.data(), ldb,
                   c.beta, c_thr.data(), c.n},
                  4);
    ASSERT_EQ(std::memcmp(c_ref.data(), c_thr.data(), c_ref.size() * sizeof(float)), 0);
}

// Legacy spawn-per-call sharding (kept as the ablation baseline) uses the
// old k-blocked kernel, so it agrees within tolerance, not bitwise.
TEST_P(GemmAgreement, SpawnLegacyMatchesNaive) {
    const GemmCase c = GetParam();
    Rng rng(37);
    const auto a = c.ta ? random_matrix(rng, c.k, c.m) : random_matrix(rng, c.m, c.k);
    const auto b = c.tb ? random_matrix(rng, c.n, c.k) : random_matrix(rng, c.k, c.n);
    auto c_ref = random_matrix(rng, c.m, c.n);
    auto c_spawn = c_ref;
    const int lda = c.ta ? c.m : c.k;
    const int ldb = c.tb ? c.k : c.n;
    gemm_naive({c.ta, c.tb, c.m, c.n, c.k, c.alpha, a.data(), lda, b.data(), ldb,
                c.beta, c_ref.data(), c.n});
    gemm_threaded_spawn({c.ta, c.tb, c.m, c.n, c.k, c.alpha, a.data(), lda, b.data(),
                         ldb, c.beta, c_spawn.data(), c.n},
                        3);
    expect_near(c_ref, c_spawn);
}

INSTANTIATE_TEST_SUITE_P(
    Shapes, GemmAgreement,
    ::testing::Values(
        GemmCase{1, 1, 1, false, false, 1.0f, 0.0f},
        GemmCase{4, 5, 6, false, false, 1.0f, 0.0f},
        GemmCase{16, 33, 9, false, false, 1.0f, 1.0f},
        GemmCase{7, 7, 7, true, false, 1.0f, 0.0f},
        GemmCase{7, 7, 7, false, true, 1.0f, 0.0f},
        GemmCase{7, 7, 7, true, true, 1.0f, 0.0f},
        GemmCase{12, 20, 30, false, false, 0.5f, 2.0f},
        GemmCase{12, 20, 30, true, true, -1.0f, 0.5f},
        GemmCase{64, 100, 72, false, false, 1.0f, 0.0f},
        GemmCase{3, 300, 150, false, false, 1.0f, 0.0f},
        GemmCase{130, 5, 260, false, false, 1.0f, 1.0f},
        // Edge shapes around the 4x16 register tile: one under/over each
        // boundary, single rows/columns, and a DroNet-like wide-N case.
        GemmCase{5, 17, 3, false, false, 1.0f, 0.0f},
        GemmCase{4, 16, 1, false, false, 1.0f, 0.0f},
        GemmCase{3, 15, 8, false, false, 2.0f, -1.0f},
        GemmCase{65, 257, 7, false, false, 1.0f, 0.5f},
        GemmCase{1, 16, 32, false, true, 1.0f, 0.0f},
        GemmCase{4, 1, 64, true, false, 1.0f, 1.0f},
        GemmCase{8, 1024, 27, false, false, 1.0f, 0.0f},
        GemmCase{9, 31, 5, false, true, -0.5f, 2.0f}));

TEST(Gemm, IdentityMultiplication) {
    // I * B = B for a 3x3 identity.
    const std::vector<float> eye = {1, 0, 0, 0, 1, 0, 0, 0, 1};
    const std::vector<float> b = {1, 2, 3, 4, 5, 6, 7, 8, 9};
    std::vector<float> c(9, 0.0f);
    gemm(false, false, 3, 3, 3, 1.0f, eye.data(), 3, b.data(), 3, 0.0f, c.data(), 3);
    expect_near(b, c);
}

TEST(Gemm, BetaZeroOverwritesGarbage) {
    const std::vector<float> a = {1, 2};
    const std::vector<float> b = {3, 4};
    std::vector<float> c = {1e30f};
    gemm(false, false, 1, 1, 2, 1.0f, a.data(), 2, b.data(), 1, 0.0f, c.data(), 1);
    EXPECT_FLOAT_EQ(c[0], 11.0f);
}

TEST(Gemm, AlphaScaling) {
    const std::vector<float> a = {2};
    const std::vector<float> b = {3};
    std::vector<float> c = {10};
    gemm(false, false, 1, 1, 1, 0.5f, a.data(), 1, b.data(), 1, 1.0f, c.data(), 1);
    EXPECT_FLOAT_EQ(c[0], 13.0f);
}

TEST(Gemm, RejectsNegativeDims) {
    std::vector<float> buf(4, 0.0f);
    EXPECT_THROW(gemm_blocked({false, false, -1, 2, 2, 1.0f, buf.data(), 2, buf.data(),
                               2, 0.0f, buf.data(), 2}),
                 std::invalid_argument);
}

TEST(Gemm, RejectsNullPointers) {
    std::vector<float> buf(4, 0.0f);
    EXPECT_THROW(gemm_blocked({false, false, 2, 2, 2, 1.0f, nullptr, 2, buf.data(), 2,
                               0.0f, buf.data(), 2}),
                 std::invalid_argument);
}

TEST(Gemm, ZeroSizedNoop) {
    std::vector<float> buf(4, 1.0f);
    gemm_blocked({false, false, 0, 0, 0, 1.0f, nullptr, 1, nullptr, 1, 0.0f, nullptr, 1});
    gemm_blocked({false, false, 2, 2, 0, 1.0f, nullptr, 1, nullptr, 1, 1.0f, buf.data(), 2});
    EXPECT_FLOAT_EQ(buf[0], 1.0f);  // beta=1, k=0 leaves C untouched
}

TEST(Gemm, GlobalThreadSetting) {
    set_gemm_threads(4);
    EXPECT_EQ(gemm_threads(), 4);
    set_gemm_threads(0);  // clamped to 1
    EXPECT_EQ(gemm_threads(), 1);
}

TEST(Gemm, FlopsFormula) {
    EXPECT_EQ(gemm_flops(2, 3, 4), 48);
    EXPECT_EQ(gemm_flops(0, 3, 4), 0);
}

}  // namespace
}  // namespace dronet
