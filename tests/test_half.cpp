// IEEE binary16 conversions (simd/half.hpp): the numerics policy is tested
// exhaustively — every one of the 65536 half bit patterns must survive
// half -> float -> half unchanged (including NaN payloads), RTNE ties must
// break to even, and overflow/underflow/subnormal edges must land exactly
// where the policy says. The F16C hardware path must agree bitwise with the
// software conversion for all finite values and infinities.
#include <gtest/gtest.h>

#include <cmath>
#include <cstdint>
#include <cstring>
#include <limits>
#include <vector>

#include "simd/dispatch.hpp"
#include "simd/half.hpp"
#include "simd/kernels.hpp"

namespace dronet::simd {
namespace {

std::uint32_t float_bits(float f) {
    std::uint32_t u;
    std::memcpy(&u, &f, sizeof(u));
    return u;
}

TEST(Half, ExhaustiveRoundTripIdentity) {
    // All 65536 patterns: +-zero, subnormals, normals, +-Inf, every NaN
    // payload. half -> float -> half must be the identity, bit for bit.
    for (std::uint32_t bits = 0; bits <= 0xFFFF; ++bits) {
        const std::uint16_t h = static_cast<std::uint16_t>(bits);
        const float f = half_to_float(h);
        const std::uint16_t back = float_to_half_rtne(f);
        ASSERT_EQ(back, h) << "pattern 0x" << std::hex << bits
                           << " widened to " << f;
    }
}

TEST(Half, ExactSmallIntegers) {
    // Values representable exactly in both formats convert without error.
    for (int i = -2048; i <= 2048; ++i) {
        const float f = static_cast<float>(i);
        EXPECT_FLOAT_EQ(half_to_float(float_to_half_rtne(f)), f) << i;
    }
    EXPECT_EQ(float_to_half_rtne(1.0f), 0x3C00);
    EXPECT_EQ(float_to_half_rtne(-2.0f), 0xC000);
    EXPECT_EQ(float_to_half_rtne(0.5f), 0x3800);
    EXPECT_EQ(float_to_half_rtne(65504.0f), 0x7BFF);  // largest finite half
}

TEST(Half, RoundsToNearestTiesToEven) {
    // 1.0 + 2^-11 sits exactly between 1.0 (0x3C00, even) and the next half
    // (0x3C01, odd): the tie must go to even.
    EXPECT_EQ(float_to_half_rtne(1.0f + std::ldexp(1.0f, -11)), 0x3C00);
    // 1.0 + 3*2^-11 ties between 0x3C01 and 0x3C02: even wins again.
    EXPECT_EQ(float_to_half_rtne(1.0f + 3 * std::ldexp(1.0f, -11)), 0x3C02);
    // Just above a tie rounds up; just below rounds down.
    EXPECT_EQ(float_to_half_rtne(1.0f + std::ldexp(1.0f, -11) +
                                 std::ldexp(1.0f, -20)),
              0x3C01);
    EXPECT_EQ(float_to_half_rtne(1.0f + std::ldexp(1.0f, -11) -
                                 std::ldexp(1.0f, -20)),
              0x3C01 - 1);
}

TEST(Half, OverflowSaturatesToInfinity) {
    // The rounding boundary is 65520: everything at or above rounds to Inf,
    // everything below rounds to the largest finite half (65504).
    EXPECT_EQ(float_to_half_rtne(65520.0f), 0x7C00);
    EXPECT_EQ(float_to_half_rtne(65519.996f), 0x7BFF);
    EXPECT_EQ(float_to_half_rtne(-65520.0f), 0xFC00);
    EXPECT_EQ(float_to_half_rtne(1e30f), 0x7C00);
    EXPECT_EQ(float_to_half_rtne(std::numeric_limits<float>::infinity()), 0x7C00);
    EXPECT_EQ(float_to_half_rtne(-std::numeric_limits<float>::infinity()), 0xFC00);
}

TEST(Half, UnderflowAndSubnormals) {
    // 2^-24 is the smallest subnormal half.
    EXPECT_EQ(float_to_half_rtne(std::ldexp(1.0f, -24)), 0x0001);
    // Half of it ties between 0 (even) and 0x0001 (odd): to even -> zero.
    EXPECT_EQ(float_to_half_rtne(std::ldexp(1.0f, -25)), 0x0000);
    EXPECT_EQ(float_to_half_rtne(-std::ldexp(1.0f, -25)), 0x8000);
    // Anything below the tie point is a signed zero.
    EXPECT_EQ(float_to_half_rtne(std::ldexp(1.0f, -26)), 0x0000);
    EXPECT_EQ(float_to_half_rtne(-std::ldexp(1.0f, -30)), 0x8000);
    // Largest subnormal: (1023/1024) * 2^-14.
    EXPECT_EQ(float_to_half_rtne(std::ldexp(1023.0f, -24)), 0x03FF);
    // Smallest normal: 2^-14.
    EXPECT_EQ(float_to_half_rtne(std::ldexp(1.0f, -14)), 0x0400);
    // Subnormals widen exactly.
    EXPECT_FLOAT_EQ(half_to_float(0x0001), std::ldexp(1.0f, -24));
    EXPECT_FLOAT_EQ(half_to_float(0x03FF), std::ldexp(1023.0f, -24));
}

TEST(Half, SignedZeroPreserved) {
    EXPECT_EQ(float_to_half_rtne(0.0f), 0x0000);
    EXPECT_EQ(float_to_half_rtne(-0.0f), 0x8000);
    EXPECT_EQ(float_bits(half_to_float(0x8000)), 0x80000000u);
    EXPECT_EQ(float_bits(half_to_float(0x0000)), 0x00000000u);
}

TEST(Half, NanStaysNan) {
    const std::uint16_t q = float_to_half_rtne(std::nanf(""));
    EXPECT_TRUE(std::isnan(half_to_float(q)));
    // A float NaN whose payload's top 10 bits are zero must still encode NaN
    // after narrowing (the quiet bit is substituted), never Inf.
    float sneaky;
    const std::uint32_t sneaky_bits = 0x7F800001u;  // sNaN, payload in low bits
    std::memcpy(&sneaky, &sneaky_bits, sizeof(sneaky));
    const std::uint16_t h = float_to_half_rtne(sneaky);
    EXPECT_TRUE(std::isnan(half_to_float(h)));
    EXPECT_NE(h, 0x7C00);  // not Inf
}

TEST(Half, StorageStructRoundTrips) {
    const Half h(3.140625f);  // exactly representable: 0x4248
    EXPECT_EQ(h.bits, 0x4248);
    EXPECT_FLOAT_EQ(static_cast<float>(h), 3.140625f);
    EXPECT_EQ(Half::from_bits(0x3C00).bits, 0x3C00);
}

TEST(Half, BulkConversionsMatchScalar) {
    std::vector<float> src;
    for (int i = -300; i < 300; ++i) src.push_back(0.37f * static_cast<float>(i));
    src.push_back(std::numeric_limits<float>::infinity());
    src.push_back(-std::numeric_limits<float>::infinity());
    src.push_back(65519.0f);
    std::vector<std::uint16_t> bulk(src.size());
    floats_to_halfs(src.data(), bulk.data(), src.size());
    std::vector<float> widened(src.size());
    halfs_to_floats(bulk.data(), widened.data(), src.size());
    for (std::size_t i = 0; i < src.size(); ++i) {
        EXPECT_EQ(bulk[i], float_to_half_rtne(src[i])) << i;
        EXPECT_EQ(float_bits(widened[i]), float_bits(half_to_float(bulk[i]))) << i;
    }
}

TEST(Half, F16cAgreesWithSoftwareConversions) {
    if (!cpu_supports_avx2()) {
        GTEST_SKIP() << "CPU/build lacks AVX2+F16C; hardware path not testable";
    }
    const KernelTable* hw = avx2_kernel_table();
    ASSERT_NE(hw, nullptr);
    // Dense sweep of float inputs incl. values rounding into subnormals,
    // ties, and overflow; hardware narrowing must equal software narrowing
    // bitwise (both are RTNE).
    std::vector<float> src;
    for (std::uint32_t h = 0; h <= 0xFFFF; ++h) {
        const float f = half_to_float(static_cast<std::uint16_t>(h));
        if (std::isnan(f)) continue;  // NaN payload passthrough differs by ISA
        src.push_back(f);
        src.push_back(std::nextafterf(f, 1e30f));
        src.push_back(std::nextafterf(f, -1e30f));
    }
    src.push_back(65520.0f);
    src.push_back(-65520.0f);
    std::vector<std::uint16_t> sw(src.size()), fast(src.size());
    scalar_kernel_table()->floats_to_halfs(src.data(), sw.data(), src.size());
    hw->floats_to_halfs(src.data(), fast.data(), src.size());
    for (std::size_t i = 0; i < src.size(); ++i) {
        ASSERT_EQ(fast[i], sw[i]) << "input " << src[i];
    }
    // Widening: every non-NaN half pattern must widen identically.
    std::vector<std::uint16_t> halves;
    for (std::uint32_t h = 0; h <= 0xFFFF; ++h) {
        const std::uint16_t hh = static_cast<std::uint16_t>(h);
        if (!std::isnan(half_to_float(hh))) halves.push_back(hh);
    }
    std::vector<float> wide_sw(halves.size()), wide_hw(halves.size());
    scalar_kernel_table()->halfs_to_floats(halves.data(), wide_sw.data(), halves.size());
    hw->halfs_to_floats(halves.data(), wide_hw.data(), halves.size());
    for (std::size_t i = 0; i < halves.size(); ++i) {
        ASSERT_EQ(float_bits(wide_hw[i]), float_bits(wide_sw[i]))
            << "pattern 0x" << std::hex << halves[i];
    }
}

TEST(Half, RoundTripHelperQuantizesInPlace) {
    std::vector<float> x = {0.1f, -1.0f, 3.14159f, 65519.0f, 1e-8f};
    std::vector<float> expect = x;
    for (float& v : expect) v = half_to_float(float_to_half_rtne(v));
    fp16_round_trip(x);
    for (std::size_t i = 0; i < x.size(); ++i) {
        EXPECT_EQ(float_bits(x[i]), float_bits(expect[i])) << i;
    }
}

}  // namespace
}  // namespace dronet::simd
