// im2col/col2im: geometry, padding behaviour, and the adjoint property
// <im2col(x), y> == <x, col2im(y)> that the conv backward pass relies on.
#include <gtest/gtest.h>

#include <numeric>
#include <vector>

#include "tensor/im2col.hpp"
#include "tensor/rng.hpp"

namespace dronet {
namespace {

TEST(ConvGeometry, OutputSizes) {
    const ConvGeometry g{3, 416, 416, 3, 1, 1};
    EXPECT_EQ(g.out_h(), 416);
    EXPECT_EQ(g.out_w(), 416);
    EXPECT_EQ(g.col_rows(), 27);
    EXPECT_EQ(g.col_cols(), 416 * 416);
}

TEST(ConvGeometry, StrideTwo) {
    const ConvGeometry g{1, 8, 8, 3, 2, 1};
    EXPECT_EQ(g.out_h(), 4);
    EXPECT_EQ(g.out_w(), 4);
}

TEST(ConvGeometry, NoPadShrinks) {
    const ConvGeometry g{1, 5, 5, 3, 1, 0};
    EXPECT_EQ(g.out_h(), 3);
}

TEST(Im2Col, Identity1x1) {
    // 1x1/1 im2col is the identity on a single channel.
    const ConvGeometry g{2, 3, 3, 1, 1, 0};
    std::vector<float> im(18);
    std::iota(im.begin(), im.end(), 0.0f);
    std::vector<float> col(static_cast<std::size_t>(g.col_rows()) * g.col_cols());
    im2col(im.data(), g, col.data());
    for (std::size_t i = 0; i < im.size(); ++i) EXPECT_EQ(col[i], im[i]);
}

TEST(Im2Col, PaddingReadsZero) {
    const ConvGeometry g{1, 2, 2, 3, 1, 1};
    const std::vector<float> im = {1, 2, 3, 4};
    std::vector<float> col(static_cast<std::size_t>(g.col_rows()) * g.col_cols());
    im2col(im.data(), g, col.data());
    // Top-left output position, top-left kernel tap (kh=0,kw=0) reads (-1,-1).
    EXPECT_EQ(col[0], 0.0f);
    // Centre tap (kh=1,kw=1) at output (0,0) reads im(0,0)=1.
    const int centre_row = 1 * 3 + 1;
    EXPECT_EQ(col[static_cast<std::size_t>(centre_row) * g.col_cols()], 1.0f);
}

TEST(Im2Col, KnownPatch) {
    // 3x3 image, 2x2 kernel, stride 1, no pad -> 2x2 output.
    const ConvGeometry g{1, 3, 3, 2, 1, 0};
    const std::vector<float> im = {1, 2, 3, 4, 5, 6, 7, 8, 9};
    std::vector<float> col(static_cast<std::size_t>(g.col_rows()) * g.col_cols());
    im2col(im.data(), g, col.data());
    // Row 0 = kernel tap (0,0) over outputs: im[0],im[1],im[3],im[4].
    EXPECT_EQ(col[0], 1.0f);
    EXPECT_EQ(col[1], 2.0f);
    EXPECT_EQ(col[2], 4.0f);
    EXPECT_EQ(col[3], 5.0f);
    // Row 3 = tap (1,1): im[4],im[5],im[7],im[8].
    EXPECT_EQ(col[12], 5.0f);
    EXPECT_EQ(col[15], 9.0f);
}

struct GeoCase {
    int c, h, w, k, stride, pad;
};

class Im2ColAdjoint : public ::testing::TestWithParam<GeoCase> {};

// col2im is the transpose of im2col: <im2col(x), y> == <x, col2im(y)>.
TEST_P(Im2ColAdjoint, DotProductIdentity) {
    const GeoCase p = GetParam();
    const ConvGeometry g{p.c, p.h, p.w, p.k, p.stride, p.pad};
    ASSERT_GT(g.out_h(), 0);
    ASSERT_GT(g.out_w(), 0);
    Rng rng(5);
    std::vector<float> x(static_cast<std::size_t>(p.c) * p.h * p.w);
    std::vector<float> y(static_cast<std::size_t>(g.col_rows()) * g.col_cols());
    rng.fill_uniform(x, -1.0f, 1.0f);
    rng.fill_uniform(y, -1.0f, 1.0f);

    std::vector<float> col(y.size());
    im2col(x.data(), g, col.data());
    std::vector<float> back(x.size(), 0.0f);
    col2im(y.data(), g, back.data());

    double lhs = 0, rhs = 0;
    for (std::size_t i = 0; i < col.size(); ++i) lhs += static_cast<double>(col[i]) * y[i];
    for (std::size_t i = 0; i < x.size(); ++i) rhs += static_cast<double>(x[i]) * back[i];
    EXPECT_NEAR(lhs, rhs, 1e-3);
}

INSTANTIATE_TEST_SUITE_P(
    Geometries, Im2ColAdjoint,
    ::testing::Values(GeoCase{1, 4, 4, 3, 1, 1}, GeoCase{3, 8, 8, 3, 1, 1},
                      GeoCase{2, 7, 5, 3, 2, 1}, GeoCase{4, 6, 6, 1, 1, 0},
                      GeoCase{2, 9, 9, 5, 2, 2}, GeoCase{1, 3, 3, 3, 1, 0},
                      GeoCase{5, 10, 4, 3, 3, 1}));

TEST(Col2Im, AccumulatesOverlaps) {
    // All-ones col with a 3x3 kernel, stride 1, pad 1: the centre pixel of a
    // 3x3 image is touched by all 9 kernel taps.
    const ConvGeometry g{1, 3, 3, 3, 1, 1};
    std::vector<float> col(static_cast<std::size_t>(g.col_rows()) * g.col_cols(), 1.0f);
    std::vector<float> im(9, 0.0f);
    col2im(col.data(), g, im.data());
    EXPECT_FLOAT_EQ(im[4], 9.0f);  // centre
    EXPECT_FLOAT_EQ(im[0], 4.0f);  // corner touched by 4 taps
}

}  // namespace
}  // namespace dronet
