// Image container, PPM round-trip, resampling, drawing and colour ops.
#include <gtest/gtest.h>

#include <filesystem>

#include "image/color.hpp"
#include "image/draw.hpp"
#include "image/image.hpp"
#include "image/ppm.hpp"
#include "image/resize.hpp"

namespace dronet {
namespace {

std::filesystem::path temp_file(const char* name) {
    return std::filesystem::temp_directory_path() / name;
}

TEST(Image, ConstructAndAccess) {
    Image im(4, 3, 3);
    EXPECT_EQ(im.width(), 4);
    EXPECT_EQ(im.height(), 3);
    EXPECT_EQ(im.channels(), 3);
    im.px(2, 1, 0) = 0.5f;
    EXPECT_FLOAT_EQ(im.px(2, 1, 0), 0.5f);
}

TEST(Image, RejectsBadDimensions) {
    EXPECT_THROW(Image(0, 1, 1), std::invalid_argument);
    EXPECT_THROW(Image(1, -2, 3), std::invalid_argument);
}

TEST(Image, ClampedAccessReplicatesBorder) {
    Image im(2, 2, 1);
    im.px(0, 0, 0) = 1.0f;
    EXPECT_FLOAT_EQ(im.px_clamped(-5, -5, 0), 1.0f);
}

TEST(Image, Clamp01) {
    Image im(1, 1, 1);
    im.px(0, 0, 0) = 2.0f;
    im.clamp01();
    EXPECT_FLOAT_EQ(im.px(0, 0, 0), 1.0f);
}

TEST(Image, TensorRoundTrip) {
    Image im(3, 2, 3);
    for (std::size_t i = 0; i < im.size(); ++i) im.data()[i] = static_cast<float>(i);
    const Tensor t = im.to_tensor();
    EXPECT_EQ(t.shape(), (Shape{1, 3, 2, 3}));
    const Image back = Image::from_tensor(t);
    for (std::size_t i = 0; i < im.size(); ++i) EXPECT_EQ(back.data()[i], im.data()[i]);
}

TEST(Image, CopyToBatchValidatesShape) {
    Image im(3, 2, 3);
    Tensor t(2, 3, 2, 3);
    im.copy_to_batch(t, 1);  // OK
    Tensor wrong(1, 3, 4, 4);
    EXPECT_THROW(im.copy_to_batch(wrong, 0), std::invalid_argument);
    EXPECT_THROW(im.copy_to_batch(t, 2), std::invalid_argument);
}

TEST(Ppm, RoundTripRgb) {
    Image im(5, 4, 3);
    for (std::size_t i = 0; i < im.size(); ++i) {
        im.data()[i] = static_cast<float>(i % 256) / 255.0f;
    }
    const auto path = temp_file("dronet_test_rt.ppm");
    write_ppm(im, path);
    const Image back = read_ppm(path);
    ASSERT_EQ(back.width(), 5);
    ASSERT_EQ(back.height(), 4);
    ASSERT_EQ(back.channels(), 3);
    for (std::size_t i = 0; i < im.size(); ++i) {
        EXPECT_NEAR(back.data()[i], im.data()[i], 1.0f / 255.0f);
    }
    std::filesystem::remove(path);
}

TEST(Ppm, RoundTripGray) {
    Image im(3, 3, 1);
    im.px(1, 1, 0) = 0.5f;
    const auto path = temp_file("dronet_test_gray.pgm");
    write_ppm(im, path);
    const Image back = read_ppm(path);
    EXPECT_EQ(back.channels(), 1);
    EXPECT_NEAR(back.px(1, 1, 0), 0.5f, 1.0f / 255.0f);
    std::filesystem::remove(path);
}

TEST(Ppm, RejectsMissingFile) {
    EXPECT_THROW(read_ppm("/nonexistent/definitely_missing.ppm"), std::runtime_error);
}

TEST(Ppm, RejectsBadChannelCount) {
    Image im(2, 2, 4);
    EXPECT_THROW(write_ppm(im, temp_file("bad.ppm")), std::runtime_error);
}

TEST(Resize, BilinearPreservesConstant) {
    Image im(8, 8, 3);
    im.fill(0.25f);
    const Image out = resize_bilinear(im, 17, 5);
    for (std::size_t i = 0; i < out.size(); ++i) EXPECT_FLOAT_EQ(out.data()[i], 0.25f);
}

TEST(Resize, BilinearIdentityAtSameSize) {
    Image im(4, 4, 1);
    for (std::size_t i = 0; i < im.size(); ++i) im.data()[i] = static_cast<float>(i);
    const Image out = resize_bilinear(im, 4, 4);
    for (std::size_t i = 0; i < im.size(); ++i) EXPECT_NEAR(out.data()[i], im.data()[i], 1e-5f);
}

TEST(Resize, InterpolatesBetweenPixels) {
    Image im(2, 1, 1);
    im.px(0, 0, 0) = 0.0f;
    im.px(1, 0, 0) = 1.0f;
    const Image out = resize_bilinear(im, 3, 1);
    EXPECT_NEAR(out.px(1, 0, 0), 0.5f, 1e-5f);
}

TEST(Resize, HalfPixelConventionAveragesOnDownscale) {
    // Pins the sampling convention: half-pixel mapping puts the single output
    // pixel's centre exactly between the two inputs (align-corners would
    // return the left pixel unchanged).
    Image im(2, 1, 1);
    im.px(0, 0, 0) = 0.0f;
    im.px(1, 0, 0) = 1.0f;
    const Image out = resize_bilinear(im, 1, 1);
    EXPECT_NEAR(out.px(0, 0, 0), 0.5f, 1e-6f);
}

TEST(Resize, NearestKeepsValues) {
    Image im(2, 2, 1);
    im.px(0, 0, 0) = 1.0f;
    const Image out = resize_nearest(im, 4, 4);
    EXPECT_FLOAT_EQ(out.px(0, 0, 0), 1.0f);
    EXPECT_FLOAT_EQ(out.px(1, 1, 0), 1.0f);
    EXPECT_FLOAT_EQ(out.px(3, 3, 0), im.px(1, 1, 0));
}

TEST(Letterbox, PreservesAspectAndPads) {
    Image im(100, 50, 3);
    im.fill(1.0f);
    const Letterbox lb = letterbox(im, 64, 64);
    EXPECT_EQ(lb.image.width(), 64);
    EXPECT_EQ(lb.image.height(), 64);
    EXPECT_FLOAT_EQ(lb.scale, 0.64f);
    EXPECT_EQ(lb.offset_x, 0);
    EXPECT_EQ(lb.offset_y, 16);
    EXPECT_FLOAT_EQ(lb.image.px(0, 0, 0), 0.5f);   // padding
    EXPECT_FLOAT_EQ(lb.image.px(0, 32, 0), 1.0f);  // content
}

TEST(Letterbox, RecordsRoundedEmbeddedExtent) {
    Image im(100, 50, 3);
    const Letterbox lb = letterbox(im, 64, 64);
    EXPECT_EQ(lb.emb_w, 64);
    EXPECT_EQ(lb.emb_h, 32);
}

TEST(ConvertChannels, GrayReplicatesToRgb) {
    Image gray(3, 2, 1);
    for (std::size_t i = 0; i < gray.size(); ++i) gray.data()[i] = 0.1f * static_cast<float>(i);
    const Image rgb = convert_channels(gray, 3);
    ASSERT_EQ(rgb.channels(), 3);
    for (int c = 0; c < 3; ++c) {
        for (int y = 0; y < 2; ++y) {
            for (int x = 0; x < 3; ++x) {
                EXPECT_FLOAT_EQ(rgb.px(x, y, c), gray.px(x, y, 0));
            }
        }
    }
}

TEST(ConvertChannels, RgbaDropsAlpha) {
    Image rgba(2, 2, 4);
    for (std::size_t i = 0; i < rgba.size(); ++i) rgba.data()[i] = static_cast<float>(i);
    const Image rgb = convert_channels(rgba, 3);
    ASSERT_EQ(rgb.channels(), 3);
    for (int c = 0; c < 3; ++c) {
        for (int y = 0; y < 2; ++y) {
            for (int x = 0; x < 2; ++x) EXPECT_FLOAT_EQ(rgb.px(x, y, c), rgba.px(x, y, c));
        }
    }
}

TEST(ConvertChannels, SameCountCopies) {
    Image im(2, 2, 3);
    im.fill(0.7f);
    const Image out = convert_channels(im, 3);
    EXPECT_EQ(out.channels(), 3);
    EXPECT_FLOAT_EQ(out.px(1, 1, 2), 0.7f);
}

TEST(ConvertChannels, RejectsUnsupportedCombination) {
    Image two(2, 2, 2);
    EXPECT_THROW((void)convert_channels(two, 3), std::invalid_argument);
    Image rgb(2, 2, 3);
    EXPECT_THROW((void)convert_channels(rgb, 1), std::invalid_argument);
    Image empty;
    EXPECT_THROW((void)convert_channels(empty, 3), std::invalid_argument);
}

TEST(Draw, FilledRectClips) {
    Image im(4, 4, 3);
    draw_filled_rect(im, -5, -5, 1, 1, Rgb{1, 0, 0});
    EXPECT_FLOAT_EQ(im.px(0, 0, 0), 1.0f);
    EXPECT_FLOAT_EQ(im.px(2, 2, 0), 0.0f);
}

TEST(Draw, RectOutlineLeavesInterior) {
    Image im(6, 6, 3);
    draw_rect(im, 0, 0, 5, 5, Rgb{0, 1, 0}, 1);
    EXPECT_FLOAT_EQ(im.px(0, 0, 1), 1.0f);
    EXPECT_FLOAT_EQ(im.px(3, 3, 1), 0.0f);
}

TEST(Draw, RotatedRectCoversCenter) {
    Image im(20, 20, 3);
    draw_rotated_rect(im, 10, 10, 6, 3, 0.7f, Rgb{0, 0, 1});
    EXPECT_FLOAT_EQ(im.px(10, 10, 2), 1.0f);
    EXPECT_FLOAT_EQ(im.px(0, 0, 2), 0.0f);
}

TEST(Draw, DiscRadius) {
    Image im(11, 11, 1);
    draw_disc(im, 5.5f, 5.5f, 3.0f, Rgb{1, 1, 1});
    EXPECT_FLOAT_EQ(im.px(5, 5, 0), 1.0f);
    EXPECT_FLOAT_EQ(im.px(0, 0, 0), 0.0f);
}

TEST(Draw, LineEndpoints) {
    Image im(10, 10, 1);
    draw_line(im, 1, 1, 8, 6, Rgb{1, 1, 1});
    EXPECT_FLOAT_EQ(im.px(1, 1, 0), 1.0f);
    EXPECT_FLOAT_EQ(im.px(8, 6, 0), 1.0f);
}

TEST(Draw, BlendRectMixes) {
    Image im(2, 2, 3);
    im.fill(0.0f);
    blend_rect(im, 0, 0, 1, 1, Rgb{1, 1, 1}, 0.25f);
    EXPECT_NEAR(im.px(0, 0, 0), 0.25f, 1e-5f);
}

TEST(Color, HsvRoundTrip) {
    const Rgb inputs[] = {{0.8f, 0.2f, 0.1f}, {0.1f, 0.9f, 0.3f}, {0.5f, 0.5f, 0.5f},
                          {0.0f, 0.0f, 0.0f}, {1.0f, 1.0f, 1.0f}, {0.2f, 0.3f, 0.9f}};
    for (const Rgb& in : inputs) {
        const Rgb out = hsv_to_rgb(rgb_to_hsv(in));
        EXPECT_NEAR(out.r, in.r, 1e-4f);
        EXPECT_NEAR(out.g, in.g, 1e-4f);
        EXPECT_NEAR(out.b, in.b, 1e-4f);
    }
}

TEST(Color, DistortKeepsRange) {
    Image im(8, 8, 3);
    Rng rng(4);
    for (std::size_t i = 0; i < im.size(); ++i) im.data()[i] = rng.uniform();
    distort_hsv(im, rng, 0.1f, 1.5f, 1.5f);
    for (std::size_t i = 0; i < im.size(); ++i) {
        EXPECT_GE(im.data()[i], 0.0f);
        EXPECT_LE(im.data()[i], 1.0f);
    }
}

TEST(Color, DistortRequiresRgb) {
    Image im(2, 2, 1);
    Rng rng(4);
    EXPECT_THROW(distort_hsv(im, rng, 0.1f, 1.1f, 1.1f), std::invalid_argument);
}

TEST(Color, FlipHorizontalMirrors) {
    Image im(3, 1, 1);
    im.px(0, 0, 0) = 1.0f;
    im.px(2, 0, 0) = 3.0f;
    flip_horizontal(im);
    EXPECT_FLOAT_EQ(im.px(0, 0, 0), 3.0f);
    EXPECT_FLOAT_EQ(im.px(2, 0, 0), 1.0f);
}

TEST(Color, GaussianNoiseStaysInRange) {
    Image im(16, 16, 3);
    im.fill(0.5f);
    Rng rng(8);
    add_gaussian_noise(im, rng, 0.1f);
    bool changed = false;
    for (std::size_t i = 0; i < im.size(); ++i) {
        EXPECT_GE(im.data()[i], 0.0f);
        EXPECT_LE(im.data()[i], 1.0f);
        changed |= im.data()[i] != 0.5f;
    }
    EXPECT_TRUE(changed);
}

}  // namespace
}  // namespace dronet
