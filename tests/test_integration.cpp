// End-to-end integration: synthetic data -> YOLO training -> detection ->
// evaluation, exercising every subsystem together the way the benches do.
#include <gtest/gtest.h>

#include <filesystem>

#include "core/detector.hpp"
#include "data/dataset.hpp"
#include "detect/nms.hpp"
#include "eval/evaluator.hpp"
#include "models/model_zoo.hpp"
#include "nn/weights_io.hpp"
#include "train/trainer.hpp"
#include "video/frame_source.hpp"
#include "video/pipeline.hpp"

namespace dronet {
namespace {

// A deliberately easy micro problem: one large vehicle per 64x64 scene.
DetectionDataset easy_dataset(int count, std::uint64_t seed) {
    SceneConfig sc;
    sc.width = sc.height = 64;
    sc.min_vehicles = 1;
    sc.max_vehicles = 1;
    sc.min_vehicle_size = 0.28f;
    sc.max_vehicle_size = 0.38f;
    sc.occlusion_prob = 0;
    sc.noise_stddev = 0.005f;
    sc.num_distractors = 6;
    return generate_dataset(sc, count, seed);
}

Network trained_micro_dronet(const DetectionDataset& train_set) {
    ModelOptions mo;
    mo.input_size = 64;
    mo.batch = 4;
    mo.filter_scale = 0.5f;
    mo.learning_rate = 2e-3f;
    mo.burn_in = 10;
    Network net = build_model(ModelId::kDroNet, mo);
    net.region()->set_seen(0);
    TrainConfig tc;
    tc.iterations = 150;
    tc.use_augmentation = false;
    Trainer trainer(net, train_set, tc);
    trainer.run();
    return net;
}

TEST(Integration, TrainDetectEvaluate) {
    const DetectionDataset train_set = easy_dataset(24, 100);
    const DetectionDataset test_set = easy_dataset(8, 200);
    Network net = trained_micro_dronet(train_set);

    // Training must have reduced the loss substantially.
    net.set_batch(1);
    EvalConfig ec;
    ec.score_threshold = 0.2f;
    const DetectionMetrics m = evaluate_detector(net, test_set, ec);
    // The micro problem is easy: the detector must find most vehicles.
    EXPECT_GE(m.sensitivity(), 0.5f) << "tp=" << m.true_positives
                                     << " fn=" << m.false_negatives;
    EXPECT_GE(m.avg_iou(), 0.5f);
}

TEST(Integration, TrainedBeatsUntrained) {
    const DetectionDataset train_set = easy_dataset(24, 100);
    const DetectionDataset test_set = easy_dataset(8, 200);
    Network trained = trained_micro_dronet(train_set);
    trained.set_batch(1);
    Network fresh = build_model(ModelId::kDroNet,
                                {.input_size = 64, .filter_scale = 0.5f});
    EvalConfig ec;
    ec.score_threshold = 0.2f;
    const DetectionMetrics mt = evaluate_detector(trained, test_set, ec);
    const DetectionMetrics mf = evaluate_detector(fresh, test_set, ec);
    EXPECT_GT(mt.f1(), mf.f1());
}

TEST(Integration, CheckpointRestartContinuesTraining) {
    const DetectionDataset train_set = easy_dataset(12, 300);
    ModelOptions mo;
    mo.input_size = 64;
    mo.batch = 2;
    mo.filter_scale = 0.25f;
    Network net = build_model(ModelId::kDroNet, mo);
    TrainConfig tc;
    tc.iterations = 10;
    tc.use_augmentation = false;
    Trainer t1(net, train_set, tc);
    t1.run();
    const auto path = std::filesystem::temp_directory_path() / "dronet_int_ckpt.weights";
    save_weights(net, path);

    Network resumed = build_model(ModelId::kDroNet, mo);
    load_weights(resumed, path);
    EXPECT_EQ(resumed.batch_num(), net.batch_num());
    Trainer t2(resumed, train_set, tc);
    t2.step();  // must not throw; LR schedule resumes from the restored batch_num
    EXPECT_EQ(resumed.batch_num(), net.batch_num() + 1);
    std::filesystem::remove(path);
}

TEST(Integration, VideoPipelineDetectsMovingVehicles) {
    const DetectionDataset train_set = easy_dataset(24, 100);
    Network net = trained_micro_dronet(train_set);
    net.set_batch(1);

    VideoConfig vc;
    vc.scene = benchmark_scene_config(64);
    vc.scene.min_vehicle_size = 0.28f;
    vc.scene.max_vehicle_size = 0.38f;
    vc.scene.noise_stddev = 0;
    vc.num_vehicles = 1;
    vc.seed = 77;
    UavFrameSource source(vc);
    PipelineConfig pc;
    pc.eval.score_threshold = 0.2f;
    DetectionPipeline pipeline(net, pc);
    DetectionMetrics m;
    for (int i = 0; i < 6; ++i) {
        const SceneSample frame = source.next_frame();
        const FrameResult r = pipeline.process(frame.image);
        m += match_detections(r.detections, frame.truths, 0.4f);
    }
    EXPECT_GT(m.true_positives, 0);
    EXPECT_EQ(pipeline.frames_processed(), 6);
}

TEST(Integration, MultiScaleEvalRunsOnOneCheckpoint) {
    const DetectionDataset train_set = easy_dataset(16, 100);
    Network net = trained_micro_dronet(train_set);
    net.set_batch(1);
    const DetectionDataset test_set = easy_dataset(4, 400);
    for (int size : {48, 64, 96}) {
        net.resize_input(size, size);
        const DetectionMetrics m = evaluate_detector(net, test_set, {});
        EXPECT_GE(m.sensitivity(), 0.0f);  // runs without structural errors
        EXPECT_EQ(net.region()->grid_w(), size / 16);
    }
}

TEST(Integration, DetectorFacadeOverTrainedWeights) {
    const DetectionDataset train_set = easy_dataset(24, 100);
    Network net = trained_micro_dronet(train_set);
    const auto path = std::filesystem::temp_directory_path() / "dronet_int_det.weights";
    net.set_batch(1);
    save_weights(net, path);

    Detector::Options opts;
    opts.model = ModelId::kDroNet;
    opts.input_size = 64;
    opts.filter_scale = 0.5f;
    opts.post.score_threshold = 0.2f;
    Detector detector(opts);
    detector.load_weights(path);
    const DetectionDataset test_set = easy_dataset(4, 500);
    int found = 0;
    for (std::size_t i = 0; i < test_set.size(); ++i) {
        found += static_cast<int>(detector.detect(test_set.image(i)).size());
    }
    EXPECT_GT(found, 0);
    std::filesystem::remove(path);
}

}  // namespace
}  // namespace dronet
