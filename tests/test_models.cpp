// Model zoo: the four paper architectures satisfy the paper's structural
// constraints (9 conv layers, 4-6 maxpools), their compute/parameter
// ordering matches §IV.A, and every model builds at every paper input size.
#include <gtest/gtest.h>

#include <filesystem>
#include <map>

#include "models/model_zoo.hpp"
#include "models/pretrained.hpp"
#include "nn/weights_io.hpp"

namespace dronet {
namespace {

std::map<LayerKind, int> layer_histogram(const Network& net) {
    std::map<LayerKind, int> hist;
    for (std::size_t i = 0; i < net.num_layers(); ++i) {
        ++hist[net.layer(static_cast<int>(i)).kind()];
    }
    return hist;
}

TEST(ModelZoo, NamesRoundTrip) {
    for (ModelId id : all_models()) {
        EXPECT_EQ(model_from_string(to_string(id)), id);
    }
    EXPECT_THROW(static_cast<void>(model_from_string("YOLOv7")),
                 std::invalid_argument);
}

TEST(ModelZoo, FourModels) {
    EXPECT_EQ(all_models().size(), 4u);
}

class ModelStructure : public ::testing::TestWithParam<ModelId> {};

// Paper §III.C.1: "In total there are 9 convolutional layers in the models
// shown in Fig. 1, with the max-pooling layers ranging between 4-6."
TEST_P(ModelStructure, PaperLayerCounts) {
    Network net = build_model(GetParam(), {.input_size = 416});
    const auto hist = layer_histogram(net);
    EXPECT_EQ(hist.at(LayerKind::kConvolutional), 9) << to_string(GetParam());
    EXPECT_GE(hist.at(LayerKind::kMaxPool), 4);
    EXPECT_LE(hist.at(LayerKind::kMaxPool), 6);
    EXPECT_EQ(hist.at(LayerKind::kRegion), 1);
}

TEST_P(ModelStructure, BuildsAtEveryPaperInputSize) {
    for (int size : {352, 416, 480, 544, 608}) {
        // Paper sizes are multiples of 32 (hence of DroNet's 16 too).
        Network net = build_model(GetParam(), {.input_size = size});
        Tensor in(net.input_shape());
        const Tensor& out = net.forward(in);
        EXPECT_EQ(out.shape().w, size / model_stride(GetParam()));
    }
}

TEST_P(ModelStructure, GridStrideMatches) {
    Network net = build_model(GetParam(), {.input_size = 416});
    EXPECT_EQ(net.region()->grid_w(), 416 / model_stride(GetParam()));
}

TEST_P(ModelStructure, MultiClassHeadSizing) {
    Network net = build_model(GetParam(), {.input_size = 416, .classes = 3});
    EXPECT_EQ(net.region()->config().classes, 3);
    // Head channels = num*(5+classes).
    const int expected = net.region()->config().num * (5 + 3);
    EXPECT_EQ(net.region()->input_shape().c, expected);
}

TEST_P(ModelStructure, FilterScaleShrinksParams) {
    Network full = build_model(GetParam(), {.input_size = 416});
    Network half = build_model(GetParam(), {.input_size = 416, .filter_scale = 0.5f});
    EXPECT_LT(half.total_params(), full.total_params());
    EXPECT_LT(half.total_flops(), full.total_flops());
}

INSTANTIATE_TEST_SUITE_P(AllModels, ModelStructure,
                         ::testing::ValuesIn(all_models()),
                         [](const ::testing::TestParamInfo<ModelId>& info) {
                             return to_string(info.param);
                         });

TEST(ModelZoo, RejectsIndivisibleInputSize) {
    EXPECT_THROW(build_model(ModelId::kTinyYoloVoc, {.input_size = 400}),
                 std::invalid_argument);
    // 400 divides by 16 but not 32: DroNet accepts it, the tiny family not.
    Network net = build_model(ModelId::kDroNet, {.input_size = 400});
    EXPECT_EQ(net.region()->grid_w(), 25);
}

// Paper §IV.A compute ordering: TinyYoloVoc >> TinyYoloNet > DroNet >
// SmallYoloV3 in FLOPs; DroNet has by far the fewest parameters.
TEST(ModelZoo, ComputeOrderingMatchesPaper) {
    const auto flops = [](ModelId id) {
        return build_model(id, {.input_size = 416}).total_flops();
    };
    const auto params = [](ModelId id) {
        return build_model(id, {.input_size = 416}).total_params();
    };
    EXPECT_GT(flops(ModelId::kTinyYoloVoc), 5 * flops(ModelId::kTinyYoloNet));
    EXPECT_GT(flops(ModelId::kTinyYoloNet), flops(ModelId::kDroNet));
    EXPECT_GT(flops(ModelId::kDroNet), flops(ModelId::kSmallYoloV3));
    // DroNet vs TinyYoloVoc: paper reports ~30x performance gap at equal
    // input size; the FLOP gap alone must be >= 10x.
    EXPECT_GT(flops(ModelId::kTinyYoloVoc), 10 * flops(ModelId::kDroNet));
    EXPECT_LT(params(ModelId::kDroNet), params(ModelId::kSmallYoloV3));
    EXPECT_GT(params(ModelId::kTinyYoloVoc), 100 * params(ModelId::kDroNet));
}

TEST(ModelZoo, DroNetUsesAlternating3x3And1x1) {
    // Fig. 2: DroNet is "comprised of 3x3 and 1x1 convolutional layers".
    Network net = build_model(ModelId::kDroNet, {.input_size = 416});
    int k3 = 0, k1 = 0;
    for (std::size_t i = 0; i < net.num_layers(); ++i) {
        if (auto* conv = dynamic_cast<const ConvolutionalLayer*>(&net.layer(static_cast<int>(i)))) {
            if (conv->config().ksize == 3) ++k3;
            if (conv->config().ksize == 1) ++k1;
        }
    }
    EXPECT_EQ(k3, 4);
    EXPECT_EQ(k1, 5);
}

TEST(ModelZoo, CfgTextParsesBack) {
    for (ModelId id : all_models()) {
        const std::string cfg = model_cfg(id, {.input_size = 416});
        EXPECT_NE(cfg.find("[net]"), std::string::npos);
        EXPECT_NE(cfg.find("[region]"), std::string::npos);
    }
}

TEST(Pretrained, MetaRoundTrip) {
    const auto path = std::filesystem::temp_directory_path() / "dronet_test.meta";
    write_meta(PretrainedMeta{0.4f, 2, 192}, path);
    const PretrainedMeta meta = read_meta(path);
    EXPECT_FLOAT_EQ(meta.filter_scale, 0.4f);
    EXPECT_EQ(meta.classes, 2);
    EXPECT_EQ(meta.input_size, 192);
    std::filesystem::remove(path);
}

TEST(Pretrained, LoadRoundTripThroughWeightsDir) {
    const auto dir = std::filesystem::temp_directory_path() / "dronet_test_weights";
    std::filesystem::create_directories(dir);
    Network net = build_model(ModelId::kSmallYoloV3,
                              {.input_size = 96, .filter_scale = 0.25f});
    save_weights(net, dir / "SmallYoloV3.weights");
    write_meta(PretrainedMeta{0.25f, 1, 96}, dir / "SmallYoloV3.meta");
    setenv("DRONET_WEIGHTS_DIR", dir.c_str(), 1);
    auto loaded = load_pretrained(ModelId::kSmallYoloV3);
    ASSERT_TRUE(loaded.has_value());
    EXPECT_EQ(loaded->config().width, 96);
    EXPECT_EQ(loaded->total_params(), net.total_params());
    // Missing model -> nullopt.
    EXPECT_FALSE(load_pretrained(ModelId::kTinyYoloVoc).has_value());
    unsetenv("DRONET_WEIGHTS_DIR");
    std::filesystem::remove_all(dir);
}

}  // namespace
}  // namespace dronet
