// Network orchestration: forward chaining, backward accumulation, resize,
// batch switching, describe, workspace sizing and batch-norm folding.
#include <gtest/gtest.h>

#include "nn/network.hpp"
#include "tensor/rng.hpp"

namespace dronet {
namespace {

NetConfig cfg(int c, int h, int w, int batch = 1) {
    NetConfig nc;
    nc.channels = c;
    nc.height = h;
    nc.width = w;
    nc.batch = batch;
    nc.seed = 123;
    return nc;
}

Network tiny_detector(int grid_in = 16, int batch = 1) {
    Network net(cfg(3, grid_in, grid_in, batch));
    net.add_conv({.filters = 8, .ksize = 3, .stride = 1, .pad = 1,
                  .batch_normalize = true});
    net.add_maxpool({.size = 2, .stride = 2});
    net.add_conv({.filters = 8, .ksize = 3, .stride = 1, .pad = 1,
                  .batch_normalize = true});
    net.add_maxpool({.size = 2, .stride = 2});
    RegionConfig rc;
    rc.classes = 1;
    rc.num = 2;
    rc.anchors = {1.0f, 1.0f, 2.0f, 2.0f};
    net.add_conv({.filters = rc.num * (5 + rc.classes), .ksize = 1, .stride = 1,
                  .pad = 0, .activation = Activation::kLinear});
    net.add_region(rc);
    return net;
}

TEST(Network, ForwardChainsShapes) {
    Network net = tiny_detector();
    Tensor in(net.input_shape());
    const Tensor& out = net.forward(in);
    EXPECT_EQ(out.shape(), (Shape{1, 12, 4, 4}));
}

TEST(Network, ForwardRejectsEmptyNetwork) {
    Network net(cfg(3, 8, 8));
    Tensor in(net.input_shape());
    EXPECT_THROW(net.forward(in), std::logic_error);
}

TEST(Network, RegionLookup) {
    Network net = tiny_detector();
    EXPECT_NE(net.region(), nullptr);
    Network plain(cfg(3, 8, 8));
    plain.add_conv({.filters = 2, .ksize = 3, .stride = 1, .pad = 1});
    EXPECT_EQ(plain.region(), nullptr);
}

TEST(Network, TotalsArePositiveAndAdditive) {
    Network net = tiny_detector();
    std::int64_t flops = 0, params = 0;
    for (std::size_t i = 0; i < net.num_layers(); ++i) {
        flops += net.layer(static_cast<int>(i)).flops();
        params += net.layer(static_cast<int>(i)).param_count();
    }
    EXPECT_EQ(net.total_flops(), flops);
    EXPECT_EQ(net.total_params(), params);
    EXPECT_GT(net.total_memory_bytes(), 0);
}

TEST(Network, DescribeListsEveryLayer) {
    Network net = tiny_detector();
    const std::string desc = net.describe();
    EXPECT_NE(desc.find("conv"), std::string::npos);
    EXPECT_NE(desc.find("max"), std::string::npos);
    EXPECT_NE(desc.find("region"), std::string::npos);
    EXPECT_NE(desc.find("total params"), std::string::npos);
}

TEST(Network, ResizeInputPropagates) {
    Network net = tiny_detector(16);
    net.resize_input(32, 32);
    Tensor in(net.input_shape());
    const Tensor& out = net.forward(in);
    EXPECT_EQ(out.shape(), (Shape{1, 12, 8, 8}));
    EXPECT_THROW(net.resize_input(0, 32), std::invalid_argument);
}

TEST(Network, SetBatchPropagates) {
    Network net = tiny_detector(16);
    net.set_batch(3);
    Tensor in(net.input_shape());
    EXPECT_EQ(in.shape().n, 3);
    const Tensor& out = net.forward(in);
    EXPECT_EQ(out.shape().n, 3);
    EXPECT_THROW(net.set_batch(0), std::invalid_argument);
}

TEST(Network, TrainStepReducesLossOverTime) {
    Network net = tiny_detector(16, 2);
    net.region()->set_seen(1 << 20);  // skip the anchor-prior phase
    Rng rng(5);
    Tensor in(net.input_shape());
    rng.fill_uniform(in.span(), 0.0f, 1.0f);
    std::vector<std::vector<GroundTruth>> truths = {
        {GroundTruth{{0.3f, 0.3f, 0.3f, 0.3f}, 0}},
        {GroundTruth{{0.7f, 0.6f, 0.25f, 0.35f}, 0}}};
    float first = 0, last = 0;
    for (int i = 0; i < 30; ++i) {
        const float loss = net.train_step(in, truths);
        if (i == 0) first = loss;
        last = loss;
    }
    EXPECT_LT(last, first * 0.7f);
    EXPECT_EQ(net.batch_num(), 30);
}

TEST(Network, TrainStepRequiresRegion) {
    Network net(cfg(3, 8, 8));
    net.add_conv({.filters = 2, .ksize = 3, .stride = 1, .pad = 1});
    Tensor in(net.input_shape());
    EXPECT_THROW(net.train_step(in, {}), std::logic_error);
}

TEST(Network, BackwardAccumulatesIntoEarlierLayers) {
    Network net = tiny_detector();
    net.region()->set_ground_truth({{GroundTruth{{0.5f, 0.5f, 0.3f, 0.3f}, 0}}});
    Tensor in(net.input_shape());
    Rng rng(9);
    rng.fill_uniform(in.span(), 0.0f, 1.0f);
    net.forward(in, /*train=*/true);
    net.backward();
    // The first conv layer must have received gradient.
    auto* conv = dynamic_cast<ConvolutionalLayer*>(&net.layer(0));
    ASSERT_NE(conv, nullptr);
    float grad_norm = 0;
    for (float g : conv->weights().g) grad_norm += g * g;
    EXPECT_GT(grad_norm, 0.0f);
}

TEST(Network, FoldBatchnormKeepsEvalBehaviour) {
    Network net = tiny_detector();
    Rng rng(31);
    Tensor in(net.input_shape());
    // A few training passes to move the rolling statistics.
    net.region()->set_ground_truth({{GroundTruth{{0.5f, 0.5f, 0.3f, 0.3f}, 0}}});
    for (int i = 0; i < 4; ++i) {
        rng.fill_uniform(in.span(), 0.0f, 1.0f);
        net.forward(in, /*train=*/true);
    }
    rng.fill_uniform(in.span(), 0.0f, 1.0f);
    net.forward(in, /*train=*/false);
    const Tensor before = net.region()->output();
    net.fold_batchnorm();
    net.forward(in, /*train=*/false);
    const Tensor& after = net.region()->output();
    for (std::int64_t i = 0; i < before.size(); ++i) {
        EXPECT_NEAR(before[i], after[i], 2e-3f);
    }
}

TEST(Network, CurrentLrFollowsSchedule) {
    NetConfig nc = cfg(3, 8, 8);
    nc.learning_rate = 1.0f;
    nc.burn_in = 0;
    nc.lr_steps = {{10, 0.1f}};
    Network net(nc);
    EXPECT_FLOAT_EQ(net.current_lr(), 1.0f);
    net.set_batch_num(10);
    EXPECT_FLOAT_EQ(net.current_lr(), 0.1f);
}

TEST(Network, InvalidNetConfigRejected) {
    NetConfig nc;
    nc.width = 0;
    EXPECT_THROW(Network{nc}, std::invalid_argument);
}

}  // namespace
}  // namespace dronet
